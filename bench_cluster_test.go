package repro

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/trustnet"
)

// BenchmarkCluster measures one coupled epoch of the baseline scenario run
// locally vs distributed over loopback worker processes, at each supported
// topology. CI converts its output into BENCH_cluster.json; benchjson pairs
// each topology=workers-K row with its topology=local sibling, so the
// speedup entries quantify the serialization + coordination overhead the
// transport adds on top of the (bit-identical) computation. Loopback keeps
// the rows about the cluster engine itself rather than kernel TCP behavior;
// the real-socket path is covered by TestTCPEquivalence and the CI
// cluster-smoke job.
func BenchmarkCluster(b *testing.B) {
	for _, users := range []int{100, 1000} {
		sc := trustnet.MustScenario("baseline")
		sc.Peers = users
		b.Run(fmt.Sprintf("users=%d/topology=local", users), func(b *testing.B) {
			eng, err := sc.NewEngine()
			if err != nil {
				b.Fatal(err)
			}
			benchEpochs(b, eng)
		})
		// workersK, not workers-K: go test's own -GOMAXPROCS suffix makes a
		// trailing -<digits> in a sub-benchmark name ambiguous to parsers.
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("users=%d/topology=workers%d", users, workers), func(b *testing.B) {
				benchClusterEpochs(b, sc, workers)
			})
		}
	}
}

// benchClusterEpochs stands up a loopback master with n workers, then times
// epochs exactly like the local case.
func benchClusterEpochs(b *testing.B, sc trustnet.Scenario, n int) {
	ln := cluster.NewLoopbackListener()
	m, err := cluster.NewMaster(sc, cluster.MasterConfig{
		Listener:       ln,
		HeartbeatEvery: -1,
		PhaseTimeout:   60 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Shutdown()
	workerErr := make(chan error, n)
	for i := 0; i < n; i++ {
		conn, err := ln.Dial()
		if err != nil {
			b.Fatal(err)
		}
		go func(i int, conn cluster.Conn) {
			workerErr <- cluster.RunWorker(conn, fmt.Sprintf("bench-w%d", i))
		}(i, conn)
	}
	if err := m.WaitForWorkers(n, 10*time.Second); err != nil {
		b.Fatal(err)
	}
	benchEpochs(b, m.Engine())
	m.Shutdown()
	for i := 0; i < n; i++ {
		if err := <-workerErr; err != nil {
			b.Logf("worker exit: %v", err)
		}
	}
}

func benchEpochs(b *testing.B, eng *trustnet.Engine) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), 1); err != nil {
			b.Fatal(err)
		}
	}
}
