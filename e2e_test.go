package repro

// End-to-end integration tests: the full stack wired together the way the
// examples and experiments use it, plus cross-substrate scenarios (churn +
// DHT repair + reputation, whitewashing through the overlay).

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/overlay"
	"repro/internal/privacy"
	"repro/internal/reputation"
	"repro/internal/reputation/eigentrust"
	"repro/internal/reputation/trustme"
	"repro/internal/sim"
	"repro/internal/social"
	"repro/internal/workload"
)

func TestEndToEndCoupledSystem(t *testing.T) {
	// The full pipeline: graph -> behaviours -> interactions -> mechanism
	// -> facets -> trust -> coupling, for every mechanism.
	mechs := map[string]func() (reputation.Mechanism, error){
		"eigentrust": func() (reputation.Mechanism, error) {
			return eigentrust.New(eigentrust.Config{N: 60, Pretrusted: []int{0, 1}})
		},
		"trustme": func() (reputation.Mechanism, error) {
			return trustme.New(trustme.Config{N: 60})
		},
		"none": func() (reputation.Mechanism, error) {
			return reputation.NewNone(60), nil
		},
	}
	for name, mk := range mechs {
		t.Run(name, func(t *testing.T) {
			mech, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			dyn, err := core.NewDynamics(core.DynamicsConfig{
				Workload: workload.Config{
					Seed:     99,
					NumPeers: 60,
					Mix: adversary.Mix{
						Fractions: map[adversary.Class]float64{
							adversary.Honest:    0.6,
							adversary.Malicious: 0.2,
							adversary.Selfish:   0.1,
							adversary.Traitor:   0.1,
						},
						ForceHonest: []int{0, 1},
					},
					Disclosure:     0.7,
					RecomputeEvery: 2,
				},
				Coupled:     true,
				EpochRounds: 6,
			}, mech)
			if err != nil {
				t.Fatal(err)
			}
			hist, err := dyn.Run(5)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range hist {
				for _, v := range []float64{e.Trust, e.Satisfaction, e.Reputation, e.Privacy} {
					if v < 0 || v > 1 || math.IsNaN(v) {
						t.Fatalf("%s epoch %d out of range: %+v", name, e.Epoch, e)
					}
				}
			}
			if !dyn.TrustModel().SystemTrusted(0.2, 0.5) {
				t.Fatalf("%s: median trust below 0.2 in a mixed population", name)
			}
		})
	}
}

func TestEndToEndChurnWithTrustMeRepair(t *testing.T) {
	// TrustMe's THA storage must survive overlay churn when the ring is
	// stabilized after membership changes.
	m, err := trustme.New(trustme.Config{N: 40, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	tx := uint64(1)
	for rater := 1; rater < 40; rater++ {
		for _, ratee := range []int{0, 5, 10} {
			if rater == ratee {
				continue
			}
			if err := m.Submit(reputation.Report{TxID: tx, Rater: rater, Ratee: ratee, Value: 0.9}); err != nil {
				t.Fatal(err)
			}
			tx++
		}
	}
	m.Compute()
	want := m.Score(0)

	// Churn: an overlay with a churner decides who is alive; dead peers
	// leave the THA ring, survivors stabilize it.
	s := sim.New()
	net := overlay.NewNetwork(s, sim.NewRNG(3), 40, overlay.Config{})
	ch, err := overlay.StartChurn(net, overlay.ChurnConfig{Period: 10, LeaveProb: 0.05, RejoinProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 10; step++ {
		if err := s.Run(s.Now() + 10); err != nil {
			t.Fatal(err)
		}
		alive := map[int]bool{}
		for _, id := range net.AliveIDs() {
			alive[int(id)] = true
		}
		// Mirror membership into the ring.
		load := m.Ring().LoadByNode()
		for addr := range load {
			if !alive[addr] {
				m.Ring().Leave(addr)
			}
		}
		for id := range alive {
			if _, ok := load[id]; !ok {
				_ = m.Ring().Join(id) // rejoining address may already be present
			}
		}
		m.Ring().Stabilize()
	}
	if ch.Leaves == 0 {
		t.Fatal("churn produced no departures")
	}
	if m.Ring().Size() == 0 {
		t.Fatal("ring emptied")
	}
	m.Whitewash(39) // unrelated peer resets — must not disturb others
	m.Compute()
	if got := m.Score(0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("score drifted through churn: %v -> %v", want, got)
	}
}

func TestEndToEndPrivacyServiceUnderDHTChurn(t *testing.T) {
	ring := dht.NewRing(3)
	for i := 0; i < 30; i++ {
		if err := ring.Join(i); err != nil {
			t.Fatal(err)
		}
	}
	ring.Stabilize()
	ledger := privacy.NewLedger()
	s := sim.New()
	svc, err := privacy.NewService(ring, ledger, s)
	if err != nil {
		t.Fatal(err)
	}
	pol := privacy.DefaultPolicy(social.Low)
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("it/%d", i)
		if err := svc.Publish(i, key, []byte{byte(i)}, social.Low, pol); err != nil {
			t.Fatal(err)
		}
	}
	// A third of the storage nodes fail; stabilization repairs replicas.
	for i := 0; i < 10; i++ {
		ring.Leave(i * 3)
	}
	ring.Stabilize()
	granted := 0
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("it/%d", i)
		if _, _, err := svc.Request(25, key, privacy.Read, privacy.SocialUse, 0.9, true); err == nil {
			granted++
		}
	}
	if granted != 20 {
		t.Fatalf("only %d/20 items readable after churn+repair", granted)
	}
	if err := svc.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	for _, r := range privacy.Audit(svc, ledger, s.Now()) {
		if !r.Pass {
			t.Fatalf("principle %v failed after churn: %s", r.Principle, r.Detail)
		}
	}
}

func TestEndToEndDeterminism(t *testing.T) {
	run := func() []float64 {
		mech, err := eigentrust.New(eigentrust.Config{N: 50, Pretrusted: []int{0}})
		if err != nil {
			t.Fatal(err)
		}
		dyn, err := core.NewDynamics(core.DynamicsConfig{
			Workload: workload.Config{
				Seed:     123,
				NumPeers: 50,
				Mix: adversary.Mix{
					Fractions:   map[adversary.Class]float64{adversary.Honest: 0.6, adversary.Colluder: 0.4},
					ForceHonest: []int{0},
				},
				RecomputeEvery: 3,
			},
			Coupled:     true,
			EpochRounds: 5,
		}, mech)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := dyn.Run(4)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(hist))
		for i, e := range hist {
			out[i] = e.Trust
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("identical seeds diverged at epoch %d: %v vs %v", i, a[i], b[i])
		}
	}
}
