package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/reputation"
	"repro/internal/workload"
)

// BenchmarkShardedEpoch measures one coupled epoch — the scatter-gather
// interaction pipeline plus the facet-measurement barrier — at two
// population scales, sequential vs sharded. CI converts its output into
// BENCH_epoch.json so the 1-shard/N-shard perf trajectory is tracked across
// PRs; on a multi-core runner the N-shard rows should approach a linear
// speedup of the scatter phase.
//
// The mechanism is the no-op baseline so the benchmark isolates the epoch
// pipeline itself (candidate sampling, selection, satisfaction folds,
// ledger accounting, gathering, measurement) from any one scoring
// algorithm's recompute cost.
func BenchmarkShardedEpoch(b *testing.B) {
	for _, users := range []int{1000, 10000} {
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("users=%d/shards=%d", users, shards), func(b *testing.B) {
				dyn, err := core.NewDynamics(core.DynamicsConfig{
					Workload: workload.Config{
						Seed:     1,
						NumPeers: users,
						Mix:      benchMix(0.3),
						// One interaction per user per round keeps the
						// scatter width proportional to the population.
						Disclosure:     0.8,
						RecomputeEvery: 2,
						Shards:         shards,
					},
					Coupled:     true,
					EpochRounds: 5,
				}, reputation.NewNone(users))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := dyn.Epoch(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
