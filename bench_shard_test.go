package repro

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/reputation"
	"repro/internal/workload"
)

// BenchmarkShardedEpoch measures one coupled epoch — the scatter-gather
// interaction pipeline plus the facet-measurement barrier — sequential vs
// sharded. CI converts its output into BENCH_epoch.json so the
// 1-shard/N-shard perf trajectory is tracked across PRs; on a multi-core
// runner the N-shard rows should approach a linear speedup of the scatter
// phase.
//
// Two row families:
//
//   - users=N/shards=K: population-proportional interaction volume (one
//     request per user per round), the historical rows.
//   - users=N/interactions=V/shards=K: fixed interaction volume across
//     populations — the scaling-layer acceptance rows. Epoch cost must track
//     the interaction volume, not the population, so doubling users at fixed
//     V should move ns/op well under 2x (the active-set/dirty-set contract).
//     These run only with BENCH_EPOCH_HEAVY=1 (the dedicated bench job sets
//     it) so the CI benchmark smoke stays fast; the 1M-user row rides along
//     at the sharded count only.
//
// The mechanism is the no-op baseline so the benchmark isolates the epoch
// pipeline itself (candidate sampling, selection, satisfaction folds,
// ledger accounting, gathering, measurement) from any one scoring
// algorithm's recompute cost.
func BenchmarkShardedEpoch(b *testing.B) {
	for _, users := range []int{1000, 10000} {
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("users=%d/shards=%d", users, shards), func(b *testing.B) {
				benchEpoch(b, users, 0, shards)
			})
		}
	}
	if os.Getenv("BENCH_EPOCH_HEAVY") == "" {
		return
	}
	const volume = 20000
	for _, users := range []int{100000, 200000} {
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("users=%d/interactions=%d/shards=%d", users, volume, shards), func(b *testing.B) {
				benchEpoch(b, users, volume, shards)
			})
		}
	}
	b.Run(fmt.Sprintf("users=%d/interactions=%d/shards=%d", 1000000, volume, 4), func(b *testing.B) {
		benchEpoch(b, 1000000, volume, 4)
	})
	// Quiescent rows: the settled-regime steady state. A 1M population with
	// a 10k active set is warmed until the inactive majority reaches its
	// bitwise trust fixed point, then the epoch is timed in the default
	// sparse mode (mode=settled) and with every skip disabled (mode=dense).
	// The two runs compute bit-identical histories; benchjson pairs them
	// into the mode=dense-vs-settled speedup. The interaction volume is
	// deliberately small — the active-set work is priced by the fixed-volume
	// rows above, and this pair isolates the epoch-boundary tail the settled
	// machinery eliminates (full-population trust update, coupling pass, and
	// aggregate folds on the dense side vs dirty+unsettled work on the
	// sparse side). The active set is wide (100k) so the warmup epochs do
	// not densify a tiny subgraph's neighborhoods, which would swamp the
	// pair with candidate-sampling cost common to both modes.
	const quiescentVolume = 2000
	for _, mode := range []string{"dense", "settled"} {
		b.Run(fmt.Sprintf("users=%d/interactions=%d/shards=%d/mode=%s", 1000000, quiescentVolume, 4, mode), func(b *testing.B) {
			benchQuiescentEpoch(b, 1000000, 100000, quiescentVolume, 4, mode == "dense")
		})
	}
}

// benchQuiescentEpoch times late (post-settling) epochs: all but the first
// `active` users leave before the warmup, the None mechanism keeps the
// shared reputation facet constant, and 60 warm epochs let every untouched
// user reach the bitwise fixed point the settled set skips.
func benchQuiescentEpoch(b *testing.B, users, active, interactions, shards int, dense bool) {
	dyn, err := core.NewDynamics(core.DynamicsConfig{
		Workload: workload.Config{
			Seed:                 1,
			NumPeers:             users,
			Mix:                  benchMix(0.3),
			InteractionsPerRound: interactions,
			Disclosure:           0.8,
			RecomputeEvery:       2,
			Shards:               shards,
		},
		Coupled:     true,
		EpochRounds: 5,
	}, reputation.NewNone(users))
	if err != nil {
		b.Fatal(err)
	}
	for u := active; u < users; u++ {
		if err := dyn.Engine().SetPeerActive(u, false); err != nil {
			b.Fatal(err)
		}
	}
	// Warm up in the (fast) sparse mode regardless of the measured mode:
	// both modes compute identical state, so the warmed engine is the same.
	for i := 0; i < 60; i++ {
		if _, err := dyn.Epoch(); err != nil {
			b.Fatal(err)
		}
	}
	dyn.SetDenseReference(dense)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dyn.Epoch(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEpoch times coupled epochs at the given scale; interactions == 0
// means the population-proportional default (one request per user per
// round).
func benchEpoch(b *testing.B, users, interactions, shards int) {
	dyn, err := core.NewDynamics(core.DynamicsConfig{
		Workload: workload.Config{
			Seed:                 1,
			NumPeers:             users,
			Mix:                  benchMix(0.3),
			InteractionsPerRound: interactions,
			Disclosure:           0.8,
			RecomputeEvery:       2,
			Shards:               shards,
		},
		Coupled:     true,
		EpochRounds: 5,
	}, reputation.NewNone(users))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dyn.Epoch(); err != nil {
			b.Fatal(err)
		}
	}
}
