package sim

// RNGState is the serializable position of an RNG stream. Capturing and
// restoring it is exact: a restored stream produces the same draw sequence
// as the original, which is the foundation of the engine-wide
// snapshot/resume guarantee (restore-then-run is bit-for-bit identical to
// an uninterrupted run).
type RNGState struct {
	State uint64
	// Spare and HasSpare carry the buffered Box-Muller Gaussian, which is
	// part of the stream position: dropping it would shift every subsequent
	// NormFloat64 draw.
	Spare    float64
	HasSpare bool
}

// State captures the stream position.
func (r *RNG) State() RNGState {
	return RNGState{State: r.state, Spare: r.spare, HasSpare: r.hasSpare}
}

// SetState restores a previously captured stream position.
func (r *RNG) SetState(st RNGState) {
	r.state = st.State
	r.spare = st.Spare
	r.hasSpare = st.HasSpare
}

// Stream exposes the sampler's internal RNG so engine snapshots can capture
// and restore its position (the CDF is rebuilt deterministically from the
// sampler's configuration).
func (z *Zipf) Stream() *RNG { return z.rng }
