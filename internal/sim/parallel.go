package sim

import (
	"context"
	"sync"
	"sync/atomic"
)

// ForChunks splits the index range [0, n) into at most `workers` contiguous
// chunks and runs fn(lo, hi) over each. With workers <= 1 (or a degenerate
// range) it runs inline on the caller's goroutine; otherwise each chunk runs
// on its own goroutine and ForChunks blocks until all complete.
//
// It is the scatter primitive of the sharded epoch pipeline: callers must
// ensure fn writes only to per-index state (out[i] for i in [lo, hi)), so
// the result is identical for every worker count.
func ForChunks(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// RunIndexed runs fn(0) .. fn(n-1) under a bounded pool of at most
// `workers` goroutines and returns the first error in *index* order (not
// arrival order), so the outcome is identical for every pool size — the
// deterministic-fold discipline of the sharded epoch pipeline applied to
// job matrices (explorer grids, sweep run matrices, hill-climb batches).
//
// Dispatch stops once any job has failed or ctx is cancelled; jobs already
// dispatched run to completion. A cancelled context wins over job errors.
// Callers must ensure fn(i) writes only to per-index state (out[i]), never
// to shared accumulators.
func RunIndexed(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if errs[i] = fn(i); errs[i] != nil {
				return errs[i]
			}
		}
		return nil
	}
	next := make(chan int)
	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		// Stop dispatching once any job failed: each job may run a whole
		// fresh scenario, so finishing a doomed matrix is pure waste.
		if failed.Load() {
			break
		}
		select {
		case <-ctx.Done():
			break feed
		case next <- i:
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
