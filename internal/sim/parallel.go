package sim

import "sync"

// ForChunks splits the index range [0, n) into at most `workers` contiguous
// chunks and runs fn(lo, hi) over each. With workers <= 1 (or a degenerate
// range) it runs inline on the caller's goroutine; otherwise each chunk runs
// on its own goroutine and ForChunks blocks until all complete.
//
// It is the scatter primitive of the sharded epoch pipeline: callers must
// ensure fn writes only to per-index state (out[i] for i in [lo, hi)), so
// the result is identical for every worker count.
func ForChunks(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
