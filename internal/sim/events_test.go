package sim

import (
	"errors"
	"testing"
)

func TestRunOrdersByTime(t *testing.T) {
	s := New()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("clock = %d, want 30", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var at Time
	s.After(7, func() {
		s.After(5, func() { at = s.Now() })
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if at != 12 {
		t.Fatalf("nested After fired at %d, want 12", at)
	}
}

func TestPastSchedulingClamped(t *testing.T) {
	s := New()
	var fired Time = -1
	s.At(10, func() {
		s.At(3, func() { fired = s.Now() }) // in the past: clamp to now
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 10 {
		t.Fatalf("past event fired at %d, want clamped to 10", fired)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	e := s.At(5, func() { ran = true })
	e.Cancel()
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled event still ran")
	}
	if s.Steps != 0 {
		t.Fatalf("Steps = %d, want 0", s.Steps)
	}
}

func TestHorizonPausesAndResumes(t *testing.T) {
	s := New()
	var fired []Time
	s.At(5, func() { fired = append(fired, 5) })
	s.At(15, func() { fired = append(fired, 15) })
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || s.Now() != 10 {
		t.Fatalf("after first run: fired=%v now=%d", fired, s.Now())
	}
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[1] != 15 {
		t.Fatalf("after second run: fired=%v", fired)
	}
}

func TestHorizonAdvancesIdleClock(t *testing.T) {
	s := New()
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 100 {
		t.Fatalf("idle clock = %d, want 100", s.Now())
	}
}

func TestHalt(t *testing.T) {
	s := New()
	count := 0
	s.At(1, func() { count++; s.Halt() })
	s.At(2, func() { count++ })
	err := s.Run(0)
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("err = %v, want ErrHalted", err)
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
}

func TestEveryTicksUntilCancelled(t *testing.T) {
	s := New()
	count := 0
	cancel, err := s.Every(10, func() {
		count++
		if count == 3 {
			// Cancellation from within the callback must stop future ticks.
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s.At(35, func() { cancel() })
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("ticks = %d, want 3 (at t=10,20,30)", count)
	}
}

func TestEveryRejectsNonPositive(t *testing.T) {
	s := New()
	if _, err := s.Every(0, func() {}); err == nil {
		t.Fatal("Every(0) did not error")
	}
	if _, err := s.Every(-5, func() {}); err == nil {
		t.Fatal("Every(-5) did not error")
	}
}

func TestStepsCountsExecuted(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.At(Time(i), func() {})
	}
	e := s.At(9, func() {})
	e.Cancel()
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if s.Steps != 5 {
		t.Fatalf("Steps = %d, want 5", s.Steps)
	}
}
