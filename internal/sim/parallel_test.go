package sim

import (
	"sync/atomic"
	"testing"
)

func TestForChunksCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		n := 23
		hits := make([]int32, n)
		ForChunks(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForChunksEmptyRange(t *testing.T) {
	called := false
	ForChunks(4, 0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForChunksDeterministicPerIndexWrites(t *testing.T) {
	n := 100
	ref := make([]int, n)
	ForChunks(1, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ref[i] = i * i
		}
	})
	for _, workers := range []int{2, 5, 16} {
		out := make([]int, n)
		ForChunks(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = i * i
			}
		})
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("workers=%d diverged at %d", workers, i)
			}
		}
	}
}
