package sim

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForChunksCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		n := 23
		hits := make([]int32, n)
		ForChunks(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForChunksEmptyRange(t *testing.T) {
	called := false
	ForChunks(4, 0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForChunksDeterministicPerIndexWrites(t *testing.T) {
	n := 100
	ref := make([]int, n)
	ForChunks(1, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ref[i] = i * i
		}
	})
	for _, workers := range []int{2, 5, 16} {
		out := make([]int, n)
		ForChunks(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = i * i
			}
		})
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("workers=%d diverged at %d", workers, i)
			}
		}
	}
}

func TestRunIndexed(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{0, 1, 3, 16} {
		out := make([]int, 40)
		if err := RunIndexed(ctx, workers, len(out), func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
	if err := RunIndexed(ctx, 4, 0, func(int) error { return nil }); err != nil {
		t.Fatalf("empty range: %v", err)
	}
}

func TestRunIndexedFirstErrorByIndex(t *testing.T) {
	// Two failing jobs: the reported error must be the lower-index one for
	// every pool size (the deterministic-fold contract), even though the
	// higher-index one may finish first.
	for _, workers := range []int{1, 2, 8} {
		err := RunIndexed(context.Background(), workers, 10, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("workers=%d: err = %v, want job 3's error", workers, err)
		}
	}
}

func TestRunIndexedHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	// 64 jobs: the select between ctx.Done and the feed is racy per job, but
	// the chance of dispatching all of them after cancellation is 2^-64.
	err := RunIndexed(ctx, 2, 64, func(i int) error { ran.Add(1); return nil })
	if err == nil {
		t.Fatal("cancelled context accepted")
	}
	if ran.Load() >= 64 {
		t.Fatal("cancelled run dispatched every job")
	}
}
