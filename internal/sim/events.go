package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Time is the virtual simulation time in abstract ticks. Experiments treat a
// tick as "one unit of network latency" unless stated otherwise.
type Time int64

// Event is a callback scheduled to run at a virtual time.
type Event struct {
	At   Time
	Do   func()
	seq  uint64 // tie-breaker: FIFO among same-time events
	idx  int    // heap index
	dead bool
}

// Cancel marks the event so that it will be skipped when dequeued.
// Cancelling an already-run event is a no-op.
func (e *Event) Cancel() { e.dead = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// ErrHalted is returned by Run when the simulation was stopped via Halt
// before the event queue drained or the horizon was reached.
var ErrHalted = errors.New("sim: halted")

// Sim is a single-threaded discrete-event simulation loop.
//
// The zero value is ready to use; Now starts at 0.
type Sim struct {
	now    Time
	queue  eventHeap
	seq    uint64
	halted bool
	// Steps counts executed (non-cancelled) events.
	Steps int64
}

// New returns a simulation with the clock at zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error surfaced as a panic-free no-op event at the current time plus zero
// delay is allowed; t < Now is clamped to Now (events never run "before now").
func (s *Sim) At(t Time, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	e := &Event{At: t, Do: fn, seq: s.seq}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d ticks from now.
func (s *Sim) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Every schedules fn at now+d, now+2d, ... until the returned cancel
// function is called. d must be positive; d <= 0 is rejected.
func (s *Sim) Every(d Time, fn func()) (cancel func(), err error) {
	if d <= 0 {
		return nil, fmt.Errorf("sim: Every period must be positive, got %d", d)
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			s.After(d, tick)
		}
	}
	s.After(d, tick)
	return func() { stopped = true }, nil
}

// Halt stops the run loop after the current event returns.
func (s *Sim) Halt() { s.halted = true }

// Pending reports the number of queued (possibly cancelled) events.
func (s *Sim) Pending() int { return len(s.queue) }

// Run executes events in timestamp order until the queue is empty or the
// clock would pass horizon (horizon <= 0 means no horizon). It returns
// ErrHalted if Halt was called.
func (s *Sim) Run(horizon Time) error {
	s.halted = false
	for len(s.queue) > 0 {
		if s.halted {
			return ErrHalted
		}
		e := heap.Pop(&s.queue).(*Event)
		if e.dead {
			continue
		}
		if horizon > 0 && e.At > horizon {
			// Put it back for a later Run call and stop at the horizon.
			heap.Push(&s.queue, e)
			s.now = horizon
			return nil
		}
		s.now = e.At
		s.Steps++
		e.Do()
	}
	if horizon > 0 && s.now < horizon {
		s.now = horizon
	}
	return nil
}
