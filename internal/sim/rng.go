// Package sim provides the deterministic discrete-event simulation kernel
// used by every experiment in this repository: a virtual clock, a binary-heap
// event queue, and reproducible pseudo-random number streams.
//
// All randomness in the reproduction flows through RNG so that every
// experiment is exactly reproducible from a single seed.
package sim

import "math"

// RNG is a deterministic pseudo-random number generator based on SplitMix64.
// It is small, fast, splittable and good enough for simulation workloads.
//
// The zero value is a valid generator seeded with 0; prefer NewRNG to make
// the seed explicit.
//
// RNG is not safe for concurrent use; give each goroutine its own stream
// via Split.
type RNG struct {
	state uint64
	// spare Gaussian value from the Box-Muller transform, if any.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split returns a new independent stream derived from the current state.
// The parent stream advances, so successive Split calls yield distinct
// children.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It returns 0 when n <= 0 so that
// callers never panic on degenerate workload parameters.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	// Lemire's nearly-divisionless bounded generation would be overkill;
	// modulo bias is negligible for simulation n << 2^64.
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct integers drawn uniformly from [0, n) in
// selection order. If k >= n it returns a permutation of [0, n).
func (r *RNG) Sample(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	// Partial Fisher-Yates over a lazily materialized array.
	chosen := make(map[int]int, k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		vj, ok := chosen[j]
		if !ok {
			vj = j
		}
		vi, ok := chosen[i]
		if !ok {
			vi = i
		}
		out[i] = vj
		chosen[j] = vi
	}
	return out
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s. It precomputes the CDF once so sampling is O(log n).
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s >= 0.
// s = 0 degenerates to the uniform distribution.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// N returns the size of the sampler's support.
func (z *Zipf) N() int { return len(z.cdf) }

// Next returns the next Zipf-distributed value in [0, N()).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
