package sim

import "testing"

// TestRNGStateRoundTrip proves a captured stream position replays the exact
// draw sequence, including the buffered Box-Muller spare — the property the
// engine-wide snapshot/resume guarantee is built on.
func TestRNGStateRoundTrip(t *testing.T) {
	r := NewRNG(12345)
	r.NormFloat64() // leave a spare Gaussian buffered
	st := r.State()
	if !st.HasSpare {
		t.Fatal("expected a buffered Box-Muller spare")
	}

	clone := NewRNG(0)
	clone.SetState(st)
	for i := 0; i < 100; i++ {
		if a, b := r.NormFloat64(), clone.NormFloat64(); a != b {
			t.Fatalf("draw %d: %v != %v", i, a, b)
		}
		if a, b := r.Uint64(), clone.Uint64(); a != b {
			t.Fatalf("draw %d: %v != %v", i, a, b)
		}
	}
}

// TestZipfStreamRestore proves the sampler's private stream participates in
// snapshots.
func TestZipfStreamRestore(t *testing.T) {
	z := NewZipf(NewRNG(7), 100, 1.1)
	z.Next()
	st := z.Stream().State()
	a := []int{z.Next(), z.Next(), z.Next()}

	z2 := NewZipf(NewRNG(0), 100, 1.1)
	z2.Stream().SetState(st)
	b := []int{z2.Next(), z2.Next(), z2.Next()}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %d != %d", i, a[i], b[i])
		}
	}
}
