package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
	if got := r.Intn(0); got != 0 {
		t.Fatalf("Intn(0) = %d, want 0", got)
	}
	if got := r.Intn(-4); got != 0 {
		t.Fatalf("Intn(-4) = %d, want 0", got)
	}
}

func TestBoolEdges(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := NewRNG(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", p)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(17)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(19)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleProperties(t *testing.T) {
	r := NewRNG(29)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw % 60)
		s := r.Sample(n, k)
		want := k
		if k >= n {
			want = n
		}
		if len(s) != want {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleUniformCoverage(t *testing.T) {
	r := NewRNG(31)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		for _, v := range r.Sample(10, 3) {
			counts[v]++
		}
	}
	// Each element should be chosen ~3000 times.
	for i, c := range counts {
		if c < 2500 || c > 3500 {
			t.Fatalf("element %d chosen %d times, want ~3000", i, c)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(37)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// Rank-0 frequency should be near 1/H_100 ≈ 0.1928.
	p0 := float64(counts[0]) / n
	if math.Abs(p0-0.1928) > 0.02 {
		t.Fatalf("Zipf rank-0 probability = %v, want ~0.193", p0)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := NewRNG(41)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)/n-0.1) > 0.01 {
			t.Fatalf("s=0 Zipf not uniform at %d: %d", i, c)
		}
	}
}

func TestZipfDegenerateN(t *testing.T) {
	r := NewRNG(43)
	z := NewZipf(r, 0, 1)
	if z.N() != 1 {
		t.Fatalf("NewZipf(0) support = %d, want clamped to 1", z.N())
	}
	if v := z.Next(); v != 0 {
		t.Fatalf("degenerate Zipf returned %d", v)
	}
}
