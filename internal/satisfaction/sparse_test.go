package satisfaction

import (
	"testing"

	"repro/internal/sim"
)

// TestSparseConsumerMatchesDense pins the representation equivalence the
// scaling layer relies on: a sparse uniform-default consumer and a dense
// consumer initialized to the same value run the identical EMA arithmetic,
// so every observable — preferences, adequacy, satisfaction — is
// bit-for-bit equal under any interleaving of operations.
func TestSparseConsumerMatchesDense(t *testing.T) {
	const n = 40
	prefs := make([]float64, n)
	for i := range prefs {
		prefs[i] = 0.5
	}
	dense, err := NewConsumer(prefs, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewUniformConsumer(n, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(31)
	for step := 0; step < 500; step++ {
		switch rng.Intn(4) {
		case 0:
			p, q := rng.Intn(n), rng.Float64()
			dense.UpdatePreference(p, q)
			sparse.UpdatePreference(p, q)
		case 1:
			cands := rng.Sample(n, 1+rng.Intn(8))
			chosen := cands[rng.Intn(len(cands))]
			if dense.Observe(chosen, cands) != sparse.Observe(chosen, cands) {
				t.Fatalf("step %d: Observe diverged", step)
			}
		case 2:
			cands := rng.Sample(n, 1+rng.Intn(8))
			chosen, q := cands[rng.Intn(len(cands))], rng.Float64()
			if dense.ObserveQuality(chosen, cands, q) != sparse.ObserveQuality(chosen, cands, q) {
				t.Fatalf("step %d: ObserveQuality diverged", step)
			}
		case 3:
			dense.ObserveFailure()
			sparse.ObserveFailure()
		}
		if dense.Satisfaction() != sparse.Satisfaction() {
			t.Fatalf("step %d: satisfaction %v != %v", step, dense.Satisfaction(), sparse.Satisfaction())
		}
	}
	for p := 0; p < n; p++ {
		if dense.Preference(p) != sparse.Preference(p) {
			t.Fatalf("preference[%d]: dense %v != sparse %v", p, dense.Preference(p), sparse.Preference(p))
		}
	}
	if dense.Observations() != sparse.Observations() {
		t.Fatal("observation counts diverged")
	}
}

// TestSparseProviderMatchesDense mirrors the consumer equivalence for the
// provider side (whose willingness is never mutated, so the sparse form
// needs no overrides at all).
func TestSparseProviderMatchesDense(t *testing.T) {
	const n = 30
	will := make([]float64, n)
	for i := range will {
		will[i] = 0.8
	}
	dense, err := NewProvider(will, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewUniformProvider(n, 0.8, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(17)
	for step := 0; step < 300; step++ {
		c := rng.Intn(n)
		if dense.Observe(c) != sparse.Observe(c) {
			t.Fatalf("step %d: Observe diverged", step)
		}
		if dense.Satisfaction() != sparse.Satisfaction() {
			t.Fatalf("step %d: satisfaction diverged", step)
		}
	}
	for c := 0; c < n; c++ {
		if dense.Willingness(c) != sparse.Willingness(c) {
			t.Fatalf("willingness[%d] diverged", c)
		}
	}
}

func TestSparseConstructorValidation(t *testing.T) {
	if _, err := NewUniformConsumer(0, 0.5, 0.1); err == nil {
		t.Fatal("n=0 consumer accepted")
	}
	if _, err := NewUniformConsumer(5, 0.5, -1); err == nil {
		t.Fatal("negative memory accepted")
	}
	if _, err := NewUniformProvider(0, 0.8, 0.1); err == nil {
		t.Fatal("n=0 provider accepted")
	}
	if _, err := NewUniformProvider(5, 0.8, 2); err == nil {
		t.Fatal("memory > 1 accepted")
	}
	c, err := NewUniformConsumer(3, 7, 0.1) // default clamped into [0,1]
	if err != nil {
		t.Fatal(err)
	}
	if c.Preference(1) != 1 {
		t.Fatalf("default preference %v not clamped to 1", c.Preference(1))
	}
}

// TestSparseConsumerStateRoundTrip checks that a sparse consumer's state
// (default + overrides) survives a State/SetState cycle bit for bit, and
// that mismatched representations are rejected instead of silently merged.
func TestSparseConsumerStateRoundTrip(t *testing.T) {
	const n = 20
	c, err := NewUniformConsumer(n, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	for k := 0; k < 50; k++ {
		c.UpdatePreference(rng.Intn(n), rng.Float64())
		cands := rng.Sample(n, 3)
		c.Observe(cands[0], cands)
	}
	st := c.State()
	if st.Prefs != nil {
		t.Fatal("sparse consumer serialized a dense vector")
	}
	back, err := NewUniformConsumer(n, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.SetState(st); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < n; p++ {
		if back.Preference(p) != c.Preference(p) {
			t.Fatalf("preference[%d] diverged after round trip", p)
		}
	}
	if back.Satisfaction() != c.Satisfaction() || back.Observations() != c.Observations() {
		t.Fatal("satisfaction state diverged after round trip")
	}

	// Representation mismatches must error.
	dense, err := NewConsumer(make([]float64, n), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.SetState(dense.State()); err == nil {
		t.Fatal("dense state restored into sparse consumer")
	}
	wrong, err := NewUniformConsumer(n+1, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrong.SetState(st); err == nil {
		t.Fatal("population mismatch accepted")
	}
}
