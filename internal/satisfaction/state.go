package satisfaction

import "fmt"

// ConsumerState is the serializable mutable state of a Consumer. The EMA
// memory is configuration, not state: it is re-established when the owning
// engine is rebuilt from the same scenario settings.
type ConsumerState struct {
	Prefs   []float64
	Sat     float64
	Started bool
	N       int64
}

// State captures the consumer's mutable state.
func (c *Consumer) State() ConsumerState {
	st := ConsumerState{Sat: c.sat, Started: c.started, N: c.n}
	st.Prefs = append([]float64(nil), c.prefs...)
	return st
}

// SetState restores a previously captured state. The preference vector must
// match the consumer's provider count.
func (c *Consumer) SetState(st ConsumerState) error {
	if len(st.Prefs) != len(c.prefs) {
		return fmt.Errorf("satisfaction: consumer state has %d preferences, want %d", len(st.Prefs), len(c.prefs))
	}
	copy(c.prefs, st.Prefs)
	c.sat = st.Sat
	c.started = st.Started
	c.n = st.N
	return nil
}

// ProviderState is the serializable mutable state of a Provider.
type ProviderState struct {
	Willingness []float64
	Sat         float64
	Started     bool
	N           int64
}

// State captures the provider's mutable state.
func (p *Provider) State() ProviderState {
	st := ProviderState{Sat: p.sat, Started: p.started, N: p.n}
	st.Willingness = append([]float64(nil), p.willingness...)
	return st
}

// SetState restores a previously captured state. The willingness vector must
// match the provider's consumer count.
func (p *Provider) SetState(st ProviderState) error {
	if len(st.Willingness) != len(p.willingness) {
		return fmt.Errorf("satisfaction: provider state has %d willingness entries, want %d", len(st.Willingness), len(p.willingness))
	}
	copy(p.willingness, st.Willingness)
	p.sat = st.Sat
	p.started = st.Started
	p.n = st.N
	return nil
}
