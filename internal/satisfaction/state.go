package satisfaction

import "fmt"

// ConsumerState is the serializable mutable state of a Consumer. The EMA
// memory is configuration, not state: it is re-established when the owning
// engine is rebuilt from the same scenario settings. Dense consumers carry
// the full Prefs vector; sparse (uniform-default) consumers carry only the
// overrides, so snapshot size tracks interactions rather than population².
type ConsumerState struct {
	Prefs []float64 // dense form only (nil for sparse consumers)
	// Sparse form: provider count, shared default, and deviations.
	Pop       int
	Def       float64
	Overrides map[int32]float64
	Sat       float64
	Started   bool
	N         int64
}

// State captures the consumer's mutable state.
func (c *Consumer) State() ConsumerState {
	st := ConsumerState{Sat: c.sat, Started: c.started, N: c.n}
	if c.prefs != nil {
		st.Prefs = append([]float64(nil), c.prefs...)
		return st
	}
	st.Pop = c.pop
	st.Def = c.def
	if len(c.overrides) > 0 {
		st.Overrides = make(map[int32]float64, len(c.overrides))
		for k, v := range c.overrides {
			st.Overrides[k] = v
		}
	}
	return st
}

// SetState restores a previously captured state. The representation and the
// provider count must match the consumer's own.
func (c *Consumer) SetState(st ConsumerState) error {
	if c.prefs != nil {
		if len(st.Prefs) != len(c.prefs) {
			return fmt.Errorf("satisfaction: consumer state has %d preferences, want %d", len(st.Prefs), len(c.prefs))
		}
		copy(c.prefs, st.Prefs)
	} else {
		if st.Prefs != nil {
			return fmt.Errorf("satisfaction: dense consumer state restored into sparse consumer")
		}
		if st.Pop != c.pop {
			return fmt.Errorf("satisfaction: consumer state for %d providers, want %d", st.Pop, c.pop)
		}
		c.def = st.Def
		c.overrides = nil
		if len(st.Overrides) > 0 {
			c.overrides = make(map[int32]float64, len(st.Overrides))
			for k, v := range st.Overrides {
				c.overrides[k] = v
			}
		}
	}
	c.sat = st.Sat
	c.started = st.Started
	c.n = st.N
	return nil
}

// ProviderState is the serializable mutable state of a Provider.
type ProviderState struct {
	Willingness []float64 // dense form only (nil for sparse providers)
	// Sparse form: consumer count and the shared uniform willingness.
	Pop     int
	Def     float64
	Sat     float64
	Started bool
	N       int64
}

// State captures the provider's mutable state.
func (p *Provider) State() ProviderState {
	st := ProviderState{Sat: p.sat, Started: p.started, N: p.n}
	if p.willingness != nil {
		st.Willingness = append([]float64(nil), p.willingness...)
		return st
	}
	st.Pop = p.pop
	st.Def = p.def
	return st
}

// SetState restores a previously captured state. The representation and the
// consumer count must match the provider's own.
func (p *Provider) SetState(st ProviderState) error {
	if p.willingness != nil {
		if len(st.Willingness) != len(p.willingness) {
			return fmt.Errorf("satisfaction: provider state has %d willingness entries, want %d", len(st.Willingness), len(p.willingness))
		}
		copy(p.willingness, st.Willingness)
	} else {
		if st.Willingness != nil {
			return fmt.Errorf("satisfaction: dense provider state restored into sparse provider")
		}
		if st.Pop != p.pop {
			return fmt.Errorf("satisfaction: provider state for %d consumers, want %d", st.Pop, p.pop)
		}
		p.def = st.Def
	}
	p.sat = st.Sat
	p.started = st.Started
	p.n = st.N
	return nil
}
