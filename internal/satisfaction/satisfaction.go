// Package satisfaction implements the participant-satisfaction model the
// paper adopts from Quiané-Ruiz, Lamarre & Valduriez (VLDB J. 2009, the
// paper's [17]): participants have intentions; the *adequacy* of one
// allocation measures how well it matched those intentions; *allocation
// satisfaction* is the per-allocation value; and *satisfaction* proper is
// the long-run notion — an exponential moving average that captures whether
// the system "meets its intentions in the long term" (§2.1).
//
// Consumers intend to receive service from the providers they prefer
// (preferences are private, informed by delivered quality); providers intend
// to serve the requests they are willing to treat, even though the system
// may sometimes impose others.
package satisfaction

import (
	"fmt"

	"repro/internal/metrics"
)

// DefaultMemory is the EMA weight used when a zero memory is supplied:
// each new allocation contributes 10% — satisfaction is a long-run notion.
const DefaultMemory = 0.1

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Consumer tracks one data consumer's intentions and satisfaction.
//
// Preferences have two representations. The dense form (NewConsumer) stores
// one float per provider. The sparse form (NewUniformConsumer) stores a
// shared default plus per-provider overrides for the providers actually
// experienced — at population scale almost every preference is still the
// untouched default, so the sparse form keeps memory proportional to
// interactions, not population². Both forms run the identical EMA
// arithmetic, so they are bit-for-bit interchangeable.
type Consumer struct {
	prefs     []float64 // dense intention vector (nil in sparse form)
	pop       int       // provider count in sparse form
	def       float64   // sparse default preference
	overrides map[int32]float64
	sat       float64
	memory    float64 //trustlint:derived EMA weight is configuration, re-established when the engine is rebuilt
	started   bool
	n         int64
}

// NewConsumer creates a consumer with initial preferences over providers.
// memory in (0,1] is the EMA weight (0 selects DefaultMemory).
func NewConsumer(prefs []float64, memory float64) (*Consumer, error) {
	if len(prefs) == 0 {
		return nil, fmt.Errorf("satisfaction: consumer needs at least one provider preference")
	}
	if memory == 0 {
		memory = DefaultMemory
	}
	if memory < 0 || memory > 1 {
		return nil, fmt.Errorf("satisfaction: memory %v out of (0,1]", memory)
	}
	c := &Consumer{prefs: make([]float64, len(prefs)), memory: memory}
	for i, p := range prefs {
		c.prefs[i] = clamp01(p)
	}
	return c, nil
}

// NewUniformConsumer creates a consumer whose preference for every one of n
// providers starts at the same value. Deviations from the default accumulate
// sparsely as qualities are observed, so memory stays proportional to the
// providers actually experienced rather than the population.
func NewUniformConsumer(n int, pref, memory float64) (*Consumer, error) {
	if n <= 0 {
		return nil, fmt.Errorf("satisfaction: consumer needs at least one provider preference")
	}
	if memory == 0 {
		memory = DefaultMemory
	}
	if memory < 0 || memory > 1 {
		return nil, fmt.Errorf("satisfaction: memory %v out of (0,1]", memory)
	}
	return &Consumer{pop: n, def: clamp01(pref), memory: memory}, nil
}

// providerCount returns the number of providers the consumer has an
// intention over, in either representation.
func (c *Consumer) providerCount() int {
	if c.prefs != nil {
		return len(c.prefs)
	}
	return c.pop
}

// Preference returns the consumer's current preference for a provider.
func (c *Consumer) Preference(provider int) float64 {
	if provider < 0 || provider >= c.providerCount() {
		return 0
	}
	if c.prefs != nil {
		return c.prefs[provider]
	}
	if v, ok := c.overrides[int32(provider)]; ok {
		return v
	}
	return c.def
}

// UpdatePreference folds a delivered quality into the consumer's private
// preference for the provider (quality of results "is a private notion that
// is assumed to be used by a data consumer to decide which providers she
// prefers").
func (c *Consumer) UpdatePreference(provider int, quality float64) {
	if provider < 0 || provider >= c.providerCount() {
		return
	}
	if c.prefs != nil {
		c.prefs[provider] = (1-c.memory)*c.prefs[provider] + c.memory*clamp01(quality)
		return
	}
	cur := c.def
	if v, ok := c.overrides[int32(provider)]; ok {
		cur = v
	}
	if c.overrides == nil {
		c.overrides = make(map[int32]float64)
	}
	c.overrides[int32(provider)] = (1-c.memory)*cur + c.memory*clamp01(quality)
}

// Adequacy returns how well allocating `chosen` matched the consumer's
// intention given the candidate set: preference of the chosen provider
// relative to the best available preference. It is 0 when chosen is invalid
// or not among the candidates, and 1 when the system picked a most-preferred
// candidate.
func (c *Consumer) Adequacy(chosen int, candidates []int) float64 {
	if chosen < 0 || chosen >= c.providerCount() {
		return 0
	}
	best := 0.0
	inSet := false
	for _, cand := range candidates {
		if cand == chosen {
			inSet = true
		}
		if p := c.Preference(cand); p > best {
			best = p
		}
	}
	if !inSet {
		return 0
	}
	if best == 0 {
		return 1 // indifferent consumer: any allocation is adequate
	}
	return c.Preference(chosen) / best
}

// Observe records one allocation: it computes the allocation satisfaction
// (the per-allocation adequacy), folds it into the long-run satisfaction,
// and returns it.
func (c *Consumer) Observe(chosen int, candidates []int) float64 {
	a := c.Adequacy(chosen, candidates)
	c.fold(a)
	return a
}

// ObserveQuality records one allocation together with the quality the
// chosen provider actually delivered. The allocation satisfaction is
// adequacy × quality: §2.1 requires "a system which both provides results
// of good quality and is also usable accordingly to the user needs" — being
// handed the best of a uniformly bad candidate set is still a bad outcome.
func (c *Consumer) ObserveQuality(chosen int, candidates []int, quality float64) float64 {
	a := c.Adequacy(chosen, candidates) * clamp01(quality)
	c.fold(a)
	return a
}

// ObserveFailure records an allocation round in which the consumer got no
// service at all (adequacy 0).
func (c *Consumer) ObserveFailure() {
	c.fold(0)
}

func (c *Consumer) fold(a float64) {
	if !c.started {
		c.sat = a
		c.started = true
	} else {
		c.sat = (1-c.memory)*c.sat + c.memory*a
	}
	c.n++
}

// Satisfaction returns the long-run satisfaction in [0,1]. A consumer with
// no history is neutrally satisfied (0.5): it has no grounds for judgment.
func (c *Consumer) Satisfaction() float64 {
	if !c.started {
		return 0.5
	}
	return c.sat
}

// Observations returns the number of allocation rounds folded in.
func (c *Consumer) Observations() int64 { return c.n }

// Provider tracks one data provider's intentions and satisfaction. Like
// Consumer, it has a dense form (NewProvider: one willingness float per
// consumer) and a sparse uniform form (NewUniformProvider: a shared default;
// willingness is never mutated, so no overrides are needed).
type Provider struct {
	willingness []float64 // dense intention vector (nil in sparse form)
	pop         int       // consumer count in sparse form
	def         float64   // sparse uniform willingness
	sat         float64
	memory      float64 //trustlint:derived EMA weight is configuration, re-established when the engine is rebuilt
	started     bool
	n           int64
}

// NewProvider creates a provider with willingness to serve each consumer.
func NewProvider(willingness []float64, memory float64) (*Provider, error) {
	if len(willingness) == 0 {
		return nil, fmt.Errorf("satisfaction: provider needs at least one consumer willingness")
	}
	if memory == 0 {
		memory = DefaultMemory
	}
	if memory < 0 || memory > 1 {
		return nil, fmt.Errorf("satisfaction: memory %v out of (0,1]", memory)
	}
	p := &Provider{willingness: make([]float64, len(willingness)), memory: memory}
	for i, w := range willingness {
		p.willingness[i] = clamp01(w)
	}
	return p, nil
}

// NewUniformProvider creates a provider equally willing to serve every one
// of n consumers, without materializing a per-consumer vector.
func NewUniformProvider(n int, will, memory float64) (*Provider, error) {
	if n <= 0 {
		return nil, fmt.Errorf("satisfaction: provider needs at least one consumer willingness")
	}
	if memory == 0 {
		memory = DefaultMemory
	}
	if memory < 0 || memory > 1 {
		return nil, fmt.Errorf("satisfaction: memory %v out of (0,1]", memory)
	}
	return &Provider{pop: n, def: clamp01(will), memory: memory}, nil
}

// consumerCount returns the number of consumers the provider has an
// intention over, in either representation.
func (p *Provider) consumerCount() int {
	if p.willingness != nil {
		return len(p.willingness)
	}
	return p.pop
}

// Willingness returns the provider's willingness to serve a consumer.
func (p *Provider) Willingness(consumer int) float64 {
	if consumer < 0 || consumer >= p.consumerCount() {
		return 0
	}
	if p.willingness != nil {
		return p.willingness[consumer]
	}
	return p.def
}

// Observe records that the system allocated a request from `consumer` to
// this provider. The adequacy is the provider's willingness for that
// consumer — "a data provider can be satisfied even if sometimes the system
// imposes queries he does not intend to treat" (§2.1): a single imposed
// (low-willingness) request only dents the long-run EMA.
func (p *Provider) Observe(consumer int) float64 {
	a := p.Willingness(consumer)
	if !p.started {
		p.sat = a
		p.started = true
	} else {
		p.sat = (1-p.memory)*p.sat + p.memory*a
	}
	p.n++
	return a
}

// Satisfaction returns the provider's long-run satisfaction (0.5 when it has
// served nothing).
func (p *Provider) Satisfaction() float64 {
	if !p.started {
		return 0.5
	}
	return p.sat
}

// Observations returns the number of served requests folded in.
func (p *Provider) Observations() int64 { return p.n }

// SystemView aggregates individual satisfactions into the global notion the
// paper distinguishes from the individual one (§3: "a user can have a
// satisfaction perception ... influenced only by its local vision of the
// system, or by a global one").
type SystemView struct {
	// Mean is the global (average) satisfaction.
	Mean float64
	// Min is the worst participant's satisfaction.
	Min float64
	// P10 is the 10th-percentile satisfaction: the system is globally
	// satisfying only if even its least-served decile does acceptably.
	P10 float64
}

// Aggregate computes the system view over participant satisfactions.
// An empty input yields the neutral view (all fields 0.5).
func Aggregate(sats []float64) SystemView {
	if len(sats) == 0 {
		return SystemView{Mean: 0.5, Min: 0.5, P10: 0.5}
	}
	v := SystemView{Mean: metrics.Mean(sats), Min: sats[0], P10: metrics.Quantile(sats, 0.10)}
	for _, s := range sats {
		if s < v.Min {
			v.Min = s
		}
	}
	return v
}
