package satisfaction

import "fmt"

// Model bundles the tunable parameters of the Quiané-Ruiz satisfaction
// model for callers that configure scenarios declaratively (the public
// facade's WithSatisfactionModel option).
type Model struct {
	// Memory is the EMA weight of past satisfaction in [0,1)
	// (DefaultMemory when zero).
	Memory float64 `json:"memory,omitempty"`
}

// DefaultModel returns the model with the paper-calibrated defaults.
func DefaultModel() Model { return Model{Memory: DefaultMemory} }

// Validate checks the parameters, resolving zero values to defaults.
func (m Model) Validate() (Model, error) {
	if m.Memory == 0 {
		m.Memory = DefaultMemory
	}
	if m.Memory < 0 || m.Memory >= 1 {
		return m, fmt.Errorf("satisfaction: memory %v out of [0,1)", m.Memory)
	}
	return m, nil
}
