package satisfaction

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestNewConsumerValidation(t *testing.T) {
	if _, err := NewConsumer(nil, 0.1); err == nil {
		t.Fatal("empty prefs accepted")
	}
	if _, err := NewConsumer([]float64{0.5}, -1); err == nil {
		t.Fatal("negative memory accepted")
	}
	if _, err := NewConsumer([]float64{0.5}, 1.5); err == nil {
		t.Fatal("memory > 1 accepted")
	}
	c, err := NewConsumer([]float64{2, -1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Preference(0) != 1 || c.Preference(1) != 0 {
		t.Fatal("prefs not clamped")
	}
}

func TestAdequacyBestChoice(t *testing.T) {
	c, err := NewConsumer([]float64{0.2, 0.8, 0.4}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Adequacy(1, []int{0, 1, 2}); got != 1 {
		t.Fatalf("best-choice adequacy = %v, want 1", got)
	}
	if got := c.Adequacy(2, []int{0, 1, 2}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("half-preferred adequacy = %v, want 0.5", got)
	}
	if got := c.Adequacy(0, []int{0}); got != 1 {
		t.Fatalf("only-candidate adequacy = %v, want 1", got)
	}
}

func TestAdequacyInvalidChoices(t *testing.T) {
	c, err := NewConsumer([]float64{0.2, 0.8}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Adequacy(5, []int{0, 1}) != 0 {
		t.Fatal("out-of-range chosen != 0")
	}
	if c.Adequacy(0, []int{1}) != 0 {
		t.Fatal("chosen outside candidate set != 0")
	}
	if c.Adequacy(-1, []int{0}) != 0 {
		t.Fatal("negative chosen != 0")
	}
}

func TestAdequacyIndifferentConsumer(t *testing.T) {
	c, err := NewConsumer([]float64{0, 0}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Adequacy(0, []int{0, 1}); got != 1 {
		t.Fatalf("indifferent adequacy = %v, want 1", got)
	}
}

func TestSatisfactionEMA(t *testing.T) {
	c, err := NewConsumer([]float64{1, 0}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Satisfaction() != 0.5 {
		t.Fatal("no-history satisfaction != 0.5")
	}
	c.Observe(0, []int{0, 1}) // adequacy 1; first observation seeds EMA
	if c.Satisfaction() != 1 {
		t.Fatalf("sat = %v, want 1", c.Satisfaction())
	}
	c.ObserveFailure() // adequacy 0
	if got := c.Satisfaction(); got != 0.5 {
		t.Fatalf("sat = %v, want 0.5", got)
	}
	if c.Observations() != 2 {
		t.Fatalf("observations = %d", c.Observations())
	}
}

func TestLongRunConvergence(t *testing.T) {
	// Consistently receiving the preferred provider drives satisfaction
	// toward 1; consistently failing drives it toward 0.
	c, err := NewConsumer([]float64{0.9, 0.1}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Observe(0, []int{0, 1})
	}
	if got := c.Satisfaction(); got < 0.99 {
		t.Fatalf("long-run satisfied consumer = %v", got)
	}
	for i := 0; i < 200; i++ {
		c.ObserveFailure()
	}
	if got := c.Satisfaction(); got > 0.01 {
		t.Fatalf("long-run failed consumer = %v", got)
	}
}

func TestImposedAllocationOnlyDents(t *testing.T) {
	// The paper: a provider can stay satisfied even if the system sometimes
	// imposes requests it does not intend to treat.
	p, err := NewProvider([]float64{1.0, 0.0}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p.Observe(0) // wanted consumer
	}
	p.Observe(1) // one imposed request
	if got := p.Satisfaction(); got < 0.85 {
		t.Fatalf("one imposed request dropped satisfaction to %v", got)
	}
	// But a flood of imposed requests erodes it.
	for i := 0; i < 100; i++ {
		p.Observe(1)
	}
	if got := p.Satisfaction(); got > 0.05 {
		t.Fatalf("imposed-flood satisfaction = %v", got)
	}
}

func TestPreferenceLearning(t *testing.T) {
	c, err := NewConsumer([]float64{0.5, 0.5}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		c.UpdatePreference(0, 1.0) // provider 0 delivers perfectly
		c.UpdatePreference(1, 0.0) // provider 1 always fails
	}
	if c.Preference(0) < 0.95 || c.Preference(1) > 0.05 {
		t.Fatalf("prefs after learning = %v / %v", c.Preference(0), c.Preference(1))
	}
	c.UpdatePreference(9, 1) // out of range: no-op
	if c.Preference(9) != 0 {
		t.Fatal("phantom preference")
	}
}

func TestProviderValidation(t *testing.T) {
	if _, err := NewProvider(nil, 0.1); err == nil {
		t.Fatal("empty willingness accepted")
	}
	if _, err := NewProvider([]float64{1}, 2); err == nil {
		t.Fatal("memory > 1 accepted")
	}
	p, err := NewProvider([]float64{0.7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Satisfaction() != 0.5 {
		t.Fatal("fresh provider not neutral")
	}
	if p.Willingness(5) != 0 {
		t.Fatal("out-of-range willingness != 0")
	}
}

func TestAggregate(t *testing.T) {
	v := Aggregate([]float64{0.2, 0.4, 0.6, 0.8, 1.0})
	if math.Abs(v.Mean-0.6) > 1e-12 {
		t.Fatalf("mean = %v", v.Mean)
	}
	if v.Min != 0.2 {
		t.Fatalf("min = %v", v.Min)
	}
	if v.P10 < 0.2 || v.P10 > 0.4 {
		t.Fatalf("p10 = %v", v.P10)
	}
	empty := Aggregate(nil)
	if empty.Mean != 0.5 || empty.Min != 0.5 || empty.P10 != 0.5 {
		t.Fatalf("empty aggregate = %+v", empty)
	}
}

func TestSatisfactionAlwaysInUnitInterval(t *testing.T) {
	f := func(seed uint16) bool {
		rng := sim.NewRNG(uint64(seed))
		nProv := 2 + rng.Intn(5)
		prefs := make([]float64, nProv)
		for i := range prefs {
			prefs[i] = rng.Float64()
		}
		c, err := NewConsumer(prefs, 0.1+rng.Float64()*0.9)
		if err != nil {
			return false
		}
		for step := 0; step < 50; step++ {
			if rng.Bool(0.2) {
				c.ObserveFailure()
			} else {
				cands := rng.Sample(nProv, 1+rng.Intn(nProv))
				c.Observe(cands[rng.Intn(len(cands))], cands)
			}
			c.UpdatePreference(rng.Intn(nProv), rng.Float64())
			if s := c.Satisfaction(); s < 0 || s > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneBetterAllocationsBetterSatisfaction(t *testing.T) {
	// Property: a consumer always given its top candidate ends at least as
	// satisfied as one always given its worst candidate.
	prefs := []float64{0.9, 0.5, 0.1}
	top, err := NewConsumer(prefs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := NewConsumer(prefs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cands := []int{0, 1, 2}
	for i := 0; i < 60; i++ {
		top.Observe(0, cands)
		worst.Observe(2, cands)
	}
	if top.Satisfaction() <= worst.Satisfaction() {
		t.Fatalf("top %v <= worst %v", top.Satisfaction(), worst.Satisfaction())
	}
}
