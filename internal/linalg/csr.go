// Package linalg is the sparse linear-algebra kernel under the reputation
// mechanisms: CSR trust matrices with incremental per-row updates and a
// deterministic, shard-parallel sparse matrix–vector product. Every epoch
// the interaction graph touches only a sliver of the population, so the
// mechanisms rematerialize just the changed rows and pay O(nnz) per power
// iteration instead of the Θ(n²) a dense [][]float64 costs.
//
// Determinism is a hard contract, matching the epoch pipeline's: all
// results are bit-for-bit identical for every worker count (see spmv.go for
// the canonical-fold argument).
package linalg

import (
	"fmt"
	"sort"
)

// extent locates one row inside the shared arena.
type extent struct {
	off, n, cap int
}

// CSR is a square sparse matrix in compressed-sparse-row form. All rows
// share one (cols, vals) arena; each row occupies a contiguous extent with
// slack capacity so hot rows can be rewritten in place as trust accumulates.
// Rows that outgrow their extent move to the arena tail, and the arena is
// repacked automatically once the leaked space exceeds the live entries.
//
// Column indices within a row are strictly ascending — the invariant every
// kernel (SpMV accumulation order, row normalization, golden equivalence
// with the dense reference) rests on.
type CSR struct {
	n    int
	rows []extent
	cols []int32
	vals []float64
	live int // live entries; len(cols) - live is leaked by row moves
}

// New returns an empty n×n matrix.
func New(n int) *CSR {
	if n < 0 {
		n = 0
	}
	return &CSR{n: n, rows: make([]extent, n)}
}

// Triplet is one (row, col, value) coordinate entry.
type Triplet struct {
	Row, Col int
	Val      float64
}

// FromTriplets builds a matrix from coordinate entries in any order;
// duplicate coordinates are summed. Out-of-range coordinates are an error.
func FromTriplets(n int, ts []Triplet) (*CSR, error) {
	for _, t := range ts {
		if t.Row < 0 || t.Row >= n || t.Col < 0 || t.Col >= n {
			return nil, fmt.Errorf("linalg: triplet (%d,%d) out of range [0,%d)", t.Row, t.Col, n)
		}
	}
	sorted := append([]Triplet(nil), ts...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Row != sorted[b].Row {
			return sorted[a].Row < sorted[b].Row
		}
		return sorted[a].Col < sorted[b].Col
	})
	c := New(n)
	c.cols = make([]int32, 0, len(sorted))
	c.vals = make([]float64, 0, len(sorted))
	for i := 0; i < len(sorted); {
		row := sorted[i].Row
		off := len(c.cols)
		for ; i < len(sorted) && sorted[i].Row == row; i++ {
			if k := len(c.cols); k > off && c.cols[k-1] == int32(sorted[i].Col) {
				c.vals[k-1] += sorted[i].Val
				continue
			}
			c.cols = append(c.cols, int32(sorted[i].Col))
			c.vals = append(c.vals, sorted[i].Val)
		}
		c.rows[row] = extent{off: off, n: len(c.cols) - off, cap: len(c.cols) - off}
	}
	c.live = len(c.cols)
	return c, nil
}

// N returns the matrix dimension.
func (c *CSR) N() int { return c.n }

// NNZ returns the number of stored entries.
func (c *CSR) NNZ() int { return c.live }

// Row returns row i's column indices (ascending) and values. The slices
// alias internal storage: they are read-only and valid only until the next
// mutating call (SetRow, NormalizeRow, ClearRow).
func (c *CSR) Row(i int) ([]int32, []float64) {
	e := c.rows[i]
	return c.cols[e.off : e.off+e.n], c.vals[e.off : e.off+e.n]
}

// RowEmpty reports whether row i has no stored entries.
func (c *CSR) RowEmpty(i int) bool { return c.rows[i].n == 0 }

// SetRow replaces row i. cols must be strictly ascending and in range —
// a violated invariant is a programming error and panics — and cols/vals
// must not alias the matrix's own storage (pass scratch buffers, not the
// slices returned by Row). The row is rewritten in place when it fits its
// extent; otherwise it moves to the arena tail (compacting first if the
// arena has leaked past its live size).
func (c *CSR) SetRow(i int, cols []int32, vals []float64) {
	if i < 0 || i >= c.n {
		panic(fmt.Sprintf("linalg: SetRow row %d out of range [0,%d)", i, c.n))
	}
	if len(cols) != len(vals) {
		panic(fmt.Sprintf("linalg: SetRow row %d: %d cols vs %d vals", i, len(cols), len(vals)))
	}
	for k, col := range cols {
		if col < 0 || int(col) >= c.n {
			panic(fmt.Sprintf("linalg: SetRow row %d: column %d out of range [0,%d)", i, col, c.n))
		}
		if k > 0 && cols[k-1] >= col {
			panic(fmt.Sprintf("linalg: SetRow row %d: columns not strictly ascending at %d", i, k))
		}
	}
	e := c.rows[i]
	if len(cols) <= e.cap {
		copy(c.cols[e.off:], cols)
		copy(c.vals[e.off:], vals)
		c.live += len(cols) - e.n
		c.rows[i] = extent{off: e.off, n: len(cols), cap: e.cap}
		return
	}
	// Abandon the old extent; emptying it first lets a compaction pass
	// drop it instead of copying dead entries.
	c.live -= e.n
	c.rows[i].n = 0
	if len(c.cols) > 2*(c.live+len(cols))+64 {
		c.compact()
	}
	// Slack absorbs the steady growth of a filling trust row without a move
	// per added entry.
	slack := len(cols)/4 + 4
	off := len(c.cols)
	c.cols = append(c.cols, cols...)
	c.vals = append(c.vals, vals...)
	for k := 0; k < slack; k++ {
		c.cols = append(c.cols, 0)
		c.vals = append(c.vals, 0)
	}
	c.rows[i] = extent{off: off, n: len(cols), cap: len(cols) + slack}
	c.live += len(cols)
}

// ClearRow empties row i (its extent capacity is kept for reuse).
func (c *CSR) ClearRow(i int) {
	c.live -= c.rows[i].n
	c.rows[i].n = 0
}

// NormalizeRow scales row i to sum 1, returning the pre-normalization sum.
// The sum is accumulated in ascending column order, so it is deterministic
// and matches a dense left-to-right row scan bit for bit. A row with a
// non-positive sum is cleared: it is a dangling row, handled by the SpMV's
// rank-one correction instead of a dense uniform fill.
func (c *CSR) NormalizeRow(i int) float64 {
	e := c.rows[i]
	sum := 0.0
	for _, v := range c.vals[e.off : e.off+e.n] {
		sum += v
	}
	if sum <= 0 {
		c.ClearRow(i)
		return sum
	}
	for k := e.off; k < e.off+e.n; k++ {
		c.vals[k] /= sum
	}
	return sum
}

// compact repacks the arena, dropping extents leaked by row moves. Row
// order is preserved, so iteration order — and therefore every numeric
// result — is unchanged.
func (c *CSR) compact() {
	cols := make([]int32, 0, c.live+c.live/4)
	vals := make([]float64, 0, c.live+c.live/4)
	for i := range c.rows {
		e := c.rows[i]
		off := len(cols)
		cols = append(cols, c.cols[e.off:e.off+e.n]...)
		vals = append(vals, c.vals[e.off:e.off+e.n]...)
		c.rows[i] = extent{off: off, n: e.n, cap: e.n}
	}
	c.cols, c.vals = cols, vals
}
