package linalg

import "repro/internal/sim"

// The scatter phase of the parallel SpMV works over fixed row blocks. The
// block decomposition is a function of the matrix dimension ONLY — never of
// the worker count — so each block's partial vector is computed by exactly
// one worker with a deterministic serial accumulation order, and the fold
// sums the partials in canonical (ascending block) order. Worker count then
// only changes which goroutine computes a block, not any float operation or
// its order: results are bit-for-bit identical for every parallelism.
const (
	spmvBlockRows = 256
	spmvMaxBlocks = 32
)

// BlockCount returns the canonical scatter block count for an n-row matrix —
// the decomposition the cluster layer fans out to worker processes. It is a
// function of n ONLY (never of worker or process count), which is what makes
// a distributed SpMV bit-identical to the local one: each block's partial is
// produced by the same serial accumulation wherever it runs, and FoldBlocks
// folds them in the same canonical order MulTranspose does.
func BlockCount(n int) int { return blockCount(n) }

// blockCount returns the canonical scatter block count for an n-row matrix.
func blockCount(n int) int {
	b := (n + spmvBlockRows - 1) / spmvBlockRows
	if b < 1 {
		b = 1
	}
	if b > spmvMaxBlocks {
		b = spmvMaxBlocks
	}
	return b
}

// Workspace holds the SpMV scratch buffers (per-block partial vectors and
// dangling masses). Reusing one workspace across iterations keeps the power
// iteration allocation-free in steady state. A workspace must not be shared
// by concurrent SpMV calls.
type Workspace struct {
	partial [][]float64
	mass    []float64
}

// ensure sizes the workspace for a blocks×n scatter.
func (w *Workspace) ensure(blocks, n int) {
	if len(w.mass) < blocks {
		w.mass = make([]float64, blocks)
	}
	for len(w.partial) < blocks {
		w.partial = append(w.partial, nil)
	}
	for b := 0; b < blocks; b++ {
		if len(w.partial[b]) < n {
			w.partial[b] = make([]float64, n)
		}
	}
}

// MulTranspose computes y = Aᵀx + mass·dangle, where mass is the total x
// weight sitting on empty (dangling) rows: mass = Σ_{i : row i empty} x[i].
// This is the rank-one uniform correction that replaces a dense uniform (or
// pretrust) fill of silent rows — dangle is the distribution a dangling
// row's weight jumps to (nil applies no correction). x and y must have
// length N and must not overlap.
//
// The product scatters over the canonical row blocks on up to `workers`
// goroutines and folds the partial results in ascending block order; see
// the package comment for why the result is bit-for-bit identical at any
// worker count.
func (c *CSR) MulTranspose(y, x, dangle []float64, workers int, ws *Workspace) {
	n := c.n
	if n == 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	blocks := blockCount(n)
	ws.ensure(blocks, n)
	rowsPer := (n + blocks - 1) / blocks

	// Scatter: each block accumulates its rows' contributions into its own
	// partial vector, rows ascending, columns ascending within a row.
	if workers == 1 {
		// Inline serial path: no closures, so the steady state is
		// allocation-free.
		c.scatter(ws, x, rowsPer, 0, blocks)
	} else {
		sim.ForChunks(workers, blocks, func(lob, hib int) {
			c.scatter(ws, x, rowsPer, lob, hib)
		})
	}

	mass := 0.0
	for b := 0; b < blocks; b++ {
		mass += ws.mass[b]
	}

	// Fold: each output index is owned by one worker and sums the partials
	// in ascending block order — canonical regardless of chunking.
	if workers == 1 {
		fold(ws, y, dangle, mass, blocks, 0, n)
	} else {
		sim.ForChunks(workers, n, func(lo, hi int) {
			fold(ws, y, dangle, mass, blocks, lo, hi)
		})
	}
}

// ScatterBlocks computes the partial vectors and dangling masses of the
// canonical scatter blocks [lob, hib) for y = Aᵀx: partials[k] is block
// lob+k's length-n partial, masses[k] its dangling x mass. It runs exactly
// the serial per-block accumulation MulTranspose's scatter phase runs, so a
// partial computed here — in another process, say — is bit-for-bit the one
// the local kernel would have produced. Pair with FoldBlocks on the full
// block set to finish the product.
func (c *CSR) ScatterBlocks(x []float64, lob, hib int) (partials [][]float64, masses []float64) {
	n := c.n
	if n == 0 || lob >= hib {
		return nil, nil
	}
	blocks := blockCount(n)
	if hib > blocks {
		hib = blocks
	}
	var ws Workspace
	ws.ensure(blocks, n)
	rowsPer := (n + blocks - 1) / blocks
	c.scatter(&ws, x, rowsPer, lob, hib)
	partials = make([][]float64, hib-lob)
	for b := lob; b < hib; b++ {
		partials[b-lob] = ws.partial[b][:n]
	}
	return partials, ws.mass[lob:hib]
}

// FoldBlocks completes y = Aᵀx + mass·dangle from a full set of per-block
// partials (partials[b] for block b, ascending; masses likewise). The fold
// runs the same arithmetic in the same order as MulTranspose's fold phase —
// masses summed in ascending block order, each output index summing its
// partials in ascending block order before the rank-one dangling correction
// — so a product assembled from remotely computed blocks is bit-identical
// to the local one. dangle == nil applies no correction.
func FoldBlocks(y, dangle []float64, partials [][]float64, masses []float64) {
	mass := 0.0
	for _, m := range masses {
		mass += m
	}
	blocks := len(partials)
	for j := range y {
		s := 0.0
		for b := 0; b < blocks; b++ {
			s += partials[b][j]
		}
		if dangle == nil {
			y[j] = s
		} else {
			y[j] = s + mass*dangle[j]
		}
	}
}

// scatter accumulates blocks [lob, hib) of the transpose product into the
// workspace's per-block partial vectors and dangling masses.
func (c *CSR) scatter(ws *Workspace, x []float64, rowsPer, lob, hib int) {
	n := c.n
	for b := lob; b < hib; b++ {
		p := ws.partial[b]
		for j := 0; j < n; j++ {
			p[j] = 0
		}
		mass := 0.0
		lo, hi := b*rowsPer, (b+1)*rowsPer
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			e := c.rows[i]
			if e.n == 0 {
				mass += x[i]
				continue
			}
			xi := x[i]
			if xi == 0 {
				continue
			}
			cols := c.cols[e.off : e.off+e.n]
			vals := c.vals[e.off : e.off+e.n]
			for k, col := range cols {
				p[col] += vals[k] * xi
			}
		}
		ws.mass[b] = mass
	}
}

// fold sums output indices [lo, hi) across all block partials in ascending
// block order, applying the rank-one dangling correction when dangle is set.
func fold(ws *Workspace, y, dangle []float64, mass float64, blocks, lo, hi int) {
	if dangle == nil {
		for j := lo; j < hi; j++ {
			s := 0.0
			for b := 0; b < blocks; b++ {
				s += ws.partial[b][j]
			}
			y[j] = s
		}
		return
	}
	for j := lo; j < hi; j++ {
		s := 0.0
		for b := 0; b < blocks; b++ {
			s += ws.partial[b][j]
		}
		y[j] = s + mass*dangle[j]
	}
}
