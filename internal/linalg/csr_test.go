package linalg

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// denseOf expands the matrix for reference checks.
func denseOf(c *CSR) [][]float64 {
	d := make([][]float64, c.n)
	for i := 0; i < c.n; i++ {
		d[i] = make([]float64, c.n)
		cols, vals := c.Row(i)
		for k, col := range cols {
			d[i][col] = vals[k]
		}
	}
	return d
}

func TestFromTriplets(t *testing.T) {
	c, err := FromTriplets(3, []Triplet{
		{Row: 2, Col: 0, Val: 1},
		{Row: 0, Col: 1, Val: 2},
		{Row: 0, Col: 1, Val: 3}, // duplicate: summed
		{Row: 0, Col: 2, Val: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", c.NNZ())
	}
	d := denseOf(c)
	want := [][]float64{{0, 5, 4}, {0, 0, 0}, {1, 0, 0}}
	for i := range want {
		for j := range want[i] {
			if d[i][j] != want[i][j] {
				t.Fatalf("at (%d,%d): %v, want %v", i, j, d[i][j], want[i][j])
			}
		}
	}
	if !c.RowEmpty(1) || c.RowEmpty(0) {
		t.Fatal("RowEmpty wrong")
	}
	if _, err := FromTriplets(2, []Triplet{{Row: 0, Col: 5, Val: 1}}); err == nil {
		t.Fatal("out-of-range triplet accepted")
	}
}

func TestSetRowGrowthAndCompaction(t *testing.T) {
	c := New(4)
	rng := sim.NewRNG(1)
	// Repeatedly rewrite rows with growing support; the arena must stay
	// consistent through in-place rewrites, moves and compactions.
	want := make([][]float64, 4)
	for i := range want {
		want[i] = make([]float64, 4)
	}
	for step := 0; step < 200; step++ {
		i := rng.Intn(4)
		k := rng.Intn(5)
		cols := make([]int32, 0, k)
		vals := make([]float64, 0, k)
		for j := int32(0); j < 4 && len(cols) < k; j++ {
			if rng.Bool(0.7) {
				cols = append(cols, j)
				vals = append(vals, rng.Float64())
			}
		}
		c.SetRow(i, cols, vals)
		for j := range want[i] {
			want[i][j] = 0
		}
		for k, col := range cols {
			want[i][col] = vals[k]
		}
		d := denseOf(c)
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				if d[a][b] != want[a][b] {
					t.Fatalf("step %d: at (%d,%d): %v, want %v", step, a, b, d[a][b], want[a][b])
				}
			}
		}
	}
}

func TestSetRowPanicsOnBadInput(t *testing.T) {
	c := New(3)
	for name, fn := range map[string]func(){
		"unsorted":     func() { c.SetRow(0, []int32{2, 1}, []float64{1, 1}) },
		"out-of-range": func() { c.SetRow(0, []int32{5}, []float64{1}) },
		"length":       func() { c.SetRow(0, []int32{1}, []float64{1, 2}) },
		"bad-row":      func() { c.SetRow(9, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted", name)
				}
			}()
			fn()
		}()
	}
}

func TestNormalizeRow(t *testing.T) {
	c := New(3)
	c.SetRow(0, []int32{0, 2}, []float64{1, 3})
	if sum := c.NormalizeRow(0); sum != 4 {
		t.Fatalf("sum = %v, want 4", sum)
	}
	_, vals := c.Row(0)
	if vals[0] != 0.25 || vals[1] != 0.75 {
		t.Fatalf("normalized row = %v", vals)
	}
	// A zero-sum row becomes dangling, not a dense uniform fill.
	c.SetRow(1, []int32{0, 1}, []float64{0, 0})
	if sum := c.NormalizeRow(1); sum != 0 {
		t.Fatalf("zero row sum = %v", sum)
	}
	if !c.RowEmpty(1) {
		t.Fatal("zero-sum row not cleared")
	}
}

// randomMatrix builds a random sparse row-stochastic-ish matrix with some
// dangling rows.
func randomMatrix(t *testing.T, rng *sim.RNG, n int) *CSR {
	t.Helper()
	var ts []Triplet
	for i := 0; i < n; i++ {
		if rng.Bool(0.2) {
			continue // dangling row
		}
		deg := 1 + rng.Intn(4)
		for d := 0; d < deg; d++ {
			ts = append(ts, Triplet{Row: i, Col: rng.Intn(n), Val: rng.Float64()})
		}
	}
	c, err := FromTriplets(n, ts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMulTransposeMatchesDense(t *testing.T) {
	rng := sim.NewRNG(7)
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(30)
		c := randomMatrix(t, rng, n)
		x := make([]float64, n)
		dangle := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
			dangle[i] = rng.Float64()
		}
		y := make([]float64, n)
		var ws Workspace
		c.MulTranspose(y, x, dangle, 1, &ws)

		d := denseOf(c)
		want := make([]float64, n)
		mass := 0.0
		for i := 0; i < n; i++ {
			if c.RowEmpty(i) {
				mass += x[i]
				continue
			}
			for j := 0; j < n; j++ {
				want[j] += d[i][j] * x[i]
			}
		}
		for j := 0; j < n; j++ {
			want[j] += mass * dangle[j]
			if math.Abs(y[j]-want[j]) > 1e-12 {
				t.Fatalf("trial %d: y[%d] = %v, want %v", trial, j, y[j], want[j])
			}
		}
	}
}

func TestMulTransposeWorkerInvariance(t *testing.T) {
	rng := sim.NewRNG(11)
	// Large enough for multiple scatter blocks.
	n := 3 * spmvBlockRows
	c := randomMatrix(t, rng, n)
	x := make([]float64, n)
	dangle := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
		dangle[i] = 1 / float64(n)
	}
	ref := make([]float64, n)
	var ws Workspace
	c.MulTranspose(ref, x, dangle, 1, &ws)
	for _, workers := range []int{2, 3, 4, 8, 17} {
		y := make([]float64, n)
		var w2 Workspace
		c.MulTranspose(y, x, dangle, workers, &w2)
		for j := range y {
			if y[j] != ref[j] {
				t.Fatalf("workers=%d: y[%d] = %v differs from serial %v (bit-for-bit contract)",
					workers, j, y[j], ref[j])
			}
		}
	}
}

func TestMulTransposeNilDangle(t *testing.T) {
	c := New(2) // all rows dangling
	x := []float64{0.5, 0.5}
	y := []float64{9, 9}
	var ws Workspace
	c.MulTranspose(y, x, nil, 1, &ws)
	if y[0] != 0 || y[1] != 0 {
		t.Fatalf("nil dangle: y = %v, want zeros", y)
	}
}

func TestMulTransposeSteadyStateAllocFree(t *testing.T) {
	rng := sim.NewRNG(13)
	n := 400
	c := randomMatrix(t, rng, n)
	x := make([]float64, n)
	y := make([]float64, n)
	dangle := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
		dangle[i] = 1 / float64(n)
	}
	var ws Workspace
	c.MulTranspose(y, x, dangle, 1, &ws) // warm the workspace
	allocs := testing.AllocsPerRun(50, func() {
		c.MulTranspose(y, x, dangle, 1, &ws)
	})
	if allocs != 0 {
		t.Fatalf("steady-state SpMV allocates %v objects/op, want 0", allocs)
	}
}
