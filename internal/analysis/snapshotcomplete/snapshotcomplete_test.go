package snapshotcomplete_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/snapshotcomplete"
)

func TestDeterministicPackage(t *testing.T) {
	analysistest.Run(t, snapshotcomplete.Analyzer, "repro/internal/reputation/fixture", "testdata/src/a")
}

func TestToolsPackageIsExempt(t *testing.T) {
	analysistest.Run(t, snapshotcomplete.Analyzer, "repro/tools/fixture", "testdata/src/b")
}

// TestForgottenFieldRegression replays the failure mode the analyzer
// exists to prevent: a mechanism grows a new piece of live state
// (`momentum`) and its author forgets to thread it through the snapshot.
// The analyzer must name exactly that field and nothing else.
func TestForgottenFieldRegression(t *testing.T) {
	const src = `package fixture

// Mechanism mirrors the repo's reputation-mechanism snapshot idiom.
type Mechanism struct {
	scores   []float64
	round    int
	momentum []float64 // want "field Mechanism.momentum is not captured by the snapshot encode path"
}

type MechanismState struct {
	Scores []float64
	Round  int
}

func (m *Mechanism) State() MechanismState {
	return MechanismState{
		Scores: append([]float64(nil), m.scores...),
		Round:  m.round,
	}
}

func (m *Mechanism) SetState(s MechanismState) {
	m.scores = append([]float64(nil), s.Scores...)
	m.round = s.Round
}
`
	diags := analysistest.RunSource(t, snapshotcomplete.Analyzer, "repro/internal/reputation/fixture",
		map[string]string{"mech.go": src})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1 (the forgotten field)", len(diags))
	}
	if !strings.Contains(diags[0].Message, "momentum") {
		t.Fatalf("diagnostic does not name the forgotten field: %s", diags[0].Message)
	}
}
