// Package snapshotcomplete cross-checks the structs participating in the
// repo's snapshot machinery against their encode/decode paths, killing the
// recurring "added a field, forgot the snapshot" bug class.
//
// The snapshot idiom is uniform across the deterministic packages: a live
// struct T carries unexported mutable state; a method on T named State,
// Snapshot or MechanismState captures it into an exported state struct S
// (either returned directly or gob-encoded to a []byte); a method named
// SetState, Restore or RestoreMechanismState — or a package function named
// Restore<T> — writes it back. The analyzer enforces, for every such pair:
//
//   - every field of the live struct T is read somewhere in T's encode
//     path, or carries `//trustlint:derived <reason>` declaring it
//     configuration/derived state that is deliberately rebuilt;
//   - every field of the state struct S is filled by the encode path
//     (forgetting one silently gob-encodes a zero value);
//   - every field of S is consumed by the decode path (forgetting one
//     silently drops restored state).
//
// Field mentions are resolved through the type checker, so reading a field
// inside a nested expression (d.cfg.BaseHonesty), a composite-literal key
// (Trust: …) or a copy/append call all count.
package snapshotcomplete

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the snapshotcomplete pass.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotcomplete",
	Doc:  "cross-check snapshot state structs against their encode/decode paths",
	Run:  run,
}

var (
	encodeNames = map[string]bool{"State": true, "Snapshot": true, "MechanismState": true}
	decodeNames = map[string]bool{"SetState": true, "Restore": true, "RestoreMechanismState": true}
)

func run(pass *analysis.Pass) (any, error) {
	if !analysis.IsDeterministic(pass.Pkg.Path()) {
		return nil, nil
	}

	type pathInfo struct {
		fns   []*ast.FuncDecl
		names []string // method names, for diagnostics
	}
	encByRecv := make(map[*types.Named]*pathInfo)  // live struct -> encode fns
	encByState := make(map[*types.Named]*pathInfo) // state struct -> encode fns
	decByState := make(map[*types.Named]*pathInfo) // state struct -> decode fns
	stateStructs := make(map[*types.Named]bool)

	add := func(m map[*types.Named]*pathInfo, key *types.Named, fn *ast.FuncDecl) {
		info := m[key]
		if info == nil {
			info = &pathInfo{}
			m[key] = info
		}
		info.fns = append(info.fns, fn)
		info.names = append(info.names, fn.Name.Name)
	}

	var decls []*ast.FuncDecl
	for _, f := range pass.SourceFiles() {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				decls = append(decls, fn)
			}
		}
	}

	// Pass 1: encode paths, which also discover the state structs.
	for _, fn := range decls {
		if fn.Recv == nil || !encodeNames[fn.Name.Name] {
			continue
		}
		recv := receiverNamed(pass, fn)
		if recv == nil {
			continue
		}
		add(encByRecv, recv, fn)
		s := stateStructOf(pass, fn)
		if s != nil {
			stateStructs[s] = true
			add(encByState, s, fn)
		}
	}

	// Pass 2: decode paths (methods, plus Restore* package functions).
	for _, fn := range decls {
		isMethod := fn.Recv != nil && decodeNames[fn.Name.Name]
		isFunc := fn.Recv == nil && strings.HasPrefix(fn.Name.Name, "Restore")
		if !isMethod && !isFunc {
			continue
		}
		s := paramStateStruct(pass, fn)
		if s == nil && isMethod {
			s = localStateStruct(pass, fn, stateStructs)
		}
		if s != nil {
			add(decByState, s, fn)
		}
	}

	// Checks. Iterate structs in source order for deterministic output.
	report := func(m map[*types.Named]*pathInfo, check func(*types.Named, *pathInfo)) {
		keys := make([]*types.Named, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Obj().Pos() < keys[j].Obj().Pos() })
		for _, k := range keys {
			check(k, m[k])
		}
	}

	report(encByRecv, func(recv *types.Named, info *pathInfo) {
		mentioned := mentionedFields(pass, info.fns)
		eachField(recv, func(f *types.Var) {
			if mentioned[f] || analysis.Suppressed(pass, f.Pos(), analysis.WaiverDerived) {
				return
			}
			pass.Reportf(f.Pos(), "field %s.%s is not captured by the snapshot encode path (%s) and not annotated //trustlint:derived <reason>",
				recv.Obj().Name(), f.Name(), strings.Join(info.names, ", "))
		})
	})
	report(encByState, func(s *types.Named, info *pathInfo) {
		mentioned := mentionedFields(pass, info.fns)
		eachField(s, func(f *types.Var) {
			if mentioned[f] || analysis.Suppressed(pass, f.Pos(), analysis.WaiverDerived) {
				return
			}
			pass.Reportf(f.Pos(), "snapshot field %s.%s is never filled by the encode path (%s) — added a field and forgot the snapshot?",
				s.Obj().Name(), f.Name(), strings.Join(info.names, ", "))
		})
	})
	report(decByState, func(s *types.Named, info *pathInfo) {
		mentioned := mentionedFields(pass, info.fns)
		eachField(s, func(f *types.Var) {
			if mentioned[f] || analysis.Suppressed(pass, f.Pos(), analysis.WaiverDerived) {
				return
			}
			pass.Reportf(f.Pos(), "snapshot field %s.%s is not consumed by the restore path (%s) — restore is incomplete",
				s.Obj().Name(), f.Name(), strings.Join(info.names, ", "))
		})
	})
	return nil, nil
}

// receiverNamed resolves a method's receiver to its named struct type, or
// nil if the receiver is not a (pointer to) package-local struct.
func receiverNamed(pass *analysis.Pass, fn *ast.FuncDecl) *types.Named {
	if len(fn.Recv.List) != 1 {
		return nil
	}
	t := pass.TypesInfo.Types[fn.Recv.List[0].Type].Type
	return packageStruct(pass, t)
}

// packageStruct unwraps pointers and reports t as a named struct type
// declared in the package under analysis, or nil.
func packageStruct(pass *analysis.Pass, t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != pass.Pkg {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// stateStructOf identifies the state struct an encode method produces:
// its first struct result, or failing that (the gob []byte wrappers) the
// first package-local struct composite literal in its body.
func stateStructOf(pass *analysis.Pass, fn *ast.FuncDecl) *types.Named {
	if fn.Type.Results != nil {
		for _, res := range fn.Type.Results.List {
			if s := packageStruct(pass, pass.TypesInfo.Types[res.Type].Type); s != nil {
				return s
			}
		}
	}
	var found *types.Named
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if lit, ok := n.(*ast.CompositeLit); ok {
			if s := packageStruct(pass, pass.TypesInfo.Types[lit].Type); s != nil {
				found = s
				return false
			}
		}
		return true
	})
	return found
}

// paramStateStruct returns the first parameter whose type is a package-local
// named struct (the state struct of a SetState/Restore signature).
func paramStateStruct(pass *analysis.Pass, fn *ast.FuncDecl) *types.Named {
	for _, p := range fn.Type.Params.List {
		if s := packageStruct(pass, pass.TypesInfo.Types[p.Type].Type); s != nil {
			return s
		}
	}
	return nil
}

// localStateStruct finds the state struct a []byte-decoding method
// deserializes into: the first local variable whose type is one of the known
// state structs (`var st mechanismState`).
func localStateStruct(pass *analysis.Pass, fn *ast.FuncDecl, known map[*types.Named]bool) *types.Named {
	var found *types.Named
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Defs[id].(*types.Var)
		if !ok {
			return true
		}
		if s := packageStruct(pass, obj.Type()); s != nil && known[s] {
			found = s
		}
		return true
	})
	return found
}

// mentionedFields collects every struct field object referenced anywhere in
// the given function bodies: selector expressions, composite-literal keys,
// nested accesses — the type checker records them all as uses.
func mentionedFields(pass *analysis.Pass, fns []*ast.FuncDecl) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, fn := range fns {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && v.IsField() {
					out[v] = true
				}
			}
			return true
		})
	}
	return out
}

func eachField(named *types.Named, fn func(*types.Var)) {
	st := named.Underlying().(*types.Struct)
	for i := 0; i < st.NumFields(); i++ {
		fn(st.Field(i))
	}
}
