// Fixture for the snapshotcomplete analyzer, analyzed under a
// deterministic package path. Engine follows the repo's live-struct +
// State/SetState snapshot idiom, with one deliberately forgotten live
// field, one snapshot field the restore ignores, and one snapshot field the
// encode never fills.
package a

// Engine is the live struct.
type Engine struct {
	scores  []float64
	round   int
	cache   []float64 // want "field Engine.cache is not captured by the snapshot encode path"
	scratch []float64 //trustlint:derived per-call scratch, contents never outlive one call
	tmp     []byte    /* want "waiver is missing its mandatory reason" */ //trustlint:derived
}

// EngineState is the snapshot.
type EngineState struct {
	Scores []float64
	Round  int
	Extra  int // want "snapshot field EngineState.Extra is not consumed by the restore path"
	Legacy int // want "snapshot field EngineState.Legacy is never filled by the encode path"
}

// State captures the engine.
func (e *Engine) State() EngineState {
	return EngineState{
		Scores: append([]float64(nil), e.scores...),
		Round:  e.round,
		Extra:  7,
	}
}

// SetState restores the engine.
func (e *Engine) SetState(s EngineState) {
	e.scores = append([]float64(nil), s.Scores...)
	e.round = s.Round
	_ = s.Legacy
}

// Plain has no snapshot methods and is ignored by the analyzer.
type Plain struct {
	hidden int
}

// Grow is an unrelated method.
func (p *Plain) Grow() { p.hidden++ }
