// Fixture for the snapshotcomplete analyzer, analyzed under a
// NON-deterministic package path: the same forgotten field passes here.
package b

type Engine struct {
	scores []float64
	cache  []float64
}

type EngineState struct {
	Scores []float64
}

func (e *Engine) State() EngineState {
	return EngineState{Scores: append([]float64(nil), e.scores...)}
}

func (e *Engine) SetState(s EngineState) {
	e.scores = append([]float64(nil), s.Scores...)
}
