// Package unitchecker drives the trustlint analyzers under the `go vet
// -vettool` protocol, the same separate-compilation contract implemented by
// golang.org/x/tools/go/analysis/unitchecker (deliberately not imported so
// the module stays dependency-free).
//
// The go command invokes the tool three ways:
//
//	tool -flags            print the tool's analyzer flags as JSON
//	tool -V=full           print a version line for build caching
//	tool [flags] vet.cfg   analyze one package described by the JSON config
//
// The vet.cfg file (see cmd/go/internal/work.vetConfig) names the package's
// source files and maps each dependency's import path to a file containing
// gc export data, which go/importer can read directly — so full type
// information is available without loading any dependency source.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// config mirrors cmd/go/internal/work.vetConfig.
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vettool hosting the given analyzers. It does
// not return: it exits 0 on a clean run, 2 when diagnostics were reported,
// and 1 on driver errors.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		enabled[a.Name] = flag.Bool(a.Name, true, doc)
	}
	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON")
	version := flag.String("V", "", "print version and exit (-V=full)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `%[1]s: static analysis enforcing this repo's bit-identity invariants

Usage of %[1]s:
	%[1]s unit.cfg        # execute analysis specified by config file
	go vet -vettool=$(which %[1]s) ./...
Flags:
`, progname)
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *version != "":
		// The go command runs -V=full to derive a cache key; the line must
		// start with "<name> version" and should change with the binary.
		if *version != "full" {
			log.Fatalf("unsupported flag -V=%s", *version)
		}
		fmt.Printf("%s version devel buildID=%02x\n", progname, selfHash())
		os.Exit(0)
	case *printFlags:
		// JSON flag descriptions, queried by `go vet` before the run.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: doc})
		}
		data, err := json.Marshal(out)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		os.Exit(0)
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		flag.Usage()
		os.Exit(1)
	}

	var active []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	diags, err := run(args[0], active)
	if err != nil {
		log.Fatal(err)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
	os.Exit(0)
}

func selfHash() []byte {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	return h.Sum(nil)[:8]
}

// run analyzes the package described by cfgFile and returns rendered
// diagnostics in position order.
func run(cfgFile string, analyzers []*analysis.Analyzer) ([]string, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	// The go command expects the vetx (facts) output file to exist on
	// success. The trustlint analyzers are package-local and export no
	// facts, so an empty file satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	// Dependencies are vetted only for their facts; nothing to do.
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, not a source import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(importPath)
	})

	var tcErrs []error
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
		Error:     func(err error) { tcErrs = append(tcErrs, err) },
	}
	info := analysis.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		for _, e := range tcErrs {
			log.Println(e)
		}
		return nil, fmt.Errorf("typecheck failures in %s", cfg.ImportPath)
	}

	type posDiag struct {
		pos token.Position
		msg string
	}
	var diags []posDiag
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			diags = append(diags, posDiag{
				pos: fset.Position(d.Pos),
				msg: fmt.Sprintf("[%s] %s", name, d.Message),
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].pos, diags[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = fmt.Sprintf("%s: %s", d.pos, d.msg)
	}
	return out, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
