// Package analysis is the static-analysis layer of the repository: a small
// framework (modeled on golang.org/x/tools/go/analysis, which is deliberately
// not imported so the module stays dependency-free) hosting the trustlint
// analyzers that enforce the repo's bit-identity invariants at compile time.
//
// Every layer since PR 2 stakes its correctness on one invariant: equal seeds
// produce bit-for-bit identical results across shard counts, snapshot/restore
// boundaries, and the served-vs-batch twin. The golden suites defend that
// invariant after the fact; the analyzers in the subpackages of this package
// defend it at vet time, before a nondeterministic construct can reach a
// golden suite at all:
//
//   - mapiter: flags `for range` over map types in the deterministic
//     packages unless the loop body is order-independent or its collected
//     output feeds a sort before use.
//   - nondeterm: bans wall-clock (time.Now/Since/Until), global math/rand,
//     environment access (os.Getenv and friends), and fmt formatting of map
//     values in the deterministic packages. Randomness must flow through the
//     sim.RNG SplitMix64 streams; wall-clock belongs in cmd/, internal/serve
//     and tools/ only.
//   - snapshotcomplete: for every struct participating in the
//     Snapshot/State/gob machinery, cross-checks the declared fields against
//     the fields actually read by the encode path and filled/consumed on the
//     state struct, killing the "added a field, forgot the snapshot" bug
//     class.
//   - foldorder: flags floating-point accumulation into variables shared
//     across goroutine bodies (go statements and sim.ForChunks/RunIndexed
//     workers); shard results must be folded in index order on the spawning
//     goroutine.
//
// # Deterministic packages
//
// The analyzers police the eight package trees whose output is golden-pinned:
// internal/core, internal/workload, internal/reputation (including the
// mechanism subpackages), internal/linalg, internal/metrics, internal/sim,
// internal/satisfaction and internal/privacy. Packages off the deterministic
// path — cmd/, tools/, internal/serve and the remaining internal packages —
// are exempt, as are _test.go files (order-sensitive tests fail visibly on
// their own). See IsDeterministic.
//
// # Suppression comments
//
// Exactly two waiver comments exist, and both require a reason — a waiver
// without one is itself reported, so the analyzer output can never contain
// an unexplained exemption:
//
//	//trustlint:ordered <reason>
//
// placed on (or on the line directly above) a statement flagged by mapiter
// or foldorder, asserting that the flagged construct is order-independent
// for a reason the analyzer cannot see.
//
//	//trustlint:derived <reason>
//
// placed on (or on the line directly above) a struct field flagged by
// snapshotcomplete, asserting that the field is configuration or derived
// state that is deliberately rebuilt rather than serialized.
//
// # Adding an analyzer
//
// Create a subpackage exporting an *analysis.Analyzer, gate it on
// IsDeterministic (or your own scope rule) inside Run, add it to the list in
// cmd/trustlint, and give it an analysistest golden suite under
// testdata/src/. The driver in internal/analysis/unitchecker speaks the
// `go vet -vettool` protocol, so a registered analyzer automatically runs in
// CI over every package.
package analysis
