package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static-analysis pass. The shape mirrors
// golang.org/x/tools/go/analysis so the passes could migrate to the real
// framework if the module ever grows the dependency.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the trustlint
	// command line (each analyzer gets a -<name> bool flag).
	Name string
	// Doc is the analyzer's documentation; the first line is used as the
	// command-line flag usage string.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// Diagnostic is one finding, anchored at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	waivers *WaiverIndex
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// SourceFiles returns the pass's non-test files. The determinism invariants
// concern shipped code; _test.go files that depend on ordering fail visibly
// on their own and are exempt from the trustlint analyzers.
func (p *Pass) SourceFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if !strings.HasSuffix(name, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

// Waivers returns the pass's index of //trustlint: suppression comments,
// built lazily from all files of the package.
func (p *Pass) Waivers() *WaiverIndex {
	if p.waivers == nil {
		p.waivers = NewWaiverIndex(p.Fset, p.Files)
	}
	return p.waivers
}

// NewInfo returns a types.Info with every map the analyzers rely on
// allocated. Both the unitchecker driver and the test harness type-check
// through it so the two agree on what is recorded.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// deterministicPrefixes are the package trees whose output is golden-pinned
// to be bit-identical across shard counts, snapshot/restore boundaries and
// the served-vs-batch twin. A path matches if it equals a prefix or sits
// below one (so mechanism subpackages like repro/internal/reputation/\
// eigentrust are covered). Everything else — cmd/ (including trustmaster
// and trustworker), tools/, internal/serve, internal/cluster, the
// overlay/dht/crypto simulation scaffolding — is off the deterministic path
// and exempt. internal/cluster is exempt by design, not oversight: its job
// is wall-clock plumbing (deadlines, heartbeats, reconnects), and its
// determinism is enforced end-to-end by the golden topology tests instead
// of the lint allowlist.
var deterministicPrefixes = []string{
	"repro/internal/core",
	"repro/internal/workload",
	"repro/internal/reputation",
	"repro/internal/linalg",
	"repro/internal/metrics",
	"repro/internal/sim",
	"repro/internal/satisfaction",
	"repro/internal/privacy",
}

// IsDeterministic reports whether the import path lies inside the
// deterministic package allowlist policed by the trustlint analyzers.
func IsDeterministic(path string) bool {
	for _, prefix := range deterministicPrefixes {
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	return false
}
