// Fixture for the nondeterm analyzer, analyzed under a NON-deterministic
// package path (repro/tools/...): wall-clock reads, environment lookups and
// map formatting are all legitimate outside the deterministic core.
package b

import (
	"fmt"
	"os"
	"time"
)

func Timestamp() int64 {
	return time.Now().Unix()
}

func FromEnv() string {
	return os.Getenv("SEED")
}

func Render(m map[string]int) string {
	return fmt.Sprintf("%v", m)
}
