// Fixture for the nondeterm analyzer, analyzed under a deterministic
// package path.
package a

import (
	"fmt"
	"math/rand" // want "import of math/rand in deterministic package"
	"os"
	"time"
)

var _ = rand.Int

// Timestamp reads the wall clock: run-dependent, flagged.
func Timestamp() int64 {
	return time.Now().Unix() // want "use of time.Now in deterministic package"
}

// Elapsed measures wall-clock time: flagged.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "use of time.Since in deterministic package"
}

// FromEnv reads ambient process state: flagged.
func FromEnv() string {
	return os.Getenv("SEED") // want "use of os.Getenv in deterministic package"
}

// Epoch constructs a fixed instant: allowed — no wall-clock read.
func Epoch() time.Time {
	return time.Unix(0, 0)
}

// Render formats a map through fmt: iteration order leaks into the string.
func Render(m map[string]int) string {
	return fmt.Sprintf("%v", m) // want "formatting map m with fmt.Sprintf in deterministic package"
}

// RenderSlice formats a slice: deterministic, allowed.
func RenderSlice(s []int) string {
	return fmt.Sprintf("%v", s)
}
