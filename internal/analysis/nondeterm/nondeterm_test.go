package nondeterm_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nondeterm"
)

func TestDeterministicPackage(t *testing.T) {
	analysistest.Run(t, nondeterm.Analyzer, "repro/internal/core/fixture", "testdata/src/a")
}

func TestToolsPackageIsExempt(t *testing.T) {
	analysistest.Run(t, nondeterm.Analyzer, "repro/tools/fixture", "testdata/src/b")
}
