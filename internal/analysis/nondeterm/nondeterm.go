// Package nondeterm bans ambient-nondeterminism sources in the deterministic
// packages: wall-clock reads (time.Now/Since/Until), the globally-seeded
// math/rand generators, environment access (os.Getenv and friends), and fmt
// formatting of map values.
//
// Randomness must flow through the seed-derived sim.RNG SplitMix64 streams so
// every draw is reproducible and snapshot-able; wall-clock and environment
// reads belong in cmd/, internal/serve and tools/, outside the bit-identity
// surface. fmt's map rendering sorts keys but its order is not guaranteed for
// all key kinds (NaNs, interfaces), so maps may not be formatted directly in
// the deterministic packages.
//
// There is no waiver for this analyzer: a hit is either a real bug or code
// that belongs outside the deterministic allowlist.
package nondeterm

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/analysis"
)

// Analyzer is the nondeterm pass.
var Analyzer = &analysis.Analyzer{
	Name: "nondeterm",
	Doc:  "ban wall-clock, global math/rand, env access and map formatting in deterministic packages",
	Run:  run,
}

// bannedFuncs maps package path -> function name -> reason fragment.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock is allowed only in cmd/, internal/serve and tools/",
		"Since": "wall-clock is allowed only in cmd/, internal/serve and tools/",
		"Until": "wall-clock is allowed only in cmd/, internal/serve and tools/",
	},
	"os": {
		"Getenv":    "environment access makes runs host-dependent; thread configuration through the scenario instead",
		"LookupEnv": "environment access makes runs host-dependent; thread configuration through the scenario instead",
		"Environ":   "environment access makes runs host-dependent; thread configuration through the scenario instead",
	},
}

// bannedImports are packages whose mere presence on the deterministic path
// is a bug: their generators are globally seeded and not snapshot-able.
var bannedImports = map[string]string{
	"math/rand":    "randomness must flow through the seed-derived sim.RNG streams",
	"math/rand/v2": "randomness must flow through the seed-derived sim.RNG streams",
}

// fmtFormatters are the fmt functions whose rendering of a map argument is
// banned. All of them funnel through the same printer.
var fmtFormatters = map[string]bool{
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Errorf": true, "Append": true, "Appendf": true, "Appendln": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.IsDeterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.SourceFiles() {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if reason, ok := bannedImports[path]; ok {
				pass.Reportf(imp.Pos(), "import of %s in deterministic package: %s", path, reason)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(pass, n)
			case *ast.CallExpr:
				checkFmtCall(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if reason, ok := bannedFuncs[fn.Pkg().Path()][fn.Name()]; ok {
		pass.Reportf(sel.Pos(), "use of %s.%s in deterministic package: %s", fn.Pkg().Path(), fn.Name(), reason)
	}
}

func checkFmtCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !fmtFormatters[sel.Sel.Name] {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	for _, arg := range call.Args {
		t := pass.TypesInfo.Types[arg].Type
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); isMap {
			pass.Reportf(arg.Pos(), "formatting map %s with fmt.%s in deterministic package: map rendering order is not guaranteed; sort the keys and format entries explicitly", types.ExprString(arg), fn.Name())
		}
	}
}
