package mapiter_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/mapiter"
)

func TestDeterministicPackage(t *testing.T) {
	analysistest.Run(t, mapiter.Analyzer, "repro/internal/core/fixture", "testdata/src/a")
}

func TestToolsPackageIsExempt(t *testing.T) {
	analysistest.Run(t, mapiter.Analyzer, "repro/tools/fixture", "testdata/src/b")
}
