// Fixture for the mapiter analyzer, analyzed under a deterministic package
// path. Each // want comment is a diagnostic the analyzer must produce.
package a

import "sort"

// Sum folds floats in iteration order: order-dependent, flagged.
func Sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want "order-dependent accumulation into total"
		total += v
	}
	return total
}

// Keys collects then sorts: the blessed canonicalize idiom, not flagged.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// UnsortedKeys collects but never sorts: the slice leaks iteration order.
func UnsortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "never sorted before use"
		keys = append(keys, k)
	}
	return keys
}

// Invert writes key-addressed cells: each iteration owns its slot.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// KeyedFold accumulates into cells addressed by the iteration key: each
// cell folds exactly one contribution, so order is immaterial.
func KeyedFold(m map[int]float64, out []float64) {
	for j, v := range m {
		out[j] += v
	}
}

// Count is exact commutative integer accumulation.
func Count(m map[string]bool) int {
	n := 0
	for _, ok := range m {
		if ok {
			n++
		}
	}
	return n
}

// HasPositive stores an iteration-independent value: order is moot.
func HasPositive(m map[string]int) bool {
	found := false
	for _, v := range m {
		if v > 0 {
			found = true
		}
	}
	return found
}

// Prune deletes by key: key-addressed, order-independent.
func Prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// EarlyExit returns a value derived from the iteration variable: which
// entry wins depends on iteration order.
func EarlyExit(m map[string]int) string {
	for k, v := range m { // want "returns a value derived from the iteration variable"
		if v > 0 {
			return k
		}
	}
	return ""
}

// Waived carries a reasoned waiver: suppressed without complaint.
func Waived(m map[string]float64) float64 {
	var total float64
	//trustlint:ordered fixture: this path tolerates non-associative folding
	for _, v := range m {
		total += v
	}
	return total
}

// MissingReason carries a bare waiver: the finding is suppressed but the
// missing reason is itself reported, at the waiver comment.
func MissingReason(m map[string]float64) float64 {
	var total float64
	/* want "waiver is missing its mandatory reason" */ //trustlint:ordered
	for _, v := range m {
		total += v
	}
	return total
}
