// Fixture for the mapiter analyzer, analyzed under a NON-deterministic
// package path (repro/tools/...): the same order-dependent code that is
// flagged in fixture a must pass untouched here, proving the allowlist
// exempts tools, cmd, and serve packages.
package b

func Sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}

func UnsortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
