// Package mapiter flags `for range` loops over map types inside the
// deterministic packages. Go randomizes map iteration order, so any
// order-dependent effect in such a loop breaks the repo's equal-seeds ⇒
// bit-identical-results invariant.
//
// A map range is accepted without a waiver when its body is provably
// order-independent:
//
//   - writes land in key-addressed cells (map or slice index expressions),
//     so each iteration touches its own slot;
//   - integer accumulation (+=, counters), which is exact and commutative —
//     unlike floating-point accumulation, which is flagged;
//   - values are collected with `s = append(s, …)` into a slice that feeds a
//     sort call later in the same function (the canonicalize-then-use idiom);
//   - early exits whose results do not depend on the iteration variables
//     (existence checks returning constants).
//
// Anything else needs `//trustlint:ordered <reason>` on the `for` line or
// the line above it.
package mapiter

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the mapiter pass.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flag order-dependent iteration over maps in deterministic packages",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.IsDeterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.SourceFiles() {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapExpr(pass, rs.X) {
				return true
			}
			checkRange(pass, rs, enclosingFuncBody(stack))
			return true
		})
	}
	return nil, nil
}

func isMapExpr(pass *analysis.Pass, x ast.Expr) bool {
	t := pass.TypesInfo.Types[x].Type
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// enclosingFuncBody returns the body of the innermost function on the node
// stack (excluding the top node itself), used to look for sort calls that
// follow the range statement.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	if analysis.Suppressed(pass, rs.For, analysis.WaiverOrdered) {
		return
	}
	c := &checker{
		pass:   pass,
		rs:     rs,
		sorted: sortTargetsAfter(pass, fnBody, rs.End()),
		locals: make(map[types.Object]bool),
	}
	// The iteration variables are order-local: fresh each iteration.
	for _, v := range [2]ast.Expr{rs.Key, rs.Value} {
		if id, ok := v.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				c.locals[obj] = true
			}
		}
	}
	if why := c.classify(rs.Body.List); why != "" {
		pass.Reportf(rs.For, "iteration over map %s is order-dependent (%s); sort before use, make the body order-independent, or annotate //trustlint:ordered <reason>",
			types.ExprString(rs.X), why)
	}
}

// sortTargetsAfter collects the printed form of every expression passed as
// the first argument to a sort.* / slices.Sort* call positioned after `after`
// in the enclosing function, including the operand of an `sort.Sort(byX(s))`
// conversion. An append sink matching one of these is the blessed
// collect-then-canonicalize idiom.
func sortTargetsAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, after token.Pos) map[string]bool {
	targets := make(map[string]bool)
	if fnBody == nil {
		return targets
	}
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after || len(call.Args) == 0 {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		arg := call.Args[0]
		targets[types.ExprString(arg)] = true
		// sort.Sort(byScore(keys)): unwrap the conversion to reach keys.
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
			targets[types.ExprString(conv.Args[0])] = true
		}
		return true
	})
	return targets
}

var sortFuncs = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Ints": true, "Float64s": true, "Strings": true,
	"SortFunc": true, "SortStableFunc": true, "Sorted": true, "SortedFunc": true,
}

func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !sortFuncs[sel.Sel.Name] {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == "sort" || path == "slices"
}

// checker classifies the statements of one map-range body. classify returns
// "" when every effect is order-independent, else a short description of the
// first order-dependent effect found.
type checker struct {
	pass   *analysis.Pass
	rs     *ast.RangeStmt
	sorted map[string]bool
	// locals are objects scoped to the loop body (iteration variables and
	// body-declared names): plain assignment to them is order-local.
	locals map[types.Object]bool
}

func (c *checker) classify(stmts []ast.Stmt) string {
	for _, stmt := range stmts {
		if why := c.classifyStmt(stmt); why != "" {
			return why
		}
	}
	return ""
}

func (c *checker) classifyStmt(stmt ast.Stmt) string {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		return c.classifyAssign(s)
	case *ast.IncDecStmt:
		if isIntegerType(c.pass, s.X) {
			return "" // exact commutative counter
		}
		return "non-integer " + s.Tok.String() + " on " + types.ExprString(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
							c.locals[obj] = true
						}
					}
				}
			}
		}
		return ""
	case *ast.ExprStmt:
		return c.classifyCallStmt(s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			if why := c.classifyStmt(s.Init); why != "" {
				return why
			}
		}
		if why := c.classify(s.Body.List); why != "" {
			return why
		}
		if s.Else != nil {
			return c.classifyStmt(s.Else)
		}
		return ""
	case *ast.BlockStmt:
		return c.classify(s.List)
	case *ast.ForStmt:
		return c.classify(s.Body.List)
	case *ast.RangeStmt:
		// A nested range over a map is checked as its own statement by the
		// outer walk; don't double-report, but do vet the body's effects on
		// the outer loop's behalf.
		for _, v := range [2]ast.Expr{s.Key, s.Value} {
			if id, ok := v.(*ast.Ident); ok {
				if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
					c.locals[obj] = true
				}
			}
		}
		return c.classify(s.Body.List)
	case *ast.SwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				if why := c.classify(cc.Body); why != "" {
					return why
				}
			}
		}
		return ""
	case *ast.BranchStmt:
		return "" // break/continue don't observe order by themselves
	case *ast.ReturnStmt:
		// Early exit is order-independent only if the returned values don't
		// depend on which iteration triggered it.
		for _, res := range s.Results {
			if c.referencesLocal(res) {
				return "returns a value derived from the iteration variable"
			}
		}
		return ""
	default:
		return "statement with order-dependent effects"
	}
}

func (c *checker) classifyAssign(s *ast.AssignStmt) string {
	switch s.Tok {
	case token.DEFINE:
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
					c.locals[obj] = true
				}
			}
		}
		return ""
	case token.ASSIGN:
		for i, lhs := range s.Lhs {
			if why := c.classifyPlainTarget(s, i, lhs); why != "" {
				return why
			}
		}
		return ""
	default: // compound: x op= y
		lhs := s.Lhs[0]
		if isIntegerType(c.pass, lhs) {
			return "" // exact commutative accumulation
		}
		// out[k] += v where k is the iteration key: the map yields each key
		// once, so every cell folds exactly one contribution — no ordering.
		if ix, ok := lhs.(*ast.IndexExpr); ok && c.referencesLocal(ix.Index) {
			return ""
		}
		return "order-dependent accumulation into " + types.ExprString(lhs)
	}
}

func (c *checker) classifyPlainTarget(s *ast.AssignStmt, i int, lhs ast.Expr) string {
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" || c.locals[c.pass.TypesInfo.Uses[l]] {
			return ""
		}
		// `found = true`: every iteration that executes the assignment
		// stores the same iteration-independent value, so order is moot —
		// but only when the value isn't an append (handled below).
		if len(s.Lhs) == len(s.Rhs) {
			if call, ok := s.Rhs[i].(*ast.CallExpr); !ok || !isAppend(call) {
				if !c.referencesLocal(s.Rhs[i]) {
					return ""
				}
			}
		}
	case *ast.IndexExpr:
		// Key-addressed write: each iteration owns its own cell. (Writing
		// the same key from two iterations would be order-dependent, but a
		// map range yields each key once.)
		return ""
	}
	// `s = append(s, …)` collecting into a slice that is sorted afterwards
	// is the blessed canonicalize idiom.
	if len(s.Lhs) == len(s.Rhs) {
		if call, ok := s.Rhs[i].(*ast.CallExpr); ok {
			if fun, ok := call.Fun.(*ast.Ident); ok && fun.Name == "append" && len(call.Args) > 0 &&
				types.ExprString(call.Args[0]) == types.ExprString(lhs) {
				if c.sorted[types.ExprString(lhs)] {
					return ""
				}
				return "appends to " + types.ExprString(lhs) + " which is never sorted before use"
			}
		}
	}
	return "assigns to " + types.ExprString(lhs) + " outside the loop scope"
}

func isAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

func (c *checker) classifyCallStmt(x ast.Expr) string {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return "statement with order-dependent effects"
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && id.Name == "delete" {
			return "" // delete(m, k): key-addressed, order-independent
		}
	}
	return "calls " + types.ExprString(call.Fun) + " whose effects may be order-dependent"
}

// referencesLocal reports whether the expression mentions an iteration
// variable or a body-declared local.
func (c *checker) referencesLocal(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if c.locals[c.pass.TypesInfo.Uses[id]] {
				found = true
			}
		}
		return !found
	})
	return found
}

func isIntegerType(pass *analysis.Pass, x ast.Expr) bool {
	t := pass.TypesInfo.Types[x].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
