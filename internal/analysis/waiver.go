package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The two waiver kinds of the suppression-comment grammar
// `//trustlint:<kind> <reason>`. Reasons are mandatory: a waiver with an
// empty reason does not suppress anything and is reported by the analyzer
// that consults it, so the tree can never carry an unexplained exemption.
const (
	// WaiverOrdered asserts a construct flagged by mapiter or foldorder is
	// order-independent for a reason the analyzer cannot see.
	WaiverOrdered = "ordered"
	// WaiverDerived asserts a struct field flagged by snapshotcomplete is
	// configuration or derived state, deliberately rebuilt rather than
	// serialized.
	WaiverDerived = "derived"
)

// Waiver is one parsed //trustlint: suppression comment.
type Waiver struct {
	Kind   string
	Reason string
	Pos    token.Pos
}

// WaiverIndex locates //trustlint: comments by file line so analyzers can
// ask whether a node is covered by a waiver on its own line or the line
// directly above it.
type WaiverIndex struct {
	fset   *token.FileSet
	byLine map[lineKey][]Waiver
}

type lineKey struct {
	file string
	line int
}

// NewWaiverIndex scans the files' comments for the //trustlint: directive
// grammar and indexes them by position.
func NewWaiverIndex(fset *token.FileSet, files []*ast.File) *WaiverIndex {
	ix := &WaiverIndex{fset: fset, byLine: make(map[lineKey][]Waiver)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//trustlint:")
				if !ok {
					continue
				}
				kind, reason, _ := strings.Cut(rest, " ")
				kind = strings.TrimSpace(kind)
				if kind == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				key := lineKey{file: pos.Filename, line: pos.Line}
				ix.byLine[key] = append(ix.byLine[key], Waiver{
					Kind:   kind,
					Reason: strings.TrimSpace(reason),
					Pos:    c.Pos(),
				})
			}
		}
	}
	return ix
}

// At returns the waiver of the given kind covering pos: a //trustlint:
// comment trailing the same line or sitting on the line directly above.
func (ix *WaiverIndex) At(pos token.Pos, kind string) (Waiver, bool) {
	p := ix.fset.Position(pos)
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, w := range ix.byLine[lineKey{file: p.Filename, line: line}] {
			if w.Kind == kind {
				return w, true
			}
		}
	}
	return Waiver{}, false
}

// Suppressed is the shared waiver-consultation path of the analyzers: it
// reports whether pos carries a waiver of the given kind, and reports a
// diagnostic through the pass when the waiver is present but missing its
// mandatory reason (the waiver still suppresses the underlying finding, so
// exactly one diagnostic — "explain this waiver" — results).
func Suppressed(pass *Pass, pos token.Pos, kind string) bool {
	w, ok := pass.Waivers().At(pos, kind)
	if !ok {
		return false
	}
	if w.Reason == "" {
		pass.Reportf(w.Pos, "//trustlint:%s waiver is missing its mandatory reason", kind)
	}
	return true
}
