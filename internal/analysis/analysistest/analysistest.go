// Package analysistest runs an analysis.Analyzer over small fixture
// packages and checks its diagnostics against expectations written in the
// fixtures themselves, in the style of golang.org/x/tools' package of the
// same name (which this module deliberately does not depend on).
//
// An expectation is a comment of the form
//
//	// want "regexp"
//
// on the line the diagnostic should be reported at. Every diagnostic must
// match a want comment on its line and every want comment must be matched
// by a diagnostic, otherwise the test fails.
//
// Fixtures live under the analyzer's testdata/src/<pkg>/ directory and may
// import only the standard library: they are type-checked with the
// compiler's source importer so the harness works without a module cache.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// sharedImporter type-checks fixture imports from GOROOT source. It is
// global (with its own FileSet) so the std packages a fixture pulls in are
// checked once per test binary, not once per fixture.
var (
	importerOnce sync.Once
	importerFset *token.FileSet
	stdImporter  types.Importer
)

func sharedImporter() (*token.FileSet, types.Importer) {
	importerOnce.Do(func() {
		importerFset = token.NewFileSet()
		stdImporter = importer.ForCompiler(importerFset, "source", nil)
	})
	return importerFset, stdImporter
}

// Run analyzes the fixture directory dir as a package imported as pkgpath
// and checks the diagnostics against the // want comments in its files.
// pkgpath controls whether the analyzers treat the fixture as one of the
// repo's deterministic packages, so tests can exercise both sides of the
// allowlist from the same sources.
func Run(t *testing.T, a *analysis.Analyzer, pkgpath, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	files := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		files[e.Name()] = string(src)
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no .go files in %s", dir)
	}
	RunSource(t, a, pkgpath, files)
}

// RunSource is Run for in-memory fixtures: files maps file names to Go
// source text. It returns the diagnostics so callers can make assertions
// beyond the // want comments.
func RunSource(t *testing.T, a *analysis.Analyzer, pkgpath string, files map[string]string) []analysis.Diagnostic {
	t.Helper()
	fset, imp := sharedImporter()

	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)

	var parsed []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, files[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("analysistest: parse %s: %v", name, err)
		}
		parsed = append(parsed, f)
	}

	info := analysis.NewInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect what we can; fixtures must still compile
	}
	pkg, err := conf.Check(pkgpath, fset, parsed, info)
	if err != nil {
		t.Fatalf("analysistest: type-check %s: %v", pkgpath, err)
	}

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     parsed,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: %s: %v", a.Name, err)
	}

	check(t, fset, parsed, got)
	return got
}

// want is one expectation: a diagnostic matching rx at (file, line).
type want struct {
	file string
	line int
	rx   *regexp.Regexp
	hit  bool
}

// wantRe accepts both comment forms: the usual `// want "rx"` and the block
// form `/* want "rx" */`, which is needed when the expected diagnostic lands
// on a line that already ends in a //trustlint: waiver comment.
var wantRe = regexp.MustCompile(`^(?://|/\*)\s*want\s+("(?:[^"\\]|\\.)*")`)

func check(t *testing.T, fset *token.FileSet, files []*ast.File, got []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("analysistest: bad want comment %q: %v", c.Text, err)
				}
				rx, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("analysistest: bad want pattern %q: %v", pat, err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
			}
		}
	}

	for _, d := range got {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", fmt.Sprintf("%s:%d", pos.Filename, pos.Line), d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}
