package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestIsDeterministic(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/core", true},
		{"repro/internal/core/fixture", true},
		{"repro/internal/reputation/eigentrust", true},
		{"repro/internal/linalg", true},
		// Prefix matching must not swallow sibling packages that merely
		// share a name prefix.
		{"repro/internal/corelike", false},
		{"repro/internal/serve", false},
		{"repro/internal/cluster", false},
		{"repro/cmd/trustnetd", false},
		{"repro/cmd/trustmaster", false},
		{"repro/cmd/trustworker", false},
		{"repro/tools/benchjson", false},
		{"repro/tools/benchdiff", false},
		{"fmt", false},
	}
	for _, c := range cases {
		if got := IsDeterministic(c.path); got != c.want {
			t.Errorf("IsDeterministic(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestWaiverIndex(t *testing.T) {
	const src = `package p

var a int //trustlint:derived rebuilt on restore

//trustlint:ordered reason above the line
var b int

var c int //trustlint:derived

var d int // plain comment, not a waiver
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "w.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewWaiverIndex(fset, []*ast.File{f})

	posOn := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}

	if w, ok := ix.At(posOn(3), WaiverDerived); !ok || w.Reason != "rebuilt on restore" {
		t.Errorf("trailing waiver on line 3: got (%+v, %v)", w, ok)
	}
	if _, ok := ix.At(posOn(6), WaiverOrdered); !ok {
		t.Errorf("line-above waiver covering line 6: not found")
	}
	if w, ok := ix.At(posOn(8), WaiverDerived); !ok || w.Reason != "" {
		t.Errorf("reasonless waiver on line 8: got (%+v, %v)", w, ok)
	}
	if _, ok := ix.At(posOn(10), WaiverDerived); ok {
		t.Errorf("plain comment on line 10 must not parse as a waiver")
	}
	// Kind mismatch: an ordered waiver does not cover a derived query.
	if _, ok := ix.At(posOn(3), WaiverOrdered); ok {
		t.Errorf("derived waiver on line 3 must not satisfy an ordered query")
	}
}
