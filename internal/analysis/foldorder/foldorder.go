// Package foldorder flags floating-point accumulation performed inside
// concurrently-running function literals in the deterministic packages.
//
// Floating-point addition is not associative, so folding shard results in
// arrival order produces different bits on different runs. The repo's
// scatter-gather discipline is: goroutine bodies (a `go` statement, or the
// worker functions handed to sim.ForChunks / sim.RunIndexed) write only
// per-index state — out[i] for indexes they own — and the spawning goroutine
// folds the per-shard results in index order after the join. Accumulating
// into a variable captured from the enclosing function breaks that
// discipline twice over: it is a data race and, even under a mutex, an
// order-dependent fold.
//
// Key-addressed writes (out[i] = …, out[i] += …) are the blessed pattern and
// pass. A flagged statement that is genuinely order-independent can carry
// `//trustlint:ordered <reason>`.
package foldorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the foldorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "foldorder",
	Doc:  "flag float accumulation into shared variables inside goroutine bodies",
	Run:  run,
}

// workerFuncs are functions whose func-typed arguments run on worker
// goroutines. Matched by name so the analyzer also works on test fixtures;
// both live in repro/internal/sim.
var workerFuncs = map[string]bool{"ForChunks": true, "RunIndexed": true}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.IsDeterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkWorker(pass, lit)
				}
			case *ast.CallExpr:
				if isWorkerCall(n) {
					for _, arg := range n.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							checkWorker(pass, lit)
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

func isWorkerCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return workerFuncs[fun.Name]
	case *ast.SelectorExpr:
		return workerFuncs[fun.Sel.Name]
	}
	return false
}

// checkWorker scans one concurrently-running function literal for
// order-dependent floating-point folds into captured variables.
func checkWorker(pass *analysis.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		s, ok := n.(*ast.AssignStmt)
		if !ok || len(s.Lhs) != 1 {
			return true
		}
		lhs := s.Lhs[0]
		if !isFloatAccumulation(pass, s) || !isCapturedScalar(pass, lit, lhs) {
			return true
		}
		if analysis.Suppressed(pass, s.Pos(), analysis.WaiverOrdered) {
			return true
		}
		pass.Reportf(s.Pos(), "floating-point accumulation into %s captured by a goroutine body: fold shard results in index order on the spawning goroutine, or annotate //trustlint:ordered <reason>",
			types.ExprString(lhs))
		return true
	})
}

// isFloatAccumulation reports whether the assignment folds a float into its
// own target: x += e (also -=, *=, /=) or x = x ⊕ e.
func isFloatAccumulation(pass *analysis.Pass, s *ast.AssignStmt) bool {
	lhs := s.Lhs[0]
	t := pass.TypesInfo.Types[lhs].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return false
	}
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	case token.ASSIGN:
		// x = x + e / x = e + x (and -, *, /).
		bin, ok := s.Rhs[0].(*ast.BinaryExpr)
		if !ok {
			return false
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			want := types.ExprString(lhs)
			return types.ExprString(bin.X) == want || types.ExprString(bin.Y) == want
		}
	}
	return false
}

// isCapturedScalar reports whether lhs is a plain identifier or selector
// rooted at a variable declared outside the function literal. Index
// expressions (out[i]) are the blessed per-index pattern and excluded.
func isCapturedScalar(pass *analysis.Pass, lit *ast.FuncLit, lhs ast.Expr) bool {
	var root *ast.Ident
	switch l := lhs.(type) {
	case *ast.Ident:
		root = l
	case *ast.SelectorExpr:
		e := ast.Expr(l)
		for {
			sel, ok := e.(*ast.SelectorExpr)
			if !ok {
				break
			}
			e = sel.X
		}
		root, _ = e.(*ast.Ident)
	}
	if root == nil {
		return false
	}
	obj := pass.TypesInfo.Uses[root]
	if obj == nil {
		return false
	}
	// Free iff declared outside the literal's extent.
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}
