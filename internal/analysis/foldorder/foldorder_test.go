package foldorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/foldorder"
)

func TestDeterministicPackage(t *testing.T) {
	analysistest.Run(t, foldorder.Analyzer, "repro/internal/linalg/fixture", "testdata/src/a")
}

func TestToolsPackageIsExempt(t *testing.T) {
	analysistest.Run(t, foldorder.Analyzer, "repro/tools/fixture", "testdata/src/b")
}
