// Fixture for the foldorder analyzer, analyzed under a deterministic
// package path.
package a

import "sync"

// Sum folds into a captured float from goroutine bodies: arrival-order
// dependent (and a data race), flagged.
func Sum(xs []float64) float64 {
	var wg sync.WaitGroup
	var total float64
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			total += xs[i] // want "floating-point accumulation into total"
		}(i)
	}
	wg.Wait()
	return total
}

// SumSharded is the blessed scatter-gather shape: workers write only their
// own per-shard cell; the spawning goroutine folds in index order.
func SumSharded(xs []float64, shards int) float64 {
	partial := make([]float64, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < len(xs); i += shards {
				partial[s] += xs[i]
			}
		}(s)
	}
	wg.Wait()
	total := 0.0
	for _, p := range partial {
		total += p
	}
	return total
}

// ForChunks stands in for sim.ForChunks: the analyzer matches worker
// helpers by name, so fixtures need no import of the real package.
func ForChunks(n, workers int, fn func(lo, hi int)) { fn(0, n) }

// Mean accumulates into a captured float inside a worker body: flagged
// even though the helper here happens to run it synchronously.
func Mean(xs []float64) float64 {
	var sum float64
	ForChunks(len(xs), 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i] // want "floating-point accumulation into sum"
		}
	})
	return sum / float64(len(xs))
}

// Count accumulates an integer: exact and commutative, not flagged
// (the race would be vet's and -race's business, not foldorder's).
func Count(xs []int) int {
	var n int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range xs {
			n += 1
		}
	}()
	wg.Wait()
	return n
}

// Waived carries a reasoned waiver on the accumulation line: suppressed.
func Waived(xs []float64) float64 {
	var mu sync.Mutex
	var total float64
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mu.Lock()
			//trustlint:ordered fixture: this path tolerates non-associative folding
			total += xs[i]
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return total
}
