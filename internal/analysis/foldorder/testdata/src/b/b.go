// Fixture for the foldorder analyzer, analyzed under a NON-deterministic
// package path: the same captured-float fold passes here.
package b

import "sync"

func Sum(xs []float64) float64 {
	var wg sync.WaitGroup
	var total float64
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			total += xs[i]
		}(i)
	}
	wg.Wait()
	return total
}
