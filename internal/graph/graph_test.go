package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSetEdgeBasics(t *testing.T) {
	g := New(3)
	if err := g.SetEdge(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("edge missing")
	}
	if g.HasEdge(1, 0) {
		t.Fatal("directed edge appeared reversed")
	}
	w, ok := g.Weight(0, 1)
	if !ok || w != 2.5 {
		t.Fatalf("Weight = %v, %v", w, ok)
	}
	// Overwrite.
	if err := g.SetEdge(0, 1, 7); err != nil {
		t.Fatal(err)
	}
	if w, _ := g.Weight(0, 1); w != 7 {
		t.Fatalf("overwrite failed: %v", w)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
}

func TestSetEdgeRejectsInvalid(t *testing.T) {
	g := New(2)
	if err := g.SetEdge(0, 0, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.SetEdge(0, 5, 1); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := g.SetEdge(-1, 0, 1); err == nil {
		t.Fatal("negative node accepted")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	_ = g.SetEdge(0, 1, 1)
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) {
		t.Fatal("edge survived removal")
	}
	if g.InDegree(1) != 0 {
		t.Fatal("in-index not cleaned")
	}
	g.RemoveEdge(0, 99) // must not panic
}

func TestDegreesAndAdjacency(t *testing.T) {
	g := New(4)
	_ = g.SetEdge(0, 1, 1)
	_ = g.SetEdge(0, 2, 1)
	_ = g.SetEdge(3, 0, 1)
	if g.OutDegree(0) != 2 || g.InDegree(0) != 1 {
		t.Fatalf("degrees: out=%d in=%d", g.OutDegree(0), g.InDegree(0))
	}
	nbrs := g.Neighbors(0)
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 2 {
		t.Fatalf("Neighbors = %v (must be sorted)", nbrs)
	}
	in := g.In(0)
	if len(in) != 1 || in[0].To != 3 {
		t.Fatalf("In = %v", in)
	}
}

func TestAddNode(t *testing.T) {
	g := New(2)
	id := g.AddNode()
	if id != 2 || g.N() != 3 {
		t.Fatalf("AddNode id=%d N=%d", id, g.N())
	}
	if err := g.SetEdge(0, id, 1); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	g := New(3)
	_ = g.SetEdge(0, 1, 2)
	c := g.Clone()
	_ = c.SetEdge(1, 2, 5)
	if g.HasEdge(1, 2) {
		t.Fatal("clone mutated original")
	}
	if w, _ := c.Weight(0, 1); w != 2 {
		t.Fatal("clone lost edge")
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	rng := sim.NewRNG(1)
	n, p := 100, 0.1
	g := ErdosRenyi(rng, n, p)
	expected := float64(n*(n-1)) * p
	got := float64(g.NumEdges())
	if got < expected*0.85 || got > expected*1.15 {
		t.Fatalf("ER edges = %v, want ~%v", got, expected)
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	rng := sim.NewRNG(2)
	if g := ErdosRenyi(rng, 10, 0); g.NumEdges() != 0 {
		t.Fatal("p=0 not empty")
	}
	if g := ErdosRenyi(rng, 10, 1); g.NumEdges() != 90 {
		t.Fatalf("p=1 not complete: %d", g.NumEdges())
	}
}

func TestBarabasiAlbertProperties(t *testing.T) {
	rng := sim.NewRNG(3)
	n, m := 500, 3
	g := BarabasiAlbert(rng, n, m)
	if g.N() != n {
		t.Fatalf("N = %d", g.N())
	}
	// Connectivity.
	_, comps := Components(g)
	if comps != 1 {
		t.Fatalf("BA graph has %d components, want 1", comps)
	}
	// Heavy tail: max degree far above m.
	maxDeg := 0
	for u := 0; u < n; u++ {
		if d := g.OutDegree(u); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 5*m {
		t.Fatalf("max degree %d does not look heavy-tailed (m=%d)", maxDeg, m)
	}
	// Every late node has degree >= m.
	for u := m + 1; u < n; u++ {
		if g.OutDegree(u) < m {
			t.Fatalf("node %d has degree %d < m", u, g.OutDegree(u))
		}
	}
}

func TestBarabasiAlbertSymmetric(t *testing.T) {
	rng := sim.NewRNG(4)
	g := BarabasiAlbert(rng, 100, 2)
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Out(u) {
			if !g.HasEdge(e.To, u) {
				t.Fatalf("asymmetric edge %d->%d", u, e.To)
			}
		}
	}
}

func TestWattsStrogatzStructure(t *testing.T) {
	rng := sim.NewRNG(5)
	g := WattsStrogatz(rng, 200, 6, 0.1)
	if g.N() != 200 {
		t.Fatalf("N = %d", g.N())
	}
	_, comps := Components(g)
	if comps != 1 {
		t.Fatalf("WS graph disconnected: %d components", comps)
	}
	// Small-world: high clustering vs an ER graph of the same density.
	cc := ClusteringCoefficient(g)
	er := ErdosRenyi(rng, 200, float64(g.NumEdges())/float64(200*199))
	ccER := ClusteringCoefficient(er)
	if cc <= ccER {
		t.Fatalf("WS clustering %v not above ER %v", cc, ccER)
	}
}

func TestWattsStrogatzNoRewire(t *testing.T) {
	rng := sim.NewRNG(6)
	g := WattsStrogatz(rng, 10, 4, 0)
	// Pure lattice: every node has degree exactly 4.
	for u := 0; u < 10; u++ {
		if g.OutDegree(u) != 4 {
			t.Fatalf("lattice degree of %d = %d, want 4", u, g.OutDegree(u))
		}
	}
}

func TestRingAndComplete(t *testing.T) {
	r := Ring(5)
	for u := 0; u < 5; u++ {
		if r.OutDegree(u) != 2 {
			t.Fatalf("ring degree %d", r.OutDegree(u))
		}
	}
	c := Complete(4)
	if c.NumEdges() != 12 {
		t.Fatalf("complete edges = %d", c.NumEdges())
	}
}

func TestBFSDistances(t *testing.T) {
	g := Ring(6)
	d := BFS(g, 0)
	want := []int{0, 1, 2, 3, 2, 1}
	for i, v := range want {
		if d[i] != v {
			t.Fatalf("BFS dist[%d] = %d, want %d", i, d[i], v)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(3)
	_ = g.SetEdge(0, 1, 1)
	d := BFS(g, 0)
	if d[2] != -1 {
		t.Fatalf("unreachable distance = %d, want -1", d[2])
	}
	// Directed: node 1 cannot reach 0.
	d1 := BFS(g, 1)
	if d1[0] != -1 {
		t.Fatal("BFS ignored direction")
	}
	dBad := BFS(g, 99)
	for _, v := range dBad {
		if v != -1 {
			t.Fatal("invalid source produced distances")
		}
	}
}

func TestComponents(t *testing.T) {
	g := New(5)
	_ = g.SetEdge(0, 1, 1)
	_ = g.SetEdge(2, 3, 1)
	ids, count := Components(g)
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if ids[0] != ids[1] || ids[2] != ids[3] || ids[0] == ids[2] || ids[4] == ids[0] {
		t.Fatalf("component ids = %v", ids)
	}
}

func TestComponentsWeaklyConnected(t *testing.T) {
	// A directed chain is weakly connected even though not strongly.
	g := New(3)
	_ = g.SetEdge(0, 1, 1)
	_ = g.SetEdge(2, 1, 1)
	_, count := Components(g)
	if count != 1 {
		t.Fatalf("weak components = %d, want 1", count)
	}
}

func TestClusteringTriangle(t *testing.T) {
	g := New(3)
	_ = g.AddEdgeBoth(0, 1, 1)
	_ = g.AddEdgeBoth(1, 2, 1)
	_ = g.AddEdgeBoth(0, 2, 1)
	if cc := ClusteringCoefficient(g); cc != 1 {
		t.Fatalf("triangle clustering = %v, want 1", cc)
	}
}

func TestClusteringPath(t *testing.T) {
	g := New(3)
	_ = g.AddEdgeBoth(0, 1, 1)
	_ = g.AddEdgeBoth(1, 2, 1)
	if cc := ClusteringCoefficient(g); cc != 0 {
		t.Fatalf("path clustering = %v, want 0", cc)
	}
}

func TestAveragePathLength(t *testing.T) {
	g := Ring(10)
	apl := AveragePathLength(g, 0)
	// Ring of 10: distances 1,1,2,2,3,3,4,4,5 mean = 25/9.
	want := 25.0 / 9.0
	if apl < want-1e-9 || apl > want+1e-9 {
		t.Fatalf("APL = %v, want %v", apl, want)
	}
	if AveragePathLength(New(1), 0) != 0 {
		t.Fatal("singleton APL != 0")
	}
}

func TestTopByInDegree(t *testing.T) {
	g := New(4)
	_ = g.SetEdge(0, 3, 1)
	_ = g.SetEdge(1, 3, 1)
	_ = g.SetEdge(2, 3, 1)
	_ = g.SetEdge(0, 2, 1)
	top := TopByInDegree(g, 2)
	if len(top) != 2 || top[0] != 3 || top[1] != 2 {
		t.Fatalf("TopByInDegree = %v", top)
	}
	if got := TopByInDegree(g, 99); len(got) != 4 {
		t.Fatalf("clamp failed: %v", got)
	}
	if got := TopByInDegree(g, -1); len(got) != 0 {
		t.Fatalf("negative m: %v", got)
	}
}

func TestGraphInvariantInOutConsistency(t *testing.T) {
	f := func(seed uint16) bool {
		rng := sim.NewRNG(uint64(seed))
		g := ErdosRenyi(rng, 30, 0.15)
		// in/out indices must mirror each other.
		for u := 0; u < g.N(); u++ {
			for _, e := range g.Out(u) {
				found := false
				for _, ie := range g.In(e.To) {
					if ie.To == u && ie.Weight == e.Weight {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		inCount := 0
		for u := 0; u < g.N(); u++ {
			inCount += g.InDegree(u)
		}
		return inCount == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeDistribution(t *testing.T) {
	g := Ring(5)
	dist := DegreeDistribution(g)
	if dist[2] != 5 || len(dist) != 1 {
		t.Fatalf("ring degree distribution = %v", dist)
	}
}
