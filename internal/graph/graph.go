// Package graph implements the directed weighted graph substrate used for
// social networks, trust overlays and feedback graphs throughout the
// reproduction: adjacency storage, classic random-graph generators
// (Erdős–Rényi, Barabási–Albert, Watts–Strogatz) and structural metrics.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Edge is a weighted directed edge.
type Edge struct {
	To     int
	Weight float64
}

// Graph is a directed weighted multigraph-free graph over nodes 0..N-1.
// Adding an edge that already exists overwrites its weight.
type Graph struct {
	n   int
	out []map[int]float64
	in  []map[int]float64
}

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	g := &Graph{
		n:   n,
		out: make([]map[int]float64, n),
		in:  make([]map[int]float64, n),
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddNode appends a new isolated node and returns its id.
func (g *Graph) AddNode() int {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.n++
	return g.n - 1
}

func (g *Graph) valid(v int) bool { return v >= 0 && v < g.n }

// SetEdge adds or updates the directed edge u->v with weight w.
// It returns an error for out-of-range nodes or self-loops.
func (g *Graph) SetEdge(u, v int, w float64) error {
	if !g.valid(u) || !g.valid(v) {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d rejected", u)
	}
	if g.out[u] == nil {
		g.out[u] = make(map[int]float64)
	}
	if g.in[v] == nil {
		g.in[v] = make(map[int]float64)
	}
	g.out[u][v] = w
	g.in[v][u] = w
	return nil
}

// AddEdgeBoth adds edges in both directions with the same weight.
func (g *Graph) AddEdgeBoth(u, v int, w float64) error {
	if err := g.SetEdge(u, v, w); err != nil {
		return err
	}
	return g.SetEdge(v, u, w)
}

// RemoveEdge deletes u->v if present.
func (g *Graph) RemoveEdge(u, v int) {
	if !g.valid(u) || !g.valid(v) {
		return
	}
	delete(g.out[u], v)
	delete(g.in[v], u)
}

// HasEdge reports whether u->v exists.
func (g *Graph) HasEdge(u, v int) bool {
	if !g.valid(u) || !g.valid(v) {
		return false
	}
	_, ok := g.out[u][v]
	return ok
}

// Weight returns the weight of u->v and whether the edge exists.
func (g *Graph) Weight(u, v int) (float64, bool) {
	if !g.valid(u) {
		return 0, false
	}
	w, ok := g.out[u][v]
	return w, ok
}

// OutDegree returns the out-degree of u (0 if out of range).
func (g *Graph) OutDegree(u int) int {
	if !g.valid(u) {
		return 0
	}
	return len(g.out[u])
}

// InDegree returns the in-degree of u (0 if out of range).
func (g *Graph) InDegree(u int) int {
	if !g.valid(u) {
		return 0
	}
	return len(g.in[u])
}

// Out returns u's out-edges sorted by destination (deterministic order).
func (g *Graph) Out(u int) []Edge {
	if !g.valid(u) {
		return nil
	}
	return sortedEdges(g.out[u])
}

// In returns u's in-edges sorted by source.
func (g *Graph) In(u int) []Edge {
	if !g.valid(u) {
		return nil
	}
	return sortedEdges(g.in[u])
}

func sortedEdges(m map[int]float64) []Edge {
	es := make([]Edge, 0, len(m))
	for v, w := range m {
		es = append(es, Edge{To: v, Weight: w})
	}
	sort.Slice(es, func(i, j int) bool { return es[i].To < es[j].To })
	return es
}

// Neighbors returns the sorted out-neighbor ids of u.
func (g *Graph) Neighbors(u int) []int {
	es := g.Out(u)
	ids := make([]int, len(es))
	for i, e := range es {
		ids[i] = e.To
	}
	return ids
}

// NumEdges returns the total directed edge count.
func (g *Graph) NumEdges() int {
	total := 0
	for _, m := range g.out {
		total += len(m)
	}
	return total
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u, m := range g.out {
		for v, w := range m {
			_ = c.SetEdge(u, v, w) // edges in g are valid by construction
		}
	}
	return c
}

// ErdosRenyi generates a directed G(n, p) graph (no self-loops).
func ErdosRenyi(rng *sim.RNG, n int, p float64) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Bool(p) {
				_ = g.SetEdge(u, v, 1)
			}
		}
	}
	return g
}

// BarabasiAlbert generates an undirected (symmetric) preferential-attachment
// graph: each new node attaches to m existing nodes with probability
// proportional to their degree. The first m+1 nodes form a clique.
// The result has the heavy-tailed degree distribution typical of social
// networks, which is the graph family the reproduced experiments default to.
func BarabasiAlbert(rng *sim.RNG, n, m int) *Graph {
	if m < 1 {
		m = 1
	}
	if n < m+1 {
		n = m + 1
	}
	g := New(n)
	// Repeated-endpoint list implements preferential attachment in O(1).
	var endpoints []int
	for u := 0; u <= m; u++ {
		for v := 0; v < u; v++ {
			_ = g.AddEdgeBoth(u, v, 1)
			endpoints = append(endpoints, u, v)
		}
	}
	for u := m + 1; u < n; u++ {
		chosen := make(map[int]bool, m)
		targets := make([]int, 0, m) // selection order: keeps runs deterministic
		for len(targets) < m {
			t := endpoints[rng.Intn(len(endpoints))]
			if t != u && !chosen[t] {
				chosen[t] = true
				targets = append(targets, t)
			}
		}
		for _, v := range targets {
			_ = g.AddEdgeBoth(u, v, 1)
			endpoints = append(endpoints, u, v)
		}
	}
	return g
}

// WattsStrogatz generates an undirected small-world graph: a ring lattice
// where each node connects to k nearest neighbors (k rounded down to even),
// then each edge is rewired with probability beta.
func WattsStrogatz(rng *sim.RNG, n, k int, beta float64) *Graph {
	if n < 3 {
		n = 3
	}
	if k < 2 {
		k = 2
	}
	if k >= n {
		k = n - 1
	}
	k -= k % 2
	g := New(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			_ = g.AddEdgeBoth(u, v, 1)
		}
	}
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if !g.HasEdge(u, v) || !rng.Bool(beta) {
				continue
			}
			// Rewire u--v to u--w for a uniformly random non-neighbor w.
			for tries := 0; tries < 32; tries++ {
				w := rng.Intn(n)
				if w == u || g.HasEdge(u, w) {
					continue
				}
				g.RemoveEdge(u, v)
				g.RemoveEdge(v, u)
				_ = g.AddEdgeBoth(u, w, 1)
				break
			}
		}
	}
	return g
}

// Ring generates an undirected ring of n nodes.
func Ring(n int) *Graph {
	if n < 3 {
		n = 3
	}
	g := New(n)
	for u := 0; u < n; u++ {
		_ = g.AddEdgeBoth(u, (u+1)%n, 1)
	}
	return g
}

// Complete generates the complete directed graph on n nodes.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				_ = g.SetEdge(u, v, 1)
			}
		}
	}
	return g
}
