package graph

import "sort"

// DegreeDistribution returns the out-degree histogram: result[d] = number of
// nodes with out-degree d.
func DegreeDistribution(g *Graph) map[int]int {
	dist := make(map[int]int)
	for u := 0; u < g.N(); u++ {
		dist[g.OutDegree(u)]++
	}
	return dist
}

// BFS returns hop distances from src; unreachable nodes get -1.
func BFS(g *Graph, src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.N() {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.Out(u) {
			if dist[e.To] == -1 {
				dist[e.To] = dist[u] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return dist
}

// Components returns the weakly connected component id of every node and the
// number of components.
func Components(g *Graph) (ids []int, count int) {
	ids = make([]int, g.N())
	for i := range ids {
		ids[i] = -1
	}
	for s := 0; s < g.N(); s++ {
		if ids[s] != -1 {
			continue
		}
		ids[s] = count
		stack := []int{s}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.Out(u) {
				if ids[e.To] == -1 {
					ids[e.To] = count
					stack = append(stack, e.To)
				}
			}
			for _, e := range g.In(u) {
				if ids[e.To] == -1 {
					ids[e.To] = count
					stack = append(stack, e.To)
				}
			}
		}
		count++
	}
	return ids, count
}

// ClusteringCoefficient returns the mean local clustering coefficient,
// treating the graph as undirected (an edge in either direction counts).
func ClusteringCoefficient(g *Graph) float64 {
	if g.N() == 0 {
		return 0
	}
	und := func(a, b int) bool { return g.HasEdge(a, b) || g.HasEdge(b, a) }
	total := 0.0
	for u := 0; u < g.N(); u++ {
		// Undirected neighborhood.
		seen := map[int]bool{}
		for _, e := range g.Out(u) {
			seen[e.To] = true
		}
		for _, e := range g.In(u) {
			seen[e.To] = true
		}
		nbrs := make([]int, 0, len(seen))
		for v := range seen {
			nbrs = append(nbrs, v)
		}
		sort.Ints(nbrs)
		k := len(nbrs)
		if k < 2 {
			continue
		}
		links := 0
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if und(nbrs[i], nbrs[j]) {
					links++
				}
			}
		}
		total += 2 * float64(links) / float64(k*(k-1))
	}
	return total / float64(g.N())
}

// AveragePathLength returns the mean finite BFS distance over sampled source
// nodes (all sources when sample <= 0 or >= N). Unreachable pairs are
// skipped; it returns 0 when no pair is reachable.
func AveragePathLength(g *Graph, sample int) float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	step := 1
	if sample > 0 && sample < n {
		step = n / sample
		if step < 1 {
			step = 1
		}
	}
	sum, count := 0.0, 0
	for s := 0; s < n; s += step {
		for _, d := range BFS(g, s) {
			if d > 0 {
				sum += float64(d)
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// TopByInDegree returns the ids of the m nodes with the highest in-degree,
// ties broken by lower id (deterministic). Used by PowerTrust's power-node
// election.
func TopByInDegree(g *Graph, m int) []int {
	type nd struct{ id, deg int }
	nodes := make([]nd, g.N())
	for i := range nodes {
		nodes[i] = nd{i, g.InDegree(i)}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].deg != nodes[j].deg {
			return nodes[i].deg > nodes[j].deg
		}
		return nodes[i].id < nodes[j].id
	})
	if m > len(nodes) {
		m = len(nodes)
	}
	if m < 0 {
		m = 0
	}
	out := make([]int, m)
	for i := 0; i < m; i++ {
		out[i] = nodes[i].id
	}
	return out
}
