// Package metrics provides the statistics and reporting toolkit used by the
// experiment harness: streaming moments (Welford), histograms, rank
// correlation (Kendall tau), time series and fixed-width ASCII tables that
// mirror the rows/series reported in the paper's figures.
package metrics

import (
	"math"
	"sort"
)

// Stream accumulates streaming mean and variance using Welford's algorithm.
// The zero value is an empty stream ready for use.
type Stream struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the stream.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Stream) N() int64 { return s.n }

// Mean returns the running mean (0 for an empty stream).
func (s *Stream) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 points).
func (s *Stream) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Stream) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 for an empty stream).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty stream).
func (s *Stream) Max() float64 { return s.max }

// Merge folds another stream into s (parallel-Welford combination).
func (s *Stream) Merge(o *Stream) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	mean := s.mean + delta*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// Quantile returns the q-quantile of xs using linear interpolation. It
// copies and sorts its input; xs is not modified.
//
// Edge cases are explicit rather than clamped: an empty slice and a q
// outside [0,1] (including NaN) both return NaN — "no data" and "not a
// quantile" must not masquerade as a measured value. q = 0 and q = 1 are
// valid and return the minimum and maximum.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if q == 0 {
		return cp[0]
	}
	if q == 1 {
		return cp[len(cp)-1]
	}
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Mean returns the arithmetic mean of xs. An empty slice returns NaN: a
// mean over no observations is undefined, and callers that want a neutral
// default must choose it explicitly rather than receive a silent 0.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Agg summarizes one sample of observations: the moments and order
// statistics the sweep aggregator reports per cell. All fields are NaN for
// an empty sample.
type Agg struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	Max    float64 `json:"max"`
}

// Describe computes the Agg summary of xs.
func Describe(xs []float64) Agg {
	if len(xs) == 0 {
		nan := math.NaN()
		return Agg{N: 0, Mean: nan, Std: nan, Min: nan, Median: nan, Max: nan}
	}
	var s Stream
	for _, x := range xs {
		s.Add(x)
	}
	return Agg{
		N:      len(xs),
		Mean:   s.Mean(),
		Std:    s.Std(),
		Min:    s.Min(),
		Median: Quantile(xs, 0.5),
		Max:    s.Max(),
	}
}

// KendallTau returns the Kendall rank correlation coefficient (tau-b,
// handling ties) between two equal-length score vectors. It returns 0 for
// degenerate inputs (length < 2, mismatched lengths, or all-tied vectors).
//
// The experiment harness uses it as the "reputation power / consistency with
// reality" metric of the paper's Figure 2: correlation between mechanism
// scores and ground-truth peer behaviour. Facet measurement runs it every
// epoch, so it uses Knight's O(n log n) algorithm (sort by the first vector,
// then count discordant pairs as merge-sort inversions of the second)
// rather than the quadratic pair scan.
func KendallTau(a, b []float64) float64 {
	n := len(a)
	if n != len(b) || n < 2 {
		return 0
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		i, j := idx[x], idx[y]
		if a[i] != a[j] {
			return a[i] < a[j]
		}
		return b[i] < b[j]
	})
	// Tied-pair counts: n1 over groups tied in a, n2 over groups tied in b,
	// n3 over groups tied in both.
	pairs := func(t float64) float64 { return t * (t - 1) / 2 }
	var n1, n3 float64
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && a[idx[hi]] == a[idx[lo]] {
			hi++
		}
		n1 += pairs(float64(hi - lo))
		for jlo := lo; jlo < hi; {
			jhi := jlo + 1
			for jhi < n && a[idx[jhi]] == a[idx[jlo]] && b[idx[jhi]] == b[idx[jlo]] {
				jhi++
			}
			n3 += pairs(float64(jhi - jlo))
			jlo = jhi
		}
		lo = hi
	}
	bs := make([]float64, n)
	for i, id := range idx {
		bs[i] = b[id]
	}
	discordant := float64(countInversions(bs, make([]float64, n)))
	sort.Float64s(bs)
	var n2 float64
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && bs[hi] == bs[lo] {
			hi++
		}
		n2 += pairs(float64(hi - lo))
		lo = hi
	}
	n0 := float64(n) * float64(n-1) / 2
	denom := math.Sqrt((n0 - n1) * (n0 - n2))
	if denom == 0 {
		return 0
	}
	// concordant - discordant = n0 - n1 - n2 + n3 - 2*discordant.
	return (n0 - n1 - n2 + n3 - 2*discordant) / denom
}

// countInversions merge-sorts xs in place and returns the number of strict
// inversions (i < j with xs[i] > xs[j]); tmp is scratch of equal length.
func countInversions(xs, tmp []float64) int64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := countInversions(xs[:mid], tmp[:mid]) + countInversions(xs[mid:], tmp[mid:])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if xs[i] <= xs[j] {
			tmp[k] = xs[i]
			i++
		} else {
			tmp[k] = xs[j]
			inv += int64(mid - i)
			j++
		}
		k++
	}
	copy(tmp[k:], xs[i:mid])
	copy(xs, tmp[:k+mid-i])
	return inv
}

// AUC returns the probability that a uniformly chosen positive outranks a
// uniformly chosen negative (ties count half) — the Mann–Whitney form of
// the ROC area, computed in O(m log m) by rank-summing rather than the
// quadratic pair scan. It returns NaN when either class is empty.
func AUC(pos, neg []float64) float64 {
	if len(pos) == 0 || len(neg) == 0 {
		return math.NaN()
	}
	type obs struct {
		v   float64
		pos bool
	}
	all := make([]obs, 0, len(pos)+len(neg))
	for _, v := range pos {
		all = append(all, obs{v, true})
	}
	for _, v := range neg {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	// Sum average ranks (1-based) of the positives, ties sharing a rank.
	rankSum := 0.0
	for lo := 0; lo < len(all); {
		hi := lo + 1
		for hi < len(all) && all[hi].v == all[lo].v {
			hi++
		}
		avg := float64(lo+1+hi) / 2 // mean of ranks lo+1 .. hi
		for i := lo; i < hi; i++ {
			if all[i].pos {
				rankSum += avg
			}
		}
		lo = hi
	}
	np, nn := float64(len(pos)), float64(len(neg))
	return (rankSum - np*(np+1)/2) / (np * nn)
}

// Pearson returns the Pearson linear correlation of two equal-length vectors
// (0 for degenerate inputs).
func Pearson(a, b []float64) float64 {
	n := len(a)
	if n != len(b) || n < 2 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var cov, va, vb float64
	for i := 0; i < n; i++ {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// Histogram is a fixed-bin histogram over [lo, hi). Values outside the range
// are clamped into the first/last bin.
type Histogram struct {
	lo, hi float64
	bins   []int64
	n      int64
}

// NewHistogram returns a histogram with nbins bins over [lo, hi).
// nbins < 1 is clamped to 1, and hi <= lo is widened to lo+1.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins < 1 {
		nbins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int64, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.bins) {
		idx = len(h.bins) - 1
	}
	h.bins[idx]++
	h.n++
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.n }

// Bins returns a copy of the bin counts.
func (h *Histogram) Bins() []int64 {
	out := make([]int64, len(h.bins))
	copy(out, h.bins)
	return out
}

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.n == 0 || i < 0 || i >= len(h.bins) {
		return 0
	}
	return float64(h.bins[i]) / float64(h.n)
}
