package metrics

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// bruteTau is the quadratic tau-b reference the fast implementation must
// reproduce exactly (up to float noise).
func bruteTau(a, b []float64) float64 {
	n := len(a)
	if n != len(b) || n < 2 {
		return 0
	}
	var concordant, discordant, tiesA, tiesB float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := a[i] - a[j]
			db := b[i] - b[j]
			switch {
			case da == 0 && db == 0:
				tiesA++
				tiesB++
			case da == 0:
				tiesA++
			case db == 0:
				tiesB++
			case da*db > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	n0 := float64(n*(n-1)) / 2
	denom := math.Sqrt((n0 - tiesA) * (n0 - tiesB))
	if denom == 0 {
		return 0
	}
	return (concordant - discordant) / denom
}

func bruteAUC(pos, neg []float64) float64 {
	if len(pos) == 0 || len(neg) == 0 {
		return math.NaN()
	}
	wins := 0.0
	for _, g := range pos {
		for _, b := range neg {
			switch {
			case g > b:
				wins++
			case g == b:
				wins += 0.5
			}
		}
	}
	return wins / float64(len(pos)*len(neg))
}

// quantized draws values from a small discrete set so ties are frequent.
func quantized(rng *sim.RNG, n, levels int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(rng.Intn(levels)) / float64(levels)
	}
	return out
}

func TestKendallTauMatchesBruteForce(t *testing.T) {
	rng := sim.NewRNG(99)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(60)
		levels := 1 + rng.Intn(8) // levels=1 gives an all-tied vector
		a := quantized(rng, n, levels)
		b := quantized(rng, n, 1+rng.Intn(8))
		got, want := KendallTau(a, b), bruteTau(a, b)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d (n=%d): fast tau %v != brute %v\na=%v\nb=%v",
				trial, n, got, want, a, b)
		}
	}
}

func TestKendallTauKnownValues(t *testing.T) {
	if got := KendallTau([]float64{1, 2, 3, 4}, []float64{1, 2, 3, 4}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect agreement tau = %v", got)
	}
	if got := KendallTau([]float64{1, 2, 3, 4}, []float64{4, 3, 2, 1}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect disagreement tau = %v", got)
	}
	if got := KendallTau([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("all-tied vector tau = %v, want 0", got)
	}
	if got := KendallTau([]float64{1}, []float64{1}); got != 0 {
		t.Fatalf("short input tau = %v, want 0", got)
	}
	if got := KendallTau([]float64{1, 2}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("mismatched lengths tau = %v, want 0", got)
	}
}

func TestAUCMatchesBruteForce(t *testing.T) {
	rng := sim.NewRNG(7)
	for trial := 0; trial < 50; trial++ {
		pos := quantized(rng, 1+rng.Intn(30), 1+rng.Intn(6))
		neg := quantized(rng, 1+rng.Intn(30), 1+rng.Intn(6))
		got, want := AUC(pos, neg), bruteAUC(pos, neg)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: fast AUC %v != brute %v", trial, got, want)
		}
	}
	if !math.IsNaN(AUC(nil, []float64{1})) || !math.IsNaN(AUC([]float64{1}, nil)) {
		t.Fatal("empty class must yield NaN")
	}
	if got := AUC([]float64{1, 1}, []float64{0, 0}); got != 1 {
		t.Fatalf("separated classes AUC = %v", got)
	}
	if got := AUC([]float64{0.5}, []float64{0.5}); got != 0.5 {
		t.Fatalf("fully tied AUC = %v", got)
	}
}
