package metrics

import (
	"testing"
)

func TestDirtySetZeroValueUsable(t *testing.T) {
	var s DirtySet
	if s.Len() != 0 || s.Dirty(0) || len(s.Sorted()) != 0 {
		t.Fatal("zero-value set not empty")
	}
	s.Mark(3)
	if !s.Dirty(3) || s.Len() != 1 {
		t.Fatal("Mark on zero value failed")
	}
}

func TestDirtySetMarkDedupes(t *testing.T) {
	var s DirtySet
	for i := 0; i < 5; i++ {
		s.Mark(7)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after repeated marks, want 1", s.Len())
	}
}

func TestDirtySetIgnoresNegatives(t *testing.T) {
	var s DirtySet
	s.Mark(-1)
	if s.Len() != 0 || s.Dirty(-1) {
		t.Fatal("negative id recorded")
	}
}

func TestDirtySetSortedMemoized(t *testing.T) {
	var s DirtySet
	for _, id := range []int{9, 2, 5, 2, 0, 9} {
		s.Mark(id)
	}
	want := []int{0, 2, 5, 9}
	got := s.Sorted()
	if len(got) != len(want) {
		t.Fatalf("Sorted = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", got, want)
		}
	}
	// Ascending insertion after sorting keeps the memoized order valid.
	s.Mark(11)
	got = s.Sorted()
	if got[len(got)-1] != 11 {
		t.Fatalf("Sorted after ascending Mark = %v", got)
	}
}

func TestDirtySetReset(t *testing.T) {
	var s DirtySet
	s.Mark(4)
	s.Mark(1)
	s.Reset()
	if s.Len() != 0 || s.Dirty(4) || s.Dirty(1) {
		t.Fatal("Reset left dirty state")
	}
	// The bitmap capacity survives; marking again works.
	s.Mark(4)
	if !s.Dirty(4) || s.Len() != 1 {
		t.Fatal("Mark after Reset failed")
	}
}
