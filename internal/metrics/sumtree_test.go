package metrics

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// TestSumTreeMatchesDenseRebuild is the property the incremental epoch
// aggregates stand on: after ANY sequence of leaf updates, the root is
// bit-for-bit the value a full bottom-up rebuild over the same leaves
// produces — for awkward sizes (non powers of two), repeated writes of the
// same leaf, and adversarially mixed magnitudes.
func TestSumTreeMatchesDenseRebuild(t *testing.T) {
	rng := sim.NewRNG(99)
	for _, n := range []int{1, 2, 3, 7, 8, 100, 1000, 1023} {
		inc := NewSumTree(n)
		leaves := make([]float64, n)
		for step := 0; step < 5000; step++ {
			i := rng.Intn(n)
			// Mixed magnitudes make float addition maximally order-sensitive,
			// so a shape mismatch cannot hide.
			v := rng.Float64() * math.Pow(10, float64(rng.Intn(9)-4))
			leaves[i] = v
			inc.Set(i, v)
			if step%977 != 0 && step != 4999 {
				continue
			}
			ref := NewSumTree(n)
			ref.Fill(leaves)
			if incSum, refSum := inc.Sum(), ref.Sum(); math.Float64bits(incSum) != math.Float64bits(refSum) {
				t.Fatalf("n=%d step=%d: incremental root %x diverged from dense rebuild %x", n, step, math.Float64bits(incSum), math.Float64bits(refSum))
			}
		}
		// Every internal node — not just the root — must satisfy the
		// sum-of-children invariant, or later Sets would read stale partials.
		for p := 1; p < inc.size; p++ {
			if want := inc.node[2*p] + inc.node[2*p+1]; math.Float64bits(inc.node[p]) != math.Float64bits(want) {
				t.Fatalf("n=%d: node %d is not the sum of its children", n, p)
			}
		}
	}
}

func TestSumTreeBasics(t *testing.T) {
	tr := NewSumTree(3)
	if got := tr.Sum(); got != 0 {
		t.Fatalf("empty sum = %v", got)
	}
	tr.FillUniform(0.5)
	if got := tr.Sum(); got != 1.5 {
		t.Fatalf("uniform sum = %v, want 1.5", got)
	}
	if got := tr.Mean(); got != 0.5 {
		t.Fatalf("mean = %v, want 0.5", got)
	}
	tr.Set(1, 0.25)
	if got, want := tr.Sum(), 0.5+0.25+0.5; got != want {
		t.Fatalf("sum after set = %v, want %v", got, want)
	}
	if got := tr.Leaf(1); got != 0.25 {
		t.Fatalf("leaf = %v", got)
	}
	// Out-of-range accesses are ignored, not panics.
	tr.Set(-1, 9)
	tr.Set(3, 9)
	if got := tr.Leaf(5); got != 0 {
		t.Fatalf("out-of-range leaf = %v", got)
	}
	empty := NewSumTree(0)
	if got := empty.Sum(); got != 0 {
		t.Fatalf("zero-size sum = %v", got)
	}
	if got := empty.Mean(); !math.IsNaN(got) {
		t.Fatalf("zero-size mean = %v, want NaN", got)
	}
}

// BenchmarkSumTreeSet documents the O(log n) leaf update the settled regime
// pays per dirty user, allocation-free.
func BenchmarkSumTreeSet(b *testing.B) {
	tr := NewSumTree(1 << 20)
	rng := sim.NewRNG(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Set(rng.Intn(1<<20), float64(i))
	}
}
