package metrics

import "math"

// SumTree is a fixed-shape summation tree over n float64 leaves: a complete
// binary tree (leaves padded to the next power of two with zeros) whose
// internal nodes each hold the sum of their two children. Because the tree's
// SHAPE is fixed at construction, the root is a fully parenthesized sum with
// a fixed association order — so the root after any sequence of Set calls is
// bit-for-bit identical to recomputing the whole tree bottom-up over the
// same leaves. That is the property incremental epoch aggregates need:
// maintaining a mean from a dirty set must not drift, by even one ulp, from
// the dense recomputation a resumed or dense-reference run performs.
//
// Why the bits match: Set re-evaluates node[p] = node[2p] + node[2p+1] on
// every node along the leaf-to-root path, so the "every internal node is the
// sum of its current children" invariant holds after each call. Two trees
// with equal leaves that both satisfy the invariant are equal node-for-node
// by induction on height — regardless of the order, grouping, or number of
// Set calls that produced them. A left-to-right running sum has no such
// fixed shape, which is exactly why incremental maintenance of one cannot
// reproduce its bits.
//
// Set is O(log n); Sum and Mean are O(1). The zero-size tree (n == 0) is
// valid and sums to 0.
type SumTree struct {
	n    int
	size int // leaf span: smallest power of two >= max(n, 1)
	node []float64
}

// NewSumTree builds a tree of n zero leaves.
func NewSumTree(n int) *SumTree {
	if n < 0 {
		n = 0
	}
	size := 1
	for size < n {
		size *= 2
	}
	return &SumTree{n: n, size: size, node: make([]float64, 2*size)}
}

// N returns the leaf count.
func (t *SumTree) N() int { return t.n }

// Leaf returns leaf i's current value.
func (t *SumTree) Leaf(i int) float64 {
	if i < 0 || i >= t.n {
		return 0
	}
	return t.node[t.size+i]
}

// Set writes leaf i and refreshes the sums on its path to the root. Setting
// a leaf to its current bit pattern (value and sign bit both equal) is a
// no-op.
func (t *SumTree) Set(i int, v float64) {
	if i < 0 || i >= t.n {
		return
	}
	p := t.size + i
	if old := t.node[p]; old == v && math.Signbit(old) == math.Signbit(v) {
		return
	}
	t.node[p] = v
	for p >>= 1; p >= 1; p >>= 1 {
		t.node[p] = t.node[2*p] + t.node[2*p+1]
	}
}

// Fill overwrites every leaf from vs (len(vs) must be N) and rebuilds every
// internal node bottom-up — the dense recomputation the incremental path is
// pinned against, and the restore path for trees rebuilt from a snapshot.
func (t *SumTree) Fill(vs []float64) {
	if len(vs) != t.n {
		panic("metrics: SumTree.Fill length mismatch")
	}
	copy(t.node[t.size:t.size+t.n], vs)
	for i := t.size + t.n; i < 2*t.size; i++ {
		t.node[i] = 0
	}
	for p := t.size - 1; p >= 1; p-- {
		t.node[p] = t.node[2*p] + t.node[2*p+1]
	}
}

// FillUniform sets every leaf to v and rebuilds the tree.
func (t *SumTree) FillUniform(v float64) {
	for i := 0; i < t.n; i++ {
		t.node[t.size+i] = v
	}
	for i := t.size + t.n; i < 2*t.size; i++ {
		t.node[i] = 0
	}
	for p := t.size - 1; p >= 1; p-- {
		t.node[p] = t.node[2*p] + t.node[2*p+1]
	}
}

// Sum returns the root: the fixed-shape sum of all leaves.
func (t *SumTree) Sum() float64 { return t.node[1] }

// Mean returns Sum()/N (NaN for an empty tree, matching Mean on an empty
// slice).
func (t *SumTree) Mean() float64 {
	return t.Sum() / float64(t.n)
}
