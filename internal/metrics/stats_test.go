package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestStreamBasics(t *testing.T) {
	var s Stream
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if !almostEqual(s.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("Var = %v, want %v", s.Var(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestStreamEmpty(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Var() != 0 || s.Std() != 0 || s.N() != 0 {
		t.Fatal("empty stream has nonzero stats")
	}
}

func TestStreamMergeMatchesSequential(t *testing.T) {
	rng := sim.NewRNG(1)
	f := func(seed uint16) bool {
		r := sim.NewRNG(uint64(seed) + 1)
		n := 3 + r.Intn(50)
		var whole, a, b Stream
		for i := 0; i < n; i++ {
			x := r.NormFloat64()*3 + 1
			whole.Add(x)
			if i < n/2 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		return almostEqual(a.Mean(), whole.Mean(), 1e-9) &&
			almostEqual(a.Var(), whole.Var(), 1e-9) &&
			a.N() == whole.N() &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamMergeEmptySides(t *testing.T) {
	var a, b Stream
	a.Add(3)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatal("merge with empty changed stream")
	}
	var c Stream
	c.Merge(&a) // merging into empty copies
	if c.N() != 1 || c.Mean() != 3 {
		t.Fatal("merge into empty did not copy")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be modified.
	if xs[0] != 5 {
		t.Fatal("Quantile sorted its input in place")
	}
	// Edge cases are explicit NaN, not silent clamps: no data and
	// not-a-quantile must not look like measured values.
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile != NaN")
	}
	for _, q := range []float64{-0.01, 1.01, math.NaN()} {
		if !math.IsNaN(Quantile(xs, q)) {
			t.Fatalf("Quantile(q=%v) != NaN", q)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.3); !almostEqual(got, 3, 1e-12) {
		t.Fatalf("interpolated quantile = %v, want 3", got)
	}
}

func TestKendallTauPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{10, 20, 30, 40, 50}
	if got := KendallTau(a, b); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("tau = %v, want 1", got)
	}
	rev := []float64{50, 40, 30, 20, 10}
	if got := KendallTau(a, rev); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("tau = %v, want -1", got)
	}
}

func TestKendallTauDegenerate(t *testing.T) {
	if KendallTau([]float64{1}, []float64{2}) != 0 {
		t.Fatal("singleton tau != 0")
	}
	if KendallTau([]float64{1, 2}, []float64{1, 2, 3}) != 0 {
		t.Fatal("mismatched-length tau != 0")
	}
	if KendallTau([]float64{3, 3, 3}, []float64{1, 2, 3}) != 0 {
		t.Fatal("all-tied tau != 0")
	}
}

func TestKendallTauTies(t *testing.T) {
	// Hand-computed tau-b example with one tie in each vector.
	a := []float64{1, 2, 2, 3}
	b := []float64{1, 2, 3, 3}
	// Pairs: (1,2):C (1,2):C (1,3):C (2,2)tieA:(2,3) - a tied, b differs -> tieA
	// (2,3):C (2,3): a differs (2<3), b tied (3,3) -> tieB. n0=6.
	// C=4, D=0, tiesA=1, tiesB=1 => tau = 4/sqrt(5*5) = 0.8
	if got := KendallTau(a, b); !almostEqual(got, 0.8, 1e-12) {
		t.Fatalf("tau-b = %v, want 0.8", got)
	}
}

func TestKendallTauNoisyMonotone(t *testing.T) {
	r := sim.NewRNG(99)
	n := 100
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = float64(i)
		b[i] = float64(i) + r.NormFloat64()*2
	}
	if got := KendallTau(a, b); got < 0.8 {
		t.Fatalf("noisy monotone tau = %v, want > 0.8", got)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if got := Pearson(a, b); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	c := []float64{8, 6, 4, 2}
	if got := Pearson(a, c); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
	if Pearson(a, []float64{5, 5, 5, 5}) != 0 {
		t.Fatal("constant-vector Pearson != 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, c := range h.Bins() {
		if c != 1 {
			t.Fatalf("bin %d = %d, want 1", i, c)
		}
	}
	// Clamping.
	h.Add(-5)
	h.Add(99)
	bins := h.Bins()
	if bins[0] != 2 || bins[9] != 2 {
		t.Fatalf("clamping failed: %v", bins)
	}
	if h.N() != 12 {
		t.Fatalf("N = %d", h.N())
	}
	if !almostEqual(h.Fraction(0), 2.0/12.0, 1e-12) {
		t.Fatalf("Fraction(0) = %v", h.Fraction(0))
	}
}

func TestHistogramDegenerateArgs(t *testing.T) {
	h := NewHistogram(5, 5, 0) // hi<=lo and nbins<1 both clamped
	h.Add(5)
	if h.N() != 1 {
		t.Fatal("degenerate histogram unusable")
	}
	if h.Fraction(-1) != 0 || h.Fraction(5) != 0 {
		t.Fatal("out-of-range Fraction != 0")
	}
}

func TestMeanHelper(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) != NaN")
	}
	if got := Mean([]float64{1, 2, 3}); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("Mean = %v", got)
	}
}

func TestDescribe(t *testing.T) {
	a := Describe([]float64{1, 2, 3, 4})
	if a.N != 4 || a.Mean != 2.5 || a.Min != 1 || a.Max != 4 {
		t.Fatalf("Describe = %+v", a)
	}
	if !almostEqual(a.Median, 2.5, 1e-12) {
		t.Fatalf("median = %v, want 2.5", a.Median)
	}
	if !almostEqual(a.Std, math.Sqrt(5.0/3), 1e-12) {
		t.Fatalf("std = %v", a.Std)
	}
	one := Describe([]float64{7})
	if one.N != 1 || one.Mean != 7 || one.Std != 0 || one.Min != 7 || one.Max != 7 || one.Median != 7 {
		t.Fatalf("single-sample Describe = %+v", one)
	}
	empty := Describe(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) || !math.IsNaN(empty.Median) {
		t.Fatalf("empty Describe = %+v", empty)
	}
}
