package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table renders fixed-width ASCII tables for experiment output. It is the
// uniform way `cmd/experiments` prints every reproduced figure as rows.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row of cells; each cell is formatted with %v, floats with
// four significant decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
}

func formatCell(c any) string {
	switch v := c.(type) {
	case float64:
		return strconv.FormatFloat(v, 'f', 4, 64)
	case float32:
		return strconv.FormatFloat(float64(v), 'f', 4, 32)
	case string:
		return v
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(t.headers))
		for i := range t.headers {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// NumRows reports the number of data rows added.
func (t *Table) NumRows() int { return len(t.rows) }

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is a named (x, y) sequence used for figure-style output.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// MonotoneUp reports whether Y is non-decreasing within tolerance eps
// (allows small noise dips of at most eps).
func (s *Series) MonotoneUp(eps float64) bool {
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] < s.Y[i-1]-eps {
			return false
		}
	}
	return true
}

// MonotoneDown reports whether Y is non-increasing within tolerance eps.
func (s *Series) MonotoneDown(eps float64) bool {
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] > s.Y[i-1]+eps {
			return false
		}
	}
	return true
}

// RenderSeries writes one aligned row per x with all series' y values, a
// compact multi-series "figure as a table".
func RenderSeries(w io.Writer, title, xName string, series ...*Series) {
	headers := append([]string{xName}, make([]string, len(series))...)
	for i, s := range series {
		headers[i+1] = s.Name
	}
	tab := NewTable(title, headers...)
	if len(series) == 0 {
		tab.Render(w)
		return
	}
	for i := 0; i < series[0].Len(); i++ {
		cells := make([]any, len(series)+1)
		cells[0] = series[0].X[i]
		for j, s := range series {
			if i < s.Len() {
				cells[j+1] = s.Y[i]
			} else {
				cells[j+1] = ""
			}
		}
		tab.AddRow(cells...)
	}
	tab.Render(w)
}
