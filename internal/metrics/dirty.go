package metrics

import "sort"

// DirtySet tracks which of an open-ended id range changed since the last
// Reset, so refresh passes can touch only the dirty entries instead of
// rescanning the whole population. The zero value is an empty, usable set;
// the bitmap grows on demand. Marking is O(1) amortized, membership is O(1),
// and Sorted memoizes its ascending order between mutations.
type DirtySet struct {
	mark   []bool
	ids    []int
	sorted bool
}

// Mark records id as dirty. Negative ids are ignored.
func (s *DirtySet) Mark(id int) {
	if id < 0 {
		return
	}
	if id >= len(s.mark) {
		// Grow geometrically: ids often arrive in ascending order (sorted
		// re-mark loops), and growing to exactly id+1 each time would copy
		// Θ(k²) bytes over k marks.
		size := 2 * len(s.mark)
		if size < id+1 {
			size = id + 1
		}
		grown := make([]bool, size)
		copy(grown, s.mark)
		s.mark = grown
	}
	if s.mark[id] {
		return
	}
	s.mark[id] = true
	s.ids = append(s.ids, id)
	s.sorted = len(s.ids) == 1 || (s.sorted && s.ids[len(s.ids)-2] < id)
}

// Dirty reports whether id has been marked since the last Reset.
func (s *DirtySet) Dirty(id int) bool {
	return id >= 0 && id < len(s.mark) && s.mark[id]
}

// Len returns the number of distinct dirty ids.
func (s *DirtySet) Len() int { return len(s.ids) }

// Sorted returns the dirty ids in ascending order. The slice is owned by the
// set and valid until the next Mark or Reset.
func (s *DirtySet) Sorted() []int {
	if !s.sorted {
		sort.Ints(s.ids)
		s.sorted = true
	}
	return s.ids
}

// Reset clears the set, keeping the bitmap's capacity.
func (s *DirtySet) Reset() {
	for _, id := range s.ids {
		s.mark[id] = false
	}
	s.ids = s.ids[:0]
	s.sorted = true
}
