package metrics

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.AddRow("alpha", 1.5)
	tab.AddRow("b", 42)
	out := tab.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.5000") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
}

func TestTableAlignsColumns(t *testing.T) {
	tab := NewTable("", "x", "y")
	tab.AddRow("longvalue", 1)
	out := tab.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("unexpected line count:\n%s", out)
	}
	// Header row must be padded to the data width.
	if len(strings.TrimRight(lines[1], " ")) < len("longvalue") {
		t.Fatalf("separator not widened:\n%s", out)
	}
}

func TestSeriesMonotone(t *testing.T) {
	var s Series
	for i, y := range []float64{0, 0.1, 0.3, 0.29, 0.5} {
		s.Add(float64(i), y)
	}
	if !s.MonotoneUp(0.02) {
		t.Fatal("should be monotone up within eps=0.02")
	}
	if s.MonotoneUp(0.001) {
		t.Fatal("should not be strictly monotone with eps=0.001")
	}
	var d Series
	for i, y := range []float64{1, 0.8, 0.85, 0.5} {
		d.Add(float64(i), y)
	}
	if !d.MonotoneDown(0.1) {
		t.Fatal("should be monotone down within eps=0.1")
	}
	if d.MonotoneDown(0.01) {
		t.Fatal("should not be monotone down with eps=0.01")
	}
}

func TestRenderSeries(t *testing.T) {
	a := &Series{Name: "s1"}
	b := &Series{Name: "s2"}
	for i := 0; i < 3; i++ {
		a.Add(float64(i), float64(i)*2)
		b.Add(float64(i), float64(i)*3)
	}
	var sb strings.Builder
	RenderSeries(&sb, "fig", "x", a, b)
	out := sb.String()
	if !strings.Contains(out, "s1") || !strings.Contains(out, "s2") {
		t.Fatalf("missing series names:\n%s", out)
	}
	if !strings.Contains(out, "4.0000") || !strings.Contains(out, "6.0000") {
		t.Fatalf("missing values:\n%s", out)
	}
}

func TestRenderSeriesEmpty(t *testing.T) {
	var sb strings.Builder
	RenderSeries(&sb, "empty", "x")
	if !strings.Contains(sb.String(), "empty") {
		t.Fatal("empty render missing title")
	}
}
