package privacy

import (
	"errors"
	"testing"

	"repro/internal/dht"
	"repro/internal/sim"
	"repro/internal/social"
)

func newTestService(t *testing.T) (*Service, *Ledger, *sim.Sim) {
	t.Helper()
	ring := dht.NewRing(3)
	for i := 0; i < 16; i++ {
		if err := ring.Join(i); err != nil {
			t.Fatal(err)
		}
	}
	ring.Stabilize()
	ledger := NewLedger()
	s := sim.New()
	svc, err := NewService(ring, ledger, s)
	if err != nil {
		t.Fatal(err)
	}
	return svc, ledger, s
}

func TestNewServiceValidation(t *testing.T) {
	if _, err := NewService(nil, NewLedger(), sim.New()); err == nil {
		t.Fatal("nil ring accepted")
	}
	if _, err := NewService(dht.NewRing(1), nil, sim.New()); err == nil {
		t.Fatal("nil ledger accepted")
	}
	if _, err := NewService(dht.NewRing(1), NewLedger(), nil); err == nil {
		t.Fatal("nil sim accepted")
	}
}

func TestPublishRequestGrant(t *testing.T) {
	svc, ledger, _ := newTestService(t)
	pol := allowAll()
	if err := svc.Publish(0, "u0/email", []byte("a@b.c"), social.Medium, pol); err != nil {
		t.Fatal(err)
	}
	data, dec, err := svc.Request(1, "u0/email", Read, SocialUse, 0.9, true)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Allowed || string(data) != "a@b.c" {
		t.Fatalf("grant: dec=%+v data=%q", dec, data)
	}
	if svc.Grants != 1 {
		t.Fatalf("Grants = %d", svc.Grants)
	}
	if ledger.Len() != 1 {
		t.Fatal("grant not ledgered")
	}
	e := ledger.Events()[0]
	if e.Owner != 0 || e.Recipient != 1 || !e.Consented || e.Purpose != SocialUse {
		t.Fatalf("ledger event = %+v", e)
	}
}

func TestRequestDenied(t *testing.T) {
	svc, ledger, _ := newTestService(t)
	pol := DefaultPolicy(social.High) // friends-only, trust >= 0.8
	if err := svc.Publish(0, "u0/medical", []byte("x"), social.High, pol); err != nil {
		t.Fatal(err)
	}
	_, dec, err := svc.Request(1, "u0/medical", Read, SocialUse, 0.9, false)
	if !errors.Is(err, ErrDenied) || dec.Reason != DenyNotFriend {
		t.Fatalf("non-friend: err=%v dec=%+v", err, dec)
	}
	_, dec, err = svc.Request(1, "u0/medical", Read, SocialUse, 0.3, true)
	if !errors.Is(err, ErrDenied) || dec.Reason != DenyInsufficientTrust {
		t.Fatalf("low trust: err=%v dec=%+v", err, dec)
	}
	_, dec, err = svc.Request(1, "u0/medical", Read, CommercialUse, 0.9, true)
	if !errors.Is(err, ErrDenied) || dec.Reason != DenyPurpose {
		t.Fatalf("bad purpose: err=%v dec=%+v", err, dec)
	}
	if ledger.Len() != 0 {
		t.Fatal("denied requests must not be ledgered as disclosures")
	}
	if svc.Denials[DenyNotFriend] != 1 || svc.Denials[DenyInsufficientTrust] != 1 || svc.Denials[DenyPurpose] != 1 {
		t.Fatalf("denial counters = %v", svc.Denials)
	}
}

func TestQuotaEnforcedAcrossRequests(t *testing.T) {
	svc, _, _ := newTestService(t)
	pol := allowAll()
	pol.Conditions.MaxAccessesPerRequester = 2
	if err := svc.Publish(0, "k", []byte("v"), social.Low, pol); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := svc.Request(1, "k", Read, SocialUse, 1, true); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	_, dec, err := svc.Request(1, "k", Read, SocialUse, 1, true)
	if !errors.Is(err, ErrDenied) || dec.Reason != DenyQuotaExceeded {
		t.Fatalf("third access: err=%v dec=%+v", err, dec)
	}
	// A different requester still has quota.
	if _, _, err := svc.Request(2, "k", Read, SocialUse, 1, true); err != nil {
		t.Fatalf("other requester: %v", err)
	}
}

func TestUnknownKey(t *testing.T) {
	svc, _, _ := newTestService(t)
	if _, _, err := svc.Request(1, "ghost", Read, SocialUse, 1, true); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestDoublePublishRejected(t *testing.T) {
	svc, _, _ := newTestService(t)
	if err := svc.Publish(0, "k", []byte("v"), social.Low, allowAll()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Publish(1, "k", []byte("w"), social.Low, allowAll()); err == nil {
		t.Fatal("double publish accepted")
	}
}

func TestWithdraw(t *testing.T) {
	svc, _, _ := newTestService(t)
	if err := svc.Publish(0, "k", []byte("v"), social.Low, allowAll()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Withdraw(1, "k"); err == nil {
		t.Fatal("non-owner withdraw accepted")
	}
	if err := svc.Withdraw(0, "k"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Request(1, "k", Read, SocialUse, 1, true); !errors.Is(err, ErrUnknownKey) {
		t.Fatal("withdrawn key still served")
	}
	if _, ok := svc.PolicyOf("k"); ok {
		t.Fatal("withdrawn key policy still visible")
	}
	// Republish after withdraw is allowed.
	if err := svc.Publish(0, "k", []byte("v2"), social.Low, allowAll()); err != nil {
		t.Fatalf("republish: %v", err)
	}
}

func TestRetentionExpiry(t *testing.T) {
	svc, _, s := newTestService(t)
	pol := allowAll()
	pol.Retention = 100
	if err := svc.Publish(0, "k", []byte("v"), social.Medium, pol); err != nil {
		t.Fatal(err)
	}
	if _, dec, err := svc.Request(1, "k", Read, SocialUse, 1, true); err != nil || dec.ExpiresAt != 100 {
		t.Fatalf("grant: err=%v dec=%+v", err, dec)
	}
	if svc.LiveCopies("k") != 1 {
		t.Fatal("granted copy not tracked")
	}
	if err := s.Run(50); err != nil {
		t.Fatal(err)
	}
	if svc.OverdueCopies(s.Now()) != 0 || svc.LiveCopies("k") != 1 {
		t.Fatal("copy wrongly expired early")
	}
	if err := s.Run(150); err != nil {
		t.Fatal(err)
	}
	if svc.LiveCopies("k") != 0 {
		t.Fatal("copy not deleted at retention time")
	}
	if svc.OverdueCopies(s.Now()) != 0 {
		t.Fatal("overdue copies after expiry processing")
	}
}

func TestNotifyOwnerObligation(t *testing.T) {
	svc, _, _ := newTestService(t)
	pol := allowAll()
	pol.Obligations = []Obligation{NotifyOwner}
	if err := svc.Publish(0, "k", []byte("v"), social.Medium, pol); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Request(1, "k", Read, SocialUse, 1, true); err != nil {
		t.Fatal(err)
	}
	ns := svc.Notifications()
	if len(ns) != 1 || ns[0].Owner != 0 || ns[0].Requester != 1 || ns[0].Key != "k" {
		t.Fatalf("notifications = %+v", ns)
	}
}

func TestLeakIsLedgeredUnconsented(t *testing.T) {
	svc, ledger, _ := newTestService(t)
	if err := svc.Publish(0, "k", []byte("v"), social.High, allowAll()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Leak("k", 7); err != nil {
		t.Fatal(err)
	}
	v := ledger.Violations()
	if len(v) != 1 || v[0].Recipient != 7 || v[0].Consented {
		t.Fatalf("violations = %+v", v)
	}
	if err := svc.Leak("ghost", 7); err == nil {
		t.Fatal("leak of unknown key accepted")
	}
}

func TestVerifyIntegrity(t *testing.T) {
	svc, _, _ := newTestService(t)
	for i := 0; i < 10; i++ {
		if err := svc.Publish(i, keyFor(i), []byte{byte(i)}, social.Low, allowAll()); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func keyFor(i int) string { return "user/" + string(rune('a'+i)) }
