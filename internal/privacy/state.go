package privacy

// LedgerState is the serializable state of a Ledger: the event list alone.
// The per-owner aggregates are a derived index and are rebuilt by replaying
// the events through Record, so the snapshot has a single source of truth.
type LedgerState struct {
	Events []Disclosure
}

// State captures the ledger's recorded events.
func (l *Ledger) State() LedgerState {
	return LedgerState{Events: append([]Disclosure(nil), l.events...)}
}

// SetState resets the ledger to the captured events, rebuilding every
// aggregate. Restoring in place keeps existing references to the ledger
// (the workload engine's, the dynamics') valid.
func (l *Ledger) SetState(st LedgerState) {
	l.events = nil
	l.byOwner = make(map[int]map[string]map[int]bool)
	l.sensByOwner = make(map[int]map[string]float64)
	l.consent = make(map[int]consentTally)
	// Drop the facet cache entirely: the replay below marks every restored
	// owner dirty, but a cold cache also forgets stale entries for owners
	// the snapshot no longer contains.
	l.facetVal = nil
	l.facetOK = nil
	l.facetInit = false
	l.facetDirty.Reset()
	if len(st.Events) > 0 {
		l.events = make([]Disclosure, 0, len(st.Events))
	}
	for _, e := range st.Events {
		l.Record(e)
	}
}
