package privacy

// LedgerState is the serializable state of a Ledger: the event list, plus
// the owners dirty since the last facet refresh. The per-owner aggregates
// are a derived index and are rebuilt by replaying the events through
// Record, so the snapshot has a single source of truth — but the dirty set
// cannot be derived from the events (it depends on when the last refresh
// ran), and the epoch tail's DirtyFacets accounting must be identical on a
// resumed run, so it is captured explicitly.
type LedgerState struct {
	Events []Disclosure
	// FacetDirty lists the owners marked dirty at capture time (ascending).
	FacetDirty []int
}

// State captures the ledger's recorded events.
func (l *Ledger) State() LedgerState {
	return LedgerState{
		Events:     append([]Disclosure(nil), l.events...),
		FacetDirty: append([]int(nil), l.facetDirty.Sorted()...),
	}
}

// SetState resets the ledger to the captured events, rebuilding every
// aggregate. Restoring in place keeps existing references to the ledger
// (the workload engine's, the dynamics') valid.
func (l *Ledger) SetState(st LedgerState) {
	l.events = nil
	l.byOwner = make(map[int]map[string]map[int]bool)
	l.sensByOwner = make(map[int]map[string]float64)
	l.consent = make(map[int]consentTally)
	// Drop the facet cache entirely: the replay below marks every restored
	// owner dirty, but a cold cache also forgets stale entries for owners
	// the snapshot no longer contains.
	l.facetVal = nil
	l.facetOK = nil
	l.facetInit = false
	l.facetDirty.Reset()
	if len(st.Events) > 0 {
		l.events = make([]Disclosure, 0, len(st.Events))
	}
	for _, e := range st.Events {
		l.Record(e)
	}
	// The replay above marked every restored owner dirty; reduce the set to
	// exactly what the capture recorded, so a resumed run's dirty-facet
	// accounting matches the uninterrupted one. (The facet cache was dropped
	// wholesale above, so correctness does not depend on these marks — only
	// the epoch tail's bookkeeping does.)
	l.facetDirty.Reset()
	for _, owner := range st.FacetDirty {
		l.facetDirty.Mark(owner)
	}
}
