package privacy

import (
	"fmt"

	"repro/internal/sim"
)

// Principle enumerates the eight OECD privacy principles the paper lists in
// §2.3.
type Principle int

// The OECD guidelines (1980), in the paper's order.
const (
	CollectionLimitation Principle = iota + 1
	PurposeSpecification
	UseLimitation
	DataQuality
	SecuritySafeguards
	Openness
	IndividualParticipation
	Accountability
)

// String returns the principle name.
func (p Principle) String() string {
	switch p {
	case CollectionLimitation:
		return "collection-limitation"
	case PurposeSpecification:
		return "purpose-specification"
	case UseLimitation:
		return "use-limitation"
	case DataQuality:
		return "data-quality"
	case SecuritySafeguards:
		return "security-safeguards"
	case Openness:
		return "openness"
	case IndividualParticipation:
		return "individual-participation"
	case Accountability:
		return "accountability"
	default:
		return fmt.Sprintf("principle(%d)", int(p))
	}
}

// Principles lists all eight in order.
func Principles() []Principle {
	return []Principle{
		CollectionLimitation, PurposeSpecification, UseLimitation, DataQuality,
		SecuritySafeguards, Openness, IndividualParticipation, Accountability,
	}
}

// AuditResult is one principle's conformance verdict.
type AuditResult struct {
	Principle Principle
	Pass      bool
	Detail    string
}

// Audit checks the privacy service and ledger against each OECD principle
// and returns one result per principle (the E9 conformance matrix).
func Audit(svc *Service, ledger *Ledger, now sim.Time) []AuditResult {
	results := make([]AuditResult, 0, 8)

	// 1. Collection limitation: no data flowed without consent.
	viol := len(ledger.Violations())
	results = append(results, AuditResult{
		Principle: CollectionLimitation,
		Pass:      viol == 0,
		Detail:    fmt.Sprintf("%d unconsented disclosures", viol),
	})

	// 2. Purpose specification: every disclosure declared a purpose.
	unspecified := 0
	for _, e := range ledger.Events() {
		if e.Purpose == 0 {
			unspecified++
		}
	}
	results = append(results, AuditResult{
		Principle: PurposeSpecification,
		Pass:      unspecified == 0,
		Detail:    fmt.Sprintf("%d disclosures without declared purpose", unspecified),
	})

	// 3. Use limitation: every consented disclosure's purpose was allowed
	// by the item's policy at audit time.
	misuse := 0
	for _, e := range ledger.Events() {
		if !e.Consented {
			continue
		}
		pol, ok := svc.PolicyOf(e.Item)
		if !ok {
			continue // item withdrawn since; grant predates withdrawal
		}
		owner, _ := svc.OwnerOf(e.Item)
		if e.Recipient == owner {
			continue // owners always access their own data
		}
		if !pol.Purposes[e.Purpose] {
			misuse++
		}
	}
	results = append(results, AuditResult{
		Principle: UseLimitation,
		Pass:      misuse == 0,
		Detail:    fmt.Sprintf("%d grants outside policy purposes", misuse),
	})

	// 4. Data quality: stored data matches what the owner published.
	dqErr := svc.VerifyIntegrity()
	dqDetail := "all live items match publisher digests"
	if dqErr != nil {
		dqDetail = dqErr.Error()
	}
	results = append(results, AuditResult{
		Principle: DataQuality,
		Pass:      dqErr == nil,
		Detail:    dqDetail,
	})

	// 5. Security safeguards: retention enforced (no overdue copies) and
	// storage sealed (covered by the same integrity pass).
	overdue := svc.OverdueCopies(now)
	results = append(results, AuditResult{
		Principle: SecuritySafeguards,
		Pass:      overdue == 0 && dqErr == nil,
		Detail:    fmt.Sprintf("%d copies past retention", overdue),
	})

	// 6. Openness: every live item's policy is queryable.
	unreadable := 0
	for _, k := range svc.Keys() {
		if _, ok := svc.PolicyOf(k); !ok {
			unreadable++
		}
	}
	results = append(results, AuditResult{
		Principle: Openness,
		Pass:      unreadable == 0,
		Detail:    fmt.Sprintf("%d live items with unreadable policies", unreadable),
	})

	// 7. Individual participation: every owner with disclosures can
	// enumerate them (EventsFor) — verified structurally: events about an
	// owner are retrievable and complete.
	counted := 0
	for owner := range ownersOf(ledger) {
		counted += len(ledger.EventsFor(owner))
	}
	ipPass := counted == ledger.Len()
	results = append(results, AuditResult{
		Principle: IndividualParticipation,
		Pass:      ipPass,
		Detail:    fmt.Sprintf("%d/%d events reachable via per-owner query", counted, ledger.Len()),
	})

	// 8. Accountability: every grant the service made is ledgered.
	consented := int64(0)
	for _, e := range ledger.Events() {
		if e.Consented {
			consented++
		}
	}
	results = append(results, AuditResult{
		Principle: Accountability,
		Pass:      consented == svc.Grants,
		Detail:    fmt.Sprintf("%d grants vs %d ledgered consented disclosures", svc.Grants, consented),
	})

	return results
}

func ownersOf(l *Ledger) map[int]bool {
	owners := make(map[int]bool)
	for _, e := range l.Events() {
		owners[e.Owner] = true
	}
	return owners
}
