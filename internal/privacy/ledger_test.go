package privacy

import (
	"math"
	"testing"

	"repro/internal/social"
)

func TestLedgerRecordAndQuery(t *testing.T) {
	l := NewLedger()
	l.Record(Disclosure{Owner: 0, Item: "a", Sensitivity: social.High, Recipient: 1, Purpose: SocialUse, Consented: true})
	l.Record(Disclosure{Owner: 0, Item: "a", Sensitivity: social.High, Recipient: 2, Purpose: SocialUse, Consented: true})
	l.Record(Disclosure{Owner: 1, Item: "b", Sensitivity: social.Low, Recipient: 0, Purpose: ReputationUse, Consented: false})
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if got := len(l.EventsFor(0)); got != 2 {
		t.Fatalf("EventsFor(0) = %d", got)
	}
	if got := len(l.Violations()); got != 1 {
		t.Fatalf("Violations = %d", got)
	}
}

func TestExposureGrowsWithRecipientsAndSensitivity(t *testing.T) {
	l := NewLedger()
	// Owner 0: high-sensitivity item to 3 recipients.
	for r := 1; r <= 3; r++ {
		l.Record(Disclosure{Owner: 0, Item: "med", Sensitivity: social.High, Recipient: r, Consented: true})
	}
	// Owner 1: low-sensitivity item to the same 3 recipients.
	for r := 1; r <= 3; r++ {
		l.Record(Disclosure{Owner: 1, Item: "hobby", Sensitivity: social.Low, Recipient: r, Consented: true})
	}
	if l.Exposure(0) <= l.Exposure(1) {
		t.Fatalf("high-sensitivity exposure %v not above low %v", l.Exposure(0), l.Exposure(1))
	}
	// More recipients => more exposure.
	before := l.Exposure(0)
	l.Record(Disclosure{Owner: 0, Item: "med", Sensitivity: social.High, Recipient: 9, Consented: true})
	if l.Exposure(0) <= before {
		t.Fatal("exposure did not grow with a new recipient")
	}
	// Repeat disclosure to the same recipient adds nothing.
	mid := l.Exposure(0)
	l.Record(Disclosure{Owner: 0, Item: "med", Sensitivity: social.High, Recipient: 9, Consented: true})
	if l.Exposure(0) != mid {
		t.Fatal("duplicate recipient inflated exposure")
	}
}

func TestExposureZeroCases(t *testing.T) {
	l := NewLedger()
	if l.Exposure(5) != 0 {
		t.Fatal("fresh owner exposure != 0")
	}
	// Public data never costs exposure.
	l.Record(Disclosure{Owner: 0, Item: "nick", Sensitivity: social.Public, Recipient: 1, Consented: true})
	if l.Exposure(0) != 0 {
		t.Fatal("public disclosure cost exposure")
	}
}

func TestNormalizedExposureBounds(t *testing.T) {
	l := NewLedger()
	for r := 1; r <= 100; r++ {
		l.Record(Disclosure{Owner: 0, Item: "x", Sensitivity: social.High, Recipient: r, Consented: true})
	}
	ne := l.NormalizedExposure(0, 2)
	if ne <= 0 || ne >= 1 {
		t.Fatalf("normalized exposure = %v, want (0,1)", ne)
	}
	if l.NormalizedExposure(9, 2) != 0 {
		t.Fatal("fresh owner normalized exposure != 0")
	}
	// Degenerate scale is clamped.
	if v := l.NormalizedExposure(0, -5); v <= 0 || v >= 1 {
		t.Fatalf("clamped-scale exposure = %v", v)
	}
}

func TestRespectRate(t *testing.T) {
	l := NewLedger()
	if l.RespectRate(0) != 1 {
		t.Fatal("no-history respect rate != 1")
	}
	l.Record(Disclosure{Owner: 0, Item: "a", Recipient: 1, Consented: true})
	l.Record(Disclosure{Owner: 0, Item: "a", Recipient: 2, Consented: true})
	l.Record(Disclosure{Owner: 0, Item: "a", Recipient: 3, Consented: false})
	if got := l.RespectRate(0); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("respect rate = %v", got)
	}
}

func TestPrivacyFacetCombines(t *testing.T) {
	l := NewLedger()
	// Perfect privacy: nothing disclosed.
	if got := l.PrivacyFacet(0, 4); got != 1 {
		t.Fatalf("untouched user facet = %v, want 1", got)
	}
	// Disclosures lower it.
	for r := 1; r <= 5; r++ {
		l.Record(Disclosure{Owner: 0, Item: "x", Sensitivity: social.High, Recipient: r, Consented: true})
	}
	mid := l.PrivacyFacet(0, 4)
	if mid >= 1 || mid <= 0 {
		t.Fatalf("facet after disclosures = %v", mid)
	}
	// A violation lowers it further.
	l.Record(Disclosure{Owner: 0, Item: "x", Sensitivity: social.High, Recipient: 99, Consented: false})
	if after := l.PrivacyFacet(0, 4); after >= mid {
		t.Fatalf("violation did not lower facet: %v >= %v", after, mid)
	}
}
