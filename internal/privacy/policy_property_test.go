package privacy

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/social"
)

// randomPolicy derives an arbitrary but well-formed policy from fuzz bytes.
func randomPolicy(b [8]uint8) Policy {
	p := Policy{
		Operations: map[Operation]bool{},
		Purposes:   map[Purpose]bool{},
	}
	for i, op := range []Operation{Read, Write, Share, Aggregate} {
		if b[0]&(1<<i) != 0 {
			p.Operations[op] = true
		}
	}
	for i, pu := range []Purpose{SocialUse, ReputationUse, ResearchUse, CommercialUse, MaintenanceUse} {
		if b[1]&(1<<i) != 0 {
			p.Purposes[pu] = true
		}
	}
	if b[2]%2 == 0 {
		p.Conditions.FriendsOnly = true
	}
	p.Conditions.MaxAccessesPerRequester = int(b[3] % 5)
	p.MinTrustLevel = float64(b[4]) / 255
	p.Retention = sim.Time(b[5]) * 10
	if b[6]%3 == 0 {
		p.AuthorizedUsers = map[int]bool{int(b[7]) % 10: true}
	}
	return p
}

func randomRequest(b [8]uint8) Request {
	return Request{
		Requester:      int(b[0]) % 10,
		Owner:          int(b[1]) % 10,
		Operation:      Operation(int(b[2])%4 + 1),
		Purpose:        Purpose(int(b[3])%5 + 1),
		RequesterTrust: float64(b[4]) / 255,
		IsFriend:       b[5]%2 == 0,
		PriorAccesses:  int(b[6]) % 6,
	}
}

// TestPolicyPropertyOwnerAlwaysAllowed: no policy can lock an owner out of
// her own data (OECD individual participation).
func TestPolicyPropertyOwnerAlwaysAllowed(t *testing.T) {
	f := func(pb, rb [8]uint8) bool {
		pol := randomPolicy(pb)
		req := randomRequest(rb)
		req.Requester = req.Owner
		return pol.Evaluate(req, sim.Time(rb[7])).Allowed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPolicyPropertyDenialReasonsConsistent: a denial's reason must point
// at a clause that actually fails for the request, and allowed decisions
// must carry no reason.
func TestPolicyPropertyDenialReasonsConsistent(t *testing.T) {
	f := func(pb, rb [8]uint8) bool {
		pol := randomPolicy(pb)
		req := randomRequest(rb)
		if req.Requester == req.Owner {
			req.Requester = (req.Owner + 1) % 10
		}
		d := pol.Evaluate(req, sim.Time(rb[7]))
		if d.Allowed {
			return d.Reason == DenyNone
		}
		switch d.Reason {
		case DenyUnauthorizedUser:
			return len(pol.AuthorizedUsers) > 0 && !pol.AuthorizedUsers[req.Requester]
		case DenyOperation:
			return !pol.Operations[req.Operation]
		case DenyPurpose:
			return !pol.Purposes[req.Purpose]
		case DenyNotFriend:
			return pol.Conditions.FriendsOnly && !req.IsFriend
		case DenyQuotaExceeded:
			q := pol.Conditions.MaxAccessesPerRequester
			return q > 0 && req.PriorAccesses >= q
		case DenyInsufficientTrust:
			return req.RequesterTrust < pol.MinTrustLevel
		default:
			return false
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestPolicyPropertyMonotoneInTrust: raising requester trust can only turn
// denials into grants, never the reverse.
func TestPolicyPropertyMonotoneInTrust(t *testing.T) {
	f := func(pb, rb [8]uint8, bump uint8) bool {
		pol := randomPolicy(pb)
		req := randomRequest(rb)
		low := pol.Evaluate(req, 0)
		req.RequesterTrust += float64(bump) / 255
		high := pol.Evaluate(req, 0)
		if low.Allowed && !high.Allowed {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestPolicyPropertyRetentionExpiry: granted decisions under a retention
// policy always expire in the future, exactly Retention ticks out.
func TestPolicyPropertyRetentionExpiry(t *testing.T) {
	f := func(pb, rb [8]uint8, now uint16) bool {
		pol := randomPolicy(pb)
		req := randomRequest(rb)
		d := pol.Evaluate(req, sim.Time(now))
		if !d.Allowed {
			return d.ExpiresAt == 0
		}
		if pol.Retention == 0 || req.Requester == req.Owner {
			return d.ExpiresAt == 0 || req.Requester == req.Owner
		}
		return d.ExpiresAt == sim.Time(now)+pol.Retention
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestDefaultPoliciesEvaluateForAllSensitivities is a fuzz across requests
// against the canonical policies.
func TestDefaultPoliciesEvaluateForAllSensitivities(t *testing.T) {
	f := func(rb [8]uint8, sRaw uint8) bool {
		sens := social.Sensitivity(int(sRaw)%4 + 1)
		pol := DefaultPolicy(sens)
		req := randomRequest(rb)
		d := pol.Evaluate(req, 100)
		// Public data readable by anyone for any listed purpose.
		if sens == social.Public && req.Operation == Read && !d.Allowed && req.Requester != req.Owner {
			return false
		}
		// High-sensitivity data never readable by strangers with low trust.
		if sens == social.High && req.Requester != req.Owner && !req.IsFriend && d.Allowed {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
