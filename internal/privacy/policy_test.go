package privacy

import (
	"testing"

	"repro/internal/social"
)

func allowAll() Policy {
	return Policy{
		Operations: map[Operation]bool{Read: true, Share: true, Aggregate: true, Write: true},
		Purposes: map[Purpose]bool{
			SocialUse: true, ReputationUse: true, ResearchUse: true,
			CommercialUse: true, MaintenanceUse: true,
		},
	}
}

func TestOwnerAlwaysAllowed(t *testing.T) {
	p := Policy{} // deny-everything policy
	d := p.Evaluate(Request{Requester: 3, Owner: 3, Operation: Write, Purpose: CommercialUse}, 0)
	if !d.Allowed {
		t.Fatal("owner denied access to own data")
	}
}

func TestAuthorizedUsersClause(t *testing.T) {
	p := allowAll()
	p.AuthorizedUsers = map[int]bool{1: true}
	if d := p.Evaluate(Request{Requester: 1, Owner: 0, Operation: Read, Purpose: SocialUse}, 0); !d.Allowed {
		t.Fatalf("authorized user denied: %v", d.Reason)
	}
	d := p.Evaluate(Request{Requester: 2, Owner: 0, Operation: Read, Purpose: SocialUse}, 0)
	if d.Allowed || d.Reason != DenyUnauthorizedUser {
		t.Fatalf("unauthorized user: %+v", d)
	}
}

func TestOperationClause(t *testing.T) {
	p := allowAll()
	p.Operations = map[Operation]bool{Read: true}
	d := p.Evaluate(Request{Requester: 1, Owner: 0, Operation: Write, Purpose: SocialUse}, 0)
	if d.Allowed || d.Reason != DenyOperation {
		t.Fatalf("disallowed operation: %+v", d)
	}
}

func TestPurposeClause(t *testing.T) {
	p := allowAll()
	p.Purposes = map[Purpose]bool{SocialUse: true}
	d := p.Evaluate(Request{Requester: 1, Owner: 0, Operation: Read, Purpose: CommercialUse}, 0)
	if d.Allowed || d.Reason != DenyPurpose {
		t.Fatalf("disallowed purpose: %+v", d)
	}
}

func TestFriendsOnlyClause(t *testing.T) {
	p := allowAll()
	p.Conditions.FriendsOnly = true
	d := p.Evaluate(Request{Requester: 1, Owner: 0, Operation: Read, Purpose: SocialUse, IsFriend: false}, 0)
	if d.Allowed || d.Reason != DenyNotFriend {
		t.Fatalf("non-friend: %+v", d)
	}
	if d := p.Evaluate(Request{Requester: 1, Owner: 0, Operation: Read, Purpose: SocialUse, IsFriend: true}, 0); !d.Allowed {
		t.Fatalf("friend denied: %v", d.Reason)
	}
}

func TestQuotaClause(t *testing.T) {
	p := allowAll()
	p.Conditions.MaxAccessesPerRequester = 2
	req := Request{Requester: 1, Owner: 0, Operation: Read, Purpose: SocialUse}
	req.PriorAccesses = 1
	if d := p.Evaluate(req, 0); !d.Allowed {
		t.Fatalf("under-quota denied: %v", d.Reason)
	}
	req.PriorAccesses = 2
	d := p.Evaluate(req, 0)
	if d.Allowed || d.Reason != DenyQuotaExceeded {
		t.Fatalf("over-quota: %+v", d)
	}
}

func TestMinTrustClause(t *testing.T) {
	p := allowAll()
	p.MinTrustLevel = 0.6
	d := p.Evaluate(Request{Requester: 1, Owner: 0, Operation: Read, Purpose: SocialUse, RequesterTrust: 0.5}, 0)
	if d.Allowed || d.Reason != DenyInsufficientTrust {
		t.Fatalf("low-trust requester: %+v", d)
	}
	if d := p.Evaluate(Request{Requester: 1, Owner: 0, Operation: Read, Purpose: SocialUse, RequesterTrust: 0.6}, 0); !d.Allowed {
		t.Fatalf("sufficient trust denied: %v", d.Reason)
	}
}

func TestRetentionAndObligations(t *testing.T) {
	p := allowAll()
	p.Retention = 100
	p.Obligations = []Obligation{NotifyOwner, NoForward}
	d := p.Evaluate(Request{Requester: 1, Owner: 0, Operation: Read, Purpose: SocialUse}, 50)
	if !d.Allowed {
		t.Fatalf("denied: %v", d.Reason)
	}
	if d.ExpiresAt != 150 {
		t.Fatalf("ExpiresAt = %d, want 150", d.ExpiresAt)
	}
	if len(d.Obligations) != 2 {
		t.Fatalf("obligations = %v", d.Obligations)
	}
	// Mutating the returned obligations must not corrupt the policy.
	d.Obligations[0] = DeleteAfterUse
	d2 := p.Evaluate(Request{Requester: 2, Owner: 0, Operation: Read, Purpose: SocialUse}, 0)
	if d2.Obligations[0] != NotifyOwner {
		t.Fatal("Decision aliased policy obligations")
	}
}

func TestDefaultPoliciesTightenWithSensitivity(t *testing.T) {
	pub := DefaultPolicy(social.Public)
	low := DefaultPolicy(social.Low)
	med := DefaultPolicy(social.Medium)
	high := DefaultPolicy(social.High)

	if pub.MinTrustLevel >= low.MinTrustLevel || low.MinTrustLevel >= med.MinTrustLevel ||
		med.MinTrustLevel >= high.MinTrustLevel {
		t.Fatal("trust bars not monotone in sensitivity")
	}
	if len(pub.Purposes) <= len(high.Purposes) {
		t.Fatal("purpose sets not narrowing")
	}
	if !med.Conditions.FriendsOnly || !high.Conditions.FriendsOnly {
		t.Fatal("medium/high not friends-only")
	}
	if high.Retention == 0 || med.Retention == 0 {
		t.Fatal("sensitive data without retention limit")
	}
	if high.Retention >= med.Retention {
		t.Fatal("high retention not shorter than medium")
	}
	// Public data is free to aggregate (reputation can use it).
	if !pub.Operations[Aggregate] {
		t.Fatal("public data not aggregatable")
	}
}

func TestSensitivityWeightMonotone(t *testing.T) {
	w := []float64{
		SensitivityWeight(social.Public),
		SensitivityWeight(social.Low),
		SensitivityWeight(social.Medium),
		SensitivityWeight(social.High),
	}
	for i := 1; i < len(w); i++ {
		if w[i] <= w[i-1] {
			t.Fatalf("weights not strictly increasing: %v", w)
		}
	}
	if SensitivityWeight(social.Sensitivity(99)) != 1 {
		t.Fatal("unknown sensitivity should be treated as maximally sensitive")
	}
}

func TestStringers(t *testing.T) {
	if Read.String() != "read" || Aggregate.String() != "aggregate" {
		t.Fatal("operation names")
	}
	if ReputationUse.String() != "reputation" || CommercialUse.String() != "commercial" {
		t.Fatal("purpose names")
	}
	if NotifyOwner.String() != "notify-owner" {
		t.Fatal("obligation names")
	}
	if DenyInsufficientTrust.String() != "insufficient-trust" || DenyNone.String() != "allowed" {
		t.Fatal("reason names")
	}
	for _, s := range []string{Operation(9).String(), Purpose(9).String(), Obligation(9).String(), DenyReason(9).String()} {
		if s == "" {
			t.Fatal("unknown enum empty name")
		}
	}
}
