// Package privacy implements the paper's privacy facet (§2.3): P3P-inspired
// privacy policies ("PPs should consider authorized users, allowed
// operations, access purposes, access conditions, retention time,
// obligations and the minimal trust level necessary to allow data access"),
// a disclosure ledger that accounts for every piece of shared information,
// an OECD-guidelines audit, and a PriServ-style privacy service for
// publishing and requesting private data over the DHT.
package privacy

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/social"
)

// Operation is an action a requester may perform on data.
type Operation int

// Operations.
const (
	Read Operation = iota + 1
	Write
	Share
	Aggregate // statistical use, e.g. by the reputation mechanism
)

// String returns the operation name.
func (o Operation) String() string {
	switch o {
	case Read:
		return "read"
	case Write:
		return "write"
	case Share:
		return "share"
	case Aggregate:
		return "aggregate"
	default:
		return fmt.Sprintf("operation(%d)", int(o))
	}
}

// Purpose is the declared reason for an access (P3P purpose specification).
type Purpose int

// Purposes.
const (
	SocialUse Purpose = iota + 1
	ReputationUse
	ResearchUse
	CommercialUse
	MaintenanceUse
)

// String returns the purpose name.
func (p Purpose) String() string {
	switch p {
	case SocialUse:
		return "social"
	case ReputationUse:
		return "reputation"
	case ResearchUse:
		return "research"
	case CommercialUse:
		return "commercial"
	case MaintenanceUse:
		return "maintenance"
	default:
		return fmt.Sprintf("purpose(%d)", int(p))
	}
}

// Obligation is a duty attached to a granted access.
type Obligation int

// Obligations.
const (
	NotifyOwner Obligation = iota + 1
	DeleteAfterUse
	NoForward
)

// String returns the obligation name.
func (o Obligation) String() string {
	switch o {
	case NotifyOwner:
		return "notify-owner"
	case DeleteAfterUse:
		return "delete-after-use"
	case NoForward:
		return "no-forward"
	default:
		return fmt.Sprintf("obligation(%d)", int(o))
	}
}

// Conditions are the access conditions of a policy.
type Conditions struct {
	// FriendsOnly restricts access to the owner's friends.
	FriendsOnly bool
	// MaxAccessesPerRequester caps how many times one requester may access
	// the item (0 = unlimited).
	MaxAccessesPerRequester int
}

// Policy is one data item's privacy policy — exactly the field list of §2.3.
type Policy struct {
	// AuthorizedUsers limits who may access; empty means anyone (subject to
	// the other clauses).
	AuthorizedUsers map[int]bool
	// Operations lists the allowed operations; empty means none.
	Operations map[Operation]bool
	// Purposes lists the acceptable purposes; empty means none.
	Purposes map[Purpose]bool
	// Conditions are additional access conditions.
	Conditions Conditions
	// Retention is how long (in simulation ticks) a granted copy may be
	// retained before mandatory deletion; 0 means no retention limit.
	Retention sim.Time
	// Obligations attach to every grant.
	Obligations []Obligation
	// MinTrustLevel is the minimal requester trust level required (§2.3's
	// "minimal trust level necessary to allow data access").
	MinTrustLevel float64
}

// DenyReason explains a denial.
type DenyReason int

// Denial reasons, aligned with the policy clause that failed.
const (
	DenyNone DenyReason = iota
	DenyUnauthorizedUser
	DenyOperation
	DenyPurpose
	DenyNotFriend
	DenyQuotaExceeded
	DenyInsufficientTrust
)

// String returns the reason name.
func (d DenyReason) String() string {
	switch d {
	case DenyNone:
		return "allowed"
	case DenyUnauthorizedUser:
		return "unauthorized-user"
	case DenyOperation:
		return "operation-not-allowed"
	case DenyPurpose:
		return "purpose-not-allowed"
	case DenyNotFriend:
		return "not-a-friend"
	case DenyQuotaExceeded:
		return "quota-exceeded"
	case DenyInsufficientTrust:
		return "insufficient-trust"
	default:
		return fmt.Sprintf("deny(%d)", int(d))
	}
}

// Request is one access request against a policy.
type Request struct {
	Requester int
	Owner     int
	Operation Operation
	Purpose   Purpose
	// RequesterTrust is the requester's trust level as established by the
	// reputation layer.
	RequesterTrust float64
	// IsFriend reports whether requester is the owner's friend.
	IsFriend bool
	// PriorAccesses is how many times this requester has already accessed
	// the item.
	PriorAccesses int
}

// Decision is the outcome of evaluating a request.
type Decision struct {
	Allowed     bool
	Reason      DenyReason
	Obligations []Obligation
	// ExpiresAt is when the granted copy must be deleted (zero when the
	// policy has no retention limit or the request was denied).
	ExpiresAt sim.Time
}

// Evaluate checks the request against the policy at virtual time now.
// The owner always has full access to their own data (OECD individual
// participation).
func (p Policy) Evaluate(req Request, now sim.Time) Decision {
	if req.Requester == req.Owner {
		return Decision{Allowed: true}
	}
	if len(p.AuthorizedUsers) > 0 && !p.AuthorizedUsers[req.Requester] {
		return Decision{Reason: DenyUnauthorizedUser}
	}
	if !p.Operations[req.Operation] {
		return Decision{Reason: DenyOperation}
	}
	if !p.Purposes[req.Purpose] {
		return Decision{Reason: DenyPurpose}
	}
	if p.Conditions.FriendsOnly && !req.IsFriend {
		return Decision{Reason: DenyNotFriend}
	}
	if q := p.Conditions.MaxAccessesPerRequester; q > 0 && req.PriorAccesses >= q {
		return Decision{Reason: DenyQuotaExceeded}
	}
	if req.RequesterTrust < p.MinTrustLevel {
		return Decision{Reason: DenyInsufficientTrust}
	}
	d := Decision{Allowed: true, Obligations: append([]Obligation(nil), p.Obligations...)}
	if p.Retention > 0 {
		d.ExpiresAt = now + p.Retention
	}
	return d
}

// DefaultPolicy derives a sensible policy from an item's sensitivity class,
// mirroring how the experiments configure user preferences: the more
// sensitive, the narrower the operations/purposes, the higher the trust bar
// and the shorter the retention.
func DefaultPolicy(sens social.Sensitivity) Policy {
	switch sens {
	case social.Public:
		return Policy{
			Operations: map[Operation]bool{Read: true, Share: true, Aggregate: true},
			Purposes: map[Purpose]bool{
				SocialUse: true, ReputationUse: true, ResearchUse: true,
				CommercialUse: true, MaintenanceUse: true,
			},
		}
	case social.Low:
		return Policy{
			Operations:    map[Operation]bool{Read: true, Aggregate: true},
			Purposes:      map[Purpose]bool{SocialUse: true, ReputationUse: true, ResearchUse: true},
			MinTrustLevel: 0.2,
		}
	case social.Medium:
		return Policy{
			Operations:    map[Operation]bool{Read: true, Aggregate: true},
			Purposes:      map[Purpose]bool{SocialUse: true, ReputationUse: true},
			Conditions:    Conditions{FriendsOnly: true},
			MinTrustLevel: 0.5,
			Retention:     1000,
			Obligations:   []Obligation{NoForward},
		}
	default: // High and anything stricter
		return Policy{
			Operations:    map[Operation]bool{Read: true},
			Purposes:      map[Purpose]bool{SocialUse: true},
			Conditions:    Conditions{FriendsOnly: true, MaxAccessesPerRequester: 3},
			MinTrustLevel: 0.8,
			Retention:     200,
			Obligations:   []Obligation{NotifyOwner, DeleteAfterUse, NoForward},
		}
	}
}

// SensitivityWeight converts a sensitivity class into the exposure weight
// used by the disclosure ledger (more sensitive data costs more privacy
// when disclosed).
func SensitivityWeight(s social.Sensitivity) float64 {
	switch s {
	case social.Public:
		return 0
	case social.Low:
		return 0.2
	case social.Medium:
		return 0.5
	case social.High:
		return 1.0
	default:
		return 1.0
	}
}
