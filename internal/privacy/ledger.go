package privacy

import (
	"math"
	"sort"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/social"
)

// Disclosure is one accountable information-flow event: owner's item reached
// a recipient, for a purpose, at a time, with or without the owner's policy
// consenting. (Non-consented events only arise in attack experiments —
// e.g. a leaky node forwarding data against a NoForward obligation.)
type Disclosure struct {
	Owner       int
	Item        string
	Sensitivity social.Sensitivity
	Recipient   int
	Purpose     Purpose
	At          sim.Time
	Consented   bool
}

// Ledger is the accountability record (OECD accountability + openness): it
// stores every disclosure and answers the exposure queries that feed the
// privacy facet. Per-owner aggregates (recipient sets, item sensitivities,
// consent tallies) are maintained incrementally on Record, so the per-user
// facet queries run by every epoch's measurement barrier touch only the
// owner's own state instead of rescanning the whole event list — and are
// therefore safe to fan out read-only over measurement shards.
type Ledger struct {
	events []Disclosure
	// byOwner[owner][item] -> set of recipients
	byOwner map[int]map[string]map[int]bool //trustlint:derived index rebuilt by replaying Events through Record on SetState
	// sensByOwner[owner][item] -> max sensitivity weight seen for the item
	sensByOwner map[int]map[string]float64 //trustlint:derived index rebuilt by replaying Events through Record on SetState
	// consent[owner] -> (total, consented) disclosure tallies
	consent map[int]consentTally //trustlint:derived index rebuilt by replaying Events through Record on SetState

	// Facet cache: PrivacyFacet's item-key sort makes the cold query the
	// most expensive per-user read in an epoch's measurement barrier, so
	// owners whose ledger state did not change between barriers keep their
	// previous value. Record marks the owner dirty; RefreshFacets (called
	// sequentially, before any parallel fan-out) recomputes only the dirty
	// owners. Readers never mutate the cache, so the fan-out stays race-free.
	facetVal   []float64        //trustlint:derived cache dropped by SetState and recomputed by RefreshFacets
	facetOK    []bool           //trustlint:derived cache dropped by SetState and recomputed by RefreshFacets
	facetScale float64          //trustlint:derived cache dropped by SetState and recomputed by RefreshFacets
	facetInit  bool             //trustlint:derived cache dropped by SetState and recomputed by RefreshFacets
	facetDirty metrics.DirtySet //trustlint:derived cache dropped by SetState and recomputed by RefreshFacets
}

type consentTally struct{ total, ok int64 }

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		byOwner:     make(map[int]map[string]map[int]bool),
		sensByOwner: make(map[int]map[string]float64),
		consent:     make(map[int]consentTally),
	}
}

// Record appends a disclosure event and folds it into the per-owner
// aggregates.
func (l *Ledger) Record(d Disclosure) {
	l.events = append(l.events, d)
	items := l.byOwner[d.Owner]
	if items == nil {
		items = make(map[string]map[int]bool)
		l.byOwner[d.Owner] = items
	}
	recips := items[d.Item]
	if recips == nil {
		recips = make(map[int]bool)
		items[d.Item] = recips
	}
	recips[d.Recipient] = true
	sens := l.sensByOwner[d.Owner]
	if sens == nil {
		sens = make(map[string]float64)
		l.sensByOwner[d.Owner] = sens
	}
	if w := SensitivityWeight(d.Sensitivity); w > sens[d.Item] {
		sens[d.Item] = w
	}
	t := l.consent[d.Owner]
	t.total++
	if d.Consented {
		t.ok++
	}
	l.consent[d.Owner] = t
	l.facetDirty.Mark(d.Owner)
}

// Events returns all recorded events (shared; read-only).
func (l *Ledger) Events() []Disclosure { return l.events }

// Len returns the number of recorded events.
func (l *Ledger) Len() int { return len(l.events) }

// EventsFor returns the events about one owner's data, in recording order.
// This is the OECD "individual participation" query: an individual can see
// exactly what about them went where.
func (l *Ledger) EventsFor(owner int) []Disclosure {
	var out []Disclosure
	for _, e := range l.events {
		if e.Owner == owner {
			out = append(out, e)
		}
	}
	return out
}

// Violations returns the non-consented disclosures (accountability audit
// trail).
func (l *Ledger) Violations() []Disclosure {
	var out []Disclosure
	for _, e := range l.events {
		if !e.Consented {
			out = append(out, e)
		}
	}
	return out
}

// Exposure returns owner's information exposure: for each disclosed item,
// sensitivity weight × log2(1+distinct recipients), summed. A user whose
// high-sensitivity data reached many parties has high exposure.
func (l *Ledger) Exposure(owner int) float64 {
	items := l.byOwner[owner]
	if len(items) == 0 {
		return 0
	}
	// Sensitivity per item is the maximum seen in the recorded events,
	// maintained incrementally by Record.
	sens := l.sensByOwner[owner]
	keys := make([]string, 0, len(items))
	for k := range items {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, item := range keys {
		total += sens[item] * math.Log2(1+float64(len(items[item])))
	}
	return total
}

// NormalizedExposure maps exposure into [0,1) via x/(x+scale); scale is the
// exposure at which a user counts as "half exposed" (clamped to >= 1).
func (l *Ledger) NormalizedExposure(owner int, scale float64) float64 {
	if scale < 1 {
		scale = 1
	}
	x := l.Exposure(owner)
	return x / (x + scale)
}

// RespectRate returns the fraction of owner's disclosures that were
// consented (1 when there are none): the "policy respect" half of the
// privacy facet.
func (l *Ledger) RespectRate(owner int) float64 {
	t := l.consent[owner]
	if t.total == 0 {
		return 1
	}
	return float64(t.ok) / float64(t.total)
}

// PrivacyFacet computes owner's privacy satisfaction P_u as the paper's
// "satisfaction in terms of privacy guarantees": respect of the user's PPs
// times how much information did NOT have to be shared. When RefreshFacets
// has cached the owner's value at this scale, the cached value is returned;
// otherwise the facet is computed on the fly without touching the cache, so
// the call stays safe to fan out read-only over measurement shards.
func (l *Ledger) PrivacyFacet(owner int, scale float64) float64 {
	if l.facetInit && scale == l.facetScale &&
		owner >= 0 && owner < len(l.facetOK) &&
		l.facetOK[owner] && !l.facetDirty.Dirty(owner) {
		return l.facetVal[owner]
	}
	return l.RespectRate(owner) * (1 - l.NormalizedExposure(owner, scale))
}

// DirtyOwners returns the ascending owner ids whose ledger state changed
// since the last RefreshFacets — the privacy leg of the epoch tail's facet
// dirty set. The slice is owned by the ledger and valid until its next
// mutation; callers that need it past a refresh must copy it first.
func (l *Ledger) DirtyOwners() []int { return l.facetDirty.Sorted() }

// RefreshFacets brings the facet cache up to date at the given normalization
// scale: dirty owners (and, on first use or a scale change, every owner with
// recorded events) get their PrivacyFacet recomputed and cached. It mutates
// the cache and must run on a sequential phase, before PrivacyFacet calls fan
// out over shards.
func (l *Ledger) RefreshFacets(scale float64) {
	if !l.facetInit || scale != l.facetScale {
		for i := range l.facetOK {
			l.facetOK[i] = false
		}
		l.facetScale = scale
		l.facetInit = true
		//trustlint:ordered cacheFacet writes only the owner's own facetVal/facetOK cells, so visit order is immaterial
		for owner := range l.consent {
			l.cacheFacet(owner, scale)
		}
	} else {
		for _, owner := range l.facetDirty.Sorted() {
			l.cacheFacet(owner, scale)
		}
	}
	l.facetDirty.Reset()
}

func (l *Ledger) cacheFacet(owner int, scale float64) {
	if owner < 0 {
		return
	}
	if owner >= len(l.facetOK) {
		grownVal := make([]float64, owner+1)
		copy(grownVal, l.facetVal)
		l.facetVal = grownVal
		grownOK := make([]bool, owner+1)
		copy(grownOK, l.facetOK)
		l.facetOK = grownOK
	}
	l.facetVal[owner] = l.RespectRate(owner) * (1 - l.NormalizedExposure(owner, scale))
	l.facetOK[owner] = true
}
