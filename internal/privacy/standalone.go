package privacy

import (
	"fmt"

	"repro/internal/dht"
	"repro/internal/sim"
)

// NewStandaloneService assembles the full privacy stack over a fresh DHT:
// a ring of `nodes` storage machines with the given replication factor, a
// new disclosure ledger, and the PriServ-style service wired to the
// simulation clock. It replaces the ring-join boilerplate every caller of
// NewService otherwise repeats.
func NewStandaloneService(nodes, replicas int, s *sim.Sim) (*Service, *Ledger, error) {
	if nodes <= 0 {
		return nil, nil, fmt.Errorf("privacy: standalone service needs nodes > 0, got %d", nodes)
	}
	ring := dht.NewRing(replicas)
	for i := 0; i < nodes; i++ {
		if err := ring.Join(i); err != nil {
			return nil, nil, fmt.Errorf("privacy: join node %d: %w", i, err)
		}
	}
	ring.Stabilize()
	ledger := NewLedger()
	svc, err := NewService(ring, ledger, s)
	if err != nil {
		return nil, nil, err
	}
	return svc, ledger, nil
}
