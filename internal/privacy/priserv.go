package privacy

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"

	"repro/internal/dht"
	"repro/internal/sim"
	"repro/internal/social"
)

// ErrUnknownKey is returned when requesting a key that was never published
// or was withdrawn.
var ErrUnknownKey = errors.New("privacy: unknown key")

// ErrDenied is returned when the policy denies the request; the Decision
// carries the reason.
var ErrDenied = errors.New("privacy: access denied")

// itemMeta is the registry entry for a published item.
type itemMeta struct {
	owner       int
	sensitivity social.Sensitivity
	policy      Policy
	digest      [32]byte
	withdrawn   bool
}

// grantedCopy tracks a copy handed to a requester, for retention
// enforcement.
type grantedCopy struct {
	key     string
	holder  int
	expires sim.Time // zero = no limit
	deleted bool
}

// Notification is a NotifyOwner obligation execution record.
type Notification struct {
	Owner     int
	Key       string
	Requester int
	At        sim.Time
}

// Service is the PriServ-style privacy service (the paper's [12]): owners
// publish private data with a privacy policy; requesters must present
// operation, purpose and a sufficient trust level. Data lives on the DHT,
// sealed with an integrity MAC; every grant is ledgered; retention limits
// are enforced by simulation events.
type Service struct {
	ring   *dht.Ring
	ledger *Ledger
	sim    *sim.Sim
	key    []byte // integrity MAC key

	registry map[string]*itemMeta
	accesses map[string]map[int]int // key -> requester -> count
	copies   []*grantedCopy
	notices  []Notification

	// Grants counts allowed requests; Denials tallies by reason.
	Grants  int64
	Denials map[DenyReason]int64
}

// NewService wires a privacy service over a DHT ring, a ledger and the
// simulation clock.
func NewService(ring *dht.Ring, ledger *Ledger, s *sim.Sim) (*Service, error) {
	if ring == nil || ledger == nil || s == nil {
		return nil, fmt.Errorf("privacy: NewService requires ring, ledger and sim")
	}
	return &Service{
		ring:     ring,
		ledger:   ledger,
		sim:      s,
		key:      []byte("priserv-integrity-key"),
		registry: make(map[string]*itemMeta),
		accesses: make(map[string]map[int]int),
		Denials:  make(map[DenyReason]int64),
	}, nil
}

func (s *Service) seal(data []byte) []byte {
	mac := hmac.New(sha256.New, s.key)
	mac.Write(data)
	return append(mac.Sum(nil), data...)
}

func (s *Service) unseal(blob []byte) ([]byte, error) {
	if len(blob) < sha256.Size {
		return nil, fmt.Errorf("privacy: sealed blob too short")
	}
	tag, data := blob[:sha256.Size], blob[sha256.Size:]
	mac := hmac.New(sha256.New, s.key)
	mac.Write(data)
	if !hmac.Equal(tag, mac.Sum(nil)) {
		return nil, fmt.Errorf("privacy: integrity check failed")
	}
	return data, nil
}

// Publish stores an owner's data item under key with its privacy policy.
// Re-publishing an existing live key is an error; republish after Withdraw
// is allowed.
func (s *Service) Publish(owner int, key string, data []byte, sens social.Sensitivity, pol Policy) error {
	if m, ok := s.registry[key]; ok && !m.withdrawn {
		return fmt.Errorf("privacy: key %q already published", key)
	}
	if err := s.ring.Put(key, s.seal(data)); err != nil {
		return fmt.Errorf("privacy: publish %q: %w", key, err)
	}
	s.registry[key] = &itemMeta{
		owner:       owner,
		sensitivity: sens,
		policy:      pol,
		digest:      sha256.Sum256(data),
	}
	return nil
}

// PolicyOf returns the policy of a published key (OECD openness: policies
// are not secret).
func (s *Service) PolicyOf(key string) (Policy, bool) {
	m, ok := s.registry[key]
	if !ok || m.withdrawn {
		return Policy{}, false
	}
	return m.policy, true
}

// OwnerOf returns the owner of a published key.
func (s *Service) OwnerOf(key string) (int, bool) {
	m, ok := s.registry[key]
	if !ok || m.withdrawn {
		return 0, false
	}
	return m.owner, true
}

// Request evaluates an access request against the key's policy and, if
// allowed, returns the data. Every grant is recorded in the ledger and
// obligations are executed (NotifyOwner appends a notification; retention
// schedules deletion of the granted copy).
func (s *Service) Request(requester int, key string, op Operation, purpose Purpose, trust float64, isFriend bool) ([]byte, Decision, error) {
	m, ok := s.registry[key]
	if !ok || m.withdrawn {
		return nil, Decision{}, fmt.Errorf("%w: %q", ErrUnknownKey, key)
	}
	prior := s.accesses[key][requester]
	req := Request{
		Requester:      requester,
		Owner:          m.owner,
		Operation:      op,
		Purpose:        purpose,
		RequesterTrust: trust,
		IsFriend:       isFriend,
		PriorAccesses:  prior,
	}
	dec := m.policy.Evaluate(req, s.sim.Now())
	if !dec.Allowed {
		s.Denials[dec.Reason]++
		return nil, dec, fmt.Errorf("%w: %q (%s)", ErrDenied, key, dec.Reason)
	}
	blob, err := s.ring.Get(key)
	if err != nil {
		return nil, dec, fmt.Errorf("privacy: fetch %q: %w", key, err)
	}
	data, err := s.unseal(blob)
	if err != nil {
		return nil, dec, err
	}
	s.Grants++
	if s.accesses[key] == nil {
		s.accesses[key] = make(map[int]int)
	}
	s.accesses[key][requester]++
	s.ledger.Record(Disclosure{
		Owner:       m.owner,
		Item:        key,
		Sensitivity: m.sensitivity,
		Recipient:   requester,
		Purpose:     purpose,
		At:          s.sim.Now(),
		Consented:   true,
	})
	for _, ob := range dec.Obligations {
		if ob == NotifyOwner {
			s.notices = append(s.notices, Notification{
				Owner: m.owner, Key: key, Requester: requester, At: s.sim.Now(),
			})
		}
	}
	// Retention: track the granted copy and schedule its mandatory
	// deletion.
	copyRec := &grantedCopy{key: key, holder: requester, expires: dec.ExpiresAt}
	s.copies = append(s.copies, copyRec)
	if dec.ExpiresAt > 0 {
		s.sim.At(dec.ExpiresAt, func() { copyRec.deleted = true })
	}
	return data, dec, nil
}

// Withdraw lets an owner remove their own data (OECD individual
// participation). Only the owner may withdraw.
func (s *Service) Withdraw(owner int, key string) error {
	m, ok := s.registry[key]
	if !ok || m.withdrawn {
		return fmt.Errorf("%w: %q", ErrUnknownKey, key)
	}
	if m.owner != owner {
		return fmt.Errorf("privacy: %d is not the owner of %q", owner, key)
	}
	s.ring.Delete(key)
	m.withdrawn = true
	return nil
}

// Leak records an unconsented flow of key's data to a recipient (used by
// attack experiments to model a requester violating a NoForward
// obligation). The ledger keeps the system accountable for it.
func (s *Service) Leak(key string, recipient int) error {
	m, ok := s.registry[key]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownKey, key)
	}
	s.ledger.Record(Disclosure{
		Owner:       m.owner,
		Item:        key,
		Sensitivity: m.sensitivity,
		Recipient:   recipient,
		Purpose:     CommercialUse,
		At:          s.sim.Now(),
		Consented:   false,
	})
	return nil
}

// Notifications returns the NotifyOwner obligation executions.
func (s *Service) Notifications() []Notification { return s.notices }

// LiveCopies returns how many granted copies of key are currently allowed
// to exist (not yet past retention).
func (s *Service) LiveCopies(key string) int {
	n := 0
	for _, c := range s.copies {
		if c.key == key && !c.deleted {
			n++
		}
	}
	return n
}

// OverdueCopies returns granted copies that are past their retention time
// but not deleted — a correct system always returns zero after the
// simulation has run to the expiry times.
func (s *Service) OverdueCopies(now sim.Time) int {
	n := 0
	for _, c := range s.copies {
		if c.expires > 0 && now >= c.expires && !c.deleted {
			n++
		}
	}
	return n
}

// Keys returns all live published keys in sorted order, so every caller
// observes the registry deterministically.
func (s *Service) Keys() []string {
	out := make([]string, 0, len(s.registry))
	for k, m := range s.registry {
		if !m.withdrawn {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// VerifyIntegrity re-reads every live key from the DHT in sorted key order
// (so a run with several corruptions always reports the same one) and checks
// both the MAC seal and the publisher's digest (OECD data quality + security
// safeguards).
func (s *Service) VerifyIntegrity() error {
	for _, k := range s.Keys() {
		m := s.registry[k]
		blob, err := s.ring.Get(k)
		if err != nil {
			return fmt.Errorf("privacy: integrity: fetch %q: %w", k, err)
		}
		data, err := s.unseal(blob)
		if err != nil {
			return fmt.Errorf("privacy: integrity: %q: %w", k, err)
		}
		if sha256.Sum256(data) != m.digest {
			return fmt.Errorf("privacy: integrity: %q digest mismatch", k)
		}
	}
	return nil
}
