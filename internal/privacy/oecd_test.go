package privacy

import (
	"testing"

	"repro/internal/social"
)

func runCleanWorkload(t *testing.T) (*Service, *Ledger) {
	t.Helper()
	svc, ledger, s := newTestService(t)
	pol := allowAll()
	pol.Retention = 50
	for i := 0; i < 5; i++ {
		if err := svc.Publish(i, keyFor(i), []byte("data"), social.Medium, pol); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 5; r++ {
		for k := 0; k < 5; k++ {
			if r == k {
				continue
			}
			if _, _, err := svc.Request(r, keyFor(k), Read, SocialUse, 1, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Run(200); err != nil { // process retention expiries
		t.Fatal(err)
	}
	return svc, ledger
}

func TestAuditCleanSystemPassesAll(t *testing.T) {
	svc, ledger := runCleanWorkload(t)
	results := Audit(svc, ledger, 200)
	if len(results) != 8 {
		t.Fatalf("audit returned %d principles", len(results))
	}
	seen := map[Principle]bool{}
	for _, r := range results {
		seen[r.Principle] = true
		if !r.Pass {
			t.Fatalf("principle %v failed on clean system: %s", r.Principle, r.Detail)
		}
	}
	for _, p := range Principles() {
		if !seen[p] {
			t.Fatalf("principle %v missing from audit", p)
		}
	}
}

func TestAuditDetectsLeak(t *testing.T) {
	svc, ledger := runCleanWorkload(t)
	if err := svc.Leak(keyFor(0), 99); err != nil {
		t.Fatal(err)
	}
	results := Audit(svc, ledger, 200)
	byP := map[Principle]AuditResult{}
	for _, r := range results {
		byP[r.Principle] = r
	}
	if byP[CollectionLimitation].Pass {
		t.Fatal("collection limitation passed despite leak")
	}
	// Accountability still passes: the leak IS in the ledger.
	if !byP[Accountability].Pass {
		t.Fatal("accountability failed although leak was ledgered")
	}
}

func TestAuditDetectsOverdueCopies(t *testing.T) {
	svc, ledger, _ := newTestService(t)
	pol := allowAll()
	pol.Retention = 10
	if err := svc.Publish(0, "k", []byte("v"), social.Medium, pol); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Request(1, "k", Read, SocialUse, 1, true); err != nil {
		t.Fatal(err)
	}
	// Audit at a time past the retention WITHOUT running the simulation:
	// the deletion event never fired, so the copy is overdue.
	results := Audit(svc, ledger, 1000)
	for _, r := range results {
		if r.Principle == SecuritySafeguards && r.Pass {
			t.Fatal("security safeguards passed with an overdue copy")
		}
	}
}

func TestAuditDetectsPurposeMisuse(t *testing.T) {
	svc, ledger, _ := newTestService(t)
	if err := svc.Publish(0, "k", []byte("v"), social.Low, allowAll()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Request(1, "k", Read, SocialUse, 1, true); err != nil {
		t.Fatal(err)
	}
	// The owner later tightens the policy; the audit now flags the old
	// grant's purpose as outside the current policy (use limitation is
	// checked against the policy of record).
	m := svc.registry["k"]
	m.policy.Purposes = map[Purpose]bool{ReputationUse: true}
	results := Audit(svc, ledger, 0)
	for _, r := range results {
		if r.Principle == UseLimitation && r.Pass {
			t.Fatal("use limitation passed despite purpose outside policy")
		}
	}
}

func TestPrincipleStrings(t *testing.T) {
	for _, p := range Principles() {
		if p.String() == "" {
			t.Fatalf("empty name for %d", int(p))
		}
	}
	if Principle(99).String() == "" {
		t.Fatal("unknown principle empty name")
	}
}
