package reputation

// Whitewasher is implemented by mechanisms whose identity state can be
// reset, modelling a peer that abandons a badly-rated identity and rejoins
// under a fresh one (the §2.2 whitewashing adversary). The contrast between
// zero-default and neutral-default scores after a reset is the identity-cost
// argument the paper's adversary discussion turns on.
type Whitewasher interface {
	// Whitewash erases all reputation state tied to the peer, leaving the
	// state a fresh identity would present.
	Whitewash(peer int)
}

// Factory builds a fresh mechanism sized for n peers. It is the pluggable
// seam of the public facade: scenario runners call the factory once per
// evaluation so settings never contaminate each other.
type Factory func(n int) (Mechanism, error)
