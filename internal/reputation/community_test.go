package reputation

import "testing"

func TestNetPositiveFractionEmpty(t *testing.T) {
	lt := NewLocalTrust(5)
	if got := lt.NetPositiveFraction(); got != 1 {
		t.Fatalf("empty matrix fraction = %v, want 1", got)
	}
}

func TestNetPositiveFractionCounts(t *testing.T) {
	lt := NewLocalTrust(4)
	// Peer 1: two positive ratings -> trustworthy.
	_ = lt.Add(Report{Rater: 0, Ratee: 1, Value: 0.9})
	_ = lt.Add(Report{Rater: 2, Ratee: 1, Value: 0.8})
	// Peer 2: net negative -> untrustworthy.
	_ = lt.Add(Report{Rater: 0, Ratee: 2, Value: 0.1})
	_ = lt.Add(Report{Rater: 1, Ratee: 2, Value: 0.9})
	_ = lt.Add(Report{Rater: 3, Ratee: 2, Value: 0.2})
	// Peer 3: exactly balanced -> NOT net positive.
	_ = lt.Add(Report{Rater: 0, Ratee: 3, Value: 0.9})
	_ = lt.Add(Report{Rater: 1, Ratee: 3, Value: 0.1})
	// Peer 0: unrated -> excluded.
	got := lt.NetPositiveFraction()
	want := 1.0 / 3.0
	if got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("fraction = %v, want %v", got, want)
	}
}

func TestResetPeerClearsBothDirections(t *testing.T) {
	lt := NewLocalTrust(3)
	_ = lt.Add(Report{Rater: 0, Ratee: 1, Value: 0.9})
	_ = lt.Add(Report{Rater: 1, Ratee: 2, Value: 0.9})
	lt.ResetPeer(1)
	if lt.S(0, 1) != 0 {
		t.Fatal("incoming trust survived reset")
	}
	if lt.S(1, 2) != 0 {
		t.Fatal("outgoing trust survived reset")
	}
	lt.ResetPeer(-1) // must not panic
	lt.ResetPeer(99)
}
