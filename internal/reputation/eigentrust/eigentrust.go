// Package eigentrust implements the EigenTrust algorithm (Kamvar, Schlosser,
// Garcia-Molina, WWW 2003), the first reputation baseline the paper cites:
// a PageRank-like global reputation computed as the principal eigenvector of
// the normalized local-trust matrix, damped toward a pre-trusted peer set.
package eigentrust

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/overlay"
	"repro/internal/reputation"
)

// Config parameterizes the mechanism.
type Config struct {
	// N is the number of peers.
	N int
	// Alpha is the pre-trust blending weight (the paper's a), default 0.15.
	Alpha float64
	// Pretrusted lists the pre-trusted peer ids; empty means uniform
	// pre-trust. Ids must be in range and duplicate-free (New rejects
	// degenerate sets).
	Pretrusted []int
	// Epsilon is the L1 convergence threshold, default 1e-6.
	Epsilon float64
	// MaxIter bounds the power iteration, default 200.
	MaxIter int
	// ColdStart restarts every power iteration from the pretrust vector
	// instead of warm-starting from the previous fixed point. The fixed
	// point is unique for alpha > 0, so both starts converge to the same
	// scores within Epsilon; warm starts just take fewer iterations on
	// incremental recomputes. Cold starts reproduce the historical
	// iteration-for-iteration trajectory (useful for bitwise regression
	// baselines).
	ColdStart bool
}

func (c Config) withDefaults() (Config, error) {
	if c.N <= 0 {
		return c, fmt.Errorf("eigentrust: N must be positive, got %d", c.N)
	}
	if c.Alpha == 0 {
		c.Alpha = 0.15
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return c, fmt.Errorf("eigentrust: alpha %v out of [0,1]", c.Alpha)
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-6
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 200
	}
	return c, nil
}

// Mechanism is the EigenTrust scoring engine. The normalized local-trust
// matrix C lives in a CSR whose rows are rematerialized incrementally from
// the LocalTrust dirty set, and the power iteration runs the shared sparse
// kernel: shard-parallel SpMV with a rank-one pretrust correction for
// dangling rows, on buffers reused across computes (zero steady-state
// allocation). Scores are bit-for-bit identical for every worker count.
type Mechanism struct {
	cfg      Config //trustlint:derived configuration, identical by construction on restore
	lt       *reputation.LocalTrust
	pretrust []float64 //trustlint:derived configuration, rebuilt by New from cfg.Pretrusted
	scores   []float64 // global trust distribution (sums to 1)
	dirty    bool

	// Sparse kernel state.
	csr          *linalg.CSR      //trustlint:derived rematerialized from the local-trust matrix on first Compute after restore
	ws           linalg.Workspace //trustlint:derived scratch, contents never outlive one Compute
	workers      int              //trustlint:derived configuration (SetWorkers), not part of the deterministic state
	materialized bool             //trustlint:derived cleared by restore to force a full CSR rebuild
	// Reusable iteration and materialization scratch.
	vecA, vecB []float64 //trustlint:derived scratch, contents never outlive one Compute
	colScratch []int32   //trustlint:derived scratch, contents never outlive one Compute
	valScratch []float64 //trustlint:derived scratch, contents never outlive one Compute
	// Max-normalized score cache backing ScoresView.
	norm    []float64 //trustlint:derived cache, recomputed from scores by refreshNorm on restore
	normMax float64   //trustlint:derived cache, recomputed from scores by refreshNorm on restore
	// spmv, when set, computes the power iteration's inner product remotely
	// (the cluster layer); nil or a false return runs the local kernel.
	spmv reputation.SpMVDelegate //trustlint:derived cluster-layer hook, re-attached by the owner after restore; bit-exact by contract
	// Diagnostics of the most recent Compute that ran iterations.
	lastConv reputation.Convergence
	hasConv  bool
}

var _ reputation.Mechanism = (*Mechanism)(nil)

// New builds the mechanism.
func New(cfg Config) (*Mechanism, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	pretrust := reputation.UniformPretrust(cfg.N)
	if len(cfg.Pretrusted) > 0 {
		if pretrust, err = reputation.PretrustOver(cfg.N, cfg.Pretrusted); err != nil {
			return nil, fmt.Errorf("eigentrust: %w", err)
		}
	}
	m := &Mechanism{
		cfg:          cfg,
		lt:           reputation.NewLocalTrust(cfg.N),
		pretrust:     pretrust,
		csr:          linalg.New(cfg.N),
		workers:      1,
		materialized: true, // a fresh CSR matches the empty matrix
		vecA:         make([]float64, cfg.N),
		vecB:         make([]float64, cfg.N),
		norm:         make([]float64, cfg.N),
	}
	m.scores = append([]float64(nil), m.pretrust...)
	m.refreshNorm()
	return m, nil
}

// SetComputeShards implements reputation.ComputeSharder: Compute's SpMV
// scatters over k workers. Shards are a scheduling knob only — scores stay
// bit-for-bit identical for every k.
func (m *Mechanism) SetComputeShards(k int) {
	if k < 1 {
		k = 1
	}
	m.workers = k
}

var _ reputation.ComputeSharder = (*Mechanism)(nil)

// SetSpMVDelegate implements reputation.SpMVDelegator: Compute's inner
// product routes through fn (nil restores the local kernel). The delegate is
// bit-exact by contract, so delegated and local computes produce identical
// scores.
func (m *Mechanism) SetSpMVDelegate(fn reputation.SpMVDelegate) { m.spmv = fn }

// SpMVBlocks implements reputation.BlockScatterer.
func (m *Mechanism) SpMVBlocks() int { return linalg.BlockCount(m.cfg.N) }

// SpMVScatterBlocks implements reputation.BlockScatterer: it rematerializes
// any dirty rows, then computes the canonical block partials for
// y = Cᵀx. Because row materialization is a pure function of the current
// local trust, a replica that folded the same reports returns bit-identical
// partials.
func (m *Mechanism) SpMVScatterBlocks(x []float64, lob, hib int) ([][]float64, []float64) {
	m.refreshMatrix()
	return m.csr.ScatterBlocks(x, lob, hib)
}

var (
	_ reputation.SpMVDelegator  = (*Mechanism)(nil)
	_ reputation.BlockScatterer = (*Mechanism)(nil)
)

// Name implements reputation.Mechanism.
func (*Mechanism) Name() string { return "eigentrust" }

// LocalTrust exposes the accumulated matrix (read-only use).
func (m *Mechanism) LocalTrust() *reputation.LocalTrust { return m.lt }

// TrustworthyFraction implements reputation.CommunityAssessor: the fraction
// of rated peers with net-positive incoming local trust.
func (m *Mechanism) TrustworthyFraction() float64 {
	return m.lt.NetPositiveFraction()
}

var _ reputation.CommunityAssessor = (*Mechanism)(nil)

// Whitewash models a peer abandoning its identity and rejoining fresh: all
// local trust involving it is erased. Under EigenTrust a fresh identity has
// no incoming trust, so its global score collapses to its pre-trust share —
// whitewashing does not launder a bad EigenTrust reputation upward (the
// zero-default punishes newcomers).
func (m *Mechanism) Whitewash(peer int) {
	m.lt.ResetPeer(peer)
	m.dirty = true
}

// Submit implements reputation.Mechanism.
func (m *Mechanism) Submit(r reputation.Report) error {
	if err := m.lt.Add(r); err != nil {
		return fmt.Errorf("eigentrust: %w", err)
	}
	m.dirty = true
	return nil
}

// SubmitBatch implements reputation.BatchSubmitter: a whole round's reports
// fold through LocalTrust.AddBatch, touching each dirty row once instead of
// per report.
func (m *Mechanism) SubmitBatch(rs []reputation.Report) error {
	if len(rs) == 0 {
		return nil
	}
	if err := m.lt.AddBatch(rs); err != nil {
		m.dirty = true // partial folds before the error still count
		return fmt.Errorf("eigentrust: %w", err)
	}
	m.dirty = true
	return nil
}

var _ reputation.BatchSubmitter = (*Mechanism)(nil)

// refreshMatrix rematerializes the CSR rows whose local trust changed since
// the last materialization — only the dirty set in steady state, every row
// after a snapshot restore. Row materialization is a pure function of the
// row's current local trust, so an incrementally maintained matrix is
// bit-for-bit identical to one rebuilt from scratch.
func (m *Mechanism) refreshMatrix() {
	if m.materialized && !m.lt.HasDirty() {
		return
	}
	setRow := func(i int) {
		m.colScratch, m.valScratch = m.lt.AppendRow(i, m.colScratch[:0], m.valScratch[:0])
		m.csr.SetRow(i, m.colScratch, m.valScratch)
		m.csr.NormalizeRow(i)
	}
	if !m.materialized {
		for i := 0; i < m.cfg.N; i++ {
			setRow(i)
		}
		m.materialized = true
	} else {
		for _, i := range m.lt.DirtyRows() {
			setRow(i)
		}
	}
	m.lt.ClearDirty()
}

// refreshNorm rebuilds the max-normalized score cache behind ScoresView.
func (m *Mechanism) refreshNorm() {
	maxV := 0.0
	for _, v := range m.scores {
		if v > maxV {
			maxV = v
		}
	}
	m.normMax = maxV
	if maxV == 0 {
		for i := range m.norm {
			m.norm[i] = 0
		}
		return
	}
	for i, v := range m.scores {
		m.norm[i] = v / maxV
	}
}

// Compute runs the power iteration t ← (1−α)·(Cᵀt + mᵀ·p) + α·p — where m
// is the trust mass on dangling rows, folded in by the kernel's rank-one
// correction instead of a dense pretrust fill — until the L1 change drops
// below Epsilon, returning the number of iterations performed. By default
// the iteration warm-starts from the previous fixed point (the first
// Compute starts from pretrust, which is what the scores are initialized
// to), so an incremental recompute pays only as many iterations as the
// matrix actually moved; Config.ColdStart restores the fixed pretrust
// start. Epsilon is never loosened on warm starts — the stopping contract
// is identical either way. Only dirty CSR rows are rematerialized, the
// iteration reuses the mechanism's buffers, and the SpMV scatters over the
// configured worker shards with a canonical fold, so the result is
// identical for every worker count.
func (m *Mechanism) Compute() int {
	if !m.dirty {
		return 0
	}
	n := m.cfg.N
	m.refreshMatrix()
	t, next := m.vecA, m.vecB
	warm := !m.cfg.ColdStart
	if warm {
		copy(t, m.scores)
	} else {
		copy(t, m.pretrust)
	}
	iters := 0
	residual := 0.0
	for ; iters < m.cfg.MaxIter; iters++ {
		if m.spmv == nil || !m.spmv(next, t, m.pretrust) {
			m.csr.MulTranspose(next, t, m.pretrust, m.workers, &m.ws)
		}
		diff := 0.0
		for j := 0; j < n; j++ {
			next[j] = (1-m.cfg.Alpha)*next[j] + m.cfg.Alpha*m.pretrust[j]
			diff += math.Abs(next[j] - t[j])
		}
		t, next = next, t
		residual = diff
		if diff < m.cfg.Epsilon {
			iters++
			break
		}
	}
	copy(m.scores, t)
	m.vecA, m.vecB = t, next // keep the buffer pair owned by the mechanism
	m.refreshNorm()
	m.dirty = false
	m.lastConv = reputation.Convergence{Iterations: iters, Residual: residual, Warm: warm}
	m.hasConv = true
	return iters
}

// LastConvergence implements reputation.ConvergenceReporter.
func (m *Mechanism) LastConvergence() (reputation.Convergence, bool) {
	return m.lastConv, m.hasConv
}

var _ reputation.ConvergenceReporter = (*Mechanism)(nil)

// Raw returns the global trust distribution (sums to 1).
func (m *Mechanism) Raw() []float64 {
	out := make([]float64, len(m.scores))
	copy(out, m.scores)
	return out
}

// Score implements reputation.Mechanism: the peer's global trust normalized
// by the maximum, so the best peer scores 1.
func (m *Mechanism) Score(peer int) float64 {
	if peer < 0 || peer >= len(m.scores) {
		return 0
	}
	if m.normMax == 0 {
		return 0
	}
	return m.scores[peer] / m.normMax
}

// Scores implements reputation.Mechanism.
func (m *Mechanism) Scores() []float64 {
	return append([]float64(nil), m.norm...)
}

// ScoresView implements reputation.ScoresViewer: the max-normalized scores
// without the copy. Read-only; valid until the next Compute or restore.
func (m *Mechanism) ScoresView() []float64 { return m.norm }

var _ reputation.ScoresViewer = (*Mechanism)(nil)

// DistributedResult reports the cost of a distributed computation.
type DistributedResult struct {
	Rounds   int
	Messages int64
	// MaxDiff is the final L1 distance to the centralized fixed point.
	MaxDiff float64
}

// RunDistributed executes the secure-free distributed EigenTrust iteration
// over the overlay: in each round every live peer i sends c_ij·t_i to every
// peer j it has an opinion about, and each receiver folds contributions into
// its next trust value. It runs until convergence or maxRounds, then leaves
// the distributed scores installed in the mechanism.
//
// This exercises the same message pattern as the published distributed
// algorithm (without the secure score-manager layer, which TrustMe's DHT
// variant covers) and lets experiments charge real message costs.
func (m *Mechanism) RunDistributed(net *overlay.Network, maxRounds int) (DistributedResult, error) {
	if net.Size() < m.cfg.N {
		return DistributedResult{}, fmt.Errorf("eigentrust: overlay has %d nodes, need %d", net.Size(), m.cfg.N)
	}
	if maxRounds <= 0 {
		maxRounds = m.cfg.MaxIter
	}
	n := m.cfg.N
	// Sync the sparse matrix; peers with no positive opinions follow the
	// pretrust distribution (the paper's dangling-row rule), iterated on
	// the fly instead of materialized as dense rows.
	m.refreshMatrix()
	t := append([]float64(nil), m.pretrust...)
	accum := make([]float64, n)

	type contrib struct{ value float64 }
	var res DistributedResult
	startMsgs := net.Stats().Sent

	for round := 0; round < maxRounds; round++ {
		for j := range accum {
			accum[j] = 0
		}
		// Install handlers that accumulate contributions this round.
		for j := 0; j < n; j++ {
			j := j
			if err := net.SetHandler(overlay.NodeID(j), func(msg overlay.Message) {
				if c, ok := msg.Payload.(contrib); ok {
					accum[j] += c.value
				}
			}); err != nil {
				return res, err
			}
		}
		for i := 0; i < n; i++ {
			if !net.Alive(overlay.NodeID(i)) || t[i] <= 0 {
				continue
			}
			if m.csr.RowEmpty(i) {
				for j, c := range m.pretrust {
					if c > 0 {
						net.Send(overlay.NodeID(i), overlay.NodeID(j), "et-contrib", contrib{value: c * t[i]})
					}
				}
				continue
			}
			cols, vals := m.csr.Row(i)
			for k, j := range cols {
				if vals[k] > 0 {
					net.Send(overlay.NodeID(i), overlay.NodeID(int(j)), "et-contrib", contrib{value: vals[k] * t[i]})
				}
			}
		}
		// Deliver this round's messages.
		if err := net.Sim().Run(0); err != nil {
			return res, err
		}
		diff := 0.0
		for j := 0; j < n; j++ {
			nv := (1-m.cfg.Alpha)*accum[j] + m.cfg.Alpha*m.pretrust[j]
			diff += math.Abs(nv - t[j])
			t[j] = nv
		}
		res.Rounds++
		if diff < m.cfg.Epsilon {
			break
		}
	}
	res.Messages = net.Stats().Sent - startMsgs

	// Compare against the centralized fixed point.
	m.dirty = true
	m.Compute()
	for j := 0; j < n; j++ {
		res.MaxDiff += math.Abs(t[j] - m.scores[j])
	}
	copy(m.scores, t)
	m.refreshNorm()
	return res, nil
}
