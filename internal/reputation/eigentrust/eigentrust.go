// Package eigentrust implements the EigenTrust algorithm (Kamvar, Schlosser,
// Garcia-Molina, WWW 2003), the first reputation baseline the paper cites:
// a PageRank-like global reputation computed as the principal eigenvector of
// the normalized local-trust matrix, damped toward a pre-trusted peer set.
package eigentrust

import (
	"fmt"
	"math"

	"repro/internal/overlay"
	"repro/internal/reputation"
)

// Config parameterizes the mechanism.
type Config struct {
	// N is the number of peers.
	N int
	// Alpha is the pre-trust blending weight (the paper's a), default 0.15.
	Alpha float64
	// Pretrusted lists the pre-trusted peer ids; empty means uniform
	// pre-trust.
	Pretrusted []int
	// Epsilon is the L1 convergence threshold, default 1e-6.
	Epsilon float64
	// MaxIter bounds the power iteration, default 200.
	MaxIter int
}

func (c Config) withDefaults() (Config, error) {
	if c.N <= 0 {
		return c, fmt.Errorf("eigentrust: N must be positive, got %d", c.N)
	}
	if c.Alpha == 0 {
		c.Alpha = 0.15
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return c, fmt.Errorf("eigentrust: alpha %v out of [0,1]", c.Alpha)
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-6
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 200
	}
	for _, p := range c.Pretrusted {
		if p < 0 || p >= c.N {
			return c, fmt.Errorf("eigentrust: pre-trusted peer %d out of range", p)
		}
	}
	return c, nil
}

// Mechanism is the EigenTrust scoring engine.
type Mechanism struct {
	cfg      Config
	lt       *reputation.LocalTrust
	pretrust []float64
	scores   []float64 // global trust distribution (sums to 1)
	dirty    bool
}

var _ reputation.Mechanism = (*Mechanism)(nil)

// New builds the mechanism.
func New(cfg Config) (*Mechanism, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m := &Mechanism{
		cfg:      cfg,
		lt:       reputation.NewLocalTrust(cfg.N),
		pretrust: reputation.PretrustOver(cfg.N, cfg.Pretrusted),
	}
	m.scores = append([]float64(nil), m.pretrust...)
	return m, nil
}

// Name implements reputation.Mechanism.
func (*Mechanism) Name() string { return "eigentrust" }

// LocalTrust exposes the accumulated matrix (read-only use).
func (m *Mechanism) LocalTrust() *reputation.LocalTrust { return m.lt }

// TrustworthyFraction implements reputation.CommunityAssessor: the fraction
// of rated peers with net-positive incoming local trust.
func (m *Mechanism) TrustworthyFraction() float64 {
	return m.lt.NetPositiveFraction()
}

var _ reputation.CommunityAssessor = (*Mechanism)(nil)

// Whitewash models a peer abandoning its identity and rejoining fresh: all
// local trust involving it is erased. Under EigenTrust a fresh identity has
// no incoming trust, so its global score collapses to its pre-trust share —
// whitewashing does not launder a bad EigenTrust reputation upward (the
// zero-default punishes newcomers).
func (m *Mechanism) Whitewash(peer int) {
	m.lt.ResetPeer(peer)
	m.dirty = true
}

// Submit implements reputation.Mechanism.
func (m *Mechanism) Submit(r reputation.Report) error {
	if err := m.lt.Add(r); err != nil {
		return fmt.Errorf("eigentrust: %w", err)
	}
	m.dirty = true
	return nil
}

// Compute runs the power iteration t ← (1−α)·Cᵀt + α·p until the L1 change
// drops below Epsilon, returning the number of iterations performed.
func (m *Mechanism) Compute() int {
	if !m.dirty {
		return 0
	}
	n := m.cfg.N
	// Materialize C rows once per Compute.
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = m.lt.NormalizedRow(i, m.pretrust)
	}
	t := append([]float64(nil), m.pretrust...)
	next := make([]float64, n)
	iters := 0
	for ; iters < m.cfg.MaxIter; iters++ {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			ti := t[i]
			if ti == 0 {
				continue
			}
			row := rows[i]
			for j, c := range row {
				if c != 0 {
					next[j] += c * ti
				}
			}
		}
		diff := 0.0
		for j := 0; j < n; j++ {
			next[j] = (1-m.cfg.Alpha)*next[j] + m.cfg.Alpha*m.pretrust[j]
			diff += math.Abs(next[j] - t[j])
		}
		t, next = next, t
		if diff < m.cfg.Epsilon {
			iters++
			break
		}
	}
	m.scores = t
	m.dirty = false
	return iters
}

// Raw returns the global trust distribution (sums to 1).
func (m *Mechanism) Raw() []float64 {
	out := make([]float64, len(m.scores))
	copy(out, m.scores)
	return out
}

// Score implements reputation.Mechanism: the peer's global trust normalized
// by the maximum, so the best peer scores 1.
func (m *Mechanism) Score(peer int) float64 {
	if peer < 0 || peer >= len(m.scores) {
		return 0
	}
	maxV := 0.0
	for _, v := range m.scores {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		return 0
	}
	return m.scores[peer] / maxV
}

// Scores implements reputation.Mechanism.
func (m *Mechanism) Scores() []float64 {
	out := make([]float64, len(m.scores))
	maxV := 0.0
	for _, v := range m.scores {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		return out
	}
	for i, v := range m.scores {
		out[i] = v / maxV
	}
	return out
}

// DistributedResult reports the cost of a distributed computation.
type DistributedResult struct {
	Rounds   int
	Messages int64
	// MaxDiff is the final L1 distance to the centralized fixed point.
	MaxDiff float64
}

// RunDistributed executes the secure-free distributed EigenTrust iteration
// over the overlay: in each round every live peer i sends c_ij·t_i to every
// peer j it has an opinion about, and each receiver folds contributions into
// its next trust value. It runs until convergence or maxRounds, then leaves
// the distributed scores installed in the mechanism.
//
// This exercises the same message pattern as the published distributed
// algorithm (without the secure score-manager layer, which TrustMe's DHT
// variant covers) and lets experiments charge real message costs.
func (m *Mechanism) RunDistributed(net *overlay.Network, maxRounds int) (DistributedResult, error) {
	if net.Size() < m.cfg.N {
		return DistributedResult{}, fmt.Errorf("eigentrust: overlay has %d nodes, need %d", net.Size(), m.cfg.N)
	}
	if maxRounds <= 0 {
		maxRounds = m.cfg.MaxIter
	}
	n := m.cfg.N
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = m.lt.NormalizedRow(i, m.pretrust)
	}
	t := append([]float64(nil), m.pretrust...)
	accum := make([]float64, n)

	type contrib struct{ value float64 }
	var res DistributedResult
	startMsgs := net.Stats().Sent

	for round := 0; round < maxRounds; round++ {
		for j := range accum {
			accum[j] = 0
		}
		// Install handlers that accumulate contributions this round.
		for j := 0; j < n; j++ {
			j := j
			if err := net.SetHandler(overlay.NodeID(j), func(msg overlay.Message) {
				if c, ok := msg.Payload.(contrib); ok {
					accum[j] += c.value
				}
			}); err != nil {
				return res, err
			}
		}
		for i := 0; i < n; i++ {
			if !net.Alive(overlay.NodeID(i)) {
				continue
			}
			for j, c := range rows[i] {
				if c > 0 && t[i] > 0 {
					net.Send(overlay.NodeID(i), overlay.NodeID(j), "et-contrib", contrib{value: c * t[i]})
				}
			}
		}
		// Deliver this round's messages.
		if err := net.Sim().Run(0); err != nil {
			return res, err
		}
		diff := 0.0
		for j := 0; j < n; j++ {
			nv := (1-m.cfg.Alpha)*accum[j] + m.cfg.Alpha*m.pretrust[j]
			diff += math.Abs(nv - t[j])
			t[j] = nv
		}
		res.Rounds++
		if diff < m.cfg.Epsilon {
			break
		}
	}
	res.Messages = net.Stats().Sent - startMsgs

	// Compare against the centralized fixed point.
	m.dirty = true
	m.Compute()
	for j := 0; j < n; j++ {
		res.MaxDiff += math.Abs(t[j] - m.scores[j])
	}
	m.scores = t
	return res, nil
}
