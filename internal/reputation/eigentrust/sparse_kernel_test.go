package eigentrust

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/reputation"
	"repro/internal/sim"
)

// denseCompute is the frozen pre-kernel reference: the Θ(n²) power
// iteration over fully materialized dense rows, verbatim from the dense
// implementation the sparse kernel replaced. The golden-equivalence suite
// pins the refactor to it.
func denseCompute(lt *reputation.LocalTrust, pretrust []float64, cfg Config) []float64 {
	n := cfg.N
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = lt.NormalizedRow(i, pretrust)
	}
	t := append([]float64(nil), pretrust...)
	next := make([]float64, n)
	for iters := 0; iters < cfg.MaxIter; iters++ {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			ti := t[i]
			if ti == 0 {
				continue
			}
			for j, c := range rows[i] {
				if c != 0 {
					next[j] += c * ti
				}
			}
		}
		diff := 0.0
		for j := 0; j < n; j++ {
			next[j] = (1-cfg.Alpha)*next[j] + cfg.Alpha*pretrust[j]
			diff += math.Abs(next[j] - t[j])
		}
		t, next = next, t
		if diff < cfg.Epsilon {
			break
		}
	}
	return t
}

// feedRandom submits a random sparse report set: most peers rate a few
// others, some stay silent (dangling rows for the kernel's rank-one
// correction).
func feedRandom(t *testing.T, m *Mechanism, rng *sim.RNG, n, reports int) {
	t.Helper()
	for k := 0; k < reports; k++ {
		i := rng.Intn(n)
		if i%7 == 0 {
			continue // keep some rows silent
		}
		j := rng.Intn(n)
		if i == j {
			continue
		}
		if err := m.Submit(reputation.Report{Rater: i, Ratee: j, Value: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSparseMatchesDenseReference(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		cfg := Config{N: 60, Pretrusted: []int{0, 3}}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(seed)
		feedRandom(t, m, rng, cfg.N, 500)
		m.Compute()
		want := denseCompute(m.lt, m.pretrust, m.cfg)
		got := m.Raw()
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-9 {
				t.Fatalf("seed %d: score[%d] = %v, dense reference %v", seed, j, got[j], want[j])
			}
		}
	}
}

func TestComputeWorkerInvariance(t *testing.T) {
	build := func(workers int) *Mechanism {
		m, err := New(Config{N: 300, Pretrusted: []int{1}})
		if err != nil {
			t.Fatal(err)
		}
		m.SetComputeShards(workers)
		feedRandom(t, m, sim.NewRNG(42), 300, 3000)
		return m
	}
	ref := build(1)
	ref.Compute()
	for _, workers := range []int{2, 4, 8} {
		m := build(workers)
		m.Compute()
		for j, v := range m.Raw() {
			if v != ref.Raw()[j] {
				t.Fatalf("workers=%d: score[%d] = %v differs from serial %v (bit-for-bit contract)",
					workers, j, v, ref.Raw()[j])
			}
		}
	}
}

// TestIncrementalMatchesFresh pins the dirty-set rematerialization: a
// mechanism that computed mid-stream (so most CSR rows are reused, only
// dirty ones rebuilt) must match, bit for bit, a mechanism that saw all
// reports at once. ColdStart pins the iteration's starting vector — warm
// starts (the default) legitimately stop at different points within Epsilon
// depending on the compute history, which is exactly the variation this
// test must exclude to isolate the materialization path.
func TestIncrementalMatchesFresh(t *testing.T) {
	const n = 80
	inc, err := New(Config{N: n, ColdStart: true})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(Config{N: n, ColdStart: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(9)
	var reports []reputation.Report
	for k := 0; k < 800; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		reports = append(reports, reputation.Report{Rater: i, Ratee: j, Value: rng.Float64()})
	}
	for k, r := range reports {
		if err := inc.Submit(r); err != nil {
			t.Fatal(err)
		}
		if k == len(reports)/3 || k == 2*len(reports)/3 {
			inc.Compute() // intermediate computes exercise partial rebuilds
		}
		if err := fresh.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	inc.Compute()
	fresh.Compute()
	for j := range fresh.Raw() {
		if inc.Raw()[j] != fresh.Raw()[j] {
			t.Fatalf("score[%d]: incremental %v != fresh %v", j, inc.Raw()[j], fresh.Raw()[j])
		}
	}
}

// TestSnapshotRoundTripMidDirty snapshots with dirty rows pending (reports
// submitted after the last Compute) and checks restore-then-run equals the
// uninterrupted run bit for bit, state blob included.
func TestSnapshotRoundTripMidDirty(t *testing.T) {
	const n = 50
	cfg := Config{N: n, Pretrusted: []int{2}}
	orig, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(5)
	feedRandom(t, orig, rng, n, 300)
	orig.Compute()
	feedRandom(t, orig, rng, n, 100) // pending dirty rows at snapshot time

	blob, err := orig.MechanismState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreMechanismState(blob); err != nil {
		t.Fatal(err)
	}

	// Continue both identically, then compare everything observable.
	cont := sim.NewRNG(77)
	for k := 0; k < 150; k++ {
		i, j := cont.Intn(n), cont.Intn(n)
		if i == j {
			continue
		}
		r := reputation.Report{Rater: i, Ratee: j, Value: cont.Float64()}
		if err := orig.Submit(r); err != nil {
			t.Fatal(err)
		}
		if err := restored.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if orig.Compute() != restored.Compute() {
		t.Fatal("iteration counts diverged after restore")
	}
	for j := range orig.Raw() {
		if orig.Raw()[j] != restored.Raw()[j] {
			t.Fatalf("score[%d]: %v != %v after restore-then-run", j, orig.Raw()[j], restored.Raw()[j])
		}
	}
	b1, err := orig.MechanismState()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := restored.MechanismState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("state blobs diverged after restore-then-run")
	}
}

// TestComputeSteadyStateAllocFree pins the reusable-buffer contract: once
// the workspace is warm, a recompute of an unchanged matrix performs zero
// allocations.
func TestComputeSteadyStateAllocFree(t *testing.T) {
	m, err := New(Config{N: 400})
	if err != nil {
		t.Fatal(err)
	}
	feedRandom(t, m, sim.NewRNG(3), 400, 4000)
	m.Compute() // warm buffers and materialize the CSR
	allocs := testing.AllocsPerRun(20, func() {
		m.dirty = true // force the iteration; no rows are dirty
		m.Compute()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Compute allocates %v objects/op, want 0", allocs)
	}
}

func TestNewRejectsDuplicatePretrusted(t *testing.T) {
	if _, err := New(Config{N: 5, Pretrusted: []int{1, 1}}); err == nil {
		t.Fatal("duplicate pre-trusted peer accepted")
	}
}
