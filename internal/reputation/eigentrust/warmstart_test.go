package eigentrust

import (
	"math"
	"testing"

	"repro/internal/reputation"
	"repro/internal/sim"
)

// TestWarmStartConvergesFaster pins the point of warm starting: on an
// incremental recompute after a small matrix perturbation, restarting from
// the previous fixed point takes fewer iterations than restarting from
// pretrust, and both land on the same fixed point (unique for alpha > 0)
// within the shared Epsilon stopping contract.
func TestWarmStartConvergesFaster(t *testing.T) {
	const n = 120
	build := func(cold bool) *Mechanism {
		m, err := New(Config{N: n, Pretrusted: []int{0, 1}, ColdStart: cold})
		if err != nil {
			t.Fatal(err)
		}
		feedRandom(t, m, sim.NewRNG(8), n, 2000)
		m.Compute() // both reach the fixed point of the initial matrix
		return m
	}
	warm, cold := build(false), build(true)

	// Perturb both matrices identically and recompute.
	perturb := sim.NewRNG(15)
	for k := 0; k < 40; k++ {
		i, j := perturb.Intn(n), perturb.Intn(n)
		if i == j {
			continue
		}
		r := reputation.Report{Rater: i, Ratee: j, Value: perturb.Float64()}
		if err := warm.Submit(r); err != nil {
			t.Fatal(err)
		}
		if err := cold.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	warmIters := warm.Compute()
	coldIters := cold.Compute()
	if warmIters >= coldIters {
		t.Fatalf("warm recompute took %d iterations, cold %d — warm start buys nothing", warmIters, coldIters)
	}
	// Same fixed point within the stopping tolerance (Epsilon bounds the L1
	// step, so the iterates can differ by a few Epsilon around the target).
	for j := range warm.Raw() {
		if d := math.Abs(warm.Raw()[j] - cold.Raw()[j]); d > 1e-4 {
			t.Fatalf("score[%d]: warm %v vs cold %v (|d|=%v)", j, warm.Raw()[j], cold.Raw()[j], d)
		}
	}

	wc, ok := warm.LastConvergence()
	if !ok || !wc.Warm || wc.Iterations != warmIters {
		t.Fatalf("warm diagnostics = %+v ok=%v, want Warm=true Iterations=%d", wc, ok, warmIters)
	}
	cc, ok := cold.LastConvergence()
	if !ok || cc.Warm || cc.Iterations != coldIters {
		t.Fatalf("cold diagnostics = %+v ok=%v, want Warm=false Iterations=%d", cc, ok, coldIters)
	}
	if wc.Residual >= warm.cfg.Epsilon || cc.Residual >= cold.cfg.Epsilon {
		t.Fatalf("converged runs report residuals %v / %v not below epsilon", wc.Residual, cc.Residual)
	}
}

// TestConvergenceDiagnosticsSurviveSnapshot checks the diagnostics are part
// of the serialized state: a restored mechanism reports its pre-snapshot
// convergence rather than pretending it never computed.
func TestConvergenceDiagnosticsSurviveSnapshot(t *testing.T) {
	const n = 40
	m, err := New(Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.LastConvergence(); ok {
		t.Fatal("fresh mechanism claims convergence diagnostics")
	}
	feedRandom(t, m, sim.NewRNG(2), n, 400)
	m.Compute()
	want, ok := m.LastConvergence()
	if !ok || want.Iterations == 0 {
		t.Fatalf("diagnostics missing after Compute: %+v ok=%v", want, ok)
	}
	blob, err := m.MechanismState()
	if err != nil {
		t.Fatal(err)
	}
	back, err := New(Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	if err := back.RestoreMechanismState(blob); err != nil {
		t.Fatal(err)
	}
	got, ok := back.LastConvergence()
	if !ok || got != want {
		t.Fatalf("restored diagnostics %+v ok=%v, want %+v", got, ok, want)
	}
}
