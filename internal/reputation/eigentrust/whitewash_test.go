package eigentrust

import (
	"testing"

	"repro/internal/reputation"
)

func TestWhitewashDoesNotLaunderEigenTrust(t *testing.T) {
	m, err := New(Config{N: 10, Pretrusted: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Everyone rates peer 0 badly; good peers rate each other well.
	for rater := 1; rater < 10; rater++ {
		feed(t, m, rater, 0, 0.05, 3)
		feed(t, m, rater, (rater%9)+1, 0.9, 2)
	}
	m.Compute()
	before := m.Score(0)
	if before > 0.1 {
		t.Fatalf("badly-rated peer score = %v, want near 0", before)
	}
	m.Whitewash(0)
	m.Compute()
	after := m.Score(0)
	if after > before+0.1 {
		t.Fatalf("whitewash laundered EigenTrust score: %v -> %v", before, after)
	}
}

func TestWhitewashClearsOutgoingOpinions(t *testing.T) {
	m, err := New(Config{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, m, 0, 1, 0.9, 3)
	if !m.LocalTrust().HasOutgoing(0) {
		t.Fatal("setup: no outgoing trust")
	}
	m.Whitewash(0)
	if m.LocalTrust().HasOutgoing(0) {
		t.Fatal("whitewashed peer kept outgoing opinions")
	}
}

func TestTrustworthyFraction(t *testing.T) {
	m, err := New(Config{N: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.TrustworthyFraction(); got != 1 {
		t.Fatalf("empty mechanism fraction = %v", got)
	}
	// Peers 1,2 rated well; 3,4 rated badly.
	for _, good := range []int{1, 2} {
		feed(t, m, 0, good, 0.9, 2)
	}
	for _, bad := range []int{3, 4} {
		feed(t, m, 0, bad, 0.1, 2)
	}
	if got := m.TrustworthyFraction(); got != 0.5 {
		t.Fatalf("fraction = %v, want 0.5", got)
	}
	_ = reputation.CommunityAssessor(m)
}
