package eigentrust

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/reputation"
)

// mechanismState is the gob-serialized mutable state of the mechanism. The
// pre-trust vector is configuration and is rebuilt by New. The local-trust
// matrix travels in its sparse form, dirty set included; the CSR itself is
// derived state and is rematerialized from the matrix on the first Compute
// after a restore — row materialization is pure, so restore-then-run is
// bit-for-bit identical to an uninterrupted run.
type mechanismState struct {
	LT     reputation.LocalTrustState
	Scores []float64
	Dirty  bool
	// Convergence diagnostics of the most recent iterative Compute, so
	// restored runs report the same diagnostics an uninterrupted run would.
	Conv    reputation.Convergence
	HasConv bool
}

// MechanismState implements reputation.Snapshotter.
func (m *Mechanism) MechanismState() ([]byte, error) {
	st := mechanismState{
		LT:      m.lt.State(),
		Scores:  append([]float64(nil), m.scores...),
		Dirty:   m.dirty,
		Conv:    m.lastConv,
		HasConv: m.hasConv,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("eigentrust: encode state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreMechanismState implements reputation.Snapshotter.
func (m *Mechanism) RestoreMechanismState(data []byte) error {
	var st mechanismState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("eigentrust: decode state: %w", err)
	}
	if len(st.Scores) != m.cfg.N {
		return fmt.Errorf("eigentrust: state for %d peers, want %d", len(st.Scores), m.cfg.N)
	}
	if err := m.lt.SetState(st.LT); err != nil {
		return fmt.Errorf("eigentrust: %w", err)
	}
	copy(m.scores, st.Scores)
	m.refreshNorm()
	m.dirty = st.Dirty
	m.materialized = false
	m.lastConv = st.Conv
	m.hasConv = st.HasConv
	return nil
}

var _ reputation.Snapshotter = (*Mechanism)(nil)
