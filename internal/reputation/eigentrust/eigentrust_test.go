package eigentrust

import (
	"math"
	"testing"

	"repro/internal/overlay"
	"repro/internal/reputation"
	"repro/internal/sim"
)

func feed(t *testing.T, m *Mechanism, rater, ratee int, value float64, times int) {
	t.Helper()
	for k := 0; k < times; k++ {
		if err := m.Submit(reputation.Report{Rater: rater, Ratee: ratee, Value: value}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := New(Config{N: 5, Alpha: 1.5}); err == nil {
		t.Fatal("alpha>1 accepted")
	}
	if _, err := New(Config{N: 5, Pretrusted: []int{9}}); err == nil {
		t.Fatal("bad pretrusted accepted")
	}
}

func TestScoresSeparateGoodFromBad(t *testing.T) {
	// Peers 0-3 good, peer 4 bad; everyone rates everyone truthfully.
	m, err := New(Config{N: 5, Pretrusted: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i == j {
				continue
			}
			v := 0.9
			if j == 4 {
				v = 0.1
			}
			feed(t, m, i, j, v, 3)
		}
	}
	iters := m.Compute()
	if iters == 0 {
		t.Fatal("no iterations performed")
	}
	scores := m.Scores()
	for j := 0; j < 4; j++ {
		if scores[j] <= scores[4] {
			t.Fatalf("good peer %d (%v) not above bad peer 4 (%v)", j, scores[j], scores[4])
		}
	}
	if m.Score(4) > 0.2 {
		t.Fatalf("bad peer score = %v, want near 0", m.Score(4))
	}
}

func TestRawDistributionSumsToOne(t *testing.T) {
	m, err := New(Config{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	for k := 0; k < 200; k++ {
		i, j := rng.Intn(10), rng.Intn(10)
		if i == j {
			continue
		}
		_ = m.Submit(reputation.Report{Rater: i, Ratee: j, Value: rng.Float64()})
	}
	m.Compute()
	sum := 0.0
	for _, v := range m.Raw() {
		if v < 0 {
			t.Fatalf("negative trust %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("trust distribution sums to %v", sum)
	}
}

func TestComputeIdempotentWhenClean(t *testing.T) {
	m, err := New(Config{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, m, 0, 1, 0.9, 2)
	if m.Compute() == 0 {
		t.Fatal("dirty compute did no work")
	}
	if m.Compute() != 0 {
		t.Fatal("clean compute re-ran")
	}
}

func TestPretrustDampingLimitsCollusion(t *testing.T) {
	// Colluding clique {3,4} rate each other highly; honest peers {0,1,2}
	// rate the clique low. With pre-trusted honest peer 0, the clique must
	// not dominate.
	m, err := New(Config{N: 5, Pretrusted: []int{0}, Alpha: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{3, 4}, {4, 3}} {
		feed(t, m, pair[0], pair[1], 1.0, 20)
	}
	for _, i := range []int{0, 1, 2} {
		for _, j := range []int{3, 4} {
			feed(t, m, i, j, 0.1, 5)
		}
		for _, j := range []int{0, 1, 2} {
			if i != j {
				feed(t, m, i, j, 0.9, 5)
			}
		}
	}
	m.Compute()
	s := m.Scores()
	for _, h := range []int{0, 1, 2} {
		for _, c := range []int{3, 4} {
			if s[h] <= s[c] {
				t.Fatalf("honest %d (%v) not above colluder %d (%v): %v", h, s[h], c, s[c], s)
			}
		}
	}
}

func TestNoPretrustCollusionWins(t *testing.T) {
	// Ablation: without pre-trusted damping (uniform pretrust, tiny alpha)
	// a clique that absorbs trust without returning it captures top rank —
	// the known EigenTrust failure mode. Honest peers were fooled into a
	// few positive ratings of the clique; the clique only rates itself.
	m, err := New(Config{N: 5, Alpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{3, 4}, {4, 3}} {
		feed(t, m, pair[0], pair[1], 1.0, 50)
	}
	for _, i := range []int{0, 1, 2} {
		for _, j := range []int{0, 1, 2} {
			if i != j {
				feed(t, m, i, j, 0.9, 5)
			}
		}
		// Leaked trust toward the clique (early fooled transactions).
		feed(t, m, i, 3, 0.9, 1)
	}
	m.Compute()
	s := m.Raw()
	for _, h := range []int{0, 1, 2} {
		for _, c := range []int{3, 4} {
			if s[c] <= s[h] {
				t.Fatalf("expected colluder %d (%v) above honest %d (%v) without pretrust: %v",
					c, s[c], h, s[h], s)
			}
		}
	}
}

func TestScoreOutOfRange(t *testing.T) {
	m, err := New(Config{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Score(-1) != 0 || m.Score(5) != 0 {
		t.Fatal("out-of-range score != 0")
	}
}

func TestSubmitValidation(t *testing.T) {
	m, err := New(Config{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(reputation.Report{Rater: 0, Ratee: 0}); err == nil {
		t.Fatal("self-rating accepted")
	}
	if err := m.Submit(reputation.Report{Rater: 0, Ratee: 9}); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestDistributedMatchesCentralized(t *testing.T) {
	const n = 20
	m, err := New(Config{N: n, Pretrusted: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(7)
	for k := 0; k < 600; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		v := 0.9
		if j%4 == 0 {
			v = 0.1
		}
		_ = m.Submit(reputation.Report{Rater: i, Ratee: j, Value: v})
	}
	s := sim.New()
	net := overlay.NewNetwork(s, sim.NewRNG(8), n, overlay.Config{})
	res, err := m.RunDistributed(net, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 || res.Messages == 0 {
		t.Fatalf("distributed run did nothing: %+v", res)
	}
	if res.MaxDiff > 1e-3 {
		t.Fatalf("distributed fixed point differs from centralized by %v", res.MaxDiff)
	}
}

func TestDistributedRequiresBigEnoughOverlay(t *testing.T) {
	m, err := New(Config{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	net := overlay.NewNetwork(s, sim.NewRNG(1), 5, overlay.Config{})
	if _, err := m.RunDistributed(net, 10); err == nil {
		t.Fatal("undersized overlay accepted")
	}
}
