package eigentrust

import (
	"testing"

	"repro/internal/overlay"
	"repro/internal/reputation"
	"repro/internal/sim"
)

// TestDistributedUnderMessageLoss: with a lossy overlay the distributed
// iteration still terminates and lands near the centralized fixed point —
// lost contributions behave like damping, not divergence.
func TestDistributedUnderMessageLoss(t *testing.T) {
	const n = 20
	m, err := New(Config{N: n, Pretrusted: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(77)
	for k := 0; k < 400; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		v := 0.9
		if j%3 == 0 {
			v = 0.1
		}
		_ = m.Submit(reputation.Report{Rater: i, Ratee: j, Value: v})
	}
	s := sim.New()
	net := overlay.NewNetwork(s, sim.NewRNG(78), n, overlay.Config{LossRate: 0.1})
	res, err := m.RunDistributed(net, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 {
		t.Fatal("no rounds ran")
	}
	// 10% loss: the fixed point is biased but must stay in the ballpark.
	if res.MaxDiff > 0.5 {
		t.Fatalf("lossy distributed run diverged: L1 diff %v", res.MaxDiff)
	}
	// Scores remain a valid ranking: the known-good pretrusted peer must
	// outrank a known-bad peer.
	if m.Score(0) <= m.Score(3) {
		t.Fatalf("ranking destroyed by loss: %v vs %v", m.Score(0), m.Score(3))
	}
}

// TestDistributedWithDeadNodes: peers that died mid-computation simply stop
// contributing; the rest converge.
func TestDistributedWithDeadNodes(t *testing.T) {
	const n = 15
	m, err := New(Config{N: n, Pretrusted: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(79)
	for k := 0; k < 300; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			_ = m.Submit(reputation.Report{Rater: i, Ratee: j, Value: rng.Float64()})
		}
	}
	s := sim.New()
	net := overlay.NewNetwork(s, sim.NewRNG(80), n, overlay.Config{})
	net.Kill(7)
	net.Kill(8)
	res, err := m.RunDistributed(net, 150)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 || res.Messages == 0 {
		t.Fatalf("run did nothing: %+v", res)
	}
	for p := 0; p < n; p++ {
		if v := m.Score(p); v < 0 || v > 1 {
			t.Fatalf("score[%d] = %v out of range", p, v)
		}
	}
}
