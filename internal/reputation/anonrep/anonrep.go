// Package anonrep implements an anonymity-preserving reputation mechanism
// in the spirit of the works the paper cites in §2.2 ([2] Androulaki et
// al., "Reputation systems for anonymous networks", PETS 2008; [4]
// Bethencourt et al., "Signatures of Reputation"): feedback is filed
// against rotating pseudonyms rather than identities, and reputation is
// carried across pseudonym changes through a bank that quantizes scores to
// coarse levels and adds calibrated noise, so that an observer cannot link
// a peer's new pseudonym to its old one by matching reputation values.
//
// The mechanism makes the paper's reputation/privacy trade-off directly
// measurable: more transfer noise and coarser levels mean less linkability
// (better anonymity) but a less accurate reputation signal.
package anonrep

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/crypto"
	"repro/internal/metrics"
	"repro/internal/reputation"
	"repro/internal/sim"
)

// Config parameterizes the mechanism.
type Config struct {
	// N is the number of peers.
	N int
	// Granularity is the score quantization step used when carrying
	// reputation across epochs (default 0.1): coarse levels are the
	// anonymity-set mechanism.
	Granularity float64
	// Noise is the standard deviation of the Gaussian perturbation added
	// to carried reputation (default 0.05).
	Noise float64
	// PriorStrength is how many ratings the carried score counts as when
	// blended with the new epoch's ratings (default 4).
	PriorStrength float64
	// Seed derives the mechanism's random stream (pseudonym seeds and
	// transfer noise).
	Seed uint64
}

func (c Config) withDefaults() (Config, error) {
	if c.N <= 0 {
		return c, fmt.Errorf("anonrep: N must be positive, got %d", c.N)
	}
	if c.Granularity == 0 {
		c.Granularity = 0.1
	}
	if c.Granularity < 0 || c.Granularity > 1 {
		return c, fmt.Errorf("anonrep: granularity %v out of (0,1]", c.Granularity)
	}
	if c.Noise < 0 {
		return c, fmt.Errorf("anonrep: negative noise %v", c.Noise)
	}
	if c.PriorStrength <= 0 {
		c.PriorStrength = 4
	}
	return c, nil
}

// account is the per-pseudonym reputation state at the bank.
type account struct {
	base    float64 // carried reputation
	hasBase bool
	sum     float64 // this epoch's ratings
	count   int
}

func (a *account) score(prior float64) float64 {
	if !a.hasBase && a.count == 0 {
		return 0.5
	}
	if !a.hasBase {
		return a.sum / float64(a.count)
	}
	return (a.base*prior + a.sum) / (prior + float64(a.count))
}

// Mechanism is the pseudonymous reputation engine.
type Mechanism struct {
	cfg   Config //trustlint:derived configuration, identical by construction on restore
	rng   *sim.RNG
	nyms  []*crypto.PseudonymChain
	cur   []string            // current pseudonym per peer
	accts map[string]*account // bank accounts, by pseudonym
	// acctOf[p] aliases accts[cur[p]]: the hot paths (Submit, Compute,
	// TrustworthyFraction) index by peer id without hashing pseudonyms.
	acctOf []*account //trustlint:derived alias index rebuilt from cur/accts by restore
	epoch  int
	// lastTransfer records, for the most recent epoch change, the
	// (oldScore, carriedScore) pair per peer — the adversary's view used
	// by LinkabilityAdvantage.
	lastTransfer []transfer
	scores       []float64
	dirty        bool
	// dirtyPeers tracks ratees touched since the last Compute; allDirty
	// forces a full refresh (epoch rotation re-bases every account, and a
	// restored snapshot does not say which cached scores are stale).
	dirtyPeers metrics.DirtySet //trustlint:derived restore resets it and sets allDirty, forcing a full cache rebuild
	allDirty   bool             //trustlint:derived set by restore, consumed by the next Compute
}

type transfer struct {
	peer    int
	oldObs  float64 // score observable on the old pseudonym
	carried float64 // score observable on the new pseudonym
}

var _ reputation.Mechanism = (*Mechanism)(nil)
var _ reputation.CommunityAssessor = (*Mechanism)(nil)

// New builds the mechanism.
func New(cfg Config) (*Mechanism, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m := &Mechanism{
		cfg:   cfg,
		rng:   sim.NewRNG(cfg.Seed ^ 0xa17e5),
		nyms:  make([]*crypto.PseudonymChain, cfg.N),
		cur:   make([]string, cfg.N),
		accts: make(map[string]*account),
	}
	m.acctOf = make([]*account, cfg.N)
	for i := 0; i < cfg.N; i++ {
		m.nyms[i] = crypto.NewPseudonymChain(crypto.SeedFromUint64(cfg.Seed*7919 + uint64(i)))
		m.cur[i] = m.nyms[i].Current()
		m.accts[m.cur[i]] = &account{}
		m.acctOf[i] = m.accts[m.cur[i]]
	}
	m.scores = make([]float64, cfg.N)
	for i := range m.scores {
		m.scores[i] = 0.5
	}
	return m, nil
}

// Name implements reputation.Mechanism.
func (*Mechanism) Name() string { return "anonrep" }

// Epoch returns the current pseudonym epoch.
func (m *Mechanism) Epoch() int { return m.epoch }

// Pseudonym returns a peer's current pseudonym (what raters see).
func (m *Mechanism) Pseudonym(peer int) string {
	if peer < 0 || peer >= len(m.cur) {
		return ""
	}
	return m.cur[peer]
}

// Submit implements reputation.Mechanism: the rating is credited to the
// ratee's *current pseudonym* account.
func (m *Mechanism) Submit(r reputation.Report) error {
	if r.Rater < 0 || r.Rater >= m.cfg.N || r.Ratee < 0 || r.Ratee >= m.cfg.N {
		return fmt.Errorf("anonrep: report %d->%d out of range", r.Rater, r.Ratee)
	}
	if r.Rater == r.Ratee {
		return fmt.Errorf("anonrep: self-rating by %d rejected", r.Rater)
	}
	v := r.Value
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	acct := m.acctOf[r.Ratee]
	acct.sum += v
	acct.count++
	m.dirty = true
	m.dirtyPeers.Mark(r.Ratee)
	return nil
}

func (m *Mechanism) quantize(v float64) float64 {
	g := m.cfg.Granularity
	q := math.Round(v/g) * g
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// NextEpoch rotates every peer's pseudonym and carries its reputation to
// the new account through the bank: quantized to Granularity levels and
// perturbed with Gaussian noise. The pre-rotation observable scores are
// remembered as the adversary's view.
func (m *Mechanism) NextEpoch() {
	m.lastTransfer = m.lastTransfer[:0]
	for p := 0; p < m.cfg.N; p++ {
		old := m.acctOf[p]
		oldObs := m.quantize(old.score(m.cfg.PriorStrength))
		carried := m.quantize(old.score(m.cfg.PriorStrength) + m.rng.NormFloat64()*m.cfg.Noise)
		nym, _ := m.nyms[p].Advance()
		m.cur[p] = nym
		m.accts[nym] = &account{base: carried, hasBase: true}
		m.acctOf[p] = m.accts[nym]
		m.lastTransfer = append(m.lastTransfer, transfer{peer: p, oldObs: oldObs, carried: carried})
	}
	m.epoch++
	m.dirty = true
	m.allDirty = true // every account was re-based
}

// Compute implements reputation.Mechanism. Between epoch rotations only the
// peers rated since the last Compute are re-scored: each cached score is a
// pure function of the peer's own account, so skipping untouched peers is
// bit-identical to the full rescan.
func (m *Mechanism) Compute() int {
	if !m.dirty {
		return 0
	}
	if m.allDirty {
		for p := 0; p < m.cfg.N; p++ {
			m.scores[p] = m.acctOf[p].score(m.cfg.PriorStrength)
		}
		m.allDirty = false
	} else {
		for _, p := range m.dirtyPeers.Sorted() {
			m.scores[p] = m.acctOf[p].score(m.cfg.PriorStrength)
		}
	}
	m.dirtyPeers.Reset()
	m.dirty = false
	return 1
}

// Score implements reputation.Mechanism.
func (m *Mechanism) Score(peer int) float64 {
	if peer < 0 || peer >= len(m.scores) {
		return 0
	}
	return m.scores[peer]
}

// Scores implements reputation.Mechanism.
func (m *Mechanism) Scores() []float64 {
	out := make([]float64, len(m.scores))
	copy(out, m.scores)
	return out
}

// ScoresView implements reputation.ScoresViewer: the score cache without
// the copy. Read-only; valid until the next Compute or restore.
func (m *Mechanism) ScoresView() []float64 { return m.scores }

var _ reputation.ScoresViewer = (*Mechanism)(nil)

// TrustworthyFraction implements reputation.CommunityAssessor.
func (m *Mechanism) TrustworthyFraction() float64 {
	rated, positive := 0, 0
	for p := 0; p < m.cfg.N; p++ {
		acct := m.acctOf[p]
		if acct.count == 0 && !acct.hasBase {
			continue
		}
		rated++
		if acct.score(m.cfg.PriorStrength) >= 0.5 {
			positive++
		}
	}
	if rated == 0 {
		return 1
	}
	return float64(positive) / float64(rated)
}

// LinkabilityAdvantage plays the linking adversary of the cited works
// against the most recent epoch change: the adversary sees the multiset of
// pre-rotation scores (old pseudonyms) and post-rotation carried scores
// (new pseudonyms) and greedily matches nearest values. The result is the
// fraction of peers correctly linked; 1/N is random guessing, 1.0 is total
// linkability. It returns 0 if no epoch change happened yet.
func (m *Mechanism) LinkabilityAdvantage() float64 {
	n := len(m.lastTransfer)
	if n == 0 {
		return 0
	}
	// Adversary's inputs: two shuffled lists of (pseudonym, score). The
	// simulation keeps peer identity only to grade the adversary.
	olds := make([]transfer, n)
	copy(olds, m.lastTransfer)
	news := make([]transfer, n)
	copy(news, m.lastTransfer)
	sort.Slice(olds, func(i, j int) bool {
		if olds[i].oldObs != olds[j].oldObs {
			return olds[i].oldObs < olds[j].oldObs
		}
		return olds[i].peer < olds[j].peer
	})
	sort.Slice(news, func(i, j int) bool {
		if news[i].carried != news[j].carried {
			return news[i].carried < news[j].carried
		}
		return news[i].peer < news[j].peer
	})
	// Optimal-in-expectation assignment for 1-D values is the sorted
	// pairing; within ties the adversary can only guess, which we model by
	// a deterministic shuffle of the tied block.
	correct := 0
	i := 0
	for i < n {
		j := i
		for j < n && olds[j].oldObs == olds[i].oldObs {
			j++
		}
		// Tied block [i, j): shuffle the news block to model guessing.
		block := make([]transfer, j-i)
		copy(block, news[i:j])
		m.rng.Shuffle(len(block), func(a, b int) { block[a], block[b] = block[b], block[a] })
		for k, nw := range block {
			if olds[i+k].peer == nw.peer {
				correct++
			}
		}
		i = j
	}
	return float64(correct) / float64(n)
}
