package anonrep

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/crypto"
	"repro/internal/reputation"
	"repro/internal/sim"
)

// accountState mirrors the unexported bank account for serialization.
type accountState struct {
	Base    float64
	HasBase bool
	Sum     float64
	Count   int
}

// transferState mirrors the adversary's view of one pseudonym transfer.
type transferState struct {
	Peer    int
	OldObs  float64
	Carried float64
}

// mechanismState is the gob-serialized mutable state of the mechanism.
type mechanismState struct {
	RNG          sim.RNGState
	Nyms         []crypto.ChainState
	Cur          []string
	Accts        map[string]accountState
	Epoch        int
	LastTransfer []transferState
	Scores       []float64
	Dirty        bool
}

// MechanismState implements reputation.Snapshotter.
func (m *Mechanism) MechanismState() ([]byte, error) {
	st := mechanismState{
		RNG:    m.rng.State(),
		Nyms:   make([]crypto.ChainState, len(m.nyms)),
		Cur:    append([]string(nil), m.cur...),
		Accts:  make(map[string]accountState, len(m.accts)),
		Epoch:  m.epoch,
		Scores: append([]float64(nil), m.scores...),
		Dirty:  m.dirty,
	}
	for i, n := range m.nyms {
		st.Nyms[i] = n.State()
	}
	for nym, a := range m.accts {
		st.Accts[nym] = accountState{Base: a.base, HasBase: a.hasBase, Sum: a.sum, Count: a.count}
	}
	for _, t := range m.lastTransfer {
		st.LastTransfer = append(st.LastTransfer, transferState{Peer: t.peer, OldObs: t.oldObs, Carried: t.carried})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("anonrep: encode state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreMechanismState implements reputation.Snapshotter.
func (m *Mechanism) RestoreMechanismState(data []byte) error {
	var st mechanismState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("anonrep: decode state: %w", err)
	}
	if len(st.Scores) != m.cfg.N || len(st.Nyms) != m.cfg.N || len(st.Cur) != m.cfg.N {
		return fmt.Errorf("anonrep: state for %d peers, want %d", len(st.Scores), m.cfg.N)
	}
	m.rng.SetState(st.RNG)
	for i := range m.nyms {
		m.nyms[i].SetState(st.Nyms[i])
	}
	m.cur = append([]string(nil), st.Cur...)
	m.accts = make(map[string]*account, len(st.Accts))
	for nym, a := range st.Accts {
		m.accts[nym] = &account{base: a.Base, hasBase: a.HasBase, sum: a.Sum, count: a.Count}
	}
	m.acctOf = make([]*account, m.cfg.N)
	for p := 0; p < m.cfg.N; p++ {
		acct := m.accts[m.cur[p]]
		if acct == nil {
			return fmt.Errorf("anonrep: state has no account for peer %d's pseudonym", p)
		}
		m.acctOf[p] = acct
	}
	m.epoch = st.Epoch
	m.lastTransfer = nil
	for _, t := range st.LastTransfer {
		m.lastTransfer = append(m.lastTransfer, transfer{peer: t.Peer, oldObs: t.OldObs, carried: t.Carried})
	}
	m.scores = append([]float64(nil), st.Scores...)
	m.dirty = st.Dirty
	// The snapshot does not record which cached scores are stale; the next
	// Compute rebuilds the cache in full.
	m.dirtyPeers.Reset()
	m.allDirty = true
	return nil
}

var _ reputation.Snapshotter = (*Mechanism)(nil)
