package anonrep

import (
	"math"
	"testing"

	"repro/internal/reputation"
	"repro/internal/sim"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := New(Config{N: 5, Granularity: 2}); err == nil {
		t.Fatal("granularity > 1 accepted")
	}
	if _, err := New(Config{N: 5, Noise: -1}); err == nil {
		t.Fatal("negative noise accepted")
	}
}

func TestScoresAggregateUnderPseudonym(t *testing.T) {
	m, err := New(Config{N: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := m.Submit(reputation.Report{Rater: 1, Ratee: 0, Value: 0.9}); err != nil {
			t.Fatal(err)
		}
	}
	m.Compute()
	if got := m.Score(0); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("score = %v, want 0.9", got)
	}
	if m.Score(2) != 0.5 {
		t.Fatal("unrated peer not neutral")
	}
}

func TestSubmitValidation(t *testing.T) {
	m, err := New(Config{N: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(reputation.Report{Rater: 0, Ratee: 0}); err == nil {
		t.Fatal("self-rating accepted")
	}
	if err := m.Submit(reputation.Report{Rater: 0, Ratee: 9}); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestEpochRotatesPseudonymsAndCarriesReputation(t *testing.T) {
	m, err := New(Config{N: 4, Seed: 2, Noise: 0, Granularity: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := m.Submit(reputation.Report{Rater: 1, Ratee: 0, Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	m.Compute()
	before := m.Score(0)
	nym := m.Pseudonym(0)
	m.NextEpoch()
	if m.Pseudonym(0) == nym {
		t.Fatal("pseudonym did not rotate")
	}
	if m.Epoch() != 1 {
		t.Fatalf("epoch = %d", m.Epoch())
	}
	m.Compute()
	after := m.Score(0)
	// Noise-free carry: the new account's base equals the quantized old
	// score.
	if math.Abs(after-m.quantize(before)) > 1e-9 {
		t.Fatalf("carried score %v vs quantized old %v", after, m.quantize(before))
	}
}

func TestNoiseFreeFineGrainedIsFullyLinkable(t *testing.T) {
	m, err := New(Config{N: 20, Seed: 3, Noise: 0, Granularity: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	// Give every peer a distinct score.
	rng := sim.NewRNG(4)
	for p := 0; p < 20; p++ {
		v := 0.05 + 0.045*float64(p)
		for k := 0; k < 5; k++ {
			rater := rng.Intn(20)
			if rater == p {
				continue
			}
			_ = m.Submit(reputation.Report{Rater: rater, Ratee: p, Value: v})
		}
	}
	m.NextEpoch()
	if adv := m.LinkabilityAdvantage(); adv < 0.9 {
		t.Fatalf("noise-free fine-grained linkability = %v, want ~1", adv)
	}
}

func TestCoarseLevelsReduceLinkability(t *testing.T) {
	build := func(gran, noise float64) float64 {
		m, err := New(Config{N: 40, Seed: 5, Noise: noise, Granularity: gran})
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(6)
		for p := 0; p < 40; p++ {
			v := rng.Float64()
			for k := 0; k < 5; k++ {
				rater := rng.Intn(40)
				if rater == p {
					continue
				}
				_ = m.Submit(reputation.Report{Rater: rater, Ratee: p, Value: v})
			}
		}
		m.NextEpoch()
		return m.LinkabilityAdvantage()
	}
	fine := build(0.001, 0)
	coarse := build(0.5, 0.1)
	if coarse >= fine {
		t.Fatalf("coarse+noisy linkability %v not below fine %v", coarse, fine)
	}
	if coarse > 0.5 {
		t.Fatalf("coarse+noisy linkability = %v, want anonymity-set effect", coarse)
	}
}

func TestLinkabilityZeroBeforeEpochChange(t *testing.T) {
	m, err := New(Config{N: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if m.LinkabilityAdvantage() != 0 {
		t.Fatal("advantage nonzero before any epoch change")
	}
}

func TestTrustworthyFraction(t *testing.T) {
	m, err := New(Config{N: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.TrustworthyFraction() != 1 {
		t.Fatal("empty mechanism fraction != 1")
	}
	for i := 0; i < 5; i++ {
		_ = m.Submit(reputation.Report{Rater: 0, Ratee: 1, Value: 0.9})
		_ = m.Submit(reputation.Report{Rater: 0, Ratee: 2, Value: 0.1})
	}
	got := m.TrustworthyFraction()
	// Peer 1 trustworthy, peer 2 not; peers 0,3 unrated.
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("fraction = %v, want 0.5", got)
	}
}

func TestScoreBoundsAndClamping(t *testing.T) {
	m, err := New(Config{N: 3, Seed: 9, Noise: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	_ = m.Submit(reputation.Report{Rater: 0, Ratee: 1, Value: 5})  // clamped to 1
	_ = m.Submit(reputation.Report{Rater: 0, Ratee: 2, Value: -5}) // clamped to 0
	for e := 0; e < 10; e++ {
		m.NextEpoch()
	}
	m.Compute()
	for p := 0; p < 3; p++ {
		if s := m.Score(p); s < 0 || s > 1 {
			t.Fatalf("score %v out of range after noisy epochs", s)
		}
	}
	if m.Score(-1) != 0 || m.Score(9) != 0 {
		t.Fatal("out-of-range score != 0")
	}
	if m.Pseudonym(-1) != "" {
		t.Fatal("out-of-range pseudonym not empty")
	}
}

func TestWorksAsWorkloadMechanism(t *testing.T) {
	// Interface sanity: anonrep slots into the generic machinery.
	var mech reputation.Mechanism
	m, err := New(Config{N: 10, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	mech = m
	if mech.Name() != "anonrep" {
		t.Fatal("name")
	}
	if err := mech.Submit(reputation.Report{Rater: 0, Ratee: 1, Value: 0.8}); err != nil {
		t.Fatal(err)
	}
	if mech.Compute() != 1 {
		t.Fatal("compute rounds")
	}
	if mech.Compute() != 0 {
		t.Fatal("clean compute re-ran")
	}
}
