package anonrep

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/reputation"
	"repro/internal/sim"
)

// feed submits `count` random valid reports to every mechanism, drawing one
// shared stream so all see identical input.
func feed(t *testing.T, rng *sim.RNG, count int, ms ...*Mechanism) {
	t.Helper()
	n := ms[0].cfg.N
	for k := 0; k < count; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		r := reputation.Report{Rater: i, Ratee: j, Value: rng.Float64()}
		for _, m := range ms {
			if err := m.Submit(r); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestIncrementalComputeMatchesFull pins the dirty-set refresh: a mechanism
// that computed mid-stream (refreshing only the peers rated since the last
// Compute) must match, bit for bit, one that saw all reports before a single
// Compute. Pseudonym epochs re-base every account, which flips the
// mechanism to a full refresh (allDirty) — both paths are exercised.
func TestIncrementalComputeMatchesFull(t *testing.T) {
	const n = 30
	cfg := Config{N: n, Seed: 4, Noise: 0.2}
	inc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(21)
	feed(t, rng, 200, inc, full)
	inc.Compute() // partial refresh
	feed(t, rng, 100, inc, full)
	inc.NextEpoch() // re-bases every account: forces the allDirty path
	full.NextEpoch()
	feed(t, rng, 100, inc, full)
	inc.Compute()
	feed(t, rng, 100, inc, full)
	inc.Compute()
	full.Compute()
	for p := 0; p < n; p++ {
		if inc.Score(p) != full.Score(p) {
			t.Fatalf("score[%d]: incremental %v != full %v", p, inc.Score(p), full.Score(p))
		}
	}
}

// TestSnapshotRoundTripMidDirty snapshots with dirty peers pending (reports
// after the last Compute) and checks restore-then-run equals the
// uninterrupted run bit for bit, epoch rotations included.
func TestSnapshotRoundTripMidDirty(t *testing.T) {
	const n = 25
	cfg := Config{N: n, Seed: 6, Noise: 0.1, Granularity: 0.05}
	orig, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(33)
	feed(t, rng, 200, orig)
	orig.Compute()
	orig.NextEpoch()
	feed(t, rng, 80, orig) // pending dirty peers at snapshot time

	blob, err := orig.MechanismState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreMechanismState(blob); err != nil {
		t.Fatal(err)
	}

	feed(t, rng, 100, orig, restored)
	orig.Compute()
	restored.Compute()
	orig.NextEpoch() // epoch noise draws must continue from the same RNG state
	restored.NextEpoch()
	feed(t, rng, 60, orig, restored)
	orig.Compute()
	restored.Compute()
	for p := 0; p < n; p++ {
		if orig.Score(p) != restored.Score(p) {
			t.Fatalf("score[%d]: %v != %v after restore-then-run", p, orig.Score(p), restored.Score(p))
		}
	}
	if a, b := orig.TrustworthyFraction(), restored.TrustworthyFraction(); a != b {
		t.Fatalf("trustworthy fraction diverged: %v != %v", a, b)
	}
	// The blobs cannot be compared byte-wise (gob serializes the account map
	// in randomized order), so decode and compare structurally.
	s1, s2 := decodeState(t, orig), decodeState(t, restored)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("states diverged after restore-then-run:\n%+v\n%+v", s1, s2)
	}
}

func decodeState(t *testing.T, m *Mechanism) mechanismState {
	t.Helper()
	blob, err := m.MechanismState()
	if err != nil {
		t.Fatal(err)
	}
	var st mechanismState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}
