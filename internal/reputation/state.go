package reputation

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Snapshotter is implemented by mechanisms whose mutable state can be
// captured as an opaque blob and later restored into a freshly constructed
// mechanism with the same configuration. It is the seam the engine-wide
// snapshot/resume feature runs through: restore-then-run must be bit-for-bit
// identical to an uninterrupted run.
//
// Mechanisms without mutable state (the None baseline) return an empty blob.
type Snapshotter interface {
	// MechanismState serializes the mechanism's mutable state.
	MechanismState() ([]byte, error)
	// RestoreMechanismState restores a blob captured from a mechanism with
	// identical configuration.
	RestoreMechanismState(data []byte) error
}

// LocalTrustEntry is one (rater, ratee) aggregate of a serialized
// local-trust matrix.
type LocalTrustEntry struct {
	I, J       int32
	Sat, Unsat int32
}

// LocalTrustState is the serializable state of a LocalTrust matrix: the
// sparse entry list (sorted by rater, then ratee, so equal matrices encode
// to equal blobs) plus the dirty-row set, so a restored mechanism knows
// which rows still await rematerialization.
type LocalTrustState struct {
	N       int
	Entries []LocalTrustEntry
	Dirty   []int32
}

// State captures the matrix.
func (l *LocalTrust) State() LocalTrustState {
	st := LocalTrustState{N: l.n}
	for i, row := range l.rows {
		for j, c := range row {
			st.Entries = append(st.Entries, LocalTrustEntry{I: int32(i), J: j, Sat: c.sat, Unsat: c.unsat})
		}
	}
	// Map iteration order is random; canonicalize.
	sort.Slice(st.Entries, func(a, b int) bool {
		if st.Entries[a].I != st.Entries[b].I {
			return st.Entries[a].I < st.Entries[b].I
		}
		return st.Entries[a].J < st.Entries[b].J
	})
	for i := range l.dirty {
		st.Dirty = append(st.Dirty, i)
	}
	sort.Slice(st.Dirty, func(a, b int) bool { return st.Dirty[a] < st.Dirty[b] })
	return st
}

// SetState restores a captured matrix of the same dimension, replacing the
// current contents and dirty set.
func (l *LocalTrust) SetState(st LocalTrustState) error {
	if st.N != l.n {
		return fmt.Errorf("reputation: local-trust state for %d peers, want %d", st.N, l.n)
	}
	rows := make([]map[int32]cell, l.n)
	for _, e := range st.Entries {
		if e.I < 0 || int(e.I) >= l.n || e.J < 0 || int(e.J) >= l.n {
			return fmt.Errorf("reputation: local-trust state entry %d->%d out of range [0,%d)", e.I, e.J, l.n)
		}
		if rows[e.I] == nil {
			rows[e.I] = make(map[int32]cell)
		}
		rows[e.I][e.J] = cell{sat: e.Sat, unsat: e.Unsat}
	}
	dirty := make(map[int32]struct{}, len(st.Dirty))
	for _, i := range st.Dirty {
		if i < 0 || int(i) >= l.n {
			return fmt.Errorf("reputation: local-trust dirty row %d out of range [0,%d)", i, l.n)
		}
		dirty[i] = struct{}{}
	}
	l.rows = rows
	l.dirty = dirty
	return nil
}

// GathererState is the serializable state of a Gatherer, including the
// position of its private disclosure-draw stream.
type GathererState struct {
	RNG        sim.RNGState
	Disclosure []float64
	SharedBy   map[int]int64
	Gathered   int64
	Withheld   int64
}

// State captures the gatherer.
func (g *Gatherer) State() GathererState {
	st := GathererState{
		RNG:        g.rng.State(),
		Disclosure: append([]float64(nil), g.disclosure...),
		SharedBy:   make(map[int]int64, len(g.sharedBy)),
		Gathered:   g.Gathered,
		Withheld:   g.Withheld,
	}
	for k, v := range g.sharedBy {
		st.SharedBy[k] = v
	}
	return st
}

// RestoreGatherer rebuilds a gatherer from a captured state.
func RestoreGatherer(st GathererState) *Gatherer {
	rng := sim.NewRNG(0)
	rng.SetState(st.RNG)
	g := NewGatherer(rng, st.Disclosure)
	g.Gathered = st.Gathered
	g.Withheld = st.Withheld
	for k, v := range st.SharedBy {
		g.sharedBy[k] = v
	}
	return g
}

// MechanismState implements Snapshotter: the baseline has no mutable state.
func (*None) MechanismState() ([]byte, error) { return nil, nil }

// RestoreMechanismState implements Snapshotter.
func (*None) RestoreMechanismState([]byte) error { return nil }

var _ Snapshotter = (*None)(nil)
