package reputation

import (
	"fmt"

	"repro/internal/sim"
)

// Snapshotter is implemented by mechanisms whose mutable state can be
// captured as an opaque blob and later restored into a freshly constructed
// mechanism with the same configuration. It is the seam the engine-wide
// snapshot/resume feature runs through: restore-then-run must be bit-for-bit
// identical to an uninterrupted run.
//
// Mechanisms without mutable state (the None baseline) return an empty blob.
type Snapshotter interface {
	// MechanismState serializes the mechanism's mutable state.
	MechanismState() ([]byte, error)
	// RestoreMechanismState restores a blob captured from a mechanism with
	// identical configuration.
	RestoreMechanismState(data []byte) error
}

// LocalTrustState is the serializable state of a LocalTrust matrix.
type LocalTrustState struct {
	N          int
	Sat, Unsat [][]int32
}

// State captures the matrix.
func (l *LocalTrust) State() LocalTrustState {
	st := LocalTrustState{N: l.n, Sat: make([][]int32, l.n), Unsat: make([][]int32, l.n)}
	for i := 0; i < l.n; i++ {
		st.Sat[i] = append([]int32(nil), l.sat[i]...)
		st.Unsat[i] = append([]int32(nil), l.unsat[i]...)
	}
	return st
}

// SetState restores a captured matrix of the same dimension.
func (l *LocalTrust) SetState(st LocalTrustState) error {
	if st.N != l.n || len(st.Sat) != l.n || len(st.Unsat) != l.n {
		return fmt.Errorf("reputation: local-trust state for %d peers, want %d", st.N, l.n)
	}
	for i := 0; i < l.n; i++ {
		if len(st.Sat[i]) != l.n || len(st.Unsat[i]) != l.n {
			return fmt.Errorf("reputation: ragged local-trust state row %d", i)
		}
		copy(l.sat[i], st.Sat[i])
		copy(l.unsat[i], st.Unsat[i])
	}
	return nil
}

// GathererState is the serializable state of a Gatherer, including the
// position of its private disclosure-draw stream.
type GathererState struct {
	RNG        sim.RNGState
	Disclosure []float64
	SharedBy   map[int]int64
	Gathered   int64
	Withheld   int64
}

// State captures the gatherer.
func (g *Gatherer) State() GathererState {
	st := GathererState{
		RNG:        g.rng.State(),
		Disclosure: append([]float64(nil), g.disclosure...),
		SharedBy:   make(map[int]int64, len(g.sharedBy)),
		Gathered:   g.Gathered,
		Withheld:   g.Withheld,
	}
	for k, v := range g.sharedBy {
		st.SharedBy[k] = v
	}
	return st
}

// RestoreGatherer rebuilds a gatherer from a captured state.
func RestoreGatherer(st GathererState) *Gatherer {
	rng := sim.NewRNG(0)
	rng.SetState(st.RNG)
	g := NewGatherer(rng, st.Disclosure)
	g.Gathered = st.Gathered
	g.Withheld = st.Withheld
	for k, v := range st.SharedBy {
		g.sharedBy[k] = v
	}
	return g
}

// MechanismState implements Snapshotter: the baseline has no mutable state.
func (*None) MechanismState() ([]byte, error) { return nil, nil }

// RestoreMechanismState implements Snapshotter.
func (*None) RestoreMechanismState([]byte) error { return nil }

var _ Snapshotter = (*None)(nil)
