package powertrust

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/reputation"
)

// feedbackEntry flattens one (rater, ratee) aggregate for serialization.
type feedbackEntry struct {
	Rater, Ratee int
	Sum          float64
	Count        int
}

// mechanismState is the gob-serialized mutable state of the mechanism. The
// CSR is derived state: it is rematerialized from the feedback graph on the
// first Compute after a restore (materialization is pure, so restore-then-
// run matches an uninterrupted run bit for bit). DirtyRows carries the
// pending incremental-rebuild set for representation fidelity.
type mechanismState struct {
	Feedback  []feedbackEntry
	Scores    []float64
	Power     []int
	Dirty     bool
	DirtyRows []int32
	// Convergence diagnostics of the most recent iterative Compute, so
	// restored runs report the same diagnostics an uninterrupted run would.
	Conv    reputation.Convergence
	HasConv bool
}

// MechanismState implements reputation.Snapshotter.
func (m *Mechanism) MechanismState() ([]byte, error) {
	st := mechanismState{
		Scores:  append([]float64(nil), m.scores...),
		Power:   append([]int(nil), m.power...),
		Dirty:   m.dirty,
		Conv:    m.lastConv,
		HasConv: m.hasConv,
	}
	for i := range m.dirtyRows {
		st.DirtyRows = append(st.DirtyRows, i)
	}
	sort.Slice(st.DirtyRows, func(a, b int) bool { return st.DirtyRows[a] < st.DirtyRows[b] })
	for i, row := range m.feedback {
		for j, p := range row {
			st.Feedback = append(st.Feedback, feedbackEntry{Rater: i, Ratee: j, Sum: p.sum, Count: p.count})
		}
	}
	// Map iteration order is random; canonicalize so equal states encode to
	// equal blobs.
	sort.Slice(st.Feedback, func(a, b int) bool {
		if st.Feedback[a].Rater != st.Feedback[b].Rater {
			return st.Feedback[a].Rater < st.Feedback[b].Rater
		}
		return st.Feedback[a].Ratee < st.Feedback[b].Ratee
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("powertrust: encode state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreMechanismState implements reputation.Snapshotter.
func (m *Mechanism) RestoreMechanismState(data []byte) error {
	var st mechanismState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("powertrust: decode state: %w", err)
	}
	if len(st.Scores) != m.cfg.N {
		return fmt.Errorf("powertrust: state for %d peers, want %d", len(st.Scores), m.cfg.N)
	}
	feedback := make([]map[int]*pair, m.cfg.N)
	for _, e := range st.Feedback {
		if e.Rater < 0 || e.Rater >= m.cfg.N || e.Ratee < 0 || e.Ratee >= m.cfg.N {
			return fmt.Errorf("powertrust: state entry %d->%d out of range [0,%d)", e.Rater, e.Ratee, m.cfg.N)
		}
		if feedback[e.Rater] == nil {
			feedback[e.Rater] = make(map[int]*pair)
		}
		feedback[e.Rater][e.Ratee] = &pair{sum: e.Sum, count: e.Count}
	}
	dirtyRows := make(map[int32]struct{}, len(st.DirtyRows))
	for _, i := range st.DirtyRows {
		if i < 0 || int(i) >= m.cfg.N {
			return fmt.Errorf("powertrust: dirty row %d out of range [0,%d)", i, m.cfg.N)
		}
		dirtyRows[i] = struct{}{}
	}
	m.feedback = feedback
	copy(m.scores, st.Scores)
	m.refreshNorm()
	m.power = append([]int(nil), st.Power...)
	m.dirty = st.Dirty
	m.dirtyRows = dirtyRows
	m.materialized = false
	m.lastConv = st.Conv
	m.hasConv = st.HasConv
	return nil
}

var _ reputation.Snapshotter = (*Mechanism)(nil)
