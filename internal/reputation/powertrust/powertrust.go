// Package powertrust implements PowerTrust (Zhou & Hwang, TPDS 2007), the
// third reputation baseline the paper cites: it builds a trust overlay
// network (TON) from the feedback graph, elects the most-reputable "power
// nodes", and aggregates global reputation with a look-ahead random walk
// (LRW) that converges in fewer rounds than plain power iteration.
package powertrust

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/reputation"
)

// Config parameterizes the mechanism.
type Config struct {
	// N is the number of peers.
	N int
	// M is the number of power nodes (default max(1, N/20)).
	M int
	// Alpha is the greedy-jump weight toward power nodes (default 0.15).
	Alpha float64
	// Epsilon is the L1 convergence threshold, default 1e-6.
	Epsilon float64
	// MaxIter bounds the iteration, default 200.
	MaxIter int
	// LookAhead enables the look-ahead random walk (default on via
	// NewDefault; set false to ablate).
	LookAhead bool
}

func (c Config) withDefaults() (Config, error) {
	if c.N <= 0 {
		return c, fmt.Errorf("powertrust: N must be positive, got %d", c.N)
	}
	if c.M <= 0 {
		c.M = c.N / 20
		if c.M < 1 {
			c.M = 1
		}
	}
	if c.M > c.N {
		c.M = c.N
	}
	if c.Alpha == 0 {
		c.Alpha = 0.15
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return c, fmt.Errorf("powertrust: alpha %v out of [0,1]", c.Alpha)
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-6
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 200
	}
	return c, nil
}

// pair aggregates ratings from one rater to one ratee.
type pair struct {
	sum   float64
	count int
}

// Mechanism is the PowerTrust scoring engine.
type Mechanism struct {
	cfg      Config
	feedback []map[int]*pair // feedback[i][j]: i's ratings of j
	scores   []float64
	power    []int
	dirty    bool
}

var _ reputation.Mechanism = (*Mechanism)(nil)

// New builds the mechanism with look-ahead enabled by default.
func New(cfg Config) (*Mechanism, error) {
	lookAheadSet := cfg.LookAhead
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if !lookAheadSet {
		cfg.LookAhead = true
	}
	m := &Mechanism{cfg: cfg, feedback: make([]map[int]*pair, cfg.N)}
	m.scores = make([]float64, cfg.N)
	for i := range m.scores {
		m.scores[i] = 1 / float64(cfg.N)
	}
	return m, nil
}

// NewPlain builds the mechanism with look-ahead disabled (the ablation
// baseline: plain first-order random walk).
func NewPlain(cfg Config) (*Mechanism, error) {
	cfg.LookAhead = false
	cfgd, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cfgd.LookAhead = false
	m := &Mechanism{cfg: cfgd, feedback: make([]map[int]*pair, cfgd.N)}
	m.scores = make([]float64, cfgd.N)
	for i := range m.scores {
		m.scores[i] = 1 / float64(cfgd.N)
	}
	return m, nil
}

// Name implements reputation.Mechanism.
func (m *Mechanism) Name() string {
	if m.cfg.LookAhead {
		return "powertrust"
	}
	return "powertrust-plain"
}

// Submit implements reputation.Mechanism.
func (m *Mechanism) Submit(r reputation.Report) error {
	if r.Rater < 0 || r.Rater >= m.cfg.N || r.Ratee < 0 || r.Ratee >= m.cfg.N {
		return fmt.Errorf("powertrust: report %d->%d out of range [0,%d)", r.Rater, r.Ratee, m.cfg.N)
	}
	if r.Rater == r.Ratee {
		return fmt.Errorf("powertrust: self-rating by %d rejected", r.Rater)
	}
	v := r.Value
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	if m.feedback[r.Rater] == nil {
		m.feedback[r.Rater] = make(map[int]*pair)
	}
	p := m.feedback[r.Rater][r.Ratee]
	if p == nil {
		p = &pair{}
		m.feedback[r.Rater][r.Ratee] = p
	}
	p.sum += v
	p.count++
	m.dirty = true
	return nil
}

// electPowerNodes elects the m most reputable peers as power nodes, per the
// PowerTrust paper ("a small number of the most reputable power nodes").
// On the first election, before any global scores exist, it bootstraps from
// the trust overlay's weighted in-degree (sum of incoming mean ratings) —
// raw rater counts would let heavily-rated bad peers win. Ties break by id.
func (m *Mechanism) electPowerNodes() []int {
	rank := make([]float64, m.cfg.N)
	uniform := 1 / float64(m.cfg.N)
	bootstrapped := true
	for _, s := range m.scores {
		if s > uniform*1.01 || s < uniform*0.99 {
			bootstrapped = false
			break
		}
	}
	if bootstrapped {
		for _, row := range m.feedback {
			for j, p := range row {
				rank[j] += p.sum / float64(p.count)
			}
		}
	} else {
		copy(rank, m.scores)
	}
	ids := make([]int, m.cfg.N)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		if rank[ids[a]] != rank[ids[b]] {
			return rank[ids[a]] > rank[ids[b]]
		}
		return ids[a] < ids[b]
	})
	return ids[:m.cfg.M]
}

// TrustworthyFraction implements reputation.CommunityAssessor: the fraction
// of rated peers whose mean incoming rating is at least 0.5.
func (m *Mechanism) TrustworthyFraction() float64 {
	sums := make([]float64, m.cfg.N)
	counts := make([]int, m.cfg.N)
	for _, row := range m.feedback {
		for j, p := range row {
			sums[j] += p.sum
			counts[j] += p.count
		}
	}
	rated, positive := 0, 0
	for j := 0; j < m.cfg.N; j++ {
		if counts[j] == 0 {
			continue
		}
		rated++
		if sums[j]/float64(counts[j]) >= 0.5 {
			positive++
		}
	}
	if rated == 0 {
		return 1
	}
	return float64(positive) / float64(rated)
}

var _ reputation.CommunityAssessor = (*Mechanism)(nil)

// PowerNodes returns the most recently elected power nodes.
func (m *Mechanism) PowerNodes() []int {
	out := make([]int, len(m.power))
	copy(out, m.power)
	return out
}

// rows materializes the row-normalized feedback matrix R (mean ratings,
// uniform rows for silent peers).
func (m *Mechanism) rows() [][]float64 {
	n := m.cfg.N
	uniform := 1 / float64(n)
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		sum := 0.0
		for j, p := range m.feedback[i] {
			row[j] = p.sum / float64(p.count)
		}
		for _, v := range row { // fixed order: deterministic float rounding
			sum += v
		}
		if sum == 0 {
			for j := range row {
				row[j] = uniform
			}
		} else {
			for j := range row {
				row[j] /= sum
			}
		}
		rows[i] = row
	}
	return rows
}

func applyWalk(rows [][]float64, t, next []float64, alpha float64, jump []float64) {
	n := len(t)
	for j := range next {
		next[j] = 0
	}
	for i := 0; i < n; i++ {
		ti := t[i]
		if ti == 0 {
			continue
		}
		for j, c := range rows[i] {
			if c != 0 {
				next[j] += c * ti
			}
		}
	}
	for j := 0; j < n; j++ {
		next[j] = (1-alpha)*next[j] + alpha*jump[j]
	}
}

// Compute elects power nodes and runs the (look-ahead) random walk until the
// L1 change drops below Epsilon. One look-ahead round applies the walk
// operator twice — each node aggregates its neighbors' own aggregated
// vectors, which is exactly one extra message exchange but halves the round
// count. Returns the number of rounds.
func (m *Mechanism) Compute() int {
	if !m.dirty {
		return 0
	}
	n := m.cfg.N
	m.power = m.electPowerNodes()
	jump := make([]float64, n)
	share := 1 / float64(len(m.power))
	for _, p := range m.power {
		jump[p] = share
	}
	rows := m.rows()
	t := make([]float64, n)
	for i := range t {
		t[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	mid := make([]float64, n)
	rounds := 0
	for ; rounds < m.cfg.MaxIter; rounds++ {
		if m.cfg.LookAhead {
			applyWalk(rows, t, mid, m.cfg.Alpha, jump)
			applyWalk(rows, mid, next, m.cfg.Alpha, jump)
		} else {
			applyWalk(rows, t, next, m.cfg.Alpha, jump)
		}
		diff := 0.0
		for j := 0; j < n; j++ {
			diff += math.Abs(next[j] - t[j])
		}
		t, next = next, t
		if diff < m.cfg.Epsilon {
			rounds++
			break
		}
	}
	m.scores = t
	m.dirty = false
	return rounds
}

// Raw returns the stationary distribution (sums to ~1).
func (m *Mechanism) Raw() []float64 {
	out := make([]float64, len(m.scores))
	copy(out, m.scores)
	return out
}

// Score implements reputation.Mechanism (max-normalized).
func (m *Mechanism) Score(peer int) float64 {
	if peer < 0 || peer >= len(m.scores) {
		return 0
	}
	maxV := 0.0
	for _, v := range m.scores {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		return 0
	}
	return m.scores[peer] / maxV
}

// Scores implements reputation.Mechanism.
func (m *Mechanism) Scores() []float64 {
	out := make([]float64, len(m.scores))
	maxV := 0.0
	for _, v := range m.scores {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		return out
	}
	for i, v := range m.scores {
		out[i] = v / maxV
	}
	return out
}
