// Package powertrust implements PowerTrust (Zhou & Hwang, TPDS 2007), the
// third reputation baseline the paper cites: it builds a trust overlay
// network (TON) from the feedback graph, elects the most-reputable "power
// nodes", and aggregates global reputation with a look-ahead random walk
// (LRW) that converges in fewer rounds than plain power iteration.
package powertrust

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
	"repro/internal/reputation"
)

// Config parameterizes the mechanism.
type Config struct {
	// N is the number of peers.
	N int
	// M is the number of power nodes (default max(1, N/20)).
	M int
	// Alpha is the greedy-jump weight toward power nodes (default 0.15).
	Alpha float64
	// Epsilon is the L1 convergence threshold, default 1e-6.
	Epsilon float64
	// MaxIter bounds the iteration, default 200.
	MaxIter int
	// LookAhead enables the look-ahead random walk (default on via
	// NewDefault; set false to ablate).
	LookAhead bool
	// ColdStart restarts every walk from the uniform distribution instead
	// of warm-starting from the previous stationary point. Both converge to
	// the same distribution within Epsilon (the walk is ergodic for
	// alpha > 0); warm starts just take fewer rounds on incremental
	// recomputes.
	ColdStart bool
}

func (c Config) withDefaults() (Config, error) {
	if c.N <= 0 {
		return c, fmt.Errorf("powertrust: N must be positive, got %d", c.N)
	}
	if c.M <= 0 {
		c.M = c.N / 20
		if c.M < 1 {
			c.M = 1
		}
	}
	if c.M > c.N {
		c.M = c.N
	}
	if c.Alpha == 0 {
		c.Alpha = 0.15
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return c, fmt.Errorf("powertrust: alpha %v out of [0,1]", c.Alpha)
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-6
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 200
	}
	return c, nil
}

// pair aggregates ratings from one rater to one ratee.
type pair struct {
	sum   float64
	count int
}

// Mechanism is the PowerTrust scoring engine. The row-normalized feedback
// matrix R lives in a CSR whose rows are rematerialized incrementally from
// a per-row dirty set; silent peers are dangling rows handled by the
// kernel's rank-one uniform correction instead of a dense uniform fill. The
// (look-ahead) random walk runs the shared shard-parallel SpMV on reusable
// buffers, bit-for-bit identical for every worker count.
type Mechanism struct {
	cfg      Config          //trustlint:derived configuration, identical by construction on restore
	feedback []map[int]*pair // feedback[i][j]: i's ratings of j
	scores   []float64
	power    []int
	dirty    bool

	// Sparse kernel state.
	csr          *linalg.CSR        //trustlint:derived rematerialized from the feedback matrix on first Compute after restore
	ws           linalg.Workspace   //trustlint:derived scratch, contents never outlive one Compute
	workers      int                //trustlint:derived configuration (SetWorkers), not part of the deterministic state
	materialized bool               //trustlint:derived cleared by restore to force a full CSR rebuild
	dirtyRows    map[int32]struct{} // rows whose CSR materialization is stale
	uniform      []float64          //trustlint:derived constant 1/n vector, rebuilt by New
	jump         []float64          //trustlint:derived recomputed from the power-node election each Compute
	// Reusable iteration and materialization scratch.
	vecA, vecB, vecMid []float64 //trustlint:derived scratch, contents never outlive one Compute
	colScratch         []int32   //trustlint:derived scratch, contents never outlive one Compute
	valScratch         []float64 //trustlint:derived scratch, contents never outlive one Compute
	// Max-normalized score cache backing ScoresView.
	norm    []float64 //trustlint:derived cache, recomputed from scores by refreshNorm on restore
	normMax float64   //trustlint:derived cache, recomputed from scores by refreshNorm on restore
	// Community-assessment scratch, reused across calls.
	tfSums   []float64 //trustlint:derived scratch, zeroed at the top of every TrustworthyFraction
	tfCounts []int     //trustlint:derived scratch, zeroed at the top of every TrustworthyFraction
	// Diagnostics of the most recent Compute that ran rounds.
	lastConv reputation.Convergence
	hasConv  bool

	spmv reputation.SpMVDelegate //trustlint:derived cluster-layer hook, re-attached by the owner after restore; bit-exact by contract
}

var _ reputation.Mechanism = (*Mechanism)(nil)

func newMech(cfg Config) *Mechanism {
	m := &Mechanism{
		cfg:          cfg,
		feedback:     make([]map[int]*pair, cfg.N),
		workers:      1,
		csr:          linalg.New(cfg.N),
		materialized: true, // a fresh CSR matches the empty feedback graph
		dirtyRows:    make(map[int32]struct{}),
		uniform:      reputation.UniformPretrust(cfg.N),
		jump:         make([]float64, cfg.N),
		vecA:         make([]float64, cfg.N),
		vecB:         make([]float64, cfg.N),
		vecMid:       make([]float64, cfg.N),
		norm:         make([]float64, cfg.N),
	}
	m.scores = make([]float64, cfg.N)
	for i := range m.scores {
		m.scores[i] = 1 / float64(cfg.N)
	}
	m.refreshNorm()
	return m
}

// New builds the mechanism with look-ahead enabled by default.
func New(cfg Config) (*Mechanism, error) {
	lookAheadSet := cfg.LookAhead
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if !lookAheadSet {
		cfg.LookAhead = true
	}
	return newMech(cfg), nil
}

// NewPlain builds the mechanism with look-ahead disabled (the ablation
// baseline: plain first-order random walk).
func NewPlain(cfg Config) (*Mechanism, error) {
	cfg.LookAhead = false
	cfgd, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cfgd.LookAhead = false
	return newMech(cfgd), nil
}

// SetComputeShards implements reputation.ComputeSharder: Compute's SpMV
// scatters over k workers. Shards are a scheduling knob only — scores stay
// bit-for-bit identical for every k.
func (m *Mechanism) SetComputeShards(k int) {
	if k < 1 {
		k = 1
	}
	m.workers = k
}

var _ reputation.ComputeSharder = (*Mechanism)(nil)

// SetSpMVDelegate implements reputation.SpMVDelegator: route the walk's
// inner SpMV through fn (nil restores the local kernel). The delegate must
// be bit-exact per the reputation.SpMVDelegate contract.
func (m *Mechanism) SetSpMVDelegate(fn reputation.SpMVDelegate) { m.spmv = fn }

// SpMVBlocks implements reputation.BlockScatterer.
func (m *Mechanism) SpMVBlocks() int { return linalg.BlockCount(m.cfg.N) }

// SpMVScatterBlocks implements reputation.BlockScatterer: refresh any dirty
// CSR rows, then scatter blocks [lob, hib) of Rᵀx.
func (m *Mechanism) SpMVScatterBlocks(x []float64, lob, hib int) ([][]float64, []float64) {
	m.refreshMatrix()
	return m.csr.ScatterBlocks(x, lob, hib)
}

var (
	_ reputation.SpMVDelegator  = (*Mechanism)(nil)
	_ reputation.BlockScatterer = (*Mechanism)(nil)
)

// Name implements reputation.Mechanism.
func (m *Mechanism) Name() string {
	if m.cfg.LookAhead {
		return "powertrust"
	}
	return "powertrust-plain"
}

// Submit implements reputation.Mechanism.
func (m *Mechanism) Submit(r reputation.Report) error {
	if r.Rater < 0 || r.Rater >= m.cfg.N || r.Ratee < 0 || r.Ratee >= m.cfg.N {
		return fmt.Errorf("powertrust: report %d->%d out of range [0,%d)", r.Rater, r.Ratee, m.cfg.N)
	}
	if r.Rater == r.Ratee {
		return fmt.Errorf("powertrust: self-rating by %d rejected", r.Rater)
	}
	v := r.Value
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	if m.feedback[r.Rater] == nil {
		m.feedback[r.Rater] = make(map[int]*pair)
	}
	p := m.feedback[r.Rater][r.Ratee]
	if p == nil {
		p = &pair{}
		m.feedback[r.Rater][r.Ratee] = p
	}
	p.sum += v
	p.count++
	m.dirty = true
	m.dirtyRows[int32(r.Rater)] = struct{}{}
	return nil
}

// SubmitBatch implements reputation.BatchSubmitter: a whole round's reports
// fold in one call, reusing the rater's row map and dirty-row insert across
// consecutive reports by the same rater. The result is exactly that of
// calling Submit for each report in order; the first invalid report aborts
// the batch with the reports before it already folded.
func (m *Mechanism) SubmitBatch(rs []reputation.Report) error {
	lastRater := -1
	var row map[int]*pair
	for i := range rs {
		r := &rs[i]
		if r.Rater < 0 || r.Rater >= m.cfg.N || r.Ratee < 0 || r.Ratee >= m.cfg.N {
			return fmt.Errorf("powertrust: report %d->%d out of range [0,%d)", r.Rater, r.Ratee, m.cfg.N)
		}
		if r.Rater == r.Ratee {
			return fmt.Errorf("powertrust: self-rating by %d rejected", r.Rater)
		}
		v := r.Value
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		if r.Rater != lastRater {
			if m.feedback[r.Rater] == nil {
				m.feedback[r.Rater] = make(map[int]*pair)
			}
			row = m.feedback[r.Rater]
			m.dirtyRows[int32(r.Rater)] = struct{}{}
			lastRater = r.Rater
		}
		p := row[r.Ratee]
		if p == nil {
			p = &pair{}
			row[r.Ratee] = p
		}
		p.sum += v
		p.count++
		m.dirty = true
	}
	return nil
}

var _ reputation.BatchSubmitter = (*Mechanism)(nil)

// electPowerNodes elects the m most reputable peers as power nodes, per the
// PowerTrust paper ("a small number of the most reputable power nodes").
// On the first election, before any global scores exist, it bootstraps from
// the trust overlay's weighted in-degree (sum of incoming mean ratings) —
// raw rater counts would let heavily-rated bad peers win. Ties break by id.
func (m *Mechanism) electPowerNodes() []int {
	rank := make([]float64, m.cfg.N)
	uniform := 1 / float64(m.cfg.N)
	bootstrapped := true
	for _, s := range m.scores {
		if s > uniform*1.01 || s < uniform*0.99 {
			bootstrapped = false
			break
		}
	}
	if bootstrapped {
		for _, row := range m.feedback {
			for j, p := range row {
				rank[j] += p.sum / float64(p.count)
			}
		}
	} else {
		copy(rank, m.scores)
	}
	ids := make([]int, m.cfg.N)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		if rank[ids[a]] != rank[ids[b]] {
			return rank[ids[a]] > rank[ids[b]]
		}
		return ids[a] < ids[b]
	})
	return ids[:m.cfg.M]
}

// TrustworthyFraction implements reputation.CommunityAssessor: the fraction
// of rated peers whose mean incoming rating is at least 0.5. The scan stays
// a full canonical recompute (incremental cross-peer float accumulators
// would make results depend on fold order), but the accumulation buffers
// are reused across calls.
func (m *Mechanism) TrustworthyFraction() float64 {
	if m.tfSums == nil {
		m.tfSums = make([]float64, m.cfg.N)
		m.tfCounts = make([]int, m.cfg.N)
	}
	sums, counts := m.tfSums, m.tfCounts
	for j := range sums {
		sums[j] = 0
		counts[j] = 0
	}
	for _, row := range m.feedback {
		for j, p := range row {
			sums[j] += p.sum
			counts[j] += p.count
		}
	}
	rated, positive := 0, 0
	for j := 0; j < m.cfg.N; j++ {
		if counts[j] == 0 {
			continue
		}
		rated++
		if sums[j]/float64(counts[j]) >= 0.5 {
			positive++
		}
	}
	if rated == 0 {
		return 1
	}
	return float64(positive) / float64(rated)
}

var _ reputation.CommunityAssessor = (*Mechanism)(nil)

// PowerNodes returns a copy of the most recently elected power nodes.
func (m *Mechanism) PowerNodes() []int {
	out := make([]int, len(m.power))
	copy(out, m.power)
	return out
}

// PowerNodesView returns the most recently elected power nodes without
// copying — the read-only fast path for observer loops that poll each
// recompute (experiment drivers, metrics collection). The slice is valid
// until the next Compute or restore; callers that retain or mutate it must
// use PowerNodes.
func (m *Mechanism) PowerNodesView() []int { return m.power }

// refreshMatrix rematerializes the CSR rows of the row-normalized feedback
// matrix R (mean ratings) whose feedback changed since the last
// materialization — only the dirty set in steady state, every row after a
// snapshot restore. Rows whose ratings sum to zero are cleared: they are
// dangling, and the SpMV's rank-one correction jumps their weight uniformly
// instead of storing a dense uniform row. Materialization is a pure
// function of the row's current feedback, so the incremental matrix is
// bit-for-bit identical to a from-scratch rebuild.
func (m *Mechanism) refreshMatrix() {
	if m.materialized && len(m.dirtyRows) == 0 {
		return
	}
	setRow := func(i int) {
		cols, vals := m.colScratch[:0], m.valScratch[:0]
		for j := range m.feedback[i] {
			cols = append(cols, int32(j))
		}
		sort.Slice(cols, func(a, b int) bool { return cols[a] < cols[b] })
		for _, j := range cols {
			p := m.feedback[i][int(j)]
			vals = append(vals, p.sum/float64(p.count))
		}
		m.colScratch, m.valScratch = cols, vals
		m.csr.SetRow(i, cols, vals)
		m.csr.NormalizeRow(i)
	}
	if !m.materialized {
		for i := 0; i < m.cfg.N; i++ {
			setRow(i)
		}
		m.materialized = true
	} else {
		rows := make([]int32, 0, len(m.dirtyRows))
		for i := range m.dirtyRows {
			rows = append(rows, i)
		}
		sort.Slice(rows, func(a, b int) bool { return rows[a] < rows[b] })
		for _, i := range rows {
			setRow(int(i))
		}
	}
	clear(m.dirtyRows)
}

// step applies one walk operator application dst = (1−α)·(Rᵀsrc + mᵀ·u) + α·jump,
// with the dangling mass mᵀ jumping uniformly (u = 1/n).
func (m *Mechanism) step(dst, src []float64) {
	if m.spmv == nil || !m.spmv(dst, src, m.uniform) {
		m.csr.MulTranspose(dst, src, m.uniform, m.workers, &m.ws)
	}
	for j := range dst {
		dst[j] = (1-m.cfg.Alpha)*dst[j] + m.cfg.Alpha*m.jump[j]
	}
}

// refreshNorm rebuilds the max-normalized score cache behind ScoresView.
func (m *Mechanism) refreshNorm() {
	maxV := 0.0
	for _, v := range m.scores {
		if v > maxV {
			maxV = v
		}
	}
	m.normMax = maxV
	if maxV == 0 {
		for i := range m.norm {
			m.norm[i] = 0
		}
		return
	}
	for i, v := range m.scores {
		m.norm[i] = v / maxV
	}
}

// Compute elects power nodes and runs the (look-ahead) random walk until the
// L1 change drops below Epsilon. One look-ahead round applies the walk
// operator twice — each node aggregates its neighbors' own aggregated
// vectors, which is exactly one extra message exchange but halves the round
// count. Returns the number of rounds. By default the walk warm-starts from
// the previous stationary distribution (the first Compute starts uniform,
// which is what the scores are initialized to); Config.ColdStart restores
// the fixed uniform start. Epsilon is never loosened on warm starts. Only
// dirty CSR rows are rematerialized, the walk reuses the mechanism's
// buffers, and the SpMV scatters over the configured worker shards with a
// canonical fold, so the result is identical for every worker count.
func (m *Mechanism) Compute() int {
	if !m.dirty {
		return 0
	}
	n := m.cfg.N
	m.power = m.electPowerNodes()
	for j := range m.jump {
		m.jump[j] = 0
	}
	share := 1 / float64(len(m.power))
	for _, p := range m.power {
		m.jump[p] = share
	}
	m.refreshMatrix()
	t, next, mid := m.vecA, m.vecB, m.vecMid
	warm := !m.cfg.ColdStart
	if warm {
		copy(t, m.scores)
	} else {
		for i := range t {
			t[i] = 1 / float64(n)
		}
	}
	rounds := 0
	residual := 0.0
	for ; rounds < m.cfg.MaxIter; rounds++ {
		if m.cfg.LookAhead {
			m.step(mid, t)
			m.step(next, mid)
		} else {
			m.step(next, t)
		}
		diff := 0.0
		for j := 0; j < n; j++ {
			diff += math.Abs(next[j] - t[j])
		}
		t, next = next, t
		residual = diff
		if diff < m.cfg.Epsilon {
			rounds++
			break
		}
	}
	copy(m.scores, t)
	m.vecA, m.vecB = t, next // keep the buffer pair owned by the mechanism
	m.refreshNorm()
	m.dirty = false
	m.lastConv = reputation.Convergence{Iterations: rounds, Residual: residual, Warm: warm}
	m.hasConv = true
	return rounds
}

// LastConvergence implements reputation.ConvergenceReporter.
func (m *Mechanism) LastConvergence() (reputation.Convergence, bool) {
	return m.lastConv, m.hasConv
}

var _ reputation.ConvergenceReporter = (*Mechanism)(nil)

// Raw returns the stationary distribution (sums to ~1).
func (m *Mechanism) Raw() []float64 {
	out := make([]float64, len(m.scores))
	copy(out, m.scores)
	return out
}

// Score implements reputation.Mechanism (max-normalized).
func (m *Mechanism) Score(peer int) float64 {
	if peer < 0 || peer >= len(m.scores) {
		return 0
	}
	if m.normMax == 0 {
		return 0
	}
	return m.scores[peer] / m.normMax
}

// Scores implements reputation.Mechanism.
func (m *Mechanism) Scores() []float64 {
	return append([]float64(nil), m.norm...)
}

// ScoresView implements reputation.ScoresViewer: the max-normalized scores
// without the copy. Read-only; valid until the next Compute or restore.
func (m *Mechanism) ScoresView() []float64 { return m.norm }

var _ reputation.ScoresViewer = (*Mechanism)(nil)
