package powertrust

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/reputation"
	"repro/internal/sim"
)

// denseRows is the frozen pre-kernel row materialization: the dense
// row-normalized feedback matrix with silent peers filled uniformly.
func denseRows(m *Mechanism) [][]float64 {
	n := m.cfg.N
	uniform := 1 / float64(n)
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		sum := 0.0
		for j, p := range m.feedback[i] {
			row[j] = p.sum / float64(p.count)
		}
		for _, v := range row {
			sum += v
		}
		if sum == 0 {
			for j := range row {
				row[j] = uniform
			}
		} else {
			for j := range row {
				row[j] /= sum
			}
		}
		rows[i] = row
	}
	return rows
}

func denseApplyWalk(rows [][]float64, t, next []float64, alpha float64, jump []float64) {
	n := len(t)
	for j := range next {
		next[j] = 0
	}
	for i := 0; i < n; i++ {
		ti := t[i]
		if ti == 0 {
			continue
		}
		for j, c := range rows[i] {
			if c != 0 {
				next[j] += c * ti
			}
		}
	}
	for j := 0; j < n; j++ {
		next[j] = (1-alpha)*next[j] + alpha*jump[j]
	}
}

// denseCompute is the frozen pre-kernel Compute: power-node election plus
// the (look-ahead) walk over fully materialized dense rows.
func denseCompute(m *Mechanism) []float64 {
	n := m.cfg.N
	power := m.electPowerNodes()
	jump := make([]float64, n)
	share := 1 / float64(len(power))
	for _, p := range power {
		jump[p] = share
	}
	rows := denseRows(m)
	t := make([]float64, n)
	for i := range t {
		t[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	mid := make([]float64, n)
	for rounds := 0; rounds < m.cfg.MaxIter; rounds++ {
		if m.cfg.LookAhead {
			denseApplyWalk(rows, t, mid, m.cfg.Alpha, jump)
			denseApplyWalk(rows, mid, next, m.cfg.Alpha, jump)
		} else {
			denseApplyWalk(rows, t, next, m.cfg.Alpha, jump)
		}
		diff := 0.0
		for j := 0; j < n; j++ {
			diff += math.Abs(next[j] - t[j])
		}
		t, next = next, t
		if diff < m.cfg.Epsilon {
			break
		}
	}
	return t
}

func feedRandom(t *testing.T, m *Mechanism, rng *sim.RNG, n, reports int) {
	t.Helper()
	for k := 0; k < reports; k++ {
		i := rng.Intn(n)
		if i%5 == 0 {
			continue // keep some rows silent (dangling)
		}
		j := rng.Intn(n)
		if i == j {
			continue
		}
		if err := m.Submit(reputation.Report{Rater: i, Ratee: j, Value: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSparseMatchesDenseReference(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		for _, plain := range []bool{false, true} {
			cfg := Config{N: 60, M: 4}
			var m *Mechanism
			var err error
			if plain {
				m, err = NewPlain(cfg)
			} else {
				m, err = New(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			rng := sim.NewRNG(seed)
			feedRandom(t, m, rng, cfg.N, 600)
			want := denseCompute(m) // reference election runs on the same pre-Compute scores
			m.Compute()
			got := m.Raw()
			for j := range want {
				if math.Abs(got[j]-want[j]) > 1e-9 {
					t.Fatalf("seed %d plain=%v: score[%d] = %v, dense reference %v", seed, plain, j, got[j], want[j])
				}
			}
		}
	}
}

func TestComputeWorkerInvariance(t *testing.T) {
	build := func(workers int) *Mechanism {
		m, err := New(Config{N: 300})
		if err != nil {
			t.Fatal(err)
		}
		m.SetComputeShards(workers)
		feedRandom(t, m, sim.NewRNG(21), 300, 3000)
		return m
	}
	ref := build(1)
	ref.Compute()
	for _, workers := range []int{2, 4, 8} {
		m := build(workers)
		m.Compute()
		for j, v := range m.Raw() {
			if v != ref.Raw()[j] {
				t.Fatalf("workers=%d: score[%d] = %v differs from serial %v (bit-for-bit contract)",
					workers, j, v, ref.Raw()[j])
			}
		}
	}
}

// TestIncrementalMatchesFresh pins the dirty-set rematerialization. The
// power-node election depends on the score history, so the comparison holds
// the compute schedule fixed and varies only the materialization path:
// snapshot-restoring into a fresh mechanism leaves its CSR cold, forcing a
// full rebuild where the original reuses every clean row.
func TestIncrementalMatchesFresh(t *testing.T) {
	const n = 80
	inc, err := New(Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(13)
	feedRandom(t, inc, rng, n, 500)
	inc.Compute()
	feedRandom(t, inc, rng, n, 300)

	// Same data, cold CSR: restore forces a full rebuild, so the follow-up
	// Compute materializes every row from scratch while inc reuses all but
	// its dirty rows.
	blob, err := inc.MechanismState()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := New(Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.RestoreMechanismState(blob); err != nil {
		t.Fatal(err)
	}
	inc.Compute()
	cold.Compute()
	for j := range inc.Raw() {
		if inc.Raw()[j] != cold.Raw()[j] {
			t.Fatalf("score[%d]: incremental %v != cold rebuild %v", j, inc.Raw()[j], cold.Raw()[j])
		}
	}
}

// TestSnapshotRoundTripMidDirty snapshots with dirty rows pending and
// checks restore-then-run equals the uninterrupted run bit for bit,
// pending dirty-row set and state blob included.
func TestSnapshotRoundTripMidDirty(t *testing.T) {
	const n = 50
	orig, err := New(Config{N: n, M: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(31)
	feedRandom(t, orig, rng, n, 400)
	orig.Compute()
	feedRandom(t, orig, rng, n, 100) // pending dirty rows at snapshot time

	blob, err := orig.MechanismState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := New(Config{N: n, M: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreMechanismState(blob); err != nil {
		t.Fatal(err)
	}

	cont := sim.NewRNG(55)
	for k := 0; k < 200; k++ {
		i, j := cont.Intn(n), cont.Intn(n)
		if i == j {
			continue
		}
		r := reputation.Report{Rater: i, Ratee: j, Value: cont.Float64()}
		if err := orig.Submit(r); err != nil {
			t.Fatal(err)
		}
		if err := restored.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if orig.Compute() != restored.Compute() {
		t.Fatal("round counts diverged after restore")
	}
	for j := range orig.Raw() {
		if orig.Raw()[j] != restored.Raw()[j] {
			t.Fatalf("score[%d]: %v != %v after restore-then-run", j, orig.Raw()[j], restored.Raw()[j])
		}
	}
	b1, err := orig.MechanismState()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := restored.MechanismState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("state blobs diverged after restore-then-run")
	}
}

// TestPowerNodesViewAliasesElection pins the read-only fast path against
// the copying accessor.
func TestPowerNodesViewAliasesElection(t *testing.T) {
	m, err := New(Config{N: 20, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	feedRandom(t, m, sim.NewRNG(2), 20, 100)
	m.Compute()
	view := m.PowerNodesView()
	cp := m.PowerNodes()
	if len(view) != len(cp) {
		t.Fatalf("view has %d nodes, copy has %d", len(view), len(cp))
	}
	for i := range cp {
		if view[i] != cp[i] {
			t.Fatalf("view[%d] = %d, copy %d", i, view[i], cp[i])
		}
	}
	cp[0] = -1 // mutating the copy must not touch the view
	if view[0] == -1 {
		t.Fatal("PowerNodes copy aliases the view")
	}
}

// TestComputeSteadyStateAllocFree pins the reusable-buffer contract for the
// walk itself (the election sorts ids per Compute and is measured out by
// holding the matrix clean: only refreshNorm, jump fill and the iteration
// run — all on reused buffers except the election's rank scratch).
func TestComputeSteadyStateAllocFree(t *testing.T) {
	m, err := New(Config{N: 400})
	if err != nil {
		t.Fatal(err)
	}
	feedRandom(t, m, sim.NewRNG(3), 400, 4000)
	m.Compute()
	// Measure the walk in isolation: election + rebuild excluded.
	t0 := m.vecA
	allocs := testing.AllocsPerRun(20, func() {
		for i := range t0 {
			t0[i] = 1 / float64(m.cfg.N)
		}
		m.step(m.vecMid, t0)
		m.step(m.vecB, m.vecMid)
	})
	if allocs != 0 {
		t.Fatalf("steady-state walk allocates %v objects/op, want 0", allocs)
	}
}
