package powertrust

import (
	"testing"

	"repro/internal/reputation"
)

func TestPowerTrustTrustworthyFraction(t *testing.T) {
	m, err := New(Config{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.TrustworthyFraction(); got != 1 {
		t.Fatalf("empty fraction = %v", got)
	}
	// Peer 1 well rated by two raters; peer 2 badly; peer 3 mixed with
	// mean below 0.5.
	feed(t, m, 0, 1, 0.9, 2)
	feed(t, m, 4, 1, 0.8, 1)
	feed(t, m, 0, 2, 0.1, 3)
	feed(t, m, 0, 3, 0.8, 1)
	feed(t, m, 4, 3, 0.1, 2)
	got := m.TrustworthyFraction()
	want := 1.0 / 3.0
	if got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("fraction = %v, want %v", got, want)
	}
	_ = reputation.CommunityAssessor(m)
}

func TestElectionUsesScoresAfterFirstCompute(t *testing.T) {
	m, err := New(Config{N: 6, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Bootstrap: peer 1 has the highest weighted in-degree.
	feed(t, m, 0, 1, 0.9, 5)
	feed(t, m, 2, 1, 0.9, 5)
	feed(t, m, 0, 3, 0.4, 1)
	m.Compute()
	if pn := m.PowerNodes(); len(pn) != 1 || pn[0] != 1 {
		t.Fatalf("bootstrap power nodes = %v, want [1]", pn)
	}
	// Scores now exist; the next election ranks by reputation.
	feed(t, m, 4, 5, 0.95, 8)
	feed(t, m, 0, 5, 0.95, 8)
	feed(t, m, 2, 5, 0.95, 8)
	m.Compute()
	pn := m.PowerNodes()
	if len(pn) != 1 {
		t.Fatalf("power nodes = %v", pn)
	}
	// The elected node must be one of the highly-scored peers (1 or 5).
	if pn[0] != 1 && pn[0] != 5 {
		t.Fatalf("elected %d, want a reputable peer", pn[0])
	}
}
