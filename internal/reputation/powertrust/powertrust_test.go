package powertrust

import (
	"math"
	"testing"

	"repro/internal/reputation"
	"repro/internal/sim"
)

func feed(t *testing.T, m *Mechanism, rater, ratee int, value float64, times int) {
	t.Helper()
	for k := 0; k < times; k++ {
		if err := m.Submit(reputation.Report{Rater: rater, Ratee: ratee, Value: value}); err != nil {
			t.Fatal(err)
		}
	}
}

// populate builds a 20-peer population where peers 15..19 are bad.
func populate(t *testing.T, m *Mechanism, seed uint64) {
	t.Helper()
	rng := sim.NewRNG(seed)
	for k := 0; k < 1500; k++ {
		i, j := rng.Intn(20), rng.Intn(20)
		if i == j {
			continue
		}
		v := 0.85 + rng.Float64()*0.1
		if j >= 15 {
			v = 0.05 + rng.Float64()*0.1
		}
		if err := m.Submit(reputation.Report{Rater: i, Ratee: j, Value: v}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := New(Config{N: 5, Alpha: -0.1}); err == nil {
		t.Fatal("negative alpha accepted")
	}
	m, err := New(Config{N: 10, M: 99})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, m, 0, 1, 0.9, 1) // make it dirty so Compute elects
	m.Compute()
	if len(m.PowerNodes()) != 10 {
		t.Fatalf("M not clamped: %d", len(m.PowerNodes()))
	}
}

func TestSeparatesGoodFromBad(t *testing.T) {
	m, err := New(Config{N: 20, M: 3})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, m, 1)
	rounds := m.Compute()
	if rounds == 0 {
		t.Fatal("no rounds")
	}
	s := m.Scores()
	worstGood, bestBad := 1.0, 0.0
	for i := 0; i < 15; i++ {
		if s[i] < worstGood {
			worstGood = s[i]
		}
	}
	for i := 15; i < 20; i++ {
		if s[i] > bestBad {
			bestBad = s[i]
		}
	}
	if worstGood <= bestBad {
		t.Fatalf("separation failed: worst good %v <= best bad %v", worstGood, bestBad)
	}
}

func TestLookAheadConvergesFaster(t *testing.T) {
	la, err := New(Config{N: 20, M: 3, Epsilon: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewPlain(Config{N: 20, M: 3, Epsilon: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, la, 2)
	populate(t, plain, 2)
	rLA := la.Compute()
	rPlain := plain.Compute()
	if rLA >= rPlain {
		t.Fatalf("look-ahead rounds %d not fewer than plain %d", rLA, rPlain)
	}
	// Both walks must agree on the ranking of good vs bad peers.
	sLA, sPlain := la.Scores(), plain.Scores()
	for i := 0; i < 15; i++ {
		for j := 15; j < 20; j++ {
			if (sLA[i] > sLA[j]) != (sPlain[i] > sPlain[j]) {
				t.Fatalf("rankings disagree at (%d,%d)", i, j)
			}
		}
	}
}

func TestNames(t *testing.T) {
	la, _ := New(Config{N: 5})
	plain, _ := NewPlain(Config{N: 5})
	if la.Name() != "powertrust" || plain.Name() != "powertrust-plain" {
		t.Fatalf("names: %s / %s", la.Name(), plain.Name())
	}
}

func TestPowerNodesAreMostRated(t *testing.T) {
	m, err := New(Config{N: 10, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Peers 3 and 7 receive feedback from everyone; others from nobody.
	for i := 0; i < 10; i++ {
		for _, j := range []int{3, 7} {
			if i != j {
				feed(t, m, i, j, 0.9, 1)
			}
		}
	}
	m.Compute()
	pn := m.PowerNodes()
	if len(pn) != 2 {
		t.Fatalf("power nodes = %v", pn)
	}
	want := map[int]bool{3: true, 7: true}
	for _, p := range pn {
		if !want[p] {
			t.Fatalf("unexpected power node %d", p)
		}
	}
}

func TestRawSumsToOne(t *testing.T) {
	m, err := New(Config{N: 20, M: 3})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, m, 3)
	m.Compute()
	sum := 0.0
	for _, v := range m.Raw() {
		if v < 0 {
			t.Fatalf("negative score %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("stationary distribution sums to %v", sum)
	}
}

func TestSubmitValidation(t *testing.T) {
	m, err := New(Config{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(reputation.Report{Rater: 1, Ratee: 1}); err == nil {
		t.Fatal("self-rating accepted")
	}
	if err := m.Submit(reputation.Report{Rater: 0, Ratee: 9}); err == nil {
		t.Fatal("out-of-range accepted")
	}
	// Out-of-range values are clamped, not rejected.
	if err := m.Submit(reputation.Report{Rater: 0, Ratee: 1, Value: 7}); err != nil {
		t.Fatal(err)
	}
	m.Compute()
	if m.Score(1) != 1 {
		t.Fatalf("clamped rating score = %v", m.Score(1))
	}
}

func TestComputeIdempotentWhenClean(t *testing.T) {
	m, err := New(Config{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, m, 0, 1, 0.9, 1)
	if m.Compute() == 0 {
		t.Fatal("dirty compute did nothing")
	}
	if m.Compute() != 0 {
		t.Fatal("clean compute re-ran")
	}
}

func TestScoreBounds(t *testing.T) {
	m, err := New(Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Score(-1) != 0 || m.Score(9) != 0 {
		t.Fatal("out-of-range score != 0")
	}
	feed(t, m, 0, 1, 0.9, 3)
	m.Compute()
	for i, v := range m.Scores() {
		if v < 0 || v > 1 {
			t.Fatalf("score[%d] = %v out of [0,1]", i, v)
		}
	}
}
