package reputation

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestLocalTrustAdd(t *testing.T) {
	lt := NewLocalTrust(3)
	if err := lt.Add(Report{Rater: 0, Ratee: 1, Value: 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := lt.Add(Report{Rater: 0, Ratee: 1, Value: 0.8}); err != nil {
		t.Fatal(err)
	}
	if err := lt.Add(Report{Rater: 0, Ratee: 2, Value: 0.1}); err != nil {
		t.Fatal(err)
	}
	if got := lt.S(0, 1); got != 2 {
		t.Fatalf("S(0,1) = %v, want 2", got)
	}
	if got := lt.S(0, 2); got != 0 {
		t.Fatalf("S(0,2) = %v, want 0 (clamped)", got)
	}
}

func TestLocalTrustRejects(t *testing.T) {
	lt := NewLocalTrust(2)
	if err := lt.Add(Report{Rater: 0, Ratee: 0, Value: 1}); err == nil {
		t.Fatal("self-rating accepted")
	}
	if err := lt.Add(Report{Rater: 0, Ratee: 5, Value: 1}); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := lt.Add(Report{Rater: -1, Ratee: 1, Value: 1}); err == nil {
		t.Fatal("negative rater accepted")
	}
}

func TestNormalizedRowSumsToOne(t *testing.T) {
	f := func(seed uint16) bool {
		rng := sim.NewRNG(uint64(seed))
		n := 5 + rng.Intn(10)
		lt := NewLocalTrust(n)
		for k := 0; k < 50; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			_ = lt.Add(Report{Rater: i, Ratee: j, Value: rng.Float64()})
		}
		pre := UniformPretrust(n)
		for i := 0; i < n; i++ {
			row := lt.NormalizedRow(i, pre)
			sum := 0.0
			for _, v := range row {
				if v < 0 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedRowEmptyFallsBackToPretrust(t *testing.T) {
	lt := NewLocalTrust(3)
	pre := PretrustOver(3, []int{2})
	row := lt.NormalizedRow(0, pre)
	if row[2] != 1 || row[0] != 0 {
		t.Fatalf("empty row = %v, want pretrust", row)
	}
	if lt.HasOutgoing(0) {
		t.Fatal("HasOutgoing on empty row")
	}
}

func TestPretrustOver(t *testing.T) {
	p := PretrustOver(4, []int{1, 3})
	if p[1] != 0.5 || p[3] != 0.5 || p[0] != 0 {
		t.Fatalf("pretrust = %v", p)
	}
	u := PretrustOver(4, nil)
	for _, v := range u {
		if v != 0.25 {
			t.Fatalf("uniform fallback = %v", u)
		}
	}
	// Out-of-range trusted ids are skipped but weight distribution stays
	// over the valid ones only.
	p2 := PretrustOver(2, []int{0, 5})
	if p2[0] != 0.5 {
		t.Fatalf("pretrust with invalid id = %v", p2)
	}
}

func TestGathererDisclosureZeroAndOne(t *testing.T) {
	rng := sim.NewRNG(3)
	m := NewNone(4)
	g := NewGatherer(rng, []float64{0, 1})
	shared0 := 0
	for i := 0; i < 200; i++ {
		ok, err := g.Offer(m, Report{Rater: 0, Ratee: 1, Value: 1})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			shared0++
		}
	}
	if shared0 != 0 {
		t.Fatalf("disclosure 0 shared %d reports", shared0)
	}
	shared1 := 0
	for i := 0; i < 200; i++ {
		ok, _ := g.Offer(m, Report{Rater: 1, Ratee: 0, Value: 1})
		if ok {
			shared1++
		}
	}
	if shared1 != 200 {
		t.Fatalf("disclosure 1 shared %d/200", shared1)
	}
	if g.Gathered != 200 || g.Withheld != 200 {
		t.Fatalf("counters: gathered=%d withheld=%d", g.Gathered, g.Withheld)
	}
}

func TestGathererFraction(t *testing.T) {
	rng := sim.NewRNG(4)
	m := NewNone(2)
	g := NewGatherer(rng, []float64{0.3})
	shared := 0
	for i := 0; i < 5000; i++ {
		ok, _ := g.Offer(m, Report{Rater: 0, Ratee: 1, Value: 1})
		if ok {
			shared++
		}
	}
	frac := float64(shared) / 5000
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("shared fraction = %v, want ~0.3", frac)
	}
}

func TestGathererClampsAndDefaults(t *testing.T) {
	rng := sim.NewRNG(5)
	g := NewGatherer(rng, []float64{-1, 2})
	m := NewNone(3)
	if ok, _ := g.Offer(m, Report{Rater: 0, Ratee: 1}); ok {
		t.Fatal("clamped-to-0 rater shared")
	}
	if ok, _ := g.Offer(m, Report{Rater: 1, Ratee: 0}); !ok {
		t.Fatal("clamped-to-1 rater withheld")
	}
	// Rater beyond the disclosure vector defaults to full disclosure.
	if ok, _ := g.Offer(m, Report{Rater: 2, Ratee: 0}); !ok {
		t.Fatal("unknown rater withheld")
	}
}

func TestSelectBest(t *testing.T) {
	rng := sim.NewRNG(6)
	scores := []float64{0.1, 0.9, 0.5}
	if got := SelectBest(rng, scores, []int{0, 1, 2}); got != 1 {
		t.Fatalf("SelectBest = %d", got)
	}
	if got := SelectBest(rng, scores, nil); got != -1 {
		t.Fatal("empty candidates should return -1")
	}
	if got := SelectBest(rng, scores, []int{7, -1}); got != -1 {
		t.Fatal("invalid candidates should return -1")
	}
}

func TestSelectBestTieBreaksUniformly(t *testing.T) {
	rng := sim.NewRNG(7)
	scores := []float64{0.5, 0.5, 0.1}
	counts := map[int]int{}
	for i := 0; i < 2000; i++ {
		counts[SelectBest(rng, scores, []int{0, 1, 2})]++
	}
	if counts[2] != 0 {
		t.Fatal("lower-scored candidate selected")
	}
	if counts[0] < 800 || counts[1] < 800 {
		t.Fatalf("tie not uniform: %v", counts)
	}
}

func TestSelectProportional(t *testing.T) {
	rng := sim.NewRNG(8)
	scores := []float64{0.75, 0.25}
	counts := map[int]int{}
	for i := 0; i < 8000; i++ {
		counts[SelectProportional(rng, scores, []int{0, 1})]++
	}
	frac := float64(counts[0]) / 8000
	if math.Abs(frac-0.75) > 0.03 {
		t.Fatalf("proportional selection fraction = %v", frac)
	}
}

func TestSelectProportionalZeroScores(t *testing.T) {
	rng := sim.NewRNG(9)
	scores := []float64{0, 0, 0}
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		c := SelectProportional(rng, scores, []int{0, 1, 2})
		if c == -1 {
			t.Fatal("zero scores returned -1")
		}
		counts[c]++
	}
	for i := 0; i < 3; i++ {
		if counts[i] < 800 {
			t.Fatalf("zero-score selection not uniform: %v", counts)
		}
	}
	if got := SelectProportional(rng, scores, nil); got != -1 {
		t.Fatal("empty candidates != -1")
	}
}

func TestNoneBaseline(t *testing.T) {
	m := NewNone(3)
	if m.Name() != "none" {
		t.Fatal("name")
	}
	if err := m.Submit(Report{Rater: 0, Ratee: 1, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if m.Compute() != 0 {
		t.Fatal("Compute should be 0 rounds")
	}
	for i, s := range m.Scores() {
		if s != 0.5 {
			t.Fatalf("score[%d] = %v", i, s)
		}
	}
	if m.Score(0) != 0.5 {
		t.Fatal("Score != 0.5")
	}
}
