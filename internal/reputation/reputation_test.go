package reputation

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestLocalTrustAdd(t *testing.T) {
	lt := NewLocalTrust(3)
	if err := lt.Add(Report{Rater: 0, Ratee: 1, Value: 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := lt.Add(Report{Rater: 0, Ratee: 1, Value: 0.8}); err != nil {
		t.Fatal(err)
	}
	if err := lt.Add(Report{Rater: 0, Ratee: 2, Value: 0.1}); err != nil {
		t.Fatal(err)
	}
	if got := lt.S(0, 1); got != 2 {
		t.Fatalf("S(0,1) = %v, want 2", got)
	}
	if got := lt.S(0, 2); got != 0 {
		t.Fatalf("S(0,2) = %v, want 0 (clamped)", got)
	}
}

func TestLocalTrustRejects(t *testing.T) {
	lt := NewLocalTrust(2)
	if err := lt.Add(Report{Rater: 0, Ratee: 0, Value: 1}); err == nil {
		t.Fatal("self-rating accepted")
	}
	if err := lt.Add(Report{Rater: 0, Ratee: 5, Value: 1}); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := lt.Add(Report{Rater: -1, Ratee: 1, Value: 1}); err == nil {
		t.Fatal("negative rater accepted")
	}
}

func TestNormalizedRowSumsToOne(t *testing.T) {
	f := func(seed uint16) bool {
		rng := sim.NewRNG(uint64(seed))
		n := 5 + rng.Intn(10)
		lt := NewLocalTrust(n)
		for k := 0; k < 50; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			_ = lt.Add(Report{Rater: i, Ratee: j, Value: rng.Float64()})
		}
		pre := UniformPretrust(n)
		for i := 0; i < n; i++ {
			row := lt.NormalizedRow(i, pre)
			sum := 0.0
			for _, v := range row {
				if v < 0 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedRowEmptyFallsBackToPretrust(t *testing.T) {
	lt := NewLocalTrust(3)
	pre, err := PretrustOver(3, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	row := lt.NormalizedRow(0, pre)
	if row[2] != 1 || row[0] != 0 {
		t.Fatalf("empty row = %v, want pretrust", row)
	}
	if lt.HasOutgoing(0) {
		t.Fatal("HasOutgoing on empty row")
	}
}

func TestPretrustOver(t *testing.T) {
	p, err := PretrustOver(4, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if p[1] != 0.5 || p[3] != 0.5 || p[0] != 0 {
		t.Fatalf("pretrust = %v", p)
	}
}

func TestPretrustOverRejectsDegenerateSets(t *testing.T) {
	// An empty set would produce an all-zero vector: the caller must choose
	// UniformPretrust explicitly.
	if _, err := PretrustOver(4, nil); err == nil {
		t.Fatal("empty trusted set accepted")
	}
	// A silently-skipped invalid id would leave the distribution summing
	// below 1.
	if _, err := PretrustOver(2, []int{0, 5}); err == nil {
		t.Fatal("out-of-range trusted id accepted")
	}
	if _, err := PretrustOver(2, []int{-1}); err == nil {
		t.Fatal("negative trusted id accepted")
	}
	// A duplicate would skew double weight onto one peer.
	if _, err := PretrustOver(4, []int{1, 1}); err == nil {
		t.Fatal("duplicate trusted id accepted")
	}
}

func TestLocalTrustDirtySet(t *testing.T) {
	lt := NewLocalTrust(4)
	if lt.HasDirty() {
		t.Fatal("fresh matrix dirty")
	}
	_ = lt.Add(Report{Rater: 2, Ratee: 1, Value: 0.9})
	_ = lt.Add(Report{Rater: 0, Ratee: 3, Value: 0.2})
	if got := lt.DirtyRows(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("dirty rows = %v, want [0 2]", got)
	}
	lt.ClearDirty()
	if lt.HasDirty() {
		t.Fatal("dirty set survived ClearDirty")
	}
	// ResetPeer dirties the peer's own row and every row that rated it.
	lt.ResetPeer(1)
	if got := lt.DirtyRows(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("dirty rows after reset = %v, want [2]", got)
	}
}

func TestLocalTrustAppendRow(t *testing.T) {
	lt := NewLocalTrust(5)
	_ = lt.Add(Report{Rater: 0, Ratee: 3, Value: 0.9})
	_ = lt.Add(Report{Rater: 0, Ratee: 1, Value: 0.9})
	_ = lt.Add(Report{Rater: 0, Ratee: 1, Value: 0.8})
	// Net-negative pairs are excluded (s clamped at 0).
	_ = lt.Add(Report{Rater: 0, Ratee: 2, Value: 0.1})
	cols, vals := lt.AppendRow(0, nil, nil)
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 3 {
		t.Fatalf("cols = %v, want [1 3]", cols)
	}
	if vals[0] != 2 || vals[1] != 1 {
		t.Fatalf("vals = %v, want [2 1]", vals)
	}
}

func TestLocalTrustStateRoundTrip(t *testing.T) {
	lt := NewLocalTrust(4)
	_ = lt.Add(Report{Rater: 0, Ratee: 1, Value: 0.9})
	_ = lt.Add(Report{Rater: 3, Ratee: 2, Value: 0.1})
	lt.ClearDirty()
	_ = lt.Add(Report{Rater: 2, Ratee: 0, Value: 0.7}) // pending dirty row
	st := lt.State()
	if len(st.Dirty) != 1 || st.Dirty[0] != 2 {
		t.Fatalf("state dirty = %v, want [2]", st.Dirty)
	}
	restored := NewLocalTrust(4)
	if err := restored.SetState(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if restored.S(i, j) != lt.S(i, j) {
				t.Fatalf("S(%d,%d) mismatch after round-trip", i, j)
			}
		}
	}
	if got := restored.DirtyRows(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("restored dirty rows = %v, want [2]", got)
	}
	// Equal matrices must encode to equal (canonical) states.
	st2 := restored.State()
	if len(st2.Entries) != len(st.Entries) {
		t.Fatalf("entry count changed: %d vs %d", len(st2.Entries), len(st.Entries))
	}
	for k := range st.Entries {
		if st.Entries[k] != st2.Entries[k] {
			t.Fatalf("entry %d changed: %+v vs %+v", k, st.Entries[k], st2.Entries[k])
		}
	}
	if err := restored.SetState(LocalTrustState{N: 9}); err == nil {
		t.Fatal("wrong-dimension state accepted")
	}
}

func TestGathererDisclosureZeroAndOne(t *testing.T) {
	rng := sim.NewRNG(3)
	m := NewNone(4)
	g := NewGatherer(rng, []float64{0, 1})
	shared0 := 0
	for i := 0; i < 200; i++ {
		ok, err := g.Offer(m, Report{Rater: 0, Ratee: 1, Value: 1})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			shared0++
		}
	}
	if shared0 != 0 {
		t.Fatalf("disclosure 0 shared %d reports", shared0)
	}
	shared1 := 0
	for i := 0; i < 200; i++ {
		ok, _ := g.Offer(m, Report{Rater: 1, Ratee: 0, Value: 1})
		if ok {
			shared1++
		}
	}
	if shared1 != 200 {
		t.Fatalf("disclosure 1 shared %d/200", shared1)
	}
	if g.Gathered != 200 || g.Withheld != 200 {
		t.Fatalf("counters: gathered=%d withheld=%d", g.Gathered, g.Withheld)
	}
}

func TestGathererFraction(t *testing.T) {
	rng := sim.NewRNG(4)
	m := NewNone(2)
	g := NewGatherer(rng, []float64{0.3})
	shared := 0
	for i := 0; i < 5000; i++ {
		ok, _ := g.Offer(m, Report{Rater: 0, Ratee: 1, Value: 1})
		if ok {
			shared++
		}
	}
	frac := float64(shared) / 5000
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("shared fraction = %v, want ~0.3", frac)
	}
}

func TestGathererClampsAndDefaults(t *testing.T) {
	rng := sim.NewRNG(5)
	g := NewGatherer(rng, []float64{-1, 2})
	m := NewNone(3)
	if ok, _ := g.Offer(m, Report{Rater: 0, Ratee: 1}); ok {
		t.Fatal("clamped-to-0 rater shared")
	}
	if ok, _ := g.Offer(m, Report{Rater: 1, Ratee: 0}); !ok {
		t.Fatal("clamped-to-1 rater withheld")
	}
	// Rater beyond the disclosure vector defaults to full disclosure.
	if ok, _ := g.Offer(m, Report{Rater: 2, Ratee: 0}); !ok {
		t.Fatal("unknown rater withheld")
	}
}

func TestSelectBest(t *testing.T) {
	rng := sim.NewRNG(6)
	scores := []float64{0.1, 0.9, 0.5}
	if got := SelectBest(rng, scores, []int{0, 1, 2}); got != 1 {
		t.Fatalf("SelectBest = %d", got)
	}
	if got := SelectBest(rng, scores, nil); got != -1 {
		t.Fatal("empty candidates should return -1")
	}
	if got := SelectBest(rng, scores, []int{7, -1}); got != -1 {
		t.Fatal("invalid candidates should return -1")
	}
}

func TestSelectBestTieBreaksUniformly(t *testing.T) {
	rng := sim.NewRNG(7)
	scores := []float64{0.5, 0.5, 0.1}
	counts := map[int]int{}
	for i := 0; i < 2000; i++ {
		counts[SelectBest(rng, scores, []int{0, 1, 2})]++
	}
	if counts[2] != 0 {
		t.Fatal("lower-scored candidate selected")
	}
	if counts[0] < 800 || counts[1] < 800 {
		t.Fatalf("tie not uniform: %v", counts)
	}
}

func TestSelectProportional(t *testing.T) {
	rng := sim.NewRNG(8)
	scores := []float64{0.75, 0.25}
	counts := map[int]int{}
	for i := 0; i < 8000; i++ {
		counts[SelectProportional(rng, scores, []int{0, 1})]++
	}
	frac := float64(counts[0]) / 8000
	if math.Abs(frac-0.75) > 0.03 {
		t.Fatalf("proportional selection fraction = %v", frac)
	}
}

func TestSelectProportionalZeroScores(t *testing.T) {
	rng := sim.NewRNG(9)
	scores := []float64{0, 0, 0}
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		c := SelectProportional(rng, scores, []int{0, 1, 2})
		if c == -1 {
			t.Fatal("zero scores returned -1")
		}
		counts[c]++
	}
	for i := 0; i < 3; i++ {
		if counts[i] < 800 {
			t.Fatalf("zero-score selection not uniform: %v", counts)
		}
	}
	if got := SelectProportional(rng, scores, nil); got != -1 {
		t.Fatal("empty candidates != -1")
	}
}

func TestNoneBaseline(t *testing.T) {
	m := NewNone(3)
	if m.Name() != "none" {
		t.Fatal("name")
	}
	if err := m.Submit(Report{Rater: 0, Ratee: 1, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if m.Compute() != 0 {
		t.Fatal("Compute should be 0 rounds")
	}
	for i, s := range m.Scores() {
		if s != 0.5 {
			t.Fatalf("score[%d] = %v", i, s)
		}
	}
	if m.Score(0) != 0.5 {
		t.Fatal("Score != 0.5")
	}
}
