package reputation

// The cluster seam: mechanisms whose Compute is dominated by a sparse
// matrix-vector product can hand that product to an external executor — the
// master/worker cluster layer — without giving up the determinism contract.
// The delegate replaces only the SpMV; iteration control, convergence tests
// and score normalization stay inside the mechanism, so a delegated Compute
// is the same solver with its inner product computed elsewhere.

// SpMVDelegate computes y = Aᵀx + mass·dangle for the mechanism's current
// matrix, where mass is the total x weight on empty rows and dangle the
// distribution that weight jumps to (exactly linalg.CSR.MulTranspose's
// contract). It returns false to decline — no workers available, say — in
// which case the mechanism runs the product locally. A delegate MUST be
// bit-exact: the linalg block scatter/fold helpers guarantee this when the
// remote side computes blocks with ScatterBlocks and the caller folds with
// FoldBlocks in canonical order.
type SpMVDelegate func(y, x, dangle []float64) bool

// SpMVDelegator is implemented by mechanisms that can route their Compute's
// inner SpMV through a delegate (nil restores the local kernel).
type SpMVDelegator interface {
	SetSpMVDelegate(fn SpMVDelegate)
}

// BlockScatterer is implemented by mechanisms that expose their current
// matrix through the canonical block decomposition — the worker-side half of
// a delegated SpMV (and the master's local fallback for blocks whose worker
// died). SpMVScatterBlocks must refresh any stale rows first, so a replica
// that folded the same reports holds the same matrix.
type BlockScatterer interface {
	// SpMVBlocks returns the canonical block count (linalg.BlockCount of the
	// mechanism's dimension).
	SpMVBlocks() int
	// SpMVScatterBlocks returns the partial vectors and dangling masses of
	// blocks [lob, hib) for y = Aᵀx, per linalg.CSR.ScatterBlocks.
	SpMVScatterBlocks(x []float64, lob, hib int) (partials [][]float64, masses []float64)
}
