// Package reputation defines the common framework the paper adopts from
// Marti & Garcia-Molina (§2.2): a reputation system decomposes into
// information gathering, scoring & ranking, and response. This package holds
// the shared pieces — feedback reports, the local-trust matrix, the
// disclosure-limited gatherer that ties reputation to the privacy facet, and
// response policies — while the eigentrust, powertrust and trustme
// subpackages implement the cited scoring mechanisms.
package reputation

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Report is one feedback report: rater's rating of ratee for transaction
// TxID, in [0,1]. The JSON encoding backs the serving API and the
// report-wave intervention's schedule envelope; TxID is omitted there —
// the engine assigns transaction ids when a report is applied.
type Report struct {
	TxID  uint64  `json:"-"`
	Rater int     `json:"rater"`
	Ratee int     `json:"ratee"`
	Value float64 `json:"value"`
}

// Mechanism is a pluggable scoring engine ("scoring and ranking" block).
type Mechanism interface {
	// Name identifies the mechanism in experiment output.
	Name() string
	// Submit feeds one gathered report into the mechanism.
	Submit(r Report) error
	// Compute recomputes global scores, returning the number of iterations
	// (rounds) the computation needed.
	Compute() int
	// Score returns the current global score of a peer in [0,1].
	Score(peer int) float64
	// Scores returns all peers' scores indexed by peer id.
	Scores() []float64
}

// SatThreshold is the rating at or above which a transaction counts as
// satisfactory for mechanisms with binary local trust (EigenTrust's
// sat/unsat bookkeeping).
const SatThreshold = 0.5

// BatchSubmitter is implemented by mechanisms that can fold a whole round's
// reports in one call, amortizing per-report overhead (row lookups,
// dirty-set inserts) across the batch. Folding a batch must leave the
// mechanism in exactly the state that calling Submit for each report in
// order would; an invalid report aborts the batch with an error, the
// reports before it already folded. Callers that need per-report error
// isolation (reports of unvetted provenance) must use Submit.
type BatchSubmitter interface {
	SubmitBatch(rs []Report) error
}

// ScoresViewer is implemented by mechanisms that can expose their current
// score vector without copying. The returned slice is READ-ONLY and valid
// only until the mechanism's next Compute, Submit-triggered recompute, or
// state restore: callers that need to retain or mutate scores must use
// Scores() instead. It exists for the per-round observer paths (candidate
// gating, facet measurement) that would otherwise copy n floats every
// round.
type ScoresViewer interface {
	// ScoresView returns the same values Scores() would, uncopied.
	ScoresView() []float64
}

// ScoresOf returns m's scores through the read-only fast path when the
// mechanism offers one, falling back to the copying accessor. The result
// must be treated as read-only and not retained across mechanism mutations
// (see ScoresViewer).
func ScoresOf(m Mechanism) []float64 {
	if v, ok := m.(ScoresViewer); ok {
		return v.ScoresView()
	}
	return m.Scores()
}

// ComputeSharder is implemented by mechanisms whose Compute scatters work
// over parallel worker shards. Implementations guarantee the epoch
// pipeline's determinism contract: scores are bit-for-bit identical for
// every shard count, so the engine may wire its scheduling configuration
// straight through.
type ComputeSharder interface {
	// SetComputeShards sets the worker count used by Compute (values < 1
	// are clamped to 1).
	SetComputeShards(k int)
}

// Convergence describes one iterative Compute run: how many iterations the
// solver performed, the final L1 residual when it stopped, and whether the
// iteration was warm-started from the previous fixed point.
type Convergence struct {
	Iterations int     `json:"iterations"`
	Residual   float64 `json:"residual"`
	Warm       bool    `json:"warm"`
}

// ConvergenceReporter is implemented by mechanisms whose Compute is an
// iterative solver and can report the diagnostics of its most recent run.
type ConvergenceReporter interface {
	// LastConvergence returns the diagnostics of the most recent Compute
	// that actually ran an iteration; ok is false before the first such run.
	LastConvergence() (Convergence, bool)
}

// CommunityAssessor is implemented by mechanisms that can report their
// conclusion about the population: the fraction of rated peers the
// mechanism considers trustworthy. Section 3 of the paper makes this a
// first-class signal — "the set of those levels may indicate the
// trustworthy of the global system": an efficient mechanism concluding that
// the majority is untrustworthy must LOWER trust towards the system, not
// raise it.
type CommunityAssessor interface {
	// TrustworthyFraction returns, over peers with any feedback, the
	// fraction the mechanism concludes are trustworthy (1 when no peer has
	// feedback yet).
	TrustworthyFraction() float64
}

// cell is one (rater, ratee) aggregate of the local-trust matrix.
type cell struct{ sat, unsat int32 }

// LocalTrust accumulates reports into EigenTrust-style local trust values:
// s_ij = sat(i,j) − unsat(i,j), and normalized rows
// c_ij = max(s_ij,0) / Σ_j max(s_ij,0).
//
// The matrix is stored sparsely — one map per rater, holding only pairs
// that ever exchanged a report — and tracks which rows changed since the
// mechanism last materialized them (the dirty set), so a recompute touches
// O(changed rows), not Θ(n²).
type LocalTrust struct {
	n     int
	rows  []map[int32]cell
	dirty map[int32]struct{}
}

// NewLocalTrust returns an empty matrix for n peers.
func NewLocalTrust(n int) *LocalTrust {
	if n < 0 {
		n = 0
	}
	return &LocalTrust{
		n:     n,
		rows:  make([]map[int32]cell, n),
		dirty: make(map[int32]struct{}),
	}
}

// N returns the matrix dimension.
func (l *LocalTrust) N() int { return l.n }

func (l *LocalTrust) markDirty(i int) { l.dirty[int32(i)] = struct{}{} }

// Add folds a report into the matrix. Ratings >= SatThreshold count as
// satisfactory. Out-of-range peers or self-ratings are rejected.
func (l *LocalTrust) Add(r Report) error {
	if r.Rater < 0 || r.Rater >= l.n || r.Ratee < 0 || r.Ratee >= l.n {
		return fmt.Errorf("reputation: report %d->%d out of range [0,%d)", r.Rater, r.Ratee, l.n)
	}
	if r.Rater == r.Ratee {
		return fmt.Errorf("reputation: self-rating by %d rejected", r.Rater)
	}
	if l.rows[r.Rater] == nil {
		l.rows[r.Rater] = make(map[int32]cell)
	}
	c := l.rows[r.Rater][int32(r.Ratee)]
	if r.Value >= SatThreshold {
		c.sat++
	} else {
		c.unsat++
	}
	l.rows[r.Rater][int32(r.Ratee)] = c
	l.markDirty(r.Rater)
	return nil
}

// AddBatch folds a batch of reports, amortizing the row lookup and
// dirty-set insert across consecutive reports by the same rater (a round's
// reports arrive grouped by interaction, so runs of equal raters are
// common). The result is exactly that of calling Add for each report in
// order; the first invalid report aborts the batch with the reports before
// it already folded.
func (l *LocalTrust) AddBatch(rs []Report) error {
	lastRater := -1
	var row map[int32]cell
	for i := range rs {
		r := &rs[i]
		if r.Rater < 0 || r.Rater >= l.n || r.Ratee < 0 || r.Ratee >= l.n {
			return fmt.Errorf("reputation: report %d->%d out of range [0,%d)", r.Rater, r.Ratee, l.n)
		}
		if r.Rater == r.Ratee {
			return fmt.Errorf("reputation: self-rating by %d rejected", r.Rater)
		}
		if r.Rater != lastRater {
			if l.rows[r.Rater] == nil {
				l.rows[r.Rater] = make(map[int32]cell)
			}
			row = l.rows[r.Rater]
			l.markDirty(r.Rater)
			lastRater = r.Rater
		}
		c := row[int32(r.Ratee)]
		if r.Value >= SatThreshold {
			c.sat++
		} else {
			c.unsat++
		}
		row[int32(r.Ratee)] = c
	}
	return nil
}

// S returns max(sat−unsat, 0) for the pair (i, j).
func (l *LocalTrust) S(i, j int) float64 {
	if i < 0 || i >= l.n || j < 0 || j >= l.n {
		return 0
	}
	c := l.rows[i][int32(j)]
	v := c.sat - c.unsat
	if v < 0 {
		return 0
	}
	return float64(v)
}

// AppendRow appends row i's positive local-trust entries — column indices
// ascending, values s_ij > 0 — to the given scratch slices and returns
// them. It is the materialization feed of the mechanisms' CSR rebuild.
func (l *LocalTrust) AppendRow(i int, cols []int32, vals []float64) ([]int32, []float64) {
	if i < 0 || i >= l.n {
		return cols, vals
	}
	start := len(cols)
	//trustlint:ordered the appended keys are sorted just below through the row alias of cols[start:]
	for j, c := range l.rows[i] {
		if c.sat > c.unsat {
			cols = append(cols, j)
		}
	}
	row := cols[start:]
	sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
	for _, j := range row {
		c := l.rows[i][j]
		vals = append(vals, float64(c.sat-c.unsat))
	}
	return cols, vals
}

// NormalizedRow returns row i of the normalized matrix C as a dense vector.
// If the row is empty (peer i has no positive local trust), the pretrust
// distribution is returned instead, per the EigenTrust paper. It exists for
// single-row inspection and the dense reference implementation; the compute
// path materializes rows sparsely via AppendRow.
func (l *LocalTrust) NormalizedRow(i int, pretrust []float64) []float64 {
	row := make([]float64, l.n)
	sum := 0.0
	for j := 0; j < l.n; j++ {
		row[j] = l.S(i, j)
		sum += row[j]
	}
	if sum == 0 {
		copy(row, pretrust)
		return row
	}
	for j := range row {
		row[j] /= sum
	}
	return row
}

// NetPositiveFraction returns, over peers that received at least one
// rating, the fraction whose incoming net trust Σ_i (sat_i − unsat_i) is
// positive — the matrix's conclusion about community trustworthiness.
// It returns 1 when no peer has incoming ratings. Cost: O(nnz).
func (l *LocalTrust) NetPositiveFraction() float64 {
	net := make([]int32, l.n)
	seen := make([]int32, l.n)
	for _, row := range l.rows {
		for j, c := range row {
			net[j] += c.sat - c.unsat
			seen[j] += c.sat + c.unsat
		}
	}
	rated, positive := 0, 0
	for p := 0; p < l.n; p++ {
		if seen[p] == 0 {
			continue
		}
		rated++
		if net[p] > 0 {
			positive++
		}
	}
	if rated == 0 {
		return 1
	}
	return float64(positive) / float64(rated)
}

// ResetPeer erases all local trust involving a peer — the matrix state a
// whitewasher's fresh identity would present (no one has rated it, it has
// rated no one). Every touched row joins the dirty set.
func (l *LocalTrust) ResetPeer(i int) {
	if i < 0 || i >= l.n {
		return
	}
	if l.rows[i] != nil {
		l.rows[i] = nil
		l.markDirty(i)
	}
	for k, row := range l.rows {
		if _, ok := row[int32(i)]; ok {
			delete(row, int32(i))
			l.markDirty(k)
		}
	}
}

// HasOutgoing reports whether peer i has any positive local trust.
func (l *LocalTrust) HasOutgoing(i int) bool {
	if i < 0 || i >= l.n {
		return false
	}
	for _, c := range l.rows[i] {
		if c.sat > c.unsat {
			return true
		}
	}
	return false
}

// DirtyRows returns, in ascending order, the rows changed since the last
// ClearDirty — the rows whose CSR materialization is stale.
func (l *LocalTrust) DirtyRows() []int {
	out := make([]int, 0, len(l.dirty))
	for i := range l.dirty {
		out = append(out, int(i))
	}
	sort.Ints(out)
	return out
}

// HasDirty reports whether any row changed since the last ClearDirty.
func (l *LocalTrust) HasDirty() bool { return len(l.dirty) > 0 }

// ClearDirty empties the dirty set (called after the mechanism has
// rematerialized the rows it reported).
func (l *LocalTrust) ClearDirty() { clear(l.dirty) }

// UniformPretrust returns the uniform distribution over n peers.
func UniformPretrust(n int) []float64 {
	p := make([]float64, n)
	if n == 0 {
		return p
	}
	for i := range p {
		p[i] = 1 / float64(n)
	}
	return p
}

// PretrustOver returns the distribution concentrated uniformly on the given
// pre-trusted peers. The set must be non-empty, in range, and free of
// duplicates: an empty set would yield a degenerate all-zero vector (use
// UniformPretrust for uniform pre-trust), a silently-skipped invalid id
// would leave the distribution summing below 1, and a duplicated id would
// skew double weight onto one peer — all three are configuration mistakes
// the caller must hear about, not absorb.
func PretrustOver(n int, trusted []int) ([]float64, error) {
	if len(trusted) == 0 {
		return nil, fmt.Errorf("reputation: empty pre-trusted set (use UniformPretrust for uniform pre-trust)")
	}
	p := make([]float64, n)
	share := 1 / float64(len(trusted))
	for _, i := range trusted {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("reputation: pre-trusted peer %d out of range [0,%d)", i, n)
		}
		if p[i] != 0 {
			return nil, fmt.Errorf("reputation: duplicate pre-trusted peer %d", i)
		}
		p[i] = share
	}
	return p, nil
}

// Gatherer implements the "information gathering" block under privacy
// constraints: each rater's reports reach the mechanism only with the
// rater's disclosure probability. This is the operational link between the
// paper's privacy axis ("quantity of shared information") and reputation
// power.
type Gatherer struct {
	rng        *sim.RNG
	disclosure []float64
	sharedBy   map[int]int64
	// Gathered and Withheld count reports passed vs suppressed.
	Gathered, Withheld int64
}

// NewGatherer builds a gatherer. disclosure[i] is peer i's probability of
// sharing any given report, clamped to [0,1].
func NewGatherer(rng *sim.RNG, disclosure []float64) *Gatherer {
	d := make([]float64, len(disclosure))
	for i, v := range disclosure {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		d[i] = v
	}
	return &Gatherer{rng: rng, disclosure: d, sharedBy: make(map[int]int64)}
}

// SharedBy returns how many reports the given rater has disclosed.
func (g *Gatherer) SharedBy(rater int) int64 { return g.sharedBy[rater] }

// SetDisclosure updates one rater's disclosure probability in place (clamped
// to [0,1]), preserving the gatherer's random stream and gathering counters.
// This is the delta-update seam the sparse §3 coupling uses: rebuilding the
// gatherer per epoch would recopy an n-length vector and re-split a random
// stream just to move a handful of cells. Out-of-range raters are ignored.
func (g *Gatherer) SetDisclosure(rater int, p float64) {
	if rater < 0 || rater >= len(g.disclosure) {
		return
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	g.disclosure[rater] = p
}

// Admit performs the rater's disclosure draw without delivering anything:
// it returns whether the rater shares the report, counting Withheld when
// not. Callers that buffer admitted reports for batched delivery must call
// Commit for each successfully delivered one, so the Gathered/SharedBy
// accounting stays exactly what per-report Offer calls would produce.
func (g *Gatherer) Admit(rater int) bool {
	p := 1.0
	if rater >= 0 && rater < len(g.disclosure) {
		p = g.disclosure[rater]
	}
	if !g.rng.Bool(p) {
		g.Withheld++
		return false
	}
	return true
}

// Commit records one admitted report as successfully delivered to the
// mechanism (the second half of the Admit/Commit pair).
func (g *Gatherer) Commit(rater int) {
	g.Gathered++
	g.sharedBy[rater]++
}

// Offer submits the report to the mechanism iff the rater's disclosure
// admits it. It reports whether the report was shared.
func (g *Gatherer) Offer(m Mechanism, r Report) (bool, error) {
	if !g.Admit(r.Rater) {
		return false, nil
	}
	if err := m.Submit(r); err != nil {
		return false, err
	}
	g.Commit(r.Rater)
	return true, nil
}

// SelectBest is the "response" block used by the experiments: choose the
// candidate with the highest score, breaking ties uniformly. It returns -1
// for an empty candidate list.
func SelectBest(rng *sim.RNG, scores []float64, candidates []int) int {
	best := -1
	bestScore := -1.0
	ties := 0
	for _, c := range candidates {
		if c < 0 || c >= len(scores) {
			continue
		}
		s := scores[c]
		switch {
		case s > bestScore:
			best, bestScore, ties = c, s, 1
		case s == bestScore:
			// Reservoir-sample among ties for uniformity.
			ties++
			if rng.Intn(ties) == 0 {
				best = c
			}
		}
	}
	return best
}

// SelectProportional chooses a candidate with probability proportional to
// its score (uniform when all scores are zero). It returns -1 for an empty
// list. EigenTrust's paper recommends this to avoid overloading the
// highest-reputation peers.
func SelectProportional(rng *sim.RNG, scores []float64, candidates []int) int {
	total := 0.0
	valid := make([]int, 0, len(candidates))
	for _, c := range candidates {
		if c >= 0 && c < len(scores) && scores[c] >= 0 {
			valid = append(valid, c)
			total += scores[c]
		}
	}
	if len(valid) == 0 {
		return -1
	}
	if total == 0 {
		return valid[rng.Intn(len(valid))]
	}
	x := rng.Float64() * total
	for _, c := range valid {
		x -= scores[c]
		if x <= 0 {
			return c
		}
	}
	return valid[len(valid)-1]
}

// None is the no-reputation baseline: every peer scores the same neutral
// value, so response policies degrade to uniform choice.
type None struct {
	n      int       //trustlint:derived configuration, fixed by NewNone
	scores []float64 //trustlint:derived constant neutral vector, rebuilt identically by NewNone
}

// NewNone returns the baseline for n peers.
func NewNone(n int) *None {
	m := &None{n: n, scores: make([]float64, n)}
	for i := range m.scores {
		m.scores[i] = 0.5
	}
	return m
}

// Name implements Mechanism.
func (*None) Name() string { return "none" }

// Submit implements Mechanism (reports are discarded).
func (*None) Submit(Report) error { return nil }

// Compute implements Mechanism.
func (*None) Compute() int { return 0 }

// Score implements Mechanism.
func (*None) Score(int) float64 { return 0.5 }

// Scores implements Mechanism.
func (m *None) Scores() []float64 {
	return append([]float64(nil), m.scores...)
}

// ScoresView implements ScoresViewer (the baseline's scores never change).
func (m *None) ScoresView() []float64 { return m.scores }

var (
	_ Mechanism    = (*None)(nil)
	_ ScoresViewer = (*None)(nil)
)
