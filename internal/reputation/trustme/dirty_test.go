package trustme

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/reputation"
	"repro/internal/sim"
)

// feedRandom submits `count` random valid reports, continuing the given
// transaction counter so two mechanisms fed from split halves of one stream
// see the same ids a single mechanism would.
func feedRandom(t *testing.T, rng *sim.RNG, tx *uint64, count int, ms ...*Mechanism) {
	t.Helper()
	n := ms[0].cfg.N
	for k := 0; k < count; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		*tx++
		r := reputation.Report{TxID: *tx, Rater: i, Ratee: j, Value: rng.Float64()}
		for _, m := range ms {
			if err := m.Submit(r); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestIncrementalComputeMatchesFull pins the dirty-set refresh: a mechanism
// that computed mid-stream (so only peers rated since then are re-fetched)
// must produce bit-identical scores to one that saw every report before a
// single Compute. Each cached score is a pure function of the peer's own
// THA history, so the two paths are the same arithmetic.
func TestIncrementalComputeMatchesFull(t *testing.T) {
	const n = 25
	inc, err := New(Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(13)
	var tx uint64
	for part := 0; part < 4; part++ {
		feedRandom(t, rng, &tx, 150, inc, full)
		inc.Compute() // partial refreshes along the way
	}
	inc.Compute()
	full.Compute()
	for p := 0; p < n; p++ {
		if inc.Score(p) != full.Score(p) {
			t.Fatalf("score[%d]: incremental %v != full %v", p, inc.Score(p), full.Score(p))
		}
	}
}

// TestTrustworthyFractionIncremental pins the community-assessment cache:
// interleaved TrustworthyFraction calls (which refresh only dirty peers and
// adjust the rated/positive tallies incrementally) must agree with a
// mechanism whose first assessment sees the whole history at once.
func TestTrustworthyFractionIncremental(t *testing.T) {
	const n = 30
	inc, err := New(Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(29)
	var tx uint64
	for part := 0; part < 5; part++ {
		feedRandom(t, rng, &tx, 80, inc, full)
		inc.TrustworthyFraction() // exercises the incremental tally path
	}
	// Whitewash empties one history: the incremental path must remove its
	// old tally contribution, not just skip it.
	inc.Whitewash(3)
	full.Whitewash(3)
	if got, want := inc.TrustworthyFraction(), full.TrustworthyFraction(); got != want {
		t.Fatalf("incremental fraction %v != full-scan fraction %v", got, want)
	}
}

// TestSnapshotRoundTripMidDirty snapshots with dirty peers pending (reports
// after the last Compute and assessment) and checks restore-then-run equals
// the uninterrupted run bit for bit, state blob included. The snapshot does
// not record staleness, so the restored mechanism's first refreshes are
// full-population — which must be indistinguishable from the incremental
// continuation.
func TestSnapshotRoundTripMidDirty(t *testing.T) {
	const n = 20
	orig, err := New(Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(7)
	var tx uint64
	feedRandom(t, rng, &tx, 200, orig)
	orig.Compute()
	orig.TrustworthyFraction()
	feedRandom(t, rng, &tx, 60, orig) // pending dirty peers at snapshot time

	blob, err := orig.MechanismState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := New(Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreMechanismState(blob); err != nil {
		t.Fatal(err)
	}

	feedRandom(t, rng, &tx, 120, orig, restored)
	orig.Compute()
	restored.Compute()
	for p := 0; p < n; p++ {
		if orig.Score(p) != restored.Score(p) {
			t.Fatalf("score[%d]: %v != %v after restore-then-run", p, orig.Score(p), restored.Score(p))
		}
	}
	if a, b := orig.TrustworthyFraction(), restored.TrustworthyFraction(); a != b {
		t.Fatalf("trustworthy fraction diverged after restore: %v != %v", a, b)
	}
	// The blobs cannot be compared byte-wise (gob serializes the certificate
	// map in randomized order), so decode and compare structurally.
	s1, s2 := decodeState(t, orig), decodeState(t, restored)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("states diverged after restore-then-run:\n%+v\n%+v", s1, s2)
	}
}

func decodeState(t *testing.T, m *Mechanism) mechanismState {
	t.Helper()
	blob, err := m.MechanismState()
	if err != nil {
		t.Fatal(err)
	}
	var st mechanismState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}
