package trustme

import (
	"testing"

	"repro/internal/reputation"
)

func TestWhitewashLaundersTrustMe(t *testing.T) {
	m, err := New(Config{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	tx := uint64(1)
	for rater := 1; rater < 10; rater++ {
		if err := m.Submit(reputation.Report{TxID: tx, Rater: rater, Ratee: 0, Value: 0.05}); err != nil {
			t.Fatal(err)
		}
		tx++
	}
	m.Compute()
	before := m.Score(0)
	if before > 0.1 {
		t.Fatalf("badly-rated score = %v", before)
	}
	nymBefore := m.Pseudonym(0)
	m.Whitewash(0)
	m.Compute()
	if got := m.Score(0); got != 0.5 {
		t.Fatalf("whitewashed score = %v, want neutral 0.5", got)
	}
	if m.Pseudonym(0) == nymBefore {
		t.Fatal("pseudonym not rotated on whitewash")
	}
	m.Whitewash(-1) // must not panic
	m.Whitewash(99)
}

func TestTrustMeTrustworthyFraction(t *testing.T) {
	m, err := New(Config{N: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.TrustworthyFraction(); got != 1 {
		t.Fatalf("empty fraction = %v", got)
	}
	reports := []struct {
		ratee int
		value float64
	}{
		{1, 0.9}, {2, 0.8}, {3, 0.1},
	}
	tx := uint64(1)
	for _, r := range reports {
		if err := m.Submit(reputation.Report{TxID: tx, Rater: 0, Ratee: r.ratee, Value: r.value}); err != nil {
			t.Fatal(err)
		}
		tx++
	}
	got := m.TrustworthyFraction()
	want := 2.0 / 3.0
	if got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("fraction = %v, want %v", got, want)
	}
}
