package trustme

import (
	"errors"
	"math"
	"testing"

	"repro/internal/reputation"
	"repro/internal/sim"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestScoreAveragesRatings(t *testing.T) {
	m, err := New(Config{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	ratings := []float64{0.8, 0.6, 1.0}
	for i, v := range ratings {
		if err := m.Submit(reputation.Report{TxID: uint64(i + 1), Rater: i + 1, Ratee: 0, Value: v}); err != nil {
			t.Fatal(err)
		}
	}
	if m.Compute() != 1 {
		t.Fatal("Compute rounds != 1")
	}
	if got := m.Score(0); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("Score = %v, want 0.8", got)
	}
}

func TestUnratedPeerIsNeutral(t *testing.T) {
	m, err := New(Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	m.Compute()
	if got := m.Score(2); got != 0.5 {
		t.Fatalf("unrated score = %v, want 0.5", got)
	}
}

func TestCertificateMismatchRejected(t *testing.T) {
	m, err := New(Config{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Establish tx 7 between peers 1 -> 2.
	if _, err := m.BeginTransaction(7, 1, 2); err != nil {
		t.Fatal(err)
	}
	// Peer 3 tries to file a report under the same transaction.
	err = m.Submit(reputation.Report{TxID: 7, Rater: 3, Ratee: 2, Value: 0})
	if !errors.Is(err, ErrCertMismatch) {
		t.Fatalf("forged report err = %v, want ErrCertMismatch", err)
	}
	if m.Rejected != 1 {
		t.Fatalf("Rejected = %d", m.Rejected)
	}
	// The legitimate parties can still report.
	if err := m.Submit(reputation.Report{TxID: 7, Rater: 1, Ratee: 2, Value: 0.9}); err != nil {
		t.Fatal(err)
	}
}

func TestBeginTransactionIdempotent(t *testing.T) {
	m, err := New(Config{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	c1, err := m.BeginTransaction(1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.BeginTransaction(1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c1.TxID != c2.TxID || string(c1.MAC) != string(c2.MAC) {
		t.Fatal("re-begin produced a different certificate")
	}
	if _, err := m.BeginTransaction(2, 0, 99); err == nil {
		t.Fatal("out-of-range party accepted")
	}
}

func TestWindowBoundsHistory(t *testing.T) {
	m, err := New(Config{N: 3, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 10 bad ratings then 4 good ones: only the last 4 count.
	tx := uint64(1)
	for i := 0; i < 10; i++ {
		if err := m.Submit(reputation.Report{TxID: tx, Rater: 1, Ratee: 0, Value: 0.0}); err != nil {
			t.Fatal(err)
		}
		tx++
	}
	for i := 0; i < 4; i++ {
		if err := m.Submit(reputation.Report{TxID: tx, Rater: 1, Ratee: 0, Value: 1.0}); err != nil {
			t.Fatal(err)
		}
		tx++
	}
	m.Compute()
	if got := m.Score(0); got != 1 {
		t.Fatalf("windowed score = %v, want 1", got)
	}
}

func TestMessagesCounted(t *testing.T) {
	m, err := New(Config{N: 20})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Messages
	if err := m.Submit(reputation.Report{TxID: 5, Rater: 1, Ratee: 2, Value: 0.7}); err != nil {
		t.Fatal(err)
	}
	if m.Messages <= before {
		t.Fatal("message cost not charged")
	}
}

func TestSubmitValidation(t *testing.T) {
	m, err := New(Config{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(reputation.Report{TxID: 1, Rater: 0, Ratee: 0}); err == nil {
		t.Fatal("self-rating accepted")
	}
	if err := m.Submit(reputation.Report{TxID: 1, Rater: 0, Ratee: 9}); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestPseudonymsRotate(t *testing.T) {
	m, err := New(Config{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	p0 := m.Pseudonym(0)
	p1 := m.Pseudonym(1)
	if p0 == "" || p0 == p1 {
		t.Fatal("pseudonyms not distinct")
	}
	m.RotatePseudonyms()
	if m.Pseudonym(0) == p0 {
		t.Fatal("pseudonym did not rotate")
	}
	if m.Pseudonym(-1) != "" || m.Pseudonym(9) != "" {
		t.Fatal("out-of-range pseudonym not empty")
	}
}

func TestScoresSurviveTHAFailure(t *testing.T) {
	m, err := New(Config{N: 30, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := m.Submit(reputation.Report{TxID: uint64(i), Rater: i, Ratee: 0, Value: 0.9}); err != nil {
			t.Fatal(err)
		}
	}
	// Kill one THA replica of peer 0's score and repair the ring.
	addrs := m.Ring().ReplicaAddrs("trustme/score/0")
	m.Ring().Leave(addrs[0])
	m.Ring().Stabilize()
	m.Compute()
	if got := m.Score(0); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("score after THA failure = %v, want 0.9", got)
	}
}

func TestCompositeWorkload(t *testing.T) {
	// 20 peers: 15 good (rated ~0.9), 5 bad (rated ~0.1). Scores must
	// separate the classes.
	m, err := New(Config{N: 20})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(11)
	tx := uint64(1)
	for k := 0; k < 800; k++ {
		i, j := rng.Intn(20), rng.Intn(20)
		if i == j {
			continue
		}
		v := 0.85 + rng.Float64()*0.1
		if j >= 15 {
			v = 0.05 + rng.Float64()*0.1
		}
		if err := m.Submit(reputation.Report{TxID: tx, Rater: i, Ratee: j, Value: v}); err != nil {
			t.Fatal(err)
		}
		tx++
	}
	m.Compute()
	s := m.Scores()
	for i := 0; i < 15; i++ {
		for j := 15; j < 20; j++ {
			if s[i] <= s[j] {
				t.Fatalf("good peer %d (%v) not above bad peer %d (%v)", i, s[i], j, s[j])
			}
		}
	}
}
