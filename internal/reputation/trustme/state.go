package trustme

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/crypto"
	"repro/internal/dht"
	"repro/internal/reputation"
)

// mechanismState is the gob-serialized mutable state of the mechanism: the
// THA-stored rating histories (ring contents + routing counters), the
// transaction certificates, every peer's pseudonym-chain position, the
// protocol cost counters, and the score cache. Ring membership itself is
// configuration (all N peers join in New) and is not serialized.
type mechanismState struct {
	Ring     dht.RingState
	Certs    map[uint64]crypto.TransactionCert
	Nyms     []crypto.ChainState
	Messages int64
	Rejected int64
	Scores   []float64
	Dirty    bool
}

// MechanismState implements reputation.Snapshotter.
func (m *Mechanism) MechanismState() ([]byte, error) {
	st := mechanismState{
		Ring:     m.ring.State(),
		Certs:    make(map[uint64]crypto.TransactionCert, len(m.certs)),
		Nyms:     make([]crypto.ChainState, len(m.nyms)),
		Messages: m.Messages,
		Rejected: m.Rejected,
		Scores:   append([]float64(nil), m.scores...),
		Dirty:    m.dirty,
	}
	for tx, cert := range m.certs {
		st.Certs[tx] = cert
	}
	for i, n := range m.nyms {
		st.Nyms[i] = n.State()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("trustme: encode state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreMechanismState implements reputation.Snapshotter.
func (m *Mechanism) RestoreMechanismState(data []byte) error {
	var st mechanismState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("trustme: decode state: %w", err)
	}
	if len(st.Scores) != m.cfg.N || len(st.Nyms) != m.cfg.N {
		return fmt.Errorf("trustme: state for %d peers, want %d", len(st.Scores), m.cfg.N)
	}
	m.ring.SetState(st.Ring)
	m.certs = make(map[uint64]crypto.TransactionCert, len(st.Certs))
	for tx, cert := range st.Certs {
		m.certs[tx] = cert
	}
	for i := range m.nyms {
		m.nyms[i].SetState(st.Nyms[i])
	}
	m.Messages = st.Messages
	m.Rejected = st.Rejected
	m.scores = append([]float64(nil), st.Scores...)
	m.dirty = st.Dirty
	// The snapshot does not record which cached entries are stale, so the
	// next Compute / TrustworthyFraction must rebuild their caches in full.
	m.dirtyPeers.Reset()
	m.allDirty = true
	m.tfMean = make([]float64, m.cfg.N)
	m.tfHas = make([]bool, m.cfg.N)
	m.tfRated, m.tfPositive = 0, 0
	m.tfDirty.Reset()
	m.tfAll = true
	return nil
}

var _ reputation.Snapshotter = (*Mechanism)(nil)
