// Package trustme implements TrustMe (Singh & Liu, P2P 2003), the second
// reputation baseline the paper cites: anonymous management of trust
// relationships. Each peer's reputation reports are held by trust-holding
// agents (THAs) located through the DHT rather than by the peer itself, and
// every transaction requires a pairwise certificate established before it
// takes place, so reports can neither be forged nor bound to the wrong
// transaction. Raters are recorded under rotating pseudonyms, decoupling
// feedback from identity (the paper's reputation/privacy trade-off made
// concrete).
package trustme

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"

	"repro/internal/crypto"
	"repro/internal/dht"
	"repro/internal/metrics"
	"repro/internal/reputation"
)

// Config parameterizes the mechanism.
type Config struct {
	// N is the number of peers.
	N int
	// Replicas is the THA replication factor (default 3).
	Replicas int
	// THAKey is the secret shared by trust-holding agents for sealing
	// transaction certificates (default derived constant).
	THAKey []byte
	// Window bounds how many most-recent ratings count per peer
	// (default 64).
	Window int
}

func (c Config) withDefaults() (Config, error) {
	if c.N <= 0 {
		return c, fmt.Errorf("trustme: N must be positive, got %d", c.N)
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if len(c.THAKey) == 0 {
		c.THAKey = []byte("trustme-tha-shared-key")
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	return c, nil
}

// ErrNoCertificate is returned when a report arrives for a transaction with
// no established certificate.
var ErrNoCertificate = errors.New("trustme: no transaction certificate")

// ErrCertMismatch is returned when a report's parties do not match its
// certificate (a forged or replayed report).
var ErrCertMismatch = errors.New("trustme: report does not match certificate")

// Mechanism is the TrustMe scoring engine.
type Mechanism struct {
	cfg   Config //trustlint:derived configuration, identical by construction on restore
	ring  *dht.Ring
	certs map[uint64]crypto.TransactionCert
	nyms  []*crypto.PseudonymChain
	// Messages approximates protocol message cost: DHT routing hops plus
	// the certificate exchange per transaction.
	Messages int64
	// Rejected counts reports refused for certificate violations.
	Rejected int64
	scores   []float64
	dirty    bool
	// dirtyPeers tracks which ratees' THA histories changed since the last
	// Compute, so a refresh fetches only those; allDirty forces a full
	// refresh (after a restore, where the snapshot does not say which
	// cached scores are stale).
	dirtyPeers metrics.DirtySet //trustlint:derived restore resets it and sets allDirty, forcing a full cache rebuild
	allDirty   bool             //trustlint:derived set by restore, consumed by the next Compute
	// The community-assessment cache mirrors the per-peer history means the
	// same way, with incremental rated/positive tallies, so
	// TrustworthyFraction re-reads only changed histories. tfDirty is
	// tracked separately from dirtyPeers because the two consumers refresh
	// at different times.
	tfMean     []float64        //trustlint:derived cache rebuilt in full on the first TrustworthyFraction after restore (tfAll)
	tfHas      []bool           //trustlint:derived cache rebuilt in full on the first TrustworthyFraction after restore (tfAll)
	tfRated    int              //trustlint:derived cache rebuilt in full on the first TrustworthyFraction after restore (tfAll)
	tfPositive int              //trustlint:derived cache rebuilt in full on the first TrustworthyFraction after restore (tfAll)
	tfDirty    metrics.DirtySet //trustlint:derived cache rebuilt in full on the first TrustworthyFraction after restore (tfAll)
	tfAll      bool             //trustlint:derived set by restore, consumed by the next TrustworthyFraction
}

var _ reputation.Mechanism = (*Mechanism)(nil)

// New builds the mechanism and joins all N peers to the score-storage ring.
func New(cfg Config) (*Mechanism, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ring := dht.NewRing(cfg.Replicas)
	for i := 0; i < cfg.N; i++ {
		if err := ring.Join(i); err != nil {
			return nil, fmt.Errorf("trustme: join %d: %w", i, err)
		}
	}
	ring.Stabilize()
	m := &Mechanism{
		cfg:   cfg,
		ring:  ring,
		certs: make(map[uint64]crypto.TransactionCert),
		nyms:  make([]*crypto.PseudonymChain, cfg.N),
	}
	for i := range m.nyms {
		m.nyms[i] = crypto.NewPseudonymChain(crypto.SeedFromUint64(uint64(i) + 1))
	}
	m.scores = make([]float64, cfg.N)
	for i := range m.scores {
		m.scores[i] = 0.5
	}
	m.tfMean = make([]float64, cfg.N)
	m.tfHas = make([]bool, cfg.N)
	return m, nil
}

// Name implements reputation.Mechanism.
func (*Mechanism) Name() string { return "trustme" }

// Ring exposes the underlying DHT (for churn experiments).
func (m *Mechanism) Ring() *dht.Ring { return m.ring }

// BeginTransaction establishes the pairwise transaction certificate before
// the transaction takes place, as TrustMe requires. Calling it twice for the
// same txID returns the existing certificate.
func (m *Mechanism) BeginTransaction(txID uint64, consumer, provider int) (crypto.TransactionCert, error) {
	if consumer < 0 || consumer >= m.cfg.N || provider < 0 || provider >= m.cfg.N {
		return crypto.TransactionCert{}, fmt.Errorf("trustme: parties %d,%d out of range", consumer, provider)
	}
	if cert, ok := m.certs[txID]; ok {
		return cert, nil
	}
	// Certificate issuance: locate the provider's THA, then a 2-message
	// exchange.
	hops, err := m.ring.LookupHops(scoreKey(provider))
	if err != nil {
		return crypto.TransactionCert{}, fmt.Errorf("trustme: locate THA: %w", err)
	}
	m.Messages += int64(hops) + 2
	cert := crypto.SealCert(m.cfg.THAKey, txID, peerName(consumer), peerName(provider))
	m.certs[txID] = cert
	return cert, nil
}

// Submit implements reputation.Mechanism. The report must correspond to an
// established certificate with matching parties; otherwise it is rejected.
// For harness convenience a missing certificate is auto-established (the
// certificate exchange always precedes the transaction in the real
// protocol), but a mismatched one is a hard error.
func (m *Mechanism) Submit(r reputation.Report) error {
	if r.Rater < 0 || r.Rater >= m.cfg.N || r.Ratee < 0 || r.Ratee >= m.cfg.N {
		return fmt.Errorf("trustme: report %d->%d out of range", r.Rater, r.Ratee)
	}
	if r.Rater == r.Ratee {
		return fmt.Errorf("trustme: self-rating by %d rejected", r.Rater)
	}
	cert, ok := m.certs[r.TxID]
	if !ok {
		var err error
		cert, err = m.BeginTransaction(r.TxID, r.Rater, r.Ratee)
		if err != nil {
			return err
		}
	}
	if err := crypto.VerifyCert(m.cfg.THAKey, cert); err != nil {
		m.Rejected++
		return fmt.Errorf("trustme: %w", err)
	}
	if cert.From != peerName(r.Rater) || cert.To != peerName(r.Ratee) {
		m.Rejected++
		return fmt.Errorf("%w: tx %d", ErrCertMismatch, r.TxID)
	}
	// Append the rating (recorded under the rater's current pseudonym) to
	// the ratee's THA-stored history.
	key := scoreKey(r.Ratee)
	existing, err := m.ring.Get(key)
	if err != nil && !errors.Is(err, dht.ErrNotFound) {
		return fmt.Errorf("trustme: fetch history: %w", err)
	}
	ratings := decodeRatings(existing)
	ratings = append(ratings, r.Value)
	if len(ratings) > m.cfg.Window {
		ratings = ratings[len(ratings)-m.cfg.Window:]
	}
	if err := m.ring.Put(key, encodeRatings(ratings)); err != nil {
		return fmt.Errorf("trustme: store history: %w", err)
	}
	_ = m.nyms[r.Rater].Current() // pseudonym under which the report is filed
	m.Messages += 2               // store + ack (routing hops counted by ring)
	m.dirty = true
	m.dirtyPeers.Mark(r.Ratee)
	m.tfDirty.Mark(r.Ratee)
	return nil
}

// Compute refreshes the score cache from THA storage. TrustMe is not
// iterative, so it always completes in one round. Only peers whose stored
// history changed since the last Compute are re-fetched: each cached score
// is a pure function of the peer's own THA history, so skipping untouched
// peers is bit-identical to the full rescan.
func (m *Mechanism) Compute() int {
	if !m.dirty {
		return 0
	}
	if m.allDirty {
		for p := 0; p < m.cfg.N; p++ {
			m.scores[p] = m.fetchScore(p)
		}
		m.allDirty = false
	} else {
		for _, p := range m.dirtyPeers.Sorted() {
			m.scores[p] = m.fetchScore(p)
		}
	}
	m.dirtyPeers.Reset()
	m.dirty = false
	return 1
}

func (m *Mechanism) fetchScore(peer int) float64 {
	v, err := m.ring.Get(scoreKey(peer))
	if err != nil {
		return 0.5 // no history: neutral score
	}
	ratings := decodeRatings(v)
	if len(ratings) == 0 {
		return 0.5
	}
	sum := 0.0
	for _, r := range ratings {
		sum += r
	}
	return sum / float64(len(ratings))
}

// Score implements reputation.Mechanism.
func (m *Mechanism) Score(peer int) float64 {
	if peer < 0 || peer >= len(m.scores) {
		return 0
	}
	return m.scores[peer]
}

// Scores implements reputation.Mechanism.
func (m *Mechanism) Scores() []float64 {
	out := make([]float64, len(m.scores))
	copy(out, m.scores)
	return out
}

// ScoresView implements reputation.ScoresViewer: the score cache without
// the copy. Read-only; valid until the next Compute or restore.
func (m *Mechanism) ScoresView() []float64 { return m.scores }

var _ reputation.ScoresViewer = (*Mechanism)(nil)

// TrustworthyFraction implements reputation.CommunityAssessor: the fraction
// of peers with THA-stored history whose mean rating is at least 0.5. The
// per-peer means and the rated/positive tallies are cached and refreshed
// only for peers whose history changed, so the assessment costs O(changed)
// ring reads instead of O(N). It mutates the cache and is meant for the
// sequential measurement barrier, not concurrent readers. Scores served via
// Score/Scores stay deliberately stale between Computes; the assessment
// cache is separate and never freshens them.
func (m *Mechanism) TrustworthyFraction() float64 {
	if m.tfAll {
		m.tfRated, m.tfPositive = 0, 0
		for p := 0; p < m.cfg.N; p++ {
			m.tfHas[p] = false
			m.refreshTF(p)
		}
		m.tfAll = false
	} else {
		for _, p := range m.tfDirty.Sorted() {
			m.refreshTF(p)
		}
	}
	m.tfDirty.Reset()
	if m.tfRated == 0 {
		return 1
	}
	return float64(m.tfPositive) / float64(m.tfRated)
}

// refreshTF re-derives one peer's assessment-cache entry from THA storage,
// keeping the rated/positive tallies exact.
func (m *Mechanism) refreshTF(p int) {
	if m.tfHas[p] {
		m.tfRated--
		if m.tfMean[p] >= 0.5 {
			m.tfPositive--
		}
		m.tfHas[p] = false
	}
	v, err := m.ring.Get(scoreKey(p))
	if err != nil {
		return
	}
	ratings := decodeRatings(v)
	if len(ratings) == 0 {
		return
	}
	sum := 0.0
	for _, r := range ratings {
		sum += r
	}
	m.tfMean[p] = sum / float64(len(ratings))
	m.tfHas[p] = true
	m.tfRated++
	if m.tfMean[p] >= 0.5 {
		m.tfPositive++
	}
}

var _ reputation.CommunityAssessor = (*Mechanism)(nil)

// Whitewash models a peer abandoning its identity: its THA-stored rating
// history is deleted and its pseudonym rotated. Because TrustMe defaults
// unknown peers to the neutral score 0.5, whitewashing launders a bad
// reputation back to neutral — the vulnerability the adversary taxonomy
// predicts for neutral-default, identity-bound scores.
func (m *Mechanism) Whitewash(peer int) {
	if peer < 0 || peer >= m.cfg.N {
		return
	}
	m.ring.Delete(scoreKey(peer))
	m.nyms[peer].Advance()
	m.dirty = true
	m.dirtyPeers.Mark(peer)
	m.tfDirty.Mark(peer)
}

// RotatePseudonyms advances every peer's pseudonym chain (an anonymity
// epoch change).
func (m *Mechanism) RotatePseudonyms() {
	for _, n := range m.nyms {
		n.Advance()
	}
}

// Pseudonym returns the peer's current pseudonym.
func (m *Mechanism) Pseudonym(peer int) string {
	if peer < 0 || peer >= len(m.nyms) {
		return ""
	}
	return m.nyms[peer].Current()
}

func peerName(p int) string { return "peer-" + strconv.Itoa(p) }

func scoreKey(p int) string { return "trustme/score/" + strconv.Itoa(p) }

func encodeRatings(rs []float64) []byte {
	buf := make([]byte, 8*len(rs))
	for i, r := range rs {
		binary.BigEndian.PutUint64(buf[i*8:], math.Float64bits(r))
	}
	return buf
}

func decodeRatings(b []byte) []float64 {
	out := make([]float64, 0, len(b)/8)
	for i := 0; i+8 <= len(b); i += 8 {
		out = append(out, math.Float64frombits(binary.BigEndian.Uint64(b[i:])))
	}
	return out
}
