package adversary

import (
	"testing"

	"repro/internal/sim"
)

func avgQuality(b Behavior, rng *sim.RNG, t, n int) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += b.ServiceQuality(rng, t)
	}
	return sum / float64(n)
}

func TestHonestBehavior(t *testing.T) {
	rng := sim.NewRNG(1)
	b := MustNew(Honest, Config{})
	if b.Class() != Honest {
		t.Fatal("class mismatch")
	}
	if !b.Serves(rng) {
		t.Fatal("honest peer refused service")
	}
	if q := avgQuality(b, rng, 0, 500); q < 0.85 || q > 0.95 {
		t.Fatalf("honest quality = %v, want ~0.9", q)
	}
	if got := b.Rate(rng, 5, 0.7); got != 0.7 {
		t.Fatalf("honest rating = %v, want truthful", got)
	}
	if !b.Honest(3) {
		t.Fatal("honest peer reported dishonest")
	}
}

func TestMaliciousBehavior(t *testing.T) {
	rng := sim.NewRNG(2)
	b := MustNew(Malicious, Config{})
	if q := avgQuality(b, rng, 0, 500); q > 0.2 {
		t.Fatalf("malicious quality = %v, want ~0.1", q)
	}
	if got := b.Rate(rng, 1, 0.9); got > 0.2 {
		t.Fatalf("malicious rating of good partner = %v, want inverted", got)
	}
	if b.Honest(1) {
		t.Fatal("malicious peer claims honesty")
	}
}

func TestSelfishBehavior(t *testing.T) {
	rng := sim.NewRNG(3)
	b := MustNew(Selfish, Config{SelfishServeProb: 0.2})
	serves := 0
	for i := 0; i < 10000; i++ {
		if b.Serves(rng) {
			serves++
		}
	}
	if serves < 1700 || serves > 2300 {
		t.Fatalf("selfish served %d/10000, want ~2000", serves)
	}
	// When it serves, quality is good and feedback honest.
	if q := avgQuality(b, rng, 0, 500); q < 0.85 {
		t.Fatalf("selfish quality = %v", q)
	}
	if !b.Honest(0) {
		t.Fatal("selfish should rate honestly")
	}
}

func TestTraitorOscillates(t *testing.T) {
	rng := sim.NewRNG(4)
	b := MustNew(Traitor, Config{TraitorPeriod: 10})
	early := avgQuality(b, rng, 5, 200)  // phase 0: good
	late := avgQuality(b, rng, 15, 200)  // phase 1: bad
	again := avgQuality(b, rng, 25, 200) // phase 0 again
	if early < 0.8 || late > 0.2 || again < 0.8 {
		t.Fatalf("traitor phases: %v / %v / %v", early, late, again)
	}
}

func TestSlandererLiesButServesWell(t *testing.T) {
	rng := sim.NewRNG(5)
	b := MustNew(Slanderer, Config{})
	if q := avgQuality(b, rng, 0, 500); q < 0.85 {
		t.Fatalf("slanderer quality = %v, want good", q)
	}
	if got := b.Rate(rng, 2, 0.9); got > 0.2 {
		t.Fatalf("slanderer rating = %v, want inverted", got)
	}
	if b.Honest(2) {
		t.Fatal("slanderer claims honesty")
	}
}

func TestColluderInflatesClique(t *testing.T) {
	rng := sim.NewRNG(6)
	b := MustNew(Colluder, Config{Clique: map[int]bool{7: true, 8: true}})
	if got := b.Rate(rng, 7, 0.1); got != 1 {
		t.Fatalf("clique rating = %v, want 1", got)
	}
	if got := b.Rate(rng, 3, 0.4); got != 0.4 {
		t.Fatalf("non-clique rating = %v, want truthful", got)
	}
	if b.Honest(7) {
		t.Fatal("colluder honest about clique member")
	}
	if !b.Honest(3) {
		t.Fatal("colluder dishonest about outsider")
	}
	if q := avgQuality(b, rng, 0, 500); q > 0.2 {
		t.Fatalf("colluder quality = %v, want bad", q)
	}
}

func TestColluderRequiresClique(t *testing.T) {
	if _, err := New(Colluder, Config{}); err == nil {
		t.Fatal("colluder without clique accepted")
	}
}

func TestNewUnknownClass(t *testing.T) {
	if _, err := New(Class(99), Config{}); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestQualityAlwaysInRange(t *testing.T) {
	rng := sim.NewRNG(7)
	for _, c := range []Class{Honest, Malicious, Selfish, Traitor, Slanderer} {
		b := MustNew(c, Config{Noise: 0.3})
		for i := 0; i < 1000; i++ {
			q := b.ServiceQuality(rng, i)
			if q < 0 || q > 1 {
				t.Fatalf("%v quality %v out of range", c, q)
			}
		}
	}
}

func TestClassString(t *testing.T) {
	if Honest.String() != "honest" || Traitor.String() != "traitor" {
		t.Fatal("class names wrong")
	}
	if Class(42).String() == "" {
		t.Fatal("unknown class has empty name")
	}
}

func TestMixAssignProportions(t *testing.T) {
	rng := sim.NewRNG(8)
	mix := Mix{Fractions: map[Class]float64{Honest: 0.7, Malicious: 0.3}}
	behaviors, classes, err := mix.Assign(rng, 200, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(behaviors) != 200 || len(classes) != 200 {
		t.Fatal("wrong population size")
	}
	counts := map[Class]int{}
	for i, c := range classes {
		counts[c]++
		if behaviors[i].Class() != c {
			t.Fatal("behavior/class mismatch")
		}
	}
	if counts[Honest] != 140 || counts[Malicious] != 60 {
		t.Fatalf("counts = %v, want 140/60", counts)
	}
}

func TestMixAssignLargestRemainder(t *testing.T) {
	rng := sim.NewRNG(9)
	mix := Mix{Fractions: map[Class]float64{Honest: 1, Malicious: 1, Selfish: 1}}
	_, classes, err := mix.Assign(rng, 10, Config{})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Class]int{}
	for _, c := range classes {
		counts[c]++
	}
	total := 0
	for _, n := range counts {
		if n < 3 || n > 4 {
			t.Fatalf("unbalanced thirds: %v", counts)
		}
		total += n
	}
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
}

func TestMixAssignShuffles(t *testing.T) {
	rng := sim.NewRNG(10)
	mix := Mix{Fractions: map[Class]float64{Honest: 0.5, Malicious: 0.5}}
	_, classes, err := mix.Assign(rng, 100, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Malicious peers must not all be in the second half.
	firstHalfMal := 0
	for _, c := range classes[:50] {
		if c == Malicious {
			firstHalfMal++
		}
	}
	if firstHalfMal == 0 || firstHalfMal == 50 {
		t.Fatalf("assignment not shuffled: %d malicious in first half", firstHalfMal)
	}
}

func TestMixColludersShareClique(t *testing.T) {
	rng := sim.NewRNG(11)
	mix := Mix{Fractions: map[Class]float64{Honest: 0.8, Colluder: 0.2}}
	behaviors, classes, err := mix.Assign(rng, 50, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var colluders []int
	for id, c := range classes {
		if c == Colluder {
			colluders = append(colluders, id)
		}
	}
	if len(colluders) != 10 {
		t.Fatalf("colluders = %d", len(colluders))
	}
	// Every colluder must rate every other colluder 1.
	for _, a := range colluders {
		for _, b := range colluders {
			if a == b {
				continue
			}
			if got := behaviors[a].Rate(rng, b, 0.1); got != 1 {
				t.Fatalf("colluder %d rated clique member %d as %v", a, b, got)
			}
		}
	}
}

func TestMixAssignErrors(t *testing.T) {
	rng := sim.NewRNG(12)
	if _, _, err := (Mix{}).Assign(rng, 10, Config{}); err == nil {
		t.Fatal("empty mix accepted")
	}
	m := Mix{Fractions: map[Class]float64{Honest: 1}}
	if _, _, err := m.Assign(rng, 0, Config{}); err == nil {
		t.Fatal("zero population accepted")
	}
	bad := Mix{Fractions: map[Class]float64{Honest: -1, Malicious: 2}}
	if _, _, err := bad.Assign(rng, 10, Config{}); err == nil {
		t.Fatal("negative fraction accepted")
	}
}
