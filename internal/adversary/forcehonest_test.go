package adversary

import (
	"testing"

	"repro/internal/sim"
)

func TestForceHonestGuaranteesClass(t *testing.T) {
	rng := sim.NewRNG(21)
	mix := Mix{
		Fractions:   map[Class]float64{Honest: 0.5, Malicious: 0.5},
		ForceHonest: []int{0, 1, 2},
	}
	for trial := 0; trial < 20; trial++ {
		_, classes, err := mix.Assign(rng, 40, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range []int{0, 1, 2} {
			if classes[id] != Honest {
				t.Fatalf("trial %d: forced peer %d has class %v", trial, id, classes[id])
			}
		}
		// Class counts are preserved by the swap.
		counts := map[Class]int{}
		for _, c := range classes {
			counts[c]++
		}
		if counts[Honest] != 20 || counts[Malicious] != 20 {
			t.Fatalf("counts changed: %v", counts)
		}
	}
}

func TestForceHonestBestEffortWhenImpossible(t *testing.T) {
	rng := sim.NewRNG(23)
	mix := Mix{
		Fractions:   map[Class]float64{Malicious: 1},
		ForceHonest: []int{0},
	}
	_, classes, err := mix.Assign(rng, 10, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// No honest peers exist to swap with; id 0 keeps its class.
	if classes[0] != Malicious {
		t.Fatalf("impossible force produced %v", classes[0])
	}
}

func TestForceHonestIgnoresOutOfRange(t *testing.T) {
	rng := sim.NewRNG(25)
	mix := Mix{
		Fractions:   map[Class]float64{Honest: 1},
		ForceHonest: []int{-3, 99},
	}
	if _, _, err := mix.Assign(rng, 10, Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestForceHonestDoesNotStealFromOtherForcedSlot(t *testing.T) {
	rng := sim.NewRNG(27)
	mix := Mix{
		Fractions:   map[Class]float64{Honest: 0.2, Malicious: 0.8},
		ForceHonest: []int{0, 1},
	}
	for trial := 0; trial < 30; trial++ {
		_, classes, err := mix.Assign(rng, 10, Config{})
		if err != nil {
			t.Fatal(err)
		}
		// Exactly 2 honest peers exist; both must land on the forced ids.
		if classes[0] != Honest || classes[1] != Honest {
			t.Fatalf("trial %d: forced slots = %v %v", trial, classes[0], classes[1])
		}
	}
}
