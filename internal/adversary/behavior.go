// Package adversary models peer behaviour classes. Section 2.2 of the paper
// scopes reputation design by "expected user behavior ... as well as
// adversarial goals and power (e.g., selfish peers, malicious peers,
// traitors, whitewashers)", following Marti & Garcia-Molina's taxonomy.
// Each class decides (a) the service quality a peer delivers, (b) whether it
// serves at all, and (c) how honestly it rates partners.
package adversary

import (
	"fmt"

	"repro/internal/sim"
)

// Class enumerates the behaviour classes used across experiments.
type Class int

// Behaviour classes. Honest is the baseline; the rest are the adversarial
// powers named by the paper (plus slanderers and colluders from the cited
// taxonomy).
const (
	Honest Class = iota + 1
	Malicious
	Selfish
	Traitor
	Whitewasher
	Slanderer
	Colluder
)

var classNames = map[Class]string{
	Honest:      "honest",
	Malicious:   "malicious",
	Selfish:     "selfish",
	Traitor:     "traitor",
	Whitewasher: "whitewasher",
	Slanderer:   "slanderer",
	Colluder:    "colluder",
}

// String returns the lowercase class name.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ClassNamed resolves a lowercase class name ("honest", "malicious", ...)
// back to its Class; ok is false for unknown names.
func ClassNamed(name string) (Class, bool) {
	for c, s := range classNames {
		if s == name {
			return c, true
		}
	}
	return 0, false
}

// MarshalText encodes the class as its lowercase name, so JSON scenario
// specs read "malicious" instead of a magic integer.
func (c Class) MarshalText() ([]byte, error) {
	s, ok := classNames[c]
	if !ok {
		return nil, fmt.Errorf("adversary: unknown class %d", int(c))
	}
	return []byte(s), nil
}

// UnmarshalText decodes a lowercase class name.
func (c *Class) UnmarshalText(text []byte) error {
	cls, ok := ClassNamed(string(text))
	if !ok {
		return fmt.Errorf("adversary: unknown class name %q", string(text))
	}
	*c = cls
	return nil
}

// Behavior is one peer's behavioural policy.
type Behavior interface {
	// Class identifies the behaviour model.
	Class() Class
	// Serves reports whether the peer accepts a service request.
	Serves(rng *sim.RNG) bool
	// ServiceQuality returns the quality in [0,1] the peer delivers at
	// logical step t (traitors oscillate with t).
	ServiceQuality(rng *sim.RNG, t int) float64
	// Rate converts an observed quality from a partner into the rating the
	// peer reports ([0,1]); liars invert or inflate.
	Rate(rng *sim.RNG, partner int, observed float64) float64
	// Honest reports whether Rate is truthful for this partner (ground
	// truth used by experiment metrics, never by protocols).
	Honest(partner int) bool
}

// Config tunes the behaviour models.
type Config struct {
	// GoodQuality is the mean quality delivered by well-behaved peers
	// (default 0.9).
	GoodQuality float64
	// BadQuality is the mean quality delivered by misbehaving peers
	// (default 0.1).
	BadQuality float64
	// Noise is the +/- uniform jitter applied to qualities (default 0.05).
	Noise float64
	// TraitorPeriod is the oscillation period for traitors (default 50):
	// they behave well for one period, then badly for one period.
	TraitorPeriod int
	// SelfishServeProb is the probability a selfish peer serves (default 0.1).
	SelfishServeProb float64
	// Clique is the set of partner ids a colluder inflates (required for
	// Colluder).
	Clique map[int]bool
}

func (c Config) withDefaults() Config {
	if c.GoodQuality == 0 {
		c.GoodQuality = 0.9
	}
	if c.BadQuality == 0 {
		c.BadQuality = 0.1
	}
	if c.Noise == 0 {
		c.Noise = 0.05
	}
	if c.TraitorPeriod == 0 {
		c.TraitorPeriod = 50
	}
	if c.SelfishServeProb == 0 {
		c.SelfishServeProb = 0.1
	}
	return c
}

// New constructs the behaviour for a class. It returns an error for unknown
// classes or a Colluder without a clique.
func New(class Class, cfg Config) (Behavior, error) {
	cfg = cfg.withDefaults()
	switch class {
	case Honest, Whitewasher:
		// A whitewasher behaves maliciously but resets identity via churn;
		// its in-protocol service behaviour is malicious.
		if class == Whitewasher {
			return &basic{class: Whitewasher, cfg: cfg, quality: cfg.BadQuality, honest: false}, nil
		}
		return &basic{class: Honest, cfg: cfg, quality: cfg.GoodQuality, honest: true}, nil
	case Malicious:
		return &basic{class: Malicious, cfg: cfg, quality: cfg.BadQuality, honest: false}, nil
	case Selfish:
		return &selfish{cfg: cfg}, nil
	case Traitor:
		return &traitor{cfg: cfg}, nil
	case Slanderer:
		return &slanderer{cfg: cfg}, nil
	case Colluder:
		if len(cfg.Clique) == 0 {
			return nil, fmt.Errorf("adversary: colluder requires a non-empty clique")
		}
		return &colluder{cfg: cfg}, nil
	default:
		return nil, fmt.Errorf("adversary: unknown class %d", int(class))
	}
}

// MustNew is New for static configurations known to be valid; it panics on
// error and is intended for tests and example mains.
func MustNew(class Class, cfg Config) Behavior {
	b, err := New(class, cfg)
	if err != nil {
		panic(err)
	}
	return b
}

func jitter(rng *sim.RNG, q, noise float64) float64 {
	q += (rng.Float64()*2 - 1) * noise
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// basic serves a fixed mean quality; honest peers rate truthfully,
// malicious/whitewashing peers rate adversarially (invert).
type basic struct {
	class   Class
	cfg     Config
	quality float64
	honest  bool
}

func (b *basic) Class() Class            { return b.class }
func (b *basic) Serves(*sim.RNG) bool    { return true }
func (b *basic) Honest(partner int) bool { return b.honest }
func (b *basic) ServiceQuality(rng *sim.RNG, t int) float64 {
	return jitter(rng, b.quality, b.cfg.Noise)
}
func (b *basic) Rate(rng *sim.RNG, partner int, observed float64) float64 {
	if b.honest {
		return observed
	}
	return 1 - observed // malicious peers also lie in feedback
}

// selfish free-riders deliver good quality when they bother to serve, and
// rate honestly — their damage is refusal, not lies.
type selfish struct{ cfg Config }

func (s *selfish) Class() Class             { return Selfish }
func (s *selfish) Serves(rng *sim.RNG) bool { return rng.Bool(s.cfg.SelfishServeProb) }
func (s *selfish) Honest(partner int) bool  { return true }
func (s *selfish) ServiceQuality(rng *sim.RNG, t int) float64 {
	return jitter(rng, s.cfg.GoodQuality, s.cfg.Noise)
}
func (s *selfish) Rate(rng *sim.RNG, partner int, observed float64) float64 {
	return observed
}

// traitor oscillates: good for TraitorPeriod steps (building reputation),
// then bad for TraitorPeriod steps (milking it).
type traitor struct{ cfg Config }

func (tr *traitor) Class() Class            { return Traitor }
func (tr *traitor) Serves(*sim.RNG) bool    { return true }
func (tr *traitor) Honest(partner int) bool { return true }
func (tr *traitor) ServiceQuality(rng *sim.RNG, t int) float64 {
	phase := (t / tr.cfg.TraitorPeriod) % 2
	if phase == 0 {
		return jitter(rng, tr.cfg.GoodQuality, tr.cfg.Noise)
	}
	return jitter(rng, tr.cfg.BadQuality, tr.cfg.Noise)
}
func (tr *traitor) Rate(rng *sim.RNG, partner int, observed float64) float64 {
	return observed
}

// slanderer provides good service but reports the inverse of what it
// observes, poisoning the feedback pool.
type slanderer struct{ cfg Config }

func (s *slanderer) Class() Class            { return Slanderer }
func (s *slanderer) Serves(*sim.RNG) bool    { return true }
func (s *slanderer) Honest(partner int) bool { return false }
func (s *slanderer) ServiceQuality(rng *sim.RNG, t int) float64 {
	return jitter(rng, s.cfg.GoodQuality, s.cfg.Noise)
}
func (s *slanderer) Rate(rng *sim.RNG, partner int, observed float64) float64 {
	return 1 - observed
}

// colluder serves badly but rates clique members with perfect scores and
// everyone else truthfully-low, inflating the clique's standing.
type colluder struct{ cfg Config }

func (c *colluder) Class() Class         { return Colluder }
func (c *colluder) Serves(*sim.RNG) bool { return true }
func (c *colluder) Honest(partner int) bool {
	return !c.cfg.Clique[partner]
}
func (c *colluder) ServiceQuality(rng *sim.RNG, t int) float64 {
	return jitter(rng, c.cfg.BadQuality, c.cfg.Noise)
}
func (c *colluder) Rate(rng *sim.RNG, partner int, observed float64) float64 {
	if c.cfg.Clique[partner] {
		return 1
	}
	return observed
}

// Mix describes a population composition; weights need not sum to 1 (they
// are normalized).
type Mix struct {
	Fractions map[Class]float64
	// ForceHonest lists peer ids guaranteed to be assigned the Honest
	// class (swapped with honest peers elsewhere in the shuffle). This
	// models EigenTrust's deployment assumption that the pre-trusted set
	// consists of known-good peers (the network founders). It is
	// best-effort: if the mix contains fewer honest peers than forced ids,
	// the excess ids keep their sampled class.
	ForceHonest []int
}

// Assign deterministically assigns n peers to classes proportionally to the
// mix (largest-remainder), shuffled by rng. Colluders all share one clique.
// It returns the behaviour list and the ground-truth class per peer.
// Validate checks the composition without assigning behaviours. An empty
// Fractions map is valid (callers default it to all honest).
func (m Mix) Validate() error {
	total := 0.0
	for _, f := range m.Fractions {
		if f < 0 {
			return fmt.Errorf("adversary: negative fraction")
		}
		total += f
	}
	if len(m.Fractions) > 0 && total == 0 {
		return fmt.Errorf("adversary: empty mix")
	}
	return nil
}

func (m Mix) Assign(rng *sim.RNG, n int, cfg Config) ([]Behavior, []Class, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("adversary: population size %d must be positive", n)
	}
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	if len(m.Fractions) == 0 {
		return nil, nil, fmt.Errorf("adversary: empty mix")
	}
	total := 0.0
	for _, f := range m.Fractions {
		total += f
	}
	classes := []Class{Honest, Malicious, Selfish, Traitor, Whitewasher, Slanderer, Colluder}
	counts := make(map[Class]int)
	assigned := 0
	type rem struct {
		c Class
		r float64
	}
	var rems []rem
	for _, c := range classes {
		exact := m.Fractions[c] / total * float64(n)
		k := int(exact)
		counts[c] = k
		assigned += k
		rems = append(rems, rem{c, exact - float64(k)})
	}
	// Largest remainder fills the gap deterministically.
	for assigned < n {
		best := 0
		for i := 1; i < len(rems); i++ {
			if rems[i].r > rems[best].r {
				best = i
			}
		}
		counts[rems[best].c]++
		rems[best].r = -1
		assigned++
	}
	// Build the id list, shuffle for placement, then construct behaviours.
	classByPeer := make([]Class, 0, n)
	for _, c := range classes {
		for i := 0; i < counts[c]; i++ {
			classByPeer = append(classByPeer, c)
		}
	}
	rng.Shuffle(len(classByPeer), func(i, j int) {
		classByPeer[i], classByPeer[j] = classByPeer[j], classByPeer[i]
	})
	// Honour ForceHonest by swapping honest assignments into the forced
	// slots.
	forced := make(map[int]bool, len(m.ForceHonest))
	for _, id := range m.ForceHonest {
		if id >= 0 && id < n {
			forced[id] = true
		}
	}
	for _, id := range m.ForceHonest {
		if id < 0 || id >= n || classByPeer[id] == Honest {
			continue
		}
		for j := 0; j < n; j++ {
			if classByPeer[j] == Honest && !forced[j] {
				classByPeer[id], classByPeer[j] = classByPeer[j], classByPeer[id]
				break
			}
		}
	}
	clique := make(map[int]bool)
	for id, c := range classByPeer {
		if c == Colluder {
			clique[id] = true
		}
	}
	behaviors := make([]Behavior, n)
	for id, c := range classByPeer {
		bcfg := cfg
		if c == Colluder {
			bcfg.Clique = clique
		}
		b, err := New(c, bcfg)
		if err != nil {
			return nil, nil, err
		}
		behaviors[id] = b
	}
	return behaviors, classByPeer, nil
}
