package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/trustnet"
)

// TestConcurrentQueriesUnderAdvance is the -race hammer for the serving
// layer: eight reader goroutines pound score, rank, and top-K queries —
// deliberately holding views across epoch swaps — while the background loop
// advances epochs as fast as it can and external reports land at boundaries,
// under shards 1 and 4. Every view a reader observes must be epoch-consistent
// (checksum intact, rank a permutation agreeing with the order) and epochs
// must only move forward.
func TestConcurrentQueriesUnderAdvance(t *testing.T) {
	const (
		readers   = 8
		maxEpochs = 30
	)
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			eng, err := trustnet.New(servedScenario(31, trustnet.WithShards(shards))...)
			if err != nil {
				t.Fatal(err)
			}
			srv, err := New(Config{Engine: eng, MaxEpochs: maxEpochs})
			if err != nil {
				t.Fatal(err)
			}

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var (
				wg      sync.WaitGroup
				failed  atomic.Bool
				failMsg atomic.Pointer[string]
				reads   atomic.Int64
			)
			fail := func(format string, args ...any) {
				msg := fmt.Sprintf(format, args...)
				failMsg.CompareAndSwap(nil, &msg)
				failed.Store(true)
			}
			for g := 0; g < readers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					lastEpoch := -1
					var held *View // deliberately stale view held across swaps
					for i := 0; ctx.Err() == nil && !failed.Load(); i++ {
						v := srv.View()
						if v.Epoch < lastEpoch {
							fail("reader %d: epoch went backwards %d -> %d", g, lastEpoch, v.Epoch)
							return
						}
						lastEpoch = v.Epoch
						if !v.Consistent() {
							fail("reader %d: torn view at epoch %d", g, v.Epoch)
							return
						}
						user := (g*131 + i*17) % v.Len()
						score, err := v.Score(user)
						if err != nil {
							fail("reader %d: %v", g, err)
							return
						}
						rank, _ := v.Rank(user)
						top := v.TopK(5)
						if rank <= len(top) && (top[rank-1].User != user || top[rank-1].Score != score) {
							fail("reader %d: rank %d of user %d disagrees with top-K", g, rank, user)
							return
						}
						// Re-check a view held across many swaps: immutability
						// means it stays internally consistent forever.
						if held != nil && i%64 == 0 && !held.Consistent() {
							fail("reader %d: held view (epoch %d) torn after swaps", g, held.Epoch)
							return
						}
						if i%128 == 0 {
							held = v
						}
						reads.Add(1)
						if i%32 == 0 {
							runtime.Gosched() // let the epoch loop breathe on small GOMAXPROCS
						}
					}
				}(g)
			}
			// A writer goroutine feeds a trickle of reports so boundaries
			// exercise the queue drain while readers run. It paces itself on
			// observed epoch progress rather than spinning, so the queue
			// stays bounded and the epoch loop is never starved.
			wg.Add(1)
			go func() {
				defer wg.Done()
				lastEpoch := -1
				for i := 0; ctx.Err() == nil; {
					select {
					case <-ctx.Done():
						return
					case <-srv.Done():
						return
					default:
					}
					epoch := srv.View().Epoch
					if epoch == lastEpoch {
						runtime.Gosched()
						continue
					}
					lastEpoch = epoch
					for j := 0; j < 4; j++ {
						i++
						r := trustnet.Report{Rater: i % 60, Ratee: (i + 7) % 60, Value: float64(i%5) / 4}
						if r.Rater == r.Ratee {
							continue
						}
						if _, err := srv.EnqueueReport(r); err != nil {
							fail("enqueue: %v", err)
							return
						}
					}
				}
			}()

			if err := srv.Start(ctx); err != nil {
				t.Fatal(err)
			}
			<-srv.Done()
			cancel()
			wg.Wait()

			if failed.Load() {
				t.Fatal(*failMsg.Load())
			}
			if err := srv.Err(); err != nil {
				t.Fatal(err)
			}
			if got := srv.View().Epoch; got != maxEpochs {
				t.Fatalf("finished at epoch %d, want %d", got, maxEpochs)
			}
			if reads.Load() == 0 {
				t.Fatal("readers never observed a view")
			}
			t.Logf("shards=%d: %d consistent reads across %d epochs, %d reports applied",
				shards, reads.Load(), maxEpochs, srv.Stats().ReportsApplied)
		})
	}
}
