package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LoadOptions shapes a query-load run against a serving API.
type LoadOptions struct {
	// Concurrency is the number of querying workers (default 4).
	Concurrency int
	// Requests caps the total request count (0 = no cap; bound by Duration
	// or the context instead).
	Requests int
	// Duration caps the wall-clock run (0 = no cap).
	Duration time.Duration
	// Users is the population size; queried user ids cycle through it.
	Users int
}

// LoadResult is what a load run measured.
type LoadResult struct {
	Requests int64         `json:"requests"`
	Errors   int64         `json:"errors"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	QPS      float64       `json:"qps"`
	P50      time.Duration `json:"p50_ns"`
	P99      time.Duration `json:"p99_ns"`
}

// RunLoad drives the read API at baseURL from Concurrency workers — a mix
// of single-score, top-K, and latest-epoch queries — and reports throughput
// and latency quantiles. It is the measurement core shared by the loadgen
// CLI and the serving benchmark.
func RunLoad(ctx context.Context, client *http.Client, baseURL string, opts LoadOptions) (LoadResult, error) {
	if opts.Concurrency <= 0 {
		opts.Concurrency = 4
	}
	if opts.Users <= 0 {
		return LoadResult{}, fmt.Errorf("serve: load needs a positive user population, got %d", opts.Users)
	}
	if opts.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Duration)
		defer cancel()
	}

	var (
		wg       sync.WaitGroup
		budget   atomic.Int64
		requests atomic.Int64
		errs     atomic.Int64
		firstErr atomic.Pointer[error]
	)
	if opts.Requests > 0 {
		budget.Store(int64(opts.Requests))
	} else {
		budget.Store(int64(1) << 62)
	}
	latencies := make([][]time.Duration, opts.Concurrency)
	start := time.Now()
	for g := 0; g < opts.Concurrency; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; ctx.Err() == nil; i++ {
				if budget.Add(-1) < 0 {
					return
				}
				var path string
				switch i % 8 {
				case 0:
					path = "/v1/top?k=10"
				case 1:
					path = "/v1/epochs/latest"
				default:
					path = fmt.Sprintf("/v1/scores/%d", i%opts.Users)
				}
				req, err := http.NewRequestWithContext(ctx, "GET", baseURL+path, nil)
				if err != nil {
					errs.Add(1)
					firstErr.CompareAndSwap(nil, &err)
					return
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					if ctx.Err() != nil {
						return // deadline hit mid-flight, not a failure
					}
					errs.Add(1)
					firstErr.CompareAndSwap(nil, &err)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lat := time.Since(t0)
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
					err := fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
					firstErr.CompareAndSwap(nil, &err)
					continue
				}
				latencies[g] = append(latencies[g], lat)
				requests.Add(1)
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := LoadResult{
		Requests: requests.Load(),
		Errors:   errs.Load(),
		Elapsed:  elapsed,
	}
	if elapsed > 0 {
		res.QPS = float64(res.Requests) / elapsed.Seconds()
	}
	if len(all) > 0 {
		res.P50 = all[len(all)/2]
		res.P99 = all[min(len(all)-1, len(all)*99/100)]
	}
	if ep := firstErr.Load(); ep != nil {
		return res, *ep
	}
	return res, nil
}
