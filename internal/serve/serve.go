// Package serve hosts a trustnet engine behind a long-lived daemon: a
// session advances coupling epochs on a background goroutine while an
// HTTP/JSON API (see http.go) answers reputation queries, accepts feedback
// reports, streams epoch summaries, and takes snapshots.
//
// The core mechanism is an epoch-boundary read/write concordance:
//
//   - Reads never touch the live engine. At every epoch boundary the server
//     copies the mechanism's score vector (through the zero-copy ScoresView
//     fast path) into a fresh immutable View — scores, rank order, epoch
//     stats, a checksum — and swaps it in with one atomic pointer store.
//     Queries load the pointer and read freely: a reader can hold a view
//     across any number of epoch swaps and still see one epoch-consistent
//     vector. (A strict two-buffer swap would tear for exactly such slow
//     readers, which is why the back buffer is freshly allocated: one
//     n-float allocation per epoch, microscopic next to the epoch itself.)
//
//   - Writes never land mid-epoch. Submitted reports go into an arrival-
//     ordered queue that is drained at the next epoch boundary and applied
//     through Engine.SubmitReports before the epoch runs. The applied log
//     records which epoch each report landed at, so a served run is
//     replayable: a batch Session over the same scenario with a ReportWave
//     schedule built from that log produces bit-identical scores.
package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/reputation"
	"repro/trustnet"
)

// Config configures a Server around an assembled engine.
type Config struct {
	// Engine is the live engine the daemon owns. Required; the server is
	// the only writer once Start is called.
	Engine *trustnet.Engine
	// Schedule is an optional scripted intervention schedule, applied at
	// epoch boundaries exactly as a batch Session would (after any queued
	// reports for that boundary).
	Schedule trustnet.Schedule
	// MaxEpochs bounds how many epochs the server advances (0 = unlimited).
	// A server whose session is done keeps answering queries.
	MaxEpochs int
	// EpochInterval is the pause between epochs in the background loop
	// (0 = advance continuously).
	EpochInterval time.Duration
	// Manual disables the background loop: epochs advance only through
	// Advance (or POST /v1/advance). Deterministic tests and interactive
	// stepping use this mode.
	Manual bool
}

// Entry is one user's score and rank in a View.
type Entry struct {
	User  int     `json:"user"`
	Score float64 `json:"score"`
	Rank  int     `json:"rank"`
}

// View is one epoch-consistent, immutable snapshot of the reputation state:
// the score vector as of an epoch boundary, the derived rank order, and the
// epoch's stats. Views are built by the session goroutine and published
// with an atomic pointer swap; readers may hold one indefinitely.
type View struct {
	// Epoch is the number of completed coupling epochs this view reflects.
	Epoch int
	// Stats is the last completed epoch's stats (zero before any epoch).
	Stats trustnet.EpochStats
	// ActivePeers is the present-population count at the boundary.
	ActivePeers int

	scores   []float64
	order    []int // user ids by score desc, ties by id asc
	rank     []int // rank[user] = 1-based position in order
	checksum uint64
}

// Len returns the population size.
func (v *View) Len() int { return len(v.scores) }

// Score returns one user's score.
func (v *View) Score(user int) (float64, error) {
	if user < 0 || user >= len(v.scores) {
		return 0, fmt.Errorf("serve: user %d out of range [0,%d)", user, len(v.scores))
	}
	return v.scores[user], nil
}

// Rank returns one user's 1-based rank (rank 1 = highest score; ties break
// towards the lower user id).
func (v *View) Rank(user int) (int, error) {
	if user < 0 || user >= len(v.rank) {
		return 0, fmt.Errorf("serve: user %d out of range [0,%d)", user, len(v.rank))
	}
	return v.rank[user], nil
}

// Scores returns the full score vector. The slice is shared with the view
// and must be treated as read-only; it is immutable once published.
func (v *View) Scores() []float64 { return v.scores }

// TopK returns the k highest-scored users in rank order (all of them when
// k <= 0 or k exceeds the population).
func (v *View) TopK(k int) []Entry {
	if k <= 0 || k > len(v.order) {
		k = len(v.order)
	}
	out := make([]Entry, k)
	for i := 0; i < k; i++ {
		u := v.order[i]
		out[i] = Entry{User: u, Score: v.scores[u], Rank: i + 1}
	}
	return out
}

// Checksum returns the view's published integrity checksum.
func (v *View) Checksum() uint64 { return v.checksum }

// Consistent recomputes the checksum and the rank/order invariants; it
// returns false if the view was torn by a concurrent writer (it never is —
// the -race hammer test asserts exactly this).
func (v *View) Consistent() bool {
	if v.checksum != v.computeChecksum() {
		return false
	}
	if len(v.order) != len(v.scores) || len(v.rank) != len(v.scores) {
		return false
	}
	for pos, u := range v.order {
		if u < 0 || u >= len(v.rank) || v.rank[u] != pos+1 {
			return false
		}
		if pos > 0 {
			prev := v.order[pos-1]
			if v.scores[prev] < v.scores[u] || (v.scores[prev] == v.scores[u] && prev > u) {
				return false
			}
		}
	}
	return true
}

func (v *View) computeChecksum() uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(x uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(x >> (8 * i))
		}
		h.Write(b[:])
	}
	put(uint64(v.Epoch))
	for _, s := range v.scores {
		put(math.Float64bits(s))
	}
	return h.Sum64()
}

// buildView derives the immutable read view from a score vector.
func buildView(epoch, activePeers int, st trustnet.EpochStats, src []float64) *View {
	v := &View{
		Epoch:       epoch,
		Stats:       st,
		ActivePeers: activePeers,
		scores:      append([]float64(nil), src...),
		order:       make([]int, len(src)),
		rank:        make([]int, len(src)),
	}
	for i := range v.order {
		v.order[i] = i
	}
	sort.Slice(v.order, func(a, b int) bool {
		ua, ub := v.order[a], v.order[b]
		if v.scores[ua] != v.scores[ub] {
			return v.scores[ua] > v.scores[ub]
		}
		return ua < ub
	})
	for pos, u := range v.order {
		v.rank[u] = pos + 1
	}
	v.checksum = v.computeChecksum()
	return v
}

// AppliedReport is one externally submitted report together with the epoch
// boundary it was applied at. The applied log replays a served run as a
// batch ReportWave schedule.
type AppliedReport struct {
	Epoch int     `json:"epoch"`
	Rater int     `json:"rater"`
	Ratee int     `json:"ratee"`
	Value float64 `json:"value"`
}

// Stats is the server's observability counters.
type Stats struct {
	Peers          int     `json:"peers"`
	Mechanism      string  `json:"mechanism"`
	Shards         int     `json:"shards"`
	Epoch          int     `json:"epoch"`
	ActivePeers    int     `json:"active_peers"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Queries        int64   `json:"queries"`
	ReportsQueued  int64   `json:"reports_queued"`
	ReportsApplied int64   `json:"reports_applied"`
	ReportsPending int     `json:"reports_pending"`
	StreamDropped  int64   `json:"stream_dropped"`
	SessionDone    bool    `json:"session_done"`
	// SettledUsers/DirtyFacets surface the last epoch's sub-linear-tail
	// counters: how many users sat at their trust fixed point, and how many
	// had a facet input change.
	SettledUsers int `json:"settled_users"`
	DirtyFacets  int `json:"dirty_facets"`
}

// ErrNotStarted is returned by Advance before Start.
var ErrNotStarted = errors.New("serve: server not started")

// Server owns an engine session and serves it. Construct with New, then
// Start; the HTTP surface comes from Handler.
type Server struct {
	cfg       Config
	eng       *trustnet.Engine
	peers     int
	mechName  string
	shards    int
	started   time.Time
	view      atomic.Pointer[View]
	epochDone atomic.Int64 // completed epochs, mirrors the published view

	// mu serializes every engine mutation or traversal: epoch advances,
	// report application, snapshots. Queries never take it.
	mu          sync.Mutex
	session     *trustnet.Session
	ctx         context.Context
	sessionDone bool
	runErr      error

	// qmu guards the arrival-ordered report queue and the applied log.
	qmu     sync.Mutex
	queue   []trustnet.Report
	applied []AppliedReport

	queries        atomic.Int64
	reportsQueued  atomic.Int64
	reportsApplied atomic.Int64
	streamDropped  atomic.Int64

	submu   sync.Mutex
	subs    map[int]chan trustnet.EpochStats
	nextSub int
	closed  bool

	done chan struct{}
}

// New builds a server around an engine. The initial view reflects the
// engine's current state (epoch 0 for a fresh engine; a restored engine
// starts from its snapshot's epoch).
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("serve: nil engine")
	}
	if cfg.MaxEpochs < 0 {
		return nil, fmt.Errorf("serve: max epochs must be >= 0, got %d", cfg.MaxEpochs)
	}
	if cfg.EpochInterval < 0 {
		return nil, fmt.Errorf("serve: negative epoch interval %v", cfg.EpochInterval)
	}
	s := &Server{
		cfg:      cfg,
		eng:      cfg.Engine,
		peers:    cfg.Engine.Peers(),
		mechName: cfg.Engine.Mechanism().Name(),
		shards:   cfg.Engine.Shards(),
		started:  time.Now(),
		subs:     map[int]chan trustnet.EpochStats{},
		done:     make(chan struct{}),
	}
	var st trustnet.EpochStats
	if hist := cfg.Engine.History(); len(hist) > 0 {
		st = hist[len(hist)-1]
	}
	v := buildView(cfg.Engine.EpochIndex(), cfg.Engine.ActivePeers(), st, reputation.ScoresOf(cfg.Engine.Mechanism()))
	s.view.Store(v)
	s.epochDone.Store(int64(v.Epoch))
	return s, nil
}

// Start opens the session and, unless the server is Manual, launches the
// background epoch loop. The context governs the whole serve: cancelling it
// stops the loop between rounds (not just at epoch boundaries).
func (s *Server) Start(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.session != nil {
		return fmt.Errorf("serve: server already started")
	}
	opts := []trustnet.SessionOption{trustnet.WithSchedule(s.cfg.Schedule)}
	if s.cfg.MaxEpochs > 0 {
		opts = append(opts, trustnet.WithMaxEpochs(s.cfg.MaxEpochs))
	}
	sess, err := s.eng.Session(ctx, opts...)
	if err != nil {
		return err
	}
	s.session = sess
	s.ctx = ctx
	if !s.cfg.Manual {
		go s.loop()
	}
	return nil
}

// Done is closed when the background loop exits (session budget exhausted,
// context cancelled, or epoch failure). Manual servers close it only when
// their session ends through Advance.
func (s *Server) Done() <-chan struct{} { return s.done }

// Err reports why the loop stopped (nil for a clean budget-exhausted end).
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runErr
}

// loop advances epochs until the session ends or the context cancels.
func (s *Server) loop() {
	defer close(s.done)
	defer s.closeSubs()
	for {
		if err := s.ctx.Err(); err != nil {
			s.setErr(err)
			return
		}
		_, err := s.Advance(1)
		switch {
		case errors.Is(err, trustnet.ErrSessionDone):
			return
		case err != nil:
			if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				s.setErr(err)
			}
			return
		}
		if s.cfg.EpochInterval > 0 {
			select {
			case <-s.ctx.Done():
				return
			case <-time.After(s.cfg.EpochInterval):
			}
		}
	}
}

func (s *Server) setErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.runErr == nil {
		s.runErr = err
	}
}

// Advance drains the report queue and runs n epochs. Each epoch boundary
// applies the queued reports first (in arrival order), then the scheduled
// interventions, then the epoch — exactly the order a batch ReportWave
// schedule replays.
func (s *Server) Advance(n int) (trustnet.EpochStats, error) {
	var last trustnet.EpochStats
	for i := 0; i < n; i++ {
		st, err := s.advanceOnce()
		if err != nil {
			return last, err
		}
		last = st
	}
	return last, nil
}

func (s *Server) advanceOnce() (trustnet.EpochStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.session == nil {
		return trustnet.EpochStats{}, ErrNotStarted
	}
	if s.sessionDone {
		return trustnet.EpochStats{}, trustnet.ErrSessionDone
	}
	// Budget check before consuming the queue: reports must never be
	// swallowed by a boundary whose epoch will not run.
	if s.cfg.MaxEpochs > 0 && s.session.Delivered() >= s.cfg.MaxEpochs {
		s.sessionDone = true
		return trustnet.EpochStats{}, trustnet.ErrSessionDone
	}
	epoch := s.session.Epoch()
	s.qmu.Lock()
	batch := s.queue
	s.queue = nil
	s.qmu.Unlock()
	if len(batch) > 0 {
		if err := s.eng.SubmitReports(batch...); err != nil {
			// Enqueue-time validation makes this unreachable short of a
			// mechanism-internal failure; surface it as the session error.
			s.runErr = err
			return trustnet.EpochStats{}, err
		}
		s.qmu.Lock()
		for _, r := range batch {
			s.applied = append(s.applied, AppliedReport{Epoch: epoch, Rater: r.Rater, Ratee: r.Ratee, Value: r.Value})
		}
		s.qmu.Unlock()
		s.reportsApplied.Add(int64(len(batch)))
	}
	st, err := s.session.Next()
	if err != nil {
		if errors.Is(err, trustnet.ErrSessionDone) {
			s.sessionDone = true
		}
		return trustnet.EpochStats{}, err
	}
	v := buildView(s.eng.EpochIndex(), s.eng.ActivePeers(), st, reputation.ScoresOf(s.eng.Mechanism()))
	s.view.Store(v)
	s.epochDone.Store(int64(v.Epoch))
	s.broadcast(st)
	return st, nil
}

// View returns the current published view. Never nil.
func (s *Server) View() *View { return s.view.Load() }

// EnqueueReport validates a report and queues it for the next epoch
// boundary. It returns the epoch the report is expected to apply at (the
// next boundary as of enqueue time; the applied log is authoritative).
func (s *Server) EnqueueReport(r trustnet.Report) (int, error) {
	if r.Rater < 0 || r.Rater >= s.peers {
		return 0, fmt.Errorf("serve: rater %d out of range [0,%d)", r.Rater, s.peers)
	}
	if r.Ratee < 0 || r.Ratee >= s.peers {
		return 0, fmt.Errorf("serve: ratee %d out of range [0,%d)", r.Ratee, s.peers)
	}
	if r.Rater == r.Ratee {
		return 0, fmt.Errorf("serve: self-rating report by %d rejected", r.Rater)
	}
	if !(r.Value >= 0 && r.Value <= 1) { // also rejects NaN
		return 0, fmt.Errorf("serve: report value %v out of [0,1]", r.Value)
	}
	r.TxID = 0 // assigned by the engine at application
	s.qmu.Lock()
	s.queue = append(s.queue, r)
	s.qmu.Unlock()
	s.reportsQueued.Add(1)
	return int(s.epochDone.Load()), nil
}

// AppliedLog returns a copy of the applied-report log: every externally
// submitted report with the epoch boundary it landed at, in application
// order.
func (s *Server) AppliedLog() []AppliedReport {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return append([]AppliedReport(nil), s.applied...)
}

// SnapshotNow captures an engine snapshot at a safe point: it takes the
// engine lock, so the snapshot always lands between epochs, never inside
// one.
func (s *Server) SnapshotNow() (*trustnet.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Snapshot()
}

// Stats returns the server's counters.
func (s *Server) Stats() Stats {
	s.qmu.Lock()
	pending := len(s.queue)
	s.qmu.Unlock()
	s.mu.Lock()
	done := s.sessionDone
	s.mu.Unlock()
	v := s.View()
	return Stats{
		Peers:          s.peers,
		Mechanism:      s.mechName,
		Shards:         s.shards,
		Epoch:          v.Epoch,
		ActivePeers:    v.ActivePeers,
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Queries:        s.queries.Load(),
		ReportsQueued:  s.reportsQueued.Load(),
		ReportsApplied: s.reportsApplied.Load(),
		ReportsPending: pending,
		StreamDropped:  s.streamDropped.Load(),
		SessionDone:    done,
		SettledUsers:   v.Stats.SettledUsers,
		DirtyFacets:    v.Stats.DirtyFacets,
	}
}

// subscribe registers an epoch-summary listener. The channel is buffered;
// a subscriber that falls an entire buffer behind loses summaries (counted
// in StreamDropped) rather than stalling the epoch loop.
func (s *Server) subscribe() (int, <-chan trustnet.EpochStats) {
	s.submu.Lock()
	defer s.submu.Unlock()
	id := s.nextSub
	s.nextSub++
	ch := make(chan trustnet.EpochStats, 64)
	if s.closed {
		close(ch)
		return id, ch
	}
	s.subs[id] = ch
	return id, ch
}

func (s *Server) unsubscribe(id int) {
	s.submu.Lock()
	defer s.submu.Unlock()
	if ch, ok := s.subs[id]; ok {
		delete(s.subs, id)
		close(ch)
	}
}

func (s *Server) broadcast(st trustnet.EpochStats) {
	s.submu.Lock()
	defer s.submu.Unlock()
	for _, ch := range s.subs {
		select {
		case ch <- st:
		default:
			s.streamDropped.Add(1)
		}
	}
}

func (s *Server) closeSubs() {
	s.submu.Lock()
	defer s.submu.Unlock()
	s.closed = true
	for id, ch := range s.subs {
		delete(s.subs, id)
		close(ch)
	}
}
