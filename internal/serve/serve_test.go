package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/trustnet"
)

// servedScenario is the shared test scenario: big enough to exercise every
// class and the coupling loop, small enough to run dozens of epochs in tests.
func servedScenario(seed uint64, extra ...trustnet.Option) []trustnet.Option {
	opts := []trustnet.Option{
		trustnet.WithPeers(60),
		trustnet.WithRNGSeed(seed),
		trustnet.WithMix(trustnet.Mix{
			Fractions: map[trustnet.Class]float64{
				trustnet.Honest:    0.6,
				trustnet.Malicious: 0.2,
				trustnet.Selfish:   0.05,
				trustnet.Traitor:   0.05,
				trustnet.Colluder:  0.1,
			},
			ForceHonest: []int{0, 1, 2},
		}),
		trustnet.WithReputationMechanism(trustnet.EigenTrust(trustnet.EigenTrustConfig{Pretrusted: []int{0, 1, 2}})),
		trustnet.WithPrivacyPolicy(trustnet.PrivacyPolicy{Disclosure: 0.8, TrustGate: 0.1}),
		trustnet.WithCoupling(true),
		trustnet.WithEpochRounds(4),
		trustnet.WithRecomputeEvery(2),
		trustnet.WithActivitySkew(0.8),
	}
	return append(opts, extra...)
}

func newManualServer(t *testing.T, seed uint64, extra ...trustnet.Option) (*Server, *trustnet.Engine) {
	t.Helper()
	eng, err := trustnet.New(servedScenario(seed, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Engine: eng, Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	return srv, eng
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
	return resp
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", rd)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("POST %s: decode: %v", path, err)
	}
	return resp, out
}

// epochSchedule is the report arrival schedule the determinism tests replay:
// epoch boundary -> reports submitted while that epoch was pending.
var epochSchedule = map[int][]trustnet.Report{
	1: {
		{Rater: 5, Ratee: 9, Value: 1},
		{Rater: 7, Ratee: 3, Value: 0},
	},
	3: {
		{Rater: 10, Ratee: 4, Value: 0},
		{Rater: 11, Ratee: 4, Value: 0},
		{Rater: 12, Ratee: 4, Value: 0.25},
	},
	4: {
		{Rater: 20, Ratee: 21, Value: 0.75},
	},
}

// TestServedDeterminismMatchesBatch is the headline invariant: a served run —
// reports submitted over HTTP against a live daemon, epochs advanced through
// the API — produces bit-identical scores and history to the equivalent batch
// Session run with a ReportWave schedule, at shards 1 and 4.
func TestServedDeterminismMatchesBatch(t *testing.T) {
	const seed, epochs = 42, 6
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			// Batch twin: same scenario, ReportWave at each scheduled boundary.
			sched := trustnet.Schedule{}
			for epoch, reports := range epochSchedule {
				sched = sched.At(epoch, trustnet.ReportWave{Reports: reports})
			}
			batch, err := trustnet.New(servedScenario(seed, trustnet.WithShards(shards))...)
			if err != nil {
				t.Fatal(err)
			}
			bs, err := batch.Session(context.Background(), trustnet.WithMaxEpochs(epochs), trustnet.WithSchedule(sched))
			if err != nil {
				t.Fatal(err)
			}
			for _, err := range bs.Epochs() {
				if err != nil {
					t.Fatal(err)
				}
			}

			// Served twin: HTTP reports before each boundary, HTTP advance.
			srv, eng := newManualServer(t, seed, trustnet.WithShards(shards))
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			for epoch := 0; epoch < epochs; epoch++ {
				for _, r := range epochSchedule[epoch] {
					resp, body := postJSON(t, ts, "/v1/reports", r)
					if resp.StatusCode != http.StatusAccepted {
						t.Fatalf("report at epoch %d: status %d, body %v", epoch, resp.StatusCode, body)
					}
				}
				resp, body := postJSON(t, ts, "/v1/advance", nil)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("advance at epoch %d: status %d, body %v", epoch, resp.StatusCode, body)
				}
			}

			// Scores must match bit for bit, through the HTTP surface too.
			want := batch.Mechanism().Scores()
			var scored struct {
				Epoch  int       `json:"epoch"`
				Scores []float64 `json:"scores"`
			}
			getJSON(t, ts, "/v1/scores", &scored)
			if scored.Epoch != epochs {
				t.Fatalf("served epoch %d, want %d", scored.Epoch, epochs)
			}
			if len(scored.Scores) != len(want) {
				t.Fatalf("served %d scores, want %d", len(scored.Scores), len(want))
			}
			for i := range want {
				if scored.Scores[i] != want[i] {
					t.Fatalf("score[%d]: served %v != batch %v", i, scored.Scores[i], want[i])
				}
			}

			// Histories must match bit for bit.
			var a, b bytes.Buffer
			if err := gob.NewEncoder(&a).Encode(batch.History()); err != nil {
				t.Fatal(err)
			}
			if err := gob.NewEncoder(&b).Encode(eng.History()); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatal("served history diverges from batch history")
			}

			// The applied log replays the schedule exactly.
			log := srv.AppliedLog()
			var total int
			for epoch, reports := range epochSchedule {
				total += len(reports)
				var got []AppliedReport
				for _, ar := range log {
					if ar.Epoch == epoch {
						got = append(got, ar)
					}
				}
				if len(got) != len(reports) {
					t.Fatalf("applied log has %d reports at epoch %d, want %d", len(got), epoch, len(reports))
				}
				for i, r := range reports {
					if got[i].Rater != r.Rater || got[i].Ratee != r.Ratee || got[i].Value != r.Value {
						t.Fatalf("applied[%d]@%d = %+v, want %+v", i, epoch, got[i], r)
					}
				}
			}
			if len(log) != total {
				t.Fatalf("applied log has %d entries, want %d", len(log), total)
			}
		})
	}
}

// TestQueryEndpoints exercises the read API against a stepped server.
func TestQueryEndpoints(t *testing.T) {
	srv, eng := newManualServer(t, 7)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, err := srv.Advance(3); err != nil {
		t.Fatal(err)
	}

	var health struct {
		Status string `json:"status"`
		Epoch  int    `json:"epoch"`
	}
	if resp := getJSON(t, ts, "/v1/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health.Status != "ok" || health.Epoch != 3 {
		t.Fatalf("healthz = %+v", health)
	}

	var one struct {
		User  int     `json:"user"`
		Score float64 `json:"score"`
		Rank  int     `json:"rank"`
		Epoch int     `json:"epoch"`
	}
	getJSON(t, ts, "/v1/scores/4", &one)
	if want := eng.Mechanism().Score(4); one.Score != want {
		t.Fatalf("score of 4 = %v, want %v", one.Score, want)
	}
	if one.Rank < 1 || one.Rank > eng.Peers() {
		t.Fatalf("rank %d out of range", one.Rank)
	}

	for _, path := range []string{"/v1/scores/999", "/v1/scores/-1"} {
		if resp := getJSON(t, ts, path, nil); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
	if resp := getJSON(t, ts, "/v1/scores/abc", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-numeric user: status %d, want 400", resp.StatusCode)
	}

	var top struct {
		Epoch int     `json:"epoch"`
		Top   []Entry `json:"top"`
	}
	getJSON(t, ts, "/v1/top?k=5", &top)
	if len(top.Top) != 5 {
		t.Fatalf("top-5 returned %d entries", len(top.Top))
	}
	for i, e := range top.Top {
		if e.Rank != i+1 {
			t.Fatalf("top[%d].Rank = %d", i, e.Rank)
		}
		if i > 0 && top.Top[i-1].Score < e.Score {
			t.Fatalf("top-K not sorted: %v then %v", top.Top[i-1], e)
		}
	}
	if resp := getJSON(t, ts, "/v1/top?k=zero", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad k: status %d, want 400", resp.StatusCode)
	}

	var latest struct {
		Epoch int                 `json:"epoch"`
		Stats trustnet.EpochStats `json:"stats"`
	}
	getJSON(t, ts, "/v1/epochs/latest", &latest)
	hist := eng.History()
	if latest.Epoch != 3 || latest.Stats.Epoch != hist[len(hist)-1].Epoch {
		t.Fatalf("latest = %+v, history tail = %+v", latest, hist[len(hist)-1])
	}

	var stats Stats
	getJSON(t, ts, "/v1/stats", &stats)
	if stats.Peers != 60 || stats.Mechanism != "eigentrust" || stats.Epoch != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Queries == 0 {
		t.Fatal("query counter never moved")
	}
}

// TestReportValidationOverHTTP pins the 4xx surface for bad reports.
func TestReportValidationOverHTTP(t *testing.T) {
	srv, _ := newManualServer(t, 7)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body any
		want int
	}{
		{"rater-range", trustnet.Report{Rater: -1, Ratee: 1, Value: 1}, http.StatusUnprocessableEntity},
		{"ratee-range", trustnet.Report{Rater: 1, Ratee: 60, Value: 1}, http.StatusUnprocessableEntity},
		{"self", trustnet.Report{Rater: 1, Ratee: 1, Value: 1}, http.StatusUnprocessableEntity},
		{"value", trustnet.Report{Rater: 1, Ratee: 2, Value: 1.5}, http.StatusUnprocessableEntity},
		{"unknown-field", map[string]any{"rater": 1, "ratee": 2, "value": 1, "weight": 3}, http.StatusBadRequest},
		{"garbage", "not json at all", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts, "/v1/reports", tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d (body %v)", resp.StatusCode, tc.want, body)
			}
		})
	}
	if n := srv.Stats().ReportsPending; n != 0 {
		t.Fatalf("%d invalid reports slipped into the queue", n)
	}
}

// TestSnapshotEndpointResumes proves the snapshot download is a real
// checkpoint: restoring it into a fresh engine and running the remaining
// epochs reproduces the server's own continuation exactly.
func TestSnapshotEndpointResumes(t *testing.T) {
	srv, eng := newManualServer(t, 99)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, err := srv.Advance(2); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trustnet-Epoch"); got != "2" {
		t.Fatalf("X-Trustnet-Epoch = %q, want 2", got)
	}

	snap, err := trustnet.DecodeSnapshot(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := trustnet.New(servedScenario(99, trustnet.WithShards(4))...)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}

	if _, err := srv.Advance(3); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Run(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	a, b := eng.Mechanism().Scores(), restored.Mechanism().Scores()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("score[%d]: served %v != restored continuation %v", i, a[i], b[i])
		}
	}
}

// TestEpochStreamSSE subscribes to the SSE stream while a background loop
// runs and checks the event framing and epoch monotonicity.
func TestEpochStreamSSE(t *testing.T) {
	eng, err := trustnet.New(servedScenario(13)...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Engine: eng, MaxEpochs: 8, EpochInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/epochs/stream?limit=3", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Start the loop only after subscribing so the stream sees epochs from
	// the beginning.
	if err := srv.Start(ctx); err != nil {
		t.Fatal(err)
	}

	var events []struct {
		Epoch int                 `json:"epoch"`
		Stats trustnet.EpochStats `json:"stats"`
	}
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev struct {
			Epoch int                 `json:"epoch"`
			Stats trustnet.EpochStats `json:"stats"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("stream delivered %d events, want 3 (limit)", len(events))
	}
	for i, ev := range events {
		if ev.Epoch < 1 || (i > 0 && ev.Epoch <= events[i-1].Epoch) {
			t.Fatalf("epochs not monotonic: %+v", events)
		}
	}

	<-srv.Done()
	if err := srv.Err(); err != nil {
		t.Fatal(err)
	}
	if got := srv.View().Epoch; got != 8 {
		t.Fatalf("loop stopped at epoch %d, want 8", got)
	}
}

// TestAdvanceEndpointModes: /v1/advance steps a manual server, refuses a
// looped one, and reports budget exhaustion.
func TestAdvanceEndpointModes(t *testing.T) {
	eng, err := trustnet.New(servedScenario(3)...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Engine: eng, Manual: true, MaxEpochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Before Start: 409.
	if resp, _ := postJSON(t, ts, "/v1/advance", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("advance before start: status %d, want 409", resp.StatusCode)
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts, "/v1/advance?epochs=2", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advance: status %d, body %v", resp.StatusCode, body)
	}
	if body["epoch"].(float64) != 2 {
		t.Fatalf("advance returned epoch %v, want 2", body["epoch"])
	}
	// Budget exhausted: 409.
	if resp, _ := postJSON(t, ts, "/v1/advance", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("advance past budget: status %d, want 409", resp.StatusCode)
	}
	if !srv.Stats().SessionDone {
		t.Fatal("stats do not report session done")
	}

	// A looped server refuses manual stepping outright.
	leng, err := trustnet.New(servedScenario(3)...)
	if err != nil {
		t.Fatal(err)
	}
	looped, err := New(Config{Engine: leng, MaxEpochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	lts := httptest.NewServer(looped.Handler())
	defer lts.Close()
	if err := looped.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if resp, _ := postJSON(t, lts, "/v1/advance", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("advance on looped server: status %d, want 409", resp.StatusCode)
	}
	<-looped.Done()
}

// TestLoopCancellation: cancelling the serve context stops the loop promptly
// even with an unlimited epoch budget, and the server keeps answering reads.
func TestLoopCancellation(t *testing.T) {
	eng, err := trustnet.New(servedScenario(17)...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Engine: eng}) // unlimited epochs, no interval
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := srv.Start(ctx); err != nil {
		t.Fatal(err)
	}
	for srv.View().Epoch < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-srv.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("loop did not stop after cancel")
	}
	v := srv.View()
	if !v.Consistent() {
		t.Fatal("view inconsistent after shutdown")
	}
	if _, err := v.Score(0); err != nil {
		t.Fatal(err)
	}
}

// TestReportQueueSurvivesBudgetEnd: reports enqueued after the session ends
// are never silently consumed by a boundary that will not run.
func TestReportQueueSurvivesBudgetEnd(t *testing.T) {
	eng, err := trustnet.New(servedScenario(23)...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Engine: eng, Manual: true, MaxEpochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Advance(1); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.EnqueueReport(trustnet.Report{Rater: 1, Ratee: 2, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Advance(1); err == nil {
		t.Fatal("advance past budget succeeded")
	}
	if got := srv.Stats().ReportsPending; got != 1 {
		t.Fatalf("pending = %d, want 1 (report must not be consumed)", got)
	}
	if got := len(srv.AppliedLog()); got != 0 {
		t.Fatalf("applied log has %d entries, want 0", got)
	}
}

// TestNewRejectsBadConfig pins constructor validation.
func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil engine accepted")
	}
	eng, err := trustnet.New(servedScenario(1)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Engine: eng, MaxEpochs: -1}); err == nil {
		t.Fatal("negative MaxEpochs accepted")
	}
	if _, err := New(Config{Engine: eng, EpochInterval: -time.Second}); err == nil {
		t.Fatal("negative interval accepted")
	}
	srv, err := New(Config{Engine: eng, Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(context.Background()); err == nil {
		t.Fatal("double Start accepted")
	}
}
