package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/trustnet"
)

// Handler returns the server's HTTP/JSON API:
//
//	GET  /v1/healthz          liveness + current epoch
//	GET  /v1/stats            server counters
//	POST /v1/reports          queue a feedback report for the next boundary
//	GET  /v1/reports/log      applied-report log (epoch-stamped, replayable)
//	GET  /v1/scores           full score vector at the current view
//	GET  /v1/scores/{user}    one user's score + rank
//	GET  /v1/top?k=N          top-K users by score
//	GET  /v1/epochs/latest    last completed epoch's stats
//	GET  /v1/epochs/stream    SSE stream of epoch summaries (?limit=N)
//	POST /v1/advance?epochs=N step a Manual server (409 otherwise)
//	GET  /v1/snapshot         gob-encoded engine snapshot (trustsim -resume compatible)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/reports", s.handleSubmitReport)
	mux.HandleFunc("GET /v1/reports/log", s.handleReportLog)
	mux.HandleFunc("GET /v1/scores", s.handleScores)
	mux.HandleFunc("GET /v1/scores/{user}", s.handleScore)
	mux.HandleFunc("GET /v1/top", s.handleTop)
	mux.HandleFunc("GET /v1/epochs/latest", s.handleLatestEpoch)
	mux.HandleFunc("GET /v1/epochs/stream", s.handleEpochStream)
	mux.HandleFunc("POST /v1/advance", s.handleAdvance)
	mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"epoch":  s.View().Epoch,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleSubmitReport(w http.ResponseWriter, r *http.Request) {
	var rep trustnet.Report
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		writeError(w, http.StatusBadRequest, "invalid report body: %v", err)
		return
	}
	applyEpoch, err := s.EnqueueReport(rep)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"accepted":    true,
		"apply_epoch": applyEpoch,
	})
}

func (s *Server) handleReportLog(w http.ResponseWriter, _ *http.Request) {
	log := s.AppliedLog()
	if log == nil {
		log = []AppliedReport{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"applied": log})
}

func (s *Server) handleScores(w http.ResponseWriter, _ *http.Request) {
	s.queries.Add(1)
	v := s.View()
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":  v.Epoch,
		"scores": v.Scores(),
	})
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	s.queries.Add(1)
	user, err := strconv.Atoi(r.PathValue("user"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid user %q", r.PathValue("user"))
		return
	}
	v := s.View()
	score, err := v.Score(user)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	rank, _ := v.Rank(user)
	writeJSON(w, http.StatusOK, map[string]any{
		"user":  user,
		"score": score,
		"rank":  rank,
		"epoch": v.Epoch,
	})
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	s.queries.Add(1)
	k := 10
	if q := r.URL.Query().Get("k"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "invalid k %q", q)
			return
		}
		k = n
	}
	v := s.View()
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch": v.Epoch,
		"top":   v.TopK(k),
	})
}

func (s *Server) handleLatestEpoch(w http.ResponseWriter, _ *http.Request) {
	s.queries.Add(1)
	v := s.View()
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch": v.Epoch,
		"stats": v.Stats,
	})
}

// handleEpochStream serves epoch summaries as Server-Sent Events: one
// "epoch" event per completed epoch, ending when the client disconnects,
// the session ends, or an optional ?limit=N is reached.
func (s *Server) handleEpochStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "invalid limit %q", q)
			return
		}
		limit = n
	}
	id, ch := s.subscribe()
	defer s.unsubscribe(id)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	sent := 0
	for {
		select {
		case <-r.Context().Done():
			return
		case st, ok := <-ch:
			if !ok {
				return
			}
			v := s.View()
			payload, err := json.Marshal(map[string]any{
				"epoch": v.Epoch,
				"stats": st,
			})
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: epoch\ndata: %s\n\n", payload)
			flusher.Flush()
			sent++
			if limit > 0 && sent >= limit {
				return
			}
		}
	}
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.Manual {
		writeError(w, http.StatusConflict, "server advances epochs automatically; POST /v1/advance requires manual mode")
		return
	}
	n := 1
	if q := r.URL.Query().Get("epochs"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, "invalid epochs %q", q)
			return
		}
		n = v
	}
	st, err := s.Advance(n)
	switch {
	case errors.Is(err, trustnet.ErrSessionDone):
		writeError(w, http.StatusConflict, "session epoch budget exhausted")
		return
	case errors.Is(err, ErrNotStarted):
		writeError(w, http.StatusConflict, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch": s.View().Epoch,
		"stats": st,
	})
}

// handleSnapshot streams a gob snapshot of the engine, captured between
// epochs. The bytes are exactly what trustsim -checkpoint writes, so the
// download resumes under `trustsim -resume`.
func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	snap, err := s.SnapshotNow()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, "encode snapshot: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", fmt.Sprintf("trustnet-epoch%d.snap", snap.Epoch)))
	w.Header().Set("X-Trustnet-Epoch", strconv.Itoa(snap.Epoch))
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
}
