package workload

import (
	"repro/internal/privacy"
	"repro/internal/reputation"
	"repro/internal/sim"
	"repro/internal/social"
)

// The sharded round pipeline.
//
// A round is executed in three phases so that interaction simulation can run
// on K parallel shards while every observable result stays bit-for-bit
// identical for every K:
//
//  1. plan (sequential): the main RNG stream draws each interaction's
//     consumer and splits off a private per-interaction stream. The split
//     sequence depends only on the interaction index, never on shard
//     boundaries.
//  2. scatter (parallel): shards own contiguous chunks of the interaction
//     index range and simulate each interaction — candidate sampling,
//     gating, provider selection, service and rating draws — using only the
//     interaction's private stream and state that is immutable for the
//     round (scores, graph, behaviours, honesty override).
//  3. gather (sequential): results merge into the shared mutable state
//     (interaction log, satisfaction EMAs, disclosure ledger, gatherer →
//     mechanism) in interaction-index order, so transaction ids, EMA folds
//     and the gatherer's disclosure draws are canonical.

// interactionPlan is one scheduled request: the consumer plus the private
// RNG stream its simulation will consume.
type interactionPlan struct {
	consumer int
	rng      sim.RNG
}

// interactionResult is the outcome of simulating one planned interaction
// against the round-immutable state.
type interactionResult struct {
	consumer int
	provider int // -1 when no provider was found
	// absent marks a request whose scheduled consumer is not present in the
	// network (a left peer): the interaction is dropped entirely.
	absent     bool
	gateFailed bool
	candidates []int
	refused    bool
	quality    float64
	rating     float64
	honest     bool
}

// planRound draws the round's interaction schedule from the main stream.
// Consumers come from the active-peer index when churn has thinned the
// population (nil pool = everyone present = uniform over 0..n, identical
// draws to index-free planning). The Zipf activity path keeps mapping over
// the full id range — its skew is a property of peer identity, so absent
// heavy hitters simply drop their requests in simulate.
func (e *Engine) planRound(pool []int) []interactionPlan {
	plans := make([]interactionPlan, e.cfg.InteractionsPerRound)
	for k := range plans {
		var consumer int
		switch {
		case e.activity != nil:
			consumer = e.activityOrder[e.activity.Next()]
		case len(pool) > 0:
			consumer = pool[e.rng.Intn(len(pool))]
		default:
			consumer = e.rng.Intn(e.cfg.NumPeers)
		}
		plans[k] = interactionPlan{consumer: consumer, rng: *e.rng.Split()}
	}
	return plans
}

// scatter simulates every planned interaction, fanning the index range out
// over the engine's shards — or, when a scatter delegate is installed and
// accepts, handing the whole phase to the external executor (the cluster
// master). The delegate contract (see cluster.go) makes the two paths
// bit-identical.
func (e *Engine) scatter(plans []interactionPlan, scores []float64, gate float64, pool []int, round int) []interactionResult {
	if e.scatterDelegate != nil {
		if out, ok := e.scatterDelegate(exportPlans(plans), scores, gate, pool, round); ok && len(out) == len(plans) {
			results := make([]interactionResult, len(out))
			for k := range out {
				results[k] = importOutcome(&out[k])
			}
			return results
		}
	}
	results := make([]interactionResult, len(plans))
	sim.ForChunks(e.shards, len(plans), func(lo, hi int) {
		for k := lo; k < hi; k++ {
			results[k] = e.simulate(&plans[k], scores, gate, pool, round)
		}
	})
	return results
}

// simulate runs one interaction against round-immutable state. It must not
// touch any state shared across interactions: all randomness comes from the
// plan's private stream, and every mutation is deferred to gather. The round
// index is passed explicitly (rather than read off the engine) so a worker
// replica can simulate the master's round without advancing its own clock.
func (e *Engine) simulate(p *interactionPlan, scores []float64, gate float64, pool []int, round int) interactionResult {
	rng := &p.rng
	r := interactionResult{consumer: p.consumer, provider: -1}
	if !e.PeerActive(p.consumer) {
		r.absent = true
		return r
	}
	candidates := e.sampleCandidates(rng, p.consumer, pool)
	if gate >= 0 {
		eligible := candidates[:0]
		for _, c := range candidates {
			if scores[c] >= gate {
				eligible = append(eligible, c)
			}
		}
		if len(eligible) == 0 {
			r.gateFailed = true
			return r
		}
		candidates = eligible
	}
	r.candidates = candidates
	var provider int
	switch e.cfg.Selection {
	case SelectProportional:
		provider = reputation.SelectProportional(rng, scores, candidates)
	default:
		provider = reputation.SelectBest(rng, scores, candidates)
	}
	if provider < 0 {
		return r
	}
	r.provider = provider
	pu := e.snet.User(provider)
	if !pu.Behavior.Serves(rng) {
		r.refused = true
		r.honest = true
		return r
	}
	r.quality = pu.Behavior.ServiceQuality(rng, round)
	r.rating, r.honest = e.rate(rng, e.snet.User(p.consumer), p.consumer, provider, r.quality)
	return r
}

// gather merges the shard results into the shared state in canonical
// (interaction-index) order.
func (e *Engine) gather(results []interactionResult, st *RoundStats) {
	for k := range results {
		r := &results[k]
		if r.absent {
			continue
		}
		if r.gateFailed {
			e.GateFailures++
			e.consumers[r.consumer].ObserveFailure()
			e.satDirty.Mark(r.consumer)
			continue
		}
		if r.provider < 0 {
			e.consumers[r.consumer].ObserveFailure()
			e.satDirty.Mark(r.consumer)
			continue
		}
		st.Interactions++
		tx := e.snet.NextTxID()

		// The provider judges the (possibly imposed) request against its
		// own intentions.
		e.providers[r.provider].Observe(r.consumer)
		e.satDirty.Mark(r.provider)
		e.satDirty.Mark(r.consumer)

		if r.refused {
			st.BadService++
			st.Refused++
			e.snet.Record(social.Interaction{
				ID: tx, Consumer: r.consumer, Provider: r.provider,
				Quality: 0, Outcome: social.Refused, Rating: 0, HonestRating: true,
			})
			e.recordServed(r.provider, 0)
			e.consumers[r.consumer].ObserveQuality(r.provider, r.candidates, 0)
			e.consumers[r.consumer].UpdatePreference(r.provider, 0)
			e.offerReport(tx, r.consumer, r.provider, 0)
			continue
		}

		// The consumer judges the allocation against its intentions and the
		// quality it actually received.
		e.consumers[r.consumer].ObserveQuality(r.provider, r.candidates, r.quality)
		outcome := social.Good
		if r.quality < 0.5 {
			outcome = social.Bad
			st.BadService++
		}
		e.snet.Record(social.Interaction{
			ID: tx, Consumer: r.consumer, Provider: r.provider,
			Quality: r.quality, Outcome: outcome, Rating: r.rating, HonestRating: r.honest,
		})
		e.recordServed(r.provider, r.quality)
		e.consumers[r.consumer].UpdatePreference(r.provider, r.quality)
		if e.ledger != nil {
			// Interacting discloses the consumer's profile to the provider.
			e.ledger.Record(privacy.Disclosure{
				Owner:       r.consumer,
				Item:        e.profileItem[r.consumer],
				Sensitivity: social.Medium,
				Recipient:   r.provider,
				Purpose:     privacy.SocialUse,
				Consented:   true,
			})
		}
		e.offerReport(tx, r.consumer, r.provider, r.rating)
	}
}

// recordServed folds one served (or refused, quality 0) interaction into the
// incremental ground-truth accumulators, sparing facet measurement a full
// log rescan.
func (e *Engine) recordServed(provider int, quality float64) {
	e.servedCount[provider]++
	if e.servedCount[provider] == 1 {
		e.servedStale = true
	}
	e.qualSum[provider] += quality
}
