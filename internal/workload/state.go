package workload

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/reputation"
	"repro/internal/satisfaction"
	"repro/internal/sim"
	"repro/internal/social"
)

// EngineState is the serializable mutable state of a workload Engine. It
// captures every random-stream position and every piece of state a round can
// touch, so that a restored engine continues bit-for-bit identically to one
// that never stopped — at any shard count, since shards are a scheduling
// decomposition only and are deliberately not part of the state.
//
// Scenario structure (population size, friendship graph, activity order,
// behaviour parameters) is NOT serialized: a snapshot is restored into an
// engine rebuilt from the identical configuration, which regenerates that
// structure deterministically from the seed.
type EngineState struct {
	// RNG is the main planning stream; Activity is the Zipf consumer-draw
	// stream (nil when the scenario has no activity skew).
	RNG      sim.RNGState
	Activity *sim.RNGState
	Gatherer reputation.GathererState
	// MechName guards against restoring into an engine with a different
	// mechanism; Mechanism is the mechanism's own opaque state blob.
	MechName  string
	Mechanism []byte
	Network   social.NetworkState
	Consumers []satisfaction.ConsumerState
	Providers []satisfaction.ProviderState
	// Classes is the current behaviour class per peer (intervention swaps
	// change it); behaviours are rebuilt from it on restore.
	Classes        []adversary.Class
	Active         []bool
	HonestOverride []float64
	Round          int
	Rounds         []RoundStats
	Cumulative     RoundStats
	GateFailures   int64
	FakeReports    int64
	ComputeIters   int64
	ServedCount    []int
	QualSum        []float64
	// SatDirty lists the users whose satisfaction state was touched since the
	// last epoch measurement consumed the dirty set (ascending). Normally
	// empty at snapshot time (epoch boundaries reset it), it is captured so a
	// mid-epoch snapshot — or future callers with other cadences — resumes
	// with identical dirty-set accounting.
	SatDirty    []int
	TrustGate   float64
	LedgerScale float64
}

// State captures the engine's mutable state. The mechanism must implement
// reputation.Snapshotter.
func (e *Engine) State() (EngineState, error) {
	snap, ok := e.mech.(reputation.Snapshotter)
	if !ok {
		return EngineState{}, fmt.Errorf("workload: mechanism %q does not support snapshots", e.mech.Name())
	}
	blob, err := snap.MechanismState()
	if err != nil {
		return EngineState{}, err
	}
	st := EngineState{
		RNG:            e.rng.State(),
		Gatherer:       e.gatherer.State(),
		MechName:       e.mech.Name(),
		Mechanism:      blob,
		Network:        e.snet.State(),
		Consumers:      make([]satisfaction.ConsumerState, len(e.consumers)),
		Providers:      make([]satisfaction.ProviderState, len(e.providers)),
		Classes:        append([]adversary.Class(nil), e.classes...),
		Active:         append([]bool(nil), e.active...),
		HonestOverride: append([]float64(nil), e.honestOverride...),
		Round:          e.round,
		Rounds:         append([]RoundStats(nil), e.rounds...),
		Cumulative:     e.cumulative,
		GateFailures:   e.GateFailures,
		FakeReports:    e.FakeReports,
		ComputeIters:   e.computeIters,
		ServedCount:    append([]int(nil), e.servedCount...),
		QualSum:        append([]float64(nil), e.qualSum...),
		SatDirty:       append([]int(nil), e.satDirty.Sorted()...),
		TrustGate:      e.cfg.TrustGate,
		LedgerScale:    e.ledgerScale,
	}
	if e.activity != nil {
		ast := e.activity.Stream().State()
		st.Activity = &ast
	}
	for i, c := range e.consumers {
		st.Consumers[i] = c.State()
	}
	for i, p := range e.providers {
		st.Providers[i] = p.State()
	}
	return st, nil
}

// Restore overwrites the engine's mutable state with a captured one. The
// engine must have been built from the identical configuration (same seed,
// peers, graph, mechanism, behaviour mix); shard count is free to differ.
func (e *Engine) Restore(st EngineState) error {
	n := e.cfg.NumPeers
	if st.MechName != e.mech.Name() {
		return fmt.Errorf("workload: snapshot is for mechanism %q, engine runs %q", st.MechName, e.mech.Name())
	}
	if len(st.Consumers) != n || len(st.Providers) != n || len(st.Classes) != n ||
		len(st.ServedCount) != n || len(st.QualSum) != n {
		return fmt.Errorf("workload: snapshot population does not match %d peers", n)
	}
	if len(st.Active) != 0 && len(st.Active) != n {
		return fmt.Errorf("workload: snapshot active set has %d entries, want %d", len(st.Active), n)
	}
	if len(st.HonestOverride) != 0 && len(st.HonestOverride) != n {
		return fmt.Errorf("workload: snapshot honesty override has %d entries, want %d", len(st.HonestOverride), n)
	}
	if (st.Activity != nil) != (e.activity != nil) {
		return fmt.Errorf("workload: snapshot activity-skew state does not match scenario")
	}
	if st.TrustGate < 0 || st.TrustGate >= 1 {
		return fmt.Errorf("workload: snapshot trust gate %v out of [0,1)", st.TrustGate)
	}
	snap, ok := e.mech.(reputation.Snapshotter)
	if !ok {
		return fmt.Errorf("workload: mechanism %q does not support snapshots", e.mech.Name())
	}
	if err := snap.RestoreMechanismState(st.Mechanism); err != nil {
		return err
	}
	if err := e.snet.SetState(st.Network); err != nil {
		return err
	}
	for i, c := range e.consumers {
		if err := c.SetState(st.Consumers[i]); err != nil {
			return err
		}
	}
	for i, p := range e.providers {
		if err := p.SetState(st.Providers[i]); err != nil {
			return err
		}
	}
	// Rebuild behaviours from the recorded classes (intervention swaps may
	// have diverged from the constructed assignment). Behaviours are pure
	// functions of (class, config, clique), so this is exact.
	e.clique = make(map[int]bool)
	for id, c := range st.Classes {
		if c == adversary.Colluder {
			e.clique[id] = true
		}
	}
	cfg := e.cfg.AdvCfg
	cfg.Clique = e.clique
	e.colluders = nil
	for id, c := range st.Classes {
		b, err := adversary.New(c, cfg)
		if err != nil {
			return fmt.Errorf("workload: rebuild behaviour for peer %d: %w", id, err)
		}
		e.classes[id] = c
		e.snet.User(id).Behavior = b
		if c == adversary.Colluder {
			e.colluders = append(e.colluders, id)
		}
	}
	e.rng.SetState(st.RNG)
	if e.activity != nil {
		e.activity.Stream().SetState(*st.Activity)
	}
	e.gatherer = reputation.RestoreGatherer(st.Gatherer)
	e.active = append([]bool(nil), st.Active...)
	// The active-peer index is derived state: recount eagerly, rebuild the
	// id list lazily on next use.
	e.activeDirty = true
	e.activeCount = 0
	for _, on := range e.active {
		if on {
			e.activeCount++
		}
	}
	e.honestOverride = append([]float64(nil), st.HonestOverride...)
	e.round = st.Round
	e.rounds = append([]RoundStats(nil), st.Rounds...)
	e.cumulative = st.Cumulative
	e.GateFailures = st.GateFailures
	e.FakeReports = st.FakeReports
	e.computeIters = st.ComputeIters
	copy(e.servedCount, st.ServedCount)
	copy(e.qualSum, st.QualSum)
	// The served-provider index is derived state: rebuild lazily on next use.
	e.servedStale = true
	e.satDirty.Reset()
	for _, u := range st.SatDirty {
		e.satDirty.Mark(u)
	}
	e.cfg.TrustGate = st.TrustGate
	e.ledgerScale = st.LedgerScale
	// A restore rewrites every piece of simulate-visible state, so any
	// cluster replica synced against the pre-restore engine is stale.
	e.mutationGen++
	return nil
}
