package workload

import (
	"repro/internal/reputation"
	"repro/internal/sim"
)

// The cluster seam: the scatter phase of the round pipeline can be executed
// by an external executor — the master/worker cluster layer — because it
// reads only round-immutable state (scores, graph, behaviours, membership,
// honesty override) plus each plan's private RNG stream, and every mutation
// is deferred to the sequential gather. The wire types below carry exactly
// that: a plan is (consumer, RNG state), an outcome is the full
// interactionResult. A worker holding a replica of the engine synced to the
// same mutation generation produces bit-for-bit the outcomes the local
// scatter would have, so delegation never perturbs results.

// PlannedInteraction is the wire form of one scheduled interaction: the
// consumer plus the exact state of the private stream its simulation will
// consume. Copying the stream state (rather than re-deriving it) is what
// keeps remote simulation bit-identical to local.
type PlannedInteraction struct {
	Consumer int
	RNG      sim.RNGState
}

// InteractionOutcome is the wire form of one simulated interaction result,
// mirroring interactionResult field for field.
type InteractionOutcome struct {
	Consumer   int
	Provider   int // -1 when no provider was found
	Absent     bool
	GateFailed bool
	Candidates []int
	Refused    bool
	Quality    float64
	Rating     float64
	Honest     bool
}

// ScatterDelegate executes a round's scatter phase externally. It receives
// the full plan list and the round-scoped inputs (scores, gate, active pool,
// round index) and returns one outcome per plan, in plan order. It returns
// ok=false to decline — no workers registered, say — in which case the
// engine scatters locally. A delegate MUST be bit-exact: outcomes must be
// exactly what SimulateChunk on an in-sync replica produces.
type ScatterDelegate func(plans []PlannedInteraction, scores []float64, gate float64, pool []int, round int) (outcomes []InteractionOutcome, ok bool)

// SetScatterDelegate installs (or, with nil, removes) the external scatter
// executor.
func (e *Engine) SetScatterDelegate(fn ScatterDelegate) { e.scatterDelegate = fn }

// SetReportObserver installs (or, with nil, removes) a callback that sees
// every report batch the engine delivers to its mechanism (round flushes and
// external submissions alike, after the mechanism accepted them). The cluster
// master uses it to mirror mechanism feedback onto worker replicas. The
// callback must not retain the slice and must not mutate the engine.
func (e *Engine) SetReportObserver(fn func([]reputation.Report)) { e.reportObserver = fn }

// MutationGen returns the engine's mutation generation: a counter bumped by
// every out-of-round mutation of simulate-visible state (membership,
// behaviour classes, honesty overrides, whitewashes, state restores). A
// replica synced at generation g needs a fresh snapshot iff the master's
// generation has moved past g; report flow is mirrored separately via the
// report observer and does not bump the generation.
func (e *Engine) MutationGen() uint64 { return e.mutationGen }

// NoteMutation records an out-of-round mutation of simulate-visible state
// performed outside the engine's own setters (e.g. a whitewash resetting
// mechanism rows through the facade).
func (e *Engine) NoteMutation() { e.mutationGen++ }

// SimulateChunk simulates a contiguous chunk of a round's plans against the
// engine's current state — the worker-side half of a delegated scatter (and
// the master's local fallback for a chunk whose worker died). It fans the
// chunk over the engine's shards exactly like the local scatter phase, and
// reads only round-immutable state, so outcomes are bit-identical wherever
// the chunk runs.
func (e *Engine) SimulateChunk(plans []PlannedInteraction, scores []float64, gate float64, pool []int, round int) []InteractionOutcome {
	ip := make([]interactionPlan, len(plans))
	for k := range plans {
		ip[k].consumer = plans[k].Consumer
		ip[k].rng.SetState(plans[k].RNG)
	}
	results := make([]interactionResult, len(ip))
	sim.ForChunks(e.shards, len(ip), func(lo, hi int) {
		for k := lo; k < hi; k++ {
			results[k] = e.simulate(&ip[k], scores, gate, pool, round)
		}
	})
	out := make([]InteractionOutcome, len(results))
	for k := range results {
		out[k] = exportOutcome(&results[k])
	}
	return out
}

// exportPlans converts a round's plans to their wire form.
func exportPlans(plans []interactionPlan) []PlannedInteraction {
	out := make([]PlannedInteraction, len(plans))
	for k := range plans {
		out[k] = PlannedInteraction{Consumer: plans[k].consumer, RNG: plans[k].rng.State()}
	}
	return out
}

func exportOutcome(r *interactionResult) InteractionOutcome {
	return InteractionOutcome{
		Consumer:   r.consumer,
		Provider:   r.provider,
		Absent:     r.absent,
		GateFailed: r.gateFailed,
		Candidates: r.candidates,
		Refused:    r.refused,
		Quality:    r.quality,
		Rating:     r.rating,
		Honest:     r.honest,
	}
}

func importOutcome(o *InteractionOutcome) interactionResult {
	return interactionResult{
		consumer:   o.Consumer,
		provider:   o.Provider,
		absent:     o.Absent,
		gateFailed: o.GateFailed,
		candidates: o.Candidates,
		refused:    o.Refused,
		quality:    o.Quality,
		rating:     o.Rating,
		honest:     o.Honest,
	}
}
