// Package workload drives end-to-end scenarios: it assembles a social
// network over a generated graph, assigns behaviour classes, and runs
// rounds of consumer/provider interactions in which the reputation
// mechanism's response policy picks providers, feedback flows through the
// disclosure-limited gatherer, and the satisfaction model tracks every
// participant. It is the engine behind experiments E1, E5, E7 and E8 and
// the example applications.
package workload

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"repro/internal/adversary"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/reputation"
	"repro/internal/satisfaction"
	"repro/internal/sim"
	"repro/internal/social"
)

// GraphKind selects the friendship-graph generator.
type GraphKind int

// Graph kinds.
const (
	BarabasiAlbert GraphKind = iota + 1
	WattsStrogatz
	ErdosRenyi
)

// Selection selects the response policy.
type Selection int

// Response policies.
const (
	SelectBest Selection = iota + 1
	SelectProportional
)

// Config describes a scenario.
type Config struct {
	Seed     uint64
	NumPeers int
	// Mix is the behaviour-class composition (defaults to all honest).
	Mix adversary.Mix
	// AdvCfg tunes the behaviour models.
	AdvCfg adversary.Config
	// Graph selects the friendship topology (default BarabasiAlbert).
	Graph GraphKind
	// GraphParam is m for BA, k for WS, and expected degree for ER
	// (default 4).
	GraphParam int
	// InteractionsPerRound is the number of requests per round
	// (default NumPeers).
	InteractionsPerRound int
	// CandidateSize is how many candidate providers each request considers
	// (default 5).
	CandidateSize int
	// Disclosure is the uniform initial disclosure level in [0,1]
	// (default 1): the probability a peer shares each feedback report.
	// The zero value means "default"; pass any negative value for an
	// explicit zero (share nothing).
	Disclosure float64
	// Selection is the response policy (default SelectBest).
	Selection Selection
	// RecomputeEvery recomputes mechanism scores every k rounds
	// (default 5).
	RecomputeEvery int
	// Memory is the satisfaction EMA weight (default satisfaction.DefaultMemory).
	Memory float64
	// TrustGate in [0,1) applies the privacy policies' MinTrustLevel
	// clause through reputation: only candidates whose score reaches the
	// TrustGate-quantile of all scores may serve. 0 disables gating.
	// Stricter gates protect data (fewer exchanges) at the cost of failed
	// allocations.
	TrustGate float64
	// ActivitySkew is the Zipf exponent of consumer activity (0 =
	// uniform): social workloads have a heavy-tailed active minority.
	// Which peers are the active ones is decorrelated from peer ids by a
	// seeded permutation.
	ActivitySkew float64
	// Shards is the number of parallel worker shards the round pipeline
	// scatters interaction simulation over (default 1 = run inline).
	// Results are bit-for-bit identical for every shard count: shards are
	// a scheduling decomposition, not a semantic one — see shard.go.
	Shards int
}

func (c Config) withDefaults() (Config, error) {
	if c.NumPeers <= 1 {
		return c, fmt.Errorf("workload: NumPeers must be > 1, got %d", c.NumPeers)
	}
	if len(c.Mix.Fractions) == 0 {
		c.Mix = adversary.Mix{Fractions: map[adversary.Class]float64{adversary.Honest: 1}}
	}
	if c.Graph == 0 {
		c.Graph = BarabasiAlbert
	}
	if c.GraphParam <= 0 {
		c.GraphParam = 4
	}
	if c.InteractionsPerRound <= 0 {
		c.InteractionsPerRound = c.NumPeers
	}
	if c.CandidateSize <= 0 {
		c.CandidateSize = 5
	}
	switch {
	case c.Disclosure < 0:
		c.Disclosure = 0
	case c.Disclosure == 0:
		c.Disclosure = 1
	}
	if c.Disclosure > 1 {
		return c, fmt.Errorf("workload: disclosure %v out of [0,1]", c.Disclosure)
	}
	if c.Selection == 0 {
		c.Selection = SelectBest
	}
	if c.RecomputeEvery <= 0 {
		c.RecomputeEvery = 5
	}
	if c.Memory == 0 {
		c.Memory = satisfaction.DefaultMemory
	}
	if c.TrustGate < 0 || c.TrustGate >= 1 {
		return c, fmt.Errorf("workload: trust gate %v out of [0,1)", c.TrustGate)
	}
	if c.ActivitySkew < 0 {
		return c, fmt.Errorf("workload: negative activity skew %v", c.ActivitySkew)
	}
	if c.Shards < 0 {
		return c, fmt.Errorf("workload: negative shard count %d", c.Shards)
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	return c, nil
}

// Validate checks the configuration without assembling an engine; it
// catches everything NewEngine itself would reject. The public facade runs
// it before spending single-use resources (e.g. a wrapped mechanism).
func (c Config) Validate() error {
	c, err := c.withDefaults()
	if err != nil {
		return err
	}
	if err := c.Mix.Validate(); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	switch c.Graph {
	case BarabasiAlbert, WattsStrogatz, ErdosRenyi:
	default:
		return fmt.Errorf("workload: unknown graph kind %d", c.Graph)
	}
	return nil
}

// RoundStats summarizes one round.
type RoundStats struct {
	Round        int
	Interactions int
	// BadService counts interactions whose delivered quality < 0.5
	// (including refusals) — the "inauthentic downloads" measure of the
	// EigenTrust evaluation.
	BadService int
	// Refused counts interactions where the provider declined.
	Refused int
}

// BadRate returns BadService/Interactions (0 when idle).
func (r RoundStats) BadRate() float64 {
	if r.Interactions == 0 {
		return 0
	}
	return float64(r.BadService) / float64(r.Interactions)
}

// Engine runs a configured scenario round by round.
type Engine struct {
	cfg       Config
	rng       *sim.RNG
	snet      *social.Network
	mech      reputation.Mechanism
	gatherer  *reputation.Gatherer
	consumers []*satisfaction.Consumer
	providers []*satisfaction.Provider
	classes   []adversary.Class
	// honestOverride, when non-nil, replaces each peer's honesty: the
	// probability it reports truthfully (the §3 coupling between system
	// trust and honest contribution).
	honestOverride []float64
	round          int
	rounds         []RoundStats
	cumulative     RoundStats
	// ledger, when attached, accounts every information flow: the
	// consumer's profile attribute disclosed to the provider on each
	// interaction, and each feedback report disclosed to the mechanism.
	ledger      *privacy.Ledger //trustlint:derived attached by the owner; the ledger snapshots itself through its own State/SetState
	ledgerScale float64
	// GateFailures counts allocation rounds where the trust gate left no
	// eligible candidate.
	GateFailures int64
	// colluders lists the peers forming the malicious collective; every
	// round they ballot-stuff: fabricate one satisfied transaction each
	// about a clique member (the EigenTrust threat model's collective).
	colluders []int //trustlint:derived configuration, rebuilt from the scenario's adversary classes
	// FakeReports counts ballot-stuffed reports offered.
	FakeReports int64
	// activity, when set, draws consumers from a Zipf distribution mapped
	// through activityOrder.
	activity      *sim.Zipf
	activityOrder []int //trustlint:derived configuration, a fixed permutation of the peer ids derived from the scenario seed
	// shards is the worker count of the scatter phase (>= 1); see shard.go.
	shards int //trustlint:derived execution-shape knob (SetShards); bit-identical results for any value
	// active, when non-nil, marks which peers are present in the network
	// (session Join/Leave/Whitewash waves). nil means everyone is present.
	// Absent peers are never candidates, never serve, and their scheduled
	// interactions are dropped (the request had no one to make it).
	active []bool
	// activeIDs is the sorted id list of present peers — the active-peer
	// index round planning and candidate sampling draw from, so their cost
	// tracks the active population rather than NumPeers. It is rebuilt
	// lazily (activeDirty) after membership changes; activeCount is
	// maintained eagerly so ActivePeers stays O(1). All three are derived
	// from active and are deliberately not serialized.
	activeIDs   []int //trustlint:derived index over active, rebuilt lazily after restore (activeDirty)
	activeDirty bool  //trustlint:derived set by restore to force the activeIDs rebuild
	activeCount int   //trustlint:derived recounted from active on restore
	// pending buffers the reports the gatherer admits during a round; they
	// flush to the mechanism in one batch at the end of the round (see
	// flushReports). The buffer is always empty between rounds, so it is
	// not part of EngineState.
	pending []reputation.Report //trustlint:derived always empty between rounds, when snapshots are taken
	// computeIters accumulates the iteration counts returned by every
	// mechanism Compute the engine triggers (periodic recomputes and
	// summary barriers) — the solver-cost ledger behind the facade's
	// convergence diagnostics.
	computeIters int64
	// clique is the current colluder id set, shared by every colluder
	// behaviour so intervention-time class swaps keep the clique coherent.
	clique map[int]bool //trustlint:derived rebuilt from colluders, which come from the scenario's adversary classes
	// roundObserver, when set, is invoked with each completed round's stats
	// (the session layer's OnRound hook). It runs after the round's state is
	// fully merged and must not mutate the engine.
	roundObserver func(RoundStats) //trustlint:derived session-layer hook, re-attached by the owner after restore
	// scatterDelegate, when set, may execute the scatter phase externally
	// (the cluster master); see cluster.go for the bit-exactness contract.
	scatterDelegate ScatterDelegate //trustlint:derived cluster-layer hook, re-attached by the owner after restore; bit-exact by contract
	// reportObserver, when set, sees every report batch delivered to the
	// mechanism — the cluster master's replica-mirroring hook.
	reportObserver func([]reputation.Report) //trustlint:derived cluster-layer hook, re-attached by the owner after restore; pure observation
	// mutationGen counts out-of-round mutations of simulate-visible state;
	// see MutationGen in cluster.go.
	mutationGen uint64 //trustlint:derived replica-sync cursor, compared only against itself within one master process
	// profileItem caches each user's ledger item name so the gather phase
	// does not re-format it on every interaction.
	profileItem []string //trustlint:derived format cache, a pure function of the peer id
	// servedCount/qualSum accumulate each provider's realized service
	// incrementally (refusals as quality 0), so ground truth and the served
	// set never require rescanning the interaction log.
	servedCount []int
	qualSum     []float64
	// servedIDs is the ascending id list of providers with servedCount > 0,
	// rebuilt lazily (servedStale) when a provider first serves, so per-epoch
	// facet measurement iterates the served set without a Θ(n) scan.
	servedIDs   []int //trustlint:derived index over servedCount, rebuilt lazily after restore (servedStale)
	servedStale bool  //trustlint:derived set by restore (and first-serve transitions) to force the servedIDs rebuild
	// satDirty marks users whose satisfaction EMA state was touched by the
	// gather phase since the last ResetSatisfactionTouched — the
	// satisfaction leg of the epoch tail's facet dirty set.
	satDirty metrics.DirtySet
}

// NewEngine assembles a scenario around the provided mechanism (which must
// be sized for cfg.NumPeers).
func NewEngine(cfg Config, mech reputation.Mechanism) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if mech == nil {
		return nil, fmt.Errorf("workload: nil mechanism")
	}
	rng := sim.NewRNG(cfg.Seed)
	behaviors, classes, err := cfg.Mix.Assign(rng.Split(), cfg.NumPeers, cfg.AdvCfg)
	if err != nil {
		return nil, fmt.Errorf("workload: assign behaviours: %w", err)
	}
	var friends *graph.Graph
	grng := rng.Split()
	switch cfg.Graph {
	case BarabasiAlbert:
		friends = graph.BarabasiAlbert(grng, cfg.NumPeers, cfg.GraphParam)
	case WattsStrogatz:
		friends = graph.WattsStrogatz(grng, cfg.NumPeers, cfg.GraphParam, 0.1)
	case ErdosRenyi:
		p := float64(cfg.GraphParam) / float64(cfg.NumPeers-1)
		friends = graph.ErdosRenyi(grng, cfg.NumPeers, p)
	default:
		return nil, fmt.Errorf("workload: unknown graph kind %d", cfg.Graph)
	}
	users := make([]*social.User, cfg.NumPeers)
	for i := range users {
		users[i] = &social.User{
			ID:             i,
			Profile:        social.StandardProfile(i),
			Behavior:       behaviors[i],
			BaseDisclosure: cfg.Disclosure,
		}
	}
	snet, err := social.NewNetwork(users, friends)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	e := &Engine{
		cfg:         cfg,
		rng:         rng,
		snet:        snet,
		mech:        mech,
		classes:     classes,
		shards:      cfg.Shards,
		servedCount: make([]int, cfg.NumPeers),
		qualSum:     make([]float64, cfg.NumPeers),
		profileItem: make([]string, cfg.NumPeers),
	}
	// Mechanism compute parallelizes under the same shard configuration as
	// the epoch pipeline (and with the same determinism contract).
	if cs, ok := mech.(reputation.ComputeSharder); ok {
		cs.SetComputeShards(cfg.Shards)
	}
	for i := range e.profileItem {
		e.profileItem[i] = "profile/" + strconv.Itoa(i)
	}
	e.clique = make(map[int]bool)
	for id, c := range classes {
		if c == adversary.Colluder {
			e.colluders = append(e.colluders, id)
			e.clique[id] = true
		}
	}
	if cfg.ActivitySkew > 0 {
		e.activity = sim.NewZipf(rng.Split(), cfg.NumPeers, cfg.ActivitySkew)
		e.activityOrder = rng.Perm(cfg.NumPeers)
	}
	e.setUniformDisclosure(cfg.Disclosure)
	e.consumers = make([]*satisfaction.Consumer, cfg.NumPeers)
	e.providers = make([]*satisfaction.Provider, cfg.NumPeers)
	for i := 0; i < cfg.NumPeers; i++ {
		// Sparse uniform intentions: preferences start at 0.5 and deviate only
		// for providers actually experienced; providers are mostly willing
		// (imposed requests dent satisfaction). Dense vectors here would cost
		// Θ(n²) memory — fatal at 100k+ peers.
		c, err := satisfaction.NewUniformConsumer(cfg.NumPeers, 0.5, cfg.Memory)
		if err != nil {
			return nil, err
		}
		p, err := satisfaction.NewUniformProvider(cfg.NumPeers, 0.8, cfg.Memory)
		if err != nil {
			return nil, err
		}
		e.consumers[i] = c
		e.providers[i] = p
	}
	return e, nil
}

func (e *Engine) setUniformDisclosure(d float64) {
	vec := make([]float64, e.cfg.NumPeers)
	for i := range vec {
		vec[i] = d
	}
	e.gatherer = reputation.NewGatherer(e.rng.Split(), vec)
}

// SetDisclosure installs a per-peer disclosure vector (values clamped by the
// gatherer).
func (e *Engine) SetDisclosure(d []float64) {
	e.gatherer = reputation.NewGatherer(e.rng.Split(), d)
}

// SetHonestOverride installs per-peer truthful-report probabilities,
// overriding behaviour-class honesty (nil restores class behaviour). A
// vector bitwise identical to the installed one is a no-op: it neither
// copies nor bumps the replica-sync generation, so a steady-state epoch does
// not force a full cluster resync just to reinstall unchanged honesty.
func (e *Engine) SetHonestOverride(h []float64) {
	if h == nil {
		if e.honestOverride != nil {
			e.honestOverride = nil
			e.mutationGen++
		}
		return
	}
	if len(h) == len(e.honestOverride) {
		same := true
		for i, v := range h {
			if math.Float64bits(v) != math.Float64bits(e.honestOverride[i]) {
				same = false
				break
			}
		}
		if same {
			return
		}
		copy(e.honestOverride, h)
		e.mutationGen++
		return
	}
	cp := make([]float64, len(h))
	copy(cp, h)
	e.honestOverride = cp
	e.mutationGen++
}

// ApplyHonestyDelta rewrites the honesty override for just the listed users
// from h (a full n-length vector; only cells named by ids are read). With no
// override installed yet it falls back to installing the whole vector. The
// replica-sync generation is bumped only when something actually changes.
func (e *Engine) ApplyHonestyDelta(ids []int, h []float64) {
	if e.honestOverride == nil {
		e.SetHonestOverride(h)
		return
	}
	changed := false
	for _, u := range ids {
		if u < 0 || u >= len(e.honestOverride) || u >= len(h) {
			continue
		}
		if math.Float64bits(e.honestOverride[u]) != math.Float64bits(h[u]) {
			e.honestOverride[u] = h[u]
			changed = true
		}
	}
	if changed {
		e.mutationGen++
	}
}

// InstallDisclosure overwrites every peer's disclosure probability in place
// (clamped by the gatherer), preserving the gatherer's random stream —
// unlike SetDisclosure, which rebuilds the gatherer on a fresh stream split.
// The gatherer is consumed only on the sequential gather path, so no replica
// resync is needed.
func (e *Engine) InstallDisclosure(d []float64) {
	for i, v := range d {
		e.gatherer.SetDisclosure(i, v)
	}
}

// UpdateDisclosure rewrites the disclosure probability for just the listed
// users from d (a full n-length vector; only cells named by ids are read) —
// the sparse-coupling twin of InstallDisclosure.
func (e *Engine) UpdateDisclosure(ids []int, d []float64) {
	for _, u := range ids {
		if u < 0 || u >= len(d) {
			continue
		}
		e.gatherer.SetDisclosure(u, d[u])
	}
}

// Network exposes the social network.
func (e *Engine) Network() *social.Network { return e.snet }

// Mechanism exposes the reputation mechanism.
func (e *Engine) Mechanism() reputation.Mechanism { return e.mech }

// Gatherer exposes the current gatherer (for share-rate stats).
func (e *Engine) Gatherer() *reputation.Gatherer { return e.gatherer }

// Classes returns the ground-truth behaviour class per peer.
func (e *Engine) Classes() []adversary.Class {
	out := make([]adversary.Class, len(e.classes))
	copy(out, e.classes)
	return out
}

// AttachLedger wires a privacy ledger into the interaction loop; scale is
// the exposure normalization scale (see privacy.Ledger.NormalizedExposure).
func (e *Engine) AttachLedger(l *privacy.Ledger, scale float64) {
	e.ledger = l
	e.ledgerScale = scale
}

// Ledger exposes the attached privacy ledger (nil when none attached).
func (e *Engine) Ledger() *privacy.Ledger { return e.ledger }

// PrivacyFacets returns each user's privacy facet from the attached ledger
// (all ones when no ledger is attached: nothing was accounted as disclosed).
// The per-user ledger queries are read-only, so they fan out over the
// engine's shards.
func (e *Engine) PrivacyFacets() []float64 {
	out := make([]float64, e.cfg.NumPeers)
	if e.ledger == nil {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	// Sequentially refresh the ledger's facet cache for owners dirtied since
	// the last barrier; the sharded readers below then hit cached values
	// without ever mutating ledger state.
	e.ledger.RefreshFacets(e.ledgerScale)
	sim.ForChunks(e.shards, len(out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = e.ledger.PrivacyFacet(i, e.ledgerScale)
		}
	})
	return out
}

// RefreshPrivacyFacets brings the attached ledger's facet cache up to date
// at the current exposure scale (a no-op without a ledger). It mutates the
// cache, so it must run on a sequential phase, before PrivacyFacetOf calls
// fan out over shards.
func (e *Engine) RefreshPrivacyFacets() {
	if e.ledger != nil {
		e.ledger.RefreshFacets(e.ledgerScale)
	}
}

// PrivacyFacetOf returns one user's privacy facet at the current exposure
// scale (1 without a ledger). After RefreshPrivacyFacets it is a cached,
// mutation-free read, safe to fan out over shards.
func (e *Engine) PrivacyFacetOf(u int) float64 {
	if e.ledger == nil {
		return 1
	}
	return e.ledger.PrivacyFacet(u, e.ledgerScale)
}

// LedgerDirtyOwners returns the ascending owner ids whose ledger state
// changed since the last RefreshPrivacyFacets (nil without a ledger). The
// slice is owned by the ledger and valid until its next mutation — read it
// before refreshing.
func (e *Engine) LedgerDirtyOwners() []int {
	if e.ledger == nil {
		return nil
	}
	return e.ledger.DirtyOwners()
}

// LedgerScale returns the exposure normalization scale currently in effect
// for the attached ledger's privacy facet.
func (e *Engine) LedgerScale() float64 { return e.ledgerScale }

// UserSatisfaction returns one user's satisfaction facet: her long-run
// satisfaction averaged over her consumer and provider roles.
func (e *Engine) UserSatisfaction(u int) float64 {
	return (e.consumers[u].Satisfaction() + e.providers[u].Satisfaction()) / 2
}

// SatisfactionTouched returns the ascending ids of users whose satisfaction
// EMA state was touched by the gather phase since the last reset. The slice
// is owned by the engine and valid until the next round or reset.
func (e *Engine) SatisfactionTouched() []int { return e.satDirty.Sorted() }

// ResetSatisfactionTouched clears the satisfaction dirty set, typically
// after an epoch's facet measurement has consumed it.
func (e *Engine) ResetSatisfactionTouched() { e.satDirty.Reset() }

// BarrierCompute forces a mechanism recompute — the measurement barrier an
// epoch boundary runs so facet measurement sees scores that reflect every
// gathered report — and folds its iteration count into the solver-cost
// ledger, exactly as Summarize's barrier does.
func (e *Engine) BarrierCompute() {
	e.computeIters += int64(e.mech.Compute())
}

// ServedProviders returns the ascending ids of providers that ever served
// (servedCount > 0), rebuilt lazily after a first-serve transition or a
// restore. The slice is owned by the engine and valid until the next round.
func (e *Engine) ServedProviders() []int {
	if e.servedStale {
		e.servedIDs = e.servedIDs[:0]
		for p, cnt := range e.servedCount {
			if cnt > 0 {
				e.servedIDs = append(e.servedIDs, p)
			}
		}
		e.servedStale = false
	}
	return e.servedIDs
}

// ProviderQuality returns a provider's realized mean service quality from
// the incremental accumulators (1 for providers who never served, matching
// GroundTruth).
func (e *Engine) ProviderQuality(p int) float64 {
	if p < 0 || p >= len(e.servedCount) || e.servedCount[p] == 0 {
		return 1
	}
	return e.qualSum[p] / float64(e.servedCount[p])
}

// Round executes one interaction round through the sharded scatter-gather
// pipeline (see shard.go): the schedule is planned on the main stream,
// interactions are simulated in parallel over the engine's shards, and the
// results merge into the shared state in canonical order. Equal seeds give
// identical rounds for every shard count.
func (e *Engine) Round() RoundStats {
	cfg := e.cfg
	st := RoundStats{Round: e.round}
	// Read-only fast path: the round only gates and ranks on the scores, so
	// the per-round n-float copy is skipped when the mechanism offers a view.
	scores := reputation.ScoresOf(e.mech)
	gate := -1.0
	if cfg.TrustGate > 0 {
		gate = metrics.Quantile(scores, cfg.TrustGate)
	}
	// Freshen the active index on the sequential path: the scatter phase
	// reads it from every shard concurrently.
	pool := e.activePool()
	plans := e.planRound(pool)
	results := e.scatter(plans, scores, gate, pool, e.round)
	e.gather(results, &st)
	// Malicious collective: each colluder fabricates one satisfied
	// transaction about another clique member per round. Absent colluders
	// neither stuff ballots nor receive them.
	if len(e.colluders) > 1 {
		for _, c := range e.colluders {
			if !e.PeerActive(c) {
				continue
			}
			m := e.colluders[e.rng.Intn(len(e.colluders))]
			if m == c || !e.PeerActive(m) {
				continue
			}
			e.FakeReports++
			e.offerReport(e.snet.NextTxID(), c, m, 1.0)
		}
	}
	e.flushReports()
	e.round++
	if e.round%cfg.RecomputeEvery == 0 {
		e.computeIters += int64(e.mech.Compute())
	}
	e.rounds = append(e.rounds, st)
	e.cumulative.Interactions += st.Interactions
	e.cumulative.BadService += st.BadService
	e.cumulative.Refused += st.Refused
	if e.roundObserver != nil {
		e.roundObserver(st)
	}
	return st
}

// rate computes the consumer's reported rating, honouring the honesty
// override when installed. It draws only from the supplied stream so it is
// safe in the scatter phase.
func (e *Engine) rate(rng *sim.RNG, cu *social.User, consumer, provider int, quality float64) (float64, bool) {
	if e.honestOverride != nil {
		if rng.Bool(e.honestOverride[consumer]) {
			return quality, true
		}
		return 1 - quality, false
	}
	return cu.Behavior.Rate(rng, provider, quality), cu.Behavior.Honest(provider)
}

// offerReport runs the rater's disclosure draw at its canonical position in
// the round and, when admitted, buffers the report for the end-of-round
// batch flush. Deferring delivery does not change mechanism state: scores
// are only consumed at Compute (end of round) and at the next round's start,
// and the flush preserves report order.
func (e *Engine) offerReport(tx uint64, rater, ratee int, value float64) {
	if !e.gatherer.Admit(rater) {
		return
	}
	e.pending = append(e.pending, reputation.Report{
		TxID: tx, Rater: rater, Ratee: ratee, Value: value,
	})
}

// flushReports delivers the round's admitted reports to the mechanism — in
// one SubmitBatch call when the mechanism supports it — and completes the
// gatherer and ledger accounting for each delivered report, exactly as
// per-report Offer calls would have. Mechanism errors only arise from
// malformed reports, which the engine never produces; a rejected report is
// dropped, like under per-report submission.
func (e *Engine) flushReports() {
	if len(e.pending) == 0 {
		return
	}
	if bs, ok := e.mech.(reputation.BatchSubmitter); ok {
		if bs.SubmitBatch(e.pending) == nil {
			for i := range e.pending {
				r := &e.pending[i]
				e.gatherer.Commit(r.Rater)
				e.recordFeedbackDisclosure(r.Rater, r.TxID)
			}
			if e.reportObserver != nil {
				e.reportObserver(e.pending)
			}
		}
	} else {
		var delivered []reputation.Report
		for i := range e.pending {
			r := &e.pending[i]
			if e.mech.Submit(*r) != nil {
				continue
			}
			e.gatherer.Commit(r.Rater)
			e.recordFeedbackDisclosure(r.Rater, r.TxID)
			if e.reportObserver != nil {
				delivered = append(delivered, *r)
			}
		}
		if len(delivered) > 0 {
			e.reportObserver(delivered)
		}
	}
	e.pending = e.pending[:0]
}

// recordFeedbackDisclosure accounts one shared feedback report in the
// privacy ledger: sharing feedback discloses the rater's behavioural data to
// the reputation layer (recipient -1 = the mechanism). Items are
// per-transaction so exposure grows with each shared report.
func (e *Engine) recordFeedbackDisclosure(rater int, tx uint64) {
	if e.ledger == nil {
		return
	}
	e.ledger.Record(privacy.Disclosure{
		Owner:       rater,
		Item:        "feedback/" + strconv.Itoa(rater) + "/" + strconv.FormatUint(tx, 10),
		Sensitivity: social.Low,
		Recipient:   -1,
		Purpose:     privacy.ReputationUse,
		Consented:   true,
	})
}

// sampleCandidates picks the candidate provider set for a consumer: its
// friends first (social locality), padded with uniform strangers. Strangers
// are drawn from the active-peer index (pool) when churn has thinned the
// population — never rejection-sampled against all of 0..n — so the draw
// cost tracks present peers. A nil pool means everyone is present and
// strangers come uniformly from the full id range. It draws only from the
// supplied stream so it is safe in the scatter phase.
func (e *Engine) sampleCandidates(rng *sim.RNG, consumer int, pool []int) []int {
	cfg := e.cfg
	out := make([]int, 0, cfg.CandidateSize)
	// Candidate sets are tiny (default 5), so a linear membership scan
	// beats allocating a map in this per-interaction hot path.
	seen := func(p int) bool {
		if p == consumer || !e.PeerActive(p) {
			return true
		}
		for _, q := range out {
			if q == p {
				return true
			}
		}
		return false
	}
	friends := e.snet.Friends().Neighbors(consumer)
	if len(friends) > 0 {
		for _, idx := range rng.Perm(len(friends)) {
			if len(out) >= cfg.CandidateSize/2+1 {
				break
			}
			if f := friends[idx]; !seen(f) {
				out = append(out, f)
			}
		}
	}
	if pool == nil {
		for guard := 0; len(out) < cfg.CandidateSize && guard < cfg.NumPeers*4; guard++ {
			if p := rng.Intn(cfg.NumPeers); !seen(p) {
				out = append(out, p)
			}
		}
		return out
	}
	// Draws from the pool only collide with self, friends already picked,
	// or earlier duplicates, so a small multiple of the pool bounds the
	// rejection loop even when few peers remain.
	for guard := 0; len(out) < cfg.CandidateSize && guard < len(pool)*4; guard++ {
		if p := pool[rng.Intn(len(pool))]; !seen(p) {
			out = append(out, p)
		}
	}
	return out
}

// Run executes n rounds.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.Round()
	}
}

// RunContext executes up to n rounds, consulting ctx before each one so a
// long epoch cannot stall cancellation (a served daemon's shutdown must not
// wait out a large in-flight epoch). It returns the context's error when
// interrupted; rounds already run stay merged, so the engine state is that
// of a shorter run, not a corrupt one.
func (e *Engine) RunContext(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		e.Round()
	}
	return nil
}

// SubmitExternalReport feeds one externally submitted feedback report —
// e.g. an API client of a served engine — straight into the reputation
// mechanism, bypassing the disclosure-limited gatherer: submitting through
// the API is an explicit disclosure, not a behavioural draw, so no random
// stream is consumed. The transaction id comes from the social network's
// counter (snapshotted state), so a run that replays the same submissions
// at the same epoch boundaries reproduces identical mechanism state.
func (e *Engine) SubmitExternalReport(rater, ratee int, value float64) error {
	if rater < 0 || rater >= e.cfg.NumPeers {
		return fmt.Errorf("workload: report rater %d out of range [0,%d)", rater, e.cfg.NumPeers)
	}
	if ratee < 0 || ratee >= e.cfg.NumPeers {
		return fmt.Errorf("workload: report ratee %d out of range [0,%d)", ratee, e.cfg.NumPeers)
	}
	if rater == ratee {
		return fmt.Errorf("workload: self-rating report by %d rejected", rater)
	}
	if !(value >= 0 && value <= 1) { // also rejects NaN
		return fmt.Errorf("workload: report value %v out of [0,1]", value)
	}
	tx := e.snet.NextTxID()
	if err := e.mech.Submit(reputation.Report{TxID: tx, Rater: rater, Ratee: ratee, Value: value}); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	// Same accounting as a gathered in-simulation report: sharing feedback
	// discloses the rater's behavioural data to the mechanism.
	e.recordFeedbackDisclosure(rater, tx)
	if e.reportObserver != nil {
		e.reportObserver([]reputation.Report{{TxID: tx, Rater: rater, Ratee: ratee, Value: value}})
	}
	return nil
}

// Summary aggregates scenario-level metrics.
type Summary struct {
	Rounds int `json:"rounds"`
	// BadServiceRate is the cumulative fraction of interactions with bad
	// or refused service.
	BadServiceRate float64 `json:"bad_service_rate"`
	// RecentBadRate is the bad-service rate over the last quarter of
	// rounds (the converged regime).
	RecentBadRate float64 `json:"recent_bad_rate"`
	// Tau is the Kendall rank correlation between mechanism scores and
	// ground-truth provider quality — the paper's "consistency with the
	// reality" reputation power.
	Tau float64 `json:"tau"`
	// ConsumerSat / ProviderSat are the mean long-run satisfactions.
	ConsumerSat float64 `json:"consumer_sat"`
	ProviderSat float64 `json:"provider_sat"`
	// ShareRate is the fraction of reports actually disclosed.
	ShareRate float64 `json:"share_rate"`
}

// Summarize computes the summary so far.
func (e *Engine) Summarize() Summary {
	e.computeIters += int64(e.mech.Compute())
	s := Summary{Rounds: e.round}
	if e.cumulative.Interactions > 0 {
		s.BadServiceRate = float64(e.cumulative.BadService) / float64(e.cumulative.Interactions)
	}
	q := len(e.rounds) / 4
	if q < 1 {
		q = 1
	}
	recent := RoundStats{}
	for _, r := range e.rounds[len(e.rounds)-min(q, len(e.rounds)):] {
		recent.Interactions += r.Interactions
		recent.BadService += r.BadService
	}
	s.RecentBadRate = recent.BadRate()
	// Reputation power = rank agreement between scores and realized
	// behaviour, over peers that actually served (others have no ground
	// truth to be consistent with). The served set and ground truth come
	// from the incremental per-provider accumulators, not a log rescan.
	scores := reputation.ScoresOf(e.mech)
	var gtServed, scServed []float64
	for p, cnt := range e.servedCount {
		if cnt > 0 {
			gtServed = append(gtServed, e.qualSum[p]/float64(cnt))
			scServed = append(scServed, scores[p])
		}
	}
	s.Tau = metrics.KendallTau(scServed, gtServed)
	cs := make([]float64, len(e.consumers))
	ps := make([]float64, len(e.providers))
	for i := range e.consumers {
		cs[i] = e.consumers[i].Satisfaction()
		ps[i] = e.providers[i].Satisfaction()
	}
	s.ConsumerSat = metrics.Mean(cs)
	s.ProviderSat = metrics.Mean(ps)
	if tot := e.gatherer.Gathered + e.gatherer.Withheld; tot > 0 {
		s.ShareRate = float64(e.gatherer.Gathered) / float64(tot)
	}
	return s
}

// GroundTruth returns, from the incremental accumulators, each provider's
// realized mean quality (1 for providers who never served, matching
// social.Network.GroundTruthQuality) and whether it ever served.
func (e *Engine) GroundTruth() (gt []float64, served []bool) {
	gt = make([]float64, e.cfg.NumPeers)
	served = make([]bool, e.cfg.NumPeers)
	for p, cnt := range e.servedCount {
		if cnt == 0 {
			gt[p] = 1
			continue
		}
		served[p] = true
		gt[p] = e.qualSum[p] / float64(cnt)
	}
	return gt, served
}

// CumulativeStats returns the accumulated round totals so far (Round field
// holds the number of completed rounds).
func (e *Engine) CumulativeStats() RoundStats {
	st := e.cumulative
	st.Round = e.round
	return st
}

// Shards returns the scatter-phase worker count.
func (e *Engine) Shards() int { return e.shards }

// SetShards changes the scatter-phase worker count (values < 1 are clamped
// to 1). Because shards are purely a scheduling decomposition, changing the
// count mid-run does not perturb results.
func (e *Engine) SetShards(k int) {
	if k < 1 {
		k = 1
	}
	e.shards = k
	if cs, ok := e.mech.(reputation.ComputeSharder); ok {
		cs.SetComputeShards(k)
	}
}

// SetRoundObserver installs (or, with nil, removes) the callback invoked
// after every completed round. The callback sees the merged round stats and
// must not mutate the engine; pure observation does not perturb any random
// stream, so observed and unobserved runs are bit-for-bit identical.
func (e *Engine) SetRoundObserver(fn func(RoundStats)) { e.roundObserver = fn }

// PeerActive reports whether a peer is currently present in the network.
func (e *Engine) PeerActive(peer int) bool {
	if peer < 0 || peer >= e.cfg.NumPeers {
		return false
	}
	return e.active == nil || e.active[peer]
}

// SetPeerActive marks a peer present (Join) or absent (Leave). Absent peers
// are excluded from candidate sets, drop their scheduled requests, and do
// not ballot-stuff; all their accumulated state (satisfaction, reputation,
// ledger) survives for when they rejoin.
func (e *Engine) SetPeerActive(peer int, on bool) error {
	if peer < 0 || peer >= e.cfg.NumPeers {
		return fmt.Errorf("workload: peer %d out of range [0,%d)", peer, e.cfg.NumPeers)
	}
	if e.active == nil {
		if on {
			return nil // everyone already present
		}
		e.active = make([]bool, e.cfg.NumPeers)
		for i := range e.active {
			e.active[i] = true
		}
		e.activeCount = e.cfg.NumPeers
		e.activeDirty = true
	}
	if e.active[peer] != on {
		e.active[peer] = on
		if on {
			e.activeCount++
		} else {
			e.activeCount--
		}
		e.activeDirty = true
		e.mutationGen++
	}
	return nil
}

// activePool returns the sorted id list of present peers, rebuilding it
// from the membership bitmap only after a change. nil means everyone is
// present (callers then draw from the full 0..NumPeers range, which makes
// churn-free runs bit-identical to index-free sampling). Must be called
// from the sequential phases only: the scatter shards read the returned
// slice concurrently.
func (e *Engine) activePool() []int {
	if e.active == nil {
		return nil
	}
	if e.activeDirty {
		e.activeIDs = e.activeIDs[:0]
		for i, on := range e.active {
			if on {
				e.activeIDs = append(e.activeIDs, i)
			}
		}
		e.activeDirty = false
	}
	return e.activeIDs
}

// ActivePeers returns how many peers are currently present.
func (e *Engine) ActivePeers() int {
	if e.active == nil {
		return e.cfg.NumPeers
	}
	return e.activeCount
}

// ComputeIterations returns the cumulative number of solver iterations the
// mechanism has spent across every Compute the engine triggered.
func (e *Engine) ComputeIterations() int64 { return e.computeIters }

// Convergence returns the mechanism's diagnostics for its most recent
// iterative Compute; ok is false when the mechanism is not an iterative
// solver or has not recomputed yet.
func (e *Engine) Convergence() (reputation.Convergence, bool) {
	if cr, ok := e.mech.(reputation.ConvergenceReporter); ok {
		return cr.LastConvergence()
	}
	return reputation.Convergence{}, false
}

// SetTrustGate changes the privacy trust-gate strictness mid-run (a
// privacy-policy intervention). The new gate applies from the next round.
func (e *Engine) SetTrustGate(gate float64) error {
	if gate < 0 || gate >= 1 {
		return fmt.Errorf("workload: trust gate %v out of [0,1)", gate)
	}
	e.cfg.TrustGate = gate
	return nil
}

// SetLedgerScale changes the exposure normalization scale of the attached
// ledger's privacy facet.
func (e *Engine) SetLedgerScale(scale float64) error {
	if scale < 0 {
		return fmt.Errorf("workload: negative exposure scale %v", scale)
	}
	if scale == 0 {
		scale = 50
	}
	e.ledgerScale = scale
	return nil
}

// SetBehaviorClass swaps a peer's behaviour class mid-run (adversary
// activation / honesty restoration). Colluder swaps keep the shared clique
// coherent: every colluder behaviour is rebuilt over the updated clique.
func (e *Engine) SetBehaviorClass(peer int, class adversary.Class) error {
	if peer < 0 || peer >= e.cfg.NumPeers {
		return fmt.Errorf("workload: peer %d out of range [0,%d)", peer, e.cfg.NumPeers)
	}
	if e.classes[peer] == class {
		return nil
	}
	wasColluder := e.classes[peer] == adversary.Colluder
	// Validate and construct the non-colluder behaviour BEFORE touching any
	// shared state, so a bad class leaves clique/classes/colluders intact.
	// (A Colluder target cannot fail: its clique is non-empty once the peer
	// joins, and rebuildColluders constructs it below.)
	var b adversary.Behavior
	if class != adversary.Colluder {
		var err error
		if b, err = adversary.New(class, e.cfg.AdvCfg); err != nil {
			return fmt.Errorf("workload: %w", err)
		}
	}
	e.mutationGen++
	if class == adversary.Colluder {
		e.clique[peer] = true
	} else if wasColluder {
		delete(e.clique, peer)
	}
	e.classes[peer] = class
	if b != nil {
		e.snet.User(peer).Behavior = b
	}
	if wasColluder || class == adversary.Colluder {
		return e.rebuildColluders()
	}
	return nil
}

// rebuildColluders recomputes the colluder roster from the classes and
// refreshes every colluder's behaviour over the current shared clique.
func (e *Engine) rebuildColluders() error {
	e.colluders = e.colluders[:0]
	cfg := e.cfg.AdvCfg
	cfg.Clique = e.clique
	for id, c := range e.classes {
		if c != adversary.Colluder {
			continue
		}
		e.colluders = append(e.colluders, id)
		b, err := adversary.New(adversary.Colluder, cfg)
		if err != nil {
			return fmt.Errorf("workload: %w", err)
		}
		e.snet.User(id).Behavior = b
	}
	return nil
}

// ConsumerSatisfactions returns each consumer's long-run satisfaction.
func (e *Engine) ConsumerSatisfactions() []float64 {
	out := make([]float64, len(e.consumers))
	for i, c := range e.consumers {
		out[i] = c.Satisfaction()
	}
	return out
}

// ProviderSatisfactions returns each provider's long-run satisfaction.
func (e *Engine) ProviderSatisfactions() []float64 {
	out := make([]float64, len(e.providers))
	for i, p := range e.providers {
		out[i] = p.Satisfaction()
	}
	return out
}
