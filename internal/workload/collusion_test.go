package workload

import (
	"testing"

	"repro/internal/adversary"
)

func collMix(frac float64) adversary.Mix {
	return adversary.Mix{
		Fractions: map[adversary.Class]float64{
			adversary.Honest:   1 - frac,
			adversary.Colluder: frac,
		},
		ForceHonest: []int{0, 1},
	}
}

func TestColludersBallotStuff(t *testing.T) {
	e, err := NewEngine(Config{Seed: 41, NumPeers: 30, Mix: collMix(0.3), RecomputeEvery: 2}, newEigen(t, 30))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if e.FakeReports == 0 {
		t.Fatal("no ballot-stuffed reports")
	}
	// Roughly one fake report per colluder per round (minus self-draws).
	if e.FakeReports > 10*9 {
		t.Fatalf("too many fake reports: %d", e.FakeReports)
	}
}

func TestNoBallotStuffingWithoutColluders(t *testing.T) {
	e, err := NewEngine(Config{Seed: 43, NumPeers: 20, Mix: mixMalicious(0.3)}, newEigen(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if e.FakeReports != 0 {
		t.Fatalf("fake reports without colluders: %d", e.FakeReports)
	}
}

func TestCollusionDiffersFromPlainMalice(t *testing.T) {
	// The collective's ballot stuffing must change the score vector
	// relative to an identically-seeded plain-malicious population.
	run := func(mix adversary.Mix) []float64 {
		e, err := NewEngine(Config{Seed: 45, NumPeers: 30, Mix: mix, RecomputeEvery: 2}, newEigen(t, 30))
		if err != nil {
			t.Fatal(err)
		}
		e.Run(20)
		e.Mechanism().Compute()
		return e.Mechanism().Scores()
	}
	mal := run(adversary.Mix{
		Fractions:   map[adversary.Class]float64{adversary.Honest: 0.7, adversary.Malicious: 0.3},
		ForceHonest: []int{0, 1},
	})
	coll := run(collMix(0.3))
	same := true
	for i := range mal {
		if mal[i] != coll[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("collusion produced identical scores to plain malice")
	}
}

func TestPretrustDampsCollusionInWorkload(t *testing.T) {
	// With pre-trusted honest founders, the clique must not out-rank the
	// honest peers that actually serve well.
	e, err := NewEngine(Config{Seed: 47, NumPeers: 40, Mix: collMix(0.3), RecomputeEvery: 2}, newEigen(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(40)
	e.Mechanism().Compute()
	scores := e.Mechanism().Scores()
	gt := e.Network().GroundTruthQuality()
	served := map[int]bool{}
	for _, i := range e.Network().Interactions() {
		served[i.Provider] = true
	}
	bestColluder, bestHonest := 0.0, 0.0
	for id, c := range e.Classes() {
		if !served[id] {
			continue
		}
		switch {
		case c == adversary.Colluder && scores[id] > bestColluder:
			bestColluder = scores[id]
		case c == adversary.Honest && gt[id] >= 0.5 && scores[id] > bestHonest:
			bestHonest = scores[id]
		}
	}
	if bestColluder >= bestHonest {
		t.Fatalf("clique out-ranked honest peers: %v >= %v", bestColluder, bestHonest)
	}
}
