package workload

import (
	"testing"
)

// churnPlan deactivates and reactivates peers between rounds, exercising the
// active-peer index (rebuilt lazily after each membership change).
func churnPlan(t *testing.T, e *Engine, rounds int) []RoundStats {
	t.Helper()
	var stats []RoundStats
	for i := 0; i < rounds; i++ {
		switch i {
		case 3:
			for _, p := range []int{5, 11, 17, 23} {
				if err := e.SetPeerActive(p, false); err != nil {
					t.Fatal(err)
				}
			}
		case 7:
			if err := e.SetPeerActive(11, true); err != nil {
				t.Fatal(err)
			}
			if err := e.SetPeerActive(29, false); err != nil {
				t.Fatal(err)
			}
		}
		stats = append(stats, e.Round())
	}
	return stats
}

// TestActiveIndexShardInvariance extends the pipeline's determinism contract
// to thinned populations: with peers leaving and rejoining mid-run, every
// shard count must draw the same candidates from the active-peer index and
// produce bit-identical results.
func TestActiveIndexShardInvariance(t *testing.T) {
	cfg := Config{Seed: 19, NumPeers: 40, Mix: mixMalicious(0.3), RecomputeEvery: 2, TrustGate: 0.1}
	run := func(shards int) (Summary, []RoundStats) {
		c := cfg
		c.Shards = shards
		e, err := NewEngine(c, newEigen(t, c.NumPeers))
		if err != nil {
			t.Fatal(err)
		}
		rounds := churnPlan(t, e, 16)
		if e.ActivePeers() != 36 { // 40 − 4 out + 1 back − 1 out
			t.Fatalf("shards=%d: ActivePeers = %d, want 36", shards, e.ActivePeers())
		}
		return e.Summarize(), rounds
	}
	refSum, refRounds := run(1)
	for _, k := range []int{2, 5, 8} {
		sum, rounds := run(k)
		if sum != refSum {
			t.Fatalf("shards=%d: summary diverged under churn:\n%+v\n%+v", k, sum, refSum)
		}
		for i := range refRounds {
			if rounds[i] != refRounds[i] {
				t.Fatalf("shards=%d: round %d diverged under churn", k, i)
			}
		}
	}
}

// TestActiveIndexSnapshotRoundTrip snapshots mid-run with peers absent (the
// serialized active set plus the derived index rebuilt on restore) and
// checks a restored engine — at a different shard count — continues
// bit-for-bit like the uninterrupted one.
func TestActiveIndexSnapshotRoundTrip(t *testing.T) {
	cfg := Config{Seed: 23, NumPeers: 40, Mix: mixMalicious(0.25), RecomputeEvery: 2, Shards: 3}
	orig, err := NewEngine(cfg, newEigen(t, cfg.NumPeers))
	if err != nil {
		t.Fatal(err)
	}
	churnPlan(t, orig, 9) // stop right after the epoch-7 membership changes
	st, err := orig.State()
	if err != nil {
		t.Fatal(err)
	}

	cfg2 := cfg
	cfg2.Shards = 6
	restored, err := NewEngine(cfg2, newEigen(t, cfg.NumPeers))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(st); err != nil {
		t.Fatal(err)
	}
	if restored.ActivePeers() != orig.ActivePeers() {
		t.Fatalf("restored ActivePeers = %d, want %d", restored.ActivePeers(), orig.ActivePeers())
	}
	for p := 0; p < cfg.NumPeers; p++ {
		if restored.PeerActive(p) != orig.PeerActive(p) {
			t.Fatalf("restored PeerActive(%d) = %v, want %v", p, restored.PeerActive(p), orig.PeerActive(p))
		}
	}

	orig.Run(8)
	restored.Run(8)
	if orig.Summarize() != restored.Summarize() {
		t.Fatalf("summaries diverged after restore-then-run:\n%+v\n%+v", orig.Summarize(), restored.Summarize())
	}
	a, b := orig.mech.Scores(), restored.mech.Scores()
	for p := range a {
		if a[p] != b[p] {
			t.Fatalf("score[%d]: %v != %v after restore-then-run", p, a[p], b[p])
		}
	}
}
