package workload

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/reputation"
	"repro/internal/reputation/eigentrust"
)

func newEigen(t *testing.T, n int) reputation.Mechanism {
	t.Helper()
	pre := []int{0}
	if n > 1 {
		pre = append(pre, 1)
	}
	m, err := eigentrust.New(eigentrust.Config{N: n, Pretrusted: pre})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mixMalicious(frac float64) adversary.Mix {
	return adversary.Mix{Fractions: map[adversary.Class]float64{
		adversary.Honest:    1 - frac,
		adversary.Malicious: frac,
	}}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewEngine(Config{NumPeers: 1}, newEigen(t, 1)); err == nil {
		t.Fatal("NumPeers=1 accepted")
	}
	if _, err := NewEngine(Config{NumPeers: 10, Disclosure: 2}, newEigen(t, 10)); err == nil {
		t.Fatal("disclosure > 1 accepted")
	}
	if _, err := NewEngine(Config{NumPeers: 10}, nil); err == nil {
		t.Fatal("nil mechanism accepted")
	}
	if _, err := NewEngine(Config{NumPeers: 10, Graph: GraphKind(9)}, newEigen(t, 10)); err == nil {
		t.Fatal("unknown graph kind accepted")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() Summary {
		e, err := NewEngine(Config{Seed: 42, NumPeers: 40, Mix: mixMalicious(0.3)}, newEigen(t, 40))
		if err != nil {
			t.Fatal(err)
		}
		e.Run(20)
		return e.Summarize()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestRoundsProduceInteractions(t *testing.T) {
	e, err := NewEngine(Config{Seed: 1, NumPeers: 30}, newEigen(t, 30))
	if err != nil {
		t.Fatal(err)
	}
	st := e.Round()
	if st.Interactions == 0 {
		t.Fatal("no interactions in a round")
	}
	if len(e.Network().Interactions()) != st.Interactions {
		t.Fatalf("log has %d, round reports %d", len(e.Network().Interactions()), st.Interactions)
	}
}

func TestReputationSuppressesBadService(t *testing.T) {
	// With 30% malicious peers, EigenTrust + best-selection must yield far
	// less bad service than the no-reputation baseline — E7's core shape.
	cfgBase := Config{Seed: 7, NumPeers: 60, Mix: mixMalicious(0.3), RecomputeEvery: 2}

	eRep, err := NewEngine(cfgBase, newEigen(t, 60))
	if err != nil {
		t.Fatal(err)
	}
	eRep.Run(60)
	rep := eRep.Summarize()

	eNone, err := NewEngine(cfgBase, reputation.NewNone(60))
	if err != nil {
		t.Fatal(err)
	}
	eNone.Run(60)
	none := eNone.Summarize()

	if rep.RecentBadRate >= none.RecentBadRate {
		t.Fatalf("reputation did not help: rep=%v none=%v", rep.RecentBadRate, none.RecentBadRate)
	}
	if rep.RecentBadRate > 0.15 {
		t.Fatalf("converged bad rate = %v, want < 0.15", rep.RecentBadRate)
	}
	if none.RecentBadRate < 0.15 {
		t.Fatalf("baseline bad rate suspiciously low: %v", none.RecentBadRate)
	}
}

func TestTauPositiveWithHonestMajority(t *testing.T) {
	e, err := NewEngine(Config{Seed: 3, NumPeers: 50, Mix: mixMalicious(0.2), RecomputeEvery: 2}, newEigen(t, 50))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(120)
	s := e.Summarize()
	if s.Tau < 0.25 {
		t.Fatalf("reputation/ground-truth tau = %v, want meaningful positive", s.Tau)
	}
}

func TestDisclosureReducesSharing(t *testing.T) {
	cfg := Config{Seed: 5, NumPeers: 40, Mix: mixMalicious(0.3), Disclosure: 0.2}
	e, err := NewEngine(cfg, newEigen(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(30)
	s := e.Summarize()
	if s.ShareRate < 0.1 || s.ShareRate > 0.3 {
		t.Fatalf("share rate = %v, want ~0.2", s.ShareRate)
	}
}

func TestLowDisclosureWeakensReputation(t *testing.T) {
	run := func(d float64) Summary {
		cfg := Config{Seed: 11, NumPeers: 60, Mix: mixMalicious(0.3), Disclosure: d, RecomputeEvery: 2}
		e, err := NewEngine(cfg, newEigen(t, 60))
		if err != nil {
			t.Fatal(err)
		}
		e.Run(60)
		return e.Summarize()
	}
	full := run(1.0)
	tiny := run(0.03)
	if tiny.Tau >= full.Tau {
		t.Fatalf("tau with 3%% disclosure (%v) not below full disclosure (%v)", tiny.Tau, full.Tau)
	}
}

func TestSetDisclosureMidRun(t *testing.T) {
	e, err := NewEngine(Config{Seed: 9, NumPeers: 20}, newEigen(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(5)
	zero := make([]float64, 20)
	e.SetDisclosure(zero)
	g := e.Gatherer()
	e.Run(5)
	if g.Gathered != 0 {
		t.Fatalf("zero disclosure still gathered %d", g.Gathered)
	}
}

func TestHonestOverride(t *testing.T) {
	// Forcing full dishonesty must destroy the score/ground-truth
	// correlation even with honest-class peers.
	run := func(h float64) float64 {
		e, err := NewEngine(Config{Seed: 13, NumPeers: 40, Mix: mixMalicious(0.3), RecomputeEvery: 2}, newEigen(t, 40))
		if err != nil {
			t.Fatal(err)
		}
		override := make([]float64, 40)
		for i := range override {
			override[i] = h
		}
		e.SetHonestOverride(override)
		e.Run(40)
		return e.Summarize().Tau
	}
	honest := run(1.0)
	liars := run(0.0)
	if liars >= honest {
		t.Fatalf("all-liars tau %v not below all-honest tau %v", liars, honest)
	}
	if liars > 0 {
		t.Fatalf("all-liars tau = %v, want <= 0", liars)
	}
}

func TestClassesExposedAndStable(t *testing.T) {
	e, err := NewEngine(Config{Seed: 15, NumPeers: 30, Mix: mixMalicious(0.5)}, newEigen(t, 30))
	if err != nil {
		t.Fatal(err)
	}
	classes := e.Classes()
	nMal := 0
	for _, c := range classes {
		if c == adversary.Malicious {
			nMal++
		}
	}
	if nMal != 15 {
		t.Fatalf("malicious count = %d, want 15", nMal)
	}
	classes[0] = adversary.Colluder
	if e.Classes()[0] == adversary.Colluder && classes[0] == e.Classes()[0] {
		// Ensure Classes returns a copy: mutating the returned slice must
		// not affect subsequent calls unless the engine itself changed.
		t.Fatal("Classes exposed internal state")
	}
}

func TestSatisfactionsTracked(t *testing.T) {
	e, err := NewEngine(Config{Seed: 17, NumPeers: 25}, newEigen(t, 25))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(30)
	s := e.Summarize()
	if s.ConsumerSat <= 0.3 {
		t.Fatalf("all-honest consumer satisfaction = %v, want high", s.ConsumerSat)
	}
	if s.ProviderSat <= 0.3 {
		t.Fatalf("provider satisfaction = %v", s.ProviderSat)
	}
	if len(e.ConsumerSatisfactions()) != 25 || len(e.ProviderSatisfactions()) != 25 {
		t.Fatal("per-user satisfactions wrong length")
	}
}

func TestGraphKinds(t *testing.T) {
	for _, g := range []GraphKind{BarabasiAlbert, WattsStrogatz, ErdosRenyi} {
		e, err := NewEngine(Config{Seed: 19, NumPeers: 30, Graph: g}, newEigen(t, 30))
		if err != nil {
			t.Fatalf("graph %d: %v", g, err)
		}
		e.Run(5)
		if e.Summarize().Rounds != 5 {
			t.Fatalf("graph %d did not run", g)
		}
	}
}

func TestProportionalSelection(t *testing.T) {
	e, err := NewEngine(Config{Seed: 21, NumPeers: 40, Mix: mixMalicious(0.3),
		Selection: SelectProportional, RecomputeEvery: 2}, newEigen(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(40)
	s := e.Summarize()
	if s.Rounds != 40 || s.BadServiceRate == 0 {
		t.Fatalf("proportional run summary = %+v", s)
	}
}
