package workload

import (
	"sort"
	"testing"
)

func TestActivitySkewValidation(t *testing.T) {
	if _, err := NewEngine(Config{NumPeers: 10, ActivitySkew: -1}, newEigen(t, 10)); err == nil {
		t.Fatal("negative skew accepted")
	}
}

func TestActivitySkewConcentratesConsumers(t *testing.T) {
	run := func(skew float64) []int {
		e, err := NewEngine(Config{Seed: 51, NumPeers: 40, ActivitySkew: skew}, newEigen(t, 40))
		if err != nil {
			t.Fatal(err)
		}
		e.Run(30)
		counts := make([]int, 40)
		for _, i := range e.Network().Interactions() {
			counts[i.Consumer]++
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		return counts
	}
	uniform := run(0)
	skewed := run(1.2)
	totalU, totalS := 0, 0
	for i := 0; i < 4; i++ { // top-4 consumers' share
		totalU += uniform[i]
		totalS += skewed[i]
	}
	if totalS <= totalU {
		t.Fatalf("Zipf activity not concentrated: top-4 %d vs uniform %d", totalS, totalU)
	}
}

func TestActivityOrderDecorrelatesFromIDs(t *testing.T) {
	e, err := NewEngine(Config{Seed: 53, NumPeers: 60, ActivitySkew: 1.5}, newEigen(t, 60))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(20)
	counts := make([]int, 60)
	for _, i := range e.Network().Interactions() {
		counts[i.Consumer]++
	}
	// The most active consumer must not always be peer 0 (the identity
	// permutation decorrelates activity rank from peer id).
	maxID, maxC := 0, 0
	for id, c := range counts {
		if c > maxC {
			maxID, maxC = id, c
		}
	}
	if maxID == 0 {
		// Possible but unlikely; check a second seed before failing.
		e2, err := NewEngine(Config{Seed: 54, NumPeers: 60, ActivitySkew: 1.5}, newEigen(t, 60))
		if err != nil {
			t.Fatal(err)
		}
		e2.Run(20)
		counts2 := make([]int, 60)
		for _, i := range e2.Network().Interactions() {
			counts2[i.Consumer]++
		}
		max2, c2 := 0, 0
		for id, c := range counts2 {
			if c > c2 {
				max2, c2 = id, c
			}
		}
		if max2 == 0 {
			t.Fatal("activity always concentrated on peer 0 — permutation missing")
		}
	}
}
