package workload

import (
	"testing"

	"repro/internal/privacy"
)

func TestTrustGateValidation(t *testing.T) {
	if _, err := NewEngine(Config{NumPeers: 10, TrustGate: 1}, newEigen(t, 10)); err == nil {
		t.Fatal("gate=1 accepted")
	}
	if _, err := NewEngine(Config{NumPeers: 10, TrustGate: -0.1}, newEigen(t, 10)); err == nil {
		t.Fatal("negative gate accepted")
	}
}

func TestTrustGateCausesFailures(t *testing.T) {
	open, err := NewEngine(Config{Seed: 31, NumPeers: 40, Mix: mixMalicious(0.3), RecomputeEvery: 2}, newEigen(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	strict, err := NewEngine(Config{Seed: 31, NumPeers: 40, Mix: mixMalicious(0.3),
		RecomputeEvery: 2, TrustGate: 0.9}, newEigen(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	open.Run(30)
	strict.Run(30)
	if open.GateFailures != 0 {
		t.Fatalf("ungated engine recorded %d gate failures", open.GateFailures)
	}
	if strict.GateFailures == 0 {
		t.Fatal("strict gate never failed an allocation")
	}
	// Failed allocations depress consumer satisfaction.
	if strict.Summarize().ConsumerSat >= open.Summarize().ConsumerSat {
		t.Fatalf("strict gate did not lower satisfaction: %v vs %v",
			strict.Summarize().ConsumerSat, open.Summarize().ConsumerSat)
	}
}

func TestAttachLedgerAccountsFlows(t *testing.T) {
	eng, err := NewEngine(Config{Seed: 33, NumPeers: 20, RecomputeEvery: 2}, newEigen(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	ledger := privacy.NewLedger()
	eng.AttachLedger(ledger, 50)
	eng.Run(10)
	if ledger.Len() == 0 {
		t.Fatal("ledger empty after interactions")
	}
	// Both flow kinds are recorded: profile->provider and feedback->mechanism.
	var profile, feedback int
	for _, e := range ledger.Events() {
		if e.Recipient == -1 {
			feedback++
		} else {
			profile++
		}
		if !e.Consented {
			t.Fatal("engine recorded unconsented flow")
		}
	}
	if profile == 0 || feedback == 0 {
		t.Fatalf("flows: profile=%d feedback=%d", profile, feedback)
	}
	// Privacy facets reflect the accounting.
	for u, p := range eng.PrivacyFacets() {
		if p <= 0 || p >= 1 {
			t.Fatalf("user %d privacy facet = %v, want (0,1)", u, p)
		}
	}
}

func TestPrivacyFacetsWithoutLedger(t *testing.T) {
	eng, err := NewEngine(Config{Seed: 35, NumPeers: 10}, newEigen(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(5)
	for _, p := range eng.PrivacyFacets() {
		if p != 1 {
			t.Fatalf("facet = %v without ledger", p)
		}
	}
}

func TestZeroDisclosureNoFeedbackFlows(t *testing.T) {
	eng, err := NewEngine(Config{Seed: 37, NumPeers: 20}, newEigen(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	ledger := privacy.NewLedger()
	eng.AttachLedger(ledger, 50)
	eng.SetDisclosure(make([]float64, 20))
	eng.Run(10)
	for _, e := range ledger.Events() {
		if e.Recipient == -1 {
			t.Fatal("feedback flow recorded at zero disclosure")
		}
	}
}
