package workload

import (
	"runtime"
	"testing"

	"repro/internal/adversary"
	"repro/internal/privacy"
)

// shardedRun executes a full scenario at the given shard count and returns
// everything observable: per-round stats, the summary, satisfactions, the
// privacy facets and the incremental ground truth.
type shardObservation struct {
	rounds   []RoundStats
	summary  Summary
	consumer []float64
	provider []float64
	privacy  []float64
	gt       []float64
	served   []bool
	gathered int64
	fakes    int64
	gateFail int64
}

func observeSharded(t *testing.T, shards int, cfg Config) shardObservation {
	t.Helper()
	cfg.Shards = shards
	e, err := NewEngine(cfg, newEigen(t, cfg.NumPeers))
	if err != nil {
		t.Fatal(err)
	}
	e.AttachLedger(privacy.NewLedger(), 50)
	var rounds []RoundStats
	for i := 0; i < 25; i++ {
		rounds = append(rounds, e.Round())
	}
	gt, served := e.GroundTruth()
	return shardObservation{
		rounds:   rounds,
		summary:  e.Summarize(),
		consumer: e.ConsumerSatisfactions(),
		provider: e.ProviderSatisfactions(),
		privacy:  e.PrivacyFacets(),
		gt:       gt,
		served:   served,
		gathered: e.Gatherer().Gathered,
		fakes:    e.FakeReports,
		gateFail: e.GateFailures,
	}
}

func equalF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardCountInvariance is the determinism contract of the scatter-gather
// pipeline: equal seeds produce bit-for-bit identical results for every
// shard count, over a scenario exercising gating, activity skew, colluders
// and the ledger.
func TestShardCountInvariance(t *testing.T) {
	cfg := Config{
		Seed:     42,
		NumPeers: 60,
		Mix: adversary.Mix{Fractions: map[adversary.Class]float64{
			adversary.Honest:    0.6,
			adversary.Malicious: 0.2,
			adversary.Colluder:  0.2,
		}},
		RecomputeEvery: 3,
		TrustGate:      0.2,
		ActivitySkew:   0.8,
		Disclosure:     0.7,
	}
	ref := observeSharded(t, 1, cfg)
	counts := []int{2, 4, 7, runtime.GOMAXPROCS(0)}
	for _, k := range counts {
		got := observeSharded(t, k, cfg)
		if len(got.rounds) != len(ref.rounds) {
			t.Fatalf("shards=%d: round count diverged", k)
		}
		for i := range ref.rounds {
			if got.rounds[i] != ref.rounds[i] {
				t.Fatalf("shards=%d: round %d stats %+v != %+v", k, i, got.rounds[i], ref.rounds[i])
			}
		}
		if got.summary != ref.summary {
			t.Fatalf("shards=%d: summary\n%+v\n!=\n%+v", k, got.summary, ref.summary)
		}
		if !equalF64(got.consumer, ref.consumer) || !equalF64(got.provider, ref.provider) {
			t.Fatalf("shards=%d: satisfactions diverged", k)
		}
		if !equalF64(got.privacy, ref.privacy) {
			t.Fatalf("shards=%d: privacy facets diverged", k)
		}
		if !equalF64(got.gt, ref.gt) {
			t.Fatalf("shards=%d: ground truth diverged", k)
		}
		for i := range ref.served {
			if got.served[i] != ref.served[i] {
				t.Fatalf("shards=%d: served set diverged at %d", k, i)
			}
		}
		if got.gathered != ref.gathered || got.fakes != ref.fakes || got.gateFail != ref.gateFail {
			t.Fatalf("shards=%d: counters diverged: %+v vs %+v", k, got, ref)
		}
	}
}

// TestSetShardsMidRun changes the shard count between rounds; because shards
// are a scheduling decomposition only, the trajectory must match an all-
// sequential run exactly.
func TestSetShardsMidRun(t *testing.T) {
	cfg := Config{Seed: 9, NumPeers: 40, Mix: mixMalicious(0.3), RecomputeEvery: 2}
	seq, err := NewEngine(cfg, newEigen(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	seq.Run(20)

	dyn, err := NewEngine(cfg, newEigen(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Shards() != 1 {
		t.Fatalf("default shards = %d, want 1", dyn.Shards())
	}
	dyn.Run(5)
	dyn.SetShards(4)
	dyn.Run(10)
	dyn.SetShards(0) // clamps to 1
	if dyn.Shards() != 1 {
		t.Fatalf("SetShards(0) left %d", dyn.Shards())
	}
	dyn.Run(5)
	if seq.Summarize() != dyn.Summarize() {
		t.Fatal("mid-run shard change perturbed the trajectory")
	}
}

// TestShardsValidation rejects negative shard counts and defaults zero.
func TestShardsValidation(t *testing.T) {
	if _, err := NewEngine(Config{NumPeers: 10, Shards: -1}, newEigen(t, 10)); err == nil {
		t.Fatal("negative shard count accepted")
	}
	e, err := NewEngine(Config{NumPeers: 10}, newEigen(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	if e.Shards() != 1 {
		t.Fatalf("zero-value shards resolved to %d, want 1", e.Shards())
	}
}

// TestGroundTruthMatchesLogScan pins the incremental accumulators to the
// reference full-log computation.
func TestGroundTruthMatchesLogScan(t *testing.T) {
	cfg := Config{Seed: 21, NumPeers: 50, Mix: mixMalicious(0.4), Shards: 3}
	e, err := NewEngine(cfg, newEigen(t, 50))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(15)
	gt, served := e.GroundTruth()
	want := e.Network().GroundTruthQuality()
	if !equalF64(gt, want) {
		t.Fatalf("incremental ground truth diverged from log scan:\n%v\n%v", gt, want)
	}
	inLog := make([]bool, 50)
	for _, i := range e.Network().Interactions() {
		inLog[i.Provider] = true
	}
	for p := range inLog {
		if inLog[p] != served[p] {
			t.Fatalf("served[%d] = %v, log says %v", p, served[p], inLog[p])
		}
	}
	cum := e.CumulativeStats()
	if cum.Interactions != len(e.Network().Interactions()) {
		t.Fatalf("cumulative interactions %d != log length %d",
			cum.Interactions, len(e.Network().Interactions()))
	}
	if cum.Round != 15 {
		t.Fatalf("cumulative round = %d, want 15", cum.Round)
	}
}
