package dht

// RingState is the serializable mutable state of a Ring whose membership is
// rebuilt out of band (mechanism snapshots re-join the same node set before
// restoring): the stored key/value pairs plus the routing-cost counters.
type RingState struct {
	Store   map[string][]byte
	Lookups int64
	Hops    int64
}

// State captures every stored key (deduplicated across replicas) and the
// routing counters.
func (r *Ring) State() RingState {
	st := RingState{Store: make(map[string][]byte), Lookups: r.Lookups, Hops: r.Hops}
	for _, n := range r.sorted {
		for k, v := range n.store {
			if _, ok := st.Store[k]; !ok {
				st.Store[k] = append([]byte(nil), v...)
			}
		}
	}
	return st
}

// SetState drops all stored keys and restores the captured ones onto the
// current membership's replica sets, plus the routing counters. The ring's
// node set must already match the one the state was captured from for
// placement (and therefore future routing costs) to be identical.
func (r *Ring) SetState(st RingState) {
	if r.stale {
		r.Stabilize()
	}
	for _, n := range r.sorted {
		n.store = make(map[string][]byte)
	}
	for k, v := range st.Store {
		cp := append([]byte(nil), v...)
		for _, n := range r.replicaSet(HashKey(k)) {
			n.store[k] = cp
		}
	}
	r.Lookups = st.Lookups
	r.Hops = st.Hops
}
