package dht

import (
	"errors"
	"fmt"
	"testing"
)

// TestDataLossBeyondReplication: losing every replica of a key before any
// stabilization is unrecoverable and must surface as ErrNotFound, not as a
// silent success or panic.
func TestDataLossBeyondReplication(t *testing.T) {
	r := buildRing(t, 20, 2)
	if err := r.Put("doomed", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for _, addr := range r.ReplicaAddrs("doomed") {
		r.Leave(addr)
	}
	r.Stabilize()
	if _, err := r.Get("doomed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound after losing all replicas", err)
	}
	// Unrelated keys must be unaffected.
	if err := r.Put("survivor", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("survivor"); err != nil {
		t.Fatal(err)
	}
}

// TestStaggeredFailuresWithRepair: losing one replica at a time with
// stabilization between failures never loses data, even after more total
// failures than the replication factor.
func TestStaggeredFailuresWithRepair(t *testing.T) {
	r := buildRing(t, 30, 3)
	for i := 0; i < 50; i++ {
		if err := r.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Remove 12 nodes (4x the replication factor), one at a time with
	// repair after each.
	for i := 0; i < 12; i++ {
		r.Leave(i)
		r.Stabilize()
	}
	for i := 0; i < 50; i++ {
		if _, err := r.Get(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("k%d lost despite staggered repair: %v", i, err)
		}
	}
}

// TestMassSimultaneousFailure measures survival at the replication
// boundary: with k=3 and a third of the ring failing simultaneously, the
// expected fraction of lost keys is (1/3)^3 ≈ 3.7%; all survivors must
// read consistently.
func TestMassSimultaneousFailure(t *testing.T) {
	r := buildRing(t, 60, 3)
	const nkeys = 300
	for i := 0; i < nkeys; i++ {
		if err := r.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		r.Leave(i * 3)
	}
	r.Stabilize()
	lost := 0
	for i := 0; i < nkeys; i++ {
		v, err := r.Get(fmt.Sprintf("k%d", i))
		switch {
		case errors.Is(err, ErrNotFound):
			lost++
		case err != nil:
			t.Fatalf("unexpected error: %v", err)
		case v[0] != byte(i):
			t.Fatalf("k%d corrupted: %v", i, v)
		}
	}
	// 3.7% expected; anything above 15% indicates replica placement is
	// broken rather than unlucky.
	if lost > nkeys*15/100 {
		t.Fatalf("lost %d/%d keys — far beyond the replication bound", lost, nkeys)
	}
}

// TestLeaveUnknownAddressIsNoop ensures fault handling is defensive.
func TestLeaveUnknownAddressIsNoop(t *testing.T) {
	r := buildRing(t, 5, 2)
	r.Leave(999)
	if r.Size() != 5 {
		t.Fatal("phantom leave changed ring size")
	}
}
