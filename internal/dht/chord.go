// Package dht implements a Chord-style distributed hash table: consistent
// hashing on a 64-bit ring, finger tables for O(log n) lookups, successor
// replication, and stabilization under churn.
//
// It is the storage substrate two reproduced systems need: TrustMe keeps
// anonymous reputation scores at trust-holding agents located by key, and
// the PriServ-style privacy service (§2.3) publishes/retrieves private data
// references by key.
package dht

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// HashKey maps an arbitrary string key onto the 64-bit identifier ring.
func HashKey(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// HashNode maps a node address onto the ring (salted differently from keys).
func HashNode(addr int) uint64 {
	var b [9]byte
	b[0] = 'n'
	binary.BigEndian.PutUint64(b[1:], uint64(addr))
	sum := sha256.Sum256(b[:])
	return binary.BigEndian.Uint64(sum[:8])
}

const fingerBits = 64

// node is one DHT participant.
type node struct {
	id    uint64
	addr  int
	store map[string][]byte
	// fingers[i] is the address of successor(id + 2^i); rebuilt by Stabilize.
	fingers []int
}

// ErrNotFound is returned by Get when no live replica holds the key.
var ErrNotFound = errors.New("dht: key not found")

// ErrEmptyRing is returned when an operation needs at least one live node.
var ErrEmptyRing = errors.New("dht: ring is empty")

// Ring is the DHT. All operations are synchronous; Hops counters expose the
// routing cost a real deployment would pay in messages.
type Ring struct {
	replicas int
	nodes    map[int]*node // by address
	sorted   []*node       // by ring id
	stale    bool          // fingers need rebuilding

	// Lookups and Hops accumulate routing statistics.
	Lookups int64
	Hops    int64
}

// NewRing creates a DHT with the given replication factor (clamped to >= 1).
func NewRing(replicas int) *Ring {
	if replicas < 1 {
		replicas = 1
	}
	return &Ring{replicas: replicas, nodes: make(map[int]*node)}
}

// Size returns the number of live nodes.
func (r *Ring) Size() int { return len(r.sorted) }

// Replicas returns the replication factor.
func (r *Ring) Replicas() int { return r.replicas }

// Join adds a node with the given address. Keys in its arc are replicated to
// it on the next Stabilize. Joining an existing address is an error.
func (r *Ring) Join(addr int) error {
	if _, ok := r.nodes[addr]; ok {
		return fmt.Errorf("dht: address %d already joined", addr)
	}
	n := &node{id: HashNode(addr), addr: addr, store: make(map[string][]byte)}
	r.nodes[addr] = n
	r.sorted = append(r.sorted, n)
	sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i].id < r.sorted[j].id })
	r.stale = true
	return nil
}

// Leave removes a node; its keys survive only on their other replicas until
// Stabilize re-replicates.
func (r *Ring) Leave(addr int) {
	n, ok := r.nodes[addr]
	if !ok {
		return
	}
	delete(r.nodes, addr)
	for i, s := range r.sorted {
		if s == n {
			r.sorted = append(r.sorted[:i], r.sorted[i+1:]...)
			break
		}
	}
	r.stale = true
}

// successorIdx returns the index in sorted of the first node with id >= key
// (wrapping).
func (r *Ring) successorIdx(key uint64) int {
	idx := sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i].id >= key })
	if idx == len(r.sorted) {
		idx = 0
	}
	return idx
}

// Stabilize rebuilds finger tables and re-replicates every key to its
// current replica set. Call after churn; it is idempotent.
func (r *Ring) Stabilize() {
	if len(r.sorted) == 0 {
		r.stale = false
		return
	}
	for _, n := range r.sorted {
		if cap(n.fingers) < fingerBits {
			n.fingers = make([]int, fingerBits)
		}
		n.fingers = n.fingers[:fingerBits]
		for i := 0; i < fingerBits; i++ {
			target := n.id + (uint64(1) << uint(i))
			n.fingers[i] = r.sorted[r.successorIdx(target)].addr
		}
	}
	// Re-replicate: gather all keys, rewrite them at their current owners,
	// and drop replicas that are no longer responsible.
	type kv struct {
		k string
		v []byte
	}
	all := make(map[string][]byte)
	for _, n := range r.sorted {
		for k, v := range n.store {
			all[k] = v
		}
	}
	keys := make([]kv, 0, len(all))
	for k, v := range all {
		keys = append(keys, kv{k, v})
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].k < keys[j].k })
	for _, n := range r.sorted {
		n.store = make(map[string][]byte)
	}
	for _, e := range keys {
		for _, owner := range r.replicaSet(HashKey(e.k)) {
			owner.store[e.k] = e.v
		}
	}
	r.stale = false
}

// replicaSet returns the replica nodes for a key id: its successor and the
// following replicas-1 distinct nodes.
func (r *Ring) replicaSet(keyID uint64) []*node {
	if len(r.sorted) == 0 {
		return nil
	}
	k := r.replicas
	if k > len(r.sorted) {
		k = len(r.sorted)
	}
	out := make([]*node, 0, k)
	idx := r.successorIdx(keyID)
	for i := 0; i < k; i++ {
		out = append(out, r.sorted[(idx+i)%len(r.sorted)])
	}
	return out
}

// ReplicaAddrs returns the addresses currently responsible for key.
func (r *Ring) ReplicaAddrs(key string) []int {
	set := r.replicaSet(HashKey(key))
	addrs := make([]int, len(set))
	for i, n := range set {
		addrs[i] = n.addr
	}
	return addrs
}

// Put stores value at the key's replica set.
func (r *Ring) Put(key string, value []byte) error {
	if len(r.sorted) == 0 {
		return ErrEmptyRing
	}
	if r.stale {
		r.Stabilize()
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	for _, n := range r.replicaSet(HashKey(key)) {
		n.store[key] = cp
	}
	return nil
}

// Get retrieves a key from its replica set, charging finger-table routing
// hops from a deterministic start node. It returns ErrNotFound if no replica
// holds the key.
func (r *Ring) Get(key string) ([]byte, error) {
	if len(r.sorted) == 0 {
		return nil, ErrEmptyRing
	}
	if r.stale {
		r.Stabilize()
	}
	keyID := HashKey(key)
	start := r.sorted[int(keyID%uint64(len(r.sorted)))]
	owner, hops := r.route(start, keyID)
	r.Lookups++
	r.Hops += int64(hops)
	// The routed owner plus its successors form the replica set.
	for _, n := range r.replicaSet(keyID) {
		if v, ok := n.store[key]; ok {
			out := make([]byte, len(v))
			copy(out, v)
			return out, nil
		}
	}
	_ = owner
	return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
}

// Delete removes a key from all replicas (used for retention-time expiry in
// the privacy service).
func (r *Ring) Delete(key string) {
	for _, n := range r.sorted {
		delete(n.store, key)
	}
}

// LookupHops routes to the owner of key from a deterministic start and
// returns the hop count (for routing-cost benchmarks).
func (r *Ring) LookupHops(key string) (int, error) {
	if len(r.sorted) == 0 {
		return 0, ErrEmptyRing
	}
	if r.stale {
		r.Stabilize()
	}
	keyID := HashKey(key)
	start := r.sorted[int(keyID%uint64(len(r.sorted)))]
	_, hops := r.route(start, keyID)
	return hops, nil
}

// route walks finger tables from cur toward the successor of keyID,
// returning the owner and the hop count — the classic Chord iterative
// lookup.
func (r *Ring) route(cur *node, keyID uint64) (*node, int) {
	owner := r.sorted[r.successorIdx(keyID)]
	hops := 0
	for cur != owner {
		next := r.closestPreceding(cur, keyID)
		if next == cur {
			// No finger makes progress: step to immediate successor.
			next = r.sorted[(r.idxOf(cur)+1)%len(r.sorted)]
		}
		cur = next
		hops++
		if hops > len(r.sorted)+fingerBits {
			// Defensive: routing must terminate; fall through to owner.
			return owner, hops
		}
	}
	return owner, hops
}

func (r *Ring) idxOf(n *node) int {
	idx := sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i].id >= n.id })
	return idx % len(r.sorted)
}

// closestPreceding returns cur's finger that most closely precedes keyID
// without overshooting it (ring-interval arithmetic).
func (r *Ring) closestPreceding(cur *node, keyID uint64) *node {
	if len(cur.fingers) == 0 {
		return cur
	}
	for i := fingerBits - 1; i >= 0; i-- {
		f := r.nodes[cur.fingers[i]]
		if f == nil || f == cur {
			continue
		}
		if inOpenInterval(f.id, cur.id, keyID) {
			return f
		}
	}
	return cur
}

// inOpenInterval reports whether x lies in the ring interval (a, b) moving
// clockwise.
func inOpenInterval(x, a, b uint64) bool {
	if a < b {
		return x > a && x < b
	}
	if a > b {
		return x > a || x < b
	}
	return x != a
}

// Keys returns the number of distinct keys stored across the ring.
func (r *Ring) Keys() int {
	seen := make(map[string]bool)
	for _, n := range r.sorted {
		for k := range n.store {
			seen[k] = true
		}
	}
	return len(seen)
}

// LoadByNode returns how many key replicas each live node stores, keyed by
// address (for load-balance tests).
func (r *Ring) LoadByNode() map[int]int {
	out := make(map[int]int, len(r.sorted))
	for _, n := range r.sorted {
		out[n.addr] = len(n.store)
	}
	return out
}
