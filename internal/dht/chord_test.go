package dht

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func buildRing(t *testing.T, n, replicas int) *Ring {
	t.Helper()
	r := NewRing(replicas)
	for i := 0; i < n; i++ {
		if err := r.Join(i); err != nil {
			t.Fatal(err)
		}
	}
	r.Stabilize()
	return r
}

func TestPutGetRoundTrip(t *testing.T) {
	r := buildRing(t, 32, 3)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := r.Put(key, []byte(key+"-value")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		v, err := r.Get(key)
		if err != nil {
			t.Fatalf("Get(%s): %v", key, err)
		}
		if string(v) != key+"-value" {
			t.Fatalf("Get(%s) = %q", key, v)
		}
	}
}

func TestGetMissingKey(t *testing.T) {
	r := buildRing(t, 8, 2)
	_, err := r.Get("nope")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestEmptyRingErrors(t *testing.T) {
	r := NewRing(2)
	if err := r.Put("k", nil); !errors.Is(err, ErrEmptyRing) {
		t.Fatalf("Put on empty: %v", err)
	}
	if _, err := r.Get("k"); !errors.Is(err, ErrEmptyRing) {
		t.Fatalf("Get on empty: %v", err)
	}
	if _, err := r.LookupHops("k"); !errors.Is(err, ErrEmptyRing) {
		t.Fatalf("LookupHops on empty: %v", err)
	}
}

func TestDoubleJoinRejected(t *testing.T) {
	r := NewRing(1)
	if err := r.Join(5); err != nil {
		t.Fatal(err)
	}
	if err := r.Join(5); err == nil {
		t.Fatal("duplicate join accepted")
	}
}

func TestReplicationFactor(t *testing.T) {
	r := buildRing(t, 20, 3)
	if err := r.Put("k1", []byte("v")); err != nil {
		t.Fatal(err)
	}
	addrs := r.ReplicaAddrs("k1")
	if len(addrs) != 3 {
		t.Fatalf("replica count = %d", len(addrs))
	}
	seen := map[int]bool{}
	for _, a := range addrs {
		if seen[a] {
			t.Fatalf("duplicate replica %d", a)
		}
		seen[a] = true
	}
}

func TestReplicaClampedToRingSize(t *testing.T) {
	r := buildRing(t, 2, 5)
	if err := r.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := len(r.ReplicaAddrs("k")); got != 2 {
		t.Fatalf("replicas = %d, want clamped 2", got)
	}
}

func TestSurvivesNodeFailure(t *testing.T) {
	r := buildRing(t, 30, 3)
	const nkeys = 200
	for i := 0; i < nkeys; i++ {
		if err := r.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Kill one replica of every key — take down 1/3 of the ring.
	for i := 0; i < 10; i++ {
		r.Leave(i * 3)
	}
	r.Stabilize()
	for i := 0; i < nkeys; i++ {
		if _, err := r.Get(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("key k%d lost after 33%% failures with 3 replicas: %v", i, err)
		}
	}
	if r.Size() != 20 {
		t.Fatalf("size = %d", r.Size())
	}
}

func TestStabilizeReReplicates(t *testing.T) {
	r := buildRing(t, 10, 2)
	if err := r.Put("key", []byte("v")); err != nil {
		t.Fatal(err)
	}
	before := r.ReplicaAddrs("key")
	// Kill one of its replicas.
	r.Leave(before[0])
	r.Stabilize()
	after := r.ReplicaAddrs("key")
	if len(after) != 2 {
		t.Fatalf("replicas after repair = %d", len(after))
	}
	// The new replica set must again hold the value on every member.
	load := r.LoadByNode()
	for _, a := range after {
		if load[a] == 0 {
			t.Fatalf("replica %d does not hold the key after stabilize", a)
		}
	}
}

func TestJoinTakesOverKeys(t *testing.T) {
	r := buildRing(t, 5, 1)
	for i := 0; i < 100; i++ {
		if err := r.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// New nodes join; after stabilize every key must still be readable and
	// single-replica keys must live exactly on their current owner.
	for i := 5; i < 25; i++ {
		if err := r.Join(i); err != nil {
			t.Fatal(err)
		}
	}
	r.Stabilize()
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := r.Get(key); err != nil {
			t.Fatalf("lost %s after joins: %v", key, err)
		}
	}
	total := 0
	for _, c := range r.LoadByNode() {
		total += c
	}
	if total != 100 {
		t.Fatalf("replica copies = %d, want exactly 100 with k=1", total)
	}
}

func TestDelete(t *testing.T) {
	r := buildRing(t, 10, 3)
	if err := r.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	r.Delete("k")
	if _, err := r.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key still readable: %v", err)
	}
	if r.Keys() != 0 {
		t.Fatalf("Keys = %d after delete", r.Keys())
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	r := buildRing(t, 256, 1)
	var total, count float64
	for i := 0; i < 500; i++ {
		h, err := r.LookupHops(fmt.Sprintf("key-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		total += float64(h)
		count++
	}
	mean := total / count
	// Chord expects ~0.5*log2(n) = 4 hops for n=256; allow generous slack
	// but fail if it degenerates to linear routing.
	if mean > 3*math.Log2(256) {
		t.Fatalf("mean hops = %v, not logarithmic for n=256", mean)
	}
	if mean == 0 {
		t.Fatal("all lookups zero hops — routing not exercised")
	}
}

func TestHopsCountersAccumulate(t *testing.T) {
	r := buildRing(t, 64, 2)
	if err := r.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := r.Get("a"); err != nil {
			t.Fatal(err)
		}
	}
	if r.Lookups != 10 {
		t.Fatalf("Lookups = %d", r.Lookups)
	}
}

func TestLoadBalance(t *testing.T) {
	r := buildRing(t, 50, 1)
	const nkeys = 5000
	for i := 0; i < nkeys; i++ {
		if err := r.Put(fmt.Sprintf("key-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	load := r.LoadByNode()
	maxLoad := 0
	for _, c := range load {
		if c > maxLoad {
			maxLoad = c
		}
	}
	// Consistent hashing without virtual nodes: max load should still be
	// within ~8x of the mean for 50 nodes / 5000 keys.
	mean := float64(nkeys) / 50
	if float64(maxLoad) > 8*mean {
		t.Fatalf("max load %d vs mean %.0f — hashing badly unbalanced", maxLoad, mean)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	r := buildRing(t, 4, 1)
	if err := r.Put("k", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	v, err := r.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	v[0] = 'X'
	v2, err := r.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(v2) != "abc" {
		t.Fatal("Get exposed internal storage")
	}
}

func TestPutCopiesValue(t *testing.T) {
	r := buildRing(t, 4, 1)
	buf := []byte("abc")
	if err := r.Put("k", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	v, err := r.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "abc" {
		t.Fatal("Put aliased caller's buffer")
	}
}

func TestHashDeterminism(t *testing.T) {
	if HashKey("a") != HashKey("a") {
		t.Fatal("HashKey not deterministic")
	}
	if HashKey("a") == HashKey("b") {
		t.Fatal("trivial hash collision")
	}
	if HashNode(1) == HashKey("1") {
		t.Fatal("node and key hash domains not separated")
	}
}

func TestPropertyAllKeysFindableUnderChurn(t *testing.T) {
	f := func(seed uint16) bool {
		r := NewRing(3)
		for i := 0; i < 20; i++ {
			if r.Join(i) != nil {
				return false
			}
		}
		r.Stabilize()
		for i := 0; i < 30; i++ {
			if r.Put(fmt.Sprintf("s%d-k%d", seed, i), []byte{byte(i)}) != nil {
				return false
			}
		}
		// Deterministic churn from the seed: remove 2 nodes, add 2.
		r.Leave(int(seed) % 20)
		r.Leave(int(seed/7) % 20)
		_ = r.Join(100 + int(seed)%50)
		_ = r.Join(200 + int(seed)%50)
		r.Stabilize()
		for i := 0; i < 30; i++ {
			if _, err := r.Get(fmt.Sprintf("s%d-k%d", seed, i)); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInOpenInterval(t *testing.T) {
	cases := []struct {
		x, a, b uint64
		want    bool
	}{
		{5, 1, 10, true},
		{1, 1, 10, false},
		{10, 1, 10, false},
		{15, 10, 1, true}, // wrapping
		{0, 10, 1, true},  // wrapping
		{5, 10, 1, false},
		{3, 5, 5, true}, // full circle except a
		{5, 5, 5, false},
	}
	for _, c := range cases {
		if got := inOpenInterval(c.x, c.a, c.b); got != c.want {
			t.Fatalf("inOpenInterval(%d,%d,%d) = %v", c.x, c.a, c.b, got)
		}
	}
}
