package cluster

import (
	"sync"
	"time"
)

// The loopback transport runs the full wire protocol in-process: frames are
// gob-encoded exactly as over TCP and passed through buffered channels, so a
// loopback run exercises everything but the socket — including gob's
// nil/empty-slice flattening, which is where transport bugs would perturb
// determinism.

// loopChanCap bounds how many frames one direction can buffer before Send
// blocks (the protocol is request/response plus small report broadcasts, so
// this is never approached in practice).
const loopChanCap = 256

// loopConn is one end of an in-process connection pair.
type loopConn struct {
	send chan []byte
	recv chan []byte
	// done is shared by both ends: closing either end tears the pair down,
	// like a socket close.
	done     chan struct{}
	closeOne *sync.Once

	mu       sync.Mutex
	deadline time.Time
}

// LoopbackPipe returns the two ends of a connected in-process transport.
func LoopbackPipe() (Conn, Conn) {
	ab := make(chan []byte, loopChanCap)
	ba := make(chan []byte, loopChanCap)
	done := make(chan struct{})
	once := &sync.Once{}
	a := &loopConn{send: ab, recv: ba, done: done, closeOne: once}
	b := &loopConn{send: ba, recv: ab, done: done, closeOne: once}
	return a, b
}

func (c *loopConn) timer() (<-chan time.Time, *time.Timer) {
	c.mu.Lock()
	d := c.deadline
	c.mu.Unlock()
	if d.IsZero() {
		return nil, nil
	}
	t := time.NewTimer(time.Until(d))
	return t.C, t
}

func (c *loopConn) Send(env *envelope) error {
	frame, err := encodeFrame(env)
	if err != nil {
		return err
	}
	expire, t := c.timer()
	if t != nil {
		defer t.Stop()
	}
	select {
	case c.send <- frame:
		return nil
	case <-c.done:
		return errClosed
	case <-expire:
		return errTimeout
	}
}

func (c *loopConn) Recv() (*envelope, error) {
	// Like a TCP socket, a close must not discard frames already in flight:
	// drain buffered frames before honoring done, so a shutdown broadcast
	// followed by an immediate close still reaches the peer.
	select {
	case frame := <-c.recv:
		return decodeFrame(frame)
	default:
	}
	expire, t := c.timer()
	if t != nil {
		defer t.Stop()
	}
	select {
	case frame := <-c.recv:
		return decodeFrame(frame)
	case <-c.done:
		// Frames sent before the close were already buffered; deliver them.
		select {
		case frame := <-c.recv:
			return decodeFrame(frame)
		default:
			return nil, errClosed
		}
	case <-expire:
		return nil, errTimeout
	}
}

func (c *loopConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline = t
	c.mu.Unlock()
	return nil
}

func (c *loopConn) Close() error {
	c.closeOne.Do(func() { close(c.done) })
	return nil
}

// LoopbackListener hands out in-process connections: each Dial creates a
// pipe and queues the master-side end for Accept.
type LoopbackListener struct {
	conns chan Conn
	done  chan struct{}
	once  sync.Once
}

// NewLoopbackListener builds an open in-process listener.
func NewLoopbackListener() *LoopbackListener {
	return &LoopbackListener{conns: make(chan Conn, 16), done: make(chan struct{})}
}

// Dial connects a new in-process worker to the listener and returns the
// worker-side end.
func (l *LoopbackListener) Dial() (Conn, error) {
	master, worker := LoopbackPipe()
	select {
	case l.conns <- master:
		return worker, nil
	case <-l.done:
		return nil, errClosed
	}
}

// Accept implements Listener.
func (l *LoopbackListener) Accept() (Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, errClosed
	}
}

// Close implements Listener.
func (l *LoopbackListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// Addr implements Listener.
func (l *LoopbackListener) Addr() string { return "loopback" }
