package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"
)

// The TCP transport: each frame is a 4-byte big-endian length prefix
// followed by one self-contained gob-encoded envelope. TCP's in-order
// reliable delivery supplies the ordering the protocol relies on; the
// length prefix supplies framing.

// maxFrame caps a frame at 1 GiB — far above any real snapshot, but small
// enough that a corrupt length prefix fails fast instead of allocating
// absurdly.
const maxFrame = 1 << 30

type tcpConn struct {
	c net.Conn
}

func (t *tcpConn) Send(env *envelope) error {
	frame, err := encodeFrame(env)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := t.c.Write(hdr[:]); err != nil {
		return err
	}
	_, err = t.c.Write(frame)
	return err
}

func (t *tcpConn) Recv() (*envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(t.c, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("cluster: frame of %d bytes exceeds limit", n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(t.c, frame); err != nil {
		return nil, err
	}
	return decodeFrame(frame)
}

func (t *tcpConn) SetDeadline(d time.Time) error { return t.c.SetDeadline(d) }

func (t *tcpConn) Close() error { return t.c.Close() }

type tcpListener struct {
	ln net.Listener
}

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		// Phase messages are latency-sensitive request/response pairs;
		// don't let Nagle batch them.
		tc.SetNoDelay(true)
	}
	return &tcpConn{c: c}, nil
}

func (l *tcpListener) Close() error { return l.ln.Close() }

func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

// ListenTCP opens the master's TCP listener (addr as in net.Listen, e.g.
// "127.0.0.1:9700" or ":9700").
func ListenTCP(addr string) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	return &tcpListener{ln: ln}, nil
}

// DialTCP connects a worker to a master's TCP listener.
func DialTCP(addr string, timeout time.Duration) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &tcpConn{c: c}, nil
}
