package cluster

import (
	"errors"
	"time"
)

// Conn is one ordered, reliable message channel between the master and a
// worker. Send and Recv are each safe for one concurrent caller (the
// protocol is strictly request/response per connection, serialized by the
// master's per-worker lock and the worker's single loop). SetDeadline bounds
// both directions; a zero time clears it. Close unblocks any pending
// operation on either end.
type Conn interface {
	Send(env *envelope) error
	Recv() (*envelope, error)
	SetDeadline(t time.Time) error
	Close() error
}

// Listener accepts worker connections on the master side.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr describes the listening endpoint (for logs and tests).
	Addr() string
}

// errTimeout is returned by the loopback transport when a deadline expires;
// the TCP transport surfaces net's own timeout errors instead. Both are
// treated identically (worker marked dead).
var errTimeout = errors.New("cluster: deadline exceeded")

// errClosed is returned by loopback operations after either end closed.
var errClosed = errors.New("cluster: connection closed")
