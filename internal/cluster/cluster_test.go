package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/trustnet"
)

// runLocal runs the scenario's session single-process and returns its epoch
// history — the reference every cluster topology must match bit-for-bit.
func runLocal(t *testing.T, sc trustnet.Scenario) []trustnet.EpochStats {
	t.Helper()
	eng, err := sc.NewEngine()
	if err != nil {
		t.Fatalf("local engine: %v", err)
	}
	runSession(t, eng, sc)
	return eng.History()
}

func runSession(t *testing.T, eng *trustnet.Engine, sc trustnet.Scenario) {
	t.Helper()
	s, err := eng.Session(context.Background(), trustnet.WithMaxEpochs(sc.Epochs), trustnet.WithSchedule(sc.Schedule))
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	for _, err := range s.Epochs() {
		if err != nil {
			t.Fatalf("epoch: %v", err)
		}
	}
}

// startWorkers dials n loopback workers against ln and runs each in a
// goroutine. The returned wait func joins them (checking clean exits); the
// conns let tests kill individual workers.
func startWorkers(t *testing.T, ln *LoopbackListener, n int) (conns []Conn, wait func()) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		conn, err := ln.Dial()
		if err != nil {
			t.Fatalf("dial worker %d: %v", i, err)
		}
		conns = append(conns, conn)
		wg.Add(1)
		go func(i int, conn Conn) {
			defer wg.Done()
			errs[i] = RunWorker(conn, fmt.Sprintf("w%d", i))
		}(i, conn)
	}
	return conns, func() {
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Logf("worker %d exit: %v", i, err)
			}
		}
	}
}

// runCluster runs the scenario under a loopback master with n workers and
// returns the history plus the master (already shut down).
func runCluster(t *testing.T, sc trustnet.Scenario, n int) ([]trustnet.EpochStats, *Master) {
	t.Helper()
	ln := NewLoopbackListener()
	m, err := NewMaster(sc, MasterConfig{Listener: ln, HeartbeatEvery: -1, PhaseTimeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	defer m.Shutdown()
	_, wait := startWorkers(t, ln, n)
	if err := m.WaitForWorkers(n, 5*time.Second); err != nil {
		t.Fatalf("wait workers: %v", err)
	}
	runSession(t, m.Engine(), sc)
	hist := m.Engine().History()
	m.Shutdown()
	wait()
	return hist, m
}

func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("gob: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenTopologies is the subsystem's core invariant: equal seeds give
// bit-identical epoch histories for local execution and 1-, 2- and 4-worker
// loopback clusters, on a schedule-bearing scenario (leave, whitewash and
// join waves force mid-run replica resyncs).
func TestGoldenTopologies(t *testing.T) {
	sc := trustnet.MustScenario("churnstorm")
	sc.Epochs = 10
	want := gobBytes(t, runLocal(t, sc))
	for _, workers := range []int{1, 2, 4} {
		hist, m := runCluster(t, sc, workers)
		if got := gobBytes(t, hist); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: cluster history diverged from local run", workers)
		}
		scatters, spmvs := m.RemotePhases()
		if scatters == 0 {
			t.Errorf("workers=%d: no scatter chunks ran remotely", workers)
		}
		if spmvs == 0 {
			t.Errorf("workers=%d: no SpMV ranges ran remotely", workers)
		}
	}
}

// TestGoldenPowerTrust covers the second delegating mechanism end to end.
func TestGoldenPowerTrust(t *testing.T) {
	sc := trustnet.MustScenario("baseline")
	sc.Mechanism = trustnet.MechanismSpec{Kind: "powertrust"}
	sc.Epochs = 6
	want := gobBytes(t, runLocal(t, sc))
	hist, m := runCluster(t, sc, 2)
	if got := gobBytes(t, hist); !bytes.Equal(got, want) {
		t.Errorf("powertrust cluster history diverged from local run")
	}
	if scatters, spmvs := m.RemotePhases(); scatters == 0 || spmvs == 0 {
		t.Errorf("powertrust: remote phases = (%d, %d), want both > 0", scatters, spmvs)
	}
}

// TestWorkerDeathMidRun kills one of two workers partway through the run;
// the master must fall back to computing the dead worker's chunks locally
// and the result must stay bit-identical.
func TestWorkerDeathMidRun(t *testing.T) {
	sc := trustnet.MustScenario("baseline")
	sc.Epochs = 8
	want := gobBytes(t, runLocal(t, sc))

	ln := NewLoopbackListener()
	m, err := NewMaster(sc, MasterConfig{Listener: ln, HeartbeatEvery: -1, PhaseTimeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	defer m.Shutdown()
	conns, wait := startWorkers(t, ln, 2)
	if err := m.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatalf("wait workers: %v", err)
	}
	s, err := m.Engine().Session(context.Background(), trustnet.WithMaxEpochs(sc.Epochs), trustnet.WithSchedule(sc.Schedule))
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	epoch := 0
	for _, err := range s.Epochs() {
		if err != nil {
			t.Fatalf("epoch: %v", err)
		}
		epoch++
		if epoch == 3 {
			// Kill a worker between epochs; its next assigned chunk fails
			// mid-phase and is recomputed locally.
			conns[0].Close()
		}
	}
	hist := m.Engine().History()
	m.Shutdown()
	wait()
	if got := gobBytes(t, hist); !bytes.Equal(got, want) {
		t.Errorf("history diverged after mid-run worker death")
	}
	if m.LiveWorkers() != 0 {
		t.Errorf("LiveWorkers after shutdown = %d, want 0", m.LiveWorkers())
	}
}

// TestRejoinAfterDeath replaces a dead worker mid-run with a fresh one; the
// newcomer is adopted at the next phase with a full snapshot sync and the
// run stays bit-identical.
func TestRejoinAfterDeath(t *testing.T) {
	sc := trustnet.MustScenario("baseline")
	sc.Epochs = 8
	want := gobBytes(t, runLocal(t, sc))

	ln := NewLoopbackListener()
	m, err := NewMaster(sc, MasterConfig{Listener: ln, HeartbeatEvery: -1, PhaseTimeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	defer m.Shutdown()
	conns, wait := startWorkers(t, ln, 2)
	if err := m.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatalf("wait workers: %v", err)
	}
	var lateWait func()
	s, err := m.Engine().Session(context.Background(), trustnet.WithMaxEpochs(sc.Epochs), trustnet.WithSchedule(sc.Schedule))
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	epoch := 0
	for _, err := range s.Epochs() {
		if err != nil {
			t.Fatalf("epoch: %v", err)
		}
		epoch++
		if epoch == 2 {
			conns[0].Close()
		}
		if epoch == 4 {
			_, lateWait = startWorkers(t, ln, 1) // name "w0" is free again: its owner is dead
			if err := m.WaitForWorkers(2, 5*time.Second); err != nil {
				t.Fatalf("rejoin: %v", err)
			}
		}
	}
	hist := m.Engine().History()
	m.Shutdown()
	wait()
	if lateWait != nil {
		lateWait()
	}
	if got := gobBytes(t, hist); !bytes.Equal(got, want) {
		t.Errorf("history diverged across death + rejoin")
	}
}

// TestDuplicateRegistrationRejected: a second worker under a live name is
// turned away with an error message, and the run is unaffected.
func TestDuplicateRegistrationRejected(t *testing.T) {
	sc := trustnet.MustScenario("baseline")
	sc.Epochs = 1
	ln := NewLoopbackListener()
	m, err := NewMaster(sc, MasterConfig{Listener: ln, HeartbeatEvery: -1, PhaseTimeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	defer m.Shutdown()
	conn1, err := ln.Dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	done1 := make(chan error, 1)
	go func() { done1 <- RunWorker(conn1, "dup") }()
	if err := m.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatalf("wait: %v", err)
	}
	conn2, err := ln.Dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	err = RunWorker(conn2, "dup")
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate registration error = %v, want 'already registered'", err)
	}
	if n := m.LiveWorkers(); n != 1 {
		t.Errorf("LiveWorkers = %d, want 1", n)
	}
	m.Shutdown()
	if err := <-done1; err != nil {
		t.Errorf("first worker exit: %v", err)
	}
}

// TestTCPEquivalence runs the same scenario over real TCP sockets and over
// loopback; both must match the local run bit-for-bit (the transports carry
// identical frames, so this pins the framing layer too).
func TestTCPEquivalence(t *testing.T) {
	sc := trustnet.MustScenario("baseline")
	sc.Epochs = 5
	want := gobBytes(t, runLocal(t, sc))

	lhist, _ := runCluster(t, sc, 2)
	if got := gobBytes(t, lhist); !bytes.Equal(got, want) {
		t.Fatalf("loopback history diverged from local run")
	}

	ln, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	m, err := NewMaster(sc, MasterConfig{Listener: ln, HeartbeatEvery: -1, PhaseTimeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	defer m.Shutdown()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		conn, err := DialTCP(ln.Addr(), 5*time.Second)
		if err != nil {
			t.Fatalf("dial tcp: %v", err)
		}
		wg.Add(1)
		go func(i int, conn Conn) {
			defer wg.Done()
			errs[i] = RunWorker(conn, fmt.Sprintf("tcp%d", i))
		}(i, conn)
	}
	if err := m.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatalf("wait workers: %v", err)
	}
	runSession(t, m.Engine(), sc)
	hist := m.Engine().History()
	m.Shutdown()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("tcp worker %d exit: %v", i, err)
		}
	}
	if got := gobBytes(t, hist); !bytes.Equal(got, want) {
		t.Errorf("TCP history diverged from local run")
	}
}

// TestNoWorkersDegradesLocally: a master with no registered workers runs
// the scenario entirely locally through the delegates' decline path.
func TestNoWorkersDegradesLocally(t *testing.T) {
	sc := trustnet.MustScenario("baseline")
	sc.Epochs = 3
	want := gobBytes(t, runLocal(t, sc))
	ln := NewLoopbackListener()
	m, err := NewMaster(sc, MasterConfig{Listener: ln, HeartbeatEvery: -1})
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	defer m.Shutdown()
	runSession(t, m.Engine(), sc)
	if got := gobBytes(t, m.Engine().History()); !bytes.Equal(got, want) {
		t.Errorf("workerless master diverged from plain local run")
	}
	if scatters, spmvs := m.RemotePhases(); scatters != 0 || spmvs != 0 {
		t.Errorf("workerless master reported remote phases (%d, %d)", scatters, spmvs)
	}
}

// TestQuiescentRunAvoidsResyncs pins the replica-coherence win from the
// bytewise-identical honesty-override skip: an uncoupled steady scenario
// installs the same honesty vector every epoch, which must NOT bump the
// mutation generation, so workers need only the bootstrap sync plus the one
// real override change — far fewer than one resync per epoch.
func TestQuiescentRunAvoidsResyncs(t *testing.T) {
	sc := trustnet.MustScenario("baseline")
	sc.Coupled = false
	sc.Epochs = 10
	want := gobBytes(t, runLocal(t, sc))
	const workers = 2
	hist, m := runCluster(t, sc, workers)
	if got := gobBytes(t, hist); !bytes.Equal(got, want) {
		t.Fatalf("uncoupled cluster history diverged from local run")
	}
	if scatters, _ := m.RemotePhases(); scatters == 0 {
		t.Fatalf("no scatter chunks ran remotely")
	}
	resyncs := m.Resyncs()
	// One bootstrap sync per worker, plus one after epoch 1's first (and
	// only) real honesty-override install. Anything close to epochs×workers
	// means no-op installs are bumping the generation again.
	if max := uint64(3 * workers); resyncs > max {
		t.Errorf("resyncs = %d, want <= %d (quiescent run must not resync per epoch)", resyncs, max)
	}
	if perEpoch := uint64(sc.Epochs * workers); resyncs >= perEpoch {
		t.Errorf("resyncs = %d, not below per-epoch rate %d", resyncs, perEpoch)
	}
}

// TestClusterMatchesDenseReference closes the golden settled-vs-dense suite
// over the cluster topology: a sparse-tail loopback cluster must reproduce,
// bit-for-bit, the history of a local run forced into the dense reference
// mode (every user recomputed every epoch).
func TestClusterMatchesDenseReference(t *testing.T) {
	sc := trustnet.MustScenario("churnstorm")
	sc.Epochs = 8
	eng, err := sc.NewEngine()
	if err != nil {
		t.Fatalf("local engine: %v", err)
	}
	eng.SetDenseReference(true)
	runSession(t, eng, sc)
	want := gobBytes(t, eng.History())
	hist, _ := runCluster(t, sc, 2)
	if got := gobBytes(t, hist); !bytes.Equal(got, want) {
		t.Errorf("sparse cluster history diverged from dense local reference")
	}
}
