package cluster

import (
	"bytes"
	"fmt"

	"repro/internal/reputation"
	"repro/trustnet"
)

// RunWorker registers with the master over conn under the given name, builds
// an engine replica from the streamed scenario spec, and serves phase
// requests until the master sends shutdown (nil return) or the connection
// fails (error return). The replica's own clocks never advance — it only
// ever executes the pure phases the master asks for, against state the
// master syncs — which is exactly why its results are bit-identical to the
// master computing them itself.
func RunWorker(conn Conn, name string) error {
	defer conn.Close()
	if err := conn.Send(&envelope{Kind: kindHello, Hello: &helloMsg{Name: name}}); err != nil {
		return fmt.Errorf("cluster: register: %w", err)
	}
	env, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("cluster: register: %w", err)
	}
	switch env.Kind {
	case kindWelcome:
	case kindError:
		msg := "handshake rejected"
		if env.Err != nil {
			msg = env.Err.Msg
		}
		return fmt.Errorf("cluster: master rejected worker %q: %s", name, msg)
	default:
		return fmt.Errorf("cluster: unexpected handshake reply kind %d", env.Kind)
	}
	if env.Welcome == nil {
		return fmt.Errorf("cluster: empty welcome")
	}
	sc, err := trustnet.ScenarioFromJSON(env.Welcome.Scenario)
	if err != nil {
		return err
	}
	eng, err := sc.NewEngine()
	if err != nil {
		return fmt.Errorf("cluster: build replica: %w", err)
	}
	we := eng.WorkloadEngine()
	mech := we.Mechanism()

	for {
		env, err := conn.Recv()
		if err != nil {
			return fmt.Errorf("cluster: worker %q: %w", name, err)
		}
		switch env.Kind {
		case kindShutdown:
			return nil
		case kindPing:
			if err := conn.Send(&envelope{Kind: kindPong}); err != nil {
				return fmt.Errorf("cluster: worker %q: %w", name, err)
			}
		case kindSync:
			if env.Sync == nil {
				return fmt.Errorf("cluster: worker %q: empty sync", name)
			}
			snap, err := trustnet.DecodeSnapshot(bytes.NewReader(env.Sync.Snapshot))
			if err != nil {
				return fmt.Errorf("cluster: worker %q: %w", name, err)
			}
			if err := eng.Restore(snap); err != nil {
				return fmt.Errorf("cluster: worker %q: %w", name, err)
			}
		case kindScatter:
			if env.Scatter == nil {
				return fmt.Errorf("cluster: worker %q: empty scatter", name)
			}
			sm := env.Scatter
			pool := sm.Pool
			if sm.HasPool && pool == nil {
				// Gob flattened an empty (but present) active pool; an empty
				// pool and a nil one mean different sampling draws.
				pool = []int{}
			}
			out := we.SimulateChunk(sm.Plans, sm.Scores, sm.Gate, pool, sm.Round)
			if err := conn.Send(&envelope{Kind: kindScatterResult, ScatterRes: &scatterResultMsg{Outcomes: out}}); err != nil {
				return fmt.Errorf("cluster: worker %q: %w", name, err)
			}
		case kindReports:
			if env.Reports == nil {
				return fmt.Errorf("cluster: worker %q: empty reports", name)
			}
			// Mirror master-accepted feedback into the replica's mechanism.
			// Gatherer/ledger accounting is master-only state and skipped —
			// simulate never reads it, and syncs overwrite it wholesale.
			if bs, ok := mech.(reputation.BatchSubmitter); ok {
				if err := bs.SubmitBatch(env.Reports.Reports); err != nil {
					return fmt.Errorf("cluster: worker %q: mirror reports: %w", name, err)
				}
			} else {
				for _, r := range env.Reports.Reports {
					if err := mech.Submit(r); err != nil {
						return fmt.Errorf("cluster: worker %q: mirror report: %w", name, err)
					}
				}
			}
		case kindSpMV:
			if env.SpMV == nil {
				return fmt.Errorf("cluster: worker %q: empty spmv", name)
			}
			bs, ok := mech.(reputation.BlockScatterer)
			if !ok {
				return fmt.Errorf("cluster: worker %q: mechanism %q cannot scatter SpMV blocks", name, mech.Name())
			}
			p, ms := bs.SpMVScatterBlocks(env.SpMV.X, env.SpMV.Lob, env.SpMV.Hib)
			if err := conn.Send(&envelope{Kind: kindSpMVResult, SpMVRes: &spmvResultMsg{Partials: p, Masses: ms}}); err != nil {
				return fmt.Errorf("cluster: worker %q: %w", name, err)
			}
		default:
			return fmt.Errorf("cluster: worker %q: unexpected message kind %d", name, env.Kind)
		}
	}
}
