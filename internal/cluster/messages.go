package cluster

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/reputation"
	"repro/internal/workload"
)

// The wire schema. One envelope type with a kind tag and one pointer field
// per payload keeps gob simple (no interface registration) and every frame
// self-describing. Fields must stay exported for gob; the types themselves
// are package-private because both ends of every conversation live in this
// package.
//
// Conversation shapes (all per-connection, strictly ordered):
//
//	worker → master   hello
//	master → worker   welcome (scenario spec) | error (handshake rejection)
//	master → worker   sync (full snapshot; only when the replica is stale)
//	master → worker   scatter → scatterResult
//	master → worker   reports (mechanism feedback mirror; no reply)
//	master → worker   spmv → spmvResult
//	master → worker   ping → pong
//	master → worker   shutdown (no reply; worker exits cleanly)
type msgKind uint8

const (
	kindHello msgKind = iota + 1
	kindWelcome
	kindError
	kindSync
	kindScatter
	kindScatterResult
	kindReports
	kindSpMV
	kindSpMVResult
	kindPing
	kindPong
	kindShutdown
)

// envelope is the single frame type every transport carries.
type envelope struct {
	Kind       msgKind
	Hello      *helloMsg
	Welcome    *welcomeMsg
	Err        *errorMsg
	Sync       *syncMsg
	Scatter    *scatterMsg
	ScatterRes *scatterResultMsg
	Reports    *reportsMsg
	SpMV       *spmvMsg
	SpMVRes    *spmvResultMsg
}

// helloMsg registers a worker under a unique name.
type helloMsg struct {
	Name string
}

// welcomeMsg accepts a worker and carries the JSON scenario spec it must
// build its engine replica from (deterministically — the spec embeds the
// seed).
type welcomeMsg struct {
	Scenario []byte
}

// errorMsg rejects a handshake (e.g. duplicate worker name).
type errorMsg struct {
	Msg string
}

// syncMsg resynchronizes a stale replica: a full engine snapshot in the
// trustnet wire format, tagged with the master's mutation generation.
type syncMsg struct {
	Gen      uint64
	Snapshot []byte
}

// scatterMsg asks the worker to simulate a contiguous chunk of a round's
// plans against its replica. HasPool distinguishes "everyone present" (nil
// pool) from an empty active pool: gob flattens empty slices to nil, and the
// two mean different candidate-sampling draws.
type scatterMsg struct {
	Plans   []workload.PlannedInteraction
	Scores  []float64
	Gate    float64
	Pool    []int
	HasPool bool
	Round   int
}

// scatterResultMsg returns one outcome per plan, in plan order.
type scatterResultMsg struct {
	Outcomes []workload.InteractionOutcome
}

// reportsMsg mirrors a mechanism-accepted report batch onto the replica so
// its feedback matrix tracks the master's without a full resync.
type reportsMsg struct {
	Reports []reputation.Report
}

// spmvMsg asks the worker to scatter blocks [Lob, Hib) of the mechanism's
// current matrix against x (see reputation.BlockScatterer).
type spmvMsg struct {
	X        []float64
	Lob, Hib int
}

// spmvResultMsg returns the per-block partial vectors and dangling masses.
type spmvResultMsg struct {
	Partials [][]float64
	Masses   []float64
}

// encodeFrame gob-encodes one envelope with a fresh encoder, so every frame
// is self-contained (decodable regardless of which frames preceded it — the
// property that lets a transport drop or replay framing without gob stream
// state leaking across messages).
func encodeFrame(env *envelope) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return nil, fmt.Errorf("cluster: encode frame: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeFrame decodes one self-contained frame.
func decodeFrame(b []byte) (*envelope, error) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&env); err != nil {
		return nil, fmt.Errorf("cluster: decode frame: %w", err)
	}
	return &env, nil
}
