package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/linalg"
	"repro/internal/reputation"
	"repro/internal/workload"
	"repro/trustnet"
)

// MasterConfig configures a cluster master.
type MasterConfig struct {
	// Listener accepts worker connections; nil runs a master with no
	// transport (pure local execution — useful as a degraded mode and in
	// tests that inject connections directly).
	Listener Listener
	// PhaseTimeout bounds every remote exchange (sync+scatter, spmv, ping,
	// handshake). Default 60s.
	PhaseTimeout time.Duration
	// HeartbeatEvery is the idle liveness-ping period. Default 5s; negative
	// disables heartbeats (tests drive liveness through phases).
	HeartbeatEvery time.Duration
}

func (c MasterConfig) withDefaults() MasterConfig {
	if c.PhaseTimeout <= 0 {
		c.PhaseTimeout = 60 * time.Second
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 5 * time.Second
	}
	return c
}

// remoteWorker is the master's handle on one connected worker. Its mutex
// serializes conversations on the connection (phase exchanges, report
// broadcasts, heartbeats); liveness and roster membership are guarded by
// the master's mutex.
type remoteWorker struct {
	name string
	conn Conn

	mu sync.Mutex
	// syncGen/hasSync track which mutation generation the worker's replica
	// was last synced to. Written only inside phase exchanges (which hold
	// mu) and read at phase starts — phases are sequential, so reads see
	// the latest exchange's writes.
	syncGen uint64
	hasSync bool

	alive bool // guarded by Master.mu
}

// markSynced records that the worker's replica now reflects generation gen
// (under the conversation lock, so observeReports' hasSync read is safe).
func (w *remoteWorker) markSynced(gen uint64) {
	w.mu.Lock()
	w.hasSync, w.syncGen = true, gen
	w.mu.Unlock()
}

// exchange sends the given frames back-to-back and waits for one response,
// all under the worker's conversation lock and a single deadline.
func (w *remoteWorker) exchange(timeout time.Duration, reqs ...*envelope) (*envelope, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	for _, r := range reqs {
		if err := w.conn.Send(r); err != nil {
			return nil, err
		}
	}
	return w.conn.Recv()
}

// Master owns a trustnet Engine and distributes its scatter and SpMV phases
// over registered workers. Construct with NewMaster, drive the engine as
// usual (Run/Session — the delegates are installed behind the scenes), and
// Shutdown when done. All exported methods are safe for concurrent use;
// engine-driving itself must stay single-threaded as always.
type Master struct {
	cfg          MasterConfig
	scenarioJSON []byte
	eng          *trustnet.Engine
	we           *workload.Engine
	// scatterer is the mechanism's block-scatter view, used for the
	// master-local fallback when a worker dies mid-SpMV; nil when the
	// mechanism has no SpMV to delegate.
	scatterer reputation.BlockScatterer

	mu      sync.Mutex
	workers []*remoteWorker // adopted into phases
	pending []*remoteWorker // handshaken, not yet adopted
	done    chan struct{}
	closed  bool

	// Diagnostics: chunks/block ranges actually computed remotely (tests
	// assert delegation happened; operators read them in logs).
	remoteScatters atomic.Uint64
	remoteSpMVs    atomic.Uint64
	// resyncs counts full replica-state pushes to stale workers. Mutations
	// that do not change engine state (e.g. installing a bytewise-identical
	// honesty override) must not bump the mutation generation, so a
	// steady-state run resyncs rarely; tests pin that.
	resyncs atomic.Uint64
}

// RemotePhases reports how many scatter chunks and SpMV block ranges were
// computed by workers (as opposed to locally).
func (m *Master) RemotePhases() (scatterChunks, spmvRanges uint64) {
	return m.remoteScatters.Load(), m.remoteSpMVs.Load()
}

// Resyncs reports how many full replica-state pushes stale workers needed.
func (m *Master) Resyncs() uint64 { return m.resyncs.Load() }

// NewMaster builds the engine from the scenario, installs the cluster
// delegates, and (when cfg.Listener is set) starts accepting workers.
// The scenario must be fully serializable — it is streamed to every worker
// as JSON, and both sides must deterministically rebuild identical engines
// from it.
func NewMaster(sc trustnet.Scenario, cfg MasterConfig) (*Master, error) {
	scJSON, err := json.Marshal(sc)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode scenario: %w", err)
	}
	eng, err := sc.NewEngine()
	if err != nil {
		return nil, fmt.Errorf("cluster: build engine: %w", err)
	}
	m := &Master{
		cfg:          cfg.withDefaults(),
		scenarioJSON: scJSON,
		eng:          eng,
		we:           eng.WorkloadEngine(),
		done:         make(chan struct{}),
	}
	m.we.SetScatterDelegate(m.scatterDelegate)
	m.we.SetReportObserver(m.observeReports)
	if d, ok := m.we.Mechanism().(reputation.SpMVDelegator); ok {
		if bs, ok := m.we.Mechanism().(reputation.BlockScatterer); ok {
			m.scatterer = bs
			d.SetSpMVDelegate(m.spmvDelegate)
		}
	}
	if m.cfg.Listener != nil {
		go m.acceptLoop()
	}
	if m.cfg.HeartbeatEvery > 0 {
		go m.heartbeatLoop()
	}
	return m, nil
}

// Engine returns the master's engine; drive it exactly like a local one.
func (m *Master) Engine() *trustnet.Engine { return m.eng }

// acceptLoop admits workers until the listener closes.
func (m *Master) acceptLoop() {
	for {
		conn, err := m.cfg.Listener.Accept()
		if err != nil {
			return
		}
		go m.handshake(conn)
	}
}

// handshake admits one worker: hello in, duplicate-name check, welcome (with
// the scenario spec) out. Admitted workers wait in pending until the next
// phase boundary adopts them.
func (m *Master) handshake(conn Conn) {
	conn.SetDeadline(time.Now().Add(m.cfg.PhaseTimeout))
	env, err := conn.Recv()
	if err != nil || env.Kind != kindHello || env.Hello == nil || env.Hello.Name == "" {
		conn.Close()
		return
	}
	name := env.Hello.Name
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		conn.Close()
		return
	}
	dup := false
	for _, w := range m.workers {
		if w.alive && w.name == name {
			dup = true
		}
	}
	for _, w := range m.pending {
		if w.alive && w.name == name {
			dup = true
		}
	}
	if dup {
		m.mu.Unlock()
		conn.Send(&envelope{Kind: kindError, Err: &errorMsg{Msg: fmt.Sprintf("worker name %q already registered", name)}})
		conn.Close()
		return
	}
	w := &remoteWorker{name: name, conn: conn, alive: true}
	m.pending = append(m.pending, w)
	m.mu.Unlock()
	conn.SetDeadline(time.Time{})
	if err := conn.Send(&envelope{Kind: kindWelcome, Welcome: &welcomeMsg{Scenario: m.scenarioJSON}}); err != nil {
		m.markDead(w)
	}
}

// adoptLive moves pending workers into the roster and returns the live set.
// Called at phase boundaries (and sequential points like Shutdown), so a
// newly adopted worker's first phase starts with a full sync.
func (m *Master) adoptLive() []*remoteWorker {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.workers = append(m.workers, m.pending...)
	m.pending = nil
	var live []*remoteWorker
	for _, w := range m.workers {
		if w.alive {
			live = append(live, w)
		}
	}
	m.workers = append(m.workers[:0], live...)
	return live
}

// LiveWorkers reports how many workers are currently registered and alive
// (adopted or pending).
func (m *Master) LiveWorkers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, w := range m.workers {
		if w.alive {
			n++
		}
	}
	for _, w := range m.pending {
		if w.alive {
			n++
		}
	}
	return n
}

// WaitForWorkers blocks until at least n workers are registered (or timeout
// elapses, which is an error).
func (m *Master) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if m.LiveWorkers() >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: %d of %d workers registered after %v", m.LiveWorkers(), n, timeout)
		}
		select {
		case <-m.done:
			return fmt.Errorf("cluster: master shut down while waiting for workers")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// markDead removes a worker from rotation and tears down its connection.
// Idempotent; every failure path funnels here.
func (m *Master) markDead(w *remoteWorker) {
	m.mu.Lock()
	wasAlive := w.alive
	w.alive = false
	m.mu.Unlock()
	if wasAlive {
		w.conn.Close()
	}
}

// heartbeatLoop pings every registered worker between phases so a silently
// dead worker is evicted before (not during) the next phase when possible.
// Pings serialize with phase exchanges on the per-worker lock, so they can
// never interleave inside a conversation.
func (m *Master) heartbeatLoop() {
	t := time.NewTicker(m.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-t.C:
		}
		m.mu.Lock()
		var ws []*remoteWorker
		for _, w := range append(append([]*remoteWorker(nil), m.workers...), m.pending...) {
			if w.alive {
				ws = append(ws, w)
			}
		}
		m.mu.Unlock()
		for _, w := range ws {
			resp, err := w.exchange(m.cfg.PhaseTimeout, &envelope{Kind: kindPing})
			if err != nil || resp.Kind != kindPong {
				m.markDead(w)
			}
		}
	}
}

// chunkRange cuts [0, n) into k near-equal contiguous chunks and returns
// chunk i. Which worker gets which chunk is pure scheduling: every result is
// written back by index, so the cut cannot perturb the merged output.
func chunkRange(n, k, i int) (lo, hi int) {
	per := (n + k - 1) / k
	lo = i * per
	hi = lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// syncEnvelope snapshots the engine for replicas that are behind generation
// gen. Snapshotting is safe at every phase boundary the delegates run at:
// the plan phase is complete, no reports are pending, and nothing the
// snapshot reads is concurrently mutated.
func (m *Master) syncEnvelope(gen uint64) (*envelope, error) {
	snap, err := m.eng.Snapshot()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		return nil, err
	}
	return &envelope{Kind: kindSync, Sync: &syncMsg{Gen: gen, Snapshot: buf.Bytes()}}, nil
}

// needSync reports whether any of the live workers' replicas are behind gen.
func needSync(live []*remoteWorker, gen uint64) bool {
	for _, w := range live {
		if !w.hasSync || w.syncGen != gen {
			return true
		}
	}
	return false
}

// scatterDelegate implements workload.ScatterDelegate: cut the plan list
// into contiguous chunks, one per live worker, simulate each remotely (after
// resyncing stale replicas), and merge by index. A failed worker's chunk is
// recomputed locally from the same round-immutable inputs — identical bits,
// degraded latency. Declines (false) when no workers are live, handing the
// round back to the engine's local parallel path.
func (m *Master) scatterDelegate(plans []workload.PlannedInteraction, scores []float64, gate float64, pool []int, round int) ([]workload.InteractionOutcome, bool) {
	live := m.adoptLive()
	if len(live) == 0 || len(plans) == 0 {
		return nil, false
	}
	gen := m.we.MutationGen()
	var syncEnv *envelope
	if needSync(live, gen) {
		var err error
		if syncEnv, err = m.syncEnvelope(gen); err != nil {
			return nil, false
		}
	}
	out := make([]workload.InteractionOutcome, len(plans))
	var wg sync.WaitGroup
	for i, w := range live {
		lo, hi := chunkRange(len(plans), len(live), i)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w *remoteWorker, lo, hi int) {
			defer wg.Done()
			res, err := m.scatterOn(w, gen, syncEnv, plans[lo:hi], scores, gate, pool, round)
			if err != nil || len(res) != hi-lo {
				m.markDead(w)
				res = m.we.SimulateChunk(plans[lo:hi], scores, gate, pool, round)
			}
			copy(out[lo:hi], res)
		}(w, lo, hi)
	}
	wg.Wait()
	return out, true
}

// scatterOn runs one worker's chunk: optional resync, then the scatter
// request, one ordered conversation under one deadline.
func (m *Master) scatterOn(w *remoteWorker, gen uint64, syncEnv *envelope, plans []workload.PlannedInteraction, scores []float64, gate float64, pool []int, round int) ([]workload.InteractionOutcome, error) {
	reqs := make([]*envelope, 0, 2)
	stale := !w.hasSync || w.syncGen != gen
	if stale {
		if syncEnv == nil {
			return nil, fmt.Errorf("cluster: stale worker %q without sync payload", w.name)
		}
		reqs = append(reqs, syncEnv)
	}
	reqs = append(reqs, &envelope{Kind: kindScatter, Scatter: &scatterMsg{
		Plans: plans, Scores: scores, Gate: gate,
		Pool: pool, HasPool: pool != nil, Round: round,
	}})
	resp, err := w.exchange(m.cfg.PhaseTimeout, reqs...)
	if err != nil {
		return nil, err
	}
	if resp.Kind != kindScatterResult || resp.ScatterRes == nil {
		return nil, fmt.Errorf("cluster: worker %q: unexpected reply kind %d to scatter", w.name, resp.Kind)
	}
	if stale {
		w.markSynced(gen)
		m.resyncs.Add(1)
	}
	m.remoteScatters.Add(1)
	return resp.ScatterRes.Outcomes, nil
}

// spmvDelegate implements reputation.SpMVDelegate: fan the canonical block
// range out over live workers, recompute dead workers' blocks locally, and
// fold everything in ascending block order — bit-identical to the local
// kernel by linalg's scatter/fold contract.
func (m *Master) spmvDelegate(y, x, dangle []float64) bool {
	if m.scatterer == nil {
		return false
	}
	live := m.adoptLive()
	if len(live) == 0 {
		return false
	}
	blocks := m.scatterer.SpMVBlocks()
	if blocks == 0 {
		return false
	}
	gen := m.we.MutationGen()
	var syncEnv *envelope
	if needSync(live, gen) {
		var err error
		if syncEnv, err = m.syncEnvelope(gen); err != nil {
			return false
		}
	}
	partials := make([][]float64, blocks)
	masses := make([]float64, blocks)
	var wg sync.WaitGroup
	for i, w := range live {
		lob, hib := chunkRange(blocks, len(live), i)
		if lob >= hib {
			continue
		}
		wg.Add(1)
		go func(w *remoteWorker, lob, hib int) {
			defer wg.Done()
			p, ms, err := m.spmvOn(w, gen, syncEnv, x, lob, hib)
			if err != nil || len(p) != hib-lob || len(ms) != hib-lob {
				m.markDead(w)
				p, ms = m.scatterer.SpMVScatterBlocks(x, lob, hib)
			}
			copy(partials[lob:hib], p)
			copy(masses[lob:hib], ms)
		}(w, lob, hib)
	}
	wg.Wait()
	linalg.FoldBlocks(y, dangle, partials, masses)
	return true
}

// spmvOn runs one worker's block range: optional resync, then the spmv
// request.
func (m *Master) spmvOn(w *remoteWorker, gen uint64, syncEnv *envelope, x []float64, lob, hib int) ([][]float64, []float64, error) {
	reqs := make([]*envelope, 0, 2)
	stale := !w.hasSync || w.syncGen != gen
	if stale {
		if syncEnv == nil {
			return nil, nil, fmt.Errorf("cluster: stale worker %q without sync payload", w.name)
		}
		reqs = append(reqs, syncEnv)
	}
	reqs = append(reqs, &envelope{Kind: kindSpMV, SpMV: &spmvMsg{X: x, Lob: lob, Hib: hib}})
	resp, err := w.exchange(m.cfg.PhaseTimeout, reqs...)
	if err != nil {
		return nil, nil, err
	}
	if resp.Kind != kindSpMVResult || resp.SpMVRes == nil {
		return nil, nil, fmt.Errorf("cluster: worker %q: unexpected reply kind %d to spmv", w.name, resp.Kind)
	}
	if stale {
		w.markSynced(gen)
		m.resyncs.Add(1)
	}
	m.remoteSpMVs.Add(1)
	return resp.SpMVRes.Partials, resp.SpMVRes.Masses, nil
}

// observeReports mirrors a mechanism-accepted report batch onto every
// synced replica, keeping their feedback matrices current between full
// syncs. Unsynced workers skip the batch — their next sync carries it
// inside the snapshot. Runs on the engine's sequential path, so the sends
// are ordered after any phase exchange and before the next one.
func (m *Master) observeReports(reports []reputation.Report) {
	m.mu.Lock()
	var ws []*remoteWorker
	for _, w := range m.workers {
		if w.alive {
			ws = append(ws, w)
		}
	}
	m.mu.Unlock()
	var env *envelope
	for _, w := range ws {
		w.mu.Lock()
		if !w.hasSync {
			w.mu.Unlock()
			continue
		}
		if env == nil {
			// Copy: the engine reuses the batch buffer after we return.
			env = &envelope{Kind: kindReports, Reports: &reportsMsg{Reports: append([]reputation.Report(nil), reports...)}}
		}
		w.conn.SetDeadline(time.Now().Add(m.cfg.PhaseTimeout))
		err := w.conn.Send(env)
		w.mu.Unlock()
		if err != nil {
			m.markDead(w)
		}
	}
}

// Shutdown detaches the delegates (the engine keeps working locally),
// broadcasts shutdown to every worker so they exit cleanly, and closes the
// listener. Safe to call more than once.
func (m *Master) Shutdown() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	ws := append(append([]*remoteWorker(nil), m.workers...), m.pending...)
	m.workers, m.pending = nil, nil
	m.mu.Unlock()
	close(m.done)
	m.we.SetScatterDelegate(nil)
	m.we.SetReportObserver(nil)
	if d, ok := m.we.Mechanism().(reputation.SpMVDelegator); ok {
		d.SetSpMVDelegate(nil)
	}
	if m.cfg.Listener != nil {
		m.cfg.Listener.Close()
	}
	for _, w := range ws {
		w.mu.Lock()
		w.conn.SetDeadline(time.Now().Add(time.Second))
		w.conn.Send(&envelope{Kind: kindShutdown})
		w.mu.Unlock()
		w.conn.Close()
	}
}
