// Package cluster is the multi-process engine: a master process that owns a
// trustnet Engine and fans its two parallel phases — the round pipeline's
// interaction scatter and the mechanism's inner SpMV — out to worker
// processes over a message transport, then folds the results in canonical
// order.
//
// The subsystem sits entirely behind seams the single-process engine already
// has (workload.ScatterDelegate, reputation.SpMVDelegate), so the engine's
// sequential phases — planning on the main SplitMix64 stream, the gather
// merge, intervention application — are untouched and the distributed run is
// bit-for-bit identical to the local one:
//
//   - Plans carry their private RNG stream state verbatim, so a worker's
//     simulate consumes exactly the draws the local scatter would have.
//   - Workers hold full engine replicas, built from the scenario spec the
//     master streams at handshake and synced by Snapshot/Restore whenever
//     the master's out-of-round mutation generation moves; in-round
//     mechanism feedback is mirrored as report batches, so replica CSRs
//     stay current without re-snapshotting.
//   - SpMV work is cut along the canonical block decomposition (a function
//     of the matrix dimension only) and folded with linalg.FoldBlocks — the
//     same arithmetic, in the same order, as the local kernel.
//   - Gob preserves float64 bits exactly, and every result is indexed
//     (plan index, block index), so neither worker count nor completion
//     order can perturb a single operation.
//
// The master is authoritative: any worker failure (heartbeat miss, phase
// deadline, decode error) marks the worker dead and its chunk is recomputed
// locally from the same inputs — degraded latency, identical bits. With no
// live workers the delegates decline and the engine transparently runs its
// local parallel path. A rejoining worker is adopted at the next phase
// boundary with a fresh snapshot.
//
// Transports: Loopback (in-process channels carrying the same encoded
// frames, for tests) and TCP (length-prefixed gob). Both run the identical
// protocol; see messages.go for the schema and DESIGN.md for the phase
// walkthrough.
package cluster
