package core

import (
	"fmt"

	"repro/internal/reputation"
	"repro/internal/workload"
)

// Setting is one point in the settable-configuration space of §4 / Fig. 2:
// how much information participants share (the privacy/reputation
// antagonism's driver), and how strictly privacy policies gate service via
// their minimal-trust clause.
type Setting struct {
	// Disclosure δ ∈ [0,1]: the quantity of shared information.
	Disclosure float64
	// TrustGate σ ∈ [0,1): the strictness of the policies' MinTrustLevel
	// clause (quantile form, see workload.Config.TrustGate).
	TrustGate float64
}

// Point is an evaluated setting.
type Point struct {
	Setting Setting
	// Global holds the measured global facets at this setting.
	Global Facets
	// Trust is the generic metric Φ applied to the global facets.
	Trust float64
}

// MechanismFactory builds a fresh mechanism for n peers; every evaluated
// setting gets its own mechanism so settings do not contaminate each other.
type MechanismFactory func(n int) (reputation.Mechanism, error)

// ExploreConfig configures single-setting evaluation (EvaluateSetting).
// The grid explorer and optimizer live in the trustnet facade, built on
// the Experiment/Sweep orchestrator; this config is the minimal low-level
// surface the facade's per-point evaluation semantics are defined against.
type ExploreConfig struct {
	// Base is the scenario template; its Disclosure and TrustGate fields
	// are overridden per point.
	Base workload.Config
	// Mechanism builds the scoring engine per point (default EigenTrust is
	// NOT assumed — the factory is required).
	Mechanism MechanismFactory
	// Rounds per evaluation (default 30; negative is an error, never a
	// silent clamp).
	Rounds int
	// Weights combine facets into trust (default DefaultWeights).
	Weights Weights
	// ExposureScale normalizes ledger exposure (default 50).
	ExposureScale float64
}

func (c ExploreConfig) withDefaults() (ExploreConfig, error) {
	if c.Mechanism == nil {
		return c, fmt.Errorf("core: explore requires a mechanism factory")
	}
	// Zero means "default"; explicit nonpositive values are configuration
	// errors, never silently clamped.
	if c.Rounds < 0 {
		return c, fmt.Errorf("core: explore rounds must be positive, got %d", c.Rounds)
	}
	if c.Rounds == 0 {
		c.Rounds = 30
	}
	if c.Weights == (Weights{}) {
		c.Weights = DefaultWeights()
	}
	if c.ExposureScale == 0 {
		c.ExposureScale = 50
	}
	return c, nil
}

// EvaluateSetting measures the global facets and trust of one setting by
// running a fresh scenario.
func EvaluateSetting(cfg ExploreConfig, s Setting) (Point, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Point{}, err
	}
	if s.Disclosure < 0 || s.Disclosure > 1 || s.TrustGate < 0 || s.TrustGate >= 1 {
		return Point{}, fmt.Errorf("core: setting %+v out of range", s)
	}
	wcfg := cfg.Base
	wcfg.Disclosure = s.Disclosure
	wcfg.TrustGate = s.TrustGate
	mech, err := cfg.Mechanism(wcfg.NumPeers)
	if err != nil {
		return Point{}, fmt.Errorf("core: mechanism factory: %w", err)
	}
	dyn, err := NewDynamics(DynamicsConfig{
		Workload:      wcfg,
		Weights:       cfg.Weights,
		EpochRounds:   cfg.Rounds,
		Coupled:       false, // explore measures the setting, not the feedback
		ExposureScale: cfg.ExposureScale,
	}, mech)
	if err != nil {
		return Point{}, err
	}
	// The Config zero value means "default 1"; the explorer needs a true
	// zero-disclosure point, so set the base explicitly.
	if err := dyn.SetBaseDisclosure(s.Disclosure); err != nil {
		return Point{}, err
	}
	if _, err := dyn.Epoch(); err != nil {
		return Point{}, err
	}
	assess := Assess(dyn.Engine())
	g := assess.GlobalFacets()
	trust, err := Combine(g, cfg.Weights)
	if err != nil {
		return Point{}, err
	}
	return Point{Setting: s, Global: g, Trust: trust}, nil
}

// Constraints are minimum facet levels an application context imposes (§4:
// "maximize the users' trust towards the system while respecting the
// system/application constrains").
type Constraints struct {
	MinSatisfaction, MinReputation, MinPrivacy float64
}

// ErrInfeasible is returned when no explored setting meets the constraints
// (the trustnet optimizer surfaces it).
var ErrInfeasible = fmt.Errorf("core: no setting satisfies the constraints")
