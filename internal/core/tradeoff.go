package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/reputation"
	"repro/internal/workload"
)

// Setting is one point in the settable-configuration space of §4 / Fig. 2:
// how much information participants share (the privacy/reputation
// antagonism's driver), and how strictly privacy policies gate service via
// their minimal-trust clause.
type Setting struct {
	// Disclosure δ ∈ [0,1]: the quantity of shared information.
	Disclosure float64
	// TrustGate σ ∈ [0,1): the strictness of the policies' MinTrustLevel
	// clause (quantile form, see workload.Config.TrustGate).
	TrustGate float64
}

// Point is an evaluated setting.
type Point struct {
	Setting Setting
	// Global holds the measured global facets at this setting.
	Global Facets
	// Trust is the generic metric Φ applied to the global facets.
	Trust float64
}

// MechanismFactory builds a fresh mechanism for n peers; every evaluated
// setting gets its own mechanism so settings do not contaminate each other.
type MechanismFactory func(n int) (reputation.Mechanism, error)

// ExploreConfig configures the tradeoff exploration.
type ExploreConfig struct {
	// Base is the scenario template; its Disclosure and TrustGate fields
	// are overridden per point.
	Base workload.Config
	// Mechanism builds the scoring engine per point (default EigenTrust is
	// NOT assumed — the factory is required).
	Mechanism MechanismFactory
	// Rounds per evaluation (default 30).
	Rounds int
	// Weights combine facets into trust (default DefaultWeights).
	Weights Weights
	// GridSize is the number of points per axis (default 5).
	GridSize int
	// Thresholds define Area A membership: a setting belongs to the
	// intersection area when every measured global facet reaches its
	// threshold (default 0.5 each).
	Thresholds Facets
	// ExposureScale normalizes ledger exposure (default 50).
	ExposureScale float64
	// Workers bounds the pool evaluating grid settings concurrently
	// (default GOMAXPROCS). Every setting runs a fresh scenario via the
	// mechanism factory, so evaluations are independent; results are folded
	// in grid order, keeping the outcome identical for every pool size.
	Workers int
}

func (c ExploreConfig) withDefaults() (ExploreConfig, error) {
	if c.Mechanism == nil {
		return c, fmt.Errorf("core: explore requires a mechanism factory")
	}
	if c.Rounds <= 0 {
		c.Rounds = 30
	}
	if c.Weights == (Weights{}) {
		c.Weights = DefaultWeights()
	}
	if c.GridSize < 2 {
		c.GridSize = 5
	}
	if c.Thresholds == (Facets{}) {
		c.Thresholds = Facets{Satisfaction: 0.5, Reputation: 0.5, Privacy: 0.5}
	}
	if c.ExposureScale == 0 {
		c.ExposureScale = 50
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c, nil
}

// EvaluateSetting measures the global facets and trust of one setting by
// running a fresh scenario.
func EvaluateSetting(cfg ExploreConfig, s Setting) (Point, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Point{}, err
	}
	if s.Disclosure < 0 || s.Disclosure > 1 || s.TrustGate < 0 || s.TrustGate >= 1 {
		return Point{}, fmt.Errorf("core: setting %+v out of range", s)
	}
	wcfg := cfg.Base
	wcfg.Disclosure = s.Disclosure
	wcfg.TrustGate = s.TrustGate
	mech, err := cfg.Mechanism(wcfg.NumPeers)
	if err != nil {
		return Point{}, fmt.Errorf("core: mechanism factory: %w", err)
	}
	dyn, err := NewDynamics(DynamicsConfig{
		Workload:      wcfg,
		Weights:       cfg.Weights,
		EpochRounds:   cfg.Rounds,
		Coupled:       false, // explore measures the setting, not the feedback
		ExposureScale: cfg.ExposureScale,
	}, mech)
	if err != nil {
		return Point{}, err
	}
	// The Config zero value means "default 1"; the explorer needs a true
	// zero-disclosure point, so set the base explicitly.
	if err := dyn.SetBaseDisclosure(s.Disclosure); err != nil {
		return Point{}, err
	}
	if _, err := dyn.Epoch(); err != nil {
		return Point{}, err
	}
	assess := Assess(dyn.Engine())
	g := assess.GlobalFacets()
	trust, err := Combine(g, cfg.Weights)
	if err != nil {
		return Point{}, err
	}
	return Point{Setting: s, Global: g, Trust: trust}, nil
}

// ExploreResult is the outcome of a grid exploration.
type ExploreResult struct {
	// Points is the full grid, disclosure-major then gate.
	Points []Point
	// AreaA are the points whose facets all reach the thresholds — the
	// intersection region of Fig. 2 (left).
	AreaA []Point
	// Best is the maximum-trust point over the whole grid.
	Best Point
	// BestInAreaA is the maximum-trust point inside Area A (zero Point
	// when the area is empty).
	BestInAreaA Point
	// AreaFraction is |AreaA| / |Points|.
	AreaFraction float64
}

// evaluateAll measures the given settings concurrently under the config's
// bounded worker pool and returns the points in input order. Workers stop
// picking up settings once ctx is cancelled; the first evaluation error (in
// input order) wins. Each setting builds a fresh scenario from its own
// factory call, so the results — folded by index — are identical for every
// pool size.
func evaluateAll(ctx context.Context, cfg ExploreConfig, settings []Setting) ([]Point, error) {
	points := make([]Point, len(settings))
	errs := make([]error, len(settings))
	next := make(chan int)
	var wg sync.WaitGroup
	var failed atomic.Bool
	workers := cfg.Workers
	if workers > len(settings) {
		workers = len(settings)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				points[idx], errs[idx] = EvaluateSetting(cfg, settings[idx])
				if errs[idx] != nil {
					failed.Store(true)
				}
			}
		}()
	}
feed:
	for idx := range settings {
		// Stop dispatching once any evaluation failed: each one runs a
		// whole fresh scenario, so finishing a doomed sweep is pure waste.
		if failed.Load() {
			break
		}
		select {
		case <-ctx.Done():
			break feed
		case next <- idx:
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for idx, err := range errs {
		if err != nil {
			s := settings[idx]
			return nil, fmt.Errorf("core: explore (%v,%v): %w", s.Disclosure, s.TrustGate, err)
		}
	}
	return points, nil
}

// Explore sweeps the (disclosure, trust-gate) grid and classifies Area A.
// Grid settings are evaluated concurrently (ExploreConfig.Workers bounds
// the pool); ctx cancels the sweep between evaluations.
func Explore(ctx context.Context, cfg ExploreConfig) (*ExploreResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	g := cfg.GridSize
	settings := make([]Setting, 0, g*g)
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			settings = append(settings, Setting{
				Disclosure: float64(i) / float64(g-1),
				TrustGate:  0.9 * float64(j) / float64(g-1),
			})
		}
	}
	points, err := evaluateAll(ctx, cfg, settings)
	if err != nil {
		return nil, err
	}
	res := &ExploreResult{Points: points}
	for _, p := range points {
		if p.Trust > res.Best.Trust {
			res.Best = p
		}
		if inArea(p.Global, cfg.Thresholds) {
			res.AreaA = append(res.AreaA, p)
			if p.Trust > res.BestInAreaA.Trust {
				res.BestInAreaA = p
			}
		}
	}
	if len(res.Points) > 0 {
		res.AreaFraction = float64(len(res.AreaA)) / float64(len(res.Points))
	}
	return res, nil
}

func inArea(f, thresholds Facets) bool {
	return f.Satisfaction >= thresholds.Satisfaction &&
		f.Reputation >= thresholds.Reputation &&
		f.Privacy >= thresholds.Privacy
}

// Constraints are minimum facet levels an application context imposes (§4:
// "maximize the users' trust towards the system while respecting the
// system/application constrains").
type Constraints struct {
	MinSatisfaction, MinReputation, MinPrivacy float64
}

func (c Constraints) satisfiedBy(f Facets) bool {
	return f.Satisfaction >= c.MinSatisfaction &&
		f.Reputation >= c.MinReputation &&
		f.Privacy >= c.MinPrivacy
}

// ErrInfeasible is returned when no explored setting meets the constraints.
var ErrInfeasible = fmt.Errorf("core: no setting satisfies the constraints")

// Optimize finds the maximum-trust setting subject to constraints: a coarse
// grid pass followed by local hill-climbing refinement around the best
// feasible point, honouring ctx between evaluations.
func Optimize(ctx context.Context, cfg ExploreConfig, cons Constraints) (Point, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Point{}, err
	}
	res, err := Explore(ctx, cfg)
	if err != nil {
		return Point{}, err
	}
	best := Point{Trust: -1}
	for _, p := range res.Points {
		if cons.satisfiedBy(p.Global) && p.Trust > best.Trust {
			best = p
		}
	}
	if best.Trust < 0 {
		return Point{}, ErrInfeasible
	}
	// Hill climb with shrinking steps. Each iteration evaluates the whole
	// neighbour batch of the current best concurrently, then folds the
	// improvements in fixed direction order — deterministic for every pool
	// size.
	step := 1.0 / float64(cfg.GridSize-1)
	for iter := 0; iter < 4; iter++ {
		var batch []Setting
		for _, d := range [][2]float64{{step, 0}, {-step, 0}, {0, step}, {0, -step}} {
			s := Setting{
				Disclosure: clampTo(best.Setting.Disclosure+d[0], 0, 1),
				TrustGate:  clampTo(best.Setting.TrustGate+d[1], 0, 0.9),
			}
			if s == best.Setting {
				continue
			}
			batch = append(batch, s)
		}
		points, err := evaluateAll(ctx, cfg, batch)
		if err != nil {
			return Point{}, err
		}
		improved := false
		for _, p := range points {
			if cons.satisfiedBy(p.Global) && p.Trust > best.Trust {
				best = p
				improved = true
			}
		}
		if !improved {
			step /= 2
		}
	}
	return best, nil
}

func clampTo(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
