package core

import "testing"

func TestSetUserWeights(t *testing.T) {
	m, err := NewTrustModel(3, DefaultWeights(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// User 1 is privacy-obsessed.
	if err := m.SetUserWeights(1, ContextWeights(PrivacyCritical)); err != nil {
		t.Fatal(err)
	}
	f := Facets{Satisfaction: 0.9, Reputation: 0.9, Privacy: 0.2}
	t0, err := m.Update(0, f)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := m.Update(1, f)
	if err != nil {
		t.Fatal(err)
	}
	if t1 >= t0 {
		t.Fatalf("privacy-weighted user not more upset by privacy collapse: %v vs %v", t1, t0)
	}
	// And conversely for a privacy-respecting system.
	g := Facets{Satisfaction: 0.5, Reputation: 0.5, Privacy: 0.99}
	t0g, _ := m.Update(0, g)
	t1g, _ := m.Update(1, g)
	if t1g <= t0g {
		t.Fatalf("privacy-weighted user not happier with privacy: %v vs %v", t1g, t0g)
	}
}

func TestSetUserWeightsValidation(t *testing.T) {
	m, err := NewTrustModel(2, DefaultWeights(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetUserWeights(9, DefaultWeights()); err == nil {
		t.Fatal("out-of-range user accepted")
	}
	if err := m.SetUserWeights(0, Weights{}); err == nil {
		t.Fatal("zero weights accepted")
	}
}

func TestUserWeightsDoNotLeakToOthers(t *testing.T) {
	m, err := NewTrustModel(2, DefaultWeights(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetUserWeights(0, Weights{Satisfaction: 1, Reputation: 0, Privacy: 0}); err != nil {
		t.Fatal(err)
	}
	f := Facets{Satisfaction: 1, Reputation: 0.1, Privacy: 0.1}
	t0, _ := m.Update(0, f)
	t1, _ := m.Update(1, f)
	if t0 != 1 {
		t.Fatalf("satisfaction-only user trust = %v, want 1", t0)
	}
	if t1 >= 0.5 {
		t.Fatalf("default-weighted user unaffected by bad facets: %v", t1)
	}
}
