package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/reputation"
	"repro/internal/workload"
)

// DynamicsConfig configures the coupled-feedback simulation of §3 / Fig. 1.
type DynamicsConfig struct {
	// Workload is the scenario template. Its Disclosure field is the base
	// disclosure δ_base.
	Workload workload.Config
	// Weights combine the facets into trust (default DefaultWeights).
	Weights Weights
	// Inertia smooths trust across epochs (default 0.5). The zero value
	// means "default"; pass any negative value for an explicit zero
	// (memoryless trust).
	Inertia float64
	// BaseHonesty h0 is the truthful-reporting probability at zero trust;
	// honesty rises to 1 with full trust (default 0.3). The zero value
	// means "default"; pass any negative value for an explicit zero.
	BaseHonesty float64
	// EpochRounds is how many workload rounds one coupling epoch spans
	// (default 10).
	EpochRounds int
	// Coupled enables the §3 feedback loops. When false, disclosure and
	// honesty stay pinned at their base values (the E1 ablation).
	Coupled bool
	// ExposureScale normalizes ledger exposure (default 50).
	ExposureScale float64
}

func (c DynamicsConfig) withDefaults() DynamicsConfig {
	if c.Weights == (Weights{}) {
		c.Weights = DefaultWeights()
	}
	switch {
	case c.Inertia < 0:
		c.Inertia = 0
	case c.Inertia == 0:
		c.Inertia = 0.5
	}
	switch {
	case c.BaseHonesty < 0:
		c.BaseHonesty = 0
	case c.BaseHonesty == 0:
		c.BaseHonesty = 0.3
	}
	if c.EpochRounds <= 0 {
		c.EpochRounds = 10
	}
	if c.ExposureScale == 0 {
		c.ExposureScale = 50
	}
	return c
}

// EpochStats records the coupled system's state after one epoch.
type EpochStats struct {
	Epoch int `json:"epoch"`
	// Trust is the mean trust towards the system.
	Trust float64 `json:"trust"`
	// Satisfaction, Reputation, Privacy are the mean facet values.
	Satisfaction float64 `json:"satisfaction"`
	Reputation   float64 `json:"reputation"`
	Privacy      float64 `json:"privacy"`
	// Disclosure and Honesty are the mean realized coupling variables.
	Disclosure float64 `json:"disclosure"`
	Honesty    float64 `json:"honesty"`
	// BadRate is the epoch's bad-service rate.
	BadRate float64 `json:"bad_rate"`
	// Tau is the current reputation/ground-truth rank correlation.
	Tau float64 `json:"tau"`
	// Community is the mechanism's conclusion: the fraction of rated peers
	// it considers trustworthy.
	Community float64 `json:"community"`
	// MechIterations is how many solver iterations the mechanism spent this
	// epoch (periodic recomputes plus the measurement barrier); MechResidual
	// is the final L1 residual of its most recent iterative Compute. Both
	// are 0 for non-iterative mechanisms.
	MechIterations int     `json:"mech_iterations"`
	MechResidual   float64 `json:"mech_residual"`
	// SettledUsers is how many users ended the epoch at their bitwise trust
	// fixed point — users the next epoch's sparse update may skip outright
	// unless their facets change. DirtyFacets is how many users' facet
	// triples this epoch treated as changed (the whole population when the
	// global reputation facet or the exposure scale moved). Both are
	// schedule-independent: the dense reference path maintains them
	// identically, so they are safe to golden-pin.
	SettledUsers int `json:"settled_users"`
	DirtyFacets  int `json:"dirty_facets"`
}

// Dynamics runs the coupled three-facet system: each epoch measures the
// facets, updates every user's trust, and — when coupled — feeds trust back
// into disclosure willingness ("the less a user trusts towards the system,
// the less she discloses information") and honest contribution ("the more a
// user trusts towards the system, the more she contributes honestly").
type Dynamics struct {
	cfg            DynamicsConfig
	eng            *workload.Engine
	tm             *TrustModel
	ledger         *privacy.Ledger
	baseDisclosure float64
	disclosure     []float64
	honesty        []float64
	epoch          int
	history        []EpochStats

	// Sub-linear epoch tail state. The global reputation facet is shared by
	// every user, so a change in its value dirties the whole population;
	// prevRepFacet detects that by value (NaN before the first epoch, so
	// epoch 0 is always dense). couplingAll forces the next §3 coupling pass
	// to visit every user — set initially (the coupling invariant is not yet
	// established) and by the base-disclosure / base-honesty / coupling
	// interventions, whose effects are not proportional to trust movement.
	// Both are serialized: a resumed run must go dense exactly when the
	// uninterrupted one would.
	prevRepFacet float64
	couplingAll  bool
	// prevLedgerScale detects mid-run exposure-scale interventions, which
	// reprice every privacy facet at once (re-derived from the engine on
	// restore, so it needs no serialization).
	prevLedgerScale float64 //trustlint:derived re-read from the restored engine's ledger scale
	// discAll/honAll force full in-place installs of the coupling vectors at
	// the next epoch; otherwise only the cells listed in discDirty/honDirty
	// (ascending, appended by the last coupling pass) are rewritten. All
	// four are forced to the full-install state on restore: a full in-place
	// install writes the same values the pending deltas would and consumes
	// no randomness, so it is value-identical.
	discAll   bool  //trustlint:derived restore forces a full install, which subsumes any pending deltas
	honAll    bool  //trustlint:derived restore forces a full install, which subsumes any pending deltas
	discDirty []int //trustlint:derived restore forces a full install, which subsumes any pending deltas
	honDirty  []int //trustlint:derived restore forces a full install, which subsumes any pending deltas
	// Fixed-shape summation trees maintain the EpochStats means from the
	// dirty set at O(log n) per touched leaf; their roots are bitwise equal
	// to a dense rebuild over the same leaves (see metrics.SumTree), so the
	// restore path rebuilds them from the serialized vectors.
	satTree  *metrics.SumTree //trustlint:derived rebuilt from engine satisfaction state on restore
	privTree *metrics.SumTree //trustlint:derived rebuilt from ledger privacy facets on restore
	discTree *metrics.SumTree //trustlint:derived rebuilt from the serialized disclosure vector on restore
	honTree  *metrics.SumTree //trustlint:derived rebuilt from the serialized honesty vector on restore
	// denseRef disables every skip (the golden-test reference mode): all
	// users update and couple each epoch. Counters and results must remain
	// bit-identical to the sparse path.
	denseRef bool //trustlint:derived test-only reference mode, never part of a captured run
	// Reusable epoch-tail scratch, so settled-regime boundaries allocate
	// nothing in the trust/coupling/aggregate phases.
	facetDirty     metrics.DirtySet //trustlint:derived per-epoch scratch, empty between epochs
	candidates     []int            //trustlint:derived per-epoch scratch, dead between epochs
	ledgerDirtyBuf []int            //trustlint:derived per-epoch scratch, dead between epochs
	gtBuf          []float64        //trustlint:derived per-epoch scratch, dead between epochs
	scBuf          []float64        //trustlint:derived per-epoch scratch, dead between epochs
	goodBuf        []float64        //trustlint:derived per-epoch scratch, dead between epochs
	badBuf         []float64        //trustlint:derived per-epoch scratch, dead between epochs
}

// NewDynamics builds the coupled system around a mechanism sized for
// cfg.Workload.NumPeers.
func NewDynamics(cfg DynamicsConfig, mech reputation.Mechanism) (*Dynamics, error) {
	cfg = cfg.withDefaults()
	eng, err := workload.NewEngine(cfg.Workload, mech)
	if err != nil {
		return nil, fmt.Errorf("core: dynamics: %w", err)
	}
	n := cfg.Workload.NumPeers
	tm, err := NewTrustModel(n, cfg.Weights, cfg.Inertia)
	if err != nil {
		return nil, err
	}
	ledger := privacy.NewLedger()
	eng.AttachLedger(ledger, cfg.ExposureScale)
	d := &Dynamics{
		cfg:        cfg,
		eng:        eng,
		tm:         tm,
		ledger:     ledger,
		disclosure: make([]float64, n),
		honesty:    make([]float64, n),
	}
	base := cfg.Workload.Disclosure
	switch {
	case base < 0: // the config's explicit-zero sentinel
		base = 0
	case base == 0: // config zero value means "default"; see SetBaseDisclosure
		base = 1
	}
	d.baseDisclosure = base
	for i := 0; i < n; i++ {
		d.disclosure[i] = base
		d.honesty[i] = 1 // first epoch: behaviour-class honesty as-is
	}
	// Epoch 0 must run dense: no settled proof exists yet, the coupling
	// invariant is not established, and NaN never equals a real rep facet.
	d.prevRepFacet = math.NaN()
	d.couplingAll = true
	d.prevLedgerScale = eng.LedgerScale()
	// The engine's gatherer was built from the same (defaults-mapped) base
	// disclosure, so no install is pending; honesty has never been
	// installed, so its first install is a full one.
	d.discAll = false
	d.honAll = true
	d.satTree = metrics.NewSumTree(n)
	d.privTree = metrics.NewSumTree(n)
	d.discTree = metrics.NewSumTree(n)
	d.honTree = metrics.NewSumTree(n)
	leaves := make([]float64, n)
	for i := range leaves {
		leaves[i] = eng.UserSatisfaction(i)
	}
	d.satTree.Fill(leaves)
	for i := range leaves {
		leaves[i] = eng.PrivacyFacetOf(i)
	}
	d.privTree.Fill(leaves)
	d.discTree.FillUniform(base)
	d.honTree.FillUniform(1)
	return d, nil
}

// SetDenseReference switches the epoch tail into its dense reference mode:
// every epoch updates every user and recomputes the full coupling pass, with
// no settled-set or dirty-set skipping. It exists for the golden bit-identity
// suite — a dense run must reproduce the sparse run's results and counters
// bit for bit — and for diagnosing a suspected skip bug in the field.
func (d *Dynamics) SetDenseReference(on bool) { d.denseRef = on }

// SetBaseDisclosure overrides δ_base, including a true zero (which the
// Config zero value cannot express). It resets every user's current
// disclosure to the new base.
func (d *Dynamics) SetBaseDisclosure(v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("core: base disclosure %v out of [0,1]", v)
	}
	d.baseDisclosure = v
	for i := range d.disclosure {
		d.disclosure[i] = v
	}
	d.discTree.FillUniform(v)
	// The reset rewrites every cell, so the next epoch installs the full
	// vector and the next coupling pass re-derives every user from the new
	// base.
	d.discAll = true
	d.discDirty = d.discDirty[:0]
	d.couplingAll = true
	return nil
}

// SetBaseHonesty overrides h0, the truthful-reporting probability at zero
// trust (a session intervention). It takes effect in the next epoch's
// coupling update.
func (d *Dynamics) SetBaseHonesty(h float64) error {
	if h < 0 || h > 1 {
		return fmt.Errorf("core: base honesty %v out of [0,1]", h)
	}
	if h != d.cfg.BaseHonesty {
		d.cfg.BaseHonesty = h
		// h0 enters every user's honesty (and, uncoupled, every
		// disclosure-independent cell), so the next coupling pass must visit
		// everyone regardless of trust movement.
		d.couplingAll = true
	}
	return nil
}

// SetCoupled enables or disables the §3 feedback loops mid-run (a session
// intervention). A toggle switches the coupling pass between two different
// functions of trust, so the next pass must rewrite every user.
func (d *Dynamics) SetCoupled(on bool) {
	if d.cfg.Coupled != on {
		d.cfg.Coupled = on
		d.couplingAll = true
	}
}

// EpochIndex returns the index the next epoch will run as (equivalently, the
// number of completed epochs).
func (d *Dynamics) EpochIndex() int { return d.epoch }

// TrustModel exposes the trust state.
func (d *Dynamics) TrustModel() *TrustModel { return d.tm }

// Engine exposes the underlying workload engine.
func (d *Dynamics) Engine() *workload.Engine { return d.eng }

// History returns the recorded epochs.
func (d *Dynamics) History() []EpochStats {
	out := make([]EpochStats, len(d.history))
	copy(out, d.history)
	return out
}

// Epoch runs one coupling epoch and returns its stats. The phases between
// the workload barrier and the history append are sharded over the engine's
// worker count: trust updates and the coupling feedback write disjoint
// per-user state, so the fan-out preserves the pipeline's determinism
// contract (identical results for every shard count).
func (d *Dynamics) Epoch() (EpochStats, error) {
	return d.EpochCtx(context.Background())
}

// EpochCtx is Epoch with cancellation checked between workload rounds, not
// just at the epoch boundary: a served session's shutdown must not stall
// behind a large in-flight epoch. An interrupted epoch returns the
// context's error without recording history; the rounds already run stay
// merged (the engine is a shorter, not corrupt, run).
//
// The epoch tail — trust updates, §3 coupling, and the EpochStats
// aggregates — costs O(dirty + settled-transitions + log n), not Θ(n): only
// users whose facet triple changed (or who have not yet reached their
// bitwise trust fixed point) are visited, and the means are maintained in
// fixed-shape summation trees. Every skip is provably a no-op (see
// TrustModel.UpdateScattered), so the results are bit-for-bit identical to
// the dense reference path at any shard count, topology, or resume point.
func (d *Dynamics) EpochCtx(ctx context.Context) (EpochStats, error) {
	n := d.cfg.Workload.NumPeers
	shards := d.eng.Shards()
	// 1. Install this epoch's coupling variables: the full vectors when an
	// intervention (or a restore) rewrote them wholesale, otherwise just the
	// cells the last coupling pass actually moved. Installs are in-place and
	// consume no randomness.
	if d.discAll {
		d.eng.InstallDisclosure(d.disclosure)
		d.discAll = false
	} else if len(d.discDirty) > 0 {
		d.eng.UpdateDisclosure(d.discDirty, d.disclosure)
	}
	d.discDirty = d.discDirty[:0]
	if d.epoch > 0 || d.cfg.Coupled {
		if d.honAll {
			d.eng.SetHonestOverride(d.honesty)
			d.honAll = false
		} else if len(d.honDirty) > 0 {
			d.eng.ApplyHonestyDelta(d.honDirty, d.honesty)
		}
		d.honDirty = d.honDirty[:0]
	}

	// 2. Run the workload. The epoch's bad-service delta comes from the
	// engine's cumulative counters, not a log rescan.
	before := d.eng.CumulativeStats()
	itersBefore := d.eng.ComputeIterations()
	if err := d.eng.RunContext(ctx, d.cfg.EpochRounds); err != nil {
		return EpochStats{}, err
	}
	after := d.eng.CumulativeStats()
	bad := after.BadService - before.BadService
	interactions := after.Interactions - before.Interactions

	// 3. Measure the shared reputation facet over the served set — the same
	// computation Assess performs, folded over the engine's incremental
	// accumulators into reusable buffers instead of n-sized slices.
	d.eng.BarrierCompute()
	scores := reputation.ScoresOf(d.eng.Mechanism())
	served := d.eng.ServedProviders()
	d.gtBuf, d.scBuf = d.gtBuf[:0], d.scBuf[:0]
	d.goodBuf, d.badBuf = d.goodBuf[:0], d.badBuf[:0]
	for _, p := range served {
		q := d.eng.ProviderQuality(p)
		d.gtBuf = append(d.gtBuf, q)
		d.scBuf = append(d.scBuf, scores[p])
		if q >= 0.5 {
			d.goodBuf = append(d.goodBuf, scores[p])
		} else {
			d.badBuf = append(d.badBuf, scores[p])
		}
	}
	tau := metrics.KendallTau(d.scBuf, d.gtBuf)
	tau01 := (tau + 1) / 2
	separation := metrics.AUC(d.goodBuf, d.badBuf)
	power := tau01
	if !math.IsNaN(separation) {
		power = (tau01 + separation) / 2
	}
	community := 1.0
	if ca, ok := d.eng.Mechanism().(reputation.CommunityAssessor); ok {
		community = ca.TrustworthyFraction()
	}
	repFacet := power * (0.5 + 0.5*community)

	// 4. Assemble the facet dirty set: users whose satisfaction EMA was
	// touched, owners whose privacy ledger state changed, and — when the
	// global reputation facet or the exposure scale moved — everyone.
	// The set is assembled identically on the dense reference path, so the
	// DirtyFacets counter is schedule-independent.
	repChanged := math.IsNaN(d.prevRepFacet) || repFacet != d.prevRepFacet
	d.prevRepFacet = repFacet
	scale := d.eng.LedgerScale()
	scaleChanged := scale != d.prevLedgerScale
	d.prevLedgerScale = scale
	d.facetDirty.Reset()
	satTouched := d.eng.SatisfactionTouched()
	for _, u := range satTouched {
		d.facetDirty.Mark(u)
	}
	// The ledger owns its dirty list and the refresh below resets it, so
	// snapshot it first.
	d.ledgerDirtyBuf = append(d.ledgerDirtyBuf[:0], d.eng.LedgerDirtyOwners()...)
	for _, u := range d.ledgerDirtyBuf {
		if u < n {
			d.facetDirty.Mark(u)
		}
	}
	allDirty := repChanged || scaleChanged || d.denseRef
	dirtyFacets := d.facetDirty.Len()
	if repChanged || scaleChanged {
		dirtyFacets = n
	}

	// Refresh the ledger's facet cache sequentially, then fold the touched
	// leaves into the aggregate trees (O(log n) each). A skipped leaf's
	// sources are untouched, so its recomputed value would be bit-identical.
	d.eng.RefreshPrivacyFacets()
	for _, u := range satTouched {
		d.satTree.Set(u, d.eng.UserSatisfaction(u))
	}
	d.eng.ResetSatisfactionTouched()
	if scaleChanged {
		for u := 0; u < n; u++ {
			d.privTree.Set(u, d.eng.PrivacyFacetOf(u))
		}
	} else {
		for _, u := range d.ledgerDirtyBuf {
			if u < n {
				d.privTree.Set(u, d.eng.PrivacyFacetOf(u))
			}
		}
	}

	// 5. Update trust for the candidates — facet-dirty users plus everyone
	// not yet at a bitwise fixed point — or for everyone on a dense epoch.
	// Facets are read on demand; no per-user []Facets is materialized.
	facetOf := func(u int) Facets {
		return Facets{
			Satisfaction: d.eng.UserSatisfaction(u),
			Reputation:   repFacet,
			Privacy:      d.eng.PrivacyFacetOf(u),
		}
	}
	if allDirty {
		if err := d.tm.UpdateScattered(nil, true, facetOf, shards); err != nil {
			return EpochStats{}, err
		}
	} else {
		d.candidates = mergeAscending(d.candidates[:0], d.facetDirty.Sorted(), d.tm.UnsettledIDs())
		if err := d.tm.UpdateScattered(d.candidates, false, facetOf, shards); err != nil {
			return EpochStats{}, err
		}
	}

	// 6. Close the §3 loops for the next epoch. Only visited users' trust
	// can have moved, so the sparse pass revisits exactly the update
	// candidates; interventions that change the feedback functions
	// themselves (couplingAll) force a full rewrite. Cells are written — and
	// queued for next epoch's delta install — only when their value actually
	// changes.
	base := d.baseDisclosure
	fullPass := d.couplingAll || allDirty
	d.couplingAll = false
	if d.cfg.Coupled {
		couple := func(u int, queue bool) {
			t := d.tm.Trust(u)
			// δ_u = δ_base · 2T (clamped): neutral trust keeps the base,
			// distrust withholds, strong trust discloses up to fully.
			delta := base * 2 * t
			if delta > 1 {
				delta = 1
			}
			if delta < 0 {
				delta = 0
			}
			if delta != d.disclosure[u] {
				d.disclosure[u] = delta
				d.discTree.Set(u, delta)
				if queue {
					d.discDirty = append(d.discDirty, u)
				}
			}
			h := d.cfg.BaseHonesty + (1-d.cfg.BaseHonesty)*t
			if h != d.honesty[u] {
				d.honesty[u] = h
				d.honTree.Set(u, h)
				if queue {
					d.honDirty = append(d.honDirty, u)
				}
			}
		}
		if fullPass {
			// A full pass may move most cells; install the whole vectors next
			// epoch instead of queueing deltas.
			for u := 0; u < n; u++ {
				couple(u, false)
			}
			d.discAll, d.honAll = true, true
			d.discDirty, d.honDirty = d.discDirty[:0], d.honDirty[:0]
		} else {
			for _, u := range d.candidates {
				couple(u, true)
			}
		}
	} else if fullPass {
		// Uncoupled, the variables are trust-independent constants; once
		// written they cannot drift, so only intervention epochs pass here.
		honConst := d.cfg.BaseHonesty + (1-d.cfg.BaseHonesty)*0.5
		for u := 0; u < n; u++ {
			if base != d.disclosure[u] {
				d.disclosure[u] = base
				d.discTree.Set(u, base)
			}
			if honConst != d.honesty[u] {
				d.honesty[u] = honConst
				d.honTree.Set(u, honConst)
			}
		}
		d.discAll, d.honAll = true, true
		d.discDirty, d.honDirty = d.discDirty[:0], d.honDirty[:0]
	}

	// 7. The epoch's aggregates come from the trees' roots: bitwise equal to
	// a dense recompute over the same fixed shape, O(1) to read.
	st := EpochStats{
		Epoch:        d.epoch,
		Trust:        d.tm.GlobalTrust(),
		Satisfaction: d.satTree.Mean(),
		Reputation:   repFacet,
		Privacy:      d.privTree.Mean(),
		Disclosure:   d.discTree.Mean(),
		Honesty:      d.honTree.Mean(),
		Tau:          tau,
		Community:    community,
		SettledUsers: d.tm.SettledCount(),
		DirtyFacets:  dirtyFacets,
	}
	st.MechIterations = int(d.eng.ComputeIterations() - itersBefore)
	if conv, ok := d.eng.Convergence(); ok {
		st.MechResidual = conv.Residual
	}
	if interactions > 0 {
		st.BadRate = float64(bad) / float64(interactions)
	}
	d.epoch++
	d.history = append(d.history, st)
	return st, nil
}

// mergeAscending merges two ascending int slices into dst without
// duplicates.
func mergeAscending(dst, a, b []int) []int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// Run executes n epochs.
func (d *Dynamics) Run(n int) ([]EpochStats, error) {
	for i := 0; i < n; i++ {
		if _, err := d.Epoch(); err != nil {
			return nil, err
		}
	}
	return d.History(), nil
}

// MapConfig configures the abstract trust/satisfaction iterated map used to
// verify §3's first claim ("the more a user trusts towards the system, the
// more she is satisfied, and the more she is satisfied, the more she
// trusts") without simulation noise.
type MapConfig struct {
	// Reputation and Privacy are held fixed.
	Reputation, Privacy float64
	// Weights combine the facets (default DefaultWeights).
	Weights Weights
	// Inertia smooths the trust update (default 0.5).
	Inertia float64
	// SatBase and SatGain define the satisfaction response
	// s = SatBase + SatGain·T (clamped to [0,1]); the positive gain is the
	// "more trust ⇒ more satisfaction" half of the loop.
	SatBase, SatGain float64
}

func (c MapConfig) withDefaults() MapConfig {
	if c.Weights == (Weights{}) {
		c.Weights = DefaultWeights()
	}
	if c.Inertia == 0 {
		c.Inertia = 0.5
	}
	if c.SatGain == 0 {
		c.SatGain = 0.8
	}
	if c.SatBase == 0 {
		c.SatBase = 0.1
	}
	return c
}

// RunIteratedMap iterates the two-way trust/satisfaction coupling from t0
// for `steps` steps and returns the trust trajectory (first element t0).
func RunIteratedMap(t0 float64, steps int, cfg MapConfig) ([]float64, error) {
	cfg = cfg.withDefaults()
	if t0 < 0 || t0 > 1 {
		return nil, fmt.Errorf("core: initial trust %v out of [0,1]", t0)
	}
	traj := make([]float64, 0, steps+1)
	traj = append(traj, t0)
	t := t0
	for k := 0; k < steps; k++ {
		s := cfg.SatBase + cfg.SatGain*t
		if s > 1 {
			s = 1
		}
		if s < 0 {
			s = 0
		}
		phi, err := Combine(Facets{Satisfaction: s, Reputation: cfg.Reputation, Privacy: cfg.Privacy}, cfg.Weights)
		if err != nil {
			return nil, err
		}
		t = cfg.Inertia*t + (1-cfg.Inertia)*phi
		traj = append(traj, t)
	}
	return traj, nil
}
