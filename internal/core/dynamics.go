package core

import (
	"context"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/reputation"
	"repro/internal/sim"
	"repro/internal/workload"
)

// DynamicsConfig configures the coupled-feedback simulation of §3 / Fig. 1.
type DynamicsConfig struct {
	// Workload is the scenario template. Its Disclosure field is the base
	// disclosure δ_base.
	Workload workload.Config
	// Weights combine the facets into trust (default DefaultWeights).
	Weights Weights
	// Inertia smooths trust across epochs (default 0.5). The zero value
	// means "default"; pass any negative value for an explicit zero
	// (memoryless trust).
	Inertia float64
	// BaseHonesty h0 is the truthful-reporting probability at zero trust;
	// honesty rises to 1 with full trust (default 0.3). The zero value
	// means "default"; pass any negative value for an explicit zero.
	BaseHonesty float64
	// EpochRounds is how many workload rounds one coupling epoch spans
	// (default 10).
	EpochRounds int
	// Coupled enables the §3 feedback loops. When false, disclosure and
	// honesty stay pinned at their base values (the E1 ablation).
	Coupled bool
	// ExposureScale normalizes ledger exposure (default 50).
	ExposureScale float64
}

func (c DynamicsConfig) withDefaults() DynamicsConfig {
	if c.Weights == (Weights{}) {
		c.Weights = DefaultWeights()
	}
	switch {
	case c.Inertia < 0:
		c.Inertia = 0
	case c.Inertia == 0:
		c.Inertia = 0.5
	}
	switch {
	case c.BaseHonesty < 0:
		c.BaseHonesty = 0
	case c.BaseHonesty == 0:
		c.BaseHonesty = 0.3
	}
	if c.EpochRounds <= 0 {
		c.EpochRounds = 10
	}
	if c.ExposureScale == 0 {
		c.ExposureScale = 50
	}
	return c
}

// EpochStats records the coupled system's state after one epoch.
type EpochStats struct {
	Epoch int `json:"epoch"`
	// Trust is the mean trust towards the system.
	Trust float64 `json:"trust"`
	// Satisfaction, Reputation, Privacy are the mean facet values.
	Satisfaction float64 `json:"satisfaction"`
	Reputation   float64 `json:"reputation"`
	Privacy      float64 `json:"privacy"`
	// Disclosure and Honesty are the mean realized coupling variables.
	Disclosure float64 `json:"disclosure"`
	Honesty    float64 `json:"honesty"`
	// BadRate is the epoch's bad-service rate.
	BadRate float64 `json:"bad_rate"`
	// Tau is the current reputation/ground-truth rank correlation.
	Tau float64 `json:"tau"`
	// Community is the mechanism's conclusion: the fraction of rated peers
	// it considers trustworthy.
	Community float64 `json:"community"`
	// MechIterations is how many solver iterations the mechanism spent this
	// epoch (periodic recomputes plus the measurement barrier); MechResidual
	// is the final L1 residual of its most recent iterative Compute. Both
	// are 0 for non-iterative mechanisms.
	MechIterations int     `json:"mech_iterations"`
	MechResidual   float64 `json:"mech_residual"`
}

// Dynamics runs the coupled three-facet system: each epoch measures the
// facets, updates every user's trust, and — when coupled — feeds trust back
// into disclosure willingness ("the less a user trusts towards the system,
// the less she discloses information") and honest contribution ("the more a
// user trusts towards the system, the more she contributes honestly").
type Dynamics struct {
	cfg            DynamicsConfig
	eng            *workload.Engine
	tm             *TrustModel
	ledger         *privacy.Ledger
	baseDisclosure float64
	disclosure     []float64
	honesty        []float64
	epoch          int
	history        []EpochStats
}

// NewDynamics builds the coupled system around a mechanism sized for
// cfg.Workload.NumPeers.
func NewDynamics(cfg DynamicsConfig, mech reputation.Mechanism) (*Dynamics, error) {
	cfg = cfg.withDefaults()
	eng, err := workload.NewEngine(cfg.Workload, mech)
	if err != nil {
		return nil, fmt.Errorf("core: dynamics: %w", err)
	}
	n := cfg.Workload.NumPeers
	tm, err := NewTrustModel(n, cfg.Weights, cfg.Inertia)
	if err != nil {
		return nil, err
	}
	ledger := privacy.NewLedger()
	eng.AttachLedger(ledger, cfg.ExposureScale)
	d := &Dynamics{
		cfg:        cfg,
		eng:        eng,
		tm:         tm,
		ledger:     ledger,
		disclosure: make([]float64, n),
		honesty:    make([]float64, n),
	}
	base := cfg.Workload.Disclosure
	switch {
	case base < 0: // the config's explicit-zero sentinel
		base = 0
	case base == 0: // config zero value means "default"; see SetBaseDisclosure
		base = 1
	}
	d.baseDisclosure = base
	for i := 0; i < n; i++ {
		d.disclosure[i] = base
		d.honesty[i] = 1 // first epoch: behaviour-class honesty as-is
	}
	return d, nil
}

// SetBaseDisclosure overrides δ_base, including a true zero (which the
// Config zero value cannot express). It resets every user's current
// disclosure to the new base.
func (d *Dynamics) SetBaseDisclosure(v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("core: base disclosure %v out of [0,1]", v)
	}
	d.baseDisclosure = v
	for i := range d.disclosure {
		d.disclosure[i] = v
	}
	return nil
}

// SetBaseHonesty overrides h0, the truthful-reporting probability at zero
// trust (a session intervention). It takes effect in the next epoch's
// coupling update.
func (d *Dynamics) SetBaseHonesty(h float64) error {
	if h < 0 || h > 1 {
		return fmt.Errorf("core: base honesty %v out of [0,1]", h)
	}
	d.cfg.BaseHonesty = h
	return nil
}

// SetCoupled enables or disables the §3 feedback loops mid-run (a session
// intervention).
func (d *Dynamics) SetCoupled(on bool) { d.cfg.Coupled = on }

// EpochIndex returns the index the next epoch will run as (equivalently, the
// number of completed epochs).
func (d *Dynamics) EpochIndex() int { return d.epoch }

// TrustModel exposes the trust state.
func (d *Dynamics) TrustModel() *TrustModel { return d.tm }

// Engine exposes the underlying workload engine.
func (d *Dynamics) Engine() *workload.Engine { return d.eng }

// History returns the recorded epochs.
func (d *Dynamics) History() []EpochStats {
	out := make([]EpochStats, len(d.history))
	copy(out, d.history)
	return out
}

// Epoch runs one coupling epoch and returns its stats. The phases between
// the workload barrier and the history append are sharded over the engine's
// worker count: trust updates and the coupling feedback write disjoint
// per-user state, so the fan-out preserves the pipeline's determinism
// contract (identical results for every shard count).
func (d *Dynamics) Epoch() (EpochStats, error) {
	return d.EpochCtx(context.Background())
}

// EpochCtx is Epoch with cancellation checked between workload rounds, not
// just at the epoch boundary: a served session's shutdown must not stall
// behind a large in-flight epoch. An interrupted epoch returns the
// context's error without recording history; the rounds already run stay
// merged (the engine is a shorter, not corrupt, run).
func (d *Dynamics) EpochCtx(ctx context.Context) (EpochStats, error) {
	n := d.cfg.Workload.NumPeers
	shards := d.eng.Shards()
	// 1. Install this epoch's coupling variables.
	d.eng.SetDisclosure(d.disclosure)
	if d.epoch > 0 || d.cfg.Coupled {
		d.eng.SetHonestOverride(d.honesty)
	}

	// 2. Run the workload. The epoch's bad-service delta comes from the
	// engine's cumulative counters, not a log rescan.
	before := d.eng.CumulativeStats()
	itersBefore := d.eng.ComputeIterations()
	if err := d.eng.RunContext(ctx, d.cfg.EpochRounds); err != nil {
		return EpochStats{}, err
	}
	after := d.eng.CumulativeStats()
	bad := after.BadService - before.BadService
	interactions := after.Interactions - before.Interactions

	// 3. Measure facets and update trust, batched per shard. Each user's
	// update touches only her own trust cell, so shards never contend.
	assess := Assess(d.eng)
	if err := d.tm.UpdateAll(assess.PerUser, shards); err != nil {
		return EpochStats{}, err
	}

	// 4. Close the §3 loops for the next epoch, sharded the same way.
	base := d.baseDisclosure
	if d.cfg.Coupled {
		sim.ForChunks(shards, n, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				t := d.tm.Trust(u)
				// δ_u = δ_base · 2T (clamped): neutral trust keeps the base,
				// distrust withholds, strong trust discloses up to fully.
				delta := base * 2 * t
				if delta > 1 {
					delta = 1
				}
				if delta < 0 {
					delta = 0
				}
				d.disclosure[u] = delta
				d.honesty[u] = d.cfg.BaseHonesty + (1-d.cfg.BaseHonesty)*t
			}
		})
	} else {
		for u := 0; u < n; u++ {
			d.disclosure[u] = base
			d.honesty[u] = d.cfg.BaseHonesty + (1-d.cfg.BaseHonesty)*0.5
		}
	}

	g := assess.GlobalFacets()
	st := EpochStats{
		Epoch:        d.epoch,
		Trust:        d.tm.GlobalTrust(),
		Satisfaction: g.Satisfaction,
		Reputation:   g.Reputation,
		Privacy:      g.Privacy,
		Disclosure:   metrics.Mean(d.disclosure),
		Honesty:      metrics.Mean(d.honesty),
		Tau:          assess.Tau,
		Community:    assess.Community,
	}
	st.MechIterations = int(d.eng.ComputeIterations() - itersBefore)
	if conv, ok := d.eng.Convergence(); ok {
		st.MechResidual = conv.Residual
	}
	if interactions > 0 {
		st.BadRate = float64(bad) / float64(interactions)
	}
	d.epoch++
	d.history = append(d.history, st)
	return st, nil
}

// Run executes n epochs.
func (d *Dynamics) Run(n int) ([]EpochStats, error) {
	for i := 0; i < n; i++ {
		if _, err := d.Epoch(); err != nil {
			return nil, err
		}
	}
	return d.History(), nil
}

// MapConfig configures the abstract trust/satisfaction iterated map used to
// verify §3's first claim ("the more a user trusts towards the system, the
// more she is satisfied, and the more she is satisfied, the more she
// trusts") without simulation noise.
type MapConfig struct {
	// Reputation and Privacy are held fixed.
	Reputation, Privacy float64
	// Weights combine the facets (default DefaultWeights).
	Weights Weights
	// Inertia smooths the trust update (default 0.5).
	Inertia float64
	// SatBase and SatGain define the satisfaction response
	// s = SatBase + SatGain·T (clamped to [0,1]); the positive gain is the
	// "more trust ⇒ more satisfaction" half of the loop.
	SatBase, SatGain float64
}

func (c MapConfig) withDefaults() MapConfig {
	if c.Weights == (Weights{}) {
		c.Weights = DefaultWeights()
	}
	if c.Inertia == 0 {
		c.Inertia = 0.5
	}
	if c.SatGain == 0 {
		c.SatGain = 0.8
	}
	if c.SatBase == 0 {
		c.SatBase = 0.1
	}
	return c
}

// RunIteratedMap iterates the two-way trust/satisfaction coupling from t0
// for `steps` steps and returns the trust trajectory (first element t0).
func RunIteratedMap(t0 float64, steps int, cfg MapConfig) ([]float64, error) {
	cfg = cfg.withDefaults()
	if t0 < 0 || t0 > 1 {
		return nil, fmt.Errorf("core: initial trust %v out of [0,1]", t0)
	}
	traj := make([]float64, 0, steps+1)
	traj = append(traj, t0)
	t := t0
	for k := 0; k < steps; k++ {
		s := cfg.SatBase + cfg.SatGain*t
		if s > 1 {
			s = 1
		}
		if s < 0 {
			s = 0
		}
		phi, err := Combine(Facets{Satisfaction: s, Reputation: cfg.Reputation, Privacy: cfg.Privacy}, cfg.Weights)
		if err != nil {
			return nil, err
		}
		t = cfg.Inertia*t + (1-cfg.Inertia)*phi
		traj = append(traj, t)
	}
	return traj, nil
}
