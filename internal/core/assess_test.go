package core

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/reputation"
	"repro/internal/reputation/eigentrust"
	"repro/internal/workload"
)

func assessEngine(t *testing.T, malicious float64, mech reputation.Mechanism, withLedger bool) *workload.Engine {
	t.Helper()
	eng, err := workload.NewEngine(workload.Config{
		Seed:     5,
		NumPeers: 40,
		Mix: adversary.Mix{
			Fractions: map[adversary.Class]float64{
				adversary.Honest:    1 - malicious,
				adversary.Malicious: malicious,
			},
			ForceHonest: []int{0, 1},
		},
		RecomputeEvery: 2,
	}, mech)
	if err != nil {
		t.Fatal(err)
	}
	if withLedger {
		eng.AttachLedger(privacy.NewLedger(), 50)
	}
	eng.Run(30)
	return eng
}

func TestAssessFacetsInRange(t *testing.T) {
	mech, err := eigentrust.New(eigentrust.Config{N: 40, Pretrusted: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	eng := assessEngine(t, 0.3, mech, true)
	a := Assess(eng)
	if len(a.PerUser) != 40 {
		t.Fatalf("per-user length = %d", len(a.PerUser))
	}
	for u, f := range a.PerUser {
		if !f.Valid() {
			t.Fatalf("user %d facets invalid: %+v", u, f)
		}
	}
	if a.Power < 0 || a.Power > 1 || math.IsNaN(a.Power) {
		t.Fatalf("power = %v", a.Power)
	}
	if a.Community < 0 || a.Community > 1 {
		t.Fatalf("community = %v", a.Community)
	}
	g := a.GlobalFacets()
	if !g.Valid() {
		t.Fatalf("global facets invalid: %+v", g)
	}
}

func TestAssessNoLedgerMeansFullPrivacy(t *testing.T) {
	mech, err := eigentrust.New(eigentrust.Config{N: 40, Pretrusted: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	eng := assessEngine(t, 0.2, mech, false)
	a := Assess(eng)
	for u, f := range a.PerUser {
		if f.Privacy != 1 {
			t.Fatalf("user %d privacy = %v without ledger", u, f.Privacy)
		}
	}
}

func TestAssessCommunityTracksHostility(t *testing.T) {
	mk := func() *eigentrust.Mechanism {
		m, err := eigentrust.New(eigentrust.Config{N: 40, Pretrusted: []int{0, 1}})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	healthy := Assess(assessEngine(t, 0.1, mk(), false))
	hostile := Assess(assessEngine(t, 0.7, mk(), false))
	if hostile.Community >= healthy.Community {
		t.Fatalf("hostile community %v not below healthy %v", hostile.Community, healthy.Community)
	}
	// The gap must be substantial. (The hostile fraction does not reach the
	// true 0.3: the lying majority partially poisons the conclusion, which
	// is itself a §2.2 phenomenon.)
	if healthy.Community-hostile.Community < 0.1 {
		t.Fatalf("community gap too small: healthy %v vs hostile %v", healthy.Community, hostile.Community)
	}
	if healthy.Community < 0.7 {
		t.Fatalf("10%%-malicious community fraction = %v, want >= 0.7", healthy.Community)
	}
}

func TestAssessNoneMechanismNeutral(t *testing.T) {
	eng := assessEngine(t, 0.3, reputation.NewNone(40), false)
	a := Assess(eng)
	// None draws no community conclusion: community defaults to 1.
	if a.Community != 1 {
		t.Fatalf("community = %v for none", a.Community)
	}
	// Identical scores: separation is the tau fallback and tau is 0.
	if a.Power < 0.2 || a.Power > 0.8 {
		t.Fatalf("none power = %v, want near neutral", a.Power)
	}
}

func TestGlobalFacetsEmptyAssessment(t *testing.T) {
	a := Assessment{Power: 0.7}
	g := a.GlobalFacets()
	if g.Satisfaction != 0.5 || g.Reputation != 0.7 || g.Privacy != 1 {
		t.Fatalf("empty global facets = %+v", g)
	}
}

func TestAUC(t *testing.T) {
	// The separation measure is metrics.AUC since the incremental-facet
	// refactor; keep pinning the semantics Assess depends on.
	if got := metrics.AUC([]float64{0.9, 0.8}, []float64{0.1, 0.2}); got != 1 {
		t.Fatalf("perfect separation auc = %v", got)
	}
	if got := metrics.AUC([]float64{0.1}, []float64{0.9}); got != 0 {
		t.Fatalf("inverted auc = %v", got)
	}
	if got := metrics.AUC([]float64{0.5}, []float64{0.5}); got != 0.5 {
		t.Fatalf("tied auc = %v", got)
	}
	if !math.IsNaN(metrics.AUC(nil, []float64{1})) || !math.IsNaN(metrics.AUC([]float64{1}, nil)) {
		t.Fatal("single-class auc not NaN")
	}
}
