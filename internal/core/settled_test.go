package core

import (
	"testing"
)

// settleModel drives a model to an all-settled state under constant facets.
// Inertia halves the distance to the fixed point each step, so the bitwise
// fixed point is reached well within the iteration bound.
func settleModel(t testing.TB, n int) (*TrustModel, func(int) Facets) {
	t.Helper()
	m, err := NewTrustModel(n, DefaultWeights(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	facetOf := func(int) Facets { return Facets{Satisfaction: 0.7, Reputation: 0.6, Privacy: 0.9} }
	for i := 0; i < 200 && m.SettledCount() < n; i++ {
		if err := m.UpdateScattered(nil, true, facetOf, 1); err != nil {
			t.Fatal(err)
		}
	}
	if m.SettledCount() != n {
		t.Fatalf("model did not settle: %d/%d", m.SettledCount(), n)
	}
	return m, facetOf
}

// TestSettledUpdateIsNoOp pins the skip's correctness argument directly: a
// settled user's fold is a provable no-op, so re-updating any candidate
// subset of a settled model changes nothing — trust, tree root, or flags.
func TestSettledUpdateIsNoOp(t *testing.T) {
	const n = 513
	m, facetOf := settleModel(t, n)
	before := append([]float64(nil), m.Trusts()...)
	root := m.GlobalTrust()
	cands := []int{0, 7, 250, 512}
	if err := m.UpdateScattered(cands, false, facetOf, 1); err != nil {
		t.Fatal(err)
	}
	for u, want := range before {
		if got := m.Trust(u); got != want {
			t.Fatalf("user %d trust moved %v -> %v on a settled update", u, want, got)
		}
	}
	if got := m.GlobalTrust(); got != root {
		t.Fatalf("global trust moved %v -> %v on a settled update", root, got)
	}
	if m.SettledCount() != n {
		t.Fatalf("settled count dropped to %d", m.SettledCount())
	}
}

// TestSettledTailZeroAllocs is the steady-state allocation guarantee for the
// trust-update phase: once every scratch buffer has been sized, a sparse
// update over settled candidates allocates nothing. (The remaining epoch
// tail allocation is the reputation measurement's O(served log served)
// ranking term, priced separately in DESIGN.md.)
func TestSettledTailZeroAllocs(t *testing.T) {
	const n = 1024
	m, facetOf := settleModel(t, n)
	cands := []int{3, 17, 900}
	allocs := testing.AllocsPerRun(100, func() {
		if err := m.UpdateScattered(cands, false, facetOf, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("settled sparse update allocates %v objects/op, want 0", allocs)
	}
}

// BenchmarkSettledTrustUpdate prices the skipped epoch tail: a sparse update
// over a handful of candidates in an otherwise settled 100k-user model.
func BenchmarkSettledTrustUpdate(b *testing.B) {
	const n = 100000
	m, facetOf := settleModel(b, n)
	cands := []int{3, 17, 900, 5000, 99999}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.UpdateScattered(cands, false, facetOf, 1); err != nil {
			b.Fatal(err)
		}
	}
}
