// Package core implements the paper's primary contribution: the correlated
// three-facet analysis of trust towards the system. A user's trust is a
// joint function of her satisfaction (§2.1), the power of the reputation
// mechanism (§2.2) and the respect of her privacy (§2.3); the facets are
// coupled by the feedback loops of §3; and §4's "generic metric" guides a
// designer to the settings that maximize trust under application
// constraints (the tradeoff explorer).
package core

import (
	"fmt"
	"math"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Facets holds one user's three facet values, each in [0,1].
type Facets struct {
	// Satisfaction is the long-run satisfaction of §2.1.
	Satisfaction float64 `json:"satisfaction"`
	// Reputation is the perceived power of the reputation mechanism
	// ("reliability, efficiency and most of all, consistency with the
	// reality", §4).
	Reputation float64 `json:"reputation"`
	// Privacy is the satisfaction in terms of privacy guarantees (§4).
	Privacy float64 `json:"privacy"`
}

// Valid reports whether all facets are within [0,1].
func (f Facets) Valid() bool {
	for _, v := range []float64{f.Satisfaction, f.Reputation, f.Privacy} {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return false
		}
	}
	return true
}

// Weights weighs the facets in the combined metric. Weights must be
// non-negative and not all zero.
type Weights struct {
	Satisfaction float64 `json:"satisfaction"`
	Reputation   float64 `json:"reputation"`
	Privacy      float64 `json:"privacy"`
}

// DefaultWeights balances the three facets equally.
func DefaultWeights() Weights { return Weights{1, 1, 1} }

// Validate checks the weights.
func (w Weights) Validate() error {
	if w.Satisfaction < 0 || w.Reputation < 0 || w.Privacy < 0 {
		return fmt.Errorf("core: negative facet weight %+v", w)
	}
	if w.Satisfaction+w.Reputation+w.Privacy == 0 {
		return fmt.Errorf("core: all facet weights are zero")
	}
	return nil
}

// Context is an applicative context (§4: the right settings "depend on the
// applicative context requirements"); each context weighs the facets
// differently.
type Context int

// Applicative contexts with preset weight profiles.
const (
	// Balanced weighs all facets equally.
	Balanced Context = iota + 1
	// PrivacyCritical models, e.g., a health-data social network.
	PrivacyCritical
	// PerformanceCritical models, e.g., a file-sharing community where
	// service quality dominates.
	PerformanceCritical
	// MarketplaceContext models a transaction market where the reputation
	// mechanism's power dominates.
	MarketplaceContext
)

// String returns the context name.
func (c Context) String() string {
	switch c {
	case Balanced:
		return "balanced"
	case PrivacyCritical:
		return "privacy-critical"
	case PerformanceCritical:
		return "performance-critical"
	case MarketplaceContext:
		return "marketplace"
	default:
		return fmt.Sprintf("context(%d)", int(c))
	}
}

// ContextWeights returns the preset weights for a context.
func ContextWeights(c Context) Weights {
	switch c {
	case PrivacyCritical:
		return Weights{Satisfaction: 1, Reputation: 0.5, Privacy: 3}
	case PerformanceCritical:
		return Weights{Satisfaction: 3, Reputation: 1, Privacy: 0.5}
	case MarketplaceContext:
		return Weights{Satisfaction: 1, Reputation: 3, Privacy: 1}
	default:
		return DefaultWeights()
	}
}

// Combine is the generic metric Φ of §4: the weighted geometric mean of the
// facets. The geometric form encodes the paper's key observation that the
// facets are complementary AND antagonistic: a zero on any weighted facet
// zeroes trust — deficits cannot be traded away — while balanced facets
// combine multiplicatively.
func Combine(f Facets, w Weights) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if !f.Valid() {
		return 0, fmt.Errorf("core: facets %+v out of [0,1]", f)
	}
	total := w.Satisfaction + w.Reputation + w.Privacy
	// 0^0 := 1 (a zero-weighted facet is ignored entirely).
	term := func(v, wt float64) float64 {
		if wt == 0 {
			return 0
		}
		if v == 0 {
			return math.Inf(-1)
		}
		return wt * math.Log(v)
	}
	logSum := term(f.Satisfaction, w.Satisfaction) +
		term(f.Reputation, w.Reputation) +
		term(f.Privacy, w.Privacy)
	if math.IsInf(logSum, -1) {
		return 0, nil
	}
	return math.Exp(logSum / total), nil
}

// CombineArithmetic is the ablation variant of the metric: a weighted
// arithmetic mean, which allows one facet to compensate for another's
// collapse. The ablation benchmark contrasts the two.
func CombineArithmetic(f Facets, w Weights) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if !f.Valid() {
		return 0, fmt.Errorf("core: facets %+v out of [0,1]", f)
	}
	total := w.Satisfaction + w.Reputation + w.Privacy
	return (w.Satisfaction*f.Satisfaction + w.Reputation*f.Reputation + w.Privacy*f.Privacy) / total, nil
}

// TrustModel tracks per-user trust towards the system, smoothed with
// inertia: trust is a durable judgment, not an instantaneous readout.
// Users may carry individual weight profiles (§3: "each user of the system
// can have her own perception of the level of trust she can have in the
// system").
type TrustModel struct {
	weights     Weights         //trustlint:derived configuration, re-established when the model is rebuilt from the scenario
	userWeights map[int]Weights //trustlint:derived configuration, re-established when the model is rebuilt from the scenario
	inertia     float64         //trustlint:derived configuration, re-established when the model is rebuilt from the scenario
	trust       []float64
	started     []bool
}

// NewTrustModel creates a model for n users. inertia in [0,1) is the weight
// of the previous trust value in each update (0 = memoryless).
func NewTrustModel(n int, w Weights, inertia float64) (*TrustModel, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: trust model needs n > 0, got %d", n)
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if inertia < 0 || inertia >= 1 {
		return nil, fmt.Errorf("core: inertia %v out of [0,1)", inertia)
	}
	m := &TrustModel{weights: w, inertia: inertia}
	m.trust = make([]float64, n)
	m.started = make([]bool, n)
	for i := range m.trust {
		m.trust[i] = 0.5 // initial neutral trust
	}
	return m, nil
}

// N returns the number of users tracked.
func (m *TrustModel) N() int { return len(m.trust) }

// SetUserWeights installs an individual weight profile for one user,
// overriding the model default (a privacy-sensitive user may weigh the
// privacy facet far higher than her peers).
func (m *TrustModel) SetUserWeights(user int, w Weights) error {
	if user < 0 || user >= len(m.trust) {
		return fmt.Errorf("core: user %d out of range [0,%d)", user, len(m.trust))
	}
	if err := w.Validate(); err != nil {
		return err
	}
	if m.userWeights == nil {
		m.userWeights = make(map[int]Weights)
	}
	m.userWeights[user] = w
	return nil
}

// UserWeights returns the weight profile in effect for a user: her
// individual profile when one is installed, the model default otherwise.
func (m *TrustModel) UserWeights(user int) Weights {
	return m.weightsFor(user)
}

func (m *TrustModel) weightsFor(user int) Weights {
	if w, ok := m.userWeights[user]; ok {
		return w
	}
	return m.weights
}

// Update folds a user's current facets into her trust and returns the new
// value.
func (m *TrustModel) Update(user int, f Facets) (float64, error) {
	if user < 0 || user >= len(m.trust) {
		return 0, fmt.Errorf("core: user %d out of range [0,%d)", user, len(m.trust))
	}
	instant, err := Combine(f, m.weightsFor(user))
	if err != nil {
		return 0, err
	}
	if !m.started[user] {
		m.trust[user] = instant
		m.started[user] = true
	} else {
		m.trust[user] = m.inertia*m.trust[user] + (1-m.inertia)*instant
	}
	return m.trust[user], nil
}

// UpdateAll folds every user's facets into her trust in one sharded pass:
// per[u] is user u's facets and must cover all users. Within each chunk the
// last Combine result is memoized, so runs of users with bit-identical
// facets (the common case: the reputation facet is global per epoch, and
// untouched users share default satisfaction and privacy) pay one geometric
// mean instead of one each. The memo only ever skips recomputing a pure
// function on equal inputs — and is bypassed for users carrying individual
// weight profiles — so the resulting trust vector is bit-for-bit identical
// to per-user Update calls, at any shard count.
func (m *TrustModel) UpdateAll(per []Facets, shards int) error {
	n := len(m.trust)
	if len(per) != n {
		return fmt.Errorf("core: UpdateAll got %d facet rows for %d users", len(per), n)
	}
	errs := make([]error, n)
	sim.ForChunks(shards, n, func(lo, hi int) {
		var lastF Facets
		var lastInstant float64
		lastOK := false
		for u := lo; u < hi; u++ {
			var instant float64
			if _, individual := m.userWeights[u]; !individual && lastOK && per[u] == lastF {
				instant = lastInstant
			} else {
				var err error
				instant, err = Combine(per[u], m.weightsFor(u))
				if err != nil {
					errs[u] = err
					lastOK = false
					continue
				}
				if !individual {
					lastF, lastInstant, lastOK = per[u], instant, true
				}
			}
			if !m.started[u] {
				m.trust[u] = instant
				m.started[u] = true
			} else {
				m.trust[u] = m.inertia*m.trust[u] + (1-m.inertia)*instant
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Trust returns a user's current trust (0.5 before any update).
func (m *TrustModel) Trust(user int) float64 {
	if user < 0 || user >= len(m.trust) {
		return 0
	}
	return m.trust[user]
}

// Trusts returns all users' trust values.
func (m *TrustModel) Trusts() []float64 {
	out := make([]float64, len(m.trust))
	copy(out, m.trust)
	return out
}

// GlobalTrust is the system-level trust: the mean over users (§3
// distinguishes each user's perception from the system "considered globally
// as trusted or not").
func (m *TrustModel) GlobalTrust() float64 {
	return metrics.Mean(m.trust)
}

// SystemTrusted reports whether the system counts as globally trusted:
// the q-quantile of user trust reaches the threshold — i.e. at least
// (1−q) of users trust the system at `threshold` or more.
func (m *TrustModel) SystemTrusted(threshold, q float64) bool {
	return metrics.Quantile(m.trust, q) >= threshold
}
