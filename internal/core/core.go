// Package core implements the paper's primary contribution: the correlated
// three-facet analysis of trust towards the system. A user's trust is a
// joint function of her satisfaction (§2.1), the power of the reputation
// mechanism (§2.2) and the respect of her privacy (§2.3); the facets are
// coupled by the feedback loops of §3; and §4's "generic metric" guides a
// designer to the settings that maximize trust under application
// constraints (the tradeoff explorer).
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Facets holds one user's three facet values, each in [0,1].
type Facets struct {
	// Satisfaction is the long-run satisfaction of §2.1.
	Satisfaction float64 `json:"satisfaction"`
	// Reputation is the perceived power of the reputation mechanism
	// ("reliability, efficiency and most of all, consistency with the
	// reality", §4).
	Reputation float64 `json:"reputation"`
	// Privacy is the satisfaction in terms of privacy guarantees (§4).
	Privacy float64 `json:"privacy"`
}

// Valid reports whether all facets are within [0,1].
func (f Facets) Valid() bool {
	for _, v := range []float64{f.Satisfaction, f.Reputation, f.Privacy} {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return false
		}
	}
	return true
}

// Weights weighs the facets in the combined metric. Weights must be
// non-negative and not all zero.
type Weights struct {
	Satisfaction float64 `json:"satisfaction"`
	Reputation   float64 `json:"reputation"`
	Privacy      float64 `json:"privacy"`
}

// DefaultWeights balances the three facets equally.
func DefaultWeights() Weights { return Weights{1, 1, 1} }

// Validate checks the weights.
func (w Weights) Validate() error {
	if w.Satisfaction < 0 || w.Reputation < 0 || w.Privacy < 0 {
		return fmt.Errorf("core: negative facet weight %+v", w)
	}
	if w.Satisfaction+w.Reputation+w.Privacy == 0 {
		return fmt.Errorf("core: all facet weights are zero")
	}
	return nil
}

// Context is an applicative context (§4: the right settings "depend on the
// applicative context requirements"); each context weighs the facets
// differently.
type Context int

// Applicative contexts with preset weight profiles.
const (
	// Balanced weighs all facets equally.
	Balanced Context = iota + 1
	// PrivacyCritical models, e.g., a health-data social network.
	PrivacyCritical
	// PerformanceCritical models, e.g., a file-sharing community where
	// service quality dominates.
	PerformanceCritical
	// MarketplaceContext models a transaction market where the reputation
	// mechanism's power dominates.
	MarketplaceContext
)

// String returns the context name.
func (c Context) String() string {
	switch c {
	case Balanced:
		return "balanced"
	case PrivacyCritical:
		return "privacy-critical"
	case PerformanceCritical:
		return "performance-critical"
	case MarketplaceContext:
		return "marketplace"
	default:
		return fmt.Sprintf("context(%d)", int(c))
	}
}

// ContextWeights returns the preset weights for a context.
func ContextWeights(c Context) Weights {
	switch c {
	case PrivacyCritical:
		return Weights{Satisfaction: 1, Reputation: 0.5, Privacy: 3}
	case PerformanceCritical:
		return Weights{Satisfaction: 3, Reputation: 1, Privacy: 0.5}
	case MarketplaceContext:
		return Weights{Satisfaction: 1, Reputation: 3, Privacy: 1}
	default:
		return DefaultWeights()
	}
}

// Combine is the generic metric Φ of §4: the weighted geometric mean of the
// facets. The geometric form encodes the paper's key observation that the
// facets are complementary AND antagonistic: a zero on any weighted facet
// zeroes trust — deficits cannot be traded away — while balanced facets
// combine multiplicatively.
func Combine(f Facets, w Weights) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if !f.Valid() {
		return 0, fmt.Errorf("core: facets %+v out of [0,1]", f)
	}
	total := w.Satisfaction + w.Reputation + w.Privacy
	// 0^0 := 1 (a zero-weighted facet is ignored entirely).
	term := func(v, wt float64) float64 {
		if wt == 0 {
			return 0
		}
		if v == 0 {
			return math.Inf(-1)
		}
		return wt * math.Log(v)
	}
	logSum := term(f.Satisfaction, w.Satisfaction) +
		term(f.Reputation, w.Reputation) +
		term(f.Privacy, w.Privacy)
	if math.IsInf(logSum, -1) {
		return 0, nil
	}
	return math.Exp(logSum / total), nil
}

// CombineArithmetic is the ablation variant of the metric: a weighted
// arithmetic mean, which allows one facet to compensate for another's
// collapse. The ablation benchmark contrasts the two.
func CombineArithmetic(f Facets, w Weights) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if !f.Valid() {
		return 0, fmt.Errorf("core: facets %+v out of [0,1]", f)
	}
	total := w.Satisfaction + w.Reputation + w.Privacy
	return (w.Satisfaction*f.Satisfaction + w.Reputation*f.Reputation + w.Privacy*f.Privacy) / total, nil
}

// TrustModel tracks per-user trust towards the system, smoothed with
// inertia: trust is a durable judgment, not an instantaneous readout.
// Users may carry individual weight profiles (§3: "each user of the system
// can have her own perception of the level of trust she can have in the
// system").
type TrustModel struct {
	weights     Weights         //trustlint:derived configuration, re-established when the model is rebuilt from the scenario
	userWeights map[int]Weights //trustlint:derived configuration, re-established when the model is rebuilt from the scenario
	inertia     float64         //trustlint:derived configuration, re-established when the model is rebuilt from the scenario
	trust       []float64
	started     []bool
	// settled[u] records that u's trust reached its bitwise fixed point under
	// inertia at her last update: inertia*t + (1-inertia)*Combine(f) == t
	// exactly. As long as u's facets do not change, re-updating her is a
	// provable no-op, so the sparse epoch tail may skip her entirely.
	settled []bool
	// settledCount / unsettled are indexes over settled, maintained by every
	// update path (and rebuilt by SetState) so the epoch tail can iterate the
	// not-yet-converged users without a Θ(n) scan.
	settledCount int              //trustlint:derived count of set bits in settled, recomputed on SetState
	unsettled    []int            //trustlint:derived ascending ids with settled[u]==false, rebuilt on SetState
	tree         *metrics.SumTree //trustlint:derived fixed-shape sum of trust, rebuilt from it on SetState
	// Reusable scratch for UpdateScattered, so settled-regime epoch
	// boundaries allocate nothing.
	errScratch     []error //trustlint:derived per-call scratch, dead between calls
	settledScratch []bool  //trustlint:derived per-call scratch, dead between calls
}

// NewTrustModel creates a model for n users. inertia in [0,1) is the weight
// of the previous trust value in each update (0 = memoryless).
func NewTrustModel(n int, w Weights, inertia float64) (*TrustModel, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: trust model needs n > 0, got %d", n)
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if inertia < 0 || inertia >= 1 {
		return nil, fmt.Errorf("core: inertia %v out of [0,1)", inertia)
	}
	m := &TrustModel{weights: w, inertia: inertia}
	m.trust = make([]float64, n)
	m.started = make([]bool, n)
	m.settled = make([]bool, n)
	m.unsettled = make([]int, n)
	for i := range m.trust {
		m.trust[i] = 0.5 // initial neutral trust
		m.unsettled[i] = i
	}
	m.tree = metrics.NewSumTree(n)
	m.tree.FillUniform(0.5)
	return m, nil
}

// N returns the number of users tracked.
func (m *TrustModel) N() int { return len(m.trust) }

// SetUserWeights installs an individual weight profile for one user,
// overriding the model default (a privacy-sensitive user may weigh the
// privacy facet far higher than her peers).
func (m *TrustModel) SetUserWeights(user int, w Weights) error {
	if user < 0 || user >= len(m.trust) {
		return fmt.Errorf("core: user %d out of range [0,%d)", user, len(m.trust))
	}
	if err := w.Validate(); err != nil {
		return err
	}
	if m.userWeights == nil {
		m.userWeights = make(map[int]Weights)
	}
	m.userWeights[user] = w
	// New weights change the user's fixed point: her settled proof no longer
	// holds, so she must rejoin the worklist until she converges again.
	m.unsettle(user)
	return nil
}

// unsettle drops user from the settled set, inserting her back into the
// ascending unsettled worklist.
func (m *TrustModel) unsettle(user int) {
	if !m.settled[user] {
		return
	}
	m.settled[user] = false
	m.settledCount--
	at := sort.SearchInts(m.unsettled, user)
	m.unsettled = append(m.unsettled, 0)
	copy(m.unsettled[at+1:], m.unsettled[at:])
	m.unsettled[at] = user
}

// UserWeights returns the weight profile in effect for a user: her
// individual profile when one is installed, the model default otherwise.
func (m *TrustModel) UserWeights(user int) Weights {
	return m.weightsFor(user)
}

func (m *TrustModel) weightsFor(user int) Weights {
	if w, ok := m.userWeights[user]; ok {
		return w
	}
	return m.weights
}

// fold computes user u's next trust value from the instant combination and
// reports whether the result is at its bitwise fixed point under inertia
// (re-folding the same instant would reproduce it exactly).
func (m *TrustModel) fold(u int, instant float64) (t float64, settled bool) {
	if !m.started[u] {
		t = instant
	} else {
		t = m.inertia*m.trust[u] + (1-m.inertia)*instant
	}
	return t, m.inertia*t+(1-m.inertia)*instant == t
}

// Update folds a user's current facets into her trust and returns the new
// value.
func (m *TrustModel) Update(user int, f Facets) (float64, error) {
	if user < 0 || user >= len(m.trust) {
		return 0, fmt.Errorf("core: user %d out of range [0,%d)", user, len(m.trust))
	}
	instant, err := Combine(f, m.weightsFor(user))
	if err != nil {
		return 0, err
	}
	t, settledNow := m.fold(user, instant)
	m.trust[user] = t
	m.started[user] = true
	m.tree.Set(user, t)
	switch {
	case settledNow && !m.settled[user]:
		m.settled[user] = true
		m.settledCount++
		at := sort.SearchInts(m.unsettled, user)
		if at < len(m.unsettled) && m.unsettled[at] == user {
			m.unsettled = append(m.unsettled[:at], m.unsettled[at+1:]...)
		}
	case !settledNow:
		m.unsettle(user)
	}
	return m.trust[user], nil
}

// UpdateAll folds every user's facets into her trust in one sharded pass:
// per[u] is user u's facets and must cover all users. Within each chunk the
// last Combine result is memoized, so runs of users with bit-identical
// facets (the common case: the reputation facet is global per epoch, and
// untouched users share default satisfaction and privacy) pay one geometric
// mean instead of one each. The memo only ever skips recomputing a pure
// function on equal inputs — and is bypassed for users carrying individual
// weight profiles — so the resulting trust vector is bit-for-bit identical
// to per-user Update calls, at any shard count.
func (m *TrustModel) UpdateAll(per []Facets, shards int) error {
	n := len(m.trust)
	if len(per) != n {
		return fmt.Errorf("core: UpdateAll got %d facet rows for %d users", len(per), n)
	}
	return m.UpdateScattered(nil, true, func(u int) Facets { return per[u] }, shards)
}

// UpdateScattered is the sparse trust-update pass behind the sub-linear
// epoch tail. It folds current facets into trust for a candidate subset:
// the ascending id list cands, or every user when all is set (cands is then
// ignored). facetOf returns a user's current facet triple and must be safe
// for concurrent calls; it is consulted only for visited users.
//
// Skipping a non-candidate is a provable no-op whenever candidates cover
// (a) every user whose facet triple changed since her last update and
// (b) every user not bitwise settled (see TrustModel.settled): a skipped
// user is then settled with unchanged facets, so Combine — a pure function —
// would reproduce her last instant value, and the settled fixed point makes
// the inertia fold return her trust unchanged, bit for bit. The dense pass
// (all=true) therefore produces an identical trust vector, tree, and
// settled state; it just visits users the sparse pass proved inert.
//
// The parallel phase writes only per-user cells (trust, started, and the
// settled scratch); the tree, the settled index, and the count are folded
// in a sequential pass, preserving the pipeline's any-shard-count
// determinism.
func (m *TrustModel) UpdateScattered(cands []int, all bool, facetOf func(int) Facets, shards int) error {
	n := len(m.trust)
	count := len(cands)
	if all {
		count = n
	}
	if count == 0 {
		return nil
	}
	errs := m.growErr(count)
	newSettled := m.growSettled(count)
	// Small batches run sequentially as a direct call: fanning out is slower
	// than the work, and the steady-state (settled-regime) epoch tail must
	// not allocate — the ForChunks closure below escapes to the heap.
	if shards <= 1 || count < sparseSeqCutoff {
		m.updateChunk(cands, all, facetOf, errs, newSettled, 0, count)
	} else {
		sim.ForChunks(shards, count, func(lo, hi int) {
			m.updateChunk(cands, all, facetOf, errs, newSettled, lo, hi)
		})
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Sequential fold: aggregate tree, settled flags/count, and the rebuilt
	// unsettled worklist. Every currently-unsettled user is a candidate (the
	// caller's contract above), so filtering the visited set rebuilds the
	// whole worklist.
	m.unsettled = m.unsettled[:0]
	for k := 0; k < count; k++ {
		u := k
		if !all {
			u = cands[k]
		}
		m.tree.Set(u, m.trust[u])
		if on := newSettled[k]; on != m.settled[u] {
			m.settled[u] = on
			if on {
				m.settledCount++
			} else {
				m.settledCount--
			}
		}
		if !m.settled[u] {
			m.unsettled = append(m.unsettled, u)
		}
	}
	return nil
}

// sparseSeqCutoff is the candidate count below which UpdateScattered skips
// the parallel fan-out. Purely a scheduling decision: results are
// bit-identical either way (the chunk memo only reuses a pure function's
// result on equal inputs).
const sparseSeqCutoff = 2048

// updateChunk folds facets into trust for candidates [lo, hi). It writes
// only per-user cells (trust, started) and per-candidate scratch (errs,
// newSettled), so disjoint ranges are safe to run concurrently. Within the
// chunk the last Combine result is memoized for users without individual
// weight profiles (see UpdateAll).
func (m *TrustModel) updateChunk(cands []int, all bool, facetOf func(int) Facets, errs []error, newSettled []bool, lo, hi int) {
	var lastF Facets
	var lastInstant float64
	lastOK := false
	for k := lo; k < hi; k++ {
		u := k
		if !all {
			u = cands[k]
		}
		f := facetOf(u)
		var instant float64
		if _, individual := m.userWeights[u]; !individual && lastOK && f == lastF {
			instant = lastInstant
		} else {
			var err error
			instant, err = Combine(f, m.weightsFor(u))
			if err != nil {
				errs[k] = err
				lastOK = false
				continue
			}
			if !individual {
				lastF, lastInstant, lastOK = f, instant, true
			}
		}
		t, settledNow := m.fold(u, instant)
		m.trust[u] = t
		m.started[u] = true
		newSettled[k] = settledNow
	}
}

func (m *TrustModel) growErr(count int) []error {
	if cap(m.errScratch) < count {
		m.errScratch = make([]error, count)
	}
	errs := m.errScratch[:count]
	for i := range errs {
		errs[i] = nil
	}
	return errs
}

func (m *TrustModel) growSettled(count int) []bool {
	if cap(m.settledScratch) < count {
		m.settledScratch = make([]bool, count)
	}
	return m.settledScratch[:count]
}

// SettledCount returns how many users are currently at their bitwise trust
// fixed point.
func (m *TrustModel) SettledCount() int { return m.settledCount }

// Settled reports whether one user is at her bitwise trust fixed point.
func (m *TrustModel) Settled(user int) bool {
	return user >= 0 && user < len(m.settled) && m.settled[user]
}

// UnsettledIDs returns the ascending ids of users not yet settled. The slice
// is owned by the model and valid until the next update.
func (m *TrustModel) UnsettledIDs() []int { return m.unsettled }

// Trust returns a user's current trust (0.5 before any update).
func (m *TrustModel) Trust(user int) float64 {
	if user < 0 || user >= len(m.trust) {
		return 0
	}
	return m.trust[user]
}

// Trusts returns all users' trust values.
func (m *TrustModel) Trusts() []float64 {
	out := make([]float64, len(m.trust))
	copy(out, m.trust)
	return out
}

// GlobalTrust is the system-level trust: the mean over users (§3
// distinguishes each user's perception from the system "considered globally
// as trusted or not"). It reads the fixed-shape summation tree maintained by
// every update path, so it is O(1) and bit-stable across sparse and dense
// update schedules.
func (m *TrustModel) GlobalTrust() float64 {
	return m.tree.Mean()
}

// SystemTrusted reports whether the system counts as globally trusted:
// the q-quantile of user trust reaches the threshold — i.e. at least
// (1−q) of users trust the system at `threshold` or more.
func (m *TrustModel) SystemTrusted(threshold, q float64) bool {
	return metrics.Quantile(m.trust, q) >= threshold
}
