package core

import (
	"runtime"
	"testing"

	"repro/internal/adversary"
	"repro/internal/reputation/eigentrust"
	"repro/internal/workload"
)

func mixFor(malicious float64) adversary.Mix {
	return adversary.Mix{Fractions: map[adversary.Class]float64{
		adversary.Honest:    1 - malicious,
		adversary.Malicious: malicious,
	}}
}

// TestDynamicsShardInvariance extends the pipeline's determinism contract
// through the epoch barrier: coupled dynamics — facet measurement, batched
// trust updates and the §3 feedback — produce identical EpochStats for
// every shard count.
func TestDynamicsShardInvariance(t *testing.T) {
	run := func(shards int) []EpochStats {
		cfg := dynConfig(true, 0.3)
		cfg.Workload.Shards = shards
		mech, err := eigentrust.New(eigentrust.Config{N: 40, Pretrusted: []int{0, 1}})
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDynamics(cfg, mech)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := d.Run(6)
		if err != nil {
			t.Fatal(err)
		}
		return hist
	}
	ref := run(1)
	for _, k := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got := run(k)
		if len(got) != len(ref) {
			t.Fatalf("shards=%d: %d epochs, want %d", k, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("shards=%d: epoch %d\n%+v\n!=\n%+v", k, i, got[i], ref[i])
			}
		}
	}
}

// TestAssessShardInvariance pins per-user facet measurement across shard
// counts, ledger included.
func TestAssessShardInvariance(t *testing.T) {
	measure := func(shards int) Assessment {
		mech, err := eigentrust.New(eigentrust.Config{N: 50, Pretrusted: []int{0, 1}})
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDynamics(DynamicsConfig{
			Workload: workload.Config{
				Seed: 77, NumPeers: 50, Mix: mixFor(0.3),
				RecomputeEvery: 2, Shards: shards,
			},
			Coupled:     true,
			EpochRounds: 6,
		}, mech)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Run(3); err != nil {
			t.Fatal(err)
		}
		return Assess(d.Engine())
	}
	ref := measure(1)
	got := measure(4)
	if len(got.PerUser) != len(ref.PerUser) {
		t.Fatal("per-user length diverged")
	}
	for u := range ref.PerUser {
		if got.PerUser[u] != ref.PerUser[u] {
			t.Fatalf("user %d facets %+v != %+v", u, got.PerUser[u], ref.PerUser[u])
		}
	}
	if got.Power != ref.Power || got.Tau != ref.Tau ||
		got.Separation != ref.Separation || got.Community != ref.Community {
		t.Fatalf("assessment diverged:\n%+v\n%+v", got, ref)
	}
}
