package core

import (
	"math"

	"repro/internal/metrics"
	"repro/internal/reputation"
	"repro/internal/workload"
)

// Assessment carries the per-user facets extracted from a running scenario
// plus the shared reputation-power measurement.
type Assessment struct {
	PerUser []Facets
	// Power is the reputation facet shared by every user (the mechanism is
	// a system-wide artifact): measured power damped by the community
	// conclusion.
	Power float64
	// Tau and Separation are Power's two components: rank consistency with
	// realized behaviour, and good/bad discrimination (AUC).
	Tau        float64
	Separation float64
	// Community is the mechanism's conclusion about the population: the
	// fraction of rated peers it considers trustworthy (1 for mechanisms
	// that draw no such conclusion). §3: "the set of those levels may
	// indicate the trustworthy of the global system".
	Community float64
}

// Assess extracts all three facets from a workload engine.
//
//   - Satisfaction: the user's long-run satisfaction, averaged over her
//     consumer and provider roles (§2.1).
//   - Reputation: the mechanism's power — the mean of (a) rank consistency
//     with realized behaviour (Kendall tau mapped to [0,1]) and (b) the
//     probability the mechanism ranks a well-behaved peer above a
//     misbehaved one (AUC over served peers). Both are calibration-free:
//     mechanisms report scores on incomparable scales (§4: "consistency
//     with the reality").
//   - Privacy: the ledger-backed privacy facet (policy respect × retained
//     information), 1 when no ledger is attached.
func Assess(e *workload.Engine) Assessment {
	sum := e.Summarize()

	// Separation (AUC) over served peers: good = realized quality >= 0.5.
	// Ground truth and the served set come from the engine's incremental
	// accumulators; the AUC is the O(m log m) rank-sum form.
	gt, served := e.GroundTruth()
	n := len(gt)
	// Read-only fast path: the facet loop only reads score values.
	scores := reputation.ScoresOf(e.Mechanism())
	var goodScores, badScores []float64
	for p, ok := range served {
		if !ok {
			continue
		}
		if gt[p] >= 0.5 {
			goodScores = append(goodScores, scores[p])
		} else {
			badScores = append(badScores, scores[p])
		}
	}
	tau01 := (sum.Tau + 1) / 2
	separation := metrics.AUC(goodScores, badScores)
	power := tau01
	if !math.IsNaN(separation) {
		power = (tau01 + separation) / 2
	} else {
		separation = tau01
	}

	// §3 claim 4: an efficient mechanism that concludes the majority is
	// untrustworthy lowers trust towards the system. The reputation facet
	// is the mechanism's power damped by its community conclusion.
	community := 1.0
	if ca, ok := e.Mechanism().(reputation.CommunityAssessor); ok {
		community = ca.TrustworthyFraction()
	}
	repFacet := power * (0.5 + 0.5*community)

	cons := e.ConsumerSatisfactions()
	prov := e.ProviderSatisfactions()
	priv := e.PrivacyFacets()
	per := make([]Facets, n)
	for u := 0; u < n; u++ {
		per[u] = Facets{
			Satisfaction: (cons[u] + prov[u]) / 2,
			Reputation:   repFacet,
			Privacy:      priv[u],
		}
	}
	return Assessment{PerUser: per, Power: repFacet, Tau: sum.Tau, Separation: separation, Community: community}
}

// GlobalFacets averages an assessment into a single Facets value. The means
// are folded directly over PerUser — left to right, exactly as metrics.Mean
// folds a slice — instead of materializing two n-sized scratch slices per
// call.
func (a Assessment) GlobalFacets() Facets {
	if len(a.PerUser) == 0 {
		return Facets{Satisfaction: 0.5, Reputation: a.Power, Privacy: 1}
	}
	var s, p float64
	for _, f := range a.PerUser {
		s += f.Satisfaction
		p += f.Privacy
	}
	n := float64(len(a.PerUser))
	return Facets{
		Satisfaction: s / n,
		Reputation:   a.Power,
		Privacy:      p / n,
	}
}
