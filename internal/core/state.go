package core

import (
	"fmt"

	"repro/internal/privacy"
	"repro/internal/workload"
)

// TrustModelState is the serializable mutable state of a TrustModel. Weights
// (default and per-user) are configuration, re-established when the model is
// rebuilt from the same scenario settings.
type TrustModelState struct {
	Trust   []float64
	Started []bool
	// Settled carries the per-user fixed-point flags so a resumed run skips
	// exactly the users the uninterrupted run would skip. Nil (a snapshot
	// predating the settled set) restores as all-unsettled, which is always
	// valid: the first dense pass re-derives the flags.
	Settled []bool
}

// State captures the model's mutable state.
func (m *TrustModel) State() TrustModelState {
	return TrustModelState{
		Trust:   append([]float64(nil), m.trust...),
		Started: append([]bool(nil), m.started...),
		Settled: append([]bool(nil), m.settled...),
	}
}

// SetState restores a previously captured state of the same population size.
// The settled count, the unsettled worklist, and the summation tree are
// derived indexes over the restored vectors and are rebuilt here.
func (m *TrustModel) SetState(st TrustModelState) error {
	if len(st.Trust) != len(m.trust) || len(st.Started) != len(m.started) {
		return fmt.Errorf("core: trust-model state for %d users, want %d", len(st.Trust), len(m.trust))
	}
	if st.Settled != nil && len(st.Settled) != len(m.settled) {
		return fmt.Errorf("core: trust-model settled flags for %d users, want %d", len(st.Settled), len(m.settled))
	}
	copy(m.trust, st.Trust)
	copy(m.started, st.Started)
	if st.Settled != nil {
		copy(m.settled, st.Settled)
	} else {
		for i := range m.settled {
			m.settled[i] = false
		}
	}
	m.settledCount = 0
	m.unsettled = m.unsettled[:0]
	for u, on := range m.settled {
		if on {
			m.settledCount++
		} else {
			m.unsettled = append(m.unsettled, u)
		}
	}
	m.tree.Fill(m.trust)
	return nil
}

// DynamicsState is the serializable mutable state of the whole coupled
// system: the workload engine (with its random streams and mechanism), the
// privacy ledger, the trust model, the §3 coupling variables, and the
// recorded epoch history. Restoring it into a Dynamics built from identical
// configuration makes the continuation bit-for-bit identical to an
// uninterrupted run.
type DynamicsState struct {
	Engine         workload.EngineState
	Ledger         privacy.LedgerState
	Trust          TrustModelState
	BaseDisclosure float64
	// BaseHonesty and Coupled are captured because session interventions can
	// change them mid-run.
	BaseHonesty float64
	Coupled     bool
	Disclosure  []float64
	Honesty     []float64
	Epoch       int
	History     []EpochStats
	// PrevRepFacet is the last epoch's reputation facet, used to detect
	// rep-facet movement (which dirties every user). Old snapshots decode it
	// as 0, which forces a dense epoch after restore — safe, merely not
	// sparse. CouplingAll records a pending full coupling rewrite; old
	// snapshots decode it as false, also safe, because pre-sparse code
	// maintained the coupling invariant by writing every cell every epoch.
	PrevRepFacet float64
	CouplingAll  bool
}

// State captures the coupled system's mutable state.
func (d *Dynamics) State() (DynamicsState, error) {
	est, err := d.eng.State()
	if err != nil {
		return DynamicsState{}, fmt.Errorf("core: dynamics state: %w", err)
	}
	return DynamicsState{
		Engine:         est,
		Ledger:         d.ledger.State(),
		Trust:          d.tm.State(),
		BaseDisclosure: d.baseDisclosure,
		BaseHonesty:    d.cfg.BaseHonesty,
		Coupled:        d.cfg.Coupled,
		Disclosure:     append([]float64(nil), d.disclosure...),
		Honesty:        append([]float64(nil), d.honesty...),
		Epoch:          d.epoch,
		History:        append([]EpochStats(nil), d.history...),
		PrevRepFacet:   d.prevRepFacet,
		CouplingAll:    d.couplingAll,
	}, nil
}

// Restore overwrites the coupled system's mutable state with a captured one.
// The Dynamics must have been built from the identical configuration (shard
// count excepted).
func (d *Dynamics) Restore(st DynamicsState) error {
	n := d.cfg.Workload.NumPeers
	if len(st.Disclosure) != n || len(st.Honesty) != n {
		return fmt.Errorf("core: snapshot coupling vectors do not match %d users", n)
	}
	if st.BaseDisclosure < 0 || st.BaseDisclosure > 1 {
		return fmt.Errorf("core: snapshot base disclosure %v out of [0,1]", st.BaseDisclosure)
	}
	if st.BaseHonesty < 0 || st.BaseHonesty > 1 {
		return fmt.Errorf("core: snapshot base honesty %v out of [0,1]", st.BaseHonesty)
	}
	if err := d.eng.Restore(st.Engine); err != nil {
		return fmt.Errorf("core: restore engine: %w", err)
	}
	// The ledger is restored in place: the workload engine and this Dynamics
	// keep their existing pointer to it.
	d.ledger.SetState(st.Ledger)
	if err := d.tm.SetState(st.Trust); err != nil {
		return err
	}
	d.baseDisclosure = st.BaseDisclosure
	d.cfg.BaseHonesty = st.BaseHonesty
	d.cfg.Coupled = st.Coupled
	copy(d.disclosure, st.Disclosure)
	copy(d.honesty, st.Honesty)
	d.epoch = st.Epoch
	d.history = append([]EpochStats(nil), st.History...)
	d.prevRepFacet = st.PrevRepFacet
	d.couplingAll = st.CouplingAll
	// The remaining sub-linear-tail state is derived. Pending delta lists are
	// superseded by full installs: a full in-place install writes values
	// bit-identical to what the pending deltas would have written (the
	// vectors themselves are restored above) and consumes no randomness.
	d.discAll, d.honAll = true, true
	d.discDirty, d.honDirty = d.discDirty[:0], d.honDirty[:0]
	d.prevLedgerScale = d.eng.LedgerScale()
	// Rebuild the four aggregate trees from the restored leaves. Fill is
	// bottom-up over the same fixed shape, so subsequent incremental Sets
	// continue bit-identically to an uninterrupted run.
	leaves := make([]float64, n)
	for u := 0; u < n; u++ {
		leaves[u] = d.eng.UserSatisfaction(u)
	}
	d.satTree.Fill(leaves)
	for u := 0; u < n; u++ {
		leaves[u] = d.eng.PrivacyFacetOf(u)
	}
	d.privTree.Fill(leaves)
	d.discTree.Fill(d.disclosure)
	d.honTree.Fill(d.honesty)
	return nil
}
