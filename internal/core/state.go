package core

import (
	"fmt"

	"repro/internal/privacy"
	"repro/internal/workload"
)

// TrustModelState is the serializable mutable state of a TrustModel. Weights
// (default and per-user) are configuration, re-established when the model is
// rebuilt from the same scenario settings.
type TrustModelState struct {
	Trust   []float64
	Started []bool
}

// State captures the model's mutable state.
func (m *TrustModel) State() TrustModelState {
	return TrustModelState{
		Trust:   append([]float64(nil), m.trust...),
		Started: append([]bool(nil), m.started...),
	}
}

// SetState restores a previously captured state of the same population size.
func (m *TrustModel) SetState(st TrustModelState) error {
	if len(st.Trust) != len(m.trust) || len(st.Started) != len(m.started) {
		return fmt.Errorf("core: trust-model state for %d users, want %d", len(st.Trust), len(m.trust))
	}
	copy(m.trust, st.Trust)
	copy(m.started, st.Started)
	return nil
}

// DynamicsState is the serializable mutable state of the whole coupled
// system: the workload engine (with its random streams and mechanism), the
// privacy ledger, the trust model, the §3 coupling variables, and the
// recorded epoch history. Restoring it into a Dynamics built from identical
// configuration makes the continuation bit-for-bit identical to an
// uninterrupted run.
type DynamicsState struct {
	Engine         workload.EngineState
	Ledger         privacy.LedgerState
	Trust          TrustModelState
	BaseDisclosure float64
	// BaseHonesty and Coupled are captured because session interventions can
	// change them mid-run.
	BaseHonesty float64
	Coupled     bool
	Disclosure  []float64
	Honesty     []float64
	Epoch       int
	History     []EpochStats
}

// State captures the coupled system's mutable state.
func (d *Dynamics) State() (DynamicsState, error) {
	est, err := d.eng.State()
	if err != nil {
		return DynamicsState{}, fmt.Errorf("core: dynamics state: %w", err)
	}
	return DynamicsState{
		Engine:         est,
		Ledger:         d.ledger.State(),
		Trust:          d.tm.State(),
		BaseDisclosure: d.baseDisclosure,
		BaseHonesty:    d.cfg.BaseHonesty,
		Coupled:        d.cfg.Coupled,
		Disclosure:     append([]float64(nil), d.disclosure...),
		Honesty:        append([]float64(nil), d.honesty...),
		Epoch:          d.epoch,
		History:        append([]EpochStats(nil), d.history...),
	}, nil
}

// Restore overwrites the coupled system's mutable state with a captured one.
// The Dynamics must have been built from the identical configuration (shard
// count excepted).
func (d *Dynamics) Restore(st DynamicsState) error {
	n := d.cfg.Workload.NumPeers
	if len(st.Disclosure) != n || len(st.Honesty) != n {
		return fmt.Errorf("core: snapshot coupling vectors do not match %d users", n)
	}
	if st.BaseDisclosure < 0 || st.BaseDisclosure > 1 {
		return fmt.Errorf("core: snapshot base disclosure %v out of [0,1]", st.BaseDisclosure)
	}
	if st.BaseHonesty < 0 || st.BaseHonesty > 1 {
		return fmt.Errorf("core: snapshot base honesty %v out of [0,1]", st.BaseHonesty)
	}
	if err := d.eng.Restore(st.Engine); err != nil {
		return fmt.Errorf("core: restore engine: %w", err)
	}
	// The ledger is restored in place: the workload engine and this Dynamics
	// keep their existing pointer to it.
	d.ledger.SetState(st.Ledger)
	if err := d.tm.SetState(st.Trust); err != nil {
		return err
	}
	d.baseDisclosure = st.BaseDisclosure
	d.cfg.BaseHonesty = st.BaseHonesty
	d.cfg.Coupled = st.Coupled
	copy(d.disclosure, st.Disclosure)
	copy(d.honesty, st.Honesty)
	d.epoch = st.Epoch
	d.history = append([]EpochStats(nil), st.History...)
	return nil
}
