package core

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/reputation/eigentrust"
	"repro/internal/workload"
)

func dynConfig(coupled bool, malicious float64) DynamicsConfig {
	return DynamicsConfig{
		Workload: workload.Config{
			Seed:     42,
			NumPeers: 40,
			Mix: adversary.Mix{Fractions: map[adversary.Class]float64{
				adversary.Honest:    1 - malicious,
				adversary.Malicious: malicious,
			}},
			Disclosure:     0.8,
			RecomputeEvery: 2,
		},
		Coupled:     coupled,
		EpochRounds: 8,
	}
}

func newDyn(t *testing.T, coupled bool, malicious float64) *Dynamics {
	t.Helper()
	mech, err := eigentrust.New(eigentrust.Config{N: 40, Pretrusted: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamics(dynConfig(coupled, malicious), mech)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDynamicsRunsAndRecords(t *testing.T) {
	d := newDyn(t, true, 0.3)
	hist, err := d.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 5 {
		t.Fatalf("history length = %d", len(hist))
	}
	for i, e := range hist {
		if e.Epoch != i {
			t.Fatalf("epoch numbering: %+v", e)
		}
		for _, v := range []float64{e.Trust, e.Satisfaction, e.Reputation, e.Privacy, e.Disclosure, e.Honesty} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("epoch %d has out-of-range value: %+v", i, e)
			}
		}
	}
}

func TestCouplingMovesDisclosureWithTrust(t *testing.T) {
	d := newDyn(t, true, 0.2)
	hist, err := d.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	last := hist[len(hist)-1]
	// Healthy system: trust settles above neutral, disclosure stays high,
	// honesty rises above the base.
	if last.Trust < 0.5 {
		t.Fatalf("healthy system trust = %v", last.Trust)
	}
	if last.Honesty <= 0.3 {
		t.Fatalf("honesty did not rise with trust: %v", last.Honesty)
	}
}

func TestDecoupledKeepsBaseline(t *testing.T) {
	d := newDyn(t, false, 0.2)
	hist, err := d.Run(6)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range hist {
		if math.Abs(e.Disclosure-0.8) > 1e-9 {
			t.Fatalf("decoupled disclosure drifted: %+v", e)
		}
	}
}

func TestCoupledDivergesFromDecoupled(t *testing.T) {
	c := newDyn(t, true, 0.3)
	u := newDyn(t, false, 0.3)
	hc, err := c.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	hu, err := u.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	// The coupled run must actually move its coupling variables.
	moved := false
	for i := range hc {
		if math.Abs(hc[i].Disclosure-hu[i].Disclosure) > 0.01 ||
			math.Abs(hc[i].Honesty-hu[i].Honesty) > 0.01 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("coupling had no observable effect")
	}
}

func TestMajorityUntrustworthyRegime(t *testing.T) {
	// §3's fourth claim: an efficient mechanism facing a 70%-malicious
	// population yields LOW system trust while contribution continues.
	d := newDyn(t, true, 0.7)
	hist, err := d.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	last := hist[len(hist)-1]
	healthy := newDyn(t, true, 0.1)
	hHealthy, err := healthy.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	if last.Trust >= hHealthy[len(hHealthy)-1].Trust {
		t.Fatalf("70%%-malicious trust %v not below 10%%-malicious trust %v",
			last.Trust, hHealthy[len(hHealthy)-1].Trust)
	}
	// Contribution continues: disclosure has not collapsed to zero.
	if last.Disclosure < 0.05 {
		t.Fatalf("contribution collapsed: %v", last.Disclosure)
	}
}

func TestTrustModelAccessors(t *testing.T) {
	d := newDyn(t, true, 0.3)
	if _, err := d.Run(2); err != nil {
		t.Fatal(err)
	}
	if d.TrustModel().N() != 40 {
		t.Fatal("trust model size")
	}
	if d.Engine() == nil {
		t.Fatal("engine accessor nil")
	}
	h := d.History()
	h[0].Trust = -99
	if d.History()[0].Trust == -99 {
		t.Fatal("History exposed internal slice")
	}
}

func TestIteratedMapConvergesMonotonically(t *testing.T) {
	cfg := MapConfig{Reputation: 0.8, Privacy: 0.8}
	low, err := RunIteratedMap(0.1, 60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	high, err := RunIteratedMap(0.95, 60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both converge to the same fixed point.
	if math.Abs(low[len(low)-1]-high[len(high)-1]) > 0.01 {
		t.Fatalf("fixed points differ: %v vs %v", low[len(low)-1], high[len(high)-1])
	}
	// Trajectories are monotone (no oscillation): the loop is a positive
	// feedback with damping.
	for i := 2; i < len(low); i++ {
		if low[i] < low[i-1]-1e-9 {
			t.Fatalf("low trajectory not monotone up at %d", i)
		}
		if high[i] > high[i-1]+1e-9 {
			t.Fatalf("high trajectory not monotone down at %d", i)
		}
	}
	// Starting from more trust keeps you (weakly) above along the way —
	// "the more she trusts, the more she is satisfied" and vice versa.
	for i := range low {
		if low[i] > high[i]+1e-9 {
			t.Fatalf("trajectory ordering violated at %d", i)
		}
	}
}

func TestIteratedMapBetterFacetsHigherFixedPoint(t *testing.T) {
	good, err := RunIteratedMap(0.5, 80, MapConfig{Reputation: 0.9, Privacy: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := RunIteratedMap(0.5, 80, MapConfig{Reputation: 0.3, Privacy: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if good[len(good)-1] <= bad[len(bad)-1] {
		t.Fatalf("better facets did not raise the fixed point: %v vs %v",
			good[len(good)-1], bad[len(bad)-1])
	}
}

func TestIteratedMapValidation(t *testing.T) {
	if _, err := RunIteratedMap(-0.5, 10, MapConfig{Reputation: 0.5, Privacy: 0.5}); err == nil {
		t.Fatal("negative t0 accepted")
	}
	if _, err := RunIteratedMap(1.5, 10, MapConfig{Reputation: 0.5, Privacy: 0.5}); err == nil {
		t.Fatal("t0 > 1 accepted")
	}
}
