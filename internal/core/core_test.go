package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCombineBasics(t *testing.T) {
	w := DefaultWeights()
	v, err := Combine(Facets{1, 1, 1}, w)
	if err != nil || v != 1 {
		t.Fatalf("Combine(1,1,1) = %v, %v", v, err)
	}
	v, err = Combine(Facets{0.5, 0.5, 0.5}, w)
	if err != nil || math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("Combine(0.5s) = %v", v)
	}
}

func TestCombineZeroFacetZeroesTrust(t *testing.T) {
	// The antinomic design: a collapsed facet cannot be traded away.
	w := DefaultWeights()
	for _, f := range []Facets{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		v, err := Combine(f, w)
		if err != nil || v != 0 {
			t.Fatalf("Combine(%+v) = %v, want 0", f, v)
		}
	}
	// The arithmetic ablation does allow compensation.
	v, err := CombineArithmetic(Facets{0, 1, 1}, w)
	if err != nil || v <= 0.5 {
		t.Fatalf("arithmetic ablation = %v, want 2/3", v)
	}
}

func TestCombineZeroWeightIgnoresFacet(t *testing.T) {
	w := Weights{Satisfaction: 1, Reputation: 1, Privacy: 0}
	v, err := Combine(Facets{0.8, 0.8, 0}, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.8) > 1e-12 {
		t.Fatalf("zero-weighted collapsed facet changed trust: %v", v)
	}
}

func TestCombineValidation(t *testing.T) {
	if _, err := Combine(Facets{0.5, 0.5, 0.5}, Weights{}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
	if _, err := Combine(Facets{0.5, 0.5, 0.5}, Weights{-1, 1, 1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := Combine(Facets{1.5, 0.5, 0.5}, DefaultWeights()); err == nil {
		t.Fatal("facet > 1 accepted")
	}
	if _, err := CombineArithmetic(Facets{-0.1, 0.5, 0.5}, DefaultWeights()); err == nil {
		t.Fatal("arithmetic accepted facet < 0")
	}
}

func TestCombineMonotoneInEachFacet(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		base := Facets{
			Satisfaction: 0.1 + 0.8*float64(a)/255,
			Reputation:   0.1 + 0.8*float64(b)/255,
			Privacy:      0.1 + 0.8*float64(c)/255,
		}
		bump := 0.01 + 0.1*float64(d)/255
		w := DefaultWeights()
		v0, err := Combine(base, w)
		if err != nil {
			return false
		}
		for _, improved := range []Facets{
			{clamp(base.Satisfaction + bump), base.Reputation, base.Privacy},
			{base.Satisfaction, clamp(base.Reputation + bump), base.Privacy},
			{base.Satisfaction, base.Reputation, clamp(base.Privacy + bump)},
		} {
			v1, err := Combine(improved, w)
			if err != nil || v1 < v0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func clamp(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}

func TestCombineGeometricBelowArithmetic(t *testing.T) {
	// AM-GM: the geometric metric is always <= the arithmetic one —
	// unbalanced facet profiles are penalized.
	f := func(a, b, c uint8) bool {
		fc := Facets{
			Satisfaction: float64(a)/255*0.99 + 0.005,
			Reputation:   float64(b)/255*0.99 + 0.005,
			Privacy:      float64(c)/255*0.99 + 0.005,
		}
		g, err1 := Combine(fc, DefaultWeights())
		ar, err2 := CombineArithmetic(fc, DefaultWeights())
		return err1 == nil && err2 == nil && g <= ar+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestContextWeights(t *testing.T) {
	pc := ContextWeights(PrivacyCritical)
	if pc.Privacy <= pc.Satisfaction || pc.Privacy <= pc.Reputation {
		t.Fatalf("privacy-critical weights = %+v", pc)
	}
	perf := ContextWeights(PerformanceCritical)
	if perf.Satisfaction <= perf.Privacy {
		t.Fatalf("performance-critical weights = %+v", perf)
	}
	if ContextWeights(Balanced) != DefaultWeights() {
		t.Fatal("balanced != default")
	}
	mk := ContextWeights(MarketplaceContext)
	if mk.Reputation <= mk.Satisfaction {
		t.Fatalf("marketplace weights = %+v", mk)
	}
	for _, c := range []Context{Balanced, PrivacyCritical, PerformanceCritical, MarketplaceContext} {
		if c.String() == "" {
			t.Fatal("empty context name")
		}
		if err := ContextWeights(c).Validate(); err != nil {
			t.Fatalf("%v weights invalid: %v", c, err)
		}
	}
	if Context(42).String() == "" {
		t.Fatal("unknown context empty name")
	}
}

func TestContextChangesOptimum(t *testing.T) {
	// The same facet pair ranks differently under different contexts —
	// §4's "different settings depending on the applicative context".
	highPriv := Facets{Satisfaction: 0.6, Reputation: 0.5, Privacy: 0.95}
	highPerf := Facets{Satisfaction: 0.95, Reputation: 0.6, Privacy: 0.5}
	tP1, _ := Combine(highPriv, ContextWeights(PrivacyCritical))
	tP2, _ := Combine(highPerf, ContextWeights(PrivacyCritical))
	tF1, _ := Combine(highPriv, ContextWeights(PerformanceCritical))
	tF2, _ := Combine(highPerf, ContextWeights(PerformanceCritical))
	if tP1 <= tP2 {
		t.Fatalf("privacy context should prefer the private profile: %v vs %v", tP1, tP2)
	}
	if tF2 <= tF1 {
		t.Fatalf("performance context should prefer the performant profile: %v vs %v", tF2, tF1)
	}
}

func TestTrustModelValidation(t *testing.T) {
	if _, err := NewTrustModel(0, DefaultWeights(), 0.5); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewTrustModel(5, Weights{}, 0.5); err == nil {
		t.Fatal("zero weights accepted")
	}
	if _, err := NewTrustModel(5, DefaultWeights(), 1); err == nil {
		t.Fatal("inertia=1 accepted")
	}
	if _, err := NewTrustModel(5, DefaultWeights(), -0.1); err == nil {
		t.Fatal("negative inertia accepted")
	}
}

func TestTrustModelUpdateAndInertia(t *testing.T) {
	m, err := NewTrustModel(2, DefaultWeights(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Trust(0) != 0.5 {
		t.Fatal("initial trust != 0.5")
	}
	// First update seeds directly.
	v, err := m.Update(0, Facets{1, 1, 1})
	if err != nil || v != 1 {
		t.Fatalf("first update = %v, %v", v, err)
	}
	// Second update is smoothed: 0.5*1 + 0.5*0 = 0.5.
	v, err = m.Update(0, Facets{0, 1, 1})
	if err != nil || v != 0.5 {
		t.Fatalf("smoothed update = %v", v)
	}
	if m.Trust(1) != 0.5 {
		t.Fatal("untouched user's trust changed")
	}
	if m.Trust(-1) != 0 || m.Trust(9) != 0 {
		t.Fatal("out-of-range trust != 0")
	}
	if _, err := m.Update(9, Facets{1, 1, 1}); err == nil {
		t.Fatal("out-of-range update accepted")
	}
}

func TestGlobalTrustAndSystemTrusted(t *testing.T) {
	m, err := NewTrustModel(4, DefaultWeights(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range []Facets{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}, {0.1, 0.1, 0.1}} {
		if _, err := m.Update(i, f); err != nil {
			t.Fatal(err)
		}
	}
	g := m.GlobalTrust()
	if g < 0.7 || g > 0.8 {
		t.Fatalf("global trust = %v", g)
	}
	// Mean is high but the bottom quartile is not: the quantile rule
	// distinguishes "globally trusted" from "most users trust it".
	if m.SystemTrusted(0.5, 0.1) {
		t.Fatal("system counted trusted despite distrustful decile")
	}
	if !m.SystemTrusted(0.5, 0.5) {
		t.Fatal("median-trusted system not recognized")
	}
	trusts := m.Trusts()
	if len(trusts) != 4 {
		t.Fatal("Trusts length")
	}
	trusts[0] = -5
	if m.Trust(0) == -5 {
		t.Fatal("Trusts exposed internal slice")
	}
}

func TestFacetsValid(t *testing.T) {
	if !(Facets{0, 0.5, 1}).Valid() {
		t.Fatal("valid facets rejected")
	}
	if (Facets{-0.1, 0.5, 0.5}).Valid() || (Facets{0.5, 1.1, 0.5}).Valid() {
		t.Fatal("invalid facets accepted")
	}
	if (Facets{math.NaN(), 0.5, 0.5}).Valid() {
		t.Fatal("NaN facet accepted")
	}
}
