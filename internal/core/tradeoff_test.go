package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/adversary"
	"repro/internal/reputation"
	"repro/internal/reputation/eigentrust"
	"repro/internal/workload"
)

func exploreConfig() ExploreConfig {
	return ExploreConfig{
		Base: workload.Config{
			Seed:     7,
			NumPeers: 30,
			Mix: adversary.Mix{Fractions: map[adversary.Class]float64{
				adversary.Honest:    0.7,
				adversary.Malicious: 0.3,
			}},
			RecomputeEvery: 2,
		},
		Mechanism: func(n int) (reputation.Mechanism, error) {
			return eigentrust.New(eigentrust.Config{N: n, Pretrusted: []int{0, 1}})
		},
		Rounds:   20,
		GridSize: 3,
	}
}

func TestEvaluateSettingBounds(t *testing.T) {
	cfg := exploreConfig()
	if _, err := EvaluateSetting(cfg, Setting{Disclosure: -0.1}); err == nil {
		t.Fatal("negative disclosure accepted")
	}
	if _, err := EvaluateSetting(cfg, Setting{TrustGate: 1}); err == nil {
		t.Fatal("gate=1 accepted")
	}
	p, err := EvaluateSetting(cfg, Setting{Disclosure: 0.8, TrustGate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Global.Valid() || p.Trust < 0 || p.Trust > 1 {
		t.Fatalf("point = %+v", p)
	}
}

func TestExploreRequiresFactory(t *testing.T) {
	cfg := exploreConfig()
	cfg.Mechanism = nil
	if _, err := Explore(context.Background(), cfg); err == nil {
		t.Fatal("missing factory accepted")
	}
}

func TestDisclosureAntinomy(t *testing.T) {
	// Figure 2 right: less shared information => higher privacy facet but
	// lower reputation power; full disclosure reverses both.
	cfg := exploreConfig()
	low, err := EvaluateSetting(cfg, Setting{Disclosure: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	high, err := EvaluateSetting(cfg, Setting{Disclosure: 1})
	if err != nil {
		t.Fatal(err)
	}
	if low.Global.Privacy <= high.Global.Privacy {
		t.Fatalf("privacy not higher at low disclosure: %v vs %v",
			low.Global.Privacy, high.Global.Privacy)
	}
	if low.Global.Reputation >= high.Global.Reputation {
		t.Fatalf("reputation power not higher at full disclosure: %v vs %v",
			low.Global.Reputation, high.Global.Reputation)
	}
}

func TestExploreGridAndAreaA(t *testing.T) {
	cfg := exploreConfig()
	cfg.Thresholds = Facets{Satisfaction: 0.3, Reputation: 0.3, Privacy: 0.1}
	res, err := Explore(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 9 {
		t.Fatalf("grid size = %d", len(res.Points))
	}
	if res.Best.Trust <= 0 {
		t.Fatalf("best point trust = %v", res.Best.Trust)
	}
	if len(res.AreaA) == 0 {
		t.Fatal("Area A empty with generous thresholds")
	}
	if res.AreaFraction <= 0 || res.AreaFraction > 1 {
		t.Fatalf("area fraction = %v", res.AreaFraction)
	}
	// Every Area A member meets the thresholds.
	for _, p := range res.AreaA {
		if p.Global.Satisfaction < 0.3 || p.Global.Reputation < 0.3 || p.Global.Privacy < 0.1 {
			t.Fatalf("non-member in Area A: %+v", p)
		}
	}
	if res.BestInAreaA.Trust > res.Best.Trust {
		t.Fatal("area-constrained best exceeds global best")
	}
}

func TestOptimizeRespectsConstraints(t *testing.T) {
	cfg := exploreConfig()
	cons := Constraints{MinPrivacy: 0.5}
	p, err := Optimize(context.Background(), cfg, cons)
	if err != nil {
		t.Fatal(err)
	}
	if p.Global.Privacy < 0.5 {
		t.Fatalf("optimizer violated privacy constraint: %+v", p)
	}
	// An unconstrained optimum must be at least as good.
	free, err := Optimize(context.Background(), cfg, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if free.Trust < p.Trust-1e-9 {
		t.Fatalf("unconstrained optimum %v below constrained %v", free.Trust, p.Trust)
	}
}

func TestOptimizeInfeasible(t *testing.T) {
	cfg := exploreConfig()
	_, err := Optimize(context.Background(), cfg, Constraints{MinPrivacy: 0.999, MinReputation: 0.999, MinSatisfaction: 0.999})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestDifferentContextsDifferentOptima(t *testing.T) {
	// §4 / E10: the max-trust setting depends on the applicative context.
	base := exploreConfig()

	privCfg := base
	privCfg.Weights = ContextWeights(PrivacyCritical)
	pPriv, err := Optimize(context.Background(), privCfg, Constraints{})
	if err != nil {
		t.Fatal(err)
	}

	perfCfg := base
	perfCfg.Weights = ContextWeights(PerformanceCritical)
	pPerf, err := Optimize(context.Background(), perfCfg, Constraints{})
	if err != nil {
		t.Fatal(err)
	}

	// The privacy-critical optimum must not disclose more than the
	// performance-critical one (weak inequality: grids are coarse).
	if pPriv.Setting.Disclosure > pPerf.Setting.Disclosure {
		t.Fatalf("privacy-critical context disclosed more (%v) than performance-critical (%v)",
			pPriv.Setting.Disclosure, pPerf.Setting.Disclosure)
	}
}
