package core

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/reputation"
	"repro/internal/reputation/eigentrust"
	"repro/internal/workload"
)

func exploreConfig() ExploreConfig {
	return ExploreConfig{
		Base: workload.Config{
			Seed:     7,
			NumPeers: 30,
			Mix: adversary.Mix{Fractions: map[adversary.Class]float64{
				adversary.Honest:    0.7,
				adversary.Malicious: 0.3,
			}},
			RecomputeEvery: 2,
		},
		Mechanism: func(n int) (reputation.Mechanism, error) {
			return eigentrust.New(eigentrust.Config{N: n, Pretrusted: []int{0, 1}})
		},
		Rounds: 20,
	}
}

func TestEvaluateSettingBounds(t *testing.T) {
	cfg := exploreConfig()
	if _, err := EvaluateSetting(cfg, Setting{Disclosure: -0.1}); err == nil {
		t.Fatal("negative disclosure accepted")
	}
	if _, err := EvaluateSetting(cfg, Setting{TrustGate: 1}); err == nil {
		t.Fatal("gate=1 accepted")
	}
	p, err := EvaluateSetting(cfg, Setting{Disclosure: 0.8, TrustGate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Global.Valid() || p.Trust < 0 || p.Trust > 1 {
		t.Fatalf("point = %+v", p)
	}
}

func TestDisclosureAntinomy(t *testing.T) {
	// Figure 2 right: less shared information => higher privacy facet but
	// lower reputation power; full disclosure reverses both.
	cfg := exploreConfig()
	low, err := EvaluateSetting(cfg, Setting{Disclosure: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	high, err := EvaluateSetting(cfg, Setting{Disclosure: 1})
	if err != nil {
		t.Fatal(err)
	}
	if low.Global.Privacy <= high.Global.Privacy {
		t.Fatalf("privacy not higher at low disclosure: %v vs %v",
			low.Global.Privacy, high.Global.Privacy)
	}
	if low.Global.Reputation >= high.Global.Reputation {
		t.Fatalf("reputation power not higher at full disclosure: %v vs %v",
			low.Global.Reputation, high.Global.Reputation)
	}
}

// TestEvaluateSettingRequiresFactory: the one low-level evaluation entry
// point refuses to guess a mechanism.
func TestEvaluateSettingRequiresFactory(t *testing.T) {
	cfg := exploreConfig()
	cfg.Mechanism = nil
	if _, err := EvaluateSetting(cfg, Setting{Disclosure: 0.5}); err == nil {
		t.Fatal("missing factory accepted")
	}
}
