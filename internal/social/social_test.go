package social

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/graph"
)

func honestUsers(n int) []*User {
	users := make([]*User, n)
	for i := range users {
		users[i] = &User{
			ID:             i,
			Profile:        StandardProfile(i),
			Behavior:       adversary.MustNew(adversary.Honest, adversary.Config{}),
			BaseDisclosure: 1,
		}
	}
	return users
}

func TestNewNetworkValidation(t *testing.T) {
	users := honestUsers(3)
	if _, err := NewNetwork(users, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewNetwork(users, graph.New(2)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	users[1].ID = 7
	if _, err := NewNetwork(users, graph.New(3)); err == nil {
		t.Fatal("mis-indexed user accepted")
	}
	users[1].ID = 1
	users[2] = nil
	if _, err := NewNetwork(users, graph.New(3)); err == nil {
		t.Fatal("nil user accepted")
	}
}

func TestUserLookup(t *testing.T) {
	net, err := NewNetwork(honestUsers(3), graph.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 3 {
		t.Fatalf("N = %d", net.N())
	}
	if net.User(1) == nil || net.User(1).ID != 1 {
		t.Fatal("User(1) lookup failed")
	}
	if net.User(-1) != nil || net.User(3) != nil {
		t.Fatal("out-of-range user lookup not nil")
	}
}

func TestResources(t *testing.T) {
	net, err := NewNetwork(honestUsers(2), graph.New(2))
	if err != nil {
		t.Fatal(err)
	}
	id, err := net.AddResource(0, File, Medium)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := net.Resource(id)
	if !ok || r.Owner != 0 || r.Kind != File || r.Sensitivity != Medium {
		t.Fatalf("resource = %+v", r)
	}
	if _, err := net.AddResource(9, Post, Low); err == nil {
		t.Fatal("unknown owner accepted")
	}
	if _, ok := net.Resource(99); ok {
		t.Fatal("phantom resource")
	}
	if net.NumResources() != 1 {
		t.Fatalf("NumResources = %d", net.NumResources())
	}
}

func TestTxIDsUnique(t *testing.T) {
	net, err := NewNetwork(honestUsers(2), graph.New(2))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		id := net.NextTxID()
		if seen[id] {
			t.Fatalf("duplicate tx id %d", id)
		}
		seen[id] = true
	}
}

func TestInteractionLog(t *testing.T) {
	net, err := NewNetwork(honestUsers(3), graph.New(3))
	if err != nil {
		t.Fatal(err)
	}
	net.Record(Interaction{ID: 1, Consumer: 0, Provider: 1, Quality: 0.9, Outcome: Good})
	net.Record(Interaction{ID: 2, Consumer: 2, Provider: 1, Quality: 0.2, Outcome: Bad})
	net.Record(Interaction{ID: 3, Consumer: 0, Provider: 2, Quality: 0.8, Outcome: Good})
	if len(net.Interactions()) != 3 {
		t.Fatal("log size wrong")
	}
	with1 := net.InteractionsWith(1)
	if len(with1) != 2 {
		t.Fatalf("InteractionsWith(1) = %d", len(with1))
	}
	with0 := net.InteractionsWith(0)
	if len(with0) != 2 {
		t.Fatalf("InteractionsWith(0) = %d", len(with0))
	}
}

func TestGroundTruthQuality(t *testing.T) {
	net, err := NewNetwork(honestUsers(3), graph.New(3))
	if err != nil {
		t.Fatal(err)
	}
	net.Record(Interaction{Consumer: 0, Provider: 1, Quality: 0.8, Outcome: Good})
	net.Record(Interaction{Consumer: 0, Provider: 1, Quality: 0.6, Outcome: Good})
	net.Record(Interaction{Consumer: 1, Provider: 2, Quality: 0.9, Outcome: Refused})
	gt := net.GroundTruthQuality()
	if gt[0] != 1 {
		t.Fatalf("never-served user quality = %v, want neutral 1", gt[0])
	}
	if gt[1] < 0.69 || gt[1] > 0.71 {
		t.Fatalf("provider 1 quality = %v, want 0.7", gt[1])
	}
	if gt[2] != 0 {
		t.Fatalf("refusing provider quality = %v, want 0", gt[2])
	}
}

func TestProfileAttribute(t *testing.T) {
	p := StandardProfile(4)
	a, ok := p.Attribute("email")
	if !ok || a.Sensitivity != Medium {
		t.Fatalf("email attribute = %+v, %v", a, ok)
	}
	if _, ok := p.Attribute("nonexistent"); ok {
		t.Fatal("phantom attribute")
	}
	// Standard profile covers all sensitivity classes.
	classes := map[Sensitivity]bool{}
	for _, a := range p.Attributes {
		classes[a.Sensitivity] = true
	}
	for _, s := range []Sensitivity{Public, Low, Medium, High} {
		if !classes[s] {
			t.Fatalf("standard profile missing sensitivity %v", s)
		}
	}
}

func TestStringers(t *testing.T) {
	if Public.String() != "public" || High.String() != "high" {
		t.Fatal("sensitivity names")
	}
	if Good.String() != "good" || Refused.String() != "refused" {
		t.Fatal("outcome names")
	}
	if Sensitivity(9).String() == "" || Outcome(9).String() == "" {
		t.Fatal("unknown enum empty name")
	}
}
