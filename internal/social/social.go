// Package social models the social-networking application layer of the
// paper's §1: users with profiles, the friendship graph, shared resources
// (posts, files), and the interaction log that feeds both the satisfaction
// model (§2.1) and the reputation mechanisms (§2.2).
package social

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/graph"
)

// Sensitivity classifies how private a profile attribute or resource is.
// It drives default privacy policies (§2.3): higher sensitivity means
// stricter disclosure conditions.
type Sensitivity int

// Sensitivity classes, from freely shareable to strictly personal.
const (
	Public Sensitivity = iota + 1
	Low
	Medium
	High
)

// String returns the sensitivity name.
func (s Sensitivity) String() string {
	switch s {
	case Public:
		return "public"
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	default:
		return fmt.Sprintf("sensitivity(%d)", int(s))
	}
}

// Attribute is one profile field.
type Attribute struct {
	Name        string
	Value       string
	Sensitivity Sensitivity
}

// Profile is a user's set of attributes.
type Profile struct {
	Attributes []Attribute
}

// Attribute returns the named attribute and whether it exists.
func (p Profile) Attribute(name string) (Attribute, bool) {
	for _, a := range p.Attributes {
		if a.Name == name {
			return a, true
		}
	}
	return Attribute{}, false
}

// StandardProfile builds the default attribute set used in experiments:
// one attribute per sensitivity class, named for its class.
func StandardProfile(userID int) Profile {
	return Profile{Attributes: []Attribute{
		{Name: "nickname", Value: fmt.Sprintf("user-%d", userID), Sensitivity: Public},
		{Name: "interests", Value: "music,sports", Sensitivity: Low},
		{Name: "email", Value: fmt.Sprintf("user-%d@example.org", userID), Sensitivity: Medium},
		{Name: "location", Value: "somewhere", Sensitivity: Medium},
		{Name: "medical", Value: "private", Sensitivity: High},
	}}
}

// ResourceKind distinguishes shareable object types.
type ResourceKind int

// Resource kinds.
const (
	Post ResourceKind = iota + 1
	File
	ProfileAttribute
)

// Resource is a shareable object owned by a user.
type Resource struct {
	ID          int
	Owner       int
	Kind        ResourceKind
	Sensitivity Sensitivity
}

// Outcome classifies how an interaction ended.
type Outcome int

// Interaction outcomes: the provider served well, served badly, or refused.
const (
	Good Outcome = iota + 1
	Bad
	Refused
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case Good:
		return "good"
	case Bad:
		return "bad"
	case Refused:
		return "refused"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Interaction is one consumer/provider exchange. Quality is the true
// delivered quality; Rating is what the consumer reported (possibly a lie);
// HonestRating is ground truth available only to experiment metrics.
type Interaction struct {
	ID           uint64
	Consumer     int
	Provider     int
	Resource     int
	Quality      float64
	Outcome      Outcome
	Rating       float64
	HonestRating bool
}

// User is a participant: identity, profile, behaviour policy, and the
// disclosure willingness that links the privacy facet to the reputation
// facet (the paper's "quantity of shared information").
type User struct {
	ID       int
	Profile  Profile
	Behavior adversary.Behavior
	// BaseDisclosure is the user's base willingness to share feedback and
	// attributes with the reputation layer, in [0,1].
	BaseDisclosure float64
}

// Network is the social network state.
type Network struct {
	users     []*User
	friends   *graph.Graph
	resources []Resource
	log       []Interaction
	nextTx    uint64
}

// NewNetwork assembles a network; users[i].ID must equal i and the
// friendship graph must have exactly len(users) nodes.
func NewNetwork(users []*User, friends *graph.Graph) (*Network, error) {
	if friends == nil {
		return nil, fmt.Errorf("social: nil friendship graph")
	}
	if friends.N() != len(users) {
		return nil, fmt.Errorf("social: %d users but friendship graph has %d nodes",
			len(users), friends.N())
	}
	for i, u := range users {
		if u == nil {
			return nil, fmt.Errorf("social: nil user at %d", i)
		}
		if u.ID != i {
			return nil, fmt.Errorf("social: user at index %d has ID %d", i, u.ID)
		}
	}
	return &Network{users: users, friends: friends}, nil
}

// N returns the number of users.
func (n *Network) N() int { return len(n.users) }

// User returns the user with the given id, or nil if out of range.
func (n *Network) User(id int) *User {
	if id < 0 || id >= len(n.users) {
		return nil
	}
	return n.users[id]
}

// Users returns the user list (shared; callers must not mutate).
func (n *Network) Users() []*User { return n.users }

// Friends returns the friendship graph.
func (n *Network) Friends() *graph.Graph { return n.friends }

// AddResource registers a resource owned by owner and returns its id.
func (n *Network) AddResource(owner int, kind ResourceKind, sens Sensitivity) (int, error) {
	if n.User(owner) == nil {
		return 0, fmt.Errorf("social: unknown owner %d", owner)
	}
	id := len(n.resources)
	n.resources = append(n.resources, Resource{ID: id, Owner: owner, Kind: kind, Sensitivity: sens})
	return id, nil
}

// Resource returns the resource with the given id and whether it exists.
func (n *Network) Resource(id int) (Resource, bool) {
	if id < 0 || id >= len(n.resources) {
		return Resource{}, false
	}
	return n.resources[id], true
}

// NumResources returns the resource count.
func (n *Network) NumResources() int { return len(n.resources) }

// NextTxID allocates a fresh interaction id.
func (n *Network) NextTxID() uint64 {
	n.nextTx++
	return n.nextTx
}

// Record appends an interaction to the log.
func (n *Network) Record(i Interaction) {
	n.log = append(n.log, i)
}

// Interactions returns the full interaction log (shared; read-only).
func (n *Network) Interactions() []Interaction { return n.log }

// InteractionsWith returns the interactions where id was consumer or
// provider.
func (n *Network) InteractionsWith(id int) []Interaction {
	var out []Interaction
	for _, i := range n.log {
		if i.Consumer == id || i.Provider == id {
			out = append(out, i)
		}
	}
	return out
}

// GroundTruthQuality returns each user's true mean delivered quality over
// the log (1.0 default for users who never served, so that an unknown peer
// ranks as neutral-good rather than bad). Refusals count as quality 0
// because a refused consumer got nothing.
func (n *Network) GroundTruthQuality() []float64 {
	sums := make([]float64, len(n.users))
	counts := make([]int, len(n.users))
	for _, i := range n.log {
		q := i.Quality
		if i.Outcome == Refused {
			q = 0
		}
		sums[i.Provider] += q
		counts[i.Provider]++
	}
	out := make([]float64, len(n.users))
	for i := range out {
		if counts[i] == 0 {
			out[i] = 1
		} else {
			out[i] = sums[i] / float64(counts[i])
		}
	}
	return out
}
