package social

import "fmt"

// NetworkState is the serializable mutable state of a Network: the
// transaction counter, the interaction log, and registered resources. Users
// and the friendship graph are scenario structure — rebuilt deterministically
// from the seed — not state.
type NetworkState struct {
	NextTx    uint64
	Log       []Interaction
	Resources []Resource
}

// State captures the network's mutable state.
func (n *Network) State() NetworkState {
	return NetworkState{
		NextTx:    n.nextTx,
		Log:       append([]Interaction(nil), n.log...),
		Resources: append([]Resource(nil), n.resources...),
	}
}

// SetState restores a previously captured state. Resource owners must still
// exist in the (rebuilt) population.
func (n *Network) SetState(st NetworkState) error {
	for _, r := range st.Resources {
		if r.Owner < 0 || r.Owner >= len(n.users) {
			return fmt.Errorf("social: resource %d owned by unknown user %d", r.ID, r.Owner)
		}
	}
	n.nextTx = st.NextTx
	n.log = append([]Interaction(nil), st.Log...)
	n.resources = append([]Resource(nil), st.Resources...)
	return nil
}
