package overlay

import (
	"testing"

	"repro/internal/sim"
)

func newTestNet(t *testing.T, n int, cfg Config) (*sim.Sim, *Network) {
	t.Helper()
	s := sim.New()
	return s, NewNetwork(s, sim.NewRNG(42), n, cfg)
}

func TestSendDeliver(t *testing.T) {
	s, net := newTestNet(t, 2, Config{})
	var got []Message
	if err := net.SetHandler(1, func(m Message) { got = append(got, m) }); err != nil {
		t.Fatal(err)
	}
	net.Send(0, 1, "ping", 99)
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d messages", len(got))
	}
	m := got[0]
	if m.From != 0 || m.To != 1 || m.Kind != "ping" || m.Payload.(int) != 99 {
		t.Fatalf("message = %+v", m)
	}
	st := net.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLatencyBounds(t *testing.T) {
	s, net := newTestNet(t, 2, Config{LatencyMin: 3, LatencyMax: 7})
	var at []sim.Time
	_ = net.SetHandler(1, func(m Message) { at = append(at, s.Now()) })
	for i := 0; i < 200; i++ {
		net.Send(0, 1, "t", nil)
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(at) != 200 {
		t.Fatalf("delivered %d", len(at))
	}
	seen := map[sim.Time]bool{}
	for _, tm := range at {
		if tm < 3 || tm > 7 {
			t.Fatalf("delivery at %d outside [3,7]", tm)
		}
		seen[tm] = true
	}
	if len(seen) < 3 {
		t.Fatalf("latency not spread across range: %v", seen)
	}
}

func TestLossRate(t *testing.T) {
	s, net := newTestNet(t, 2, Config{LossRate: 0.5})
	delivered := 0
	_ = net.SetHandler(1, func(m Message) { delivered++ })
	const n = 2000
	for i := 0; i < n; i++ {
		net.Send(0, 1, "t", nil)
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if delivered < 850 || delivered > 1150 {
		t.Fatalf("delivered %d of %d with 50%% loss", delivered, n)
	}
	st := net.Stats()
	if st.Delivered+st.Dropped != st.Sent {
		t.Fatalf("stats don't balance: %+v", st)
	}
}

func TestDeadNodesDropTraffic(t *testing.T) {
	s, net := newTestNet(t, 3, Config{})
	got := 0
	_ = net.SetHandler(1, func(m Message) { got++ })

	net.Kill(1)
	net.Send(0, 1, "x", nil) // dead destination
	net.Kill(2)
	net.Send(2, 1, "x", nil) // dead sender
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatal("dead node received traffic")
	}
	if d := net.Stats().Dropped; d != 2 {
		t.Fatalf("Dropped = %d, want 2", d)
	}

	net.Revive(1)
	net.Send(0, 1, "x", nil)
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatal("revived node did not receive traffic")
	}
}

func TestInFlightToDyingNodeDropped(t *testing.T) {
	s, net := newTestNet(t, 2, Config{LatencyMin: 10, LatencyMax: 10})
	got := 0
	_ = net.SetHandler(1, func(m Message) { got++ })
	net.Send(0, 1, "x", nil)
	s.At(5, func() { net.Kill(1) }) // dies while message is in flight
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatal("message delivered to node that died in flight")
	}
}

func TestJoinAddsNode(t *testing.T) {
	s, net := newTestNet(t, 1, Config{})
	got := 0
	id := net.Join(func(m Message) { got++ })
	if id != 1 || net.Size() != 2 || !net.Alive(id) {
		t.Fatalf("Join: id=%d size=%d", id, net.Size())
	}
	net.Send(0, id, "hello", nil)
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatal("joined node missed message")
	}
}

func TestBroadcast(t *testing.T) {
	s, net := newTestNet(t, 5, Config{})
	counts := make([]int, 5)
	for i := 0; i < 5; i++ {
		i := i
		_ = net.SetHandler(NodeID(i), func(m Message) { counts[i]++ })
	}
	net.Kill(3)
	net.Broadcast(0, "b", nil)
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if counts[0] != 0 {
		t.Fatal("sender received its own broadcast")
	}
	if counts[1] != 1 || counts[2] != 1 || counts[4] != 1 {
		t.Fatalf("broadcast counts = %v", counts)
	}
	if counts[3] != 0 {
		t.Fatal("dead node got broadcast")
	}
}

func TestAliveIDsSorted(t *testing.T) {
	_, net := newTestNet(t, 4, Config{})
	net.Kill(2)
	ids := net.AliveIDs()
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 1 || ids[2] != 3 {
		t.Fatalf("AliveIDs = %v", ids)
	}
}

func TestSetHandlerInvalid(t *testing.T) {
	_, net := newTestNet(t, 1, Config{})
	if err := net.SetHandler(5, nil); err == nil {
		t.Fatal("out-of-range SetHandler accepted")
	}
}

func TestConfigNormalization(t *testing.T) {
	s := sim.New()
	net := NewNetwork(s, sim.NewRNG(1), 2, Config{LatencyMin: -5, LatencyMax: -10, LossRate: 2})
	// LossRate clamped to 1: everything dropped.
	got := 0
	_ = net.SetHandler(1, func(m Message) { got++ })
	net.Send(0, 1, "x", nil)
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatal("LossRate=1 delivered a message")
	}
}
