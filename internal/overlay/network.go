// Package overlay implements the message-passing peer-to-peer substrate the
// paper's decentralized architecture runs on (§1: "fully distributed
// solutions"): per-node message handlers, a latency/loss network model on
// top of the deterministic simulation kernel, node churn (leave, join,
// whitewashing re-join), and epidemic gossip primitives.
package overlay

import (
	"fmt"

	"repro/internal/sim"
)

// NodeID identifies a peer in the overlay.
type NodeID int

// Message is a routed overlay message.
type Message struct {
	From, To NodeID
	Kind     string
	Payload  any
}

// Handler processes a delivered message at a node.
type Handler func(msg Message)

// Config controls the network model.
type Config struct {
	// LatencyMin/LatencyMax bound the uniform per-message delivery delay
	// in simulation ticks. Defaults to [1, 1] when unset.
	LatencyMin, LatencyMax sim.Time
	// LossRate is the probability a message is silently dropped in flight.
	LossRate float64
}

func (c Config) normalized() Config {
	if c.LatencyMin <= 0 {
		c.LatencyMin = 1
	}
	if c.LatencyMax < c.LatencyMin {
		c.LatencyMax = c.LatencyMin
	}
	if c.LossRate < 0 {
		c.LossRate = 0
	}
	if c.LossRate > 1 {
		c.LossRate = 1
	}
	return c
}

type nodeState struct {
	alive   bool
	handler Handler
}

// Stats counts network activity.
type Stats struct {
	Sent      int64
	Delivered int64
	Dropped   int64 // lost in flight or destination dead/absent
}

// Network is the simulated overlay transport. It is single-threaded: all
// sends and deliveries happen inside the simulation loop.
type Network struct {
	sim   *sim.Sim
	rng   *sim.RNG
	cfg   Config
	nodes []*nodeState
	stats Stats
}

// NewNetwork creates an overlay with n initially-alive nodes.
func NewNetwork(s *sim.Sim, rng *sim.RNG, n int, cfg Config) *Network {
	if n < 0 {
		n = 0
	}
	net := &Network{sim: s, rng: rng, cfg: cfg.normalized()}
	net.nodes = make([]*nodeState, n)
	for i := range net.nodes {
		net.nodes[i] = &nodeState{alive: true}
	}
	return net
}

// Sim returns the underlying simulation (for scheduling protocol timers).
func (n *Network) Sim() *sim.Sim { return n.sim }

// RNG returns the network's random stream.
func (n *Network) RNG() *sim.RNG { return n.rng }

// Size returns the total number of node slots ever created (alive or not).
func (n *Network) Size() int { return len(n.nodes) }

// Stats returns a copy of the traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// SetHandler installs the message handler for a node. A nil handler drops
// all traffic to the node.
func (n *Network) SetHandler(id NodeID, h Handler) error {
	if !n.valid(id) {
		return fmt.Errorf("overlay: node %d out of range", id)
	}
	n.nodes[id].handler = h
	return nil
}

func (n *Network) valid(id NodeID) bool { return id >= 0 && int(id) < len(n.nodes) }

// Alive reports whether the node exists and is up.
func (n *Network) Alive(id NodeID) bool {
	return n.valid(id) && n.nodes[id].alive
}

// AliveIDs returns the ids of all live nodes in ascending order.
func (n *Network) AliveIDs() []NodeID {
	out := make([]NodeID, 0, len(n.nodes))
	for i, st := range n.nodes {
		if st.alive {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Kill takes a node offline; in-flight messages to it are dropped on arrival.
func (n *Network) Kill(id NodeID) {
	if n.valid(id) {
		n.nodes[id].alive = false
	}
}

// Revive brings a previously killed node back with its handler intact.
func (n *Network) Revive(id NodeID) {
	if n.valid(id) {
		n.nodes[id].alive = true
	}
}

// Join adds a brand-new node (a whitewasher's fresh identity) and returns
// its id.
func (n *Network) Join(h Handler) NodeID {
	n.nodes = append(n.nodes, &nodeState{alive: true, handler: h})
	return NodeID(len(n.nodes) - 1)
}

// Send routes a message from -> to through the network model. Delivery is
// scheduled after a uniform random latency; the message may be lost. Sends
// from dead nodes are dropped immediately (a dead peer cannot transmit).
func (n *Network) Send(from, to NodeID, kind string, payload any) {
	n.stats.Sent++
	if !n.Alive(from) || !n.valid(to) {
		n.stats.Dropped++
		return
	}
	if n.rng.Bool(n.cfg.LossRate) {
		n.stats.Dropped++
		return
	}
	lat := n.cfg.LatencyMin
	if span := n.cfg.LatencyMax - n.cfg.LatencyMin; span > 0 {
		lat += sim.Time(n.rng.Intn(int(span) + 1))
	}
	msg := Message{From: from, To: to, Kind: kind, Payload: payload}
	n.sim.After(lat, func() {
		st := n.nodes[to]
		if !st.alive || st.handler == nil {
			n.stats.Dropped++
			return
		}
		n.stats.Delivered++
		st.handler(msg)
	})
}

// Broadcast sends the message to every live node except the sender.
func (n *Network) Broadcast(from NodeID, kind string, payload any) {
	for _, id := range n.AliveIDs() {
		if id != from {
			n.Send(from, id, kind, payload)
		}
	}
}
