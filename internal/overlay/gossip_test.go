package overlay

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestPeerSamplerInitialViews(t *testing.T) {
	_, net := newTestNet(t, 20, Config{})
	ps := NewPeerSampler(net, 5)
	for _, id := range net.AliveIDs() {
		v := ps.View(id)
		if len(v) == 0 || len(v) > 5 {
			t.Fatalf("view size of %d = %d", id, len(v))
		}
		for _, p := range v {
			if p == id {
				t.Fatalf("node %d has itself in view", id)
			}
		}
	}
}

func TestPeerSamplerViewIsCopy(t *testing.T) {
	_, net := newTestNet(t, 10, Config{})
	ps := NewPeerSampler(net, 4)
	v := ps.View(0)
	if len(v) == 0 {
		t.Fatal("empty view")
	}
	orig := v[0]
	v[0] = 999
	if ps.View(0)[0] != orig {
		t.Fatal("View exposed internal slice")
	}
}

func TestPeerSamplerMixing(t *testing.T) {
	_, net := newTestNet(t, 50, Config{})
	ps := NewPeerSampler(net, 6)
	before := map[NodeID]bool{}
	for _, p := range ps.View(0) {
		before[p] = true
	}
	for i := 0; i < 20; i++ {
		ps.Round()
	}
	after := ps.View(0)
	if len(after) == 0 {
		t.Fatal("view emptied by shuffling")
	}
	changed := false
	for _, p := range after {
		if !before[p] {
			changed = true
		}
		if p == 0 {
			t.Fatal("self in view after shuffle")
		}
	}
	if !changed {
		t.Fatal("20 shuffle rounds never refreshed node 0's view")
	}
}

func TestPeerSamplerPurgesDead(t *testing.T) {
	_, net := newTestNet(t, 20, Config{})
	ps := NewPeerSampler(net, 8)
	for i := 1; i < 10; i++ {
		net.Kill(NodeID(i))
	}
	for i := 0; i < 10; i++ {
		ps.Round()
	}
	for _, id := range net.AliveIDs() {
		if p := ps.RandomPeer(id); p != -1 && !net.Alive(p) {
			t.Fatalf("RandomPeer returned dead node %d", p)
		}
	}
}

func TestRandomPeerNoLivePeers(t *testing.T) {
	_, net := newTestNet(t, 3, Config{})
	ps := NewPeerSampler(net, 2)
	net.Kill(1)
	net.Kill(2)
	if p := ps.RandomPeer(0); p != -1 {
		t.Fatalf("RandomPeer = %d, want -1", p)
	}
}

func TestBootstrapIntroducesNewNode(t *testing.T) {
	_, net := newTestNet(t, 10, Config{})
	ps := NewPeerSampler(net, 4)
	fresh := net.Join(func(m Message) {})
	if p := ps.RandomPeer(fresh); p != -1 {
		t.Fatal("unbootstrapped node has peers")
	}
	ps.Bootstrap(fresh, []NodeID{0, 1, 2})
	if p := ps.RandomPeer(fresh); p == -1 {
		t.Fatal("bootstrapped node has no peers")
	}
	// Seeds learned about the newcomer.
	found := false
	for _, s := range []NodeID{0, 1, 2} {
		for _, v := range ps.View(s) {
			if v == fresh {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no seed learned about the newcomer")
	}
	// After shuffling, the newcomer spreads beyond its seeds.
	for i := 0; i < 20; i++ {
		ps.Round()
	}
	known := 0
	for _, id := range net.AliveIDs() {
		if id == fresh {
			continue
		}
		for _, v := range ps.View(id) {
			if v == fresh {
				known++
			}
		}
	}
	if known < 2 {
		t.Fatalf("newcomer known by only %d nodes after 20 rounds", known)
	}
}

func TestBootstrapSkipsDeadAndSelf(t *testing.T) {
	_, net := newTestNet(t, 5, Config{})
	ps := NewPeerSampler(net, 4)
	net.Kill(1)
	fresh := net.Join(func(m Message) {})
	ps.Bootstrap(fresh, []NodeID{fresh, 1, 2})
	for _, v := range ps.View(fresh) {
		if v == fresh || v == 1 {
			t.Fatalf("bootstrap view contains invalid entry %d", v)
		}
	}
}

func TestAggregatorConvergesToMean(t *testing.T) {
	_, net := newTestNet(t, 64, Config{})
	ps := NewPeerSampler(net, 8)
	initial := make(map[NodeID]float64)
	sum := 0.0
	for i, id := range net.AliveIDs() {
		v := float64(i)
		initial[id] = v
		sum += v
	}
	mean := sum / float64(len(initial))
	agg := NewAggregator(ps, initial)
	for r := 0; r < 60; r++ {
		ps.Round()
		agg.Round()
	}
	if spread := agg.MaxSpread(); spread > 0.5 {
		t.Fatalf("gossip spread after 60 rounds = %v", spread)
	}
	for id := range initial {
		if math.Abs(agg.Value(id)-mean) > 0.5 {
			t.Fatalf("node %d estimate %v far from mean %v", id, agg.Value(id), mean)
		}
	}
}

func TestAggregatorPreservesMass(t *testing.T) {
	_, net := newTestNet(t, 16, Config{})
	ps := NewPeerSampler(net, 4)
	initial := make(map[NodeID]float64)
	sum := 0.0
	rng := sim.NewRNG(9)
	for _, id := range net.AliveIDs() {
		v := rng.Float64() * 10
		initial[id] = v
		sum += v
	}
	agg := NewAggregator(ps, initial)
	for r := 0; r < 30; r++ {
		agg.Round()
	}
	total := 0.0
	for _, id := range net.AliveIDs() {
		total += agg.Value(id)
	}
	if math.Abs(total-sum) > 1e-6 {
		t.Fatalf("mass not conserved: %v vs %v", total, sum)
	}
}

func TestAggregatorEmptyNetwork(t *testing.T) {
	_, net := newTestNet(t, 2, Config{})
	ps := NewPeerSampler(net, 2)
	agg := NewAggregator(ps, map[NodeID]float64{0: 1, 1: 2})
	net.Kill(0)
	net.Kill(1)
	agg.Round() // must not panic
	if agg.MaxSpread() != 0 {
		t.Fatal("spread of dead network != 0")
	}
}
