package overlay

import (
	"fmt"

	"repro/internal/sim"
)

// ChurnConfig describes a Poisson-like churn process: at every period, each
// live node leaves with probability LeaveProb; departed nodes rejoin with
// probability RejoinProb. With WhitewashProb, a rejoining node instead comes
// back under a brand-new identity (the paper's §2.2 "whitewashers").
type ChurnConfig struct {
	Period        sim.Time
	LeaveProb     float64
	RejoinProb    float64
	WhitewashProb float64
	// NewIdentity builds the handler for a whitewashed identity; it receives
	// the old id and the fresh id. Required only when WhitewashProb > 0.
	NewIdentity func(old, fresh NodeID) Handler
}

// Churner drives the churn process on a network.
type Churner struct {
	net  *Network
	cfg  ChurnConfig
	rng  *sim.RNG
	dead []NodeID
	// Whitewashes counts identity resets performed.
	Whitewashes int
	// Leaves and Rejoins count churn events.
	Leaves, Rejoins int
	stop            func()
}

// StartChurn begins the churn process. It returns an error if the config is
// inconsistent.
func StartChurn(net *Network, cfg ChurnConfig) (*Churner, error) {
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("overlay: churn period must be positive, got %d", cfg.Period)
	}
	if cfg.WhitewashProb > 0 && cfg.NewIdentity == nil {
		return nil, fmt.Errorf("overlay: WhitewashProb %.2f requires NewIdentity", cfg.WhitewashProb)
	}
	c := &Churner{net: net, cfg: cfg, rng: net.RNG().Split()}
	cancel, err := net.Sim().Every(cfg.Period, c.tick)
	if err != nil {
		return nil, err
	}
	c.stop = cancel
	return c, nil
}

// Stop halts future churn events.
func (c *Churner) Stop() {
	if c.stop != nil {
		c.stop()
	}
}

func (c *Churner) tick() {
	// Departures.
	for _, id := range c.net.AliveIDs() {
		if c.rng.Bool(c.cfg.LeaveProb) {
			c.net.Kill(id)
			c.dead = append(c.dead, id)
			c.Leaves++
		}
	}
	// Rejoins.
	remaining := c.dead[:0]
	for _, id := range c.dead {
		if !c.rng.Bool(c.cfg.RejoinProb) {
			remaining = append(remaining, id)
			continue
		}
		c.Rejoins++
		if c.rng.Bool(c.cfg.WhitewashProb) {
			fresh := c.net.Join(nil)
			_ = c.net.SetHandler(fresh, c.cfg.NewIdentity(id, fresh)) // fresh id is valid
			c.Whitewashes++
		} else {
			c.net.Revive(id)
		}
	}
	c.dead = remaining
}
