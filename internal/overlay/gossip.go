package overlay

import (
	"sort"

	"repro/internal/sim"
)

// PeerSampler implements a push-pull partial-view peer sampling service
// (Cyclon-style shuffle). Each node keeps a bounded view of peer ids; every
// round it exchanges half its view with a random neighbor. The sampler is
// the discovery substrate for gossip aggregation and reputation
// dissemination.
type PeerSampler struct {
	net      *Network
	viewSize int
	views    map[NodeID][]NodeID
	rng      *sim.RNG
}

// NewPeerSampler builds a sampler with the given view size, seeding each
// node's view with random other nodes.
func NewPeerSampler(net *Network, viewSize int) *PeerSampler {
	if viewSize < 1 {
		viewSize = 1
	}
	ps := &PeerSampler{
		net:      net,
		viewSize: viewSize,
		views:    make(map[NodeID][]NodeID),
		rng:      net.RNG().Split(),
	}
	ids := net.AliveIDs()
	for _, id := range ids {
		view := make([]NodeID, 0, viewSize)
		for _, k := range ps.rng.Sample(len(ids), viewSize+1) {
			if ids[k] != id && len(view) < viewSize {
				view = append(view, ids[k])
			}
		}
		ps.views[id] = view
	}
	return ps
}

// Bootstrap introduces a (new) node to the sampler with an initial view of
// the given seed peers (dead or self entries are skipped). The seeds also
// learn about the newcomer, so it becomes reachable by shuffling. This is
// the join path for nodes created after the sampler (e.g. whitewashed
// identities).
func (ps *PeerSampler) Bootstrap(id NodeID, seeds []NodeID) {
	view := make([]NodeID, 0, ps.viewSize)
	for _, s := range seeds {
		if len(view) >= ps.viewSize {
			break
		}
		if s != id && ps.net.Alive(s) {
			view = append(view, s)
		}
	}
	ps.views[id] = view
	for _, s := range seeds {
		if s != id && ps.net.Alive(s) {
			ps.merge(s, []NodeID{id})
		}
	}
}

// View returns a copy of a node's current view.
func (ps *PeerSampler) View(id NodeID) []NodeID {
	v := ps.views[id]
	out := make([]NodeID, len(v))
	copy(out, v)
	return out
}

// RandomPeer returns a uniformly random live peer from id's view, or -1 if
// the view has no live peer.
func (ps *PeerSampler) RandomPeer(id NodeID) NodeID {
	v := ps.views[id]
	live := make([]NodeID, 0, len(v))
	for _, p := range v {
		if ps.net.Alive(p) {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return -1
	}
	return live[ps.rng.Intn(len(live))]
}

// Round performs one synchronous shuffle round for every live node.
// (The exchange itself is modeled synchronously; what matters for the
// experiments is the resulting view dynamics, not shuffle-message latency.)
func (ps *PeerSampler) Round() {
	for _, id := range ps.net.AliveIDs() {
		peer := ps.RandomPeer(id)
		if peer == -1 {
			continue
		}
		ps.exchange(id, peer)
	}
}

func (ps *PeerSampler) exchange(a, b NodeID) {
	half := ps.viewSize/2 + 1
	sendA := ps.subset(a, half, b)
	sendB := ps.subset(b, half, a)
	ps.merge(a, sendB)
	ps.merge(b, sendA)
}

func (ps *PeerSampler) subset(id NodeID, k int, exclude NodeID) []NodeID {
	v := ps.views[id]
	out := make([]NodeID, 0, k+1)
	out = append(out, id) // always advertise self
	for _, i := range ps.rng.Perm(len(v)) {
		if len(out) > k {
			break
		}
		if v[i] != exclude {
			out = append(out, v[i])
		}
	}
	return out
}

func (ps *PeerSampler) merge(id NodeID, incoming []NodeID) {
	seen := map[NodeID]bool{id: true}
	merged := make([]NodeID, 0, ps.viewSize)
	// Prefer fresh incoming entries, then old view.
	for _, p := range incoming {
		if !seen[p] && ps.net.Alive(p) {
			seen[p] = true
			merged = append(merged, p)
		}
	}
	for _, p := range ps.views[id] {
		if len(merged) >= ps.viewSize {
			break
		}
		if !seen[p] && ps.net.Alive(p) {
			seen[p] = true
			merged = append(merged, p)
		}
	}
	ps.views[id] = merged
}

// Aggregator runs push-pull gossip averaging: after enough rounds every
// node's value converges to the network mean. Used to disseminate global
// facet estimates (e.g. system-wide satisfaction) without a coordinator.
type Aggregator struct {
	ps     *PeerSampler
	values map[NodeID]float64
}

// NewAggregator starts an averaging computation from each node's initial
// value.
func NewAggregator(ps *PeerSampler, initial map[NodeID]float64) *Aggregator {
	vals := make(map[NodeID]float64, len(initial))
	for k, v := range initial {
		vals[k] = v
	}
	return &Aggregator{ps: ps, values: vals}
}

// Value returns node id's current estimate.
func (a *Aggregator) Value(id NodeID) float64 { return a.values[id] }

// Round performs one push-pull averaging round over live nodes.
func (a *Aggregator) Round() {
	ids := a.liveIDs()
	for _, id := range ids {
		peer := a.ps.RandomPeer(id)
		if peer == -1 {
			continue
		}
		if _, ok := a.values[peer]; !ok {
			continue
		}
		avg := (a.values[id] + a.values[peer]) / 2
		a.values[id] = avg
		a.values[peer] = avg
	}
}

// MaxSpread returns the max minus min estimate across live nodes — the
// convergence measure.
func (a *Aggregator) MaxSpread() float64 {
	ids := a.liveIDs()
	if len(ids) == 0 {
		return 0
	}
	lo, hi := a.values[ids[0]], a.values[ids[0]]
	for _, id := range ids[1:] {
		v := a.values[id]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

func (a *Aggregator) liveIDs() []NodeID {
	ids := make([]NodeID, 0, len(a.values))
	for id := range a.values {
		if a.ps.net.Alive(id) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
