package overlay

import (
	"testing"

	"repro/internal/sim"
)

func TestChurnLeavesAndRejoins(t *testing.T) {
	s, net := newTestNet(t, 100, Config{})
	ch, err := StartChurn(net, ChurnConfig{
		Period:     10,
		LeaveProb:  0.1,
		RejoinProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(500); err != nil {
		t.Fatal(err)
	}
	if ch.Leaves == 0 {
		t.Fatal("no departures in 50 churn ticks at 10% leave rate")
	}
	if ch.Rejoins == 0 {
		t.Fatal("no rejoins")
	}
	alive := len(net.AliveIDs())
	if alive == 0 || alive == 100 {
		t.Fatalf("alive = %d, expected churning population strictly between 0 and 100", alive)
	}
	if net.Size() != 100 {
		t.Fatalf("size grew to %d without whitewashing", net.Size())
	}
}

func TestChurnWhitewashing(t *testing.T) {
	s, net := newTestNet(t, 50, Config{})
	var freshIDs []NodeID
	ch, err := StartChurn(net, ChurnConfig{
		Period:        10,
		LeaveProb:     0.2,
		RejoinProb:    0.8,
		WhitewashProb: 1.0,
		NewIdentity: func(old, fresh NodeID) Handler {
			freshIDs = append(freshIDs, fresh)
			return func(m Message) {}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(300); err != nil {
		t.Fatal(err)
	}
	if ch.Whitewashes == 0 {
		t.Fatal("no whitewashes")
	}
	if ch.Whitewashes != len(freshIDs) {
		t.Fatalf("counter %d != callbacks %d", ch.Whitewashes, len(freshIDs))
	}
	if net.Size() != 50+ch.Whitewashes {
		t.Fatalf("size = %d, want %d", net.Size(), 50+ch.Whitewashes)
	}
	for _, id := range freshIDs {
		if int(id) < 50 {
			t.Fatalf("whitewashed identity reused old slot %d", id)
		}
	}
}

func TestChurnConfigValidation(t *testing.T) {
	_, net := newTestNet(t, 5, Config{})
	if _, err := StartChurn(net, ChurnConfig{Period: 0}); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := StartChurn(net, ChurnConfig{Period: 5, WhitewashProb: 0.5}); err == nil {
		t.Fatal("whitewash without NewIdentity accepted")
	}
}

func TestChurnStop(t *testing.T) {
	s, net := newTestNet(t, 100, Config{})
	ch, err := StartChurn(net, ChurnConfig{Period: 10, LeaveProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	leavesAtStop := ch.Leaves
	if leavesAtStop == 0 {
		t.Fatal("no leaves in first tick with LeaveProb=1")
	}
	ch.Stop()
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if ch.Leaves != leavesAtStop {
		t.Fatal("churn continued after Stop")
	}
	_ = sim.Time(0)
}
