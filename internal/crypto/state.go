package crypto

// ChainState is the serializable position of a PseudonymChain: the current
// chain state plus the epoch counter. Restoring it reproduces the exact
// pseudonym sequence from that point on.
type ChainState struct {
	State [32]byte
	Epoch int
}

// State captures the chain position.
func (p *PseudonymChain) State() ChainState {
	return ChainState{State: p.state, Epoch: p.epoch}
}

// SetState restores a previously captured chain position.
func (p *PseudonymChain) SetState(st ChainState) {
	p.state = st.State
	p.epoch = st.Epoch
}
