package crypto

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestIdentityDeterministic(t *testing.T) {
	a := NewIdentity(SeedFromUint64(1))
	b := NewIdentity(SeedFromUint64(1))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same seed produced different identities")
	}
	c := NewIdentity(SeedFromUint64(2))
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds collided")
	}
}

func TestSignVerify(t *testing.T) {
	id := NewIdentity(SeedFromUint64(7))
	msg := []byte("feedback report")
	sig := id.Sign(msg)
	if !Verify(id.Public(), msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(id.Public(), []byte("tampered"), sig) {
		t.Fatal("tampered message accepted")
	}
	other := NewIdentity(SeedFromUint64(8))
	if Verify(other.Public(), msg, sig) {
		t.Fatal("wrong key accepted")
	}
	if Verify([]byte{1, 2, 3}, msg, sig) {
		t.Fatal("malformed key accepted")
	}
}

func TestPublicReturnsCopy(t *testing.T) {
	id := NewIdentity(SeedFromUint64(9))
	p := id.Public()
	p[0] ^= 0xFF
	if !Verify(id.Public(), []byte("x"), id.Sign([]byte("x"))) {
		t.Fatal("mutating returned key corrupted the identity")
	}
}

func TestTransactionCertRoundTrip(t *testing.T) {
	key := []byte("tha-secret")
	c := SealCert(key, 42, "aa11", "bb22")
	if err := VerifyCert(key, c); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionCertTamper(t *testing.T) {
	key := []byte("tha-secret")
	c := SealCert(key, 42, "aa11", "bb22")

	tampered := c
	tampered.TxID = 43
	if err := VerifyCert(key, tampered); !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("tampered TxID: err = %v", err)
	}

	tampered = c
	tampered.From = "cc33"
	if err := VerifyCert(key, tampered); !errors.Is(err, ErrBadCertificate) {
		t.Fatal("tampered From accepted")
	}

	if err := VerifyCert([]byte("wrong-key"), c); !errors.Is(err, ErrBadCertificate) {
		t.Fatal("wrong key accepted")
	}
}

func TestCertFieldSeparation(t *testing.T) {
	// ("ab","c") must not collide with ("a","bc"): the MAC uses a separator.
	key := []byte("k")
	c1 := SealCert(key, 1, "ab", "c")
	c2 := TransactionCert{TxID: 1, From: "a", To: "bc", MAC: c1.MAC}
	if err := VerifyCert(key, c2); err == nil {
		t.Fatal("field-boundary collision")
	}
}

func TestPseudonymChain(t *testing.T) {
	p := NewPseudonymChain(SeedFromUint64(5))
	p0 := p.Current()
	p1, proof := p.Advance()
	if p0 == p1 {
		t.Fatal("pseudonym did not change")
	}
	if p.Epoch() != 1 {
		t.Fatalf("epoch = %d", p.Epoch())
	}
	if !VerifyAdvance(p0, p1, proof) {
		t.Fatal("valid advance proof rejected")
	}
	var fake [32]byte
	if VerifyAdvance(p0, p1, fake) {
		t.Fatal("fake proof accepted")
	}
	if VerifyAdvance(p1, p0, proof) {
		t.Fatal("reversed advance accepted")
	}
}

func TestPseudonymChainsIndependent(t *testing.T) {
	rng := sim.NewRNG(11)
	a := NewPseudonymChain(SeedFromUint64(rng.Uint64()))
	b := NewPseudonymChain(SeedFromUint64(rng.Uint64()))
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		pa, _ := a.Advance()
		pb, _ := b.Advance()
		if seen[pa] || seen[pb] || pa == pb {
			t.Fatal("pseudonym collision across chains")
		}
		seen[pa], seen[pb] = true, true
	}
}
