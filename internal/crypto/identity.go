// Package crypto provides the cryptographic substrate the reproduced
// protocols rely on: Ed25519 peer identities, HMAC-sealed transaction
// certificates (TrustMe's pairwise certificates, §2.2 of the paper), and
// hash-chain pseudonyms that approximate the anonymous-reputation schemes
// the paper cites ([2], [4]).
//
// Everything is stdlib-only (crypto/ed25519, crypto/hmac, crypto/sha256).
package crypto

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// Identity is a signing peer identity.
type Identity struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewIdentity derives a deterministic identity from a 32-byte seed source.
// Simulation code passes an RNG-derived seed so runs stay reproducible.
func NewIdentity(seed [32]byte) *Identity {
	priv := ed25519.NewKeyFromSeed(seed[:])
	return &Identity{pub: priv.Public().(ed25519.PublicKey), priv: priv}
}

// SeedFromUint64 expands a 64-bit simulation seed into a 32-byte key seed.
func SeedFromUint64(v uint64) [32]byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return sha256.Sum256(b[:])
}

// Public returns the public key bytes.
func (id *Identity) Public() []byte {
	out := make([]byte, len(id.pub))
	copy(out, id.pub)
	return out
}

// Fingerprint returns a short hex fingerprint of the public key.
func (id *Identity) Fingerprint() string {
	sum := sha256.Sum256(id.pub)
	return hex.EncodeToString(sum[:8])
}

// Sign signs msg.
func (id *Identity) Sign(msg []byte) []byte {
	return ed25519.Sign(id.priv, msg)
}

// Verify checks a signature against a public key.
func Verify(pub, msg, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize {
		return false
	}
	return ed25519.Verify(ed25519.PublicKey(pub), msg, sig)
}

// ErrBadCertificate is returned when a transaction certificate fails
// verification.
var ErrBadCertificate = errors.New("crypto: bad transaction certificate")

// TransactionCert is TrustMe's pairwise transaction certificate: both parties
// commit to the transaction id before it takes place, sealed with an HMAC
// under the trust-holding agent's key so that reports cannot be forged or
// replayed against a different transaction.
type TransactionCert struct {
	TxID     uint64
	From, To string // fingerprints
	MAC      []byte
}

// SealCert creates a certificate for transaction txID between two peers
// under key (the THA's secret).
func SealCert(key []byte, txID uint64, from, to string) TransactionCert {
	c := TransactionCert{TxID: txID, From: from, To: to}
	c.MAC = certMAC(key, c)
	return c
}

// VerifyCert checks the certificate seal. It returns ErrBadCertificate on
// any mismatch.
func VerifyCert(key []byte, c TransactionCert) error {
	if !hmac.Equal(c.MAC, certMAC(key, c)) {
		return fmt.Errorf("%w: tx %d %s->%s", ErrBadCertificate, c.TxID, c.From, c.To)
	}
	return nil
}

func certMAC(key []byte, c TransactionCert) []byte {
	h := hmac.New(sha256.New, key)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], c.TxID)
	h.Write(b[:])
	h.Write([]byte(c.From))
	h.Write([]byte{0})
	h.Write([]byte(c.To))
	return h.Sum(nil)
}

// PseudonymChain generates unlinkable-looking pseudonyms from a private seed
// by hash chaining: P_i = H(P_{i-1}). Only the owner can prove ownership of
// an epoch pseudonym by revealing a pre-image. This is the lightweight
// stand-in for the anonymous reputation credentials of the cited schemes.
type PseudonymChain struct {
	state [32]byte
	epoch int
}

// NewPseudonymChain creates a chain from a secret seed.
func NewPseudonymChain(seed [32]byte) *PseudonymChain {
	return &PseudonymChain{state: sha256.Sum256(seed[:])}
}

// Epoch returns the current epoch number.
func (p *PseudonymChain) Epoch() int { return p.epoch }

// Current returns the pseudonym for the current epoch.
func (p *PseudonymChain) Current() string {
	return hex.EncodeToString(p.state[:12])
}

// Advance moves to the next epoch, returning the new pseudonym. The previous
// state becomes the proof pre-image for the old pseudonym.
func (p *PseudonymChain) Advance() (pseudonym string, proof [32]byte) {
	proof = p.state
	p.state = sha256.Sum256(p.state[:])
	p.epoch++
	return p.Current(), proof
}

// VerifyAdvance checks that proof is the pre-image linking oldPseudonym to
// the chain state that produces newPseudonym.
func VerifyAdvance(oldPseudonym, newPseudonym string, proof [32]byte) bool {
	if hex.EncodeToString(proof[:12]) != oldPseudonym {
		return false
	}
	next := sha256.Sum256(proof[:])
	return hex.EncodeToString(next[:12]) == newPseudonym
}
