package trustnet

import (
	"repro/internal/privacy"
	"repro/internal/sim"
)

// Sim is the discrete-event simulation clock the privacy service's
// retention expiries run on.
type Sim = sim.Sim

// VirtualTime is a point on the simulation clock.
type VirtualTime = sim.Time

// RNG is the deterministic, splittable random stream used throughout.
type RNG = sim.RNG

// NewSim creates an empty simulation at time zero.
func NewSim() *Sim { return sim.New() }

// NewRNG creates a seeded random stream.
func NewRNG(seed uint64) *RNG { return sim.NewRNG(seed) }

// Ledger accounts for every piece of disclosed information; it backs the
// privacy facet (§2.3).
type Ledger = privacy.Ledger

// Disclosure is one ledgered information flow.
type Disclosure = privacy.Disclosure

// NewLedger creates an empty disclosure ledger.
func NewLedger() *Ledger { return privacy.NewLedger() }

// Policy is one data item's P3P-style privacy policy — exactly the field
// list of §2.3.
type Policy = privacy.Policy

// PolicyConditions are the access conditions of a policy.
type PolicyConditions = privacy.Conditions

// Operation is an action a requester may perform on data.
type Operation = privacy.Operation

// Operations.
const (
	Read      = privacy.Read
	Write     = privacy.Write
	Share     = privacy.Share
	Aggregate = privacy.Aggregate
)

// Purpose is the declared reason for an access.
type Purpose = privacy.Purpose

// Purposes.
const (
	SocialUse      = privacy.SocialUse
	ReputationUse  = privacy.ReputationUse
	ResearchUse    = privacy.ResearchUse
	CommercialUse  = privacy.CommercialUse
	MaintenanceUse = privacy.MaintenanceUse
)

// Obligation is a duty attached to a granted access.
type Obligation = privacy.Obligation

// Obligations.
const (
	NotifyOwner    = privacy.NotifyOwner
	DeleteAfterUse = privacy.DeleteAfterUse
	NoForward      = privacy.NoForward
)

// DenyReason explains a denial, aligned with the policy clause that
// failed.
type DenyReason = privacy.DenyReason

// Decision is the outcome of evaluating a request against a policy.
type Decision = privacy.Decision

// DefaultPolicy derives a sensible policy from an item's sensitivity
// class: the more sensitive, the narrower the operations and purposes, the
// higher the trust bar, the shorter the retention.
func DefaultPolicy(sens Sensitivity) Policy { return privacy.DefaultPolicy(sens) }

// PrivacyService is the PriServ-style service: owners publish private data
// with a policy; requesters must present operation, purpose and a
// sufficient trust level; every grant is ledgered and retention is
// enforced by simulation events.
type PrivacyService = privacy.Service

// NewPrivacyService assembles the full privacy stack over a fresh
// DHT: `nodes` storage machines with the given replication factor, a new
// disclosure ledger, and the service wired to the simulation clock.
func NewPrivacyService(nodes, replicas int, s *Sim) (*PrivacyService, *Ledger, error) {
	return privacy.NewStandaloneService(nodes, replicas, s)
}

// AuditResult is one OECD principle's conformance verdict.
type AuditResult = privacy.AuditResult

// AuditPrivacy checks the service and ledger against the OECD guideline
// principles of §2.3.
func AuditPrivacy(svc *PrivacyService, ledger *Ledger, now VirtualTime) []AuditResult {
	return privacy.Audit(svc, ledger, now)
}
