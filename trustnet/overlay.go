package trustnet

import "repro/internal/overlay"

// NodeID identifies a machine slot in the P2P overlay.
type NodeID = overlay.NodeID

// OverlayMessage is a message delivered by the overlay network.
type OverlayMessage = overlay.Message

// OverlayHandler consumes delivered messages.
type OverlayHandler = overlay.Handler

// OverlayConfig tunes the overlay's latency and loss model.
type OverlayConfig = overlay.Config

// OverlayNetwork is the simulated P2P message substrate.
type OverlayNetwork = overlay.Network

// NewOverlayNetwork creates an overlay of n nodes on the simulation clock.
func NewOverlayNetwork(s *Sim, rng *RNG, n int, cfg OverlayConfig) *OverlayNetwork {
	return overlay.NewNetwork(s, rng, n, cfg)
}

// PeerSampler is the gossip-based peer-sampling service: each node keeps a
// small partial view refreshed by view exchanges.
type PeerSampler = overlay.PeerSampler

// NewPeerSampler attaches a peer sampler with the given view size.
func NewPeerSampler(net *OverlayNetwork, viewSize int) *PeerSampler {
	return overlay.NewPeerSampler(net, viewSize)
}

// ChurnConfig parameterizes membership churn.
type ChurnConfig = overlay.ChurnConfig

// Churner drives periodic leaves, rejoins and whitewashing rejoins.
type Churner = overlay.Churner

// StartChurn schedules churn on the overlay.
func StartChurn(net *OverlayNetwork, cfg ChurnConfig) (*Churner, error) {
	return overlay.StartChurn(net, cfg)
}
