package trustnet

import (
	"bytes"
	"context"
	"encoding/gob"
	"testing"
)

// settledSchedule exercises every intervention class the sub-linear epoch
// tail must survive: churn (leave/join), base-disclosure and base-honesty
// rewrites, coupling toggles, and a full policy change (which moves the
// exposure scale and so reprices every privacy facet).
func settledSchedule() Schedule {
	return Schedule{}.
		At(2, LeaveWave{Users: []int{10, 11, 12, 13}}).
		At(3, DisclosureChange{Base: 0.6}).
		At(4, HonestyChange{Base: 0.7}).
		At(5, CouplingChange{Enabled: false}).
		At(6, JoinWave{Users: []int{10, 11, 12, 13}}).
		At(7, CouplingChange{Enabled: true}).
		At(8, PolicyChange{Policy: PrivacyPolicy{Disclosure: 0.8, TrustGate: 0.1, ExposureScale: 30}})
}

// runScheduled drives a fresh engine through the schedule and returns its
// full history plus a copy of the final trust vector.
func runScheduled(t *testing.T, epochs int, dense bool, opts []Option) ([]EpochStats, []float64) {
	t.Helper()
	eng, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetDenseReference(dense)
	s, err := eng.Session(context.Background(), WithMaxEpochs(epochs), WithSchedule(settledSchedule()))
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range s.Epochs() {
		if err != nil {
			t.Fatal(err)
		}
	}
	return eng.History(), append([]float64(nil), eng.TrustModel().Trusts()...)
}

// TestSettledMatchesDenseGolden is the tentpole's acceptance invariant: the
// settled-set/sparse epoch tail produces bit-for-bit the same EpochStats
// history and final trust vector as the dense reference that recomputes
// every user every epoch — across seeds, shard counts, an intervention-heavy
// schedule, and both inertia regimes.
func TestSettledMatchesDenseGolden(t *testing.T) {
	const epochs = 10
	for _, seed := range []uint64{101, 202, 303} {
		for _, inertia := range []float64{0.5, 0} {
			opts := func(shards int) []Option {
				return sessionScenario(seed, WithShards(shards), WithInertia(inertia))
			}
			wantHist, wantTrust := runScheduled(t, epochs, true, opts(1))
			want := histBytes(t, wantHist)
			for _, shards := range []int{1, 4} {
				gotHist, gotTrust := runScheduled(t, epochs, false, opts(shards))
				if !bytes.Equal(histBytes(t, gotHist), want) {
					t.Fatalf("seed=%d inertia=%v shards=%d: sparse history diverged from dense reference", seed, inertia, shards)
				}
				if !bytes.Equal(f64Bytes(t, gotTrust), f64Bytes(t, wantTrust)) {
					t.Fatalf("seed=%d inertia=%v shards=%d: sparse trust vector diverged from dense reference", seed, inertia, shards)
				}
			}
		}
	}
}

// f64Bytes gob-encodes a float vector for bit-exact comparison (== would
// mis-handle equal NaNs).
func f64Bytes(t *testing.T, v []float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("encode floats: %v", err)
	}
	return buf.Bytes()
}

// quiescentOptions builds the settled-regime scenario: a None mechanism
// keeps the shared reputation facet constant after epoch 0, and a leave wave
// shrinks the active set to a handful of users, so everyone else reaches a
// bitwise trust fixed point and drops out of the epoch tail entirely.
func quiescentOptions(seed uint64, shards int) []Option {
	return []Option{
		WithPeers(60),
		WithRNGSeed(seed),
		WithMix(Mix{Fractions: map[Class]float64{Honest: 0.8, Malicious: 0.2}, ForceHonest: []int{0, 1, 2}}),
		WithPrivacyPolicy(PrivacyPolicy{Disclosure: 0.8, TrustGate: 0.1}),
		WithCoupling(true),
		WithEpochRounds(4),
		WithReputationMechanism(NoReputation()),
		WithShards(shards),
	}
}

func runQuiescent(t *testing.T, epochs int, dense bool, opts []Option) *Engine {
	t.Helper()
	eng, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetDenseReference(dense)
	sched := Schedule{}.At(1, LeaveWave{Users: cohortIDs(5, 60)})
	s, err := eng.Session(context.Background(), WithMaxEpochs(epochs), WithSchedule(sched))
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range s.Epochs() {
		if err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

func cohortIDs(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for u := lo; u < hi; u++ {
		out = append(out, u)
	}
	return out
}

// TestSettledRegimeSkipsWork proves the sparse path actually engages — and
// still matches the dense reference — in the regime it was built for: a
// quiescent population where the reputation facet is constant and most
// users are inactive. Late epochs must report a settled majority and a
// dirty-facet count far below the population.
func TestSettledRegimeSkipsWork(t *testing.T) {
	const epochs = 80
	sparse := runQuiescent(t, epochs, false, quiescentOptions(9, 1))
	dense := runQuiescent(t, epochs, true, quiescentOptions(9, 1))
	if !bytes.Equal(histBytes(t, sparse.History()), histBytes(t, dense.History())) {
		t.Fatal("quiescent sparse history diverged from dense reference")
	}
	hist := sparse.History()
	last := hist[len(hist)-1]
	if last.SettledUsers < 40 {
		t.Errorf("final epoch settled %d/60 users, want a settled majority", last.SettledUsers)
	}
	if last.DirtyFacets >= 30 {
		t.Errorf("final epoch has %d dirty facets, want far below the population of 60", last.DirtyFacets)
	}
	// The counters are schedule-independent: the dense reference reports the
	// same ones.
	dlast := dense.History()[len(hist)-1]
	if dlast.SettledUsers != last.SettledUsers || dlast.DirtyFacets != last.DirtyFacets {
		t.Errorf("dense reference counters (%d, %d) != sparse (%d, %d)",
			dlast.SettledUsers, dlast.DirtyFacets, last.SettledUsers, last.DirtyFacets)
	}
}

// TestSnapshotResumeMidSettled pins the tentpole's snapshot story: a
// snapshot taken deep in the settled regime — when most users are being
// skipped — restores (across shard counts) into a run that continues
// bit-for-bit like the uninterrupted one, settled flags, dirty accounting
// and aggregate trees included.
func TestSnapshotResumeMidSettled(t *testing.T) {
	const totalEpochs, boundary = 70, 50
	want := histBytes(t, runQuiescent(t, totalEpochs, false, quiescentOptions(9, 1)).History())

	first := runQuiescent(t, boundary, false, quiescentOptions(9, 1))
	if st := first.History()[boundary-1]; st.SettledUsers == 0 {
		t.Fatalf("boundary epoch %d has no settled users; snapshot would not cover the settled regime", boundary)
	}
	snap := snapshotRoundTrip(t, first)
	for _, resumeShards := range []int{1, 4} {
		second, err := New(quiescentOptions(9, resumeShards)...)
		if err != nil {
			t.Fatal(err)
		}
		if err := second.Restore(snap); err != nil {
			t.Fatal(err)
		}
		// The leave wave fired before the boundary; the remaining epochs are
		// schedule-free.
		s, err := second.Session(context.Background(), WithMaxEpochs(totalEpochs-boundary))
		if err != nil {
			t.Fatal(err)
		}
		for _, err := range s.Epochs() {
			if err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(histBytes(t, second.History()), want) {
			t.Fatalf("resume at settled boundary (shards=%d) diverged from uninterrupted run", resumeShards)
		}
	}
}
