// Package trustnet is the public entry point to the library: a facade over
// the paper's correlated three-facet trust model ("Trust your Social
// Network According to Satisfaction, Reputation and Privacy" — Busnel,
// Serrano-Alvarado, Lamarre, 2010) and the substrates it runs on.
//
// The central type is Engine, constructed with functional options:
//
//	eng, err := trustnet.New(
//		trustnet.WithPeers(200),
//		trustnet.WithRNGSeed(42),
//		trustnet.WithMix(trustnet.Mix{Fractions: map[trustnet.Class]float64{
//			trustnet.Honest:    0.7,
//			trustnet.Malicious: 0.3,
//		}}),
//		trustnet.WithReputationMechanism(trustnet.EigenTrust(trustnet.EigenTrustConfig{
//			Pretrusted: []int{0, 1, 2},
//		})),
//		trustnet.WithPrivacyPolicy(trustnet.PrivacyPolicy{Disclosure: 0.8}),
//		trustnet.WithCoupling(true),
//	)
//
// An engine offers three assessment paths:
//
//   - Engine.Assess — single-shot: measure the three facets of the scenario
//     as it stands.
//   - Engine.AssessAll — batch: every user's facets and combined trust,
//     computed concurrently by a worker pool.
//   - Engine.Run — drive the §3 coupled dynamics epoch by epoch under a
//     context.Context.
//
// Run is the batch wrapper over the session layer. Engine.Session streams
// the same dynamics incrementally — Next pulls one epoch, Epochs adapts the
// session to range-over-func iteration — fires OnEpoch/OnRound observers
// without perturbing determinism, and applies a declarative, epoch-indexed
// intervention Schedule (Join/Leave/Whitewash waves, policy and trust-gate
// changes, honesty and adversary activation) at epoch boundaries.
// Engine.Snapshot captures the complete mutable state (every random-stream
// position included) as a versioned, serializable Snapshot; restoring it
// into an engine built from identical options continues bit-for-bit
// identically to an uninterrupted run, at any shard count.
//
// Scenario makes the whole setup a declarative, JSON round-trippable
// value — population, mix, graph, mechanism spec, privacy policy, coupling
// and epoch shape, intervention schedule — whose Options method compiles to
// the functional options above; a Registry ships the example programs as
// named built-ins (quickstart, filesharing, socialfeed, churnstorm,
// tradeoff), runnable via `trustsim -scenario`. Experiment expands a
// scenario over parameter axes (Vary, VaryTuples, VaryMechanism) and seed
// replications (Seeds), executes the run matrix on a bounded worker pool,
// and aggregates typed SweepResults (per-epoch mean/stddev/quantiles,
// CSV/JSON emitters); equal seeds produce byte-identical results at any
// parallelism.
//
// The §4 tradeoff explorer — Explore, Optimize, EvaluateSetting — runs
// over the same declarative scenarios, with its grids and hill-climb
// batches executed as sweeps.
//
// Reputation mechanisms are pluggable through the Mechanism interface; the
// cited implementations ship as factories (EigenTrust, TrustMe, PowerTrust,
// AnonRep, NoReputation). The supporting substrates — privacy service and
// ledger, discrete-event simulator, gossip overlay, graph generators,
// rendering tables — are re-exported so programs never import
// repro/internal directly.
//
// See README.md for a quickstart and DESIGN.md for the system inventory.
package trustnet
