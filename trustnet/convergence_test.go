package trustnet

import (
	"context"
	"testing"
)

// TestConvergenceDiagnosticsExposed checks the facade surfaces the solver
// diagnostics end to end: per-epoch iteration deltas in EpochStats, the
// cumulative counter on the engine, and the last Convergence record.
func TestConvergenceDiagnosticsExposed(t *testing.T) {
	eng, err := New(sessionScenario(3, WithReputationMechanism(EigenTrust(EigenTrustConfig{Pretrusted: []int{0, 1, 2}})))...)
	if err != nil {
		t.Fatal(err)
	}
	if eng.ComputeIterations() != 0 {
		t.Fatal("fresh engine reports compute iterations")
	}
	if _, ok := eng.Convergence(); ok {
		t.Fatal("fresh engine reports convergence diagnostics")
	}
	hist, err := eng.Run(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for i, e := range hist {
		if e.MechIterations <= 0 {
			t.Fatalf("epoch %d: MechIterations = %d, want > 0", i, e.MechIterations)
		}
		sum += int64(e.MechIterations)
	}
	if got := eng.ComputeIterations(); got != sum {
		t.Fatalf("cumulative iterations %d != sum of epoch deltas %d", got, sum)
	}
	conv, ok := eng.Convergence()
	if !ok || conv.Iterations <= 0 {
		t.Fatalf("Convergence() = %+v ok=%v after run", conv, ok)
	}
	if !conv.Warm {
		t.Fatal("default engine run did not warm-start its final compute")
	}
	last := hist[len(hist)-1]
	if last.MechResidual != conv.Residual {
		t.Fatalf("epoch residual %v != mechanism's last residual %v", last.MechResidual, conv.Residual)
	}
}

// TestConvergenceNotReportedForNonIterative checks mechanisms without an
// iterative solver stay silent rather than faking diagnostics.
func TestConvergenceNotReportedForNonIterative(t *testing.T) {
	eng, err := New(sessionScenario(5, WithReputationMechanism(TrustMe(TrustMeConfig{})))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := eng.Convergence(); ok {
		t.Fatal("trustme reported convergence diagnostics")
	}
	hist := eng.History()
	for i, e := range hist {
		if e.MechResidual != 0 {
			t.Fatalf("epoch %d: non-iterative mechanism reported residual %v", i, e.MechResidual)
		}
		// TrustMe recomputes in single rounds; the delta counts those.
		if e.MechIterations < 0 {
			t.Fatalf("epoch %d: negative iteration delta", i)
		}
	}
}

// TestComputeIterationsSurviveSnapshot pins the cumulative counter into the
// snapshot contract: a restored engine continues the count, not restarts it.
func TestComputeIterationsSurviveSnapshot(t *testing.T) {
	mech := WithReputationMechanism(EigenTrust(EigenTrustConfig{Pretrusted: []int{0, 1, 2}}))
	eng, err := New(sessionScenario(7, mech)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	mid := eng.ComputeIterations()
	if mid <= 0 {
		t.Fatal("no iterations accumulated before snapshot")
	}
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := New(sessionScenario(7, mech)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if restored.ComputeIterations() != mid {
		t.Fatalf("restored counter %d != snapshotted %d", restored.ComputeIterations(), mid)
	}
	if _, err := eng.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if eng.ComputeIterations() != restored.ComputeIterations() {
		t.Fatalf("counters diverged after restore-then-run: %d != %d",
			eng.ComputeIterations(), restored.ComputeIterations())
	}
}
