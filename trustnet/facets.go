package trustnet

import "repro/internal/core"

// Facets holds one user's three facet values, each in [0,1].
type Facets = core.Facets

// Weights weighs the facets in the combined metric Φ.
type Weights = core.Weights

// TrustModel tracks per-user trust towards the system, smoothed with
// inertia.
type TrustModel = core.TrustModel

// AppContext is an applicative context (§4); each context weighs the
// facets differently. (Named AppContext so it cannot be confused with
// context.Context, which this package's Run/AssessAll/Explore take.)
type AppContext = core.Context

// Applicative contexts with preset weight profiles.
const (
	// Balanced weighs all facets equally.
	Balanced = core.Balanced
	// PrivacyCritical models, e.g., a health-data social network.
	PrivacyCritical = core.PrivacyCritical
	// PerformanceCritical models, e.g., a file-sharing community.
	PerformanceCritical = core.PerformanceCritical
	// MarketplaceContext models a transaction market.
	MarketplaceContext = core.MarketplaceContext
)

// DefaultWeights balances the three facets equally.
func DefaultWeights() Weights { return core.DefaultWeights() }

// ContextWeights returns the preset weights for an applicative context.
func ContextWeights(c AppContext) Weights { return core.ContextWeights(c) }

// Combine is the generic metric Φ of §4: the weighted geometric mean of
// the facets — a zero on any weighted facet zeroes trust.
func Combine(f Facets, w Weights) (float64, error) { return core.Combine(f, w) }

// CombineArithmetic is the ablation variant of Φ: a weighted arithmetic
// mean, which lets one facet compensate for another's collapse.
func CombineArithmetic(f Facets, w Weights) (float64, error) {
	return core.CombineArithmetic(f, w)
}

// MapConfig configures the noise-free trust/satisfaction iterated map used
// to verify §3's first claim.
type MapConfig = core.MapConfig

// RunIteratedMap iterates the two-way trust/satisfaction coupling from t0
// and returns the trust trajectory (first element t0).
func RunIteratedMap(t0 float64, steps int, cfg MapConfig) ([]float64, error) {
	return core.RunIteratedMap(t0, steps, cfg)
}
