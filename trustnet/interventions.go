package trustnet

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Intervention is one typed scenario event a Session applies at an epoch
// boundary: churn waves, policy flips, adversary activation. Interventions
// are data, not code — a churn storm or a traitor wave is declared once in a
// Schedule instead of hand-written into the driving loop — and they apply
// through the same deterministic seams the engine itself uses, so a
// scheduled scenario is exactly as reproducible as an unscheduled one.
//
// The set of interventions is closed: the concrete types in this file are
// the vocabulary.
type Intervention interface {
	// check validates the intervention against the engine at session
	// construction, so a malformed schedule fails fast rather than at epoch
	// boundary N.
	check(e *Engine) error
	// applyTo executes the intervention at its epoch boundary.
	applyTo(e *Engine) error
}

// checkUsers validates a user id list against the population.
func checkUsers(e *Engine, users []int, what string) error {
	if len(users) == 0 {
		return fmt.Errorf("trustnet: %s with no users", what)
	}
	for _, u := range users {
		if u < 0 || u >= e.Peers() {
			return fmt.Errorf("trustnet: %s user %d out of range [0,%d)", what, u, e.Peers())
		}
	}
	return nil
}

// JoinWave brings the listed users (back) into the network. Joining is
// idempotent; a joining user resumes with all the state it left with.
type JoinWave struct {
	Users []int `json:"users"`
}

func (w JoinWave) check(e *Engine) error { return checkUsers(e, w.Users, "join wave") }
func (w JoinWave) applyTo(e *Engine) error {
	for _, u := range w.Users {
		if err := e.workloadEngine().SetPeerActive(u, true); err != nil {
			return err
		}
	}
	return nil
}

// LeaveWave removes the listed users from the network: they stop requesting,
// serving, and appearing in candidate sets, but keep their accumulated state
// for a later JoinWave.
type LeaveWave struct {
	Users []int `json:"users"`
}

func (w LeaveWave) check(e *Engine) error { return checkUsers(e, w.Users, "leave wave") }
func (w LeaveWave) applyTo(e *Engine) error {
	for _, u := range w.Users {
		if err := e.workloadEngine().SetPeerActive(u, false); err != nil {
			return err
		}
	}
	return nil
}

// WhitewashWave makes the listed users abandon their identities and rejoin
// fresh: the mechanism's per-peer reputation state is erased (the mechanism
// must implement Whitewasher) and the user is marked present. The contrast
// between zero-default and neutral-default mechanisms under this wave is the
// paper's identity-cost argument (§2.2).
type WhitewashWave struct {
	Users []int `json:"users"`
}

func (w WhitewashWave) check(e *Engine) error {
	if _, ok := e.Mechanism().(Whitewasher); !ok {
		return fmt.Errorf("trustnet: whitewash wave: mechanism %q cannot whitewash", e.Mechanism().Name())
	}
	return checkUsers(e, w.Users, "whitewash wave")
}
func (w WhitewashWave) applyTo(e *Engine) error {
	ww := e.Mechanism().(Whitewasher)
	for _, u := range w.Users {
		ww.Whitewash(u)
		if err := e.workloadEngine().SetPeerActive(u, true); err != nil {
			return err
		}
	}
	// Whitewashing erases mechanism rows behind the workload engine's back;
	// SetPeerActive alone would not invalidate cluster replicas when the
	// whitewashed users were already present.
	if len(w.Users) > 0 {
		e.workloadEngine().NoteMutation()
	}
	return nil
}

// PolicyChange installs a new privacy policy mid-run: base disclosure,
// trust-gate strictness, and exposure normalization, exactly as
// WithPrivacyPolicy configures them at construction.
type PolicyChange struct {
	Policy PrivacyPolicy `json:"policy"`
}

func (c PolicyChange) check(*Engine) error {
	p := c.Policy
	if p.Disclosure < 0 || p.Disclosure > 1 {
		return fmt.Errorf("trustnet: policy change disclosure %v out of [0,1]", p.Disclosure)
	}
	if p.TrustGate < 0 || p.TrustGate >= 1 {
		return fmt.Errorf("trustnet: policy change trust gate %v out of [0,1)", p.TrustGate)
	}
	if p.ExposureScale < 0 {
		return fmt.Errorf("trustnet: policy change negative exposure scale %v", p.ExposureScale)
	}
	return nil
}
func (c PolicyChange) applyTo(e *Engine) error {
	if err := e.dyn.SetBaseDisclosure(c.Policy.Disclosure); err != nil {
		return err
	}
	if err := e.workloadEngine().SetTrustGate(c.Policy.TrustGate); err != nil {
		return err
	}
	return e.workloadEngine().SetLedgerScale(c.Policy.ExposureScale)
}

// TrustGateChange adjusts only the privacy trust-gate strictness.
type TrustGateChange struct {
	Gate float64 `json:"gate"`
}

func (c TrustGateChange) check(*Engine) error {
	if c.Gate < 0 || c.Gate >= 1 {
		return fmt.Errorf("trustnet: trust gate %v out of [0,1)", c.Gate)
	}
	return nil
}
func (c TrustGateChange) applyTo(e *Engine) error {
	return e.workloadEngine().SetTrustGate(c.Gate)
}

// DisclosureChange adjusts only the base disclosure δ_base, including a true
// zero (share nothing). Every user's current disclosure resets to the new
// base; the §3 coupling re-derives per-user values from the next epoch on.
type DisclosureChange struct {
	Base float64 `json:"base"`
}

func (c DisclosureChange) check(*Engine) error {
	if c.Base < 0 || c.Base > 1 {
		return fmt.Errorf("trustnet: disclosure %v out of [0,1]", c.Base)
	}
	return nil
}
func (c DisclosureChange) applyTo(e *Engine) error {
	return e.dyn.SetBaseDisclosure(c.Base)
}

// HonestyChange adjusts h0, the truthful-reporting probability at zero trust
// (honesty activation: rises to 1 with full trust).
type HonestyChange struct {
	Base float64 `json:"base"`
}

func (c HonestyChange) check(*Engine) error {
	if c.Base < 0 || c.Base > 1 {
		return fmt.Errorf("trustnet: base honesty %v out of [0,1]", c.Base)
	}
	return nil
}
func (c HonestyChange) applyTo(e *Engine) error {
	return e.dyn.SetBaseHonesty(c.Base)
}

// CouplingChange enables or disables the §3 feedback loops mid-run.
type CouplingChange struct {
	Enabled bool `json:"enabled"`
}

func (CouplingChange) check(*Engine) error { return nil }
func (c CouplingChange) applyTo(e *Engine) error {
	e.dyn.SetCoupled(c.Enabled)
	return nil
}

// BehaviorChange swaps the listed users to a behaviour class mid-run: the
// adversary-activation intervention (honest users turning malicious, a
// traitor cohort flipping, or compromised users being restored to Honest).
type BehaviorChange struct {
	Users []int `json:"users"`
	Class Class `json:"class"`
}

func (c BehaviorChange) check(e *Engine) error {
	switch c.Class {
	case Honest, Malicious, Selfish, Traitor, WhitewasherClass, Slanderer, Colluder:
	default:
		return fmt.Errorf("trustnet: behavior change to unknown class %d", int(c.Class))
	}
	return checkUsers(e, c.Users, "behavior change")
}
func (c BehaviorChange) applyTo(e *Engine) error {
	for _, u := range c.Users {
		if err := e.workloadEngine().SetBehaviorClass(u, c.Class); err != nil {
			return err
		}
	}
	return nil
}

// checkReport validates one feedback report against the engine; it mirrors
// the workload engine's own submission checks so a malformed schedule (or a
// served API request) fails fast instead of at epoch boundary N.
func checkReport(e *Engine, r Report) error {
	if r.Rater < 0 || r.Rater >= e.Peers() {
		return fmt.Errorf("rater %d out of range [0,%d)", r.Rater, e.Peers())
	}
	if r.Ratee < 0 || r.Ratee >= e.Peers() {
		return fmt.Errorf("ratee %d out of range [0,%d)", r.Ratee, e.Peers())
	}
	if r.Rater == r.Ratee {
		return fmt.Errorf("self-rating report by %d rejected", r.Rater)
	}
	if !(r.Value >= 0 && r.Value <= 1) { // also rejects NaN
		return fmt.Errorf("report value %v out of [0,1]", r.Value)
	}
	return nil
}

// ReportWave submits a batch of externally authored feedback reports at an
// epoch boundary, in declaration order. It is the batch-mode twin of the
// served daemon's report queue: trustnetd applies queued reports at the
// next boundary (before that epoch's scheduled interventions), so a
// schedule that lists each epoch's ReportWave ahead of its other entries
// replays a served run bit-for-bit.
type ReportWave struct {
	Reports []Report `json:"reports"`
}

func (w ReportWave) check(e *Engine) error {
	if len(w.Reports) == 0 {
		return fmt.Errorf("trustnet: report wave with no reports")
	}
	for i, r := range w.Reports {
		if err := checkReport(e, r); err != nil {
			return fmt.Errorf("trustnet: report wave entry %d: %w", i, err)
		}
	}
	return nil
}
func (w ReportWave) applyTo(e *Engine) error {
	return e.SubmitReports(w.Reports...)
}

// ScheduledIntervention binds an intervention to the epoch boundary at which
// it fires (just before epoch Epoch runs; epoch indices are 0-based and
// global to the engine, so a resumed session skips boundaries that already
// fired before its snapshot).
type ScheduledIntervention struct {
	Epoch  int
	Action Intervention
}

// Schedule is a declarative, epoch-indexed intervention script. Build one
// with At:
//
//	sched := trustnet.Schedule{}.
//		At(3, trustnet.LeaveWave{Users: storm}).
//		At(6, trustnet.WhitewashWave{Users: storm}).
//		At(8, trustnet.PolicyChange{Policy: strict})
//
// Interventions at the same epoch apply in declaration order.
type Schedule []ScheduledIntervention

// At returns the schedule extended with interventions firing at the given
// epoch boundary. The receiver is never mutated — the result has its own
// backing array — so schedules branch safely from a shared base:
// base.At(5, x) and base.At(5, y) are independent.
func (s Schedule) At(epoch int, actions ...Intervention) Schedule {
	out := make(Schedule, len(s), len(s)+len(actions))
	copy(out, s)
	for _, a := range actions {
		out = append(out, ScheduledIntervention{Epoch: epoch, Action: a})
	}
	return out
}

// validate checks the whole schedule against an engine.
func (s Schedule) validate(e *Engine) error {
	for i, si := range s {
		if si.Epoch < 0 {
			return fmt.Errorf("trustnet: schedule entry %d at negative epoch %d", i, si.Epoch)
		}
		if si.Action == nil {
			return fmt.Errorf("trustnet: schedule entry %d has nil intervention", i)
		}
		if err := si.Action.check(e); err != nil {
			return fmt.Errorf("trustnet: schedule entry %d (epoch %d): %w", i, si.Epoch, err)
		}
	}
	return nil
}

// forEpoch returns the interventions firing at one epoch boundary, in
// declaration order.
func (s Schedule) forEpoch(epoch int) []Intervention {
	var out []Intervention
	for _, si := range s {
		if si.Epoch == epoch {
			out = append(out, si.Action)
		}
	}
	return out
}

// Intervention kind tags used by the JSON encoding of a Schedule. Each
// entry marshals as {"epoch": N, "kind": "<tag>", "args": {...}} with args
// holding the concrete intervention's fields, so schedules round-trip
// through scenario spec files.
const (
	kindJoinWave         = "join-wave"
	kindLeaveWave        = "leave-wave"
	kindWhitewashWave    = "whitewash-wave"
	kindPolicyChange     = "policy-change"
	kindTrustGateChange  = "trust-gate-change"
	kindDisclosureChange = "disclosure-change"
	kindHonestyChange    = "honesty-change"
	kindCouplingChange   = "coupling-change"
	kindBehaviorChange   = "behavior-change"
	kindReportWave       = "report-wave"
)

// interventionKind maps a concrete intervention to its JSON tag.
func interventionKind(a Intervention) (string, error) {
	switch a.(type) {
	case JoinWave:
		return kindJoinWave, nil
	case LeaveWave:
		return kindLeaveWave, nil
	case WhitewashWave:
		return kindWhitewashWave, nil
	case PolicyChange:
		return kindPolicyChange, nil
	case TrustGateChange:
		return kindTrustGateChange, nil
	case DisclosureChange:
		return kindDisclosureChange, nil
	case HonestyChange:
		return kindHonestyChange, nil
	case CouplingChange:
		return kindCouplingChange, nil
	case BehaviorChange:
		return kindBehaviorChange, nil
	case ReportWave:
		return kindReportWave, nil
	default:
		return "", fmt.Errorf("trustnet: intervention %T has no JSON encoding", a)
	}
}

// interventionEnvelope is the wire form of one scheduled intervention.
type interventionEnvelope struct {
	Epoch int             `json:"epoch"`
	Kind  string          `json:"kind"`
	Args  json.RawMessage `json:"args,omitempty"`
}

// MarshalJSON encodes the entry as a typed envelope.
func (si ScheduledIntervention) MarshalJSON() ([]byte, error) {
	if si.Action == nil {
		return nil, fmt.Errorf("trustnet: schedule entry at epoch %d has nil intervention", si.Epoch)
	}
	kind, err := interventionKind(si.Action)
	if err != nil {
		return nil, err
	}
	args, err := json.Marshal(si.Action)
	if err != nil {
		return nil, err
	}
	return json.Marshal(interventionEnvelope{Epoch: si.Epoch, Kind: kind, Args: args})
}

// strictUnmarshal decodes with unknown-field rejection, so a typo in a
// schedule entry fails loudly instead of silently dropping the field —
// custom unmarshalers do not inherit the outer decoder's strictness, so
// the envelope enforces its own.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// UnmarshalJSON decodes a typed envelope back into the concrete
// intervention named by its kind tag, rejecting unknown fields in both the
// envelope and the intervention payload.
func (si *ScheduledIntervention) UnmarshalJSON(data []byte) error {
	var env interventionEnvelope
	if err := strictUnmarshal(data, &env); err != nil {
		return err
	}
	args := env.Args
	if len(args) == 0 {
		args = json.RawMessage("{}")
	}
	var action Intervention
	switch env.Kind {
	case kindJoinWave:
		var a JoinWave
		if err := strictUnmarshal(args, &a); err != nil {
			return err
		}
		action = a
	case kindLeaveWave:
		var a LeaveWave
		if err := strictUnmarshal(args, &a); err != nil {
			return err
		}
		action = a
	case kindWhitewashWave:
		var a WhitewashWave
		if err := strictUnmarshal(args, &a); err != nil {
			return err
		}
		action = a
	case kindPolicyChange:
		var a PolicyChange
		if err := strictUnmarshal(args, &a); err != nil {
			return err
		}
		action = a
	case kindTrustGateChange:
		var a TrustGateChange
		if err := strictUnmarshal(args, &a); err != nil {
			return err
		}
		action = a
	case kindDisclosureChange:
		var a DisclosureChange
		if err := strictUnmarshal(args, &a); err != nil {
			return err
		}
		action = a
	case kindHonestyChange:
		var a HonestyChange
		if err := strictUnmarshal(args, &a); err != nil {
			return err
		}
		action = a
	case kindCouplingChange:
		var a CouplingChange
		if err := strictUnmarshal(args, &a); err != nil {
			return err
		}
		action = a
	case kindBehaviorChange:
		var a BehaviorChange
		if err := strictUnmarshal(args, &a); err != nil {
			return err
		}
		action = a
	case kindReportWave:
		var a ReportWave
		if err := strictUnmarshal(args, &a); err != nil {
			return err
		}
		action = a
	default:
		return fmt.Errorf("trustnet: unknown intervention kind %q", env.Kind)
	}
	si.Epoch = env.Epoch
	si.Action = action
	return nil
}

// cloneIntervention deep-copies an intervention's payload, so schedules
// handed out by the registry (or cloned into sweep cells) never share
// mutable user lists with their source.
func cloneIntervention(a Intervention) Intervention {
	switch v := a.(type) {
	case JoinWave:
		v.Users = append([]int(nil), v.Users...)
		return v
	case LeaveWave:
		v.Users = append([]int(nil), v.Users...)
		return v
	case WhitewashWave:
		v.Users = append([]int(nil), v.Users...)
		return v
	case BehaviorChange:
		v.Users = append([]int(nil), v.Users...)
		return v
	case ReportWave:
		v.Reports = append([]Report(nil), v.Reports...)
		return v
	default:
		// The remaining vocabulary carries only scalar payloads.
		return a
	}
}

// clone deep-copies the schedule, payload slices included.
func (s Schedule) clone() Schedule {
	if s == nil {
		return nil
	}
	out := make(Schedule, len(s))
	for i, si := range s {
		out[i] = ScheduledIntervention{Epoch: si.Epoch, Action: cloneIntervention(si.Action)}
	}
	return out
}
