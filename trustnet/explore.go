package trustnet

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// Setting is one point in the settable-configuration space of §4 / Fig. 2.
type Setting = core.Setting

// Point is an evaluated setting: its measured global facets and trust.
type Point = core.Point

// Constraints are minimum facet levels an application context imposes (§4).
type Constraints = core.Constraints

// ErrInfeasible is returned by Optimize when no explored setting meets the
// constraints.
var ErrInfeasible = core.ErrInfeasible

// ExploreResult is the outcome of a grid exploration: the full grid, the
// "Area A" intersection region of Fig. 2 (left), and the best points.
type ExploreResult struct {
	// Points is the full grid, disclosure-major then gate.
	Points []Point
	// AreaA are the points whose facets all reach the thresholds — the
	// intersection region of Fig. 2 (left).
	AreaA []Point
	// Best is the maximum-trust point over the whole grid.
	Best Point
	// BestInAreaA is the maximum-trust point inside Area A (zero Point
	// when the area is empty).
	BestInAreaA Point
	// AreaFraction is |AreaA| / |Points|.
	AreaFraction float64
}

// ExploreConfig configures the §4 tradeoff explorer over a declarative
// Scenario.
type ExploreConfig struct {
	// Scenario is the base spec; its disclosure and trust-gate settings
	// are overridden per evaluated point, and its mechanism spec builds a
	// fresh mechanism for every point. Fields that only apply to a live
	// engine's coupled dynamics (Coupled, EpochRounds, Epochs, Inertia,
	// BaseHonesty, UserWeights, Schedule) are rejected: exploration
	// measures settings, not feedback.
	Scenario Scenario
	// Rounds per evaluation (default 30; negative is an error).
	Rounds int
	// Weights combine facets into trust (default: the scenario's weights).
	Weights Weights
	// GridSize is the number of points per axis (default 5; a value below
	// 2 is an error).
	GridSize int
	// Thresholds define Area A membership: a setting belongs to the
	// intersection area when every measured global facet reaches its
	// threshold (default 0.5 each).
	Thresholds Facets
}

// withDefaults validates the explorer knobs. Zero means "default";
// explicit nonpositive or degenerate values are configuration errors,
// never silently clamped.
func (cfg ExploreConfig) withDefaults() (ExploreConfig, error) {
	sc := cfg.Scenario
	var dropped []string
	if sc.Coupled {
		dropped = append(dropped, "Coupled")
	}
	if sc.EpochRounds != 0 {
		dropped = append(dropped, "EpochRounds")
	}
	if sc.Epochs != 0 {
		dropped = append(dropped, "Epochs")
	}
	if sc.Inertia != nil {
		dropped = append(dropped, "Inertia")
	}
	if sc.BaseHonesty != nil {
		dropped = append(dropped, "BaseHonesty")
	}
	if len(sc.UserWeights) > 0 {
		dropped = append(dropped, "UserWeights")
	}
	if len(sc.Schedule) > 0 {
		dropped = append(dropped, "Schedule")
	}
	if len(dropped) > 0 {
		return cfg, fmt.Errorf(
			"trustnet: explorer scenarios do not support %v; exploration measures settings, not coupled dynamics", dropped)
	}
	if cfg.Rounds < 0 {
		return cfg, fmt.Errorf("trustnet: explore rounds must be positive, got %d", cfg.Rounds)
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 30
	}
	if cfg.GridSize < 0 || cfg.GridSize == 1 {
		return cfg, fmt.Errorf("trustnet: explore grid needs at least 2 points per axis, got %d", cfg.GridSize)
	}
	if cfg.GridSize == 0 {
		cfg.GridSize = 5
	}
	if cfg.Thresholds == (Facets{}) {
		cfg.Thresholds = Facets{Satisfaction: 0.5, Reputation: 0.5, Privacy: 0.5}
	}
	return cfg, nil
}

// pointScenario compiles the explorer config into the uncoupled
// single-epoch base scenario its sweeps expand: one epoch of Rounds
// workload rounds per evaluated point, combined under the explorer's
// weights.
func (cfg ExploreConfig) pointScenario() Scenario {
	sc := cfg.Scenario.clone()
	sc.Coupled = false
	sc.EpochRounds = cfg.Rounds
	sc.Epochs = 1
	if cfg.Weights != (Weights{}) {
		w := cfg.Weights
		sc.Weights = &w
		sc.Context = ""
	}
	return sc
}

// evaluatePoints measures the given settings as one sweep: a VaryTuples
// axis over (disclosure, trustgate), one run per setting, folded in input
// order — identical for every worker count.
func evaluatePoints(ctx context.Context, base Scenario, settings []Setting) ([]Point, error) {
	tuples := make([][]float64, len(settings))
	for i, s := range settings {
		if s.Disclosure < 0 || s.Disclosure > 1 || s.TrustGate < 0 || s.TrustGate >= 1 {
			return nil, fmt.Errorf("trustnet: setting %+v out of range", s)
		}
		tuples[i] = []float64{s.Disclosure, s.TrustGate}
	}
	res, err := NewExperiment(base).
		VaryTuples([]string{"disclosure", "trustgate"}, tuples...).
		Run(ctx)
	if err != nil {
		return nil, err
	}
	points := make([]Point, len(res.Cells))
	for i, c := range res.Cells {
		points[i] = Point{
			Setting: settings[i],
			Global:  c.Runs[0].Global,
			Trust:   c.Runs[0].Trust,
		}
	}
	return points, nil
}

// EvaluateSetting measures the global facets and trust of one setting by
// running a fresh scenario.
func EvaluateSetting(cfg ExploreConfig, s Setting) (Point, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Point{}, err
	}
	points, err := evaluatePoints(context.Background(), cfg.pointScenario(), []Setting{s})
	if err != nil {
		return Point{}, err
	}
	return points[0], nil
}

// Explore sweeps the (disclosure, trust-gate) grid and classifies Area A.
// The grid is literally a Sweep: a disclosure axis × a trust-gate axis over
// the point scenario, each cell building a fresh mechanism via the spec's
// factory, executed on the bounded worker pool (the scenario's Workers
// field caps it; default GOMAXPROCS) and folded in grid order so the
// outcome is identical for every pool size. ctx cancels between
// evaluations.
func Explore(ctx context.Context, cfg ExploreConfig) (*ExploreResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	g := cfg.GridSize
	settings := make([]Setting, 0, g*g)
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			settings = append(settings, Setting{
				Disclosure: float64(i) / float64(g-1),
				TrustGate:  0.9 * float64(j) / float64(g-1),
			})
		}
	}
	points, err := evaluatePoints(ctx, cfg.pointScenario(), settings)
	if err != nil {
		return nil, err
	}
	res := &ExploreResult{Points: points}
	for _, p := range points {
		if p.Trust > res.Best.Trust {
			res.Best = p
		}
		if inArea(p.Global, cfg.Thresholds) {
			res.AreaA = append(res.AreaA, p)
			if p.Trust > res.BestInAreaA.Trust {
				res.BestInAreaA = p
			}
		}
	}
	if len(res.Points) > 0 {
		res.AreaFraction = float64(len(res.AreaA)) / float64(len(res.Points))
	}
	return res, nil
}

func inArea(f, thresholds Facets) bool {
	return f.Satisfaction >= thresholds.Satisfaction &&
		f.Reputation >= thresholds.Reputation &&
		f.Privacy >= thresholds.Privacy
}

// Optimize finds the maximum-trust setting subject to constraints: a
// coarse grid sweep followed by hill-climbing refinement around the best
// feasible point. Each neighbour batch is itself a small sweep, evaluated
// concurrently and folded in fixed direction order — deterministic for
// every pool size — honouring ctx between evaluations.
func Optimize(ctx context.Context, cfg ExploreConfig, cons Constraints) (Point, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Point{}, err
	}
	res, err := Explore(ctx, cfg)
	if err != nil {
		return Point{}, err
	}
	satisfied := func(f Facets) bool {
		return f.Satisfaction >= cons.MinSatisfaction &&
			f.Reputation >= cons.MinReputation &&
			f.Privacy >= cons.MinPrivacy
	}
	best := Point{Trust: -1}
	for _, p := range res.Points {
		if satisfied(p.Global) && p.Trust > best.Trust {
			best = p
		}
	}
	if best.Trust < 0 {
		return Point{}, ErrInfeasible
	}
	base := cfg.pointScenario()
	step := 1.0 / float64(cfg.GridSize-1)
	for iter := 0; iter < 4; iter++ {
		var batch []Setting
		for _, d := range [][2]float64{{step, 0}, {-step, 0}, {0, step}, {0, -step}} {
			s := Setting{
				Disclosure: clampTo(best.Setting.Disclosure+d[0], 0, 1),
				TrustGate:  clampTo(best.Setting.TrustGate+d[1], 0, 0.9),
			}
			if s == best.Setting {
				continue
			}
			batch = append(batch, s)
		}
		points, err := evaluatePoints(ctx, base, batch)
		if err != nil {
			return Point{}, err
		}
		improved := false
		for _, p := range points {
			if satisfied(p.Global) && p.Trust > best.Trust {
				best = p
				improved = true
			}
		}
		if !improved {
			step /= 2
		}
	}
	return best, nil
}

func clampTo(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
