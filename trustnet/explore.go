package trustnet

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// Setting is one point in the settable-configuration space of §4 / Fig. 2.
type Setting = core.Setting

// Point is an evaluated setting: its measured global facets and trust.
type Point = core.Point

// Constraints are minimum facet levels an application context imposes (§4).
type Constraints = core.Constraints

// ExploreResult is the outcome of a grid exploration: the full grid, the
// "Area A" intersection region of Fig. 2 (left), and the best points.
type ExploreResult = core.ExploreResult

// ErrInfeasible is returned by Optimize when no explored setting meets the
// constraints.
var ErrInfeasible = core.ErrInfeasible

// ExploreConfig configures the §4 tradeoff explorer over an option-built
// scenario.
type ExploreConfig struct {
	// Scenario is the engine-option template; its disclosure and trust-gate
	// settings are overridden per evaluated point, and the scenario's
	// mechanism factory builds a fresh mechanism for every point. Options
	// that only apply to a live Engine's coupled dynamics (WithCoupling,
	// WithEpochRounds, WithInertia, WithBaseHonesty, WithUserWeights) are
	// rejected: exploration measures settings, not feedback.
	Scenario []Option
	// Rounds per evaluation (default 30).
	Rounds int
	// Weights combine facets into trust (default: the scenario's weights).
	Weights Weights
	// GridSize is the number of points per axis (default 5).
	GridSize int
	// Thresholds define Area A membership: a setting belongs to the
	// intersection area when every measured global facet reaches its
	// threshold (default 0.5 each).
	Thresholds Facets
}

// toCore resolves the option template into the internal explorer config.
func (cfg ExploreConfig) toCore() (core.ExploreConfig, error) {
	ec, err := resolveOptions(cfg.Scenario)
	if err != nil {
		return core.ExploreConfig{}, err
	}
	var dropped []string
	if ec.coupled {
		dropped = append(dropped, "WithCoupling")
	}
	if ec.epochRounds != 0 {
		dropped = append(dropped, "WithEpochRounds")
	}
	if ec.inertia != 0 {
		dropped = append(dropped, "WithInertia")
	}
	if ec.baseHonesty != 0 {
		dropped = append(dropped, "WithBaseHonesty")
	}
	if len(ec.userWeights) > 0 {
		dropped = append(dropped, "WithUserWeights")
	}
	if len(dropped) > 0 {
		return core.ExploreConfig{}, fmt.Errorf(
			"trustnet: explorer scenarios do not support %v; exploration measures settings, not coupled dynamics", dropped)
	}
	weights := cfg.Weights
	if weights == (Weights{}) {
		weights = ec.weights
	}
	return core.ExploreConfig{
		Base:          ec.wl,
		Mechanism:     core.MechanismFactory(ec.factory),
		Rounds:        cfg.Rounds,
		Weights:       weights,
		GridSize:      cfg.GridSize,
		Thresholds:    cfg.Thresholds,
		ExposureScale: ec.exposureScale,
		Workers:       ec.workers,
	}, nil
}

// EvaluateSetting measures the global facets and trust of one setting by
// running a fresh scenario.
func EvaluateSetting(cfg ExploreConfig, s Setting) (Point, error) {
	cc, err := cfg.toCore()
	if err != nil {
		return Point{}, err
	}
	return core.EvaluateSetting(cc, s)
}

// Explore sweeps the (disclosure, trust-gate) grid and classifies Area A.
// Grid settings are evaluated concurrently under a bounded worker pool
// (WithWorkers in the scenario template caps it; default GOMAXPROCS) — each
// point builds a fresh mechanism via the factory, and results fold in grid
// order so the outcome is identical for every pool size. ctx cancels the
// sweep between evaluations.
func Explore(ctx context.Context, cfg ExploreConfig) (*ExploreResult, error) {
	cc, err := cfg.toCore()
	if err != nil {
		return nil, err
	}
	return core.Explore(ctx, cc)
}

// Optimize finds the maximum-trust setting subject to constraints: a
// coarse concurrent grid pass followed by hill-climbing refinement around
// the best feasible point (each neighbour batch also evaluated
// concurrently), honouring ctx between evaluations.
func Optimize(ctx context.Context, cfg ExploreConfig, cons Constraints) (Point, error) {
	cc, err := cfg.toCore()
	if err != nil {
		return Point{}, err
	}
	return core.Optimize(ctx, cc, cons)
}
