package trustnet

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"

	"repro/internal/adversary"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Agg summarizes one aggregated sample (across seed replications): count,
// mean, sample stddev, min, median, max.
type Agg = metrics.Agg

// AxisValue is one coordinate of a sweep cell: the parameter it sets and
// the value it took. Label carries a human name for non-numeric axes (the
// mechanism axis); numeric axes leave it empty.
type AxisValue struct {
	Param string  `json:"param"`
	Value float64 `json:"value"`
	Label string  `json:"label,omitempty"`
}

// text renders the coordinate value for tables and CSV cells.
func (av AxisValue) text() string {
	if av.Label != "" {
		return av.Label
	}
	return strconv.FormatFloat(av.Value, 'g', -1, 64)
}

// Coord locates one cell of the sweep matrix: one AxisValue per axis, in
// axis declaration order.
type Coord []AxisValue

// Get returns the value of the named coordinate (NaN when absent).
func (c Coord) Get(param string) float64 {
	for _, av := range c {
		if av.Param == param {
			return av.Value
		}
	}
	return math.NaN()
}

func (c Coord) String() string {
	s := ""
	for i, av := range c {
		if i > 0 {
			s += " "
		}
		s += av.Param + "=" + av.text()
	}
	return s
}

// Axis is one serializable dimension of a sweep: either a set of value
// tuples applied to named scenario parameters, or a set of mechanism specs.
type Axis struct {
	// Params names the scenario parameters this axis sets; Values holds
	// one tuple per axis point (each tuple one value per parameter).
	Params []string    `json:"params,omitempty"`
	Values [][]float64 `json:"values,omitempty"`
	// Mechanisms makes this a mechanism axis: each point swaps the
	// scenario's mechanism spec.
	Mechanisms []MechanismSpec `json:"mechanisms,omitempty"`
}

// size returns the number of points along the axis.
func (a Axis) size() int {
	if len(a.Mechanisms) > 0 {
		return len(a.Mechanisms)
	}
	return len(a.Values)
}

// apply sets the axis's i-th point on sc and returns its coordinate.
func (a Axis) apply(sc *Scenario, i int) (Coord, error) {
	if len(a.Mechanisms) > 0 {
		spec := a.Mechanisms[i]
		spec.Pretrusted = append([]int(nil), spec.Pretrusted...)
		sc.Mechanism = spec
		kind := spec.Kind
		if kind == "" {
			kind = "eigentrust"
		}
		return Coord{{Param: "mechanism", Value: float64(i), Label: kind}}, nil
	}
	coord := make(Coord, 0, len(a.Params))
	for j, param := range a.Params {
		if err := applyParam(sc, param, a.Values[i][j]); err != nil {
			return nil, err
		}
		coord = append(coord, AxisValue{Param: param, Value: a.Values[i][j]})
	}
	return coord, nil
}

// validate checks the axis shape and applies its first point to a throwaway
// copy of base, so an unknown parameter or a malformed tuple fails at
// declaration time, not run N of the matrix.
func (a Axis) validate(base Scenario) error {
	if len(a.Mechanisms) > 0 {
		if len(a.Params) > 0 || len(a.Values) > 0 {
			return fmt.Errorf("trustnet: axis mixes mechanisms with parameter values")
		}
		for _, spec := range a.Mechanisms {
			if _, err := spec.Factory(1); err != nil {
				return err
			}
		}
		return nil
	}
	if len(a.Params) == 0 {
		return fmt.Errorf("trustnet: axis with no parameters")
	}
	if len(a.Values) == 0 {
		return fmt.Errorf("trustnet: axis %v with no values", a.Params)
	}
	for _, tuple := range a.Values {
		if len(tuple) != len(a.Params) {
			return fmt.Errorf("trustnet: axis %v tuple %v has %d values, want %d",
				a.Params, tuple, len(tuple), len(a.Params))
		}
	}
	scratch := base.clone()
	if _, err := a.apply(&scratch, 0); err != nil {
		return err
	}
	return nil
}

// ensurePrivacy materializes the scenario's privacy policy so an axis can
// set one of its fields.
func ensurePrivacy(sc *Scenario) *PrivacyPolicy {
	if sc.Privacy == nil {
		p := DefaultPrivacyPolicy()
		sc.Privacy = &p
	}
	return sc.Privacy
}

// intParam converts an axis value to an int, rejecting non-integral values
// so a typo'd 0.5 on an integer knob cannot silently truncate.
func intParam(param string, v float64) (int, error) {
	if v != math.Trunc(v) {
		return 0, fmt.Errorf("trustnet: parameter %q needs an integer value, got %v", param, v)
	}
	return int(v), nil
}

// applyParam sets one named scenario parameter. The vocabulary covers the
// settable configuration of §4 (disclosure, trust gate), the §3 coupling
// knobs, the workload shape, the mechanism parameters, and any adversary
// class name (which sets that class's population fraction, with the honest
// class absorbing the remainder).
func applyParam(sc *Scenario, param string, v float64) error {
	switch param {
	case "disclosure":
		ensurePrivacy(sc).Disclosure = v
	case "gate", "trustgate":
		ensurePrivacy(sc).TrustGate = v
	case "exposurescale":
		ensurePrivacy(sc).ExposureScale = v
	case "coupling":
		sc.Coupled = v != 0
	case "inertia":
		sc.Inertia = floatPtr(v)
	case "basehonesty":
		sc.BaseHonesty = floatPtr(v)
	case "memory":
		sc.Satisfaction = &SatisfactionModel{Memory: v}
	case "activityskew":
		sc.ActivitySkew = v
	case "granularity":
		sc.Mechanism.Granularity = v
	case "noise":
		sc.Mechanism.Noise = v
	case "priorstrength":
		sc.Mechanism.PriorStrength = v
	case "alpha":
		sc.Mechanism.Alpha = v
	case "epsilon":
		sc.Mechanism.Epsilon = v
	case "peers", "epochrounds", "epochs", "recomputeevery", "candidatesize",
		"interactionsperround", "graphparam", "shards":
		n, err := intParam(param, v)
		if err != nil {
			return err
		}
		switch param {
		case "peers":
			sc.Peers = n
		case "epochrounds":
			sc.EpochRounds = n
		case "epochs":
			sc.Epochs = n
		case "recomputeevery":
			sc.RecomputeEvery = n
		case "candidatesize":
			sc.CandidateSize = n
		case "interactionsperround":
			sc.InteractionsPerRound = n
		case "graphparam":
			if sc.Graph == nil {
				return fmt.Errorf("trustnet: parameter %q needs the scenario to select a graph", param)
			}
			sc.Graph.Param = n
		case "shards":
			sc.Shards = n
		}
	default:
		cls, ok := adversary.ClassNamed(param)
		if !ok || cls == Honest {
			return fmt.Errorf("trustnet: unknown sweep parameter %q", param)
		}
		return setClassFraction(sc, param, v)
	}
	return nil
}

// setClassFraction sets one adversary class's population fraction; the
// honest class absorbs the remainder.
func setClassFraction(sc *Scenario, class string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("trustnet: class fraction %s=%v out of [0,1]", class, v)
	}
	if sc.Mix == nil {
		sc.Mix = &MixSpec{}
	}
	if sc.Mix.Fractions == nil {
		sc.Mix.Fractions = map[string]float64{}
	}
	sc.Mix.Fractions[class] = v
	rest := 1.0
	for name, f := range sc.Mix.Fractions {
		if name != "honest" {
			rest -= f
		}
	}
	if rest < -1e-9 {
		return fmt.Errorf("trustnet: class fractions exceed 1 after %s=%v", class, v)
	}
	if rest < 0 {
		rest = 0
	}
	sc.Mix.Fractions["honest"] = rest
	return nil
}

// ExperimentSpec is the serializable description of a sweep: the base
// scenario, the parameter axes, the seed replications, and the epoch
// budget. A SweepResult embeds the spec that produced it, so a result file
// is self-describing.
type ExperimentSpec struct {
	Base   Scenario `json:"base"`
	Axes   []Axis   `json:"axes,omitempty"`
	Seeds  []uint64 `json:"seeds,omitempty"`
	Epochs int      `json:"epochs,omitempty"`
}

// DriveFunc replaces the default per-run driver (run the scenario's epochs
// with its schedule) for protocols the declarative core cannot express —
// e.g. advancing a pseudonym epoch between round chunks. It may return
// extra per-run metrics to aggregate.
//
// The function is invoked concurrently from the sweep's worker pool — one
// call per run, each with its own Engine. It must confine itself to its
// own run: touch only the engine it is handed and the returned map, never
// shared accumulators (use the aggregated SweepResult instead), and stay
// deterministic given the engine's seed, or the sweep's
// identical-at-any-parallelism contract breaks.
type DriveFunc func(ctx context.Context, eng *Engine, sc Scenario) (map[string]float64, error)

// ObserveFunc extracts extra per-run metrics from the finished engine.
// Like DriveFunc it runs concurrently, one call per run: read the engine,
// fill the returned map, and touch nothing shared.
type ObserveFunc func(eng *Engine) map[string]float64

// Experiment is the batch orchestrator of the §4 many-run studies: it
// expands a base Scenario over parameter axes (Vary/VaryTuples/
// VaryMechanism) and seed replications (Seeds/SeedList), executes the run
// matrix on a bounded worker pool under the deterministic-fold discipline
// (equal seeds ⇒ bit-for-bit equal SweepResults at any parallelism), and
// aggregates per-epoch mean/stddev/quantiles per cell.
//
//	res, err := trustnet.NewExperiment(base).
//		Vary("disclosure", 0, 0.25, 0.5, 0.75, 1).
//		Vary("gate", 0, 0.3).
//		Seeds(5).
//		Epochs(10).
//		Run(ctx)
//
// Builder errors stick: the first one is reported by Run.
type Experiment struct {
	spec    ExperimentSpec
	workers int
	drive   DriveFunc
	observe ObserveFunc
	err     error
}

// NewExperiment starts a sweep over a base scenario.
func NewExperiment(base Scenario) *Experiment {
	return &Experiment{spec: ExperimentSpec{Base: base.clone()}}
}

func (e *Experiment) fail(err error) *Experiment {
	if e.err == nil {
		e.err = err
	}
	return e
}

func (e *Experiment) addAxis(a Axis) *Experiment {
	if err := a.validate(e.spec.Base); err != nil {
		return e.fail(err)
	}
	e.spec.Axes = append(e.spec.Axes, a)
	return e
}

// Vary adds a one-parameter axis: the sweep runs every listed value.
func (e *Experiment) Vary(param string, values ...float64) *Experiment {
	tuples := make([][]float64, len(values))
	for i, v := range values {
		tuples[i] = []float64{v}
	}
	return e.addAxis(Axis{Params: []string{param}, Values: tuples})
}

// VaryTuples adds a multi-parameter axis: each tuple sets all named
// parameters together (one axis point), for jointly-varied settings that
// are not a cross product.
func (e *Experiment) VaryTuples(params []string, tuples ...[]float64) *Experiment {
	return e.addAxis(Axis{Params: params, Values: tuples})
}

// VaryMechanism adds a mechanism axis: each spec swaps the scenario's
// reputation mechanism.
func (e *Experiment) VaryMechanism(specs ...MechanismSpec) *Experiment {
	return e.addAxis(Axis{Mechanisms: specs})
}

// Seeds replicates every cell under n seeds: base.Seed, base.Seed+1, ...
func (e *Experiment) Seeds(n int) *Experiment {
	if n < 1 {
		return e.fail(fmt.Errorf("trustnet: seed replication count must be positive, got %d", n))
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = e.spec.Base.Seed + uint64(i)
	}
	e.spec.Seeds = seeds
	return e
}

// SeedList replicates every cell under the explicit seed list.
func (e *Experiment) SeedList(seeds ...uint64) *Experiment {
	if len(seeds) == 0 {
		return e.fail(fmt.Errorf("trustnet: empty seed list"))
	}
	e.spec.Seeds = append([]uint64(nil), seeds...)
	return e
}

// Epochs sets how many coupling epochs every run drives, overriding the
// base scenario's Epochs.
func (e *Experiment) Epochs(n int) *Experiment {
	if n < 1 {
		return e.fail(fmt.Errorf("trustnet: sweep epochs must be positive, got %d", n))
	}
	e.spec.Epochs = n
	return e
}

// Workers bounds the worker pool executing the run matrix (default: the
// base scenario's Workers, else GOMAXPROCS). The SweepResult is identical
// for every pool size.
func (e *Experiment) Workers(n int) *Experiment {
	if n < 1 {
		return e.fail(fmt.Errorf("trustnet: sweep workers must be positive, got %d", n))
	}
	e.workers = n
	return e
}

// Drive replaces the default per-run driver. The function must be
// deterministic given the engine's seed for the sweep's determinism
// contract to hold.
func (e *Experiment) Drive(fn DriveFunc) *Experiment {
	if fn == nil {
		return e.fail(fmt.Errorf("trustnet: nil drive function"))
	}
	e.drive = fn
	return e
}

// Observe registers a per-run metric extractor invoked after each run
// completes; the returned values aggregate per cell like the built-in
// metrics.
func (e *Experiment) Observe(fn ObserveFunc) *Experiment {
	if fn == nil {
		return e.fail(fmt.Errorf("trustnet: nil observe function"))
	}
	e.observe = fn
	return e
}

// Spec returns the serializable description of the sweep as configured.
func (e *Experiment) Spec() ExperimentSpec {
	return e.spec
}

// Runs returns the size of the expanded run matrix (cells × seeds).
func (e *Experiment) Runs() int {
	cells := 1
	for _, a := range e.spec.Axes {
		cells *= a.size()
	}
	seeds := len(e.spec.Seeds)
	if seeds == 0 {
		seeds = 1
	}
	return cells * seeds
}

// RunResult is one executed run of the matrix.
type RunResult struct {
	Coord Coord  `json:"coord,omitempty"`
	Seed  uint64 `json:"seed"`
	// History is the run's epoch trajectory.
	History []EpochStats `json:"history,omitempty"`
	// Summary is the workload-level summary (bad-service rates, τ, share
	// rate).
	Summary Summary `json:"summary"`
	// Global holds the measured global facets at the end of the run, and
	// Trust the generic metric Φ over them under the scenario's weights.
	Global Facets  `json:"global"`
	Trust  float64 `json:"trust"`
	// Extra carries Drive/Observe-collected metrics.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// EpochAgg aggregates one epoch's stats across the cell's seed
// replications.
type EpochAgg struct {
	Epoch        int `json:"epoch"`
	Trust        Agg `json:"trust"`
	Satisfaction Agg `json:"satisfaction"`
	Reputation   Agg `json:"reputation"`
	Privacy      Agg `json:"privacy"`
	Disclosure   Agg `json:"disclosure"`
	Honesty      Agg `json:"honesty"`
	BadRate      Agg `json:"bad_rate"`
	Tau          Agg `json:"tau"`
	Community    Agg `json:"community"`
}

// CellResult aggregates one cell of the sweep matrix over its seed
// replications.
type CellResult struct {
	Coord Coord `json:"coord,omitempty"`
	// Runs holds the individual replications, in seed order.
	Runs []RunResult `json:"runs,omitempty"`
	// Epochs is the per-epoch aggregation across replications; Final is
	// its last entry (nil when no run recorded history).
	Epochs []EpochAgg `json:"epochs,omitempty"`
	Final  *EpochAgg  `json:"final,omitempty"`
	// Trust aggregates the runs' combined metric Φ; Satisfaction /
	// Reputation / Privacy aggregate the measured global facets.
	Trust        Agg            `json:"trust"`
	Satisfaction Agg            `json:"satisfaction"`
	Reputation   Agg            `json:"reputation"`
	Privacy      Agg            `json:"privacy"`
	Extra        map[string]Agg `json:"extra,omitempty"`
}

// SweepResult is the typed outcome of an Experiment: the spec that
// produced it and one aggregated CellResult per matrix cell, in row-major
// axis order (first axis outermost).
type SweepResult struct {
	Spec  ExperimentSpec `json:"spec"`
	Cells []CellResult   `json:"cells"`
}

// At returns the cell at the given per-axis indices (row-major).
func (r *SweepResult) At(idx ...int) *CellResult {
	if len(idx) != len(r.Spec.Axes) {
		panic(fmt.Sprintf("trustnet: SweepResult.At got %d indices for %d axes", len(idx), len(r.Spec.Axes)))
	}
	flat := 0
	for i, a := range r.Spec.Axes {
		n := a.size()
		if idx[i] < 0 || idx[i] >= n {
			panic(fmt.Sprintf("trustnet: SweepResult.At index %d out of range [0,%d) on axis %d", idx[i], n, i))
		}
		flat = flat*n + idx[i]
	}
	return &r.Cells[flat]
}

// Run executes the sweep matrix and aggregates it. The worker pool feeds
// runs in matrix order and folds results by index, so the SweepResult —
// including its JSON encoding — is byte-for-byte identical for every
// worker count; ctx cancels between runs.
func (e *Experiment) Run(ctx context.Context) (*SweepResult, error) {
	if e.err != nil {
		return nil, e.err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	spec := e.spec
	numCells := 1
	for _, a := range spec.Axes {
		if a.size() == 0 {
			return nil, fmt.Errorf("trustnet: sweep axis with no points")
		}
		numCells *= a.size()
	}
	seeds := spec.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{spec.Base.Seed}
	}
	epochs := spec.Epochs
	if epochs == 0 {
		epochs = spec.Base.Epochs
	}
	axesSetEpochs := false
	for _, a := range spec.Axes {
		for _, p := range a.Params {
			if p == "epochs" {
				axesSetEpochs = true
			}
		}
	}
	if epochs <= 0 && e.drive == nil && !axesSetEpochs {
		return nil, fmt.Errorf("trustnet: sweep has no epoch budget: set the scenario's Epochs or call Experiment.Epochs")
	}
	workers := e.workers
	if workers == 0 {
		workers = spec.Base.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	n := numCells * len(seeds)
	runs := make([]RunResult, n)
	err := sim.RunIndexed(ctx, workers, n, func(i int) error {
		cell, seedIdx := i/len(seeds), i%len(seeds)
		sc := spec.Base.clone()
		// The Epochs() override applies before the axes, so an "epochs"
		// axis point still wins for its own cell.
		if epochs > 0 {
			sc.Epochs = epochs
		}
		coord, err := applyCell(&sc, spec.Axes, cell)
		if err != nil {
			return err
		}
		if e.drive == nil && sc.Epochs <= 0 {
			return fmt.Errorf("trustnet: sweep cell [%s] has no epoch budget", coord)
		}
		sc.Seed = seeds[seedIdx]
		rr, err := e.runOne(ctx, sc, coord)
		if err != nil {
			return fmt.Errorf("trustnet: sweep run [%s seed=%d]: %w", coord, sc.Seed, err)
		}
		runs[i] = rr
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &SweepResult{Spec: spec, Cells: make([]CellResult, numCells)}
	for c := 0; c < numCells; c++ {
		res.Cells[c] = aggregateCell(runs[c*len(seeds) : (c+1)*len(seeds)])
	}
	return res, nil
}

// applyCell decodes a flat cell index into per-axis points (row-major) and
// applies them to sc.
func applyCell(sc *Scenario, axes []Axis, cell int) (Coord, error) {
	var coord Coord
	// Decode indices innermost-axis-first.
	idx := make([]int, len(axes))
	for i := len(axes) - 1; i >= 0; i-- {
		n := axes[i].size()
		idx[i] = cell % n
		cell /= n
	}
	for i, a := range axes {
		frag, err := a.apply(sc, idx[i])
		if err != nil {
			return nil, err
		}
		coord = append(coord, frag...)
	}
	return coord, nil
}

// runOne executes a single expanded run.
func (e *Experiment) runOne(ctx context.Context, sc Scenario, coord Coord) (RunResult, error) {
	eng, err := sc.NewEngine()
	if err != nil {
		return RunResult{}, err
	}
	var extra map[string]float64
	if e.drive != nil {
		extra, err = e.drive(ctx, eng, sc)
		if err != nil {
			return RunResult{}, err
		}
	} else {
		s, err := eng.Session(ctx, WithMaxEpochs(sc.Epochs), WithSchedule(sc.Schedule))
		if err != nil {
			return RunResult{}, err
		}
		for _, err := range s.Epochs() {
			if err != nil {
				return RunResult{}, err
			}
		}
	}
	// Measure before Observe runs: observers may poke the mechanism
	// (submit a probe report, trigger a recompute) without perturbing the
	// recorded facets, summary, or history.
	g := eng.Assess().GlobalFacets()
	trust, err := Combine(g, sc.weights())
	if err != nil {
		return RunResult{}, err
	}
	rr := RunResult{
		Coord:   coord,
		Seed:    sc.Seed,
		History: eng.History(),
		Summary: eng.Summary(),
		Global:  g,
		Trust:   trust,
		Extra:   extra,
	}
	if e.observe != nil {
		for k, v := range e.observe(eng) {
			if rr.Extra == nil {
				rr.Extra = map[string]float64{}
			}
			rr.Extra[k] = v
		}
	}
	return rr, nil
}

// aggregateCell folds one cell's replications (already in seed order).
func aggregateCell(runs []RunResult) CellResult {
	cell := CellResult{Runs: append([]RunResult(nil), runs...)}
	if len(runs) > 0 {
		cell.Coord = runs[0].Coord
	}
	collect := func(get func(RunResult) float64) Agg {
		xs := make([]float64, len(runs))
		for i, r := range runs {
			xs[i] = get(r)
		}
		return metrics.Describe(xs)
	}
	cell.Trust = collect(func(r RunResult) float64 { return r.Trust })
	cell.Satisfaction = collect(func(r RunResult) float64 { return r.Global.Satisfaction })
	cell.Reputation = collect(func(r RunResult) float64 { return r.Global.Reputation })
	cell.Privacy = collect(func(r RunResult) float64 { return r.Global.Privacy })

	maxEpochs := 0
	for _, r := range runs {
		if len(r.History) > maxEpochs {
			maxEpochs = len(r.History)
		}
	}
	for ep := 0; ep < maxEpochs; ep++ {
		pick := func(get func(EpochStats) float64) Agg {
			var xs []float64
			for _, r := range runs {
				if ep < len(r.History) {
					xs = append(xs, get(r.History[ep]))
				}
			}
			return metrics.Describe(xs)
		}
		epoch := ep
		for _, r := range runs {
			if ep < len(r.History) {
				epoch = r.History[ep].Epoch
				break
			}
		}
		cell.Epochs = append(cell.Epochs, EpochAgg{
			Epoch:        epoch,
			Trust:        pick(func(s EpochStats) float64 { return s.Trust }),
			Satisfaction: pick(func(s EpochStats) float64 { return s.Satisfaction }),
			Reputation:   pick(func(s EpochStats) float64 { return s.Reputation }),
			Privacy:      pick(func(s EpochStats) float64 { return s.Privacy }),
			Disclosure:   pick(func(s EpochStats) float64 { return s.Disclosure }),
			Honesty:      pick(func(s EpochStats) float64 { return s.Honesty }),
			BadRate:      pick(func(s EpochStats) float64 { return s.BadRate }),
			Tau:          pick(func(s EpochStats) float64 { return s.Tau }),
			Community:    pick(func(s EpochStats) float64 { return s.Community }),
		})
	}
	if len(cell.Epochs) > 0 {
		final := cell.Epochs[len(cell.Epochs)-1]
		cell.Final = &final
	}

	keys := map[string]bool{}
	for _, r := range runs {
		for k := range r.Extra {
			keys[k] = true
		}
	}
	if len(keys) > 0 {
		cell.Extra = make(map[string]Agg, len(keys))
		names := make([]string, 0, len(keys))
		for k := range keys {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			var xs []float64
			for _, r := range runs {
				if v, ok := r.Extra[k]; ok {
					xs = append(xs, v)
				}
			}
			cell.Extra[k] = metrics.Describe(xs)
		}
	}
	return cell
}

// WriteJSON emits the result as indented JSON. The encoding is
// deterministic: equal sweeps produce byte-identical documents at any
// worker count.
func (r *SweepResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV emits one row per (cell, epoch): the cell coordinates, the seed
// replication count, and mean/std per aggregated metric (plus the mean of
// any extra metrics, repeated on each of the cell's rows). Cells without
// epoch history emit a single row with the final facet aggregation.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	var params []string
	if len(r.Cells) > 0 {
		for _, av := range r.Cells[0].Coord {
			params = append(params, av.Param)
		}
	}
	extras := map[string]bool{}
	for _, c := range r.Cells {
		for k := range c.Extra {
			extras[k] = true
		}
	}
	extraNames := make([]string, 0, len(extras))
	for k := range extras {
		extraNames = append(extraNames, k)
	}
	sort.Strings(extraNames)

	header := append([]string{}, params...)
	header = append(header, "seeds", "epoch",
		"trust_mean", "trust_std",
		"satisfaction_mean", "satisfaction_std",
		"reputation_mean", "reputation_std",
		"privacy_mean", "privacy_std",
		"disclosure_mean", "honesty_mean", "bad_rate_mean", "tau_mean")
	for _, k := range extraNames {
		header = append(header, k+"_mean")
	}
	if err := cw.Write(header); err != nil {
		return err
	}

	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, c := range r.Cells {
		prefix := make([]string, 0, len(c.Coord))
		for _, av := range c.Coord {
			prefix = append(prefix, av.text())
		}
		writeRow := func(epoch string, ep EpochAgg) error {
			row := append([]string{}, prefix...)
			row = append(row, strconv.Itoa(len(c.Runs)), epoch,
				f(ep.Trust.Mean), f(ep.Trust.Std),
				f(ep.Satisfaction.Mean), f(ep.Satisfaction.Std),
				f(ep.Reputation.Mean), f(ep.Reputation.Std),
				f(ep.Privacy.Mean), f(ep.Privacy.Std),
				f(ep.Disclosure.Mean), f(ep.Honesty.Mean), f(ep.BadRate.Mean), f(ep.Tau.Mean))
			for _, k := range extraNames {
				if agg, ok := c.Extra[k]; ok {
					row = append(row, f(agg.Mean))
				} else {
					row = append(row, "")
				}
			}
			return cw.Write(row)
		}
		if len(c.Epochs) == 0 {
			// No history (custom driver): emit the facet aggregation as a
			// single summary row.
			if err := writeRow("", EpochAgg{
				Trust:        c.Trust,
				Satisfaction: c.Satisfaction,
				Reputation:   c.Reputation,
				Privacy:      c.Privacy,
			}); err != nil {
				return err
			}
			continue
		}
		for _, ep := range c.Epochs {
			if err := writeRow(strconv.Itoa(ep.Epoch), ep); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
