package trustnet

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// roundTripScenario is a spec exercising every serializable surface,
// including an intervention schedule.
func roundTripScenario() Scenario {
	inertia := 0.4
	return Scenario{
		Name:  "round-trip",
		Peers: 40,
		Seed:  9,
		Mix: &MixSpec{
			Fractions:   map[string]float64{"honest": 0.7, "malicious": 0.2, "selfish": 0.1},
			ForceHonest: []int{0, 1},
		},
		Graph:          &GraphSpec{Kind: "watts-strogatz", Param: 4},
		Mechanism:      MechanismSpec{Kind: "eigentrust", Pretrusted: []int{0, 1}},
		Privacy:        &PrivacyPolicy{Disclosure: 0.8, TrustGate: 0.1},
		Coupled:        true,
		Inertia:        &inertia,
		EpochRounds:    4,
		Epochs:         5,
		RecomputeEvery: 2,
		Schedule: Schedule{}.
			At(1, LeaveWave{Users: []int{5, 6}}).
			At(2, DisclosureChange{Base: 0.5}).
			At(3, JoinWave{Users: []int{5, 6}}, BehaviorChange{Users: []int{7}, Class: Malicious}).
			At(4, PolicyChange{Policy: PrivacyPolicy{Disclosure: 0.6, TrustGate: 0.2, ExposureScale: 40}}),
	}
}

// TestScenarioJSONRoundTrip: marshal → unmarshal must reproduce the spec
// exactly — concrete intervention types included — and the round-tripped
// spec must produce bit-for-bit the run of the original and of the
// equivalent hand-built option slice.
func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := roundTripScenario()
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := ScenarioFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, rt) {
		t.Fatalf("round trip diverged:\n%+v\n!=\n%+v", sc, rt)
	}

	ctx := context.Background()
	_, h1, err := sc.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_, h2, err := rt.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h1, h2) {
		t.Fatal("round-tripped scenario ran a different trajectory")
	}

	// The hand-built option slice, driven through the same schedule.
	eng, err := New(
		WithPeers(40),
		WithRNGSeed(9),
		WithMix(Mix{
			Fractions:   map[Class]float64{Honest: 0.7, Malicious: 0.2, Selfish: 0.1},
			ForceHonest: []int{0, 1},
		}),
		WithGraph(WattsStrogatz, 4),
		WithReputationMechanism(EigenTrust(EigenTrustConfig{Pretrusted: []int{0, 1}})),
		WithPrivacyPolicy(PrivacyPolicy{Disclosure: 0.8, TrustGate: 0.1}),
		WithCoupling(true),
		WithInertia(0.4),
		WithEpochRounds(4),
		WithRecomputeEvery(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Session(ctx, WithMaxEpochs(5), WithSchedule(sc.Schedule))
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range s.Epochs() {
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(h1, eng.History()) {
		t.Fatalf("scenario run diverged from the hand-built option slice:\n%+v\n!=\n%+v", h1, eng.History())
	}
}

// TestScenarioRejectsUnknownFields: a typo in a spec file fails loudly.
func TestScenarioRejectsUnknownFields(t *testing.T) {
	if _, err := ScenarioFromJSON([]byte(`{"peers": 20, "peeers": 30}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestScenarioOptionErrors: malformed specs fail at compile time with
// errors naming the offender, never by silently running defaults.
func TestScenarioOptionErrors(t *testing.T) {
	w := DefaultWeights()
	cases := []struct {
		name    string
		sc      Scenario
		wantErr string
	}{
		{"unknown class", Scenario{Mix: &MixSpec{Fractions: map[string]float64{"sneaky": 1}}}, "behaviour class"},
		{"unknown graph", Scenario{Graph: &GraphSpec{Kind: "torus", Param: 3}}, "graph kind"},
		{"unknown mechanism", Scenario{Mechanism: MechanismSpec{Kind: "oracle"}}, "mechanism kind"},
		{"unknown selection", Scenario{Selection: "worst"}, "selection"},
		{"unknown context", Scenario{Context: "space"}, "context"},
		{"context and weights", Scenario{Context: "balanced", Weights: &w}, "both"},
		{"negative epochs", Scenario{Epochs: -1}, "epochs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.sc.Options()
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Options() err = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
	// Nonpositive sizes flow through the options' own validation via New.
	for _, tc := range []struct {
		name    string
		sc      Scenario
		wantErr string
	}{
		{"negative peers", Scenario{Peers: -5}, "peers"},
		{"negative epoch rounds", Scenario{EpochRounds: -1}, "epoch rounds"},
		{"negative shards", Scenario{Shards: -2}, "shard"},
		{"negative recompute", Scenario{RecomputeEvery: -1}, "recompute"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.sc.NewEngine()
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("NewEngine() err = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// TestRunRejectsNegativeEpochs: the batch wrapper errors instead of
// silently clamping.
func TestRunRejectsNegativeEpochs(t *testing.T) {
	eng, err := New(WithPeers(10), WithRNGSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), -1); err == nil {
		t.Fatal("negative epoch count accepted")
	}
}

// TestScenarioRegistry: the five examples are registered; lookups hand out
// isolated copies; duplicates and anonymous registrations are rejected.
func TestScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	for _, want := range []string{"quickstart", "filesharing", "socialfeed", "churnstorm", "tradeoff"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in scenario %q not registered (have %v)", want, names)
		}
	}
	sc := MustScenario("quickstart")
	sc.Peers = 7
	sc.Mix.Fractions["malicious"] = 0.9
	again := MustScenario("quickstart")
	if again.Peers == 7 || again.Mix.Fractions["malicious"] == 0.9 {
		t.Fatal("registry handed out a shared mutable scenario")
	}
	if err := RegisterScenario(Scenario{}); err == nil {
		t.Fatal("anonymous registration accepted")
	}
	if err := RegisterScenario(Scenario{Name: "quickstart"}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustScenario on an unknown name did not panic")
		}
	}()
	MustScenario("no-such-scenario")
}

// TestBuiltinScenariosRun: every registered built-in compiles and runs end
// to end, deterministically.
func TestBuiltinScenariosRun(t *testing.T) {
	for _, name := range ScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc := MustScenario(name)
			// Shrink for test time; shards must not change results.
			sc.Epochs = 2
			if sc.EpochRounds > 6 {
				sc.EpochRounds = 6
			}
			_, h1, err := sc.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			sc2 := MustScenario(name)
			sc2.Epochs = 2
			if sc2.EpochRounds > 6 {
				sc2.EpochRounds = 6
			}
			sc2.Shards = 4
			_, h2, err := sc2.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(h1, h2) {
				t.Fatalf("%s: shard count changed the trajectory", name)
			}
		})
	}
}

// TestLoadScenario resolves registered names first, then spec files, and
// reports both origins on a miss.
func TestLoadScenario(t *testing.T) {
	if sc, err := LoadScenario("churnstorm"); err != nil || sc.Name != "churnstorm" {
		t.Fatalf("registered name: %v / %+v", err, sc.Name)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	data, err := json.Marshal(roundTripScenario())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, roundTripScenario()) {
		t.Fatal("file-loaded scenario diverged from the written spec")
	}
	if _, err := LoadScenario(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing scenario reference accepted")
	}
}

// TestScheduleJSONUnknownKind: decoding an unknown intervention tag fails.
func TestScheduleJSONUnknownKind(t *testing.T) {
	var si ScheduledIntervention
	if err := json.Unmarshal([]byte(`{"epoch":1,"kind":"meteor-strike"}`), &si); err == nil {
		t.Fatal("unknown intervention kind accepted")
	}
}

// TestScheduleJSONRejectsUnknownFields: typos in a schedule entry's
// envelope or payload fail loudly — custom unmarshalers do not inherit the
// outer decoder's strictness, so the envelope enforces its own.
func TestScheduleJSONRejectsUnknownFields(t *testing.T) {
	var si ScheduledIntervention
	if err := json.Unmarshal([]byte(`{"epohc":5,"kind":"disclosure-change","args":{"base":0.2}}`), &si); err == nil {
		t.Fatal("envelope typo accepted")
	}
	if err := json.Unmarshal([]byte(`{"epoch":5,"kind":"disclosure-change","args":{"bse":0.2}}`), &si); err == nil {
		t.Fatal("payload typo accepted")
	}
	if err := json.Unmarshal([]byte(`{"epoch":5,"kind":"disclosure-change","args":{"base":0.2}}`), &si); err != nil {
		t.Fatalf("well-formed entry rejected: %v", err)
	}
}

// TestRegistryScheduleIsolation: mutating a looked-up scenario's schedule
// payload must not corrupt the registry's master copy.
func TestRegistryScheduleIsolation(t *testing.T) {
	sc := MustScenario("churnstorm")
	wave, ok := sc.Schedule[0].Action.(LeaveWave)
	if !ok {
		t.Fatalf("churnstorm schedule[0] is %T, want LeaveWave", sc.Schedule[0].Action)
	}
	orig := wave.Users[0]
	wave.Users[0] = 9999
	again := MustScenario("churnstorm")
	if got := again.Schedule[0].Action.(LeaveWave).Users[0]; got != orig {
		t.Fatalf("registry schedule corrupted: user[0] = %d, want %d", got, orig)
	}
}
