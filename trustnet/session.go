package trustnet

import (
	"context"
	"errors"
	"fmt"
	"iter"
)

// ErrSessionDone is returned by Session.Next when the session's epoch budget
// (WithMaxEpochs) is exhausted. The Epochs iterator ends cleanly instead of
// yielding it.
var ErrSessionDone = errors.New("trustnet: session epoch budget exhausted")

// sessionConfig is the resolved option set of a Session.
type sessionConfig struct {
	max     int // epochs the session may run; < 0 means unlimited
	sched   Schedule
	onEpoch []func(EpochStats)
	onRound []func(RoundStats)
}

// SessionOption configures a Session.
type SessionOption func(*sessionConfig) error

// WithMaxEpochs bounds how many epochs the session will run (default:
// unlimited — the session streams until the context is cancelled or the
// caller stops pulling).
func WithMaxEpochs(n int) SessionOption {
	return func(c *sessionConfig) error {
		if n < 0 {
			return fmt.Errorf("trustnet: max epochs must be >= 0, got %d", n)
		}
		c.max = n
		return nil
	}
}

// OnEpoch registers an observer invoked after each completed epoch with its
// stats. Observers run on the session's goroutine, see fully merged state,
// and must not mutate the engine; pure observation never touches a random
// stream, so observed and unobserved runs are bit-for-bit identical.
func OnEpoch(fn func(EpochStats)) SessionOption {
	return func(c *sessionConfig) error {
		if fn == nil {
			return fmt.Errorf("trustnet: nil OnEpoch observer")
		}
		c.onEpoch = append(c.onEpoch, fn)
		return nil
	}
}

// OnRound registers an observer invoked after every workload round inside
// each epoch (EpochRounds per epoch). Same contract as OnEpoch: observe,
// don't mutate.
func OnRound(fn func(RoundStats)) SessionOption {
	return func(c *sessionConfig) error {
		if fn == nil {
			return fmt.Errorf("trustnet: nil OnRound observer")
		}
		c.onRound = append(c.onRound, fn)
		return nil
	}
}

// WithSchedule installs the session's intervention schedule. The schedule is
// validated against the engine when the session is created; interventions
// fire at their epoch boundaries. Epoch indices are global to the engine,
// not relative to the session: a session resumed from a snapshot does not
// re-fire boundaries that already passed, and entries beyond this session's
// epoch budget do not fire now but will fire in a later session over the
// same engine once its epochs reach them.
func WithSchedule(s Schedule) SessionOption {
	return func(c *sessionConfig) error {
		c.sched = append(c.sched, s...)
		return nil
	}
}

// Session drives the §3 coupled dynamics incrementally: each Next (or each
// step of the Epochs iterator) applies the interventions scheduled for the
// upcoming epoch boundary, runs one epoch, and fires the registered
// observers. Sessions stream — callers observe, steer, and checkpoint a
// live scenario instead of waiting out a batch Run.
//
// A Session borrows its Engine: epochs it runs extend the engine's shared
// history, and epoch indices continue from wherever the engine is. Do not
// run two sessions of the same engine concurrently (the engine is not safe
// for concurrent mutation); sequential sessions compose fine.
type Session struct {
	eng  *Engine
	ctx  context.Context
	cfg  sessionConfig
	done int   // epochs this session has delivered
	err  error // sticky failure
}

// Session opens a streaming run over the engine. The context is consulted
// before every epoch; cancelling it makes the next call fail with the
// context's error.
func (e *Engine) Session(ctx context.Context, opts ...SessionOption) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := sessionConfig{max: -1}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("trustnet: nil session option")
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if err := cfg.sched.validate(e); err != nil {
		return nil, err
	}
	return &Session{eng: e, ctx: ctx, cfg: cfg}, nil
}

// Epoch returns the index the session's next epoch will run as.
func (s *Session) Epoch() int { return s.eng.dyn.EpochIndex() }

// Delivered returns how many epochs this session has run.
func (s *Session) Delivered() int { return s.done }

// Next applies any interventions scheduled for the upcoming epoch boundary,
// runs one epoch, fires observers, and returns the epoch's stats. It returns
// ErrSessionDone once the epoch budget is exhausted, the context's error if
// it was cancelled, and otherwise sticks to the first failure.
func (s *Session) Next() (EpochStats, error) {
	if s.err != nil {
		return EpochStats{}, s.err
	}
	if s.cfg.max >= 0 && s.done >= s.cfg.max {
		return EpochStats{}, ErrSessionDone
	}
	if err := s.ctx.Err(); err != nil {
		s.err = err
		return EpochStats{}, err
	}
	for _, a := range s.cfg.sched.forEpoch(s.eng.dyn.EpochIndex()) {
		if err := a.applyTo(s.eng); err != nil {
			s.err = err
			return EpochStats{}, err
		}
	}
	we := s.eng.workloadEngine()
	if len(s.cfg.onRound) > 0 {
		we.SetRoundObserver(func(rs RoundStats) {
			for _, fn := range s.cfg.onRound {
				fn(rs)
			}
		})
		defer we.SetRoundObserver(nil)
	}
	// The context threads through to the round loop, so cancellation lands
	// between rounds — a daemon's shutdown never stalls behind a large
	// in-flight epoch.
	st, err := s.eng.dyn.EpochCtx(s.ctx)
	if err != nil {
		s.err = err
		return EpochStats{}, err
	}
	s.done++
	for _, fn := range s.cfg.onEpoch {
		fn(st)
	}
	return st, nil
}

// Epochs adapts the session to Go 1.23 range-over-func iteration:
//
//	for st, err := range session.Epochs() {
//		if err != nil { ... }
//	}
//
// The sequence ends when the epoch budget is exhausted or after yielding one
// terminal error (context cancellation or an epoch failure). It is
// single-use, like the session position it advances.
func (s *Session) Epochs() iter.Seq2[EpochStats, error] {
	return func(yield func(EpochStats, error) bool) {
		for {
			st, err := s.Next()
			if errors.Is(err, ErrSessionDone) {
				return
			}
			if err != nil {
				yield(EpochStats{}, err)
				return
			}
			if !yield(st, nil) {
				return
			}
		}
	}
}
