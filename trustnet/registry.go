package trustnet

import (
	"fmt"
	"sort"
	"sync"
)

// The scenario registry: named, ready-to-run Scenario specs. The built-ins
// are declarative counterparts of the five example programs — the same
// populations, mechanisms and story, expressed as static data — so
// `trustsim -scenario <name>` runs each deterministically. They are
// counterparts, not transcripts: where an example computes cohorts or
// contrasts mechanisms in code (churnstorm derives its whitewash wave from
// the seeded class assignment and runs two mechanisms), the spec fixes one
// concrete, self-contained instance.
var registry = struct {
	sync.RWMutex
	byName map[string]Scenario
}{byName: map[string]Scenario{}}

// RegisterScenario adds a named scenario to the registry. Registration
// fails on an empty name or a duplicate: built-ins are never silently
// shadowed.
func RegisterScenario(sc Scenario) error {
	if sc.Name == "" {
		return fmt.Errorf("trustnet: cannot register a scenario without a name")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[sc.Name]; dup {
		return fmt.Errorf("trustnet: scenario %q already registered", sc.Name)
	}
	registry.byName[sc.Name] = sc.clone()
	return nil
}

// ScenarioByName looks up a registered scenario; the returned value is a
// deep copy, so callers may mutate it freely.
func ScenarioByName(name string) (Scenario, bool) {
	registry.RLock()
	defer registry.RUnlock()
	sc, ok := registry.byName[name]
	if !ok {
		return Scenario{}, false
	}
	return sc.clone(), true
}

// MustScenario is ScenarioByName for built-ins: it panics on an unknown
// name, which for a registered constant is a programming error.
func MustScenario(name string) Scenario {
	sc, ok := ScenarioByName(name)
	if !ok {
		panic(fmt.Sprintf("trustnet: unknown scenario %q", name))
	}
	return sc
}

// ScenarioNames lists the registered scenario names, sorted.
func ScenarioNames() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.byName))
	for name := range registry.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LoadScenario resolves a scenario reference: a registered name first,
// else a path to a JSON spec file.
func LoadScenario(ref string) (Scenario, error) {
	if sc, ok := ScenarioByName(ref); ok {
		return sc, nil
	}
	sc, err := LoadScenarioFile(ref)
	if err != nil {
		return Scenario{}, fmt.Errorf("trustnet: %q is neither a registered scenario (%v) nor a readable spec file: %w",
			ref, ScenarioNames(), err)
	}
	return sc, nil
}

// floatPtr is a tiny literal helper for the pointer-valued spec fields.
func floatPtr(v float64) *float64 { return &v }

// The built-in scenarios: the five example programs as data.
func init() {
	builtins := []Scenario{
		{
			Name:        "quickstart",
			Description: "coupled §3 dynamics: 70/30 honest/malicious on EigenTrust, 80% disclosure",
			Peers:       100,
			Seed:        42,
			Mix:         MixOf(map[string]float64{"malicious": 0.3}, 0, 1, 2),
			Mechanism:   MechanismSpec{Kind: "eigentrust", Pretrusted: []int{0, 1, 2}},
			Privacy:     &PrivacyPolicy{Disclosure: 0.8},
			Coupled:     true,
			EpochRounds: 8,
			Epochs:      6,

			RecomputeEvery: 2,
		},
		{
			Name:        "filesharing",
			Description: "EigenTrust's motivating P2P file-sharing workload, proportional selection",
			Peers:       150,
			Seed:        7,
			Mix:         MixOf(map[string]float64{"malicious": 0.3}, 0, 1, 2),
			Mechanism:   MechanismSpec{Kind: "eigentrust", Pretrusted: []int{0, 1, 2}},
			Selection:   "proportional",
			EpochRounds: 50,
			Epochs:      1,

			RecomputeEvery: 2,
		},
		{
			Name:        "socialfeed",
			Description: "a decentralized social feed: small-world graph, heavy-tailed activity, free-riders, gated privacy",
			Peers:       120,
			Seed:        2026,
			Mix:         MixOf(map[string]float64{"selfish": 0.15, "malicious": 0.05}, 0, 1, 2),
			Graph:       &GraphSpec{Kind: "watts-strogatz", Param: 6},
			Mechanism:   MechanismSpec{Kind: "eigentrust", Pretrusted: []int{0, 1, 2}},
			Privacy:     &PrivacyPolicy{Disclosure: 0.7, TrustGate: 0.2},
			Context:     "privacy",
			Coupled:     true,
			EpochRounds: 6,
			Epochs:      8,

			ActivitySkew:   1.1,
			RecomputeEvery: 2,
		},
		{
			Name:        "churnstorm",
			Description: "a scripted churn storm: leave waves, a whitewash wave and a rejoin wave as an intervention schedule",
			Peers:       100,
			Seed:        42,
			Mix:         MixOf(map[string]float64{"malicious": 0.2}, 0, 1, 2),
			Mechanism:   MechanismSpec{Kind: "eigentrust", Pretrusted: []int{0, 1, 2}},
			Coupled:     true,
			EpochRounds: 6,
			Epochs:      12,

			RecomputeEvery: 2,
			// Fixed-id cohorts (a spec cannot reference the seeded class
			// assignment like the example program does): one bystander
			// cohort that rides out the storm offline, one churner cohort
			// of mixed behaviour that sheds its identities mid-storm.
			Schedule: Schedule{}.
				At(3, LeaveWave{Users: cohort(10, 30)}).     // bystanders drop out
				At(5, LeaveWave{Users: cohort(70, 90)}).     // the churner cohort bails...
				At(7, WhitewashWave{Users: cohort(70, 90)}). // ...and rejoins under fresh identities
				At(9, JoinWave{Users: cohort(10, 30)}),      // the bystanders come back
		},
		{
			Name:        "baseline",
			Description: "serving baseline: a steady mixed population sized for long-lived trustnetd runs",
			Peers:       100,
			Seed:        1,
			Mix:         MixOf(map[string]float64{"malicious": 0.2, "selfish": 0.05}, 0, 1, 2),
			Mechanism:   MechanismSpec{Kind: "eigentrust", Pretrusted: []int{0, 1, 2}},
			Privacy:     &PrivacyPolicy{Disclosure: 0.8, TrustGate: 0.1},
			Coupled:     true,
			EpochRounds: 6,
			// Batch runs (trustsim -scenario baseline) get a finite budget;
			// trustnetd ignores it and owns the budget via -max-epochs.
			Epochs: 10,

			RecomputeEvery: 2,
		},
		{
			Name:        "tradeoff",
			Description: "the Fig. 2 base scenario: sweep its disclosure/trust-gate axes to map the frontier",
			Peers:       100,
			Seed:        11,
			Mix:         MixOf(map[string]float64{"malicious": 0.3}, 0, 1, 2),
			Mechanism:   MechanismSpec{Kind: "eigentrust", Pretrusted: []int{0, 1, 2}},
			Privacy:     &PrivacyPolicy{Disclosure: 0.8},
			EpochRounds: 30,
			Epochs:      1,

			RecomputeEvery: 2,
		},
	}
	for _, sc := range builtins {
		if err := RegisterScenario(sc); err != nil {
			panic(err)
		}
	}
}

// cohort returns the user ids [lo, hi).
func cohort(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for u := lo; u < hi; u++ {
		out = append(out, u)
	}
	return out
}
