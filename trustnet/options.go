package trustnet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/satisfaction"
	"repro/internal/workload"
)

// GraphKind selects the friendship-graph generator for a scenario.
type GraphKind = workload.GraphKind

// Graph kinds.
const (
	BarabasiAlbert = workload.BarabasiAlbert
	WattsStrogatz  = workload.WattsStrogatz
	ErdosRenyi     = workload.ErdosRenyi
)

// Selection selects the response policy of the reputation system.
type Selection = workload.Selection

// Response policies.
const (
	SelectBest         = workload.SelectBest
	SelectProportional = workload.SelectProportional
)

// SatisfactionModel bundles the tunable parameters of the satisfaction
// facet (§2.1).
type SatisfactionModel = satisfaction.Model

// PrivacyPolicy bundles the privacy-facet settings of a scenario (§2.3):
// how much feedback peers disclose, how strictly the policies' minimal
// trust clause gates service, and how ledgered exposure is normalized.
// Unlike the raw config structs, Disclosure is explicit — a zero really
// means "share nothing".
type PrivacyPolicy struct {
	// Disclosure is the base probability δ in [0,1] that a peer shares a
	// feedback report with the reputation layer.
	Disclosure float64 `json:"disclosure"`
	// TrustGate in [0,1) applies the policies' MinTrustLevel clause through
	// reputation: only candidates at or above the TrustGate-quantile of
	// scores may serve. 0 disables gating.
	TrustGate float64 `json:"trust_gate,omitempty"`
	// ExposureScale normalizes ledgered exposure into the privacy facet
	// (default 50 when zero).
	ExposureScale float64 `json:"exposure_scale,omitempty"`
}

// DefaultPrivacyPolicy discloses everything, gates nothing.
func DefaultPrivacyPolicy() PrivacyPolicy {
	return PrivacyPolicy{Disclosure: 1, ExposureScale: 50}
}

// engineConfig is the resolved scenario an Engine is built from.
type engineConfig struct {
	wl            workload.Config
	weights       core.Weights
	userWeights   map[int]core.Weights
	inertia       float64
	coupled       bool
	baseHonesty   float64
	epochRounds   int
	exposureScale float64
	factory       MechanismFactory
	workers       int
	err           error
}

// Option configures an Engine (or a scenario template for the tradeoff
// explorer).
type Option func(*engineConfig)

func (c *engineConfig) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// resolveOptions applies the options over the defaults and validates the
// eagerly-checkable fields; scenario-level validation happens when the
// workload engine is assembled.
func resolveOptions(opts []Option) (engineConfig, error) {
	cfg := engineConfig{
		wl:      workload.Config{NumPeers: 100},
		weights: core.DefaultWeights(),
	}
	for _, opt := range opts {
		if opt == nil {
			cfg.fail(fmt.Errorf("trustnet: nil option"))
			continue
		}
		opt(&cfg)
	}
	if cfg.err != nil {
		return cfg, cfg.err
	}
	if cfg.factory == nil {
		cfg.factory = EigenTrust(EigenTrustConfig{})
	}
	return cfg, nil
}

// WithPeers sets the population size (default 100, must be > 1).
func WithPeers(n int) Option {
	return func(c *engineConfig) {
		if n <= 1 {
			c.fail(fmt.Errorf("trustnet: peers must be > 1, got %d", n))
			return
		}
		c.wl.NumPeers = n
	}
}

// WithRNGSeed seeds every random stream of the scenario; runs with equal
// seeds and settings are bit-for-bit reproducible.
func WithRNGSeed(seed uint64) Option {
	return func(c *engineConfig) { c.wl.Seed = seed }
}

// WithMix sets the behaviour-class composition of the population (default
// all honest).
func WithMix(m Mix) Option {
	return func(c *engineConfig) { c.wl.Mix = m }
}

// WithGraph selects the friendship topology and its parameter (m for
// Barabási–Albert, k for Watts–Strogatz, expected degree for Erdős–Rényi).
func WithGraph(kind GraphKind, param int) Option {
	return func(c *engineConfig) {
		switch kind {
		case BarabasiAlbert, WattsStrogatz, ErdosRenyi:
		default:
			c.fail(fmt.Errorf("trustnet: unknown graph kind %d", kind))
			return
		}
		if param <= 0 {
			c.fail(fmt.Errorf("trustnet: graph parameter must be positive, got %d", param))
			return
		}
		c.wl.Graph = kind
		c.wl.GraphParam = param
	}
}

// WithReputationMechanism plugs in the scoring engine via a factory; the
// engine sizes it for the configured population. Default: EigenTrust with
// uniform pre-trust.
func WithReputationMechanism(f MechanismFactory) Option {
	return func(c *engineConfig) {
		if f == nil {
			c.fail(fmt.Errorf("trustnet: nil mechanism factory"))
			return
		}
		c.factory = f
	}
}

// WithPrivacyPolicy installs the privacy-facet settings. All fields are
// explicit: a zero Disclosure shares nothing.
func WithPrivacyPolicy(p PrivacyPolicy) Option {
	return func(c *engineConfig) {
		if p.Disclosure < 0 || p.Disclosure > 1 {
			c.fail(fmt.Errorf("trustnet: disclosure %v out of [0,1]", p.Disclosure))
			return
		}
		if p.TrustGate < 0 || p.TrustGate >= 1 {
			c.fail(fmt.Errorf("trustnet: trust gate %v out of [0,1)", p.TrustGate))
			return
		}
		if p.ExposureScale < 0 {
			c.fail(fmt.Errorf("trustnet: negative exposure scale %v", p.ExposureScale))
			return
		}
		// The workload config's zero value means "default 1"; a negative
		// value is its explicit-zero sentinel.
		if p.Disclosure == 0 {
			p.Disclosure = -1
		}
		c.wl.Disclosure = p.Disclosure
		c.wl.TrustGate = p.TrustGate
		c.exposureScale = p.ExposureScale
	}
}

// WithSatisfactionModel tunes the satisfaction facet (§2.1).
func WithSatisfactionModel(m SatisfactionModel) Option {
	return func(c *engineConfig) {
		m, err := m.Validate()
		if err != nil {
			c.fail(err)
			return
		}
		c.wl.Memory = m.Memory
	}
}

// WithWeights sets the default facet weights of the combined metric Φ.
func WithWeights(w Weights) Option {
	return func(c *engineConfig) {
		if err := w.Validate(); err != nil {
			c.fail(err)
			return
		}
		c.weights = w
	}
}

// WithAppContext applies an applicative context's preset weight profile
// (§4).
func WithAppContext(ctx AppContext) Option {
	return func(c *engineConfig) { c.weights = core.ContextWeights(ctx) }
}

// WithUserWeights installs an individual weight profile for one user,
// overriding the engine default (§3: each user has her own perception).
func WithUserWeights(user int, w Weights) Option {
	return func(c *engineConfig) {
		if user < 0 {
			c.fail(fmt.Errorf("trustnet: negative user %d", user))
			return
		}
		if err := w.Validate(); err != nil {
			c.fail(err)
			return
		}
		if c.userWeights == nil {
			c.userWeights = make(map[int]core.Weights)
		}
		c.userWeights[user] = w
	}
}

// WithCoupling enables (or disables) the §3 feedback loops: trust feeding
// back into disclosure willingness and honest contribution.
func WithCoupling(on bool) Option {
	return func(c *engineConfig) { c.coupled = on }
}

// WithInertia sets the trust-smoothing inertia in [0,1) (default 0.5).
// An explicit zero means memoryless trust.
func WithInertia(inertia float64) Option {
	return func(c *engineConfig) {
		if inertia < 0 || inertia >= 1 {
			c.fail(fmt.Errorf("trustnet: inertia %v out of [0,1)", inertia))
			return
		}
		// The core config's zero value means "default 0.5"; a negative
		// value is its explicit-zero sentinel.
		if inertia == 0 {
			inertia = -1
		}
		c.inertia = inertia
	}
}

// WithBaseHonesty sets h0, the truthful-reporting probability at zero
// trust (default 0.3). An explicit zero means fully trust-driven honesty.
func WithBaseHonesty(h float64) Option {
	return func(c *engineConfig) {
		if h < 0 || h > 1 {
			c.fail(fmt.Errorf("trustnet: base honesty %v out of [0,1]", h))
			return
		}
		// See WithInertia: negative is the core's explicit-zero sentinel.
		if h == 0 {
			h = -1
		}
		c.baseHonesty = h
	}
}

// WithEpochRounds sets how many interaction rounds one coupling epoch
// spans (default 10).
func WithEpochRounds(rounds int) Option {
	return func(c *engineConfig) {
		if rounds <= 0 {
			c.fail(fmt.Errorf("trustnet: epoch rounds must be positive, got %d", rounds))
			return
		}
		c.epochRounds = rounds
	}
}

// WithSelection sets the response policy (default SelectBest).
func WithSelection(s Selection) Option {
	return func(c *engineConfig) {
		switch s {
		case SelectBest, SelectProportional:
		default:
			c.fail(fmt.Errorf("trustnet: unknown selection policy %d", s))
			return
		}
		c.wl.Selection = s
	}
}

// WithInteractionsPerRound sets the number of requests per round (default:
// one per peer).
func WithInteractionsPerRound(n int) Option {
	return func(c *engineConfig) {
		if n <= 0 {
			c.fail(fmt.Errorf("trustnet: interactions per round must be positive, got %d", n))
			return
		}
		c.wl.InteractionsPerRound = n
	}
}

// WithCandidateSize sets how many candidate providers each request
// considers (default 5).
func WithCandidateSize(n int) Option {
	return func(c *engineConfig) {
		if n <= 0 {
			c.fail(fmt.Errorf("trustnet: candidate size must be positive, got %d", n))
			return
		}
		c.wl.CandidateSize = n
	}
}

// WithRecomputeEvery recomputes mechanism scores every k rounds
// (default 5).
func WithRecomputeEvery(k int) Option {
	return func(c *engineConfig) {
		if k <= 0 {
			c.fail(fmt.Errorf("trustnet: recompute interval must be positive, got %d", k))
			return
		}
		c.wl.RecomputeEvery = k
	}
}

// WithActivitySkew sets the Zipf exponent of consumer activity (0 =
// uniform).
func WithActivitySkew(s float64) Option {
	return func(c *engineConfig) {
		if s < 0 {
			c.fail(fmt.Errorf("trustnet: negative activity skew %v", s))
			return
		}
		c.wl.ActivitySkew = s
	}
}

// WithWorkers caps the engine's worker pools (default: GOMAXPROCS): the
// AssessAll fan-out and the explorer's concurrent grid evaluation.
func WithWorkers(n int) Option {
	return func(c *engineConfig) {
		if n < 0 {
			c.fail(fmt.Errorf("trustnet: negative worker count %d", n))
			return
		}
		c.workers = n
	}
}

// WithShards sets the number of parallel shards the epoch pipeline scatters
// interaction simulation and facet measurement over (default 1; use
// runtime.GOMAXPROCS(0) to saturate the machine). Shards are a scheduling
// decomposition, not a semantic one: every observable result — epoch
// history, summaries, explorer output — is bit-for-bit identical for every
// shard count under the same seed, so parallelism can be tuned per
// deployment without re-baselining experiments.
func WithShards(k int) Option {
	return func(c *engineConfig) {
		if k < 1 {
			c.fail(fmt.Errorf("trustnet: shard count must be >= 1, got %d", k))
			return
		}
		c.wl.Shards = k
	}
}

// WithParallelism is WithShards with the worker pools matched to it: one
// option to scale a scenario onto k cores.
func WithParallelism(k int) Option {
	return func(c *engineConfig) {
		if k < 1 {
			c.fail(fmt.Errorf("trustnet: parallelism must be >= 1, got %d", k))
			return
		}
		c.wl.Shards = k
		c.workers = k
	}
}
