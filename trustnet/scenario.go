package trustnet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/adversary"
)

// Scenario is a declarative, fully serializable run specification: the
// population, behaviour mix, friendship graph, reputation mechanism and its
// parameters, privacy policy, §3 coupling shape, epoch shape, and an
// intervention Schedule — everything an Engine needs, as data. A Scenario
// round-trips through JSON, so experiment setups can live in files, be
// diffed in review, and be replayed byte-for-byte (`trustsim -scenario`).
//
// Zero values mean "engine default" throughout (and are omitted from the
// JSON encoding); pointer fields distinguish "unset" from an explicit zero
// where the engine options do (Inertia, BaseHonesty, Privacy.Disclosure).
// Options() compiles the spec to the functional options New consumes, so a
// Scenario and a hand-built option slice produce bit-for-bit identical
// engines.
type Scenario struct {
	// Name identifies the scenario in the Registry and in sweep output.
	Name string `json:"name,omitempty"`
	// Description is a one-line human summary.
	Description string `json:"description,omitempty"`

	// Peers is the population size (default 100).
	Peers int `json:"peers,omitempty"`
	// Seed seeds every random stream; equal seeds and settings reproduce
	// runs bit-for-bit.
	Seed uint64 `json:"seed,omitempty"`
	// Mix is the behaviour-class composition, keyed by class name
	// (default all honest).
	Mix *MixSpec `json:"mix,omitempty"`
	// Graph selects the friendship topology (default Barabási–Albert,
	// param 4).
	Graph *GraphSpec `json:"graph,omitempty"`
	// Mechanism selects and parameterizes the reputation mechanism
	// (default EigenTrust with uniform pre-trust).
	Mechanism MechanismSpec `json:"mechanism,omitempty"`
	// Privacy installs the privacy-facet settings; nil keeps the default
	// (full disclosure, no gate). A present policy is explicit: zero
	// Disclosure really shares nothing.
	Privacy *PrivacyPolicy `json:"privacy,omitempty"`
	// Satisfaction tunes the satisfaction facet (§2.1).
	Satisfaction *SatisfactionModel `json:"satisfaction,omitempty"`

	// Context applies an applicative context's preset weight profile
	// ("balanced", "privacy", "performance", "marketplace"); mutually
	// exclusive with Weights.
	Context string `json:"context,omitempty"`
	// Weights sets the facet weights of the combined metric Φ directly.
	Weights *Weights `json:"weights,omitempty"`
	// UserWeights installs individual weight profiles per user id.
	UserWeights map[int]Weights `json:"user_weights,omitempty"`

	// Coupled enables the §3 feedback loops.
	Coupled bool `json:"coupled,omitempty"`
	// Inertia is the trust-smoothing inertia in [0,1); nil means the
	// default 0.5, an explicit 0 means memoryless trust.
	Inertia *float64 `json:"inertia,omitempty"`
	// BaseHonesty is h0, the truthful-reporting probability at zero
	// trust; nil means the default 0.3, an explicit 0 means fully
	// trust-driven honesty.
	BaseHonesty *float64 `json:"base_honesty,omitempty"`

	// EpochRounds is how many interaction rounds one epoch spans
	// (default 10).
	EpochRounds int `json:"epoch_rounds,omitempty"`
	// Epochs is how many epochs Run (and a Sweep over this scenario)
	// drives.
	Epochs int `json:"epochs,omitempty"`

	// Selection is the response policy: "best" (default) or
	// "proportional".
	Selection string `json:"selection,omitempty"`
	// InteractionsPerRound is the number of requests per round (default:
	// one per peer).
	InteractionsPerRound int `json:"interactions_per_round,omitempty"`
	// CandidateSize is how many candidate providers each request
	// considers (default 5).
	CandidateSize int `json:"candidate_size,omitempty"`
	// RecomputeEvery recomputes mechanism scores every k rounds
	// (default 5).
	RecomputeEvery int `json:"recompute_every,omitempty"`
	// ActivitySkew is the Zipf exponent of consumer activity (0 =
	// uniform).
	ActivitySkew float64 `json:"activity_skew,omitempty"`

	// Shards sets the parallel epoch-shard count; a scheduling knob only,
	// results are identical for every value.
	Shards int `json:"shards,omitempty"`
	// Workers caps the engine's worker pools (AssessAll, sweeps over this
	// scenario when the Experiment does not override it).
	Workers int `json:"workers,omitempty"`

	// Schedule is the epoch-indexed intervention script Run applies.
	Schedule Schedule `json:"schedule,omitempty"`
}

// MixSpec is the serializable behaviour-class composition: fractions keyed
// by class name ("honest", "malicious", "selfish", "traitor",
// "whitewasher", "slanderer", "colluder").
type MixSpec struct {
	Fractions   map[string]float64 `json:"fractions,omitempty"`
	ForceHonest []int              `json:"force_honest,omitempty"`
}

// toMix resolves the class names into the adversary mix.
func (m MixSpec) toMix() (Mix, error) {
	out := Mix{ForceHonest: append([]int(nil), m.ForceHonest...)}
	if len(m.Fractions) > 0 {
		out.Fractions = make(map[Class]float64, len(m.Fractions))
		for name, f := range m.Fractions {
			cls, ok := adversary.ClassNamed(name)
			if !ok {
				return Mix{}, fmt.Errorf("trustnet: unknown behaviour class %q in mix", name)
			}
			out.Fractions[cls] = f
		}
	}
	return out, nil
}

// MixOf builds the MixSpec for a population with the given adversarial
// fractions; the honest class absorbs the remainder.
func MixOf(fractions map[string]float64, forceHonest ...int) *MixSpec {
	out := &MixSpec{
		Fractions:   map[string]float64{},
		ForceHonest: forceHonest,
	}
	rest := 1.0
	for name, f := range fractions {
		out.Fractions[name] = f
		rest -= f
	}
	if rest > 0 {
		out.Fractions["honest"] = rest
	}
	return out
}

// GraphSpec is the serializable friendship-topology selection.
type GraphSpec struct {
	// Kind is "barabasi-albert", "watts-strogatz" or "erdos-renyi".
	Kind string `json:"kind"`
	// Param is m for BA, k for WS, expected degree for ER.
	Param int `json:"param"`
}

var graphKinds = map[string]GraphKind{
	"barabasi-albert": BarabasiAlbert,
	"watts-strogatz":  WattsStrogatz,
	"erdos-renyi":     ErdosRenyi,
}

// MechanismSpec is the serializable mechanism selection plus its
// parameters; fields irrelevant to the selected kind are ignored. The zero
// value selects EigenTrust with uniform pre-trust.
type MechanismSpec struct {
	// Kind is "eigentrust" (default), "trustme", "powertrust",
	// "powertrust-plain" (the no-look-ahead ablation), "anonrep" or
	// "none".
	Kind string `json:"kind,omitempty"`

	// Pretrusted lists EigenTrust's pre-trusted peer ids.
	Pretrusted []int `json:"pretrusted,omitempty"`
	// Alpha is the pre-trust / greedy-jump blending weight
	// (EigenTrust, PowerTrust).
	Alpha float64 `json:"alpha,omitempty"`
	// Epsilon is the L1 convergence threshold (EigenTrust, PowerTrust).
	Epsilon float64 `json:"epsilon,omitempty"`
	// MaxIter bounds the iteration (EigenTrust, PowerTrust).
	MaxIter int `json:"max_iter,omitempty"`
	// PowerNodes is PowerTrust's power-node count M.
	PowerNodes int `json:"power_nodes,omitempty"`
	// Replicas is TrustMe's THA replication factor.
	Replicas int `json:"replicas,omitempty"`
	// Window bounds TrustMe's per-peer rating window.
	Window int `json:"window,omitempty"`
	// Granularity, Noise and PriorStrength parameterize AnonRep's
	// anonymity/accuracy trade-off.
	Granularity   float64 `json:"granularity,omitempty"`
	Noise         float64 `json:"noise,omitempty"`
	PriorStrength float64 `json:"prior_strength,omitempty"`
	// Seed derives AnonRep's own stream; 0 inherits the scenario seed.
	Seed uint64 `json:"seed,omitempty"`
}

// Factory compiles the spec into a mechanism factory. scenarioSeed seeds
// mechanisms that carry their own stream (AnonRep) when the spec does not
// pin one.
func (m MechanismSpec) Factory(scenarioSeed uint64) (MechanismFactory, error) {
	switch m.Kind {
	case "", "eigentrust":
		return EigenTrust(EigenTrustConfig{
			Pretrusted: append([]int(nil), m.Pretrusted...),
			Alpha:      m.Alpha,
			Epsilon:    m.Epsilon,
			MaxIter:    m.MaxIter,
		}), nil
	case "trustme":
		return TrustMe(TrustMeConfig{Replicas: m.Replicas, Window: m.Window}), nil
	case "powertrust":
		return PowerTrust(PowerTrustConfig{
			M: m.PowerNodes, Alpha: m.Alpha, Epsilon: m.Epsilon, MaxIter: m.MaxIter,
		}), nil
	case "powertrust-plain":
		return PowerTrustPlain(PowerTrustConfig{
			M: m.PowerNodes, Alpha: m.Alpha, Epsilon: m.Epsilon, MaxIter: m.MaxIter,
		}), nil
	case "anonrep":
		seed := m.Seed
		if seed == 0 {
			seed = scenarioSeed
		}
		return AnonRep(AnonRepConfig{
			Granularity:   m.Granularity,
			Noise:         m.Noise,
			PriorStrength: m.PriorStrength,
			Seed:          seed,
		}), nil
	case "none":
		return NoReputation(), nil
	default:
		return nil, fmt.Errorf("trustnet: unknown mechanism kind %q", m.Kind)
	}
}

var appContexts = map[string]AppContext{
	"balanced":    Balanced,
	"privacy":     PrivacyCritical,
	"performance": PerformanceCritical,
	"marketplace": MarketplaceContext,
}

// ParseAppContext resolves an applicative-context name ("balanced",
// "privacy", "performance", "marketplace").
func ParseAppContext(name string) (AppContext, error) {
	ctx, ok := appContexts[name]
	if !ok {
		return 0, fmt.Errorf("trustnet: unknown applicative context %q", name)
	}
	return ctx, nil
}

// Options compiles the scenario into the functional options New consumes.
// The compilation is total: every settable knob of the spec maps onto
// exactly one option, so New(sc.Options()...) and the equivalent hand-built
// option slice assemble bit-for-bit identical engines. Epochs and Schedule
// are session-shape, not engine options — Run and the Sweep executor apply
// them.
func (sc Scenario) Options() ([]Option, error) {
	var opts []Option
	if sc.Peers != 0 {
		opts = append(opts, WithPeers(sc.Peers))
	}
	opts = append(opts, WithRNGSeed(sc.Seed))
	if sc.Mix != nil {
		m, err := sc.Mix.toMix()
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithMix(m))
	}
	if sc.Graph != nil {
		kind, ok := graphKinds[sc.Graph.Kind]
		if !ok {
			return nil, fmt.Errorf("trustnet: unknown graph kind %q", sc.Graph.Kind)
		}
		opts = append(opts, WithGraph(kind, sc.Graph.Param))
	}
	factory, err := sc.Mechanism.Factory(sc.Seed)
	if err != nil {
		return nil, err
	}
	opts = append(opts, WithReputationMechanism(factory))
	if sc.Privacy != nil {
		opts = append(opts, WithPrivacyPolicy(*sc.Privacy))
	}
	if sc.Satisfaction != nil {
		opts = append(opts, WithSatisfactionModel(*sc.Satisfaction))
	}
	if sc.Context != "" && sc.Weights != nil {
		return nil, fmt.Errorf("trustnet: scenario sets both context %q and explicit weights", sc.Context)
	}
	if sc.Context != "" {
		ctx, err := ParseAppContext(sc.Context)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithAppContext(ctx))
	}
	if sc.Weights != nil {
		opts = append(opts, WithWeights(*sc.Weights))
	}
	// Sorted for a deterministic option slice; the entries are independent
	// (distinct users), so order never changes semantics.
	users := make([]int, 0, len(sc.UserWeights))
	for user := range sc.UserWeights {
		users = append(users, user)
	}
	sort.Ints(users)
	for _, user := range users {
		opts = append(opts, WithUserWeights(user, sc.UserWeights[user]))
	}
	if sc.Coupled {
		opts = append(opts, WithCoupling(true))
	}
	if sc.Inertia != nil {
		opts = append(opts, WithInertia(*sc.Inertia))
	}
	if sc.BaseHonesty != nil {
		opts = append(opts, WithBaseHonesty(*sc.BaseHonesty))
	}
	if sc.EpochRounds != 0 {
		opts = append(opts, WithEpochRounds(sc.EpochRounds))
	}
	if sc.Epochs < 0 {
		return nil, fmt.Errorf("trustnet: scenario epochs must be positive, got %d", sc.Epochs)
	}
	switch sc.Selection {
	case "":
	case "best":
		opts = append(opts, WithSelection(SelectBest))
	case "proportional":
		opts = append(opts, WithSelection(SelectProportional))
	default:
		return nil, fmt.Errorf("trustnet: unknown selection policy %q", sc.Selection)
	}
	if sc.InteractionsPerRound != 0 {
		opts = append(opts, WithInteractionsPerRound(sc.InteractionsPerRound))
	}
	if sc.CandidateSize != 0 {
		opts = append(opts, WithCandidateSize(sc.CandidateSize))
	}
	if sc.RecomputeEvery != 0 {
		opts = append(opts, WithRecomputeEvery(sc.RecomputeEvery))
	}
	if sc.ActivitySkew != 0 {
		opts = append(opts, WithActivitySkew(sc.ActivitySkew))
	}
	if sc.Shards != 0 {
		opts = append(opts, WithShards(sc.Shards))
	}
	if sc.Workers != 0 {
		opts = append(opts, WithWorkers(sc.Workers))
	}
	return opts, nil
}

// NewEngine assembles an engine from the scenario (Options + New).
func (sc Scenario) NewEngine() (*Engine, error) {
	opts, err := sc.Options()
	if err != nil {
		return nil, err
	}
	return New(opts...)
}

// Run assembles an engine and drives the scenario end to end: Epochs
// coupling epochs with the Schedule applied at its boundaries. It returns
// the engine (for further inspection) and the epoch history.
func (sc Scenario) Run(ctx context.Context) (*Engine, []EpochStats, error) {
	if sc.Epochs <= 0 {
		return nil, nil, fmt.Errorf("trustnet: scenario %q has no epochs to run (set Epochs > 0)", sc.Name)
	}
	eng, err := sc.NewEngine()
	if err != nil {
		return nil, nil, err
	}
	s, err := eng.Session(ctx, WithMaxEpochs(sc.Epochs), WithSchedule(sc.Schedule))
	if err != nil {
		return nil, nil, err
	}
	for _, err := range s.Epochs() {
		if err != nil {
			return eng, eng.History(), err
		}
	}
	return eng, eng.History(), nil
}

// weights resolves the facet weights the scenario combines under: explicit
// Weights, else the Context profile, else the balanced default.
func (sc Scenario) weights() Weights {
	if sc.Weights != nil {
		return *sc.Weights
	}
	if sc.Context != "" {
		if ctx, ok := appContexts[sc.Context]; ok {
			return ContextWeights(ctx)
		}
	}
	return DefaultWeights()
}

// clone deep-copies the scenario so per-run mutation (axis application,
// seed assignment) never leaks between sweep cells.
func (sc Scenario) clone() Scenario {
	out := sc
	if sc.Mix != nil {
		m := MixSpec{ForceHonest: append([]int(nil), sc.Mix.ForceHonest...)}
		if sc.Mix.Fractions != nil {
			m.Fractions = make(map[string]float64, len(sc.Mix.Fractions))
			for k, v := range sc.Mix.Fractions {
				m.Fractions[k] = v
			}
		}
		out.Mix = &m
	}
	if sc.Graph != nil {
		g := *sc.Graph
		out.Graph = &g
	}
	out.Mechanism.Pretrusted = append([]int(nil), sc.Mechanism.Pretrusted...)
	if sc.Privacy != nil {
		p := *sc.Privacy
		out.Privacy = &p
	}
	if sc.Satisfaction != nil {
		s := *sc.Satisfaction
		out.Satisfaction = &s
	}
	if sc.Weights != nil {
		w := *sc.Weights
		out.Weights = &w
	}
	if sc.UserWeights != nil {
		uw := make(map[int]Weights, len(sc.UserWeights))
		for k, v := range sc.UserWeights {
			uw[k] = v
		}
		out.UserWeights = uw
	}
	if sc.Inertia != nil {
		v := *sc.Inertia
		out.Inertia = &v
	}
	if sc.BaseHonesty != nil {
		v := *sc.BaseHonesty
		out.BaseHonesty = &v
	}
	out.Schedule = sc.Schedule.clone()
	return out
}

// ScenarioFromJSON decodes a scenario spec, rejecting unknown fields so a
// typo in a spec file fails loudly instead of silently running defaults.
func ScenarioFromJSON(data []byte) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("trustnet: decode scenario: %w", err)
	}
	return sc, nil
}

// LoadScenarioFile reads a JSON scenario spec from disk.
func LoadScenarioFile(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("trustnet: load scenario: %w", err)
	}
	sc, err := ScenarioFromJSON(data)
	if err != nil {
		return Scenario{}, fmt.Errorf("trustnet: %s: %w", path, err)
	}
	return sc, nil
}
