package trustnet

import (
	"repro/internal/adversary"
	"repro/internal/graph"
	"repro/internal/social"
)

// Class is a ground-truth behaviour class from the §2.2 adversary
// taxonomy.
type Class = adversary.Class

// Behaviour classes.
const (
	// Honest peers serve well and rate truthfully.
	Honest = adversary.Honest
	// Selfish peers free-ride: they rarely serve but rate truthfully.
	Selfish = adversary.Selfish
	// Malicious peers serve corrupt data and lie in ratings.
	Malicious = adversary.Malicious
	// Traitor peers build reputation honestly, then turn coat.
	Traitor = adversary.Traitor
	// Slanderer peers serve fine but badmouth everyone.
	Slanderer = adversary.Slanderer
	// Colluder peers form a ballot-stuffing clique.
	Colluder = adversary.Colluder
	// WhitewasherClass peers behave maliciously and shed bad reputations by
	// rejoining under fresh identities. (Named WhitewasherClass because the
	// facade name Whitewasher is taken by the mechanism-reset interface.)
	WhitewasherClass = adversary.Whitewasher
)

// Mix is the behaviour-class composition of a population.
type Mix = adversary.Mix

// AdversaryConfig tunes the behaviour models of the classes.
type AdversaryConfig = adversary.Config

// Sensitivity classifies how private a data item is.
type Sensitivity = social.Sensitivity

// Sensitivity classes.
const (
	// Public data costs nothing to disclose.
	Public = social.Public
	// LowSensitivity data is mildly private (e.g. feedback reports).
	LowSensitivity = social.Low
	// MediumSensitivity data is personal (e.g. contact details).
	MediumSensitivity = social.Medium
	// HighSensitivity data is intimate (e.g. medical notes).
	HighSensitivity = social.High
)

// Profile is a user's attribute set.
type Profile = social.Profile

// Interaction is one recorded consumer/provider exchange.
type Interaction = social.Interaction

// StandardProfile builds the experiment-standard profile for a user.
func StandardProfile(userID int) Profile { return social.StandardProfile(userID) }

// Graph is a weighted directed graph (friendship topologies are symmetric).
type Graph = graph.Graph

// BarabasiAlbertGraph generates a preferential-attachment graph: n nodes,
// m edges per arrival.
func BarabasiAlbertGraph(rng *RNG, n, m int) *Graph {
	return graph.BarabasiAlbert(rng, n, m)
}

// WattsStrogatzGraph generates a small-world graph: n nodes, k nearest
// neighbours, rewiring probability beta.
func WattsStrogatzGraph(rng *RNG, n, k int, beta float64) *Graph {
	return graph.WattsStrogatz(rng, n, k, beta)
}

// ErdosRenyiGraph generates a uniform random graph with edge probability p.
func ErdosRenyiGraph(rng *RNG, n int, p float64) *Graph {
	return graph.ErdosRenyi(rng, n, p)
}
