package trustnet

import (
	"bytes"
	"context"
	"encoding/gob"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runEpochs drives an engine n epochs, failing the test on any error.
func runEpochs(t *testing.T, eng *Engine, n int) {
	t.Helper()
	if _, err := eng.Run(context.Background(), n); err != nil {
		t.Fatal(err)
	}
}

// snapshotRoundTrip serializes and re-decodes a snapshot, proving file-level
// checkpoints behave exactly like in-memory ones.
func snapshotRoundTrip(t *testing.T, eng *Engine) *Snapshot {
	t.Helper()
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return decoded
}

// TestSnapshotResumeGolden is the acceptance test of the snapshot feature:
// for every epoch boundary and for capture/restore shard counts {1,4},
// snapshot -> encode -> decode -> restore -> run-the-rest reproduces the
// uninterrupted history bit-for-bit.
func TestSnapshotResumeGolden(t *testing.T) {
	const totalEpochs = 6
	reference, err := New(sessionScenario(101, WithShards(1))...)
	if err != nil {
		t.Fatal(err)
	}
	runEpochs(t, reference, totalEpochs)
	want := histBytes(t, reference.History())

	for _, captureShards := range []int{1, 4} {
		for _, resumeShards := range []int{1, 4} {
			for boundary := 0; boundary <= totalEpochs; boundary++ {
				first, err := New(sessionScenario(101, WithShards(captureShards))...)
				if err != nil {
					t.Fatal(err)
				}
				runEpochs(t, first, boundary)
				snap := snapshotRoundTrip(t, first)
				if snap.Epoch != boundary {
					t.Fatalf("snapshot at boundary %d reports epoch %d", boundary, snap.Epoch)
				}

				second, err := New(sessionScenario(101, WithShards(resumeShards))...)
				if err != nil {
					t.Fatal(err)
				}
				if err := second.Restore(snap); err != nil {
					t.Fatalf("restore at boundary %d: %v", boundary, err)
				}
				runEpochs(t, second, totalEpochs-boundary)
				if got := histBytes(t, second.History()); !bytes.Equal(want, got) {
					t.Fatalf("resume at boundary %d (capture %d shards, resume %d) diverges from uninterrupted run",
						boundary, captureShards, resumeShards)
				}
			}
		}
	}
}

// TestSnapshotResumeAllMechanisms proves every built-in mechanism's state
// survives the round trip: resume at a mid-run boundary reproduces the
// uninterrupted history exactly.
func TestSnapshotResumeAllMechanisms(t *testing.T) {
	const totalEpochs, boundary = 5, 2
	mechs := []struct {
		name    string
		factory MechanismFactory
	}{
		{"eigentrust", EigenTrust(EigenTrustConfig{Pretrusted: []int{0, 1, 2}})},
		{"powertrust", PowerTrust(PowerTrustConfig{})},
		{"trustme", TrustMe(TrustMeConfig{})},
		{"anonrep", AnonRep(AnonRepConfig{Seed: 5})},
		{"none", NoReputation()},
	}
	for _, mk := range mechs {
		t.Run(mk.name, func(t *testing.T) {
			opts := func() []Option {
				return sessionScenario(211, WithReputationMechanism(mk.factory))
			}
			full, err := New(opts()...)
			if err != nil {
				t.Fatal(err)
			}
			runEpochs(t, full, totalEpochs)
			want := histBytes(t, full.History())

			first, err := New(opts()...)
			if err != nil {
				t.Fatal(err)
			}
			runEpochs(t, first, boundary)
			snap := snapshotRoundTrip(t, first)
			second, err := New(opts()...)
			if err != nil {
				t.Fatal(err)
			}
			if err := second.Restore(snap); err != nil {
				t.Fatal(err)
			}
			runEpochs(t, second, totalEpochs-boundary)
			if !bytes.Equal(want, histBytes(t, second.History())) {
				t.Fatal("resumed history diverges from uninterrupted run")
			}
		})
	}
}

// TestSnapshotResumeWithSchedule proves checkpoints compose with scripted
// scenarios: a snapshot taken mid-schedule resumes into a session carrying
// the same schedule and reproduces the uninterrupted scripted run, including
// interventions that fire after the boundary.
func TestSnapshotResumeWithSchedule(t *testing.T) {
	const totalEpochs, boundary = 6, 3
	cohort := []int{5, 6, 7, 8, 9, 10, 11, 12}
	sched := Schedule{}.
		At(1, LeaveWave{Users: cohort}).
		At(2, TrustGateChange{Gate: 0.2}).
		At(4, WhitewashWave{Users: cohort}).
		At(5, BehaviorChange{Users: []int{40, 41}, Class: Traitor})

	runScripted := func(eng *Engine, epochs int) {
		t.Helper()
		s, err := eng.Session(context.Background(), WithMaxEpochs(epochs), WithSchedule(sched))
		if err != nil {
			t.Fatal(err)
		}
		for _, err := range s.Epochs() {
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	full, err := New(sessionScenario(307)...)
	if err != nil {
		t.Fatal(err)
	}
	runScripted(full, totalEpochs)
	want := histBytes(t, full.History())

	first, err := New(sessionScenario(307)...)
	if err != nil {
		t.Fatal(err)
	}
	runScripted(first, boundary)
	snap := snapshotRoundTrip(t, first)

	second, err := New(sessionScenario(307, WithShards(4))...)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Restore(snap); err != nil {
		t.Fatal(err)
	}
	runScripted(second, totalEpochs-boundary)
	if !bytes.Equal(want, histBytes(t, second.History())) {
		t.Fatal("scripted resume diverges from uninterrupted scripted run")
	}
}

func TestSnapshotMismatchRejected(t *testing.T) {
	eng, err := New(sessionScenario(401)...)
	if err != nil {
		t.Fatal(err)
	}
	runEpochs(t, eng, 2)
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	smaller, err := New(WithPeers(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := smaller.Restore(snap); err == nil || !strings.Contains(err.Error(), "peers") {
		t.Fatalf("restore into wrong population = %v, want peers mismatch", err)
	}

	otherMech, err := New(sessionScenario(401, WithReputationMechanism(TrustMe(TrustMeConfig{})))...)
	if err != nil {
		t.Fatal(err)
	}
	if err := otherMech.Restore(snap); err == nil || !strings.Contains(err.Error(), "mechanism") {
		t.Fatalf("restore into wrong mechanism = %v, want mechanism mismatch", err)
	}

	if err := eng.Restore(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	bad := *snap
	bad.Version = 99
	if err := eng.Restore(&bad); err == nil {
		t.Fatal("wrong-version snapshot accepted")
	}
}

// TestDecodeSnapshotOldVersionClearError pins the decode-time version probe:
// a snapshot from an older format generation — whose State would not even
// gob-decode into the current shape — must report a clear version mismatch,
// not a raw gob failure from deep inside the state.
func TestDecodeSnapshotOldVersionClearError(t *testing.T) {
	// A v1-era blob stand-in: same header fields, but a State whose wire
	// type is incompatible with core.DynamicsState, so a single-pass decode
	// would fail inside the state before any version check.
	type v1State struct {
		Engine string // current Engine is a struct: gob "type mismatch"
	}
	type v1Snapshot struct {
		Version   int
		Peers     int
		Mechanism string
		Epoch     int
		State     v1State
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v1Snapshot{
		Version: 1, Peers: 60, Mechanism: "eigentrust", Epoch: 3,
		State: v1State{Engine: "dense matrices lived here"},
	}); err != nil {
		t.Fatal(err)
	}
	_, err := DecodeSnapshot(&buf)
	if err == nil {
		t.Fatal("old-version snapshot decoded without error")
	}
	if !strings.Contains(err.Error(), "snapshot version mismatch (got 1, want 2)") {
		t.Fatalf("decode error %q does not name the version mismatch", err)
	}
}

// TestRestoreFromFile covers the shared file-resume helper both trustsim and
// trustnetd (and trustmaster's workers, via snapshot sync) sit on: a good
// checkpoint file restores bit-for-bit, a wrong-version file reports the
// version mismatch instead of a raw gob error, and a missing file fails.
func TestRestoreFromFile(t *testing.T) {
	eng, err := New(sessionScenario(77)...)
	if err != nil {
		t.Fatal(err)
	}
	runEpochs(t, eng, 3)
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	good := filepath.Join(dir, "good.snap")
	f, err := os.Create(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Encode(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	resumed, err := New(sessionScenario(77)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.RestoreFromFile(good); err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.EpochIndex(), eng.EpochIndex(); got != want {
		t.Fatalf("resumed epoch = %d, want %d", got, want)
	}
	runEpochs(t, eng, 2)
	runEpochs(t, resumed, 2)
	a, b := eng.History(), resumed.History()
	if len(b) == 0 || a[len(a)-1] != b[len(b)-1] {
		t.Fatalf("post-resume epoch diverged: %+v vs %+v", a[len(a)-1], b[len(b)-1])
	}

	stale := filepath.Join(dir, "stale.snap")
	bad := *snap
	bad.Version = 1
	bf, err := os.Create(stale)
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(bf).Encode(&bad); err != nil {
		t.Fatal(err)
	}
	if err := bf.Close(); err != nil {
		t.Fatal(err)
	}
	err = resumed.RestoreFromFile(stale)
	if err == nil || !strings.Contains(err.Error(), "snapshot version mismatch") {
		t.Fatalf("stale-version file restore = %v, want version mismatch", err)
	}

	if err := resumed.RestoreFromFile(filepath.Join(dir, "absent.snap")); err == nil {
		t.Fatal("restore from missing file succeeded")
	}
}
