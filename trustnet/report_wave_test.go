package trustnet

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// waveReports is the report batch shared by the ReportWave tests.
var waveReports = []Report{
	{Rater: 5, Ratee: 9, Value: 1},
	{Rater: 7, Ratee: 3, Value: 0},
	{Rater: 5, Ratee: 3, Value: 0.25},
}

// TestReportWaveMatchesDirectSubmission pins the determinism contract the
// serving layer builds on: a scheduled ReportWave and a direct
// Engine.SubmitReports call at the same epoch boundary produce bit-identical
// histories and scores.
func TestReportWaveMatchesDirectSubmission(t *testing.T) {
	mech := WithReputationMechanism(EigenTrust(EigenTrustConfig{Pretrusted: []int{0, 1, 2}}))

	scheduled, err := New(sessionScenario(11, mech)...)
	if err != nil {
		t.Fatal(err)
	}
	sched := Schedule{}.At(2, ReportWave{Reports: waveReports})
	s, err := scheduled.Session(context.Background(), WithMaxEpochs(5), WithSchedule(sched))
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range s.Epochs() {
		if err != nil {
			t.Fatal(err)
		}
	}

	manual, err := New(sessionScenario(11, mech)...)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := manual.Session(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 5; epoch++ {
		if epoch == 2 {
			if err := manual.SubmitReports(waveReports...); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ms.Next(); err != nil {
			t.Fatal(err)
		}
	}

	if got, want := histBytes(t, manual.History()), histBytes(t, scheduled.History()); !bytes.Equal(got, want) {
		t.Fatalf("ReportWave history diverged from direct submission")
	}
	a, b := scheduled.Mechanism().Scores(), manual.Mechanism().Scores()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("score[%d]: scheduled %v != direct %v", i, a[i], b[i])
		}
	}
}

// TestReportWaveChangesScores guards against the wave silently not landing:
// a strongly positive report barrage about one peer must move its score. A
// positive barrage is the robust probe: it always adds local-trust edges
// into the ratee, whereas a zero-value barrage only changes the matrix when
// the raters happened to hold positive opinions of the ratee already (a
// trajectory-dependent accident of the scenario seed).
func TestReportWaveChangesScores(t *testing.T) {
	build := func(sched Schedule) *Engine {
		eng, err := New(sessionScenario(3, WithReputationMechanism(EigenTrust(EigenTrustConfig{Pretrusted: []int{0, 1, 2}})))...)
		if err != nil {
			t.Fatal(err)
		}
		s, err := eng.Session(context.Background(), WithMaxEpochs(4), WithSchedule(sched))
		if err != nil {
			t.Fatal(err)
		}
		for _, err := range s.Epochs() {
			if err != nil {
				t.Fatal(err)
			}
		}
		return eng
	}
	var barrage []Report
	for rater := 10; rater < 30; rater++ {
		barrage = append(barrage, Report{Rater: rater, Ratee: 4, Value: 1})
	}
	plain := build(nil)
	waved := build(Schedule{}.At(1, ReportWave{Reports: barrage}))
	if plain.Mechanism().Score(4) == waved.Mechanism().Score(4) {
		t.Fatalf("report wave left peer 4's score unchanged (%v)", plain.Mechanism().Score(4))
	}
}

func TestReportWaveValidation(t *testing.T) {
	eng, err := New(sessionScenario(1)...)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		wave ReportWave
		want string
	}{
		{"empty", ReportWave{}, "no reports"},
		{"rater-range", ReportWave{Reports: []Report{{Rater: -1, Ratee: 1, Value: 1}}}, "rater -1 out of range"},
		{"ratee-range", ReportWave{Reports: []Report{{Rater: 1, Ratee: 60, Value: 1}}}, "ratee 60 out of range"},
		{"self", ReportWave{Reports: []Report{{Rater: 1, Ratee: 1, Value: 1}}}, "self-rating"},
		{"value", ReportWave{Reports: []Report{{Rater: 1, Ratee: 2, Value: 1.5}}}, "out of [0,1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := eng.Session(context.Background(), WithSchedule(Schedule{}.At(0, tc.wave)))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestReportWaveJSONRoundTrip(t *testing.T) {
	sched := Schedule{}.At(3, ReportWave{Reports: waveReports})
	data, err := json.Marshal(sched)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"report-wave"`) {
		t.Fatalf("encoded schedule missing report-wave kind: %s", data)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	wave, ok := back[0].Action.(ReportWave)
	if !ok {
		t.Fatalf("decoded action is %T, want ReportWave", back[0].Action)
	}
	if len(wave.Reports) != len(waveReports) || wave.Reports[2] != waveReports[2] {
		t.Fatalf("decoded wave %+v != %+v", wave.Reports, waveReports)
	}
}
