package trustnet

import (
	"fmt"
	"sync/atomic"

	"repro/internal/reputation"
	"repro/internal/reputation/anonrep"
	"repro/internal/reputation/eigentrust"
	"repro/internal/reputation/powertrust"
	"repro/internal/reputation/trustme"
)

// Mechanism is the pluggable scoring engine of the reputation facet
// (Marti & Garcia-Molina's "scoring and ranking" block).
type Mechanism = reputation.Mechanism

// MechanismFactory builds a fresh mechanism sized for n peers. Scenario
// runners call the factory once per evaluation, so settings never
// contaminate each other.
type MechanismFactory = reputation.Factory

// Report is one feedback report: rater's rating of ratee for a
// transaction, in [0,1].
type Report = reputation.Report

// Whitewasher is implemented by mechanisms whose per-peer state can be
// reset to what a fresh identity would present (EigenTrust, TrustMe).
type Whitewasher = reputation.Whitewasher

// CommunityAssessor is implemented by mechanisms that report their
// conclusion about the population (§3: "the set of those levels may
// indicate the trustworthy of the global system").
type CommunityAssessor = reputation.CommunityAssessor

// Convergence describes one iterative Compute run: iterations performed,
// final L1 residual, and whether the solver warm-started from the previous
// fixed point.
type Convergence = reputation.Convergence

// ConvergenceReporter is implemented by mechanisms whose Compute is an
// iterative solver reporting the diagnostics of its most recent run
// (EigenTrust, PowerTrust).
type ConvergenceReporter = reputation.ConvergenceReporter

// Concrete mechanism types, for callers that need the implementation-
// specific surface (TrustMe's message counter, AnonRep's epochs, ...).
type (
	// EigenTrustMechanism is the EigenTrust scoring engine (Kamvar et al.).
	EigenTrustMechanism = eigentrust.Mechanism
	// TrustMeMechanism is the TrustMe scoring engine (Singh & Liu).
	TrustMeMechanism = trustme.Mechanism
	// PowerTrustMechanism is the PowerTrust scoring engine (Zhou & Hwang).
	PowerTrustMechanism = powertrust.Mechanism
	// AnonRepMechanism is the pseudonymous-reputation engine modelling the
	// anonymity/accuracy trade-off of the paper's §2.2 citations.
	AnonRepMechanism = anonrep.Mechanism
)

// Mechanism configurations. The N field is overridden by factories with the
// engine's peer count; set it only when constructing standalone mechanisms
// with NewEigenTrust and friends.
type (
	// EigenTrustConfig parameterizes EigenTrust.
	EigenTrustConfig = eigentrust.Config
	// TrustMeConfig parameterizes TrustMe.
	TrustMeConfig = trustme.Config
	// PowerTrustConfig parameterizes PowerTrust.
	PowerTrustConfig = powertrust.Config
	// AnonRepConfig parameterizes AnonRep.
	AnonRepConfig = anonrep.Config
)

// EigenTrust returns a factory for the EigenTrust mechanism; cfg.N is
// replaced by the engine's peer count.
func EigenTrust(cfg EigenTrustConfig) MechanismFactory {
	return func(n int) (Mechanism, error) {
		c := cfg // copy: one factory value may be shared across engines
		c.N = n
		return eigentrust.New(c)
	}
}

// TrustMe returns a factory for the TrustMe mechanism; cfg.N is replaced
// by the engine's peer count.
func TrustMe(cfg TrustMeConfig) MechanismFactory {
	return func(n int) (Mechanism, error) {
		c := cfg // copy: one factory value may be shared across engines
		c.N = n
		return trustme.New(c)
	}
}

// PowerTrust returns a factory for the PowerTrust mechanism (look-ahead
// random walk); cfg.N is replaced by the engine's peer count.
func PowerTrust(cfg PowerTrustConfig) MechanismFactory {
	return func(n int) (Mechanism, error) {
		c := cfg // copy: one factory value may be shared across engines
		c.N = n
		return powertrust.New(c)
	}
}

// PowerTrustPlain returns a factory for the PowerTrust ablation without
// the look-ahead walk; cfg.N is replaced by the engine's peer count.
func PowerTrustPlain(cfg PowerTrustConfig) MechanismFactory {
	return func(n int) (Mechanism, error) {
		c := cfg // copy: one factory value may be shared across engines
		c.N = n
		return powertrust.NewPlain(c)
	}
}

// AnonRep returns a factory for the pseudonymous-reputation mechanism;
// cfg.N is replaced by the engine's peer count.
func AnonRep(cfg AnonRepConfig) MechanismFactory {
	return func(n int) (Mechanism, error) {
		c := cfg // copy: one factory value may be shared across engines
		c.N = n
		return anonrep.New(c)
	}
}

// NoReputation returns a factory for the no-reputation baseline: every
// peer scores the same neutral value.
func NoReputation() MechanismFactory {
	return func(n int) (Mechanism, error) {
		return reputation.NewNone(n), nil
	}
}

// UseMechanism wraps an already-constructed mechanism as a factory, for
// callers that need to keep the concrete handle. The mechanism must be
// sized for the engine's peer count; the factory cannot verify that, so
// prefer the config-based factories otherwise.
//
// The factory is single-use: the explorer calls factories once per
// evaluated point and relies on each point getting a fresh, uncontaminated
// mechanism, which a shared instance cannot provide. A second call returns
// an error instead of silently cross-contaminating evaluations.
func UseMechanism(m Mechanism) MechanismFactory {
	var used atomic.Bool
	return func(int) (Mechanism, error) {
		if m == nil {
			return nil, fmt.Errorf("trustnet: nil mechanism")
		}
		if used.Swap(true) {
			return nil, fmt.Errorf(
				"trustnet: UseMechanism factory is single-use (%s already handed out); use a config-based factory for exploration", m.Name())
		}
		return m, nil
	}
}

// Standalone constructors, for programs that drive a mechanism directly
// (submit reports, recompute, whitewash) without a workload engine. Here
// cfg.N is required.

// NewEigenTrust builds a standalone EigenTrust mechanism.
func NewEigenTrust(cfg EigenTrustConfig) (*EigenTrustMechanism, error) {
	return eigentrust.New(cfg)
}

// NewTrustMe builds a standalone TrustMe mechanism.
func NewTrustMe(cfg TrustMeConfig) (*TrustMeMechanism, error) {
	return trustme.New(cfg)
}

// NewPowerTrust builds a standalone PowerTrust mechanism.
func NewPowerTrust(cfg PowerTrustConfig) (*PowerTrustMechanism, error) {
	return powertrust.New(cfg)
}

// NewPowerTrustPlain builds the standalone PowerTrust ablation without the
// look-ahead walk.
func NewPowerTrustPlain(cfg PowerTrustConfig) (*PowerTrustMechanism, error) {
	return powertrust.NewPlain(cfg)
}

// NewAnonRep builds a standalone pseudonymous-reputation mechanism.
func NewAnonRep(cfg AnonRepConfig) (*AnonRepMechanism, error) {
	return anonrep.New(cfg)
}
