package trustnet

import (
	"context"
	"strings"
	"testing"
)

// TestExploreConfigValidation: explicit nonpositive knobs error instead of
// being silently clamped to defaults; zero still means "default".
func TestExploreConfigValidation(t *testing.T) {
	base := Scenario{Peers: 20, Seed: 1}
	cases := []struct {
		name    string
		cfg     ExploreConfig
		wantErr string
	}{
		{"negative rounds", ExploreConfig{Scenario: base, Rounds: -1, GridSize: 2}, "rounds"},
		{"grid of one", ExploreConfig{Scenario: base, Rounds: 3, GridSize: 1}, "grid"},
		{"negative grid", ExploreConfig{Scenario: base, Rounds: 3, GridSize: -2}, "grid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Explore(context.Background(), tc.cfg); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
	// Zero-valued knobs still resolve to the documented defaults.
	if _, err := EvaluateSetting(ExploreConfig{Scenario: Scenario{Peers: 12, Seed: 1, EpochRounds: 0}, Rounds: 2}, Setting{Disclosure: 0.5}); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
}

func exploreScenario() Scenario {
	return Scenario{
		Peers:          30,
		Seed:           7,
		Mix:            &MixSpec{Fractions: map[string]float64{"honest": 0.7, "malicious": 0.3}},
		Mechanism:      MechanismSpec{Kind: "eigentrust", Pretrusted: []int{0, 1}},
		RecomputeEvery: 2,
	}
}

// TestExploreAreaA: every Area A member meets the thresholds, the area
// fraction is consistent, and the constrained best never beats the global
// best.
func TestExploreAreaA(t *testing.T) {
	cfg := ExploreConfig{
		Scenario:   exploreScenario(),
		Rounds:     20,
		GridSize:   3,
		Thresholds: Facets{Satisfaction: 0.3, Reputation: 0.3, Privacy: 0.1},
	}
	res, err := Explore(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 9 {
		t.Fatalf("grid size = %d", len(res.Points))
	}
	if len(res.AreaA) == 0 {
		t.Fatal("Area A empty with generous thresholds")
	}
	if res.AreaFraction <= 0 || res.AreaFraction > 1 {
		t.Fatalf("area fraction = %v", res.AreaFraction)
	}
	for _, p := range res.AreaA {
		if p.Global.Satisfaction < 0.3 || p.Global.Reputation < 0.3 || p.Global.Privacy < 0.1 {
			t.Fatalf("non-member in Area A: %+v", p)
		}
	}
	if res.BestInAreaA.Trust > res.Best.Trust {
		t.Fatal("area-constrained best exceeds global best")
	}
}

// TestOptimizeRespectsConstraints: the optimum satisfies the constraints,
// and relaxing them never hurts.
func TestOptimizeRespectsConstraints(t *testing.T) {
	cfg := ExploreConfig{Scenario: exploreScenario(), Rounds: 20, GridSize: 3}
	p, err := Optimize(context.Background(), cfg, Constraints{MinPrivacy: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if p.Global.Privacy < 0.5 {
		t.Fatalf("optimizer violated privacy constraint: %+v", p)
	}
	free, err := Optimize(context.Background(), cfg, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if free.Trust < p.Trust-1e-9 {
		t.Fatalf("unconstrained optimum %v below constrained %v", free.Trust, p.Trust)
	}
}

// TestDifferentContextsDifferentOptima: §4 / E10 — the max-trust setting
// depends on the applicative context (privacy-critical must not disclose
// more than performance-critical; weak inequality, grids are coarse).
func TestDifferentContextsDifferentOptima(t *testing.T) {
	optimize := func(ctx AppContext) Point {
		cfg := ExploreConfig{
			Scenario: exploreScenario(),
			Rounds:   20,
			GridSize: 3,
			Weights:  ContextWeights(ctx),
		}
		p, err := Optimize(context.Background(), cfg, Constraints{})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	pPriv := optimize(PrivacyCritical)
	pPerf := optimize(PerformanceCritical)
	if pPriv.Setting.Disclosure > pPerf.Setting.Disclosure {
		t.Fatalf("privacy-critical context disclosed more (%v) than performance-critical (%v)",
			pPriv.Setting.Disclosure, pPerf.Setting.Disclosure)
	}
}
